(* Minimal dependency-free JSON parsing shared by the bench CI gates
   (validate_smoke, validate_policy).  A recursive-descent parser —
   enough for the bench's own emitter and the checked-in envelopes.  No
   dependency on a JSON library keeps the gates runnable anywhere the
   repo builds. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_body () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance (); Buffer.contents b
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some ('"' as c) | Some ('\\' as c) | Some ('/' as c) ->
          Buffer.add_char b c; advance (); go ()
        | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
        | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
        | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
        | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
        | Some 'u' ->
          (* tolerate \uXXXX by passing it through verbatim: ids and
             keys in our files are ASCII *)
          Buffer.add_string b "\\u"; advance (); go ()
        | _ -> fail "bad escape")
      | Some c -> Buffer.add_char b c; advance (); go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let k = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Arr [] end
      else begin
        let rec elements acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (v :: acc)
          | Some ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' -> Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let field name = function
  | Obj kvs -> (
    match List.assoc_opt name kvs with
    | Some v -> v
    | None -> failwith (Printf.sprintf "missing field %S" name))
  | _ -> failwith (Printf.sprintf "expected object with field %S" name)

let num = function Num f -> f | _ -> failwith "expected number"
let str = function Str s -> s | _ -> failwith "expected string"
let arr = function Arr l -> l | _ -> failwith "expected array"
