(* Benchmark harness.

   Default mode regenerates every table and figure of the paper from one
   shared experiment harness and prints them — this is the output
   recorded in bench_output.txt / EXPERIMENTS.md.

   `--micro` instead runs one Bechamel micro-benchmark per table/figure,
   timing the computational kernel behind each artifact (simulation,
   profiling, transformation, analysis). *)

let instrs =
  match Sys.getenv_opt "CRITICS_BENCH_INSTRS" with
  | Some s -> int_of_string s
  | None -> 100_000

(* ------------------------- micro benchmarks ----------------------- *)

let micro () =
  let open Bechamel in
  let app name = Option.get (Workload.Apps.find name) in
  (* Small shared inputs so each Test.make times one kernel. *)
  let ctx = Critics.Run.prepare ~instrs:8_000 (app "Acrobat") in
  let spec_ctx = Critics.Run.prepare ~instrs:8_000 (app "lbm") in
  let critic_program = Critics.Run.transformed ctx Critics.Scheme.Critic in
  let run_cfg cfg trace () = ignore (Pipeline.Cpu.run cfg trace) in
  let tests =
    [
      (* Table I/II: configuration & workload construction *)
      Test.make ~name:"tab1.describe"
        (Staged.stage (fun () ->
             ignore (Pipeline.Config.describe Pipeline.Config.table_i)));
      Test.make ~name:"tab2.generate"
        (Staged.stage (fun () -> ignore (Workload.Gen.program (app "Music"))));
      (* Fig 1: baseline criticality mechanisms *)
      Test.make ~name:"fig1.prefetch_run"
        (Staged.stage
           (run_cfg
              (Pipeline.Config.with_critical_load_prefetch
                 Pipeline.Config.table_i)
              spec_ctx.trace));
      Test.make ~name:"fig1.prioritize_run"
        (Staged.stage
           (run_cfg
              (Pipeline.Config.with_backend_prio Pipeline.Config.table_i)
              spec_ctx.trace));
      (* Fig 2/4: list scheduling *)
      Test.make ~name:"fig2.schedule"
        (Staged.stage (fun () ->
             ignore (Experiments.Worked_example.example ())));
      (* Fig 3: baseline simulation with stage accounting *)
      Test.make ~name:"fig3.baseline_run"
        (Staged.stage (run_cfg Pipeline.Config.table_i ctx.trace));
      (* Fig 5: offline profiling (DFG + IC enumeration) *)
      Test.make ~name:"fig5.profile"
        (Staged.stage (fun () ->
             ignore (Profiler.Profile_run.profile ctx.trace)));
      (* Fig 8/10: the compiler pass and transformed-run kernels *)
      Test.make ~name:"fig8.branch_pass"
        (Staged.stage (fun () ->
             ignore
               (Transform.Critic_pass.apply
                  ~options:
                    {
                      Transform.Critic_pass.default_options with
                      mode = Branches;
                    }
                  ctx.db ctx.program)));
      Test.make ~name:"fig10.critic_pass"
        (Staged.stage (fun () ->
             ignore (Transform.Critic_pass.apply ctx.db ctx.program)));
      Test.make ~name:"fig10.critic_run"
        (Staged.stage (fun () ->
             ignore
               (Pipeline.Cpu.run Pipeline.Config.table_i
                  (Prog.Trace.expand critic_program ~seed:ctx.seed ctx.path))));
      (* Fig 11: a hardware-variant simulation *)
      Test.make ~name:"fig11.allhw_run"
        (Staged.stage
           (run_cfg (Pipeline.Config.all_hw Pipeline.Config.table_i) ctx.trace));
      (* Fig 12: partial profiling *)
      Test.make ~name:"fig12.partial_profile"
        (Staged.stage (fun () ->
             ignore (Profiler.Profile_run.profile ~fraction:0.5 ctx.trace)));
      (* Fig 13: the criticality-agnostic passes *)
      Test.make ~name:"fig13.opp16"
        (Staged.stage (fun () -> ignore (Transform.Thumb.opp16 ctx.program)));
      Test.make ~name:"fig13.compress"
        (Staged.stage (fun () -> ignore (Transform.Thumb.compress ctx.program)));
    ]
  in
  let grouped = Test.make_grouped ~name:"critics" ~fmt:"%s.%s" tests in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:100 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
    in
    let raw = Benchmark.all cfg instances grouped in
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = benchmark () in
  Printf.printf "%-34s %16s\n" "kernel" "time/run";
  Printf.printf "%s\n" (String.make 52 '-');
  List.iter
    (fun tbl ->
      let rows = ref [] in
      Hashtbl.iter
        (fun name result ->
          let time =
            match Analyze.OLS.estimates result with
            | Some (t :: _) -> t
            | _ -> nan
          in
          rows := (name, time) :: !rows)
        tbl;
      List.iter
        (fun (name, time) -> Printf.printf "%-34s %13.0f ns\n" name time)
        (List.sort compare !rows))
    results

(* ------------------------- table regeneration --------------------- *)

let tables () =
  Printf.printf
    "CritICs reproduction — regenerating every table and figure\n\
     (%d work instructions per app run; see EXPERIMENTS.md for the\n\
     paper-vs-measured discussion)\n"
    instrs;
  let h = Experiments.Harness.create ~instrs () in
  Experiments.run_all h

let () =
  match Array.to_list Sys.argv with
  | _ :: "--micro" :: _ -> micro ()
  | _ -> tables ()
