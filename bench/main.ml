(* Benchmark harness.

   Default mode regenerates every table and figure of the paper from one
   shared experiment harness and prints them — this is the output
   recorded in bench_output.txt / EXPERIMENTS.md.  The harness evaluates
   its (app × scheme × config) jobs across a domain pool; `--jobs N`
   (or CRITICS_JOBS) sets the width, default
   Domain.recommended_domain_count.  Per-artifact wall-clock timings are
   written to BENCH_results.json so successive PRs have a perf
   trajectory to compare against.

   `--micro` instead runs one Bechamel micro-benchmark per table/figure,
   timing the computational kernel behind each artifact (simulation,
   profiling, transformation, analysis). *)

let instrs =
  ref
    (match Sys.getenv_opt "CRITICS_BENCH_INSTRS" with
    | Some s -> int_of_string s
    | None -> 100_000)

(* ------------------------- micro benchmarks ----------------------- *)

let micro () =
  let open Bechamel in
  let app name = Option.get (Workload.Apps.find name) in
  (* Small shared inputs so each Test.make times one kernel. *)
  let ctx = Critics.Run.prepare ~instrs:8_000 (app "Acrobat") in
  let spec_ctx = Critics.Run.prepare ~instrs:8_000 (app "lbm") in
  let critic_program = Critics.Run.transformed ctx Critics.Scheme.Critic in
  let run_cfg cfg src () = ignore (Pipeline.Cpu.run_stream cfg src) in
  let base_src c = Critics.Run.source c Critics.Scheme.Baseline in
  let tests =
    [
      (* Table I/II: configuration & workload construction *)
      Test.make ~name:"tab1.describe"
        (Staged.stage (fun () ->
             ignore (Pipeline.Config.describe Pipeline.Config.table_i)));
      Test.make ~name:"tab2.generate"
        (Staged.stage (fun () -> ignore (Workload.Gen.program (app "Music"))));
      (* Fig 1: baseline criticality mechanisms *)
      Test.make ~name:"fig1.prefetch_run"
        (Staged.stage
           (run_cfg
              (Pipeline.Config.with_critical_load_prefetch
                 Pipeline.Config.table_i)
              (base_src spec_ctx)));
      Test.make ~name:"fig1.prioritize_run"
        (Staged.stage
           (run_cfg
              (Pipeline.Config.with_backend_prio Pipeline.Config.table_i)
              (base_src spec_ctx)));
      (* Fig 2/4: list scheduling *)
      Test.make ~name:"fig2.schedule"
        (Staged.stage (fun () ->
             ignore (Experiments.Worked_example.example ())));
      (* Fig 3: baseline simulation with stage accounting *)
      Test.make ~name:"fig3.baseline_run"
        (Staged.stage (run_cfg Pipeline.Config.table_i (base_src ctx)));
      (* Fig 5: offline profiling (DFG + IC enumeration) *)
      Test.make ~name:"fig5.profile"
        (Staged.stage (fun () ->
             ignore
               (Profiler.Profile_run.profile_stream
                  ~total_events:ctx.event_count
                  (Critics.Run.stream ctx Critics.Scheme.Baseline))));
      (* Fig 8/10: the compiler pass and transformed-run kernels *)
      Test.make ~name:"fig8.branch_pass"
        (Staged.stage (fun () ->
             ignore
               (Transform.Critic_pass.apply
                  ~options:
                    {
                      Transform.Critic_pass.default_options with
                      mode = Branches;
                    }
                  ctx.db ctx.program)));
      Test.make ~name:"fig10.critic_pass"
        (Staged.stage (fun () ->
             ignore (Transform.Critic_pass.apply ctx.db ctx.program)));
      Test.make ~name:"fig10.critic_run"
        (Staged.stage (fun () ->
             ignore
               (Pipeline.Cpu.run_stream Pipeline.Config.table_i (fun () ->
                    Prog.Trace.Stream.of_program critic_program ~seed:ctx.seed
                      ctx.path))));
      (* Fig 11: a hardware-variant simulation *)
      Test.make ~name:"fig11.allhw_run"
        (Staged.stage
           (run_cfg
              (Pipeline.Config.all_hw Pipeline.Config.table_i)
              (base_src ctx)));
      (* Fig 12: partial profiling *)
      Test.make ~name:"fig12.partial_profile"
        (Staged.stage (fun () ->
             ignore
               (Profiler.Profile_run.profile_stream ~fraction:0.5
                  ~total_events:ctx.event_count
                  (Critics.Run.stream ctx Critics.Scheme.Baseline))));
      (* Fig 13: the criticality-agnostic passes *)
      Test.make ~name:"fig13.opp16"
        (Staged.stage (fun () -> ignore (Transform.Thumb.opp16 ctx.program)));
      Test.make ~name:"fig13.compress"
        (Staged.stage (fun () -> ignore (Transform.Thumb.compress ctx.program)));
    ]
  in
  let grouped = Test.make_grouped ~name:"critics" ~fmt:"%s.%s" tests in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:100 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
    in
    let raw = Benchmark.all cfg instances grouped in
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = benchmark () in
  Printf.printf "%-34s %16s\n" "kernel" "time/run";
  Printf.printf "%s\n" (String.make 52 '-');
  List.iter
    (fun tbl ->
      let rows = ref [] in
      Hashtbl.iter
        (fun name result ->
          let time =
            match Analyze.OLS.estimates result with
            | Some (t :: _) -> t
            | _ -> nan
          in
          rows := (name, time) :: !rows)
        tbl;
      List.iter
        (fun (name, time) -> Printf.printf "%-34s %13.0f ns\n" name time)
        (List.sort compare !rows))
    results

(* ------------------------- table regeneration --------------------- *)

(* One artifact's measurement: wall clock plus the GC's view of the
   work — words promoted to the major heap while the artifact ran, and
   the process-wide heap high-water mark when it finished. *)
type artifact_timing = {
  id : string;
  wall_ms : float;
  minor_words : float;
  major_words : float;
  top_heap_words : int;
}

let git_describe () =
  try
    let ic =
      Unix.open_process_in "git describe --always --dirty 2>/dev/null"
    in
    let line = try input_line ic with End_of_file -> "" in
    (match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown")
  with _ -> "unknown"

(* Provenance split: the "git" field carries the clean description and
   "dirty" states working-tree state explicitly, so downstream diffing
   of BENCH_results.json never has to parse a "-dirty" suffix. *)
let provenance () =
  let raw = git_describe () in
  if Filename.check_suffix raw "-dirty" then
    (Filename.chop_suffix raw "-dirty", true)
  else (raw, false)

(* Per-artifact histogram summaries (telemetry mode): the merged
   registry of the artifact's job set, histograms only, per-chain-id
   series elided (one line per chain id would swamp the file). *)
let telemetry_json registry =
  let entries =
    List.filter_map
      (fun (name, v) ->
        match v with
        | Telemetry.Registry.Histogram_v { count; sum; max; p50; p90; p99 }
          when not
                 (String.length name >= 9 && String.sub name 0 9 = "chain/id/")
          ->
          Some
            (Printf.sprintf
               "\"%s\": { \"count\": %d, \"sum\": %d, \"max\": %d, \
                \"p50\": %d, \"p90\": %d, \"p99\": %d }"
               (Util.Json.escape_string name)
               count sum max p50 p90 p99)
        | _ -> None)
      (Telemetry.Registry.snapshot registry)
  in
  "{ " ^ String.concat ", " entries ^ " }"

let json_results ~jobs ~total_ms ?(telemetry = []) ?(fetch = []) ?cache
    ?policy_lab timings =
  let gc = Gc.quick_stat () in
  let git, dirty = provenance () in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"git\": %S,\n" git);
  Buffer.add_string b (Printf.sprintf "  \"dirty\": %b,\n" dirty);
  Buffer.add_string b (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  Buffer.add_string b (Printf.sprintf "  \"instrs\": %d,\n" !instrs);
  Buffer.add_string b (Printf.sprintf "  \"total_ms\": %.1f,\n" total_ms);
  Buffer.add_string b
    (Printf.sprintf "  \"top_heap_words\": %d,\n" gc.Gc.top_heap_words);
  (match cache with
  | Some json -> Buffer.add_string b (Printf.sprintf "  \"cache\": %s,\n" json)
  | None -> ());
  (* Per-cell policy-sweep results (--policy-sweep): the machine-readable
     twin of the policy-lab tables, for CI gating and cross-PR diffing. *)
  (match policy_lab with
  | Some json ->
    Buffer.add_string b (Printf.sprintf "  \"policy_lab\": %s,\n" json)
  | None -> ());
  Buffer.add_string b "  \"artifacts\": [\n";
  List.iteri
    (fun i t ->
      let telem =
        match List.assoc_opt t.id telemetry with
        | Some json -> Printf.sprintf ", \"telemetry\": %s" json
        | None -> ""
      in
      (* Fetch bandwidth over the artifact's job set: absent for
         journal-resumed artifacts (their memo tables are gone) and for
         artifacts without simulation jobs. *)
      let fetch_json =
        match List.assoc_opt t.id fetch with
        | Some (bytes, cycles) when cycles > 0 ->
          Printf.sprintf
            ", \"fetch_bytes\": %d, \"bytes_per_cycle\": %.3f" bytes
            (float_of_int bytes /. float_of_int cycles)
        | _ -> ""
      in
      Buffer.add_string b
        (Printf.sprintf
           "    { \"id\": %S, \"wall_ms\": %.1f, \"minor_words\": %.0f, \
            \"major_words\": %.0f, \"top_heap_words\": %d%s%s }%s\n"
           t.id t.wall_ms t.minor_words t.major_words t.top_heap_words telem
           fetch_json
           (if i = List.length timings - 1 then "" else ",")))
    timings;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

(* Crash-safe write: a kill mid-write must never leave a truncated
   BENCH_results.json that validate_smoke would half-parse. *)
let atomic_write path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc contents;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let results_path = "BENCH_results.json"
let journal_path = "BENCH_journal.jsonl"

let tables ~jobs ~resume ~telemetry ~ablation ~policy_sweep () =
  Printf.printf
    "CritICs reproduction — regenerating every table and figure\n\
     (%d work instructions per app run; see EXPERIMENTS.md for the\n\
     paper-vs-measured discussion)\n"
    !instrs;
  (* The journal is the resume contract: one flushed line per completed
     artifact.  A fresh run starts it over; --resume trusts it and skips
     the artifacts it names. *)
  let skip =
    if resume then Experiments.Journal.completed_ids journal_path
    else begin
      Experiments.Journal.reset journal_path;
      []
    end
  in
  let journaled = if resume then Experiments.Journal.load journal_path else [] in
  if resume && skip <> [] then
    Printf.eprintf "[bench] resume: skipping %d journaled artifact(s): %s\n%!"
      (List.length skip) (String.concat " " skip);
  (* Prepared-context store: attached only when CRITICS_CACHE_DIR is
     set, so a default run stays hermetic and a cache-enabled repeat run
     skips the prewarm wall (contexts, transforms and completed
     simulations reload from disk). *)
  let cache = Store.open_default () in
  (match cache with
  | Some st ->
    Printf.eprintf "[bench] cache: %s (%d entries)\n%!" (Store.dir st)
      (Store.entry_count st)
  | None -> ());
  let h =
    Experiments.Harness.create ~instrs:!instrs ~jobs
      ?telemetry:(if telemetry then Some 1024 else None)
      ?store:cache ()
  in
  let timings = ref [] in
  let telemetry_summaries = ref [] in
  let fetch_summaries = ref [] in
  let failed = ref [] in
  let time id f =
    let g0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let wall_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
    let g1 = Gc.quick_stat () in
    let t =
      {
        id;
        wall_ms;
        minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
        major_words = g1.Gc.major_words -. g0.Gc.major_words;
        top_heap_words = g1.Gc.top_heap_words;
      }
    in
    timings := t :: !timings;
    Experiments.Journal.append journal_path
      {
        Experiments.Journal.entry_id = id;
        wall_ms;
        minor_words = t.minor_words;
        major_words = t.major_words;
        top_heap_words = t.top_heap_words;
      };
    r
  in
  (* Opt-in artifacts append after the paper's figure set, each behind
     its own flag (--ablation: nanopass; --policy-sweep: policy-lab) so
     the default artifact list — and so the recorded bench stdout — is
     unchanged without them, and each CI smoke job pays only for the
     artifact it gates. *)
  let extra_entries =
    List.filter
      (fun (e : Experiments.entry) ->
        match e.id with
        | "nanopass" -> ablation
        | "policy-lab" -> policy_sweep
        | _ -> ablation)
      Experiments.extra
  in
  let entries =
    List.filter
      (fun (e : Experiments.entry) -> not (List.mem e.id skip))
      (Experiments.all @ extra_entries)
  in
  let t_start = Unix.gettimeofday () in
  (* Evaluate every (app × scheme × config) job of every remaining
     artifact across the domain pool up front; the per-artifact renders
     below then read from the memo tables (plus their own custom
     analyses). *)
  if not (List.mem "prewarm" skip && entries = []) then
    time "prewarm" (fun () ->
        Experiments.Harness.run_batch h
          (List.concat_map (fun (e : Experiments.entry) -> e.jobs ()) entries));
  List.iter
    (fun (e : Experiments.entry) ->
      Printf.printf "\n===== %s — %s =====\n" e.id e.title;
      (* Graceful degradation: one failing artifact is reported and the
         rest of the batch still completes (and journals). *)
      match time e.id (fun () -> print_string (e.render h)) with
      | () ->
        print_newline ();
        fetch_summaries :=
          (e.id, Experiments.Harness.fetch_totals_for h (e.jobs ()))
          :: !fetch_summaries;
        if telemetry then begin
          let reg = Experiments.Harness.telemetry_registry_for h (e.jobs ()) in
          if not (Telemetry.Registry.is_empty reg) then
            telemetry_summaries :=
              (e.id, telemetry_json reg) :: !telemetry_summaries
        end
      | exception exn ->
        let err = Util.Err.of_exn exn in
        failed := (e.id, err) :: !failed;
        Printf.printf "[bench] artifact %s FAILED: %s\n" e.id
          (Util.Err.to_string err))
    entries;
  let total_ms = 1000.0 *. (Unix.gettimeofday () -. t_start) in
  (* Merge: measurements journaled by the killed run first (canonical
     artifact order), then this run's. *)
  let merged =
    let fresh = List.rev !timings in
    let from_journal =
      List.filter_map
        (fun (j : Experiments.Journal.entry) ->
          if List.exists (fun t -> t.id = j.entry_id) fresh then None
          else
            Some
              {
                id = j.entry_id;
                wall_ms = j.wall_ms;
                minor_words = j.minor_words;
                major_words = j.major_words;
                top_heap_words = j.top_heap_words;
              })
        journaled
    in
    from_journal @ fresh
  in
  let cache_json =
    match cache with
    | None -> None
    | Some _ ->
      Some (Telemetry.Registry.to_json (Experiments.Harness.cache_registry h))
  in
  (* The embed re-runs Policy_lab.run; with the artifact freshly
     rendered every simulation is a memo hit, so this is a read-out,
     not a second sweep. *)
  let policy_lab_json =
    if policy_sweep && not (List.mem_assoc "policy-lab" !failed) then
      match Experiments.Policy_lab.to_json (Experiments.Policy_lab.run h) with
      | json -> Some json
      | exception _ -> None
    else None
  in
  let json =
    json_results ~jobs ~total_ms ~telemetry:(List.rev !telemetry_summaries)
      ~fetch:(List.rev !fetch_summaries) ?cache:cache_json
      ?policy_lab:policy_lab_json merged
  in
  atomic_write results_path json;
  Printf.eprintf "[bench] jobs=%d total=%.1fs — timings in %s\n" jobs
    (total_ms /. 1000.0) results_path;
  (match cache with
  | Some st ->
    let s = Store.stats st in
    Printf.eprintf
      "[bench] cache: %d hit / %d miss / %d write / %d corrupt — %d \
       entries, %d bytes\n"
      s.Store.hits s.Store.misses s.Store.writes s.Store.corrupt
      (Store.entry_count st) (Store.total_bytes st)
  | None -> ());
  if !failed <> [] then begin
    Printf.eprintf "[bench] %d artifact(s) failed:\n" (List.length !failed);
    List.iter
      (fun (id, err) ->
        Printf.eprintf "[bench]   %s: %s\n" id (Util.Err.to_string err))
      (List.rev !failed);
    exit 1
  end

let usage () =
  prerr_endline
    "usage: bench [--micro] [--jobs N] [--instrs N] [--resume] \
     [--telemetry] [--ablation] [--policy-sweep]\n\n\
     Regenerates every table and figure (default) or runs the Bechamel\n\
     micro-benchmarks (--micro).\n\n\
    \  --jobs N    domain-pool width (default: recommended domain count,\n\
    \              or CRITICS_JOBS)\n\
    \  --instrs N  dynamic work instructions per app run (default: 100000,\n\
    \              or CRITICS_BENCH_INSTRS)\n\
    \  --resume    skip artifacts already journaled in BENCH_journal.jsonl\n\
    \              (e.g. after a killed run) and merge their recorded\n\
    \              measurements into BENCH_results.json\n\
    \  --telemetry attach cycle-attribution probes to every simulation and\n\
    \              embed per-artifact histogram summaries in\n\
    \              BENCH_results.json (off by default; stats are\n\
    \              bit-identical either way)\n\
    \  --ablation  also regenerate the opt-in artifacts beyond the paper's\n\
    \              figure set (the nanopass pass-list ablations); the\n\
    \              default artifact list is unchanged without it\n\
    \  --policy-sweep  also run the front-end policy laboratory (i-cache\n\
    \              replacement x instruction-prefetch x app) and embed the\n\
    \              per-cell results as \"policy_lab\" in BENCH_results.json";
  exit 2

let () =
  let bad what v =
    Printf.eprintf "bench: bad %s value %S\n\n" what v;
    usage ()
  in
  let micro_mode = ref false in
  let resume = ref false in
  let telemetry = ref false in
  let ablation = ref false in
  let policy_sweep = ref false in
  let jobs = ref (Parallel.default_jobs ()) in
  let set_int name r v =
    match int_of_string_opt v with
    | Some x when x >= 1 -> r := x
    | _ -> bad name v
  in
  let rec parse = function
    | [] -> ()
    | "--micro" :: rest ->
      micro_mode := true;
      parse rest
    | "--resume" :: rest ->
      resume := true;
      parse rest
    | "--telemetry" :: rest ->
      telemetry := true;
      parse rest
    | "--ablation" :: rest ->
      ablation := true;
      parse rest
    | "--policy-sweep" :: rest ->
      policy_sweep := true;
      parse rest
    | "--jobs" :: n :: rest ->
      set_int "--jobs" jobs n;
      parse rest
    | "--instrs" :: n :: rest ->
      set_int "--instrs" instrs n;
      parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: rest
      when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" ->
      set_int "--jobs" jobs (String.sub arg 7 (String.length arg - 7));
      parse rest
    | arg :: rest
      when String.length arg > 9 && String.sub arg 0 9 = "--instrs=" ->
      set_int "--instrs" instrs (String.sub arg 9 (String.length arg - 9));
      parse rest
    | arg :: _ ->
      Printf.eprintf "bench: unknown argument %S\n\n" arg;
      usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !micro_mode then micro ()
  else
    tables ~jobs:!jobs ~resume:!resume ~telemetry:!telemetry
      ~ablation:!ablation ~policy_sweep:!policy_sweep ()
