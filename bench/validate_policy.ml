(* CI gate over the --policy-sweep embed in BENCH_results.json.

   Usage: validate_policy.exe RESULTS.json

   Checks, in order:
   1. the file is well-formed JSON and carries a "policy_lab" object
      with "cells" and "opportunity" arrays;
   2. coverage: at least 3 apps appear, and every app has a cell for
      all 4 replacement policies x 3 prefetchers;
   3. the sweep is not a no-op: for at least one (app, prefetcher) the
      lru and srrip cells disagree on base_cycles or fetch_stall — a
      policy knob that never changes the simulation is wired to
      nothing;
   4. each app has an opportunity row with predictable <= misses.

   Exit 0 iff all pass. *)

open Json_min

let policies = [ "lru"; "srrip"; "brrip"; "trrip" ]
let prefetchers = [ "none"; "next_line"; "fetch_directed" ]

let () =
  let results_path =
    match Sys.argv with
    | [| _; r |] -> r
    | _ ->
      prerr_endline "usage: validate_policy RESULTS.json";
      exit 2
  in
  let results =
    try parse (read_file results_path)
    with
    | Parse_error msg ->
      Printf.eprintf "FAIL results: %s does not parse: %s\n" results_path msg;
      exit 1
    | Sys_error msg ->
      Printf.eprintf "FAIL results: %s\n" msg;
      exit 1
  in
  let failures = ref 0 in
  let check cond fmt =
    Printf.ksprintf
      (fun msg ->
        if cond then Printf.printf "ok   %s\n" msg
        else begin
          Printf.printf "FAIL %s\n" msg;
          incr failures
        end)
      fmt
  in
  let pl =
    match results with
    | Obj kvs when List.mem_assoc "policy_lab" kvs ->
      List.assoc "policy_lab" kvs
    | _ ->
      Printf.printf "FAIL \"policy_lab\" embed present\n";
      Printf.printf "1 check(s) failed\n";
      exit 1
  in
  let cells = arr (field "cells" pl) in
  let opps = arr (field "opportunity" pl) in
  let apps =
    List.sort_uniq compare (List.map (fun c -> str (field "app" c)) cells)
  in
  check (List.length apps >= 3) "at least 3 apps swept (%d)"
    (List.length apps);
  let cell app p f =
    List.find_opt
      (fun c ->
        str (field "app" c) = app
        && str (field "policy" c) = p
        && str (field "prefetch" c) = f)
      cells
  in
  List.iter
    (fun app ->
      let missing =
        List.concat_map
          (fun p ->
            List.filter_map
              (fun f ->
                match cell app p f with
                | Some _ -> None
                | None -> Some (p ^ "+" ^ f))
              prefetchers)
          policies
      in
      check (missing = []) "app %S covers all %d policy x prefetcher cells%s"
        app
        (List.length policies * List.length prefetchers)
        (if missing = [] then ""
         else " (missing " ^ String.concat ", " missing ^ ")"))
    apps;
  (* The knob must be live: srrip replaces differently from true LRU on
     these working sets, so at least one cell's baseline must move. *)
  let lru_srrip_differ =
    List.exists
      (fun app ->
        List.exists
          (fun f ->
            match (cell app "lru" f, cell app "srrip" f) with
            | Some l, Some s ->
              num (field "base_cycles" l) <> num (field "base_cycles" s)
              || num (field "fetch_stall" l) <> num (field "fetch_stall" s)
            | _ -> false)
          prefetchers)
      apps
  in
  check lru_srrip_differ
    "lru and srrip disagree on at least one (app, prefetcher) cell";
  List.iter
    (fun app ->
      match
        List.find_opt (fun o -> str (field "app" o) = app) opps
      with
      | None -> check false "opportunity row for %S present" app
      | Some o ->
        let misses = num (field "misses" o) in
        let predictable = num (field "predictable" o) in
        check
          (predictable <= misses)
          "opportunity row for %S sane (%.0f predictable of %.0f misses)"
          app predictable misses)
    apps;
  if !failures > 0 then begin
    Printf.printf "%d check(s) failed\n" !failures;
    exit 1
  end;
  print_endline "policy-lab embed: all checks passed"
