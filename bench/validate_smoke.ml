(* CI gate over BENCH_results.json.

   Usage: validate_smoke.exe RESULTS.json ENVELOPE.json

   Checks, in order:
   1. both files are well-formed JSON (full parse, not grep);
   2. every artifact id the envelope lists appears in the results;
   3. the run's total_ms is within [allowance] (default 1.3x) of the
      envelope's reference total_ms.

   Exit 0 iff all pass.  The envelope is checked in
   (bench/smoke_envelope.json) and records the reference machine's
   smoke-budget run; regenerate it by copying the fields from a fresh
   BENCH_results.json when the engine legitimately changes speed. *)

open Json_min

let () =
  let results_path, envelope_path =
    match Sys.argv with
    | [| _; r; e |] -> (r, e)
    | _ ->
      prerr_endline "usage: validate_smoke RESULTS.json ENVELOPE.json";
      exit 2
  in
  let load label path =
    try parse (read_file path)
    with
    | Parse_error msg ->
      Printf.eprintf "FAIL %s: %s does not parse: %s\n" label path msg;
      exit 1
    | Sys_error msg ->
      Printf.eprintf "FAIL %s: %s\n" label msg;
      exit 1
  in
  let results = load "results" results_path in
  let envelope = load "envelope" envelope_path in
  let failures = ref 0 in
  let check cond fmt =
    Printf.ksprintf
      (fun msg ->
        if cond then Printf.printf "ok   %s\n" msg
        else begin
          Printf.printf "FAIL %s\n" msg;
          incr failures
        end)
      fmt
  in
  (* Provenance: "git" must be a string; new-form results also carry an
     explicit boolean "dirty" flag, in which case the description must
     be clean (no "-dirty" suffix — that state belongs in the flag).
     Old-form results (no "dirty" field, possibly a "-dirty" suffix) are
     still accepted so the gate can validate archived files. *)
  let git = str (field "git" results) in
  let has_dirty_suffix =
    let suf = "-dirty" in
    let lg = String.length git and ls = String.length suf in
    lg >= ls && String.sub git (lg - ls) ls = suf
  in
  (match results with
  | Obj kvs when List.mem_assoc "dirty" kvs ->
    (match List.assoc "dirty" kvs with
    | Bool _ ->
      check (not has_dirty_suffix)
        "provenance: git %S clean with explicit dirty flag" git
    | _ -> check false "provenance: \"dirty\" is a boolean")
  | _ -> check true "provenance: legacy git field %S accepted" git);
  let present =
    List.map (fun a -> str (field "id" a)) (arr (field "artifacts" results))
  in
  List.iter
    (fun want ->
      let id = str want in
      check (List.mem id present) "artifact %S present" id)
    (arr (field "artifacts" envelope));
  let total = num (field "total_ms" results) in
  let reference = num (field "total_ms" envelope) in
  let allowance =
    match envelope with
    | Obj kvs when List.mem_assoc "allowance" kvs ->
      num (field "allowance" envelope)
    | _ -> 1.3
  in
  check
    (total <= reference *. allowance)
    "total %.1f ms within %.0f%% of reference %.1f ms" total
    ((allowance -. 1.0) *. 100.0)
    reference;
  if !failures > 0 then begin
    Printf.printf "%d check(s) failed\n" !failures;
    exit 1
  end;
  print_endline "bench smoke envelope: all checks passed"
