(* CI gate over BENCH_results.json.

   Usage: validate_smoke.exe RESULTS.json ENVELOPE.json

   Checks, in order:
   1. both files are well-formed JSON (full parse, not grep);
   2. every artifact id the envelope lists appears in the results;
   3. the run's total_ms is within [allowance] (default 1.3x) of the
      envelope's reference total_ms.

   Exit 0 iff all pass.  The envelope is checked in
   (bench/smoke_envelope.json) and records the reference machine's
   smoke-budget run; regenerate it by copying the fields from a fresh
   BENCH_results.json when the engine legitimately changes speed. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

(* A minimal recursive-descent parser — enough for the bench's own
   emitter and the envelope.  No dependency on a JSON library keeps the
   gate runnable anywhere the repo builds. *)
let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_body () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance (); Buffer.contents b
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some ('"' as c) | Some ('\\' as c) | Some ('/' as c) ->
          Buffer.add_char b c; advance (); go ()
        | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
        | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
        | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
        | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
        | Some 'u' ->
          (* tolerate \uXXXX by passing it through verbatim: ids and
             keys in our files are ASCII *)
          Buffer.add_string b "\\u"; advance (); go ()
        | _ -> fail "bad escape")
      | Some c -> Buffer.add_char b c; advance (); go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let k = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Arr [] end
      else begin
        let rec elements acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (v :: acc)
          | Some ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' -> Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let field name = function
  | Obj kvs -> (
    match List.assoc_opt name kvs with
    | Some v -> v
    | None -> failwith (Printf.sprintf "missing field %S" name))
  | _ -> failwith (Printf.sprintf "expected object with field %S" name)

let num = function Num f -> f | _ -> failwith "expected number"
let str = function Str s -> s | _ -> failwith "expected string"
let arr = function Arr l -> l | _ -> failwith "expected array"

let () =
  let results_path, envelope_path =
    match Sys.argv with
    | [| _; r; e |] -> (r, e)
    | _ ->
      prerr_endline "usage: validate_smoke RESULTS.json ENVELOPE.json";
      exit 2
  in
  let load label path =
    try parse (read_file path)
    with
    | Parse_error msg ->
      Printf.eprintf "FAIL %s: %s does not parse: %s\n" label path msg;
      exit 1
    | Sys_error msg ->
      Printf.eprintf "FAIL %s: %s\n" label msg;
      exit 1
  in
  let results = load "results" results_path in
  let envelope = load "envelope" envelope_path in
  let failures = ref 0 in
  let check cond fmt =
    Printf.ksprintf
      (fun msg ->
        if cond then Printf.printf "ok   %s\n" msg
        else begin
          Printf.printf "FAIL %s\n" msg;
          incr failures
        end)
      fmt
  in
  (* Provenance: "git" must be a string; new-form results also carry an
     explicit boolean "dirty" flag, in which case the description must
     be clean (no "-dirty" suffix — that state belongs in the flag).
     Old-form results (no "dirty" field, possibly a "-dirty" suffix) are
     still accepted so the gate can validate archived files. *)
  let git = str (field "git" results) in
  let has_dirty_suffix =
    let suf = "-dirty" in
    let lg = String.length git and ls = String.length suf in
    lg >= ls && String.sub git (lg - ls) ls = suf
  in
  (match results with
  | Obj kvs when List.mem_assoc "dirty" kvs ->
    (match List.assoc "dirty" kvs with
    | Bool _ ->
      check (not has_dirty_suffix)
        "provenance: git %S clean with explicit dirty flag" git
    | _ -> check false "provenance: \"dirty\" is a boolean")
  | _ -> check true "provenance: legacy git field %S accepted" git);
  let present =
    List.map (fun a -> str (field "id" a)) (arr (field "artifacts" results))
  in
  List.iter
    (fun want ->
      let id = str want in
      check (List.mem id present) "artifact %S present" id)
    (arr (field "artifacts" envelope));
  let total = num (field "total_ms" results) in
  let reference = num (field "total_ms" envelope) in
  let allowance =
    match envelope with
    | Obj kvs when List.mem_assoc "allowance" kvs ->
      num (field "allowance" envelope)
    | _ -> 1.3
  in
  check
    (total <= reference *. allowance)
    "total %.1f ms within %.0f%% of reference %.1f ms" total
    ((allowance -. 1.0) *. 100.0)
    reference;
  if !failures > 0 then begin
    Printf.printf "%d check(s) failed\n" !failures;
    exit 1
  end;
  print_endline "bench smoke envelope: all checks passed"
