(* Schema validator for exported Chrome/Perfetto traces, as a
   standalone binary so CI (and anyone debugging a trace) can check a
   file without running the test suite:

     validate_trace trace.json

   Exit 0 iff the trace parses and satisfies the exporter's contract —
   every event carries name/ph/ts/pid/tid, counter and instant tracks
   are monotonically timestamped, and every async begin has a matching
   end (see Telemetry.Chrome_trace.validate, which the schema tests
   exercise on the same code path). *)

let () =
  match Sys.argv with
  | [| _; path |] -> (
    let text =
      try
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      with Sys_error msg ->
        Printf.eprintf "validate_trace: %s\n" msg;
        exit 2
    in
    match Telemetry.Chrome_trace.validate text with
    | Ok n ->
      Printf.printf "%s: ok (%d events)\n" path n;
      exit 0
    | Error msg ->
      Printf.eprintf "%s: INVALID: %s\n" path msg;
      exit 1)
  | _ ->
    prerr_endline "usage: validate_trace TRACE.json";
    exit 2
