(* Command-line interface to the CritICs reproduction. *)

open Cmdliner

let app_arg =
  let doc = "Application name (see `critics apps' for the list)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc)

let instrs_arg =
  let doc = "Dynamic work instructions to simulate per run." in
  Arg.(value & opt int Critics.Run.default_instrs & info [ "instrs" ] ~doc)

let lookup_app name =
  match Workload.Apps.find name with
  | Some p -> Ok p
  | None ->
    Error
      (Printf.sprintf "unknown app %S; try `critics apps'" name)

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline msg;
    exit 1

(* ------------------------------- apps ---------------------------- *)

let apps_cmd =
  let run () = print_endline (Workload.Apps.table_ii ()) in
  Cmd.v (Cmd.info "apps" ~doc:"List the evaluated applications (Table II)")
    Term.(const run $ const ())

(* ------------------------------ config --------------------------- *)

let config_cmd =
  let run () =
    print_endline
      (Util.Text_table.render_kv
         (Pipeline.Config.describe Pipeline.Config.table_i))
  in
  Cmd.v
    (Cmd.info "config" ~doc:"Print the baseline machine (Table I)")
    Term.(const run $ const ())

(* ------------------------------- run ----------------------------- *)

let scheme_arg =
  let doc =
    "Scheme: " ^ String.concat ", " (List.map Critics.Scheme.name Critics.Scheme.all)
  in
  Arg.(value & opt string "critic" & info [ "scheme" ] ~doc)

let run_cmd =
  let run app scheme instrs =
    let profile = or_die (lookup_app app) in
    let scheme =
      match Critics.Scheme.of_string scheme with
      | Some s -> s
      | None ->
        prerr_endline ("unknown scheme " ^ scheme);
        exit 1
    in
    let ctx = Critics.Run.prepare ~instrs profile in
    let base = Critics.Run.stats ctx Critics.Scheme.Baseline in
    let st = Critics.Run.stats ctx scheme in
    Printf.printf "%s / %s (%d work instructions)\n\n" profile.name
      (Critics.Scheme.name scheme) instrs;
    print_endline (Pipeline.Stats.render st);
    if scheme <> Critics.Scheme.Baseline then begin
      Printf.printf "\nspeedup over baseline: %s\n"
        (Util.Stats.pct (Critics.Run.speedup ~base st));
      let e = Critics.Run.energy ~base st in
      Printf.printf "system energy saving:  %s (CPU-only %s)\n"
        (Util.Stats.pct e.system) (Util.Stats.pct e.cpu_only)
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate one application under one scheme")
    Term.(const run $ app_arg $ scheme_arg $ instrs_arg)

(* ----------------------------- compare --------------------------- *)

let compare_cmd =
  let run app instrs =
    let profile = or_die (lookup_app app) in
    let ctx = Critics.Run.prepare ~instrs profile in
    let base = Critics.Run.stats ctx Critics.Scheme.Baseline in
    Printf.printf "%s: baseline %d cycles, IPC %.2f\n\n" profile.name
      base.cycles (Pipeline.Stats.ipc base);
    let rows =
      List.map
        (fun scheme ->
          let st = Critics.Run.stats ctx scheme in
          [
            Critics.Scheme.name scheme;
            string_of_int st.Pipeline.Stats.cycles;
            Util.Stats.pct (Critics.Run.speedup ~base st);
            Util.Stats.pct
              (float_of_int st.thumb_committed
              /. float_of_int (max 1 st.committed_total));
          ])
        Critics.Scheme.all
    in
    print_endline
      (Util.Text_table.render
         ~header:[ "scheme"; "cycles"; "speedup"; "16-bit instrs" ]
         rows)
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run every scheme on one application")
    Term.(const run $ app_arg $ instrs_arg)

(* ----------------------------- profile --------------------------- *)

let profile_cmd =
  let save_arg =
    let doc = "Write the CritIC database to $(docv) (text format)." in
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)
  in
  let run app instrs save =
    let profile = or_die (lookup_app app) in
    let ctx = Critics.Run.prepare ~instrs profile in
    let db = ctx.db in
    (match save with
    | Some path ->
      Profiler.Db_io.save db path;
      Printf.printf "database written to %s\n" path
    | None -> ());
    Printf.printf "%s: %d CritIC sites, coverage %s (convertible %s)\n\n"
      profile.name
      (List.length db.sites)
      (Util.Stats.pct (Profiler.Critic_db.coverage db))
      (Util.Stats.pct (Profiler.Critic_db.convertible_coverage db));
    let top = List.filteri (fun i _ -> i < 15) db.sites in
    print_endline
      (Util.Text_table.render
         ~header:
           [ "block"; "len"; "occurrences"; "criticality"; "convertible";
             "chain" ]
         (List.map
            (fun (s : Profiler.Critic_db.site) ->
              [
                string_of_int s.block_id;
                string_of_int (Profiler.Critic_db.site_length s);
                string_of_int s.occurrences;
                Printf.sprintf "%.1f" s.criticality;
                (if s.convertible then "yes" else "no");
                s.key;
              ])
            top))
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Show the CritIC database of an application")
    Term.(const run $ app_arg $ instrs_arg $ save_arg)

(* --------------------------- characterize ------------------------- *)

let characterize_cmd =
  let run app instrs =
    let profile = or_die (lookup_app app) in
    let _, trace = Workload.Gen.trace ~instrs profile in
    Printf.printf "%s — %s\n\n%s\n" profile.name profile.activity
      (Workload.Characterize.render (Workload.Characterize.of_trace trace))
  in
  Cmd.v
    (Cmd.info "characterize"
       ~doc:"Summarize an application's dynamic instruction stream")
    Term.(const run $ app_arg $ instrs_arg)

(* ------------------------------ schemes --------------------------- *)

let schemes_cmd =
  let run () =
    List.iter
      (fun s ->
        Printf.printf "%-16s %s\n" (Critics.Scheme.name s)
          (Critics.Scheme.describe s))
      Critics.Scheme.all
  in
  Cmd.v
    (Cmd.info "schemes" ~doc:"List the code-generation schemes")
    Term.(const run $ const ())

(* ---------------------------- experiment -------------------------- *)

let experiment_cmd =
  let id_arg =
    let doc =
      "Experiment id (tab1, tab2, fig1, ..., ablations, nanopass, \
       policy-lab) or `all'."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let jobs_arg =
    let doc =
      "Domains to evaluate simulations on (default: CRITICS_JOBS if set, \
       else the machine's recommended domain count).  Results are \
       bit-identical for every value."
    in
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let run id instrs jobs =
    let h = Experiments.Harness.create ~instrs ?jobs () in
    if id = "all" then Experiments.run_all h
    else
      match Experiments.find id with
      | Some e ->
        Experiments.prewarm ~only:e h;
        print_endline (e.render h)
      | None ->
        prerr_endline
          ("unknown experiment; available: all "
          ^ String.concat " "
              (List.map
                 (fun (e : Experiments.entry) -> e.id)
                 (Experiments.all @ Experiments.extra)));
        exit 1
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate a table/figure of the paper (or `all')")
    Term.(const run $ id_arg $ instrs_arg $ jobs_arg)

(* ------------------------------- sweep ---------------------------- *)

let sweep_cmd =
  let scheme_arg =
    let doc =
      "Scheme to sweep across every application: "
      ^ String.concat ", " (List.map Critics.Scheme.name Critics.Scheme.all)
    in
    Arg.(value & opt string "critic" & info [ "scheme" ] ~doc)
  in
  let jobs_arg =
    let doc = "Domains to evaluate simulations on." in
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let retries_arg =
    let doc = "Extra attempts granted to transient failures." in
    Arg.(value & opt int 2 & info [ "retries" ] ~doc)
  in
  let fuel_arg =
    let doc =
      "Per-job simulation budget in cycles; a job exceeding it aborts \
       with a timeout error."
    in
    Arg.(value & opt (some int) None & info [ "fuel" ] ~docv:"CYCLES" ~doc)
  in
  let deadline_arg =
    let doc =
      "Batch wall-clock deadline in seconds; pending jobs are skipped \
       once it passes."
    in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SEC" ~doc)
  in
  let quarantine_arg =
    let doc = "Failures an app may accumulate before it is quarantined." in
    Arg.(value & opt int 3 & info [ "quarantine-after" ] ~doc)
  in
  let seed_arg =
    let doc = "Fault-injection seed (victims are drawn deterministically)." in
    Arg.(value & opt int 0 & info [ "inject-seed" ] ~docv:"SEED" ~doc)
  in
  let inj n doc = Arg.(value & opt int 0 & info [ n ] ~docv:"N" ~doc) in
  let transient_arg =
    inj "inject-transient"
      "Apps that raise a transient fault on their first attempt."
  in
  let fatal_arg = inj "inject-fatal" "Apps that fail fatally on every attempt." in
  let stall_arg =
    inj "inject-stall" "Apps whose jobs stall past the fuel watchdog."
  in
  let corrupt_arg =
    inj "inject-corrupt" "Apps whose profile database is corrupted."
  in
  let expect_arg =
    let doc =
      "Exit 0 only if the batch outcome matches the fault plan exactly: \
       persistently faulted apps fail or are quarantined, transiently \
       faulted apps recover via retry, and everything else completes.  \
       Used by the CI fault-smoke job."
    in
    Arg.(value & flag & info [ "expect-injected" ] ~doc)
  in
  let run scheme instrs jobs retries fuel deadline quarantine seed transient
      fatal stall corrupt expect =
    let scheme =
      match Critics.Scheme.of_string scheme with
      | Some s -> s
      | None ->
        prerr_endline ("unknown scheme " ^ scheme);
        exit 1
    in
    let apps = Workload.Apps.all in
    let names = List.map (fun (p : Workload.Profile.t) -> p.name) apps in
    let faults =
      Workload.Fault.plan ~seed ~raise_transient:transient ~raise_fatal:fatal
        ~stall ~corrupt_db:corrupt names
    in
    let policy =
      {
        Experiments.Harness.default_policy with
        retries;
        fuel;
        wall_deadline_s = deadline;
        quarantine_after = quarantine;
      }
    in
    let h = Experiments.Harness.create ~instrs ?jobs () in
    Printf.printf "supervised sweep: %d apps x %s (%d instrs, %d domains)\n"
      (List.length apps)
      (Critics.Scheme.name scheme)
      instrs
      (Experiments.Harness.jobs h);
    Printf.printf "fault plan: %s\n\n" (Workload.Fault.to_string faults);
    let report =
      Experiments.Harness.run_batch_supervised ~policy ~faults h
        (List.map (fun p -> Experiments.Harness.job p scheme) apps)
    in
    print_string (Experiments.Harness.render_report report);
    if expect then begin
      let module H = Experiments.Harness in
      let persistent_victims =
        List.filter_map
          (fun (app, action) ->
            match action with
            | Workload.Fault.Raise_transient _ -> None
            | _ -> Some app)
          (Workload.Fault.victims faults)
      in
      let ok = ref true in
      let complain fmt = Printf.ksprintf (fun m -> ok := false; prerr_endline m) fmt in
      List.iter
        (fun (r : H.job_report) ->
          let persistent = List.mem r.report_app persistent_victims in
          match (r.report_outcome, persistent) with
          | H.Completed, true ->
            complain "expected %s to fail (persistent fault) but it completed"
              r.report_app
          | (H.Failed _ | H.Quarantined _ | H.Skipped _), false ->
            complain "expected %s to complete but it did not" r.report_app
          | _ -> ())
        report.H.reports;
      (* Transient victims must have recovered via retry. *)
      List.iter
        (fun (app, action) ->
          match action with
          | Workload.Fault.Raise_transient _ ->
            List.iter
              (fun (r : H.job_report) ->
                if r.report_app = app && r.report_attempts < 2 then
                  complain "expected %s to retry (attempts >= 2), saw %d" app
                    r.report_attempts)
              report.H.reports
          | _ -> ())
        (Workload.Fault.victims faults);
      if !ok then
        print_endline "expect-injected: outcomes match the fault plan"
      else begin
        prerr_endline "expect-injected: MISMATCH";
        exit 1
      end
    end
    else if report.Experiments.Harness.failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run a supervised batch over every application: per-job failures \
          are contained, classified and reported; transient failures are \
          retried; repeat offenders are quarantined.  Deterministic fault \
          injection (--inject-*) exercises every supervision path.")
    Term.(
      const run $ scheme_arg $ instrs_arg $ jobs_arg $ retries_arg $ fuel_arg
      $ deadline_arg $ quarantine_arg $ seed_arg $ transient_arg $ fatal_arg
      $ stall_arg $ corrupt_arg $ expect_arg)

(* ------------------------------- trace ---------------------------- *)

let parse_scheme name =
  match Critics.Scheme.of_string name with
  | Some s -> s
  | None ->
    prerr_endline ("unknown scheme " ^ name);
    exit 1

let window_arg =
  let doc = "Telemetry attribution window in cycles." in
  Arg.(value & opt int 1024 & info [ "window" ] ~docv:"CYCLES" ~doc)

let app_opt_arg =
  let doc = "Application name (see `critics apps' for the list)." in
  Arg.(required & opt (some string) None & info [ "app" ] ~docv:"APP" ~doc)

let trace_cmd =
  let scheme_arg =
    let doc =
      "Scheme: "
      ^ String.concat ", " (List.map Critics.Scheme.name Critics.Scheme.all)
    in
    Arg.(value & opt string "critic" & info [ "scheme" ] ~doc)
  in
  let out_arg =
    let doc = "Write the Chrome/Perfetto trace-event JSON to $(docv)." in
    Arg.(value & opt string "trace.json" & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let events_arg =
    let doc =
      "Trace ring capacity in events; the oldest events are dropped once \
       it fills, keeping memory bounded."
    in
    Arg.(value & opt int 65536 & info [ "events" ] ~docv:"N" ~doc)
  in
  let export app scheme instrs window out events =
    let profile = or_die (lookup_app app) in
    let scheme = parse_scheme scheme in
    let ctx = Critics.Run.prepare ~instrs profile in
    let trace = Telemetry.Chrome_trace.create ~capacity:events () in
    let probe = Telemetry.Probe.create ~window ~trace () in
    let st = Critics.Run.stats ~probe ctx scheme in
    Telemetry.Chrome_trace.write_file trace out;
    Printf.printf
      "%s / %s: %d cycles, %d committed; %d trace events (%d dropped) -> %s\n"
      profile.name
      (Critics.Scheme.name scheme)
      st.Pipeline.Stats.cycles st.committed_total
      (Telemetry.Chrome_trace.length trace)
      (Telemetry.Chrome_trace.dropped trace)
      out;
    Printf.printf "open in https://ui.perfetto.dev or chrome://tracing\n"
  in
  let export_term =
    Term.(
      const export $ app_opt_arg $ scheme_arg $ instrs_arg $ window_arg
      $ out_arg $ events_arg)
  in
  let export_cmd =
    Cmd.v
      (Cmd.info "export"
         ~doc:
           "Export a Chrome/Perfetto trace of one run (the default when no \
            subcommand is given)")
      export_term
  in
  let pack_cmd =
    let pack_out_arg =
      let doc = "Write the binary trace pack to $(docv)." in
      Arg.(value & opt string "trace.cpk" & info [ "out" ] ~docv:"FILE" ~doc)
    in
    let verify_arg =
      let doc =
        "After recording, mmap the pack back and replay it against a \
         second live walk, requiring bit-identical events."
      in
      Arg.(value & flag & info [ "verify" ] ~doc)
    in
    let run app scheme instrs out verify =
      let profile = or_die (lookup_app app) in
      let scheme = parse_scheme scheme in
      let ctx = Critics.Run.prepare ~instrs profile in
      let n = Prog.Trace.Pack.record ~path:out (Critics.Run.stream ctx scheme) in
      let g = Gc.quick_stat () in
      let bytes = (Unix.stat out).Unix.st_size in
      Printf.printf "%s / %s: %d events, %d bytes -> %s\n" profile.name
        (Critics.Scheme.name scheme) n bytes out;
      Printf.printf "gc: major_words %.0f, top_heap_words %d\n" g.Gc.major_words
        g.Gc.top_heap_words;
      if verify then begin
        match Prog.Trace.Pack.open_file out with
        | Error msg ->
          Printf.eprintf "verify FAILED: %s\n" msg;
          exit 1
        | Ok pk ->
          let program = Critics.Run.transformed ctx scheme in
          let replay = Prog.Trace.Pack.cursor pk program in
          let live = Critics.Run.stream ctx scheme in
          let compared = ref 0 in
          let rec go () =
            let a = Prog.Trace.Stream.next_ev replay in
            let b = Prog.Trace.Stream.next_ev live in
            let fin = Prog.Trace.Stream.end_marker in
            if a == fin && b == fin then ()
            else if a == fin || b == fin then begin
              Printf.eprintf "verify FAILED: event count mismatch at %d\n"
                !compared;
              exit 1
            end
            else if a <> b then begin
              Printf.eprintf "verify FAILED: event %d diverges (uid %d vs %d)\n"
                !compared a.instr.uid b.instr.uid;
              exit 1
            end
            else begin
              incr compared;
              go ()
            end
          in
          go ();
          Printf.printf "verify: %d events replayed bit-identical\n" !compared
      end
    in
    Cmd.v
      (Cmd.info "pack"
         ~doc:
           "Record one scheme's event stream into a compact binary trace \
            pack (length-framed, digest-verified; replayable via mmap in \
            O(batch) memory)")
      Term.(
        const run $ app_opt_arg $ scheme_arg $ instrs_arg $ pack_out_arg
        $ verify_arg)
  in
  let info_cmd =
    let file_arg =
      let doc = "Trace pack file to inspect." in
      Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
    in
    let run file =
      match Prog.Trace.Pack.open_file file with
      | Error msg ->
        Printf.eprintf "%s: %s\n" file msg;
        exit 1
      | Ok pk ->
        Printf.printf "file:    %s\n" file;
        Printf.printf "version: %d\n" Prog.Trace.Pack.version;
        Printf.printf "events:  %d\n" (Prog.Trace.Pack.count pk);
        Printf.printf "bytes:   %d (%d header + %d x %d records)\n"
          (Prog.Trace.Pack.file_bytes pk)
          Prog.Trace.Pack.header_bytes
          (Prog.Trace.Pack.count pk)
          Prog.Trace.Pack.record_bytes;
        Printf.printf "digest:  verified\n"
    in
    Cmd.v
      (Cmd.info "info"
         ~doc:
           "Print a trace pack's header: format version, event count and \
            length framing (opening verifies the payload digest)")
      Term.(const run $ file_arg)
  in
  Cmd.group ~default:export_term
    (Cmd.info "trace"
       ~doc:
         "Trace tooling: export a Chrome/Perfetto trace of one run \
          (default), record a binary trace pack, or inspect one")
    [ export_cmd; pack_cmd; info_cmd ]

(* ------------------------------- report --------------------------- *)

let report_cmd =
  let schemes_arg =
    let doc =
      "Comma-separated schemes to report (default: \
       baseline,critic,opp16+critic)."
    in
    Arg.(
      value
      & opt string "baseline,critic,opp16+critic"
      & info [ "schemes" ] ~doc)
  in
  let run app instrs window schemes =
    let profile = or_die (lookup_app app) in
    let schemes =
      List.map parse_scheme (String.split_on_char ',' schemes)
    in
    let ctx = Critics.Run.prepare ~instrs profile in
    let runs =
      List.map
        (fun scheme ->
          let probe = Telemetry.Probe.create ~window () in
          let st = Critics.Run.stats ~probe ctx scheme in
          (scheme, st, probe))
        schemes
    in
    Printf.printf "%s (%d work instructions, window %d cycles)\n\n"
      profile.name instrs window;
    (* CPI stacks: per-stage cycles per committed instruction, the
       paper's Fig. 3 decomposition, one row per scheme. *)
    let stack_table pop_name pop =
      let rows =
        List.map
          (fun (scheme, (st : Pipeline.Stats.t), probe) ->
            let t : Telemetry.Probe.stage_totals =
              Telemetry.Probe.totals probe pop
            in
            let per x =
              if t.count = 0 then "-"
              else Printf.sprintf "%.3f" (float_of_int x /. float_of_int t.count)
            in
            [
              Critics.Scheme.name scheme;
              string_of_int st.cycles;
              string_of_int t.count;
              per t.fetch_i;
              per t.fetch_rd;
              per t.decode;
              per t.rename;
              per t.issue_wait;
              per t.execute;
              per t.commit_wait;
            ])
          runs
      in
      Printf.printf "CPI stack — %s population (cycles/instr)\n%s\n" pop_name
        (Util.Text_table.render
           ~header:
             [ "scheme"; "cycles"; "count"; "f.stall_i"; "f.stall_r+d";
               "decode"; "rename"; "issue"; "execute"; "commit" ]
           rows)
    in
    stack_table "all" Telemetry.Probe.All;
    stack_table "critical" Telemetry.Probe.Critical;
    stack_table "chain" Telemetry.Probe.Chain;
    let chain_rows =
      List.filter_map
        (fun (scheme, _, probe) ->
          let reg = Telemetry.Probe.registry probe in
          let h = Telemetry.Registry.histogram reg "chain/latency" in
          if Telemetry.Registry.hist_count h = 0 then None
          else
            Some
              [
                Critics.Scheme.name scheme;
                string_of_int (Telemetry.Registry.hist_count h);
                string_of_int (Telemetry.Registry.quantile h 0.50);
                string_of_int (Telemetry.Registry.quantile h 0.90);
                string_of_int (Telemetry.Registry.quantile h 0.99);
                string_of_int (Telemetry.Registry.hist_max h);
              ])
        runs
    in
    if chain_rows <> [] then
      Printf.printf
        "chain latency — dispatch of first member to commit of last \
         (cycles)\n%s\n"
        (Util.Text_table.render
           ~header:[ "scheme"; "chains"; "p50"; "p90"; "p99"; "max" ]
           chain_rows)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Print per-population CPI stacks and CritIC chain-latency \
          quantiles from the cycle-attribution telemetry")
    Term.(const run $ app_opt_arg $ instrs_arg $ window_arg $ schemes_arg)

(* ------------------------------- check ---------------------------- *)

let check_cmd =
  let cases_arg =
    let doc =
      "Fuzzed programs to run through the differential harness (in \
       addition to the seed applications)."
    in
    Arg.(value & opt int 200 & info [ "cases" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Base fuzz seed; case $(i) uses seed SEED+$(i)." in
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let per_pass_arg =
    let doc =
      "Additionally run every nanopass pipeline variant with the \
       architectural checker armed after every individual pass, \
       attributing any divergence to the exact stage that introduced it."
    in
    Arg.(value & flag & info [ "per-pass" ] ~doc)
  in
  let run cases seed per_pass =
    let module D = Oracle.Differential in
    let failures = ref 0 in
    let events = ref 0 in
    let pipelines = ref 0 in
    let report label = function
      | Ok n -> events := !events + n
      | Error msg ->
        incr failures;
        Printf.eprintf "FAIL %-24s %s\n%!" label msg
    in
    (* [check_program] is [prepare] + [check_prepared]; preparing here
       lets --per-pass reuse the walk/trace/profile for the pipeline
       sweep without changing what the default mode runs. *)
    let check_pipelines label prepared =
      match D.check_pipelines prepared with
      | Ok n -> pipelines := !pipelines + n
      | Error msg ->
        incr failures;
        Printf.eprintf "FAIL %-24s %s\n%!" (label ^ " per-pass") msg
    in
    Printf.printf
      "differential check: %d apps x %d machine configs, then %d fuzzed \
       programs%s\n%!"
      (List.length Workload.Apps.all)
      (List.length D.configs) cases
      (if per_pass then " (per-pass pipeline checks on)" else "");
    List.iter
      (fun (p : Workload.Profile.t) ->
        let prepared =
          D.prepare ~instrs:1_500 (Workload.Gen.program p)
            ~seed:(p.seed lxor 0x5EED)
        in
        report p.name (D.check_prepared prepared);
        if per_pass then check_pipelines p.name prepared)
      Workload.Apps.all;
    let fuzz_configs =
      List.filter
        (fun (name, _) -> List.mem name [ "table_i"; "narrow2"; "wrong_path" ])
        D.configs
    in
    for i = 0 to cases - 1 do
      let s = seed + i in
      let program = Workload.Fuzz.program_of_seed s in
      let prepared = D.prepare ~instrs:500 program ~seed:((s * 7) + 1) in
      (match
         D.check_prepared ~configs:fuzz_configs ~variant_configs:fuzz_configs
           prepared
       with
      | Ok n -> events := !events + n
      | Error msg ->
        incr failures;
        Printf.eprintf "FAIL fuzz seed %d: %s\ngenome:\n%s\n%!" s msg
          (Workload.Fuzz.to_string (Workload.Fuzz.spec_of_seed s)));
      if per_pass then
        check_pipelines (Printf.sprintf "fuzz seed %d" s) prepared
    done;
    if !failures = 0 then begin
      Printf.printf "ok: %d retirements compared, no divergence\n" !events;
      if per_pass then
        Printf.printf
          "per-pass: %d pipeline variants checked after every pass\n"
          !pipelines
    end
    else begin
      Printf.eprintf "%d check(s) failed\n" !failures;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Differentially test the simulator, the trace expander and every \
          transform against the golden architectural model")
    Term.(const run $ cases_arg $ seed_arg $ per_pass_arg)

(* ------------------------------ cache ----------------------------- *)

let cache_cmd =
  let dir_arg =
    let doc =
      "Cache directory (default: the $(b,CRITICS_CACHE_DIR) environment \
       variable)."
    in
    Arg.(value & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let open_store dir =
    match dir with
    | Some d -> Store.open_dir d
    | None -> (
      match Store.open_default () with
      | Some st -> st
      | None ->
        prerr_endline
          "critics cache: no cache directory — set CRITICS_CACHE_DIR or \
           pass --dir";
        exit 1)
  in
  let stat dir =
    let st = open_store dir in
    Printf.printf "dir:     %s\n" (Store.dir st);
    Printf.printf "format:  %s\n" Store.format_version;
    Printf.printf "code:    %s\n" (Store.code_version ());
    Printf.printf "entries: %d\n" (Store.entry_count st);
    Printf.printf "bytes:   %d\n" (Store.total_bytes st)
  in
  let clear dir =
    let st = open_store dir in
    let removed = Store.clear st in
    Printf.printf "removed %d entr%s from %s\n" removed
      (if removed = 1 then "y" else "ies")
      (Store.dir st)
  in
  let stat_cmd =
    Cmd.v
      (Cmd.info "stat"
         ~doc:
           "Show the store's location, versions, entry count and on-disk \
            size")
      Term.(const stat $ dir_arg)
  in
  let clear_cmd =
    Cmd.v
      (Cmd.info "clear" ~doc:"Remove every cached entry")
      Term.(const clear $ dir_arg)
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:
         "Inspect or clear the prepared-context store (the on-disk cache \
          bench and the harness reuse across runs when CRITICS_CACHE_DIR \
          is set)")
    [ stat_cmd; clear_cmd ]

(* ------------------------------ serve ----------------------------- *)

(* The fleet-scale ingest service: a synthetic population of per-user
   profile uploads (Population) pushed through the crash-recoverable
   sharded engine (Service.Engine) on the domain pool, with the
   experiment harness's retry policy on contained failures. *)

let serve_cmd =
  let dir_arg =
    let doc = "Service state directory (created on first use)." in
    Arg.(value & opt string "_service" & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let users_arg =
    let doc =
      "Synthetic users per app; the workload is this times the 26 Table II \
       apps."
    in
    Arg.(value & opt int 40 & info [ "users" ] ~docv:"N" ~doc)
  in
  let shards_arg =
    let doc = "Shard count (fixed at the directory's creation)." in
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let every_arg =
    let doc = "WAL records per shard between compacting checkpoints." in
    Arg.(value & opt int 256 & info [ "checkpoint-every" ] ~docv:"N" ~doc)
  in
  let jobs_arg =
    let doc = "Ingest worker domains (default: CRITICS_JOBS or core count)." in
    Arg.(value & opt (some int) None & info [ "jobs" ] ~docv:"N" ~doc)
  in
  let no_durable_arg =
    let doc =
      "Skip fsyncs (throughput mode; the crash contract then only covers \
       process death, not power loss)."
    in
    Arg.(value & flag & info [ "no-durable" ] ~doc)
  in
  let chaos_arg =
    let doc =
      "Instead of serving, run the deterministic chaos sweep under \
       $(b,DIR/chaos-sweep): a fault injected at every IO index (sampled \
       down to at most $(docv) crash points), each case proving recovery \
       to the last acknowledged upload.  Exits 1 on any contract \
       violation."
    in
    Arg.(value & opt (some int) None & info [ "chaos" ] ~docv:"N" ~doc)
  in
  let progress_arg =
    let doc =
      "Append one flushed \"acked N\" line to $(docv) per acknowledged \
       upload (lets an external harness kill the service mid-ingest and \
       know exactly what was promised)."
    in
    Arg.(value & opt (some string) None & info [ "progress" ] ~docv:"FILE" ~doc)
  in
  let results_arg =
    let doc =
      "Embed the throughput/latency summary as the \"serve\" member of \
       this BENCH_results.json (created if missing)."
    in
    Arg.(value & opt (some string) None & info [ "results" ] ~docv:"FILE" ~doc)
  in
  let population users =
    List.map
      (fun (u : Workload.Population.upload) ->
        { Service.Chaos.up_id = u.id; up_app = u.app; up_payload = u.payload })
      (Workload.Population.generate ~users_per_app:users ())
  in
  let run_chaos dir users shards every max_cases =
    let uploads = population users in
    Printf.printf
      "chaos: %d uploads over %d shard(s), checkpoint every %d, at most %d \
       crash point(s)\n%!"
      (List.length uploads) shards every max_cases;
    let rep =
      Service.Chaos.sweep
        ~dir:(Filename.concat dir "chaos-sweep")
        ~shards ~checkpoint_every:every ~max_cases ~uploads ()
    in
    print_string (Service.Chaos.render rep);
    if rep.rep_violations > 0 then exit 1
  in
  let embed_results path ~summary =
    let base =
      if Sys.file_exists path then
        try Util.Json.parse (Util.Atomic_io.read_file path)
        with Util.Json.Parse_error _ -> Util.Json.Obj []
      else Util.Json.Obj []
    in
    let members =
      match base with Util.Json.Obj ms -> ms | _ -> []
    in
    let members =
      List.remove_assoc "serve" members @ [ ("serve", summary) ]
    in
    Util.Atomic_io.write path (Util.Json.to_string (Util.Json.Obj members));
    Printf.printf "serve summary embedded in %s\n" path
  in
  let serve dir users shards every jobs no_durable chaos progress results =
    match chaos with
    | Some n -> run_chaos dir users shards every n
    | None ->
      let uploads = population users in
      let cfg =
        Service.Engine.config ~shards ~checkpoint_every:every
          ~durable:(not no_durable) dir
      in
      let eng, r = Service.Engine.open_ cfg in
      Printf.printf
        "recovered %d upload(s) (%d replayed from WAL, %d stale skipped, %d \
         torn tail(s) repaired)\n\
         ingesting %d upload(s) from %d apps x %d users...\n\
         %!"
        r.rec_uploads r.rec_replayed r.rec_skipped r.rec_torn_tails
        (List.length uploads)
        (List.length Workload.Apps.all)
        users;
      let progress_oc =
        Option.map
          (fun p -> open_out_gen [ Open_append; Open_creat ] 0o644 p)
          progress
      in
      let progress_lock = Mutex.create () in
      let acked = ref 0 in
      let note_ack () =
        match progress_oc with
        | None -> ()
        | Some oc ->
          Mutex.lock progress_lock;
          incr acked;
          Printf.fprintf oc "acked %d\n" !acked;
          flush oc;
          Mutex.unlock progress_lock
      in
      let pool = Parallel.Pool.create ?jobs () in
      let policy = Experiments.Harness.default_policy in
      let t0 = Unix.gettimeofday () in
      let results_list =
        Parallel.Pool.run_supervised pool
          (List.map
             (fun (u : Service.Chaos.upload) () ->
               let rec attempt round =
                 let t = Unix.gettimeofday () in
                 match
                   Service.Engine.ingest eng ~id:u.up_id ~app:u.up_app
                     ~payload:u.up_payload
                 with
                 | Ok ack ->
                   note_ack ();
                   ( int_of_float ((Unix.gettimeofday () -. t) *. 1e6),
                     ack.Service.Engine.ack_duplicate )
                 | Error msg ->
                   if round > policy.Experiments.Harness.retries then
                     failwith msg
                   else begin
                     let d =
                       Experiments.Harness.backoff_delay_s policy ~round
                     in
                     if d > 0.0 then Unix.sleepf d;
                     attempt (round + 1)
                   end
               in
               attempt 1)
             uploads)
      in
      let wall_s = Unix.gettimeofday () -. t0 in
      let reg = Telemetry.Registry.create () in
      let lat = Telemetry.Registry.histogram reg "serve/ingest_us" in
      let ok = ref 0 and dups = ref 0 and failed = ref 0 in
      List.iter
        (function
          | Ok (us, dup) ->
            Telemetry.Registry.observe lat us;
            incr ok;
            if dup then incr dups
          | Error (e, _bt) ->
            incr failed;
            Printf.eprintf "serve: upload failed: %s\n" (Printexc.to_string e))
        results_list;
      Service.Engine.checkpoint eng;
      let seqs = Service.Engine.shard_seqs eng in
      let runtime = Service.Engine.runtime eng in
      let rt name =
        Telemetry.Registry.counter_value
          (Telemetry.Registry.counter runtime name)
      in
      let total_uploads = Service.Engine.uploads eng in
      Service.Engine.close eng;
      let ups = float_of_int !ok /. Float.max wall_s 1e-9 in
      let p50 = Telemetry.Registry.quantile lat 0.5
      and p99 = Telemetry.Registry.quantile lat 0.99 in
      Printf.printf
        "acked %d upload(s) (%d duplicate(s), %d failed) in %.2fs — %.0f \
         uploads/s\n\
         ingest latency: p50 %d us, p99 %d us\n\
         checkpoints %d (failures %d, rotate failures %d)\n\
         shard seqs: [%s]\n\
         store now holds %d distinct upload(s)\n"
        !ok !dups !failed wall_s ups p50 p99 (rt "service/checkpoints")
        (rt "service/checkpoint_failures")
        (rt "service/rotate_failures")
        (String.concat "; "
           (Array.to_list (Array.map string_of_int seqs)))
        total_uploads;
      Option.iter close_out progress_oc;
      (match Service.Engine.fsck dir with
      | Error msg ->
        Printf.eprintf "fsck: %s\n" msg;
        exit 1
      | Ok rep ->
        if not (Service.Engine.clean ~strict:true rep) then begin
          prerr_endline "fsck after serving is not clean:";
          prerr_endline (Service.Engine.render rep);
          exit 1
        end);
      (match results with
      | None -> ()
      | Some path ->
        let f x = Util.Json.Num x in
        embed_results path
          ~summary:
            (Util.Json.Obj
               [
                 ("uploads", f (float_of_int !ok));
                 ("duplicates", f (float_of_int !dups));
                 ("failed", f (float_of_int !failed));
                 ("wall_ms", f (wall_s *. 1000.0));
                 ("uploads_per_s", f ups);
                 ("p50_us", f (float_of_int p50));
                 ("p99_us", f (float_of_int p99));
                 ("shards", f (float_of_int shards));
                 ("checkpoints", f (float_of_int (rt "service/checkpoints")));
                 ("store_uploads", f (float_of_int total_uploads));
               ]));
      if !failed > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the crash-recoverable sharded profile-ingest service over a \
          synthetic upload population (or, with $(b,--chaos), prove its \
          durability contract under deterministic fault injection)")
    Term.(
      const serve $ dir_arg $ users_arg $ shards_arg $ every_arg $ jobs_arg
      $ no_durable_arg $ chaos_arg $ progress_arg $ results_arg)

(* ------------------------------ store ----------------------------- *)

let store_cmd =
  let dir_arg =
    let doc = "Service state directory to check." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)
  in
  let strict_arg =
    let doc =
      "Also fail on torn WAL tails (right after a clean shutdown or a \
       recovery there must be none; right after a kill mid-append one is \
       expected)."
    in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let expect_arg =
    let doc =
      "Fail unless the store holds at least $(docv) distinct uploads \
       (acknowledged-upload preservation check for crash harnesses)."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "expect-min-uploads" ] ~docv:"N" ~doc)
  in
  let fsck dir strict expect =
    match Service.Engine.fsck dir with
    | Error msg ->
      prerr_endline ("fsck: " ^ msg);
      exit 1
    | Ok rep ->
      print_string (Service.Engine.render rep);
      let short =
        match expect with
        | Some n when rep.Service.Engine.total_uploads < n ->
          Printf.eprintf "fsck: expected at least %d upload(s), found %d\n" n
            rep.Service.Engine.total_uploads;
          true
        | _ -> false
      in
      if short || not (Service.Engine.clean ~strict rep) then exit 1
  in
  let fsck_cmd =
    Cmd.v
      (Cmd.info "fsck"
         ~doc:
           "Read-only integrity walk of a service directory: checkpoint \
            digests, WAL frames and digests, sequence continuity")
      Term.(const fsck $ dir_arg $ strict_arg $ expect_arg)
  in
  Cmd.group
    (Cmd.info "store"
       ~doc:"Inspect the ingest service's durable state")
    [ fsck_cmd ]

(* ------------------------------ main ----------------------------- *)

let () =
  let info =
    Cmd.info "critics" ~version:Critics.version
      ~doc:"CritICs: critical instruction chains for mobile apps (MICRO'18)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ apps_cmd; config_cmd; schemes_cmd; run_cmd; compare_cmd;
            profile_cmd; characterize_cmd; experiment_cmd; sweep_cmd;
            trace_cmd; report_cmd; check_cmd; cache_cmd; serve_cmd;
            store_cmd ]))
