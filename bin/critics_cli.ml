(* Command-line interface to the CritICs reproduction. *)

open Cmdliner

let app_arg =
  let doc = "Application name (see `critics apps' for the list)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc)

let instrs_arg =
  let doc = "Dynamic work instructions to simulate per run." in
  Arg.(value & opt int Critics.Run.default_instrs & info [ "instrs" ] ~doc)

let lookup_app name =
  match Workload.Apps.find name with
  | Some p -> Ok p
  | None ->
    Error
      (Printf.sprintf "unknown app %S; try `critics apps'" name)

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline msg;
    exit 1

(* ------------------------------- apps ---------------------------- *)

let apps_cmd =
  let run () = print_endline (Workload.Apps.table_ii ()) in
  Cmd.v (Cmd.info "apps" ~doc:"List the evaluated applications (Table II)")
    Term.(const run $ const ())

(* ------------------------------ config --------------------------- *)

let config_cmd =
  let run () =
    print_endline
      (Util.Text_table.render_kv
         (Pipeline.Config.describe Pipeline.Config.table_i))
  in
  Cmd.v
    (Cmd.info "config" ~doc:"Print the baseline machine (Table I)")
    Term.(const run $ const ())

(* ------------------------------- run ----------------------------- *)

let scheme_arg =
  let doc =
    "Scheme: " ^ String.concat ", " (List.map Critics.Scheme.name Critics.Scheme.all)
  in
  Arg.(value & opt string "critic" & info [ "scheme" ] ~doc)

let run_cmd =
  let run app scheme instrs =
    let profile = or_die (lookup_app app) in
    let scheme =
      match Critics.Scheme.of_string scheme with
      | Some s -> s
      | None ->
        prerr_endline ("unknown scheme " ^ scheme);
        exit 1
    in
    let ctx = Critics.Run.prepare ~instrs profile in
    let base = Critics.Run.stats ctx Critics.Scheme.Baseline in
    let st = Critics.Run.stats ctx scheme in
    Printf.printf "%s / %s (%d work instructions)\n\n" profile.name
      (Critics.Scheme.name scheme) instrs;
    print_endline (Pipeline.Stats.render st);
    if scheme <> Critics.Scheme.Baseline then begin
      Printf.printf "\nspeedup over baseline: %s\n"
        (Util.Stats.pct (Critics.Run.speedup ~base st));
      let e = Critics.Run.energy ~base st in
      Printf.printf "system energy saving:  %s (CPU-only %s)\n"
        (Util.Stats.pct e.system) (Util.Stats.pct e.cpu_only)
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate one application under one scheme")
    Term.(const run $ app_arg $ scheme_arg $ instrs_arg)

(* ----------------------------- compare --------------------------- *)

let compare_cmd =
  let run app instrs =
    let profile = or_die (lookup_app app) in
    let ctx = Critics.Run.prepare ~instrs profile in
    let base = Critics.Run.stats ctx Critics.Scheme.Baseline in
    Printf.printf "%s: baseline %d cycles, IPC %.2f\n\n" profile.name
      base.cycles (Pipeline.Stats.ipc base);
    let rows =
      List.map
        (fun scheme ->
          let st = Critics.Run.stats ctx scheme in
          [
            Critics.Scheme.name scheme;
            string_of_int st.Pipeline.Stats.cycles;
            Util.Stats.pct (Critics.Run.speedup ~base st);
            Util.Stats.pct
              (float_of_int st.thumb_committed
              /. float_of_int (max 1 st.committed_total));
          ])
        Critics.Scheme.all
    in
    print_endline
      (Util.Text_table.render
         ~header:[ "scheme"; "cycles"; "speedup"; "16-bit instrs" ]
         rows)
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run every scheme on one application")
    Term.(const run $ app_arg $ instrs_arg)

(* ----------------------------- profile --------------------------- *)

let profile_cmd =
  let save_arg =
    let doc = "Write the CritIC database to $(docv) (text format)." in
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)
  in
  let run app instrs save =
    let profile = or_die (lookup_app app) in
    let ctx = Critics.Run.prepare ~instrs profile in
    let db = ctx.db in
    (match save with
    | Some path ->
      Profiler.Db_io.save db path;
      Printf.printf "database written to %s\n" path
    | None -> ());
    Printf.printf "%s: %d CritIC sites, coverage %s (convertible %s)\n\n"
      profile.name
      (List.length db.sites)
      (Util.Stats.pct (Profiler.Critic_db.coverage db))
      (Util.Stats.pct (Profiler.Critic_db.convertible_coverage db));
    let top = List.filteri (fun i _ -> i < 15) db.sites in
    print_endline
      (Util.Text_table.render
         ~header:
           [ "block"; "len"; "occurrences"; "criticality"; "convertible";
             "chain" ]
         (List.map
            (fun (s : Profiler.Critic_db.site) ->
              [
                string_of_int s.block_id;
                string_of_int (Profiler.Critic_db.site_length s);
                string_of_int s.occurrences;
                Printf.sprintf "%.1f" s.criticality;
                (if s.convertible then "yes" else "no");
                s.key;
              ])
            top))
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Show the CritIC database of an application")
    Term.(const run $ app_arg $ instrs_arg $ save_arg)

(* --------------------------- characterize ------------------------- *)

let characterize_cmd =
  let run app instrs =
    let profile = or_die (lookup_app app) in
    let _, trace = Workload.Gen.trace ~instrs profile in
    Printf.printf "%s — %s\n\n%s\n" profile.name profile.activity
      (Workload.Characterize.render (Workload.Characterize.of_trace trace))
  in
  Cmd.v
    (Cmd.info "characterize"
       ~doc:"Summarize an application's dynamic instruction stream")
    Term.(const run $ app_arg $ instrs_arg)

(* ------------------------------ schemes --------------------------- *)

let schemes_cmd =
  let run () =
    List.iter
      (fun s ->
        Printf.printf "%-16s %s\n" (Critics.Scheme.name s)
          (Critics.Scheme.describe s))
      Critics.Scheme.all
  in
  Cmd.v
    (Cmd.info "schemes" ~doc:"List the code-generation schemes")
    Term.(const run $ const ())

(* ---------------------------- experiment -------------------------- *)

let experiment_cmd =
  let id_arg =
    let doc = "Experiment id (tab1, tab2, fig1, ..., ablations) or `all'." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let jobs_arg =
    let doc =
      "Domains to evaluate simulations on (default: CRITICS_JOBS if set, \
       else the machine's recommended domain count).  Results are \
       bit-identical for every value."
    in
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let run id instrs jobs =
    let h = Experiments.Harness.create ~instrs ?jobs () in
    if id = "all" then Experiments.run_all h
    else
      match Experiments.find id with
      | Some e ->
        Experiments.prewarm ~only:e h;
        print_endline (e.render h)
      | None ->
        prerr_endline
          ("unknown experiment; available: all "
          ^ String.concat " "
              (List.map (fun (e : Experiments.entry) -> e.id) Experiments.all));
        exit 1
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate a table/figure of the paper (or `all')")
    Term.(const run $ id_arg $ instrs_arg $ jobs_arg)

(* ------------------------------- check ---------------------------- *)

let check_cmd =
  let cases_arg =
    let doc =
      "Fuzzed programs to run through the differential harness (in \
       addition to the seed applications)."
    in
    Arg.(value & opt int 200 & info [ "cases" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Base fuzz seed; case $(i) uses seed SEED+$(i)." in
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let run cases seed =
    let module D = Oracle.Differential in
    let failures = ref 0 in
    let events = ref 0 in
    let report label = function
      | Ok n -> events := !events + n
      | Error msg ->
        incr failures;
        Printf.eprintf "FAIL %-24s %s\n%!" label msg
    in
    Printf.printf
      "differential check: %d apps x %d machine configs, then %d fuzzed \
       programs\n%!"
      (List.length Workload.Apps.all)
      (List.length D.configs) cases;
    List.iter
      (fun (p : Workload.Profile.t) ->
        report p.name
          (D.check_program ~instrs:1_500 (Workload.Gen.program p)
             ~seed:(p.seed lxor 0x5EED)))
      Workload.Apps.all;
    let fuzz_configs =
      List.filter
        (fun (name, _) -> List.mem name [ "table_i"; "narrow2"; "wrong_path" ])
        D.configs
    in
    for i = 0 to cases - 1 do
      let s = seed + i in
      let program = Workload.Fuzz.program_of_seed s in
      match
        D.check_program ~configs:fuzz_configs ~variant_configs:fuzz_configs
          ~instrs:500 program ~seed:((s * 7) + 1)
      with
      | Ok n -> events := !events + n
      | Error msg ->
        incr failures;
        Printf.eprintf "FAIL fuzz seed %d: %s\ngenome:\n%s\n%!" s msg
          (Workload.Fuzz.to_string (Workload.Fuzz.spec_of_seed s))
    done;
    if !failures = 0 then
      Printf.printf "ok: %d retirements compared, no divergence\n" !events
    else begin
      Printf.eprintf "%d check(s) failed\n" !failures;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Differentially test the simulator, the trace expander and every \
          transform against the golden architectural model")
    Term.(const run $ cases_arg $ seed_arg)

(* ------------------------------ main ----------------------------- *)

let () =
  let info =
    Cmd.info "critics" ~version:Critics.version
      ~doc:"CritICs: critical instruction chains for mobile apps (MICRO'18)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ apps_cmd; config_cmd; schemes_cmd; run_cmd; compare_cmd;
            profile_cmd; characterize_cmd; experiment_cmd; check_cmd ]))
