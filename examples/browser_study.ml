(* A deep dive into one app (Browser): where do critical instructions
   spend their time, what do the profiled chains look like, and what
   changes once the CritIC pass runs?

   Run with: dune exec examples/browser_study.exe *)

let shares name (s : Critics.Pipeline.Stats.stage_summary) =
  Printf.printf "%-22s" name;
  List.iter
    (fun (k, v) -> Printf.printf " %s %4.1f%%" k (100.0 *. v))
    (Critics.Pipeline.Stats.summary_shares s);
  print_newline ()

let () =
  let app = Option.get (Critics.Workload.Apps.find "Browser") in
  let ctx = Critics.Run.prepare ~instrs:120_000 app in
  Printf.printf "== %s: %d static blocks, %d KB of code\n\n" app.name
    (Critics.Prog.Program.num_blocks ctx.program)
    (Critics.Prog.Program.code_size ctx.program / 1024);

  (* Baseline: the critical population is front-end heavy. *)
  let base = Critics.Run.stats ctx Critics.Scheme.Baseline in
  Printf.printf "baseline IPC %.2f; critical instructions: %s of stream\n"
    (Critics.Pipeline.Stats.ipc base)
    (Critics.Util.Stats.pct (Critics.Pipeline.Stats.critical_fraction base));
  shares "  all instructions" base.stage_all;
  shares "  critical instrs" base.stage_critical;

  (* The profiled chains. *)
  let db = ctx.db in
  Printf.printf "\nCritIC database: %d sites, coverage %s, convertible %s\n"
    (List.length db.sites)
    (Critics.Util.Stats.pct (Critics.Profiler.Critic_db.coverage db))
    (Critics.Util.Stats.pct
       (Critics.Profiler.Critic_db.convertible_coverage db));
  let lengths =
    List.map Critics.Profiler.Critic_db.site_length db.sites
    |> List.map float_of_int
  in
  Printf.printf "site length: mean %.1f, max %.0f\n"
    (Critics.Util.Stats.mean lengths)
    (List.fold_left max 0.0 lengths);

  (* After the pass: chains run in 16-bit form behind CDP markers. *)
  let critic = Critics.Run.stats ctx Critics.Scheme.Critic in
  Printf.printf "\nCritIC: %d cycles vs %d baseline → %s speedup\n"
    critic.cycles base.cycles
    (Critics.Util.Stats.pct (Critics.Run.speedup ~base critic));
  Printf.printf "16-bit instructions executed: %d (+%d CDP markers)\n"
    critic.thumb_committed critic.cdp_markers;
  shares "  chain instructions" critic.stage_chain;

  (* Fetch side effect of the conversion. *)
  Printf.printf "\ni-cache: %d accesses (baseline %d), misses %d (vs %d)\n"
    critic.l1i.accesses base.l1i.accesses critic.l1i.misses base.l1i.misses
