(* Build a small program by hand with the public API, inspect its
   data-flow graph and instruction chains, and replay the paper's
   worked scheduling example (Figs. 2/4).

   Run with: dune exec examples/chain_explorer.exe *)

module I = Critics.Isa.Instr
module Op = Critics.Isa.Opcode

let r = Critics.Isa.Reg.r

(* A hand-written block exhibiting the mobile pattern: a chain
   root -> link -> tail where the root and tail each feed a burst of
   consumers, with the chain members interspersed among them. *)
let block =
  let uid = ref 0 in
  let mk ?dst ?(srcs = []) op =
    incr uid;
    I.make ~uid:!uid ~opcode:op ?dst ~srcs ()
  in
  let body =
    [|
      mk ~dst:(r 0) Op.Alu;                    (* chain root *)
      mk ~dst:(r 6) ~srcs:[ r 0 ] Op.Alu;      (* consumers of the root *)
      mk ~dst:(r 6) ~srcs:[ r 0 ] Op.Alu;
      mk ~dst:(r 6) ~srcs:[ r 0 ] Op.Alu;
      mk ~dst:(r 6) ~srcs:[ r 0 ] Op.Alu;
      mk ~dst:(r 1) ~srcs:[ r 0 ] Op.Alu;      (* gap link *)
      mk ~dst:(r 6) ~srcs:[ r 1 ] Op.Alu;
      mk ~dst:(r 2) ~srcs:[ r 1 ] Op.Alu;      (* chain tail *)
      mk ~dst:(r 6) ~srcs:[ r 2 ] Op.Alu;      (* consumers of the tail *)
      mk ~dst:(r 6) ~srcs:[ r 2 ] Op.Alu;
      mk ~dst:(r 6) ~srcs:[ r 2 ] Op.Alu;
      mk ~dst:(r 6) ~srcs:[ r 2 ] Op.Alu;
    |]
  in
  Critics.Prog.Block.make ~id:0 ~func:0 ~body
    ~term:(Critics.Prog.Block.Jump 0)

let () =
  let program = Critics.Prog.Program.make ~entry:0 ~blocks:[ block ] in
  let path = Critics.Prog.Walk.path_visits program ~seed:7 ~visits:1 in
  let trace = Critics.Prog.Trace.expand program ~seed:7 path in
  let dfg = Critics.Dfg.of_events trace in

  print_endline "Instructions and fanouts:";
  Array.iteri
    (fun i (node : Critics.Dfg.node) ->
      Format.printf "  [%2d] %a   fanout=%d%s@." i I.pp
        node.event.instr (Critics.Dfg.fanout dfg i)
        (if Critics.Dfg.is_high_fanout ~threshold:4 dfg i then
           "  <- critical"
         else ""))
    (Critics.Dfg.nodes dfg);

  print_endline "\nIndependently schedulable instruction chains (ICs):";
  List.iter
    (fun (ic : Critics.Dfg.Ic.t) ->
      Format.printf "  [%s]  len=%d spread=%d criticality=%.2f@."
        (String.concat " -> " (List.map string_of_int ic.nodes))
        (Critics.Dfg.Ic.length ic)
        (Critics.Dfg.Ic.spread dfg ic)
        (Critics.Dfg.Ic.criticality dfg ic))
    (Critics.Dfg.Ic.enumerate dfg);

  print_endline "\nWorked scheduling example (Figs. 2/4):";
  print_endline
    (Experiments.Worked_example.render (Experiments.Worked_example.example ()))
