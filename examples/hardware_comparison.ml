(* CritIC (software-only) against the hardware fetch/backend mechanisms
   of Sec. IV-G, on two contrasting apps: a chain-dense document reader
   (Acrobat) and a streaming app (Youtube).

   Run with: dune exec examples/hardware_comparison.exe *)

let mechanisms =
  let open Critics.Pipeline.Config in
  [
    ("2xFD", with_2x_fd table_i);
    ("4xI$", with_4x_icache table_i);
    ("EFetch", with_efetch table_i);
    ("PerfectBr", with_perfect_branch table_i);
    ("BackendPrio", with_backend_prio table_i);
    ("AllHW", all_hw table_i);
  ]

let study name =
  let app = Option.get (Critics.Workload.Apps.find name) in
  let ctx = Critics.Run.prepare ~instrs:120_000 app in
  let base = Critics.Run.stats ctx Critics.Scheme.Baseline in
  Printf.printf "\n== %s (baseline IPC %.2f)\n" name
    (Critics.Pipeline.Stats.ipc base);
  let row label config scheme =
    let st = Critics.Run.stats ~config ctx scheme in
    Printf.printf "  %-24s %s\n" label
      (Critics.Util.Stats.pct (Critics.Run.speedup ~base st))
  in
  row "CritIC (no extra HW)" Critics.Pipeline.Config.table_i
    Critics.Scheme.Critic;
  List.iter
    (fun (label, config) ->
      row (label ^ " alone") config Critics.Scheme.Baseline;
      row (label ^ " + CritIC") config Critics.Scheme.Critic)
    mechanisms

let () =
  print_endline
    "Speedup over the Table I baseline: hardware mechanisms vs software\n\
     CritIC, alone and combined.";
  study "Acrobat";
  study "Youtube"
