(* The deployment story of the paper (Sec. III-A2): apps are profiled
   *before* publication — emulator traces, simulator fanout tracking,
   offline aggregation — and the resulting CritIC database ships to the
   on-device compiler.  This example splits the flow the same way:

     phase 1 (vendor side): profile the app, save the database to disk;
     phase 2 (device side): load the database, run the compiler pass,
                            measure the result.

   Run with: dune exec examples/offline_pipeline.exe *)

let () =
  let app = Option.get (Critics.Workload.Apps.find "Office") in
  let db_file = Filename.temp_file "office" ".critics-db" in

  (* ---- phase 1: the vendor's profiling run --------------------- *)
  let vendor_ctx = Critics.Run.prepare ~instrs:100_000 app in
  Critics.Profiler.Db_io.save vendor_ctx.db db_file;
  Printf.printf "phase 1: profiled %s, %d chain sites -> %s\n" app.name
    (List.length vendor_ctx.db.sites)
    db_file;

  (* ---- phase 2: the device compiles with the shipped database -- *)
  let db = Critics.Profiler.Db_io.load db_file in
  Printf.printf "phase 2: loaded %d sites (coverage %s)\n"
    (List.length db.sites)
    (Critics.Util.Stats.pct (Critics.Profiler.Critic_db.coverage db));

  (* The device user runs a *different* execution sample than the one
     the vendor profiled — the whole point of profile-driven
     compilation is that chains generalize across runs. *)
  let device_ctx = Critics.Run.prepare ~instrs:100_000 ~sample:3 app in
  let program', report =
    Critics.Transform.Critic_pass.apply db device_ctx.program
  in
  Printf.printf
    "compiler: %d sites applied, %d instructions converted, %d CDPs\n"
    report.sites_applied report.instrs_converted report.cdp_inserted;

  let base =
    Critics.Pipeline.Cpu.run_stream Critics.Pipeline.Config.table_i
      (Critics.Run.source device_ctx Critics.Scheme.Baseline)
  in
  let critic =
    Critics.Pipeline.Cpu.run_stream Critics.Pipeline.Config.table_i
      (fun () ->
        Critics.Prog.Trace.Stream.of_program program' ~seed:device_ctx.seed
          device_ctx.path)
  in
  Printf.printf "device: %s speedup on an unprofiled execution sample\n"
    (Critics.Util.Stats.pct (Critics.Run.speedup ~base critic));
  Sys.remove db_file
