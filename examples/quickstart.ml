(* Quickstart: profile one Play-Store-style app, apply the CritIC
   compiler pass, and measure the speedup on the Table I machine.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Pick a workload (Table II). *)
  let app = Option.get (Critics.Workload.Apps.find "Email") in
  Printf.printf "App: %s — %s\n" app.name app.activity;

  (* 2. Generate the program, walk it, expand the trace, and run the
        offline profiler to build the CritIC database. *)
  let ctx = Critics.Run.prepare ~instrs:100_000 app in
  Printf.printf "CritIC sites: %d (dynamic coverage %s)\n"
    (List.length ctx.db.sites)
    (Critics.Util.Stats.pct (Critics.Profiler.Critic_db.coverage ctx.db));

  (* 3. Simulate the baseline and the CritIC-transformed binary over the
        exact same work. *)
  let base = Critics.Run.stats ctx Critics.Scheme.Baseline in
  let critic = Critics.Run.stats ctx Critics.Scheme.Critic in
  Printf.printf "baseline: %d cycles (IPC %.2f)\n" base.cycles
    (Critics.Pipeline.Stats.ipc base);
  Printf.printf "CritIC:   %d cycles (IPC %.2f)\n" critic.cycles
    (Critics.Pipeline.Stats.ipc critic);
  Printf.printf "speedup:  %s\n"
    (Critics.Util.Stats.pct (Critics.Run.speedup ~base critic));

  (* 4. Roll the cycle savings up into SoC energy. *)
  let e = Critics.Run.energy ~base critic in
  Printf.printf "energy:   %s system-wide, %s CPU-only\n"
    (Critics.Util.Stats.pct e.system)
    (Critics.Util.Stats.pct e.cpu_only)
