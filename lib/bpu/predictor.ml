type kind =
  | Two_level of { entries : int; history_bits : int }
  | Static_taken
  | Perfect

let default_kind = Two_level { entries = 4096; history_bits = 12 }

type stats = { lookups : int; mispredicts : int }

type machine =
  | M_two_level of {
      counters : int array; (* 2-bit saturating, taken if >= 2 *)
      mask : int;
      history_mask : int;
      mutable history : int;
    }
  | M_static
  | M_perfect

type t = {
  machine : machine;
  mutable lookups : int;
  mutable mispredicts : int;
}

let is_pow2 x = x > 0 && x land (x - 1) = 0

let create kind =
  let machine =
    match kind with
    | Two_level { entries; history_bits } ->
      if not (is_pow2 entries) then
        invalid_arg "Predictor.create: entries must be a power of two";
      M_two_level
        {
          counters = Array.make entries 2 (* weakly taken *);
          mask = entries - 1;
          history_mask = (1 lsl history_bits) - 1;
          history = 0;
        }
    | Static_taken -> M_static
    | Perfect -> M_perfect
  in
  { machine; lookups = 0; mispredicts = 0 }

let predict_and_update t ~pc ~taken =
  t.lookups <- t.lookups + 1;
  let predicted =
    match t.machine with
    | M_perfect -> taken
    | M_static -> true
    | M_two_level m ->
      let idx = ((pc lsr 2) lxor m.history) land m.mask in
      let predicted = m.counters.(idx) >= 2 in
      let c = m.counters.(idx) in
      (* int-specialized saturation: this runs once per conditional
         branch, and polymorphic min/max go through compare_val *)
      m.counters.(idx) <-
        (if taken then if c >= 3 then 3 else c + 1
         else if c <= 0 then 0
         else c - 1);
      m.history <-
        ((m.history lsl 1) lor (if taken then 1 else 0)) land m.history_mask;
      predicted
  in
  let correct = predicted = taken in
  if not correct then t.mispredicts <- t.mispredicts + 1;
  correct

let stats t = { lookups = t.lookups; mispredicts = t.mispredicts }

let accuracy t =
  if t.lookups = 0 then 1.0
  else 1.0 -. (float_of_int t.mispredicts /. float_of_int t.lookups)
