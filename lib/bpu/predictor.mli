(** Branch direction predictors.

    Table I specifies a "4k-entry 2-level BPU"; we implement a gshare
    two-level adaptive predictor (global history XOR-folded into a table
    of 2-bit saturating counters).  [Perfect] models the PerfectBr
    configuration of Sec. IV-G; [Static_taken] is a trivial reference
    predictor used in tests. *)

type kind =
  | Two_level of { entries : int; history_bits : int }
  | Static_taken
  | Perfect

val default_kind : kind
(** 4096 entries, 12 history bits. *)

type t

type stats = { lookups : int; mispredicts : int }

val create : kind -> t

val predict_and_update : t -> pc:int -> taken:bool -> bool
(** [predict_and_update t ~pc ~taken] predicts the branch at [pc],
    trains with the actual outcome [taken], and returns whether the
    prediction was correct. *)

val stats : t -> stats
val accuracy : t -> float
(** Fraction of correct predictions; 1.0 when never consulted. *)
