(** Public facade of the CritICs reproduction.

    - {!Scheme}: the code-generation schemes under evaluation;
    - {!Run}: end-to-end workload → profile → transform → simulate;
    - the substrate libraries re-exported for convenience.

    Quick start:
    {[
      let app = Option.get (Critics.Workload.Apps.find "Browser") in
      let ctx = Critics.Run.prepare app in
      let base = Critics.Run.stats ctx Critics.Scheme.Baseline in
      let crit = Critics.Run.stats ctx Critics.Scheme.Critic in
      Printf.printf "CritIC speedup: %s\n"
        (Critics.Util.Stats.pct (Critics.Run.speedup ~base crit))
    ]} *)

module Scheme = Scheme
module Run = Run

(* Substrates, re-exported so [critics] is the only library a client
   needs to depend on. *)
module Util = Util
module Isa = Isa
module Prog = Prog
module Mem = Mem
module Bpu = Bpu
module Dfg = Dfg
module Pipeline = Pipeline
module Workload = Workload
module Profiler = Profiler
module Transform = Transform
module Energy = Energy

let version = "1.0.0"
