type scheme_cache = {
  cache_lock : Mutex.t;
  (* MRU-first, at most [cache_capacity] entries.  Transformed programs
     of code-heavy apps run to several MB, so retaining every scheme a
     sweep visits would dominate the heap; one entry covers the hot
     access pattern (one scheme re-simulated across machine configs,
     interleaved with baseline — which lives outside the cache) at the
     price of re-running a cheap compiler pass when a context alternates
     between transformed schemes. *)
  mutable entries : (Scheme.t * Prog.Program.t) list;
  mutable transforms : int;
  (* Opened trace packs (mmap handles) and their record/replay
     bookkeeping; packs are tiny resident state (a map + counters), so
     they are not LRU-bounded like transformed programs. *)
  mutable packs : (Scheme.t * Prog.Trace.Pack.t) list;
  mutable pack_replays : int;
  mutable pack_records : int;
  mutable pack_corrupt : int;
  mutable pack_bytes : int;
  (* Per-scheme block-temperature tables for the TRRIP i-cache policy:
     a few bytes per block, so not LRU-bounded.  Derived state, never
     marshalled with the context payload. *)
  mutable heats : (Scheme.t * int array) list;
}

let cache_capacity = 1

type app_context = {
  profile : Workload.Profile.t;
  program : Prog.Program.t;
  seed : int;
  path : Prog.Walk.path;
  event_count : int;
  db : Profiler.Critic_db.t;
  scheme_cache : scheme_cache;
  store : Store.t option;
  ckey : string;
}

let default_instrs = 120_000

(* Bump whenever the marshalled shape of the cached tuple — or of any
   type reachable from it — changes.  [Store.code_version] already
   invalidates on every commit; this constant covers dirty-worktree
   edits, where the git description stays "<sha>-dirty" across edits. *)
let context_format = "critics-ctx-1"

let context_key ?(instrs = default_instrs) ?(sample = 0)
    ?(profile_window = 512) ?threshold ?(profile_fraction = 1.0)
    (profile : Workload.Profile.t) =
  Store.key ~kind:"context"
    [
      context_format;
      Marshal.to_string profile [];
      string_of_int instrs;
      string_of_int sample;
      string_of_int profile_window;
      (match threshold with
      | None -> "default"
      | Some f -> Printf.sprintf "%h" f);
      Printf.sprintf "%h" profile_fraction;
    ]

(* The tuple a context entry marshals: everything [prepare] derives.
   The scheme cache is rebuilt fresh (it holds a mutex), and the store
   handle itself obviously isn't part of the payload. *)
type context_payload =
  Prog.Program.t * int * Prog.Walk.path * int * Profiler.Critic_db.t

let prepare ?store ?(instrs = default_instrs) ?(sample = 0)
    ?(profile_window = 512) ?threshold ?(profile_fraction = 1.0)
    (profile : Workload.Profile.t) =
  let key =
    context_key ~instrs ~sample ~profile_window ?threshold ~profile_fraction
      profile
  in
  let pack (program, seed, path, event_count, db) =
    let scheme_cache =
      {
        cache_lock = Mutex.create ();
        entries = [];
        transforms = 0;
        packs = [];
        pack_replays = 0;
        pack_records = 0;
        pack_corrupt = 0;
        pack_bytes = 0;
        heats = [];
      }
    in
    {
      profile;
      program;
      seed;
      path;
      event_count;
      db;
      scheme_cache;
      store;
      ckey = Store.key_digest key;
    }
  in
  let build () =
    let program = Workload.Gen.program profile in
    let seed = (profile.seed lxor 0x5EED) + (sample * 0x1000193) in
    let path = Prog.Walk.path_for_instrs program ~seed ~instrs in
    let event_count = Prog.Trace.length_of_path program path in
    let db =
      Profiler.Profile_run.profile_stream ~window:profile_window ?threshold
        ~fraction:profile_fraction ~total_events:event_count
        (Prog.Trace.Stream.of_program program ~seed path)
    in
    let payload : context_payload = (program, seed, path, event_count, db) in
    (match store with
    | Some st -> Store.add st key (Marshal.to_string payload [])
    | None -> ());
    pack payload
  in
  match store with
  | None -> build ()
  | Some st -> (
    match Store.find st key with
    | None -> build ()
    | Some bytes -> (
      match (Marshal.from_string bytes 0 : context_payload) with
      | payload -> pack payload
      | exception _ -> build ()))

let rec transformed ctx (scheme : Scheme.t) =
  let critic ?(options = Transform.Critic_pass.default_options) () =
    fst (Transform.Critic_pass.apply ~options ctx.db ctx.program)
  in
  let compute () =
    match scheme with
    | Scheme.Baseline -> assert false
    | Scheme.Hoist ->
      critic
        ~options:
          { Transform.Critic_pass.default_options with mode = Hoist_only }
        ()
    | Scheme.Critic -> critic ()
    | Scheme.Critic_ideal ->
      critic ~options:Transform.Critic_pass.ideal_options ()
    | Scheme.Critic_branches ->
      critic
        ~options:{ Transform.Critic_pass.default_options with mode = Branches }
        ()
    | Scheme.Macro_ideal ->
      critic
        ~options:
          {
            Transform.Critic_pass.ideal_options with
            mode = Fused_macro;
            ideal = false;
          }
        ()
    | Scheme.Opp16 -> fst (Transform.Thumb.opp16 ctx.program)
    | Scheme.Compress -> fst (Transform.Thumb.compress ctx.program)
    | Scheme.Opp16_critic ->
      fst (Transform.Thumb.opp16 (transformed ctx Scheme.Critic))
    | Scheme.Narrow_only ->
      fst
        (Transform.Pipeline.run_exn
           (Transform.Pass.env ctx.db)
           Transform.Pipeline.narrow_only ctx.program)
    | Scheme.Critic_reorder ->
      fst
        (Transform.Pipeline.run_exn
           (Transform.Pass.env ctx.db)
           Transform.Pipeline.reordered ctx.program)
  in
  (* Store-backed layer under the in-memory memo: a transformed program
     is a deterministic function of the prepared context (ckey) and the
     scheme, so warm runs load its marshalled bytes instead of
     re-running the compiler pipeline. *)
  (* Returns [(program, ran_compiler)] so the memo below can keep
     [transforms] an honest count of compiler-pipeline executions:
     store-served programs don't run the pipeline. *)
  let materialize () =
    match ctx.store with
    | None -> (compute (), true)
    | Some st -> (
      let k = Store.key ~kind:"program" [ ctx.ckey; Scheme.name scheme ] in
      match Store.find st k with
      | Some bytes -> (
        match (Marshal.from_string bytes 0 : Prog.Program.t) with
        | p -> (p, false)
        | exception _ ->
          let p = compute () in
          Store.add st k (Marshal.to_string p []);
          (p, true))
      | None ->
        let p = compute () in
        Store.add st k (Marshal.to_string p []);
        (p, true))
  in
  match scheme with
  | Scheme.Baseline -> ctx.program
  | _ ->
    (* The mutex makes contexts shareable across the parallel harness's
       domains; passes are deterministic, so a lost race recomputes an
       identical program and the first write wins. *)
    let c = ctx.scheme_cache in
    Mutex.lock c.cache_lock;
    let hit = List.assoc_opt scheme c.entries in
    (match hit with
    | Some p ->
      if fst (List.hd c.entries) <> scheme then
        c.entries <-
          (scheme, p)
          :: List.filter (fun (s, _) -> s <> scheme) c.entries;
      Mutex.unlock c.cache_lock;
      p
    | None ->
      Mutex.unlock c.cache_lock;
      let p, ran_compiler = materialize () in
      Mutex.lock c.cache_lock;
      let p =
        match List.assoc_opt scheme c.entries with
        | Some winner -> winner
        | None ->
          if ran_compiler then c.transforms <- c.transforms + 1;
          c.entries <-
            (scheme, p)
            :: (if List.length c.entries >= cache_capacity then
                  List.filteri (fun i _ -> i < cache_capacity - 1) c.entries
                else c.entries);
          p
      in
      Mutex.unlock c.cache_lock;
      p)

let transform_count ctx = ctx.scheme_cache.transforms

(* ------------------------------------------------------------------ *)
(* Trace record/replay.

   With packing enabled and a store attached, a scheme's dynamic event
   stream is recorded once into a compact binary pack
   (Prog.Trace.Pack) keyed by (context key x scheme) — the context key
   already fingerprints program, seed, path and budget — and every
   subsequent stream request replays the mmap-ed file instead of
   re-walking the program.  Replay is bit-identical to the live walk
   (differential-locked), so results are unchanged; what changes is the
   cost: no per-event address generation, O(batch) replay memory at any
   budget.  Off by default: recording costs disk (32 bytes/event). *)

(* Read per call (not latched): tests toggle the variable with
   [Unix.putenv] around individual runs, and the cost is one getenv per
   stream request. *)
let pack_enabled_env () =
  match Sys.getenv_opt "CRITICS_TRACE_PACK" with
  | Some ("1" | "true" | "on" | "yes") -> true
  | Some _ | None -> false

type pack_stats = {
  replays : int;  (** cursors served from a mapped pack *)
  records : int;  (** pack files recorded (first-run cost) *)
  corrupt : int;  (** packs that failed verification (fell back live) *)
  bytes : int;    (** total file bytes of packs opened for replay *)
}

let pack_stats ctx =
  let c = ctx.scheme_cache in
  Mutex.lock c.cache_lock;
  let s =
    {
      replays = c.pack_replays;
      records = c.pack_records;
      corrupt = c.pack_corrupt;
      bytes = c.pack_bytes;
    }
  in
  Mutex.unlock c.cache_lock;
  s

let live_stream ctx scheme =
  Prog.Trace.Stream.of_program (transformed ctx scheme) ~seed:ctx.seed
    ctx.path

let pack_for ctx scheme =
  match ctx.store with
  | None -> None
  | Some st when pack_enabled_env () -> (
    let c = ctx.scheme_cache in
    Mutex.lock c.cache_lock;
    let cached = List.assoc_opt scheme c.packs in
    Mutex.unlock c.cache_lock;
    match cached with
    | Some p -> Some p
    | None ->
      let key = Store.key ~kind:"tracepack" [ ctx.ckey; Scheme.name scheme ] in
      let open_verified () =
        match Store.find_blob st key with
        | None -> None
        | Some path -> (
          match Prog.Trace.Pack.open_file path with
          | Ok p -> Some p
          | Error _ ->
            (* Counted like any corrupt store entry, then removed: the
               next request re-records; this one walks live. *)
            Store.remove_blob st key;
            Mutex.lock c.cache_lock;
            c.pack_corrupt <- c.pack_corrupt + 1;
            Mutex.unlock c.cache_lock;
            None)
      in
      let record () =
        let program = transformed ctx scheme in
        let ok =
          Store.add_blob st key (fun tmp ->
              ignore
                (Prog.Trace.Pack.record ~path:tmp
                   (Prog.Trace.Stream.of_program program ~seed:ctx.seed
                      ctx.path)))
        in
        if ok then begin
          Mutex.lock c.cache_lock;
          c.pack_records <- c.pack_records + 1;
          Mutex.unlock c.cache_lock;
          open_verified ()
        end
        else None
      in
      let opened =
        match open_verified () with Some p -> Some p | None -> record ()
      in
      (match opened with
      | None -> None
      | Some p -> (
        Mutex.lock c.cache_lock;
        (* A concurrent domain may have opened its own handle; keep the
           first and let the duplicate mapping be collected. *)
        match List.assoc_opt scheme c.packs with
        | Some winner ->
          Mutex.unlock c.cache_lock;
          Some winner
        | None ->
          c.packs <- (scheme, p) :: c.packs;
          c.pack_bytes <- c.pack_bytes + Prog.Trace.Pack.file_bytes p;
          Mutex.unlock c.cache_lock;
          Some p)))
  | Some _ -> None

let stream ctx scheme =
  match pack_for ctx scheme with
  | None -> live_stream ctx scheme
  | Some p ->
    let c = ctx.scheme_cache in
    Mutex.lock c.cache_lock;
    c.pack_replays <- c.pack_replays + 1;
    Mutex.unlock c.cache_lock;
    Prog.Trace.Pack.cursor p (transformed ctx scheme)

let source ctx scheme : Pipeline.Cpu.source = fun () -> stream ctx scheme

let trace_of ctx scheme =
  Prog.Trace.expand (transformed ctx scheme) ~seed:ctx.seed ctx.path

(* Block temperatures of a scheme's dynamic stream (Profiler.Heat),
   memoized per scheme: the profile is deterministic, so — as with
   transformed programs — a lost race between domains recomputes an
   identical table and the first write wins. *)
let heat ctx scheme =
  let c = ctx.scheme_cache in
  Mutex.lock c.cache_lock;
  let hit = List.assoc_opt scheme c.heats in
  Mutex.unlock c.cache_lock;
  match hit with
  | Some t -> t
  | None ->
    let num_blocks = Prog.Program.num_blocks (transformed ctx scheme) in
    let t =
      Profiler.Heat.temperatures
        (Profiler.Heat.profile ~num_blocks (stream ctx scheme))
    in
    Mutex.lock c.cache_lock;
    let t =
      match List.assoc_opt scheme c.heats with
      | Some winner -> winner
      | None ->
        c.heats <- (scheme, t) :: c.heats;
        t
    in
    Mutex.unlock c.cache_lock;
    t

let stats ?(config = Pipeline.Config.table_i) ?fuel ?probe ctx scheme =
  (* The TRRIP policy is the one consumer of block temperatures; other
     policies ignore the hint, so the table is only computed (once per
     scheme) when it can matter. *)
  if config.Pipeline.Config.mem.Mem.Hierarchy.l1i_policy = Mem.Replacement.Trrip
  then
    Pipeline.Cpu.run_stream ?fuel ?probe ~itemp:(heat ctx scheme) config
      (source ctx scheme)
  else Pipeline.Cpu.run_stream ?fuel ?probe config (source ctx scheme)

let speedup ~base (st : Pipeline.Stats.t) =
  (float_of_int base.Pipeline.Stats.cycles /. float_of_int st.cycles) -. 1.0

let energy ?params ~base st =
  Energy.Model.saving
    ~base:(Energy.Model.of_stats ?params base)
    ~optimized:(Energy.Model.of_stats ?params st)
