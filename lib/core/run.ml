type trace_cache = {
  cache_lock : Mutex.t;
  mutable cache_entry : (Scheme.t * Prog.Trace.t) option;
}

type app_context = {
  profile : Workload.Profile.t;
  program : Prog.Program.t;
  seed : int;
  path : Prog.Walk.path;
  trace : Prog.Trace.t;
  db : Profiler.Critic_db.t;
  trace_cache : trace_cache;
}

let default_instrs = 120_000

let prepare ?(instrs = default_instrs) ?(sample = 0) ?(profile_window = 512)
    ?threshold ?(profile_fraction = 1.0) (profile : Workload.Profile.t) =
  let program = Workload.Gen.program profile in
  let seed = (profile.seed lxor 0x5EED) + (sample * 0x1000193) in
  let path = Prog.Walk.path_for_instrs program ~seed ~instrs in
  let trace = Prog.Trace.expand program ~seed path in
  let db =
    Profiler.Profile_run.profile ~window:profile_window ?threshold
      ~fraction:profile_fraction trace
  in
  let trace_cache = { cache_lock = Mutex.create (); cache_entry = None } in
  { profile; program; seed; path; trace; db; trace_cache }

let transformed ctx (scheme : Scheme.t) =
  let critic ?(options = Transform.Critic_pass.default_options) () =
    fst (Transform.Critic_pass.apply ~options ctx.db ctx.program)
  in
  match scheme with
  | Scheme.Baseline -> ctx.program
  | Scheme.Hoist ->
    critic
      ~options:
        { Transform.Critic_pass.default_options with mode = Hoist_only }
      ()
  | Scheme.Critic -> critic ()
  | Scheme.Critic_ideal ->
    critic ~options:Transform.Critic_pass.ideal_options ()
  | Scheme.Critic_branches ->
    critic
      ~options:{ Transform.Critic_pass.default_options with mode = Branches }
      ()
  | Scheme.Macro_ideal ->
    critic
      ~options:
        {
          Transform.Critic_pass.ideal_options with
          mode = Fused_macro;
          ideal = false;
        }
      ()
  | Scheme.Opp16 -> fst (Transform.Thumb.opp16 ctx.program)
  | Scheme.Compress -> fst (Transform.Thumb.compress ctx.program)
  | Scheme.Opp16_critic -> fst (Transform.Thumb.opp16 (critic ()))

let trace_of ctx scheme =
  match scheme with
  | Scheme.Baseline -> ctx.trace
  | _ ->
    (* Transform + expansion are deterministic per (ctx, scheme), and the
       same scheme is routinely re-simulated under several machine
       configurations (Fig. 11, CDP ablation), so keep the most recent
       non-baseline trace.  A single entry bounds memory to one extra
       trace per context; the mutex makes concurrent harness jobs safe
       (both sides would compute identical traces, last write wins). *)
    let c = ctx.trace_cache in
    Mutex.lock c.cache_lock;
    let hit =
      match c.cache_entry with
      | Some (s, tr) when s = scheme -> Some tr
      | _ -> None
    in
    Mutex.unlock c.cache_lock;
    (match hit with
    | Some tr -> tr
    | None ->
      let tr = Prog.Trace.expand (transformed ctx scheme) ~seed:ctx.seed ctx.path in
      Mutex.lock c.cache_lock;
      c.cache_entry <- Some (scheme, tr);
      Mutex.unlock c.cache_lock;
      tr)

let stats ?(config = Pipeline.Config.table_i) ctx scheme =
  Pipeline.Cpu.run config (trace_of ctx scheme)

let speedup ~base (st : Pipeline.Stats.t) =
  (float_of_int base.Pipeline.Stats.cycles /. float_of_int st.cycles) -. 1.0

let energy ?params ~base st =
  Energy.Model.saving
    ~base:(Energy.Model.of_stats ?params base)
    ~optimized:(Energy.Model.of_stats ?params st)
