(** End-to-end runs: workload → profile → transform → simulate.

    An {!app_context} packages everything derived once per application:
    the generated program, the control-flow path (fixed across schemes,
    so every scheme replays identical work), the baseline trace and the
    CritIC database.  {!stats} then evaluates any scheme on any machine
    configuration. *)

type trace_cache
(** One-entry memo of the last non-baseline expanded trace (see
    {!trace_of}); mutex-protected so contexts can be shared across
    domains by the parallel experiment harness. *)

type app_context = {
  profile : Workload.Profile.t;
  program : Prog.Program.t;
  seed : int;
  path : Prog.Walk.path;
  trace : Prog.Trace.t;          (** baseline trace *)
  db : Profiler.Critic_db.t;
  trace_cache : trace_cache;
}

val default_instrs : int
(** Dynamic work instructions per run (120_000): roughly one of the
    paper's 100 execution samples, after our 4× trace-length scale-down
    for laptop turnaround (documented in DESIGN.md). *)

val prepare :
  ?instrs:int ->
  ?sample:int ->
  ?profile_window:int ->
  ?threshold:float ->
  ?profile_fraction:float ->
  Workload.Profile.t ->
  app_context
(** Generate, walk, expand and profile one application.  [sample]
    (default 0) selects one of the independent execution samples of the
    same program — the equivalent of the paper's 100 random samples per
    app: different control-flow walk, same code. *)

val transformed : app_context -> Scheme.t -> Prog.Program.t
(** The program a scheme's compiler pipeline produces. *)

val trace_of : app_context -> Scheme.t -> Prog.Trace.t
(** The scheme's program expanded over the *same* block path.  The most
    recently expanded non-baseline trace is cached per context (the
    expansion is deterministic, so repeated requests — e.g. the same
    scheme under several machine configurations — reuse it). *)

val stats :
  ?config:Pipeline.Config.t -> app_context -> Scheme.t -> Pipeline.Stats.t
(** Simulate a scheme (default machine: Table I). *)

val speedup : base:Pipeline.Stats.t -> Pipeline.Stats.t -> float
(** Fractional cycle-count improvement over [base] for the same work. *)

val energy :
  ?params:Energy.Model.params ->
  base:Pipeline.Stats.t ->
  Pipeline.Stats.t ->
  Energy.Model.saving
