(** End-to-end runs: workload → profile → transform → simulate.

    An {!app_context} packages everything derived once per application:
    the generated program, the control-flow path (fixed across schemes,
    so every scheme replays identical work) and the CritIC database.
    Traces are never materialized on this path — profiling and
    simulation both pull the event stream ({!Prog.Trace.Stream}) and run
    in O(window) memory, so the instruction budget can grow without the
    context's footprint following it.  {!stats} evaluates any scheme on
    any machine configuration. *)

type scheme_cache
(** Small bounded LRU of transformed programs, sized for the hot access
    pattern — one scheme re-simulated across machine configurations,
    interleaved with the (uncached) baseline; mutex-protected so
    contexts can be shared across domains by the parallel experiment
    harness. *)

type app_context = {
  profile : Workload.Profile.t;
  program : Prog.Program.t;
  seed : int;
  path : Prog.Walk.path;
  event_count : int;      (** events the baseline stream yields *)
  db : Profiler.Critic_db.t;
  scheme_cache : scheme_cache;
  store : Store.t option;
      (** prepared-artifact cache consulted by {!transformed}; [None]
          keeps the context fully hermetic *)
  ckey : string;
      (** content fingerprint of everything this context was prepared
          from (app profile bytes, preparation parameters, code
          version) — the key derived artifacts chain from *)
}

val default_instrs : int
(** Dynamic work instructions per run (120_000): roughly one of the
    paper's 100 execution samples, after our 4× trace-length scale-down
    for laptop turnaround (documented in DESIGN.md). *)

val prepare :
  ?store:Store.t ->
  ?instrs:int ->
  ?sample:int ->
  ?profile_window:int ->
  ?threshold:float ->
  ?profile_fraction:float ->
  Workload.Profile.t ->
  app_context
(** Generate, walk and profile one application.  [sample] (default 0)
    selects one of the independent execution samples of the same
    program — the equivalent of the paper's 100 random samples per app:
    different control-flow walk, same code.

    With [?store], the expensive derivation (generate → walk → profile)
    is cached: a hit deserializes the prepared artifacts instead of
    recomputing them, keyed on the profile bytes, every preparation
    parameter and the code version, so any change recomputes.  Corrupt
    or mismatched entries silently fall back to recompute. *)

val context_key :
  ?instrs:int ->
  ?sample:int ->
  ?profile_window:int ->
  ?threshold:float ->
  ?profile_fraction:float ->
  Workload.Profile.t ->
  Store.key
(** The store key {!prepare} uses for these inputs — exposed so tests
    and tools can probe or invalidate specific entries. *)

val transformed : app_context -> Scheme.t -> Prog.Program.t
(** The program a scheme's compiler pipeline produces.  Memoized per
    context: repeated requests for the same scheme — e.g. under several
    machine configurations, or from concurrent harness jobs — run the
    compiler pipeline once (see {!transform_count}). *)

val transform_count : app_context -> int
(** Number of compiler-pipeline executions this context has performed —
    the cache-effectiveness observable used by the regression tests. *)

val stream : app_context -> Scheme.t -> Prog.Trace.Stream.cursor
(** A fresh cursor over the scheme's event stream — the scheme's
    program expanded lazily over the *same* block path.

    With [CRITICS_TRACE_PACK=1] and a store attached, the stream is
    recorded once into a compact binary pack ([Prog.Trace.Pack], keyed
    by context key × scheme in the store) and every subsequent cursor
    replays the mmap-ed file — bit-identical to the live walk
    (differential-locked), with no per-event address generation and
    O(batch) replay memory at any budget.  A pack that fails
    verification is removed, counted, and the stream falls back to the
    live walk. *)

type pack_stats = {
  replays : int;  (** cursors served from a mapped pack *)
  records : int;  (** pack files recorded (first-run cost) *)
  corrupt : int;  (** packs that failed verification (fell back live) *)
  bytes : int;    (** total file bytes of packs opened for replay *)
}

val pack_stats : app_context -> pack_stats
(** Record/replay counters for this context (all zero unless packing is
    enabled). *)

val source : app_context -> Scheme.t -> Pipeline.Cpu.source
(** The replayable form of {!stream}, as the simulator consumes it. *)

val trace_of : app_context -> Scheme.t -> Prog.Trace.t
(** Materialize the scheme's event stream into an array — the adapter
    for consumers that genuinely need random access (whole-trace DFGs,
    characterization).  O(trace) memory and uncached: transient use
    only. *)

val heat : app_context -> Scheme.t -> int array
(** Per-block temperatures (0 hot .. 3 cold) of the scheme's dynamic
    stream, from {!Profiler.Heat} — the table TRRIP configurations feed
    to {!Pipeline.Cpu.run_stream} as [?itemp].  Memoized per scheme on
    the context. *)

val stats :
  ?config:Pipeline.Config.t ->
  ?fuel:int ->
  ?probe:Telemetry.Probe.t ->
  app_context ->
  Scheme.t ->
  Pipeline.Stats.t
(** Simulate a scheme (default machine: Table I), streaming.  [fuel]
    bounds the run in simulated cycles; exceeding it raises
    [Util.Err.Error] with kind [Timeout].  [probe] attaches a telemetry
    observer; the returned stats are bit-identical with or without one
    (see {!Pipeline.Cpu.run_stream}).  When the configuration selects
    the TRRIP i-cache policy, the scheme's {!heat} table is computed
    and threaded through automatically. *)

val speedup : base:Pipeline.Stats.t -> Pipeline.Stats.t -> float
(** Fractional cycle-count improvement over [base] for the same work. *)

val energy :
  ?params:Energy.Model.params ->
  base:Pipeline.Stats.t ->
  Pipeline.Stats.t ->
  Energy.Model.saving
