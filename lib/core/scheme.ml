type t =
  | Baseline
  | Hoist
  | Critic
  | Critic_ideal
  | Critic_branches
  | Macro_ideal
  | Opp16
  | Compress
  | Opp16_critic
  | Narrow_only
  | Critic_reorder

let all =
  [ Baseline; Hoist; Critic; Critic_ideal; Critic_branches; Macro_ideal;
    Opp16; Compress; Opp16_critic; Narrow_only; Critic_reorder ]

let name = function
  | Baseline -> "baseline"
  | Hoist -> "hoist"
  | Critic -> "critic"
  | Critic_ideal -> "critic.ideal"
  | Critic_branches -> "critic.branches"
  | Macro_ideal -> "macro.ideal"
  | Opp16 -> "opp16"
  | Compress -> "compress"
  | Opp16_critic -> "opp16+critic"
  | Narrow_only -> "narrow.only"
  | Critic_reorder -> "critic.reorder"

let of_string s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun t -> name t = s) all

let describe = function
  | Baseline -> "unmodified program (Table I machine)"
  | Hoist -> "CritIC aggregation only, no 16-bit conversion"
  | Critic -> "CritIC: hoist + 16-bit Thumb behind a CDP switch (len <= 5)"
  | Critic_ideal -> "CritIC.Ideal: all chains, hypothetical encodings"
  | Critic_branches -> "Approach 1: format switch via branch instructions"
  | Macro_ideal ->
    "hypothetical macro-instruction ISA extension (one fetch per chain)"
  | Opp16 -> "opportunistic 16-bit conversion of runs >= 3"
  | Compress -> "fine-grained Thumb conversion (Krishnaswamy & Gupta)"
  | Opp16_critic -> "CritIC, then OPP16 on the remaining code"
  | Narrow_only ->
    "pass-list ablation: 16-bit conversion of CritICs without hoisting"
  | Critic_reorder ->
    "pass-list ablation: narrow-before-hoist ordering of the CritIC passes"
