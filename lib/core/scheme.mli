(** The code-generation schemes evaluated in the paper. *)

type t =
  | Baseline       (** unmodified program *)
  | Hoist          (** chain aggregation without format conversion
                       (Sec. IV-D) *)
  | Critic         (** the proposal: hoist + 16-bit conversion behind a
                       CDP switch, chains up to length 5 *)
  | Critic_ideal   (** hypothetical: every CritIC converted, no length
                       cap (Sec. IV-E) *)
  | Critic_branches (** Approach 1: switch via explicit branches, runs
                        on stock hardware (Sec. IV-A) *)
  | Macro_ideal    (** the rejected ISA-extension design (Sec. III-B):
                       every chain as one hypothetical macro-instruction
                       — an upper bound on what chain aggregation could
                       buy with unlimited encoding space *)
  | Opp16          (** criticality-agnostic conversion of runs >= 3
                       (Sec. V) *)
  | Compress       (** fine-grained Thumb conversion of [78] *)
  | Opp16_critic   (** CritIC first, then OPP16 on the remainder *)
  | Narrow_only    (** pass-list ablation the paper never tried:
                       chain-select + narrow-convert + CDP markers with
                       {e no hoisting} — members stay scattered, every
                       consecutive run pays its own marker *)
  | Critic_reorder (** pass-list ablation: narrow-before-hoist ordering;
                       produces the same program as {!Critic} (the
                       passes commute), priced end-to-end to demonstrate
                       it *)

val all : t list
val name : t -> string
val of_string : string -> t option
val describe : t -> string
