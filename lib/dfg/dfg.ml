(** Data-flow-graph analysis: the graph itself plus Instruction-Chain
    (IC) extraction.  [Dfg] re-exports {!Graph} so client code reads
    [Dfg.of_events], [Dfg.fanout], [Dfg.Ic.enumerate], ... *)

include Graph
module Ic = Ic
