type node = {
  idx : int;
  event : Prog.Trace.event;
  mutable preds : int list;
  mutable succs : int list;
}

type t = { nodes : node array }

let of_events ?(lo = 0) ?hi events =
  let hi = Option.value ~default:(Array.length events) hi in
  if lo < 0 || hi > Array.length events || lo > hi then
    invalid_arg "Dfg.of_events: bad window";
  let n = hi - lo in
  let nodes =
    Array.init n (fun i ->
        { idx = i; event = events.(lo + i); preds = []; succs = [] })
  in
  (* Most recent in-window writer per architected register. *)
  let last_writer = Array.make Isa.Reg.count (-1) in
  Array.iter
    (fun node ->
      let ins = node.event.Prog.Trace.instr in
      List.iter
        (fun r ->
          let w = last_writer.(Isa.Reg.index r) in
          if w >= 0 && not (List.mem w node.preds) then begin
            node.preds <- w :: node.preds;
            nodes.(w).succs <- node.idx :: nodes.(w).succs
          end)
        (Isa.Instr.regs_read ins);
      List.iter
        (fun r -> last_writer.(Isa.Reg.index r) <- node.idx)
        (Isa.Instr.regs_written ins))
    nodes;
  (* Keep successor lists in stream order: handy for deterministic path
     enumeration. *)
  Array.iter
    (fun node ->
      node.succs <- List.sort_uniq compare node.succs;
      node.preds <- List.sort_uniq compare node.preds)
    nodes;
  { nodes }

let size t = Array.length t.nodes
let node t i = t.nodes.(i)
let nodes t = t.nodes
let fanout t i = List.length t.nodes.(i).succs

let is_high_fanout ?(threshold = 8) t i = fanout t i >= threshold

let roots t =
  Array.to_list t.nodes
  |> List.filter_map (fun n -> if n.preds = [] then Some n.idx else None)

let chain_gaps ?(threshold = 8) t =
  let h = Util.Dist.Histogram.create () in
  let high i = is_high_fanout ~threshold t i in
  (* BFS the forward slice of [start] until the first high-fanout node
     on each path; record the minimum gap found, or -1 when the whole
     slice is free of high-fanout nodes. *)
  let nearest_gap start =
    let visited = Hashtbl.create 16 in
    let q = Queue.create () in
    List.iter (fun s -> Queue.add (s, 0) q) t.nodes.(start).succs;
    let best = ref None in
    while not (Queue.is_empty q) do
      let i, gap = Queue.pop q in
      if not (Hashtbl.mem visited i) then begin
        Hashtbl.replace visited i true;
        if high i then begin
          match !best with
          | Some b when b <= gap -> ()
          | _ -> best := Some gap
        end
        else
          List.iter (fun s -> Queue.add (s, gap + 1) q) t.nodes.(i).succs
      end
    done;
    !best
  in
  Array.iter
    (fun n ->
      if high n.idx then
        match nearest_gap n.idx with
        | Some gap -> Util.Dist.Histogram.add h gap
        | None -> Util.Dist.Histogram.add h (-1))
    t.nodes;
  h

let toposort t =
  (* RAW edges always point forward in the stream, so stream order is a
     valid topological order; verify the invariant while producing it. *)
  Array.iter
    (fun n ->
      List.iter
        (fun s ->
          if s <= n.idx then failwith "Dfg.toposort: backward edge")
        n.succs)
    t.nodes;
  List.init (size t) Fun.id
