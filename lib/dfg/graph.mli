(** Data-flow graphs over windows of the dynamic instruction stream.

    Nodes are dynamic instructions; edges are register RAW dependences
    (producer → consumer of the most recent write).  Fanout — the number
    of direct dependents — is the paper's criticality heuristic for
    individual instructions. *)

type node = {
  idx : int;               (** index within the window, 0-based *)
  event : Prog.Trace.event;
  mutable preds : int list;  (** producers of this node's sources *)
  mutable succs : int list;  (** direct dependents *)
}

type t

val of_events : ?lo:int -> ?hi:int -> Prog.Trace.event array -> t
(** Build the DFG of the half-open window [lo, hi) of the event stream
    (defaults: the whole array).  Synthetic control events participate
    (they read registers only through their sources, which is none, so
    they are isolated nodes), CDP markers are isolated nodes. *)

val size : t -> int
val node : t -> int -> node
val nodes : t -> node array

val fanout : t -> int -> int
(** Out-degree of a node. *)

val is_high_fanout : ?threshold:int -> t -> int -> bool
(** Fanout at or above [threshold] (default 8). *)

val roots : t -> int list
(** Nodes without in-window producers. *)

val chain_gaps : ?threshold:int -> t -> Util.Dist.Histogram.t
(** The Fig. 1b analysis: walking forward dependence paths from each
    high-fanout node to the *nearest* dependent high-fanout node,
    histogram the number of low-fanout instructions strictly between
    them.  Value [-1] records high-fanout nodes whose entire forward
    slice contains no other high-fanout instruction (the "no dependent
    critical" category that dominates SPEC). *)

val toposort : t -> int list
(** Topological order of node indices; raises if the graph is cyclic
    (it never is for RAW edges over a linear stream). *)
