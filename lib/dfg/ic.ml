type t = { nodes : int list }

let length t = List.length t.nodes

module Iset = Set.Make (Int)

let is_ic dfg nodes =
  match nodes with
  | [] -> false
  | first :: _ ->
    (Graph.node dfg first).Graph.preds = []
    && begin
      let rec check seen = function
        | [] -> true
        | n :: rest ->
          let node = Graph.node dfg n in
          let preds_ok =
            List.for_all (fun p -> Iset.mem p seen) node.Graph.preds
          in
          let connected =
            Iset.is_empty seen
            || List.exists (fun p -> Iset.mem p seen) node.Graph.preds
          in
          (* First node passes [connected] vacuously via empty seen. *)
          preds_ok && connected && check (Iset.add n seen) rest
      in
      check Iset.empty nodes
    end

let enumerate ?(max_paths = 4096) ?(max_len = 4096) dfg =
  let results = ref [] in
  let count = ref 0 in
  let rec extend rev_path path_set last depth =
    if !count >= max_paths then ()
    else begin
      let eligible =
        if depth >= max_len then []
        else
          List.filter
            (fun s ->
              List.for_all
                (fun p -> Iset.mem p path_set)
                (Graph.node dfg s).Graph.preds)
            (Graph.node dfg last).Graph.succs
      in
      match eligible with
      | [] ->
        incr count;
        results := { nodes = List.rev rev_path } :: !results
      | succs ->
        List.iter
          (fun s ->
            extend (s :: rev_path) (Iset.add s path_set) s (depth + 1))
          succs
    end
  in
  List.iter (fun r -> extend [ r ] (Iset.singleton r) r 1) (Graph.roots dfg);
  List.rev !results

let criticality dfg t =
  match t.nodes with
  | [] -> 0.0
  | nodes ->
    let total =
      List.fold_left (fun acc n -> acc + Graph.fanout dfg n) 0 nodes
    in
    float_of_int total /. float_of_int (List.length nodes)

let spread dfg t =
  match t.nodes with
  | [] -> 0
  | first :: _ ->
    let last = List.fold_left (fun _ n -> n) first t.nodes in
    (Graph.node dfg last).Graph.event.Prog.Trace.seq
    - (Graph.node dfg first).Graph.event.Prog.Trace.seq

let prefixes ?(min_len = 2) ?max_len t =
  let n = List.length t.nodes in
  let max_len = min n (Option.value ~default:n max_len) in
  let rec take k = function
    | [] -> []
    | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
  in
  let rec go k acc =
    if k > max_len then List.rev acc
    else go (k + 1) ({ nodes = take k t.nodes } :: acc)
  in
  if min_len > max_len then [] else go min_len []

let enumerate_greedy ?(max_len = 4096) dfg =
  let n = Graph.size dfg in
  List.map
    (fun root ->
      let members = ref (Iset.singleton root) in
      let rec grow len =
        if len >= max_len then ()
        else begin
          (* lowest-indexed eligible consumer of any member *)
          let candidate = ref None in
          for i = n - 1 downto 0 do
            if not (Iset.mem i !members) then begin
              let node = Graph.node dfg i in
              let preds = node.Graph.preds in
              if
                preds <> []
                && List.for_all (fun p -> Iset.mem p !members) preds
              then candidate := Some i
            end
          done;
          match !candidate with
          | None -> ()
          | Some i ->
            members := Iset.add i !members;
            grow (len + 1)
        end
      in
      grow 1;
      { nodes = Iset.elements !members })
    (Graph.roots dfg)
