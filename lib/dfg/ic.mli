(** Instruction Chains (ICs).

    An IC is an acyclic DFG path that is independently schedulable: the
    first node has no in-window producers and every later node's
    producers all lie within the path, so the chain can execute as an
    atomic unit with no dependences into its interior.  Any prefix of an
    IC is itself an IC. *)

type t = { nodes : int list }
(** Window indices of the chain members, in dependence (= stream) order. *)

val length : t -> int

val is_ic : Graph.t -> int list -> bool
(** Check the IC property for an arbitrary node list: consecutive nodes
    connected by RAW edges, first node a root, and every node's
    producers contained in the preceding members. *)

val enumerate : ?max_paths:int -> ?max_len:int -> Graph.t -> t list
(** All maximal ICs, by depth-first extension from each root.  The
    search stops adding new paths once [max_paths] (default 4096) have
    been produced and truncates chains at [max_len] (default 4096)
    nodes.  Deterministic. *)

val enumerate_greedy : ?max_len:int -> Graph.t -> t list
(** One cluster-style IC per root, grown greedily: at each step absorb
    the lowest-indexed node whose producers are all already members and
    that consumes some member.  This is the Fig. 4 flavour of chains
    (e.g. I1,I6,...,I12: a root with its whole fanout tree), as opposed
    to {!enumerate}'s strict paths.  Every result satisfies {!is_ic}. *)

val criticality : Graph.t -> t -> float
(** The paper's chain criticality metric: average fanout per
    instruction. *)

val spread : Graph.t -> t -> int
(** Dynamic-stream distance (in instructions) between the first and the
    last member — the Fig. 5a "spread". *)

val prefixes : ?min_len:int -> ?max_len:int -> t -> t list
(** All prefixes with length in [min_len, max_len] (defaults 2 and the
    chain length), shortest first. *)
