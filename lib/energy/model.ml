type params = {
  core_dynamic_nj : float;
  core_static_nj : float;
  l1_access_nj : float;
  l2_access_nj : float;
  dram_access_nj : float;
  rest_of_soc_nj : float;
  cdp_logic_nj : float;
}

let default =
  {
    core_dynamic_nj = 0.08;
    core_static_nj = 0.35;
    l1_access_nj = 0.2;
    l2_access_nj = 0.6;
    dram_access_nj = 15.0;
    (* Rest-of-SoC draw is charged per unit of app work, not per cycle:
       the display and radios stay on for the same user-visible duration
       however fast the CPU finishes its share, so CPU optimizations do
       not reduce it.  This matches the paper's roll-up where a 15 % CPU
       saving becomes 4.6 % system-wide. *)
    rest_of_soc_nj = 0.4;
    cdp_logic_nj = 0.001;
  }

type breakdown = {
  cpu : float;
  icache : float;
  dcache : float;
  l2 : float;
  dram : float;
  rest : float;
  total : float;
}

let of_stats ?(params = default) (s : Pipeline.Stats.t) =
  let fi = float_of_int in
  let cpu =
    (params.core_dynamic_nj *. fi s.committed_total)
    +. (params.core_static_nj *. fi s.cycles)
    +. (params.cdp_logic_nj *. fi s.cdp_markers)
  in
  let icache = params.l1_access_nj *. fi s.l1i.accesses in
  let dcache = params.l1_access_nj *. fi s.l1d.accesses in
  let l2 = params.l2_access_nj *. fi s.l2.accesses in
  let dram = params.dram_access_nj *. fi (s.dram.reads + s.dram.writes) in
  let rest = params.rest_of_soc_nj *. fi s.committed_work in
  let total = cpu +. icache +. dcache +. l2 +. dram +. rest in
  { cpu; icache; dcache; l2; dram; rest; total }

type saving = {
  cpu_contrib : float;
  icache_contrib : float;
  memory_contrib : float;
  rest_contrib : float;
  system : float;
  cpu_only : float;
}

let saving ~base ~optimized =
  let contrib b o = (b -. o) /. base.total in
  {
    cpu_contrib = contrib base.cpu optimized.cpu;
    icache_contrib = contrib base.icache optimized.icache;
    memory_contrib =
      contrib
        (base.dcache +. base.l2 +. base.dram)
        (optimized.dcache +. optimized.l2 +. optimized.dram);
    rest_contrib = contrib base.rest optimized.rest;
    system = (base.total -. optimized.total) /. base.total;
    cpu_only = (base.cpu -. optimized.cpu) /. base.cpu;
  }
