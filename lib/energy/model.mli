(** Event-based energy model of the mobile SoC.

    Energy is accumulated from the simulator's event counts: committed
    instructions and active cycles on the CPU side, per-access energies
    for each cache level and DRAM, plus a rest-of-SoC power draw
    (display, radios, ASIC blocks) proportional to execution time.
    Per-event energies are calibrated so the baseline SoC breakdown
    matches the shares reported for Nexus-7-class tablets (CPU ≈ 30 %,
    memory ≈ 15 %, the rest dominated by the display and peripherals),
    which is the weighting behind the paper's Fig. 10c roll-up of a 15 %
    CPU saving into a 4.6 % system-wide saving. *)

type params = {
  core_dynamic_nj : float;   (** per committed instruction *)
  core_static_nj : float;    (** per cycle (leakage + clock tree) *)
  l1_access_nj : float;      (** per i-cache or d-cache access *)
  l2_access_nj : float;
  dram_access_nj : float;
  rest_of_soc_nj : float;    (** per cycle: display, radios, ASICs *)
  cdp_logic_nj : float;      (** per CDP marker — the Synopsys synthesis
                                 of the switch logic reports 58 µW
                                 dynamic / 414 nW leakage on 80 µm²,
                                 i.e. effectively negligible *)
}

val default : params

type breakdown = {
  cpu : float;        (** core dynamic + static, nJ *)
  icache : float;
  dcache : float;
  l2 : float;
  dram : float;
  rest : float;
  total : float;
}

val of_stats : ?params:params -> Pipeline.Stats.t -> breakdown

type saving = {
  cpu_contrib : float;     (** component's contribution to the
                               system-wide saving, as a fraction of the
                               baseline total *)
  icache_contrib : float;
  memory_contrib : float;  (** d-cache + L2 + DRAM *)
  rest_contrib : float;
  system : float;          (** total system-wide energy saving *)
  cpu_only : float;        (** CPU-energy saving relative to baseline
                               CPU energy (the paper's "15 % in the
                               CPU") *)
}

val saving : base:breakdown -> optimized:breakdown -> saving
