type point = { label : string; speedup : float }

type result = {
  threshold : point list;
  metric : point list;
  cdp_penalty : point list;
  iq_size : point list;
  fetch_queue : point list;
  wrong_path : point list;
}

let default_apps () =
  List.filter_map Workload.Apps.find [ "Acrobat"; "Browser"; "Youtube" ]

let cdp_penalties = [ 0; 1; 2 ]
let iq_sizes = [ 16; 24; 48; 96 ]
let fetch_queues = [ 8; 16; 24; 48 ]

let jobs ?apps () =
  let apps = match apps with Some a -> a | None -> default_apps () in
  List.concat_map
    (fun app ->
      (Harness.job app Critics.Scheme.Baseline
      :: List.map
           (fun p ->
             Harness.job
               ~config:{ Pipeline.Config.table_i with cdp_decode_penalty = p }
               app Critics.Scheme.Critic)
           cdp_penalties)
      @ List.map
          (fun iq ->
            Harness.job
              ~config:{ Pipeline.Config.table_i with iq }
              app Critics.Scheme.Baseline)
          iq_sizes
      @ List.map
          (fun fq ->
            Harness.job
              ~config:{ Pipeline.Config.table_i with fetch_queue = fq }
              app Critics.Scheme.Baseline)
          fetch_queues
      @ [
          Harness.job
            ~config:{ Pipeline.Config.table_i with wrong_path_fetch = true }
            app Critics.Scheme.Baseline;
        ])
    apps

(* Split [xs] into consecutive groups of [k]. *)
let rec groups_of k xs =
  match xs with
  | [] -> []
  | _ ->
    let rec take n acc = function
      | rest when n = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> take (n - 1) (x :: acc) rest
    in
    let g, rest = take k [] xs in
    g :: groups_of k rest

let run ?apps h =
  let apps = match apps with Some a -> a | None -> default_apps () in
  let mean_over f = Harness.mean (List.map f apps) in
  (* Fan settings × apps out over the harness pool (each task profiles
     the trace afresh and runs a full simulation); regroup in order so
     the per-setting means match a sequential run exactly. *)
  let sweep settings label speedup_of =
    let tasks =
      List.concat_map (fun s -> List.map (fun a -> (s, a)) apps) settings
    in
    let per =
      Parallel.Pool.map_list ~chunk:1 (Harness.pool h)
        (fun (s, app) -> speedup_of s app)
        tasks
    in
    List.map2
      (fun s group -> { label = label s; speedup = Harness.mean group })
      settings
      (groups_of (List.length apps) per)
  in
  let critic_speedup_with_db make_db (app : Workload.Profile.t) =
    let ctx = Harness.context h app in
    let base = Harness.stats h app Critics.Scheme.Baseline in
    let db = make_db ctx in
    let program =
      fst (Transform.Critic_pass.apply db ctx.Critics.Run.program)
    in
    let st =
      Pipeline.Cpu.run_stream Pipeline.Config.table_i (fun () ->
          Prog.Trace.Stream.of_program program ~seed:ctx.seed ctx.path)
    in
    Critics.Run.speedup ~base st
  in
  let threshold =
    sweep [ 2.0; 3.0; 4.0; 6.0; 8.0 ]
      (fun t -> Printf.sprintf "threshold %.0f" t)
      (fun t ->
        critic_speedup_with_db (fun ctx ->
            Profiler.Profile_run.profile_stream ~threshold:t
              ~total_events:ctx.Critics.Run.event_count
              (Critics.Run.stream ctx Critics.Scheme.Baseline)))
  in
  let metric =
    sweep Profiler.Metric.all Profiler.Metric.name (fun m ->
        critic_speedup_with_db (fun ctx ->
            Profiler.Profile_run.profile_stream ~metric:m
              ~total_events:ctx.Critics.Run.event_count
              (Critics.Run.stream ctx Critics.Scheme.Baseline)))
  in
  let cdp_penalty =
    List.map
      (fun p ->
        let config = { Pipeline.Config.table_i with cdp_decode_penalty = p } in
        {
          label = Printf.sprintf "cdp penalty %d" p;
          speedup =
            mean_over (fun app ->
                let base = Harness.stats h app Critics.Scheme.Baseline in
                Critics.Run.speedup ~base
                  (Harness.stats h
                     ~config_name:(Printf.sprintf "cdp%d" p)
                     ~config app Critics.Scheme.Critic));
        })
      cdp_penalties
  in
  let machine_point name config =
    (* Baseline-machine sensitivity, reported as cycle change of the
       *baseline* scheme on the modified machine. *)
    {
      label = name;
      speedup =
        mean_over (fun app ->
            let base = Harness.stats h app Critics.Scheme.Baseline in
            Critics.Run.speedup ~base
              (Harness.stats h ~config_name:name ~config app
                 Critics.Scheme.Baseline));
    }
  in
  let iq_size =
    List.map
      (fun iq ->
        machine_point
          (Printf.sprintf "iq %d" iq)
          { Pipeline.Config.table_i with iq })
      iq_sizes
  in
  let fetch_queue =
    List.map
      (fun fq ->
        machine_point
          (Printf.sprintf "fetchq %d" fq)
          { Pipeline.Config.table_i with fetch_queue = fq })
      fetch_queues
  in
  let wrong_path =
    [
      machine_point "wrong-path fetch on"
        { Pipeline.Config.table_i with wrong_path_fetch = true };
    ]
  in
  { threshold; metric; cdp_penalty; iq_size; fetch_queue; wrong_path }

let render r =
  let section title points =
    title ^ "\n"
    ^ Util.Text_table.render ~header:[ "setting"; "effect" ]
        (List.map (fun p -> [ p.label; Util.Stats.pct p.speedup ]) points)
  in
  String.concat "\n\n"
    [
      section "Ablation: CritIC speedup vs criticality threshold" r.threshold;
      section
        "Ablation: CritIC speedup vs chain-criticality metric (future work)"
        r.metric;
      section "Ablation: CritIC speedup vs CDP decode penalty" r.cdp_penalty;
      section "Ablation: baseline cycles vs issue-queue size" r.iq_size;
      section "Ablation: baseline cycles vs fetch-queue depth" r.fetch_queue;
      section "Ablation: wrong-path fetch modelling (i-cache pollution)"
        r.wrong_path;
    ]
