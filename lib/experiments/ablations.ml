type point = { label : string; speedup : float }

type result = {
  threshold : point list;
  metric : point list;
  cdp_penalty : point list;
  iq_size : point list;
  fetch_queue : point list;
  wrong_path : point list;
}

let default_apps () =
  List.filter_map Workload.Apps.find [ "Acrobat"; "Browser"; "Youtube" ]

let run ?apps h =
  let apps = match apps with Some a -> a | None -> default_apps () in
  let mean_over f = Harness.mean (List.map f apps) in
  let critic_speedup_with_db make_db (app : Workload.Profile.t) =
    let ctx = Harness.context h app in
    let base = Harness.stats h app Critics.Scheme.Baseline in
    let db = make_db ctx in
    let program =
      fst (Transform.Critic_pass.apply db ctx.Critics.Run.program)
    in
    let st =
      Pipeline.Cpu.run Pipeline.Config.table_i
        (Prog.Trace.expand program ~seed:ctx.seed ctx.path)
    in
    Critics.Run.speedup ~base st
  in
  let threshold =
    List.map
      (fun t ->
        {
          label = Printf.sprintf "threshold %.0f" t;
          speedup =
            mean_over
              (critic_speedup_with_db (fun ctx ->
                   Profiler.Profile_run.profile ~threshold:t
                     ctx.Critics.Run.trace));
        })
      [ 2.0; 3.0; 4.0; 6.0; 8.0 ]
  in
  let metric =
    List.map
      (fun m ->
        {
          label = Profiler.Metric.name m;
          speedup =
            mean_over
              (critic_speedup_with_db (fun ctx ->
                   Profiler.Profile_run.profile ~metric:m
                     ctx.Critics.Run.trace));
        })
      Profiler.Metric.all
  in
  let cdp_penalty =
    List.map
      (fun p ->
        let config = { Pipeline.Config.table_i with cdp_decode_penalty = p } in
        {
          label = Printf.sprintf "cdp penalty %d" p;
          speedup =
            mean_over (fun app ->
                let base = Harness.stats h app Critics.Scheme.Baseline in
                Critics.Run.speedup ~base
                  (Harness.stats h
                     ~config_name:(Printf.sprintf "cdp%d" p)
                     ~config app Critics.Scheme.Critic));
        })
      [ 0; 1; 2 ]
  in
  let machine_point name config =
    (* Baseline-machine sensitivity, reported as cycle change of the
       *baseline* scheme on the modified machine. *)
    {
      label = name;
      speedup =
        mean_over (fun app ->
            let base = Harness.stats h app Critics.Scheme.Baseline in
            Critics.Run.speedup ~base
              (Harness.stats h ~config_name:name ~config app
                 Critics.Scheme.Baseline));
    }
  in
  let iq_size =
    List.map
      (fun iq ->
        machine_point
          (Printf.sprintf "iq %d" iq)
          { Pipeline.Config.table_i with iq })
      [ 16; 24; 48; 96 ]
  in
  let fetch_queue =
    List.map
      (fun fq ->
        machine_point
          (Printf.sprintf "fetchq %d" fq)
          { Pipeline.Config.table_i with fetch_queue = fq })
      [ 8; 16; 24; 48 ]
  in
  let wrong_path =
    [
      machine_point "wrong-path fetch on"
        { Pipeline.Config.table_i with wrong_path_fetch = true };
    ]
  in
  { threshold; metric; cdp_penalty; iq_size; fetch_queue; wrong_path }

let render r =
  let section title points =
    title ^ "\n"
    ^ Util.Text_table.render ~header:[ "setting"; "effect" ]
        (List.map (fun p -> [ p.label; Util.Stats.pct p.speedup ]) points)
  in
  String.concat "\n\n"
    [
      section "Ablation: CritIC speedup vs criticality threshold" r.threshold;
      section
        "Ablation: CritIC speedup vs chain-criticality metric (future work)"
        r.metric;
      section "Ablation: CritIC speedup vs CDP decode penalty" r.cdp_penalty;
      section "Ablation: baseline cycles vs issue-queue size" r.iq_size;
      section "Ablation: baseline cycles vs fetch-queue depth" r.fetch_queue;
      section "Ablation: wrong-path fetch modelling (i-cache pollution)"
        r.wrong_path;
    ]
