(** Ablations beyond the paper's figures, for the design choices the
    reproduction had to make (see DESIGN.md §4):

    - criticality threshold (the paper fixes 8 on its fanout scale; we
      sweep ours);
    - CDP decode penalty (the paper conservatively assumes 1 cycle);
    - issue-queue capacity;
    - fetch-queue depth. *)

type point = { label : string; speedup : float }

type result = {
  threshold : point list;       (** CritIC speedup per profiler threshold *)
  metric : point list;
      (** per chain-criticality metric — the paper's "higher order
          representations" future work (see {!Profiler.Metric}) *)
  cdp_penalty : point list;     (** per decode-penalty cycles *)
  iq_size : point list;         (** baseline IPC effect *)
  fetch_queue : point list;
  wrong_path : point list;
      (** trace-driven fidelity: effect of modelling wrong-path i-cache
          pollution after mispredictions *)
}

val jobs : ?apps:Workload.Profile.t list -> unit -> Harness.job list
(** Every memoized simulation [run] needs, for {!Harness.run_batch}
    prewarming (the profiler sweeps are fanned out by [run] itself). *)

val run : ?apps:Workload.Profile.t list -> Harness.t -> result
(** Defaults to three representative mobile apps to bound runtime. *)

val render : result -> string
