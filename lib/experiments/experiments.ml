(** Experiment registry: every table and figure of the paper, plus the
    reproduction's own ablations.  Each module exposes [run] (structured
    result) and [render]; [run_all] regenerates everything from one
    shared harness, which is what [bench/main.exe] prints. *)

module Harness = Harness
module Fig01 = Fig01
module Fig03 = Fig03
module Fig05 = Fig05
module Fig08 = Fig08
module Fig10 = Fig10
module Fig11 = Fig11
module Fig12 = Fig12
module Fig13 = Fig13
module Worked_example = Worked_example
module Tables = Tables
module Macro_study = Macro_study
module Ablations = Ablations

type entry = { id : string; title : string; render : Harness.t -> string }

let all : entry list =
  [
    { id = "tab1"; title = "Table I: configuration";
      render = (fun _ -> Tables.table_i ()) };
    { id = "tab2"; title = "Table II: applications";
      render = (fun _ -> Tables.table_ii ()) };
    { id = "fig1"; title = "Fig 1: motivation";
      render = (fun h -> Fig01.render (Fig01.run h)) };
    { id = "fig2"; title = "Fig 2/4: worked scheduling example";
      render = (fun _ -> Worked_example.render (Worked_example.example ())) };
    { id = "fig3"; title = "Fig 3: stage breakdown";
      render = (fun h -> Fig03.render (Fig03.run h)) };
    { id = "fig5"; title = "Fig 5: IC shapes and coverage";
      render = (fun h -> Fig05.render (Fig05.run h)) };
    { id = "fig8"; title = "Fig 8: Approach 1 on stock hardware";
      render = (fun h -> Fig08.render (Fig08.run h)) };
    { id = "fig10"; title = "Fig 10: speedup and energy";
      render = (fun h -> Fig10.render (Fig10.run h)) };
    { id = "fig11"; title = "Fig 11: hardware mechanisms";
      render = (fun h -> Fig11.render (Fig11.run h)) };
    { id = "fig12"; title = "Fig 12: sensitivity";
      render = (fun h -> Fig12.render (Fig12.run h)) };
    { id = "fig13"; title = "Fig 13: criticality-agnostic conversion";
      render = (fun h -> Fig13.render (Fig13.run h)) };
    { id = "macro"; title = "Extension: macro-ISA upper bound";
      render = (fun h -> Macro_study.render (Macro_study.run h)) };
    { id = "ablations"; title = "Reproduction ablations";
      render = (fun h -> Ablations.render (Ablations.run h)) };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_all ?(out = print_string) h =
  List.iter
    (fun e ->
      out (Printf.sprintf "\n===== %s — %s =====\n" e.id e.title);
      out (e.render h);
      out "\n")
    all
