(** Experiment registry: every table and figure of the paper, plus the
    reproduction's own ablations.  Each module exposes [run] (structured
    result) and [render]; [run_all] regenerates everything from one
    shared harness, which is what [bench/main.exe] prints. *)

module Harness = Harness
module Journal = Journal
module Fig01 = Fig01
module Fig03 = Fig03
module Fig05 = Fig05
module Fig08 = Fig08
module Fig10 = Fig10
module Fig11 = Fig11
module Fig12 = Fig12
module Fig13 = Fig13
module Worked_example = Worked_example
module Tables = Tables
module Macro_study = Macro_study
module Ablations = Ablations
module Nanopass_study = Nanopass_study
module Policy_lab = Policy_lab

type entry = {
  id : string;
  title : string;
  render : Harness.t -> string;
  jobs : unit -> Harness.job list;
      (* the memoized simulations the entry draws on, for parallel
         prewarming via Harness.run_batch *)
}

let no_jobs () = []

let mobile () = List.assoc "Mobile" Harness.suites
let everyone () = List.concat_map snd Harness.suites

let scheme_jobs apps schemes () =
  List.concat_map
    (fun app -> List.map (fun s -> Harness.job app s) schemes)
    (apps ())

let context_jobs apps () = List.map Harness.context_job (apps ())

let all : entry list =
  [
    { id = "tab1"; title = "Table I: configuration";
      render = (fun _ -> Tables.table_i ()); jobs = no_jobs };
    { id = "tab2"; title = "Table II: applications";
      render = (fun _ -> Tables.table_ii ()); jobs = no_jobs };
    { id = "fig1"; title = "Fig 1: motivation";
      render = (fun h -> Fig01.render (Fig01.run h)); jobs = Fig01.jobs };
    { id = "fig2"; title = "Fig 2/4: worked scheduling example";
      render = (fun _ -> Worked_example.render (Worked_example.example ()));
      jobs = no_jobs };
    { id = "fig3"; title = "Fig 3: stage breakdown";
      render = (fun h -> Fig03.render (Fig03.run h));
      jobs = scheme_jobs everyone [ Critics.Scheme.Baseline ] };
    { id = "fig5"; title = "Fig 5: IC shapes and coverage";
      render = (fun h -> Fig05.render (Fig05.run h));
      jobs = context_jobs everyone };
    { id = "fig8"; title = "Fig 8: Approach 1 on stock hardware";
      render = (fun h -> Fig08.render (Fig08.run h));
      jobs =
        scheme_jobs mobile
          [ Critics.Scheme.Baseline; Critics.Scheme.Critic_branches;
            Critics.Scheme.Critic ] };
    { id = "fig10"; title = "Fig 10: speedup and energy";
      render = (fun h -> Fig10.render (Fig10.run h));
      jobs =
        scheme_jobs mobile
          [ Critics.Scheme.Baseline; Critics.Scheme.Hoist;
            Critics.Scheme.Critic; Critics.Scheme.Critic_ideal ] };
    { id = "fig11"; title = "Fig 11: hardware mechanisms";
      render = (fun h -> Fig11.render (Fig11.run h)); jobs = Fig11.jobs };
    { id = "fig12"; title = "Fig 12: sensitivity";
      render = (fun h -> Fig12.render (Fig12.run h));
      jobs = scheme_jobs mobile [ Critics.Scheme.Baseline ] };
    { id = "fig13"; title = "Fig 13: criticality-agnostic conversion";
      render = (fun h -> Fig13.render (Fig13.run h));
      jobs =
        scheme_jobs mobile
          [ Critics.Scheme.Baseline; Critics.Scheme.Opp16;
            Critics.Scheme.Compress; Critics.Scheme.Critic;
            Critics.Scheme.Opp16_critic ] };
    { id = "macro"; title = "Extension: macro-ISA upper bound";
      render = (fun h -> Macro_study.render (Macro_study.run h));
      jobs =
        scheme_jobs mobile
          [ Critics.Scheme.Baseline; Critics.Scheme.Critic;
            Critics.Scheme.Macro_ideal ] };
    { id = "ablations"; title = "Reproduction ablations";
      render = (fun h -> Ablations.render (Ablations.run h));
      jobs = (fun () -> Ablations.jobs ()) };
  ]

(* Opt-in artifacts beyond the paper's figure set.  Kept out of [all]
   so the default bench stdout (recorded in bench_output.txt) stays
   byte-identical; reachable via [find], `critics experiment <id>` and
   `bench --ablation`. *)
let extra : entry list =
  [
    { id = "nanopass"; title = "Pass-list ablations (nanopass pipeline)";
      render = (fun h -> Nanopass_study.render (Nanopass_study.run h));
      jobs = (fun () -> Nanopass_study.jobs ()) };
    { id = "policy-lab";
      title = "Front-end policy laboratory (replacement x i-prefetch)";
      render = (fun h -> Policy_lab.render (Policy_lab.run h));
      jobs = (fun () -> Policy_lab.jobs ()) };
  ]

let find id = List.find_opt (fun e -> e.id = id) (all @ extra)

let prewarm ?only h =
  let entries =
    match only with
    | None -> all
    | Some e -> [ e ]
  in
  Harness.run_batch h (List.concat_map (fun e -> e.jobs ()) entries)

let run_all ?(out = print_string) h =
  prewarm h;
  List.iter
    (fun e ->
      out (Printf.sprintf "\n===== %s — %s =====\n" e.id e.title);
      out (e.render h);
      out "\n")
    all
