type suite_row = {
  suite : string;
  prefetch_speedup : float;
  prioritize_speedup : float;
  critical_fraction : float;
}

type gap_row = {
  suite : string;
  none : float;
  by_gap : float array;
  more : float;
}

type result = { rows : suite_row list; gaps : gap_row list }

let prefetch_config =
  Pipeline.Config.with_critical_load_prefetch Pipeline.Config.table_i

let prio_config = Pipeline.Config.with_backend_prio Pipeline.Config.table_i

let jobs () =
  List.concat_map
    (fun app ->
      [
        Harness.job app Critics.Scheme.Baseline;
        Harness.job ~config:prefetch_config app Critics.Scheme.Baseline;
        Harness.job ~config:prio_config app Critics.Scheme.Baseline;
      ])
    (List.concat_map snd Harness.suites)

let run h =
  let rows =
    List.map
      (fun (suite, apps) ->
        let pf =
          Harness.mean
            (List.map
               (fun app ->
                 Harness.speedup h ~config_name:"clprefetch"
                   ~config:prefetch_config app Critics.Scheme.Baseline)
               apps)
        in
        let prio =
          Harness.mean
            (List.map
               (fun app ->
                 Harness.speedup h ~config_name:"backendprio"
                   ~config:prio_config app Critics.Scheme.Baseline)
               apps)
        in
        let crit =
          Harness.mean
            (List.map
               (fun app ->
                 Pipeline.Stats.critical_fraction
                   (Harness.stats h app Critics.Scheme.Baseline))
               apps)
        in
        {
          suite;
          prefetch_speedup = pf;
          prioritize_speedup = prio;
          critical_fraction = crit;
        })
      Harness.suites
  in
  let gaps =
    List.map
      (fun (suite, apps) ->
        let total = ref 0 in
        let none = ref 0 in
        let by_gap = Array.make 6 0 in
        let more = ref 0 in
        List.iter
          (fun app ->
            let db = (Harness.context h app).Critics.Run.db in
            List.iter
              (fun (gap, count) ->
                total := !total + count;
                if gap < 0 then none := !none + count
                else if gap <= 5 then by_gap.(gap) <- by_gap.(gap) + count
                else more := !more + count)
              (Util.Dist.Histogram.bins db.chain_gaps))
          apps;
        let f x = float_of_int x /. float_of_int (max 1 !total) in
        {
          suite;
          none = f !none;
          by_gap = Array.map f by_gap;
          more = f !more;
        })
      Harness.suites
  in
  { rows; gaps }

let render r =
  let pct = Util.Stats.pct in
  let a =
    Util.Text_table.render
      ~header:
        [ "Suite"; "Prefetch critical loads"; "Prioritize at ALU";
          "% critical instrs" ]
      (List.map
         (fun (row : suite_row) ->
           [
             row.suite;
             pct row.prefetch_speedup;
             pct row.prioritize_speedup;
             pct row.critical_fraction;
           ])
         r.rows)
  in
  let b =
    Util.Text_table.render
      ~header:
        [ "Suite"; "none"; "gap=0"; "1"; "2"; "3"; "4"; "5"; ">5" ]
      (List.map
         (fun (g : gap_row) ->
           g.suite :: pct g.none
           :: (Array.to_list g.by_gap |> List.map pct)
           @ [ pct g.more ])
         r.gaps)
  in
  "Fig 1a: single-instruction criticality optimizations\n" ^ a
  ^ "\n\nFig 1b: low-fanout gaps between dependent critical instructions\n"
  ^ b
