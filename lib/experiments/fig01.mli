(** Fig. 1 — the motivation study.

    (a) Mean speedup from the two conventional single-instruction
    criticality optimizations — critical-load prefetching [18] and
    backend (ALU) prioritization [32,33] — on SPEC.int, SPEC.float and
    the mobile apps, with the fraction of critical instructions on the
    right axis.  The paper's shape: both help SPEC substantially and
    mobile barely, although mobile has *more* critical instructions.

    (b) Dependence-chain structure: for each high-fanout instruction,
    the number of low-fanout instructions to the nearest dependent
    high-fanout instruction ("none" when its forward slice has no other
    critical instruction — the dominant SPEC case). *)

type suite_row = {
  suite : string;
  prefetch_speedup : float;
  prioritize_speedup : float;
  critical_fraction : float;
}

type gap_row = {
  suite : string;
  none : float;           (** no dependent critical instruction *)
  by_gap : float array;   (** fractions for gaps 0..5 *)
  more : float;           (** gaps > 5 *)
}

type result = { rows : suite_row list; gaps : gap_row list }

val jobs : unit -> Harness.job list
(** Every simulation [run] needs, for {!Harness.run_batch} prewarming. *)

val run : Harness.t -> result
val render : result -> string
