type row = {
  suite : string;
  shares : (string * float) list;
  fetch_i_share : float;
  fetch_rd_share : float;
  long_latency_fraction : float;
}

type result = row list

(* Fraction of committed critical instructions with a multi-cycle
   execution, approximated from the DFG: high-fanout events whose
   opcode class is long-latency (loads count as long only in suites
   where they typically miss; we classify by opcode latency class,
   which the paper's Fig. 3c also does). *)
let long_latency_fraction ctx =
  (* The figure classifies events by whole-trace fanout, which needs
     random access — materialize transiently, scoped to this figure. *)
  let trace = Critics.Run.trace_of ctx Critics.Scheme.Baseline in
  let dfg = Dfg.of_events trace in
  let critical = ref 0 and long = ref 0 in
  Array.iteri
    (fun i (e : Prog.Trace.event) ->
      if Dfg.fanout dfg i >= 4 then begin
        incr critical;
        (* Loads count as long-latency when they typically leave the L1,
           approximated by the profile's working-set size. *)
        let is_long =
          Isa.Opcode.is_long_latency e.instr.opcode
          || (e.instr.opcode = Isa.Opcode.Load
              && ctx.Critics.Run.profile.load_working_set > 256 * 1024)
        in
        if is_long then incr long
      end)
    trace;
  float_of_int !long /. float_of_int (max 1 !critical)

let suite_summary h apps =
  (* Aggregate critical-population stage cycles across the suite. *)
  let sums = Hashtbl.create 8 in
  let add k v =
    Hashtbl.replace sums k (v + Option.value ~default:0 (Hashtbl.find_opt sums k))
  in
  List.iter
    (fun app ->
      let st = Harness.stats h app Critics.Scheme.Baseline in
      let s = st.Pipeline.Stats.stage_critical in
      add "fetch.stall_for_i" s.fetch_i;
      add "fetch.stall_for_r+d" s.fetch_rd;
      add "decode" s.decode;
      add "rename" s.rename;
      add "issue" s.issue_wait;
      add "execute" s.execute;
      add "commit/rob" s.commit_wait)
    apps;
  let order =
    [ "fetch.stall_for_i"; "fetch.stall_for_r+d"; "decode"; "rename";
      "issue"; "execute"; "commit/rob" ]
  in
  let total =
    List.fold_left
      (fun acc k -> acc + Option.value ~default:0 (Hashtbl.find_opt sums k))
      0 order
  in
  List.map
    (fun k ->
      ( k,
        float_of_int (Option.value ~default:0 (Hashtbl.find_opt sums k))
        /. float_of_int (max 1 total) ))
    order

let run h =
  List.map
    (fun (suite, apps) ->
      let shares = suite_summary h apps in
      let get k = List.assoc k shares in
      let llf =
        Harness.mean
          (List.map (fun app -> long_latency_fraction (Harness.context h app)) apps)
      in
      {
        suite;
        shares;
        fetch_i_share = get "fetch.stall_for_i";
        fetch_rd_share = get "fetch.stall_for_r+d";
        long_latency_fraction = llf;
      })
    Harness.suites

let render rows =
  let pct = Util.Stats.pct in
  let header =
    "Suite"
    :: (match rows with
       | r :: _ -> List.map fst r.shares
       | [] -> [])
  in
  let a =
    Util.Text_table.render ~header
      (List.map
         (fun r -> r.suite :: List.map (fun (_, v) -> pct v) r.shares)
         rows)
  in
  let b =
    Util.Text_table.render
      ~header:[ "Suite"; "F.StallForI"; "F.StallForR+D"; "long-latency criticals" ]
      (List.map
         (fun r ->
           [
             r.suite;
             pct r.fetch_i_share;
             pct r.fetch_rd_share;
             pct r.long_latency_fraction;
           ])
         rows)
  in
  "Fig 3a: stage residency of critical instructions\n" ^ a
  ^ "\n\nFig 3b/3c: fetch-stall split and latency mix\n" ^ b
