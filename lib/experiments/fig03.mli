(** Fig. 3 — where critical instructions spend their time.

    (a) Per-stage residency shares of high-fanout (critical)
    instructions, SPEC vs Android: the paper's observation is that the
    bottleneck shifts from execute/ROB (SPEC) to the front-end fetch
    stage (Android).

    (b) The fetch share split into F.StallForI (supply) and
    F.StallForR+D (drain against back-pressure).

    (c) Latency mix: the fraction of critical instructions that are
    long-latency (multi-cycle) operations — high in SPEC, low in
    Android. *)

type row = {
  suite : string;
  shares : (string * float) list;  (** per-stage shares, pipeline order *)
  fetch_i_share : float;
  fetch_rd_share : float;
  long_latency_fraction : float;
}

type result = row list

val run : Harness.t -> result
val render : result -> string
