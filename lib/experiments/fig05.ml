type suite_row = {
  suite : string;
  max_length : int;
  p99_length : float;
  mean_length : float;
  max_spread : int;
  p99_spread : float;
}

type coverage_point = { rank_fraction : float; coverage : float }

type result = {
  rows : suite_row list;
  mobile_coverage : coverage_point list;
  mobile_convertible : coverage_point list;
  convertible_site_fraction : float;
}

let percentile_of_histogram h p =
  let total = Util.Dist.Histogram.count h in
  if total = 0 then 0.0
  else begin
    let target = int_of_float (p /. 100.0 *. float_of_int total) in
    let bins = Util.Dist.Histogram.bins h in
    let rec go acc = function
      | [] -> 0.0
      | (v, c) :: rest ->
        if acc + c >= target then float_of_int v else go (acc + c) rest
    in
    go 0 bins
  end

let run ?(window = 2048) h =
  (* Large-window profiles are computed separately from the harness's
     compiler-oriented databases: the figure is about raw IC shapes. *)
  let wide_db app =
    let ctx = Harness.context h app in
    Profiler.Profile_run.profile_stream ~window
      ~total_events:ctx.Critics.Run.event_count
      (Critics.Run.stream ctx Critics.Scheme.Baseline)
  in
  let dbs =
    (* One wide-window profile per app, fanned out over the harness
       pool; per-suite grouping and order are preserved. *)
    List.map
      (fun (suite, apps) ->
        (suite, Parallel.Pool.map_list ~chunk:1 (Harness.pool h) wide_db apps))
      Harness.suites
  in
  let rows =
    List.map
      (fun (suite, dbs) ->
        let merge f =
          List.fold_left
            (fun acc db ->
              let h = f db in
              max acc (Util.Dist.Histogram.max_value h))
            0 dbs
        in
        let pct_mean f p =
          Harness.mean (List.map (fun db -> percentile_of_histogram (f db) p) dbs)
        in
        let mean_len =
          Harness.mean
            (List.map
               (fun (db : Profiler.Critic_db.t) ->
                 Util.Dist.Histogram.mean db.ic_lengths)
               dbs)
        in
        {
          suite;
          max_length = merge (fun (db : Profiler.Critic_db.t) -> db.ic_lengths);
          p99_length =
            pct_mean (fun (db : Profiler.Critic_db.t) -> db.ic_lengths) 99.0;
          mean_length = mean_len;
          max_spread = merge (fun (db : Profiler.Critic_db.t) -> db.ic_spreads);
          p99_spread =
            pct_mean (fun (db : Profiler.Critic_db.t) -> db.ic_spreads) 99.0;
        })
      dbs
  in
  (* Fig 5b over the mobile suite, using the compiler databases. *)
  let mobile = List.assoc "Mobile" Harness.suites in
  (* Average the per-app CDFs on a common rank grid. *)
  let cdf convertible_only =
    List.init 10 (fun i ->
        let rf = float_of_int (i + 1) /. 10.0 in
        let values =
          List.filter_map
            (fun app ->
              let pts =
                Profiler.Critic_db.coverage_cdf ~convertible_only
                  (Harness.context h app).Critics.Run.db
              in
              let below = List.filter (fun (r, _) -> r <= rf) pts in
              match List.rev below with
              | (_, c) :: _ -> Some c
              | [] -> None)
            mobile
        in
        { rank_fraction = rf; coverage = Harness.mean values })
  in
  let convertible_site_fraction =
    let totals =
      List.map
        (fun app ->
          let db = (Harness.context h app).Critics.Run.db in
          let n = List.length db.sites in
          let c =
            List.length
              (List.filter (fun (s : Profiler.Critic_db.site) -> s.convertible)
                 db.sites)
          in
          if n = 0 then 1.0 else float_of_int c /. float_of_int n)
        mobile
    in
    Harness.mean totals
  in
  {
    rows;
    mobile_coverage = cdf false;
    mobile_convertible = cdf true;
    convertible_site_fraction;
  }

let render r =
  let a =
    Util.Text_table.render
      ~header:
        [ "Suite"; "max IC len"; "p99 len"; "mean len"; "max spread";
          "p99 spread" ]
      (List.map
         (fun row ->
           [
             row.suite;
             string_of_int row.max_length;
             Printf.sprintf "%.0f" row.p99_length;
             Printf.sprintf "%.1f" row.mean_length;
             string_of_int row.max_spread;
             Printf.sprintf "%.0f" row.p99_spread;
           ])
         r.rows)
  in
  let b =
    Util.Text_table.render
      ~header:[ "unique-chain rank"; "coverage (all)"; "coverage (16-bit ok)" ]
      (List.map2
         (fun (p : coverage_point) (q : coverage_point) ->
           [
             Printf.sprintf "%.0f%%" (100.0 *. p.rank_fraction);
             Util.Stats.pct p.coverage;
             Util.Stats.pct q.coverage;
           ])
         r.mobile_coverage r.mobile_convertible)
  in
  Printf.sprintf
    "Fig 5a: IC length and spread\n%s\n\n\
     Fig 5b: coverage CDF by unique CritICs (mobile)\n%s\n\
     Fully convertible unique sites: %s (paper: 95.5%%)"
    a b
    (Util.Stats.pct r.convertible_site_fraction)
