(** Fig. 5 — why software identification is feasible for mobile apps.

    (a) Instruction-chain length and dynamic spread: SPEC chains run to
    hundreds of instructions spread over thousands (loop-carried
    dependences), while mobile chains are tens of instructions spread
    over at most a few hundred — short and local enough for offline
    profiling and per-block compilation.

    (b) CDF of dynamic-stream coverage by unique CritIC sequences, and
    the same CDF restricted to fully Thumb-convertible sequences: the
    two curves nearly coincide (the paper reports only 4.5 % of unique
    sequences are unrepresentable). *)

type suite_row = {
  suite : string;
  max_length : int;
  p99_length : float;
  mean_length : float;
  max_spread : int;
  p99_spread : float;
}

type coverage_point = { rank_fraction : float; coverage : float }

type result = {
  rows : suite_row list;
  mobile_coverage : coverage_point list;      (** Fig. 5b, all chains *)
  mobile_convertible : coverage_point list;   (** Fig. 5b, convertible *)
  convertible_site_fraction : float;
      (** share of unique CritIC sites that are fully convertible *)
}

val run : ?window:int -> Harness.t -> result
(** [window] is the offline analysis window (default 2048 — large
    enough to expose SPEC's long loop-carried chains). *)

val render : result -> string
