type row = { app : string; achieved : float; potential : float }

type result = { rows : row list; mean_achieved : float; mean_potential : float }

let run h =
  let mobile = List.assoc "Mobile" Harness.suites in
  let rows =
    List.map
      (fun (app : Workload.Profile.t) ->
        {
          app = app.name;
          achieved = Harness.speedup h app Critics.Scheme.Critic_branches;
          potential = Harness.speedup h app Critics.Scheme.Critic;
        })
      mobile
  in
  {
    rows;
    mean_achieved = Harness.mean (List.map (fun r -> r.achieved) rows);
    mean_potential = Harness.mean (List.map (fun r -> r.potential) rows);
  }

let render r =
  let table =
    Util.Text_table.render
      ~header:[ "App"; "Branch switching (actual HW)"; "Lost potential (CDP)" ]
      (List.map
         (fun row ->
           [ row.app; Util.Stats.pct row.achieved; Util.Stats.pct row.potential ])
         r.rows
      @ [
          [ "MEAN"; Util.Stats.pct r.mean_achieved;
            Util.Stats.pct r.mean_potential ];
        ])
  in
  "Fig 8: CritIC with branch-based format switching\n" ^ table
