(** Fig. 8 — Approach 1 on stock hardware.

    The format switch implemented with explicit branch instructions (a
    32-bit branch before and a 16-bit branch after each chain) is
    runnable on current ARM hardware but pays two extra instructions and
    two fetch-group breaks per chain — far too much for typical
    length-5 chains to amortize.  The figure compares the achieved
    speedup against the "lost potential" (what the CDP-based switch of
    Approach 2 achieves). *)

type row = { app : string; achieved : float; potential : float }

type result = { rows : row list; mean_achieved : float; mean_potential : float }

val run : Harness.t -> result
val render : result -> string
