type speedup_row = {
  app : string;
  hoist : float;
  critic : float;
  ideal : float;
}

type fetch_row = {
  app : string;
  base_fetch_idle : float;
  critic_fetch_idle : float;
}

type energy_row = {
  app : string;
  cpu_contrib : float;
  icache_contrib : float;
  memory_contrib : float;
  system : float;
  cpu_only : float;
}

type result = {
  speedups : speedup_row list;
  fetch : fetch_row list;
  energy : energy_row list;
}

let fetch_idle_share (s : Pipeline.Stats.t) =
  float_of_int (s.fetch_idle_supply + s.fetch_idle_backpressure)
  /. float_of_int (max 1 s.cycles)

let run h =
  let mobile = List.assoc "Mobile" Harness.suites in
  let speedups =
    List.map
      (fun (app : Workload.Profile.t) ->
        {
          app = app.name;
          hoist = Harness.speedup h app Critics.Scheme.Hoist;
          critic = Harness.speedup h app Critics.Scheme.Critic;
          ideal = Harness.speedup h app Critics.Scheme.Critic_ideal;
        })
      mobile
  in
  let fetch =
    List.map
      (fun (app : Workload.Profile.t) ->
        let base = Harness.stats h app Critics.Scheme.Baseline in
        let critic = Harness.stats h app Critics.Scheme.Critic in
        {
          app = app.name;
          base_fetch_idle = fetch_idle_share base;
          critic_fetch_idle = fetch_idle_share critic;
        })
      mobile
  in
  let energy =
    List.map
      (fun (app : Workload.Profile.t) ->
        let base = Harness.stats h app Critics.Scheme.Baseline in
        let critic = Harness.stats h app Critics.Scheme.Critic in
        let s = Critics.Run.energy ~base critic in
        {
          app = app.name;
          cpu_contrib = s.cpu_contrib;
          icache_contrib = s.icache_contrib;
          memory_contrib = s.memory_contrib;
          system = s.system;
          cpu_only = s.cpu_only;
        })
      mobile
  in
  { speedups; fetch; energy }

let render r =
  let pct = Util.Stats.pct in
  let mean f rows = Harness.mean (List.map f rows) in
  let a =
    Util.Text_table.render
      ~header:[ "App"; "Hoist"; "CritIC"; "CritIC.Ideal" ]
      (List.map
         (fun (s : speedup_row) ->
           [ s.app; pct s.hoist; pct s.critic; pct s.ideal ])
         r.speedups
      @ [
          [
            "MEAN";
            pct (mean (fun (s : speedup_row) -> s.hoist) r.speedups);
            pct (mean (fun (s : speedup_row) -> s.critic) r.speedups);
            pct (mean (fun (s : speedup_row) -> s.ideal) r.speedups);
          ];
        ])
  in
  let b =
    Util.Text_table.render
      ~header:[ "App"; "fetch idle (base)"; "fetch idle (CritIC)" ]
      (List.map
         (fun (f : fetch_row) ->
           [
             f.app;
             Util.Stats.pct f.base_fetch_idle;
             Util.Stats.pct f.critic_fetch_idle;
           ])
         r.fetch)
  in
  let c =
    Util.Text_table.render
      ~header:[ "App"; "CPU"; "i-cache"; "memory"; "system"; "CPU-only" ]
      (List.map
         (fun (e : energy_row) ->
           [
             e.app;
             pct e.cpu_contrib;
             pct e.icache_contrib;
             pct e.memory_contrib;
             pct e.system;
             pct e.cpu_only;
           ])
         r.energy
      @ [
          [
            "MEAN";
            pct (mean (fun (e : energy_row) -> e.cpu_contrib) r.energy);
            pct (mean (fun (e : energy_row) -> e.icache_contrib) r.energy);
            pct (mean (fun (e : energy_row) -> e.memory_contrib) r.energy);
            pct (mean (fun (e : energy_row) -> e.system) r.energy);
            pct (mean (fun (e : energy_row) -> e.cpu_only) r.energy);
          ];
        ])
  in
  let chart =
    Util.Text_table.bar_chart
      (List.map (fun (s : speedup_row) -> (s.app, s.critic)) r.speedups)
  in
  "Fig 10a: speedup over baseline\n" ^ a ^ "\n\nCritIC speedup per app:\n"
  ^ chart
  ^ "\n\nFig 10b: fetch-stage idle share (supply + backpressure)\n" ^ b
  ^ "\n\nFig 10c: energy gains (contributions to system energy)\n" ^ c
