(** Fig. 10 — the headline evaluation.

    (a) Per-app CPU speedup of the three design points over the Table I
    baseline: Hoist (aggregation only), CritIC (hoist + 16-bit CDP
    switch, chains ≤ 5) and CritIC.Ideal (every chain, hypothetical
    encodings).

    (b) Fetch-side pressure: the fraction of cycles the fetch stage
    delivers nothing (supply stalls + back-pressure), baseline vs
    CritIC — the producer/consumer-side savings.

    (c) System-wide energy gains decomposed into CPU, i-cache and
    memory contributions, plus the CPU-only saving. *)

type speedup_row = {
  app : string;
  hoist : float;
  critic : float;
  ideal : float;
}

type fetch_row = {
  app : string;
  base_fetch_idle : float;
      (** fraction of baseline cycles with an idle fetch stage *)
  critic_fetch_idle : float;
      (** same under CritIC, normalized by CritIC cycles *)
}

type energy_row = {
  app : string;
  cpu_contrib : float;
  icache_contrib : float;
  memory_contrib : float;
  system : float;
  cpu_only : float;
}

type result = {
  speedups : speedup_row list;
  fetch : fetch_row list;
  energy : energy_row list;
}

val run : Harness.t -> result
val render : result -> string
