type row = { mechanism : string; alone : float; with_critic : float }

type stall_row = {
  mechanism : string;
  supply_delta : float;
  backpressure_delta : float;
}

type result = { critic_alone : float; rows : row list; stalls : stall_row list }

let mechanisms =
  let open Pipeline.Config in
  [
    ("2xFD", with_2x_fd);
    ("4xI$", with_4x_icache);
    ("EFetch", with_efetch);
    ("PerfectBr", with_perfect_branch);
    ("BackendPrio", with_backend_prio);
    ("AllHW", all_hw);
  ]

let jobs () =
  let mobile = List.assoc "Mobile" Harness.suites in
  let configs =
    Pipeline.Config.table_i
    :: List.map (fun (_, f) -> f Pipeline.Config.table_i) mechanisms
  in
  List.concat_map
    (fun app ->
      List.concat_map
        (fun config ->
          [
            Harness.job ~config app Critics.Scheme.Baseline;
            Harness.job ~config app Critics.Scheme.Critic;
          ])
        configs)
    mobile

let run h =
  let mobile = List.assoc "Mobile" Harness.suites in
  let mean_speedup ?config_name ?config scheme =
    Harness.mean
      (List.map
         (fun app -> Harness.speedup h ?config_name ?config app scheme)
         mobile)
  in
  let critic_alone = mean_speedup Critics.Scheme.Critic in
  let rows =
    List.map
      (fun (name, f) ->
        let config = f Pipeline.Config.table_i in
        {
          mechanism = name;
          alone =
            mean_speedup ~config_name:name ~config Critics.Scheme.Baseline;
          with_critic =
            mean_speedup ~config_name:name ~config Critics.Scheme.Critic;
        })
      mechanisms
  in
  let stalls =
    List.map
      (fun (name, f) ->
        let config = f Pipeline.Config.table_i in
        let deltas =
          List.map
            (fun app ->
              let base = Harness.stats h app Critics.Scheme.Baseline in
              let st =
                Harness.stats h ~config_name:name ~config app
                  Critics.Scheme.Baseline
              in
              let share part (s : Pipeline.Stats.t) =
                float_of_int part /. float_of_int (max 1 s.cycles)
              in
              ( share st.Pipeline.Stats.fetch_idle_supply st
                -. share base.Pipeline.Stats.fetch_idle_supply base,
                share st.Pipeline.Stats.fetch_idle_backpressure st
                -. share base.Pipeline.Stats.fetch_idle_backpressure base ))
            mobile
        in
        {
          mechanism = name;
          supply_delta = Harness.mean (List.map fst deltas);
          backpressure_delta = Harness.mean (List.map snd deltas);
        })
      mechanisms
  in
  { critic_alone; rows; stalls }

let render r =
  let pct = Util.Stats.pct in
  let a =
    Util.Text_table.render
      ~header:[ "Mechanism"; "alone"; "+ CritIC" ]
      ([ [ "CritIC (software only)"; pct r.critic_alone; "-" ] ]
      @ List.map
          (fun (row : row) -> [ row.mechanism; pct row.alone; pct row.with_critic ])
          r.rows)
  in
  let b =
    Util.Text_table.render
      ~header:
        [ "Mechanism"; "Δ fetch idle (supply)"; "Δ fetch idle (backpr.)" ]
      (List.map
         (fun (s : stall_row) ->
           [ s.mechanism; pct s.supply_delta; pct s.backpressure_delta ])
         r.stalls)
  in
  let chart =
    Util.Text_table.bar_chart
      (("CritIC (sw only)", r.critic_alone)
      :: List.map (fun (row : row) -> (row.mechanism, row.alone)) r.rows)
  in
  "Fig 11a: hardware mechanisms vs CritIC (mean mobile speedup)\n" ^ a
  ^ "\n" ^ chart
  ^ "\n\nFig 11b: effect on fetch stalls (share of each config's cycles)\n"
  ^ b
