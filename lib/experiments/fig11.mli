(** Fig. 11 — CritIC vs (and with) conventional hardware fetch/backend
    mechanisms (Sec. IV-G).

    Mechanisms: 2×FD (doubled fetch/decode bandwidth, halved i-cache
    latency), 4×i-cache, EFetch [71], PerfectBr, BackendPrio [33], and
    AllHW (everything at once).  Each is evaluated alone and combined
    with the CritIC software transformation; the second table shows how
    each mechanism moves the two fetch-stall components. *)

type row = {
  mechanism : string;
  alone : float;        (** mean mobile speedup *)
  with_critic : float;
}

type stall_row = {
  mechanism : string;
  supply_delta : float;       (** change in fetch-idle (supply) cycles
                                  vs baseline, fraction of baseline
                                  cycles; negative = reduced *)
  backpressure_delta : float;
}

type result = { critic_alone : float; rows : row list; stalls : stall_row list }

val jobs : unit -> Harness.job list
(** Every simulation [run] needs, for {!Harness.run_batch} prewarming. *)

val run : Harness.t -> result
val render : result -> string
