type length_point = {
  n : int;
  speedup : float;
  fetch_saving : float;
  coverage : float;
}

type coverage_point = { fraction : float; speedup : float }

type result = { lengths : length_point list; coverage : coverage_point list }

let apply_critic ?(max_len = 5) ctx db =
  let options = { Transform.Critic_pass.default_options with max_len } in
  fst (Transform.Critic_pass.apply ~options db ctx.Critics.Run.program)

let run_transformed (ctx : Critics.Run.app_context) program =
  Pipeline.Cpu.run_stream Pipeline.Config.table_i (fun () ->
      Prog.Trace.Stream.of_program program ~seed:ctx.seed ctx.path)

(* Split [xs] into consecutive groups of [k]. *)
let rec groups_of k xs =
  match xs with
  | [] -> []
  | _ ->
    let rec take n acc = function
      | rest when n = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> take (n - 1) (x :: acc) rest
    in
    let g, rest = take k [] xs in
    g :: groups_of k rest

let run h =
  let mobile = List.assoc "Mobile" Harness.suites in
  (* Both sensitivity sweeps re-transform and re-simulate per (setting,
     app) — independent work, fanned out over the harness pool and
     regrouped in input order so each mean matches a sequential run. *)
  let fan settings per_point =
    let tasks =
      List.concat_map (fun s -> List.map (fun a -> (s, a)) mobile) settings
    in
    let per =
      Parallel.Pool.map_list ~chunk:1 (Harness.pool h)
        (fun (s, app) -> per_point s app)
        tasks
    in
    List.combine settings (groups_of (List.length mobile) per)
  in
  let lengths =
    List.map
      (fun (n, per_app) ->
        {
          n;
          speedup = Harness.mean (List.map (fun (s, _, _) -> s) per_app);
          fetch_saving = Harness.mean (List.map (fun (_, f, _) -> f) per_app);
          coverage = Harness.mean (List.map (fun (_, _, c) -> c) per_app);
        })
      (fan
         [ 2; 3; 4; 5; 6; 7; 8; 9 ]
         (fun n app ->
           let ctx = Harness.context h app in
           let base = Harness.stats h app Critics.Scheme.Baseline in
           let db = Profiler.Critic_db.exact_length n ctx.db in
           let st = run_transformed ctx (apply_critic ~max_len:n ctx db) in
           let cyc = float_of_int base.Pipeline.Stats.cycles in
           ( Critics.Run.speedup ~base st,
             float_of_int
               (base.Pipeline.Stats.fetch_idle_supply
               - st.Pipeline.Stats.fetch_idle_supply)
             /. cyc,
             Profiler.Critic_db.coverage db )))
  in
  let coverage =
    List.map
      (fun (fraction, per_app) ->
        { fraction; speedup = Harness.mean per_app })
      (fan
         [ 0.125; 0.25; 0.375; 0.5; 0.75; 1.0 ]
         (fun fraction app ->
           let ctx = Harness.context h app in
           let base = Harness.stats h app Critics.Scheme.Baseline in
           let db =
             Profiler.Profile_run.profile_stream ~fraction
               ~total_events:ctx.Critics.Run.event_count
               (Critics.Run.stream ctx Critics.Scheme.Baseline)
           in
           let st = run_transformed ctx (apply_critic ctx db) in
           Critics.Run.speedup ~base st))
  in
  { lengths; coverage }

let render r =
  let pct = Util.Stats.pct in
  let a =
    Util.Text_table.render
      ~header:[ "chain length n"; "speedup"; "fetch saving"; "coverage" ]
      (List.map
         (fun p ->
           [
             string_of_int p.n; pct p.speedup; pct p.fetch_saving;
             pct p.coverage;
           ])
         r.lengths)
  in
  let b =
    Util.Text_table.render
      ~header:[ "profiled fraction"; "speedup" ]
      (List.map
         (fun p ->
           [ Printf.sprintf "%.0f%%" (100.0 *. p.fraction); pct p.speedup ])
         r.coverage)
  in
  "Fig 12a: sensitivity to CritIC length (exact n)\n" ^ a
  ^ "\n\nFig 12b: sensitivity to profiling coverage\n" ^ b
