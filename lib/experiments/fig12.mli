(** Fig. 12 — sensitivity studies.

    (a) CritIC length: chains of exactly n members for n = 2..9.  Fetch
    savings grow with n while the probability of finding convertible
    chains of exactly that length falls, so speedup peaks at an
    intermediate length (n = 5 in the paper).

    (b) Profiling coverage: the speedup as a function of the fraction
    of the execution that was profiled before compiling. *)

type length_point = {
  n : int;
  speedup : float;
  fetch_saving : float;  (** reduction of fetch-idle (supply) cycles,
                             fraction of baseline cycles *)
  coverage : float;      (** dynamic coverage by the selected chains *)
}

type coverage_point = { fraction : float; speedup : float }

type result = { lengths : length_point list; coverage : coverage_point list }

val run : Harness.t -> result
val render : result -> string
