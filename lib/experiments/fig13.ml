type row = {
  scheme : string;
  speedup : float;
  converted_fraction : float;
}

type result = row list

let schemes =
  [
    Critics.Scheme.Opp16;
    Critics.Scheme.Compress;
    Critics.Scheme.Critic;
    Critics.Scheme.Opp16_critic;
  ]

let run h =
  let mobile = List.assoc "Mobile" Harness.suites in
  List.map
    (fun scheme ->
      let speedups = List.map (fun app -> Harness.speedup h app scheme) mobile in
      let fracs =
        List.map
          (fun app ->
            let st = Harness.stats h app scheme in
            float_of_int st.Pipeline.Stats.thumb_committed
            /. float_of_int (max 1 st.Pipeline.Stats.committed_total))
          mobile
      in
      {
        scheme = Critics.Scheme.name scheme;
        speedup = Harness.mean speedups;
        converted_fraction = Harness.mean fracs;
      })
    schemes

let render rows =
  let table =
    Util.Text_table.render
      ~header:[ "Scheme"; "speedup"; "dynamic instrs converted" ]
      (List.map
         (fun r ->
           [
             r.scheme; Util.Stats.pct r.speedup;
             Util.Stats.pct r.converted_fraction;
           ])
         rows)
  in
  "Fig 13: criticality-agnostic conversion vs CritIC (mobile mean)\n" ^ table
