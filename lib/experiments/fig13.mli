(** Fig. 13 — why bother with criticality?

    Compares criticality-agnostic Thumb conversion — OPP16 (any run of
    ≥ 3 convertible instructions) and Compress (the fine-grained
    profile-guided conversion of [78]) — against CritIC and the
    composition OPP16+CritIC.  The second table reports the share of
    dynamic instructions each scheme converts to the 16-bit format: the
    paper's point is that CritIC converts far fewer instructions for
    its benefit. *)

type row = {
  scheme : string;
  speedup : float;
  converted_fraction : float;  (** dynamic instructions in 16-bit form *)
}

type result = row list

val run : Harness.t -> result
val render : result -> string
