type t = {
  instrs : int;
  contexts : (string, Critics.Run.app_context) Hashtbl.t;
  results : (string, Pipeline.Stats.t) Hashtbl.t;
}

let create ?(instrs = Critics.Run.default_instrs) () =
  { instrs; contexts = Hashtbl.create 32; results = Hashtbl.create 256 }

let instrs t = t.instrs

let context t (profile : Workload.Profile.t) =
  match Hashtbl.find_opt t.contexts profile.name with
  | Some ctx -> ctx
  | None ->
    let ctx = Critics.Run.prepare ~instrs:t.instrs profile in
    Hashtbl.replace t.contexts profile.name ctx;
    ctx

let stats t ?(config_name = "table_i") ?config (profile : Workload.Profile.t)
    scheme =
  let key =
    Printf.sprintf "%s/%s/%s" profile.name (Critics.Scheme.name scheme)
      config_name
  in
  match Hashtbl.find_opt t.results key with
  | Some st -> st
  | None ->
    let ctx = context t profile in
    let st = Critics.Run.stats ?config ctx scheme in
    Hashtbl.replace t.results key st;
    st

let speedup t ?config_name ?config profile scheme =
  let base = stats t profile Critics.Scheme.Baseline in
  Critics.Run.speedup ~base (stats t ?config_name ?config profile scheme)

let mean = Util.Stats.mean

let suites =
  [
    ("Mobile", Workload.Apps.mobile);
    ("SPEC.int", Workload.Apps.spec_int);
    ("SPEC.float", Workload.Apps.spec_float);
  ]
