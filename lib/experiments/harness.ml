type job = {
  job_profile : Workload.Profile.t;
  job_scheme : Critics.Scheme.t option; (* None: prepare the context only *)
  job_config : Pipeline.Config.t;
}

type t = {
  instrs : int;
  jobs : int;
  telemetry : int option; (* probe window size; None = probes disabled *)
  store : Store.t option; (* prepared-artifact cache; None = hermetic *)
  context_cap : int option; (* max resident contexts; None = unbounded *)
  pool : Parallel.Pool.t Lazy.t;
  lock : Mutex.t;
  contexts : (string, Critics.Run.app_context) Hashtbl.t;
  ctx_stamps : (string, int) Hashtbl.t; (* LRU stamps, under [lock] *)
  mutable ctx_clock : int;
  mutable ctx_evictions : int;
  results : (string, Pipeline.Stats.t) Hashtbl.t;
  probes : (string, Telemetry.Probe.t) Hashtbl.t;
}

let create ?(instrs = Critics.Run.default_instrs) ?jobs ?telemetry ?store
    ?context_cap () =
  let jobs =
    max 1 (match jobs with Some j -> j | None -> Parallel.default_jobs ())
  in
  {
    instrs;
    jobs;
    telemetry;
    store;
    context_cap = Option.map (max 1) context_cap;
    pool = lazy (Parallel.Pool.create ~jobs ());
    lock = Mutex.create ();
    contexts = Hashtbl.create 32;
    ctx_stamps = Hashtbl.create 32;
    ctx_clock = 0;
    ctx_evictions = 0;
    results = Hashtbl.create 256;
    probes = Hashtbl.create 256;
  }

let instrs t = t.instrs
let jobs t = t.jobs
let telemetry_window t = t.telemetry
let store t = t.store
let pool t = Lazy.force t.pool

let resident_contexts t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.contexts in
  Mutex.unlock t.lock;
  n

let context_evictions t =
  Mutex.lock t.lock;
  let n = t.ctx_evictions in
  Mutex.unlock t.lock;
  n

(* The memoization key depends on the *actual* machine configuration,
   not on a caller-supplied label: Config.t is a pure data record, so a
   digest of its marshalled bytes is a canonical fingerprint.  Callers
   passing a custom [?config] without a [?config_name] used to collide
   with the default "table_i" entry and read back stale stats; two
   different labels for structurally equal configs also no longer run
   the simulation twice. *)
let config_fingerprint (config : Pipeline.Config.t) =
  Digest.to_hex (Digest.string (Marshal.to_string config []))

let default_fingerprint = config_fingerprint Pipeline.Config.table_i

let result_key (profile : Workload.Profile.t) scheme fingerprint =
  Printf.sprintf "%s/%s/%s" profile.name (Critics.Scheme.name scheme)
    fingerprint

(* -------- bounded-LRU resident contexts (all under [t.lock]) ------- *)

let touch_locked t name =
  t.ctx_clock <- t.ctx_clock + 1;
  Hashtbl.replace t.ctx_stamps name t.ctx_clock

(* Evict least-recently-touched contexts until at most [cap] remain.
   Only the resident table shrinks: callers holding a context keep it
   alive, and with a store attached a later request reloads the evicted
   context from disk instead of re-deriving it — which is what keeps
   peak heap flat across a many-app sweep. *)
let rec evict_locked t cap =
  if Hashtbl.length t.contexts > cap then begin
    let victim =
      Hashtbl.fold
        (fun name _ acc ->
          let stamp =
            match Hashtbl.find_opt t.ctx_stamps name with
            | Some s -> s
            | None -> 0
          in
          match acc with
          | Some (_, s) when s <= stamp -> acc
          | _ -> Some (name, stamp))
        t.contexts None
    in
    match victim with
    | None -> ()
    | Some (name, _) ->
      Hashtbl.remove t.contexts name;
      Hashtbl.remove t.ctx_stamps name;
      t.ctx_evictions <- t.ctx_evictions + 1;
      evict_locked t cap
  end

let enforce_cap_locked t =
  match t.context_cap with None -> () | Some cap -> evict_locked t cap

let context t (profile : Workload.Profile.t) =
  Mutex.lock t.lock;
  let cached = Hashtbl.find_opt t.contexts profile.name in
  (match cached with Some _ -> touch_locked t profile.name | None -> ());
  Mutex.unlock t.lock;
  match cached with
  | Some ctx -> ctx
  | None ->
    let ctx = Critics.Run.prepare ?store:t.store ~instrs:t.instrs profile in
    Mutex.lock t.lock;
    (* Another domain may have raced us here; keep the first insert so
       every caller shares one context (and its trace cache). *)
    let ctx =
      match Hashtbl.find_opt t.contexts profile.name with
      | Some existing ->
        touch_locked t profile.name;
        existing
      | None ->
        Hashtbl.replace t.contexts profile.name ctx;
        touch_locked t profile.name;
        enforce_cap_locked t;
        ctx
    in
    Mutex.unlock t.lock;
    ctx

(* The single simulation entry point every memoized path funnels
   through.  With telemetry enabled it attaches a fresh probe and — only
   if the run completes — stores it under the same memo key as the
   stats, first insert winning.  Every job is deterministic, so a lost
   race stores an identical probe; failed runs (fault injection, fuel)
   leave neither stats nor probe behind. *)
let simulate t ?config ?fuel ~key ctx scheme =
  match t.telemetry with
  | None -> (
    match (t.store, fuel) with
    | None, _ | _, Some _ ->
      (* No store, or a fuel budget: run live.  A cached entry proves
         some unbounded run completed — returning it under a small fuel
         budget would mask the abort the caller asked for (the
         supervised stall faults depend on that abort). *)
      Critics.Run.stats ?config ?fuel ctx scheme
    | Some st, None -> (
      (* Store-backed layer under the in-memory memo: a completed
         simulation is a deterministic function of the prepared context
         (ckey), the scheme and the machine configuration, so warm runs
         deserialize the stats instead of simulating. *)
      let fp =
        match config with
        | None -> default_fingerprint
        | Some c -> config_fingerprint c
      in
      let k =
        Store.key ~kind:"stats"
          [ ctx.Critics.Run.ckey; Critics.Scheme.name scheme; fp ]
      in
      let run_and_add () =
        let s = Critics.Run.stats ?config ctx scheme in
        Store.add st k (Marshal.to_string s []);
        s
      in
      match Store.find st k with
      | None -> run_and_add ()
      | Some bytes -> (
        match (Marshal.from_string bytes 0 : Pipeline.Stats.t) with
        | s -> s
        | exception _ -> run_and_add ())))
  | Some window ->
    let probe = Telemetry.Probe.create ~window () in
    let st = Critics.Run.stats ?config ?fuel ~probe ctx scheme in
    Mutex.lock t.lock;
    if not (Hashtbl.mem t.probes key) then Hashtbl.replace t.probes key probe;
    Mutex.unlock t.lock;
    st

let stats t ?config_name ?config (profile : Workload.Profile.t) scheme =
  ignore config_name;
  let fingerprint =
    match config with
    | None -> default_fingerprint
    | Some c -> config_fingerprint c
  in
  let key = result_key profile scheme fingerprint in
  Mutex.lock t.lock;
  let cached = Hashtbl.find_opt t.results key in
  Mutex.unlock t.lock;
  match cached with
  | Some st -> st
  | None ->
    let ctx = context t profile in
    let st = simulate t ?config ~key ctx scheme in
    Mutex.lock t.lock;
    Hashtbl.replace t.results key st;
    Mutex.unlock t.lock;
    st

let probe_for t ?config (profile : Workload.Profile.t) scheme =
  let fingerprint =
    match config with
    | None -> default_fingerprint
    | Some c -> config_fingerprint c
  in
  let key = result_key profile scheme fingerprint in
  Mutex.lock t.lock;
  let p = Hashtbl.find_opt t.probes key in
  Mutex.unlock t.lock;
  p

let telemetry_probes t =
  Mutex.lock t.lock;
  let l = Hashtbl.fold (fun k p acc -> (k, p) :: acc) t.probes [] in
  Mutex.unlock t.lock;
  List.sort (fun (a, _) (b, _) -> compare a b) l

let telemetry_registry_for t jobs =
  let keys =
    List.filter_map
      (fun j ->
        Option.map
          (fun scheme ->
            result_key j.job_profile scheme (config_fingerprint j.job_config))
          j.job_scheme)
      jobs
    |> List.sort_uniq compare
  in
  let into = Telemetry.Registry.create () in
  List.iter
    (fun key ->
      Mutex.lock t.lock;
      let p = Hashtbl.find_opt t.probes key in
      Mutex.unlock t.lock;
      match p with
      | Some p ->
        Telemetry.Registry.merge_into ~into (Telemetry.Probe.registry p)
      | None -> ())
    keys;
  into

(* Fetch-bandwidth aggregate over a job set's memoized results: total
   instruction bytes delivered and total simulated cycles, summed over
   the distinct (app, scheme, config) simulations the jobs name.  Jobs
   not yet simulated contribute nothing. *)
let fetch_totals_for t jobs =
  let keys =
    List.filter_map
      (fun j ->
        Option.map
          (fun scheme ->
            result_key j.job_profile scheme (config_fingerprint j.job_config))
          j.job_scheme)
      jobs
    |> List.sort_uniq compare
  in
  List.fold_left
    (fun (bytes, cycles) key ->
      Mutex.lock t.lock;
      let st = Hashtbl.find_opt t.results key in
      Mutex.unlock t.lock;
      match st with
      | Some (s : Pipeline.Stats.t) ->
        (bytes + s.fetch_bytes, cycles + s.cycles)
      | None -> (bytes, cycles))
    (0, 0) keys

let cache_registry t =
  let reg = Telemetry.Registry.create () in
  (match t.store with Some st -> Store.publish st reg | None -> ());
  Telemetry.Registry.add
    (Telemetry.Registry.counter reg "harness/context_evict")
    (context_evictions t);
  (* Trace-pack record/replay counters, summed over resident contexts.
     (Contexts evicted from the LRU take their counters with them; the
     store's own hit/miss counters above remain cumulative.) *)
  let packs =
    Mutex.lock t.lock;
    let l = Hashtbl.fold (fun _ ctx acc -> ctx :: acc) t.contexts [] in
    Mutex.unlock t.lock;
    List.map Critics.Run.pack_stats l
  in
  let sum f = List.fold_left (fun a p -> a + f p) 0 packs in
  Telemetry.Registry.add
    (Telemetry.Registry.counter reg "trace_pack/replays")
    (sum (fun (p : Critics.Run.pack_stats) -> p.replays));
  Telemetry.Registry.add
    (Telemetry.Registry.counter reg "trace_pack/records")
    (sum (fun (p : Critics.Run.pack_stats) -> p.records));
  Telemetry.Registry.add
    (Telemetry.Registry.counter reg "trace_pack/corrupt")
    (sum (fun (p : Critics.Run.pack_stats) -> p.corrupt));
  Telemetry.Registry.add
    (Telemetry.Registry.counter reg "trace_pack/bytes")
    (sum (fun (p : Critics.Run.pack_stats) -> p.bytes));
  reg

let telemetry_registry t =
  let into = Telemetry.Registry.create () in
  (* Sorted memo-key order: the aggregate is independent of the pool's
     completion order by construction (and merge is order-insensitive
     anyway — the qcheck suite checks both). *)
  List.iter
    (fun (_, p) ->
      Telemetry.Registry.merge_into ~into (Telemetry.Probe.registry p))
    (telemetry_probes t);
  into

let speedup t ?config_name ?config profile scheme =
  let base = stats t profile Critics.Scheme.Baseline in
  Critics.Run.speedup ~base (stats t ?config_name ?config profile scheme)

(* ------------------------------ batches --------------------------- *)

let job ?config profile scheme =
  {
    job_profile = profile;
    job_scheme = Some scheme;
    job_config = (match config with Some c -> c | None -> Pipeline.Config.table_i);
  }

let context_job profile =
  {
    job_profile = profile;
    job_scheme = None;
    job_config = Pipeline.Config.table_i;
  }

let run_batch t jobs =
  let module SSet = Set.Make (String) in
  (* Phase 1: prepare every missing context, one parallel task per
     application (chunk 1: preparation cost is uneven across apps). *)
  let known =
    Mutex.lock t.lock;
    let k =
      Hashtbl.fold (fun name _ acc -> SSet.add name acc) t.contexts SSet.empty
    in
    Mutex.unlock t.lock;
    k
  in
  let missing_profiles =
    List.sort_uniq
      (fun (a : Workload.Profile.t) b -> compare a.name b.name)
      (List.filter
         (fun j -> not (SSet.mem j.job_profile.name known))
         jobs
      |> List.map (fun j -> j.job_profile))
  in
  let prepared =
    Parallel.Pool.map_list ~chunk:1 (pool t)
      (fun (p : Workload.Profile.t) ->
        (p.name, Critics.Run.prepare ?store:t.store ~instrs:t.instrs p))
      missing_profiles
  in
  Mutex.lock t.lock;
  List.iter
    (fun (name, ctx) ->
      if not (Hashtbl.mem t.contexts name) then begin
        Hashtbl.replace t.contexts name ctx;
        touch_locked t name
      end)
    prepared;
  enforce_cap_locked t;
  Mutex.unlock t.lock;
  (* Phase 2: evaluate every missing (app, scheme, config) simulation.
     Jobs are grouped by (app, scheme) so consecutive jobs in a chunk
     share the per-context transformed-trace cache. *)
  let have =
    Mutex.lock t.lock;
    let k =
      Hashtbl.fold (fun key _ acc -> SSet.add key acc) t.results SSet.empty
    in
    Mutex.unlock t.lock;
    k
  in
  let keyed =
    List.filter_map
      (fun j ->
        match j.job_scheme with
        | None -> None
        | Some scheme ->
          let key =
            result_key j.job_profile scheme (config_fingerprint j.job_config)
          in
          if SSet.mem key have then None else Some (key, j, scheme))
      jobs
  in
  let dedup =
    List.sort_uniq (fun (a, _, _) (b, _, _) -> compare a b) keyed
  in
  let computed =
    Parallel.Pool.map_list ~chunk:1 (pool t)
      (fun (key, j, scheme) ->
        let ctx = context t j.job_profile in
        (key, simulate t ~config:j.job_config ~key ctx scheme))
      dedup
  in
  Mutex.lock t.lock;
  List.iter
    (fun (key, st) ->
      if not (Hashtbl.mem t.results key) then Hashtbl.replace t.results key st)
    computed;
  Mutex.unlock t.lock

(* ------------------------- supervised batches --------------------- *)

type policy = {
  retries : int;
  backoff_ms : float;
  backoff_max_ms : float;
  backoff_seed : int;
  fuel : int option;
  wall_deadline_s : float option;
  quarantine_after : int;
  stall_fuel : int;
}

let default_policy =
  {
    retries = 2;
    backoff_ms = 0.0;
    backoff_max_ms = 250.0;
    backoff_seed = 0;
    fuel = None;
    wall_deadline_s = None;
    quarantine_after = 3;
    stall_fuel = 64;
  }

type outcome =
  | Completed
  | Failed of Util.Err.t
  | Quarantined of Util.Err.t
  | Skipped of Util.Err.t

type job_report = {
  report_app : string;
  report_scheme : string option;
  report_attempts : int;
  report_outcome : outcome;
}

type batch_report = {
  completed : int;
  failures : job_report list;
  reports : job_report list;
  rounds : int;
}

let job_app j = j.job_profile.name
let job_scheme_name j = Option.map Critics.Scheme.name j.job_scheme

(* One attempt of one job, with the planned fault (if any) applied
   first.  Failures must leave no trace: nothing is written to the memo
   tables unless the simulation ran to completion. *)
let supervised_exec t (policy : policy) faults j ~attempt =
  let app = job_app j in
  (match Workload.Fault.action_for faults ~app with
  | Some (Workload.Fault.Raise_transient n) when attempt <= n ->
    Util.Err.failf Transient "injected transient fault (attempt %d of %d)"
      attempt n
  | Some Workload.Fault.Raise_fatal -> Util.Err.fail Fatal "injected fatal fault"
  | Some Workload.Fault.Corrupt_db ->
    (* Round-trip this app's database through a truncated serialization,
       as if the loader had been handed the remains of a crashed
       non-atomic writer.  The parse failure (Corrupt_input, naming the
       pseudo-path) is the job's failure. *)
    let ctx = context t j.job_profile in
    let text = Profiler.Db_io.to_string ctx.db in
    ignore
      (Profiler.Db_io.of_string
         ~path:(app ^ ".db[injected]")
         (Workload.Fault.truncate_string text))
  | Some (Workload.Fault.Raise_transient _) (* past its failing attempts *)
  | Some Workload.Fault.Stall | None ->
    ());
  let fuel =
    match Workload.Fault.action_for faults ~app with
    | Some Workload.Fault.Stall ->
      (* A stalled job is modeled as one that would run forever: give it
         a budget far below any real simulation so the cycle-loop
         watchdog aborts it deterministically. *)
      Some policy.stall_fuel
    | _ -> policy.fuel
  in
  match j.job_scheme with
  | None -> ignore (context t j.job_profile)
  | Some scheme ->
    let key = result_key j.job_profile scheme (config_fingerprint j.job_config) in
    let cached =
      Mutex.lock t.lock;
      let c = Hashtbl.find_opt t.results key in
      Mutex.unlock t.lock;
      c
    in
    (match cached with
    | Some _ -> ()
    | None ->
      let ctx = context t j.job_profile in
      let st = simulate t ~config:j.job_config ?fuel ~key ctx scheme in
      Mutex.lock t.lock;
      if not (Hashtbl.mem t.results key) then Hashtbl.replace t.results key st;
      Mutex.unlock t.lock)

(* Bounded deterministic backoff before retry round [round]: base
   delay doubled per round, seeded jitter in [0.5, 1.5), capped.  No
   ambient randomness — the same policy waits the same time. *)
let backoff_delay_s (policy : policy) ~round =
  if policy.backoff_ms <= 0.0 then 0.0
  else begin
    let rng = Util.Rng.create (policy.backoff_seed + (round * 0x9E37)) in
    let base = policy.backoff_ms *. (2.0 ** float_of_int (round - 1)) in
    let jitter = 0.5 +. Util.Rng.float rng 1.0 in
    Float.min policy.backoff_max_ms (base *. jitter) /. 1000.0
  end

let run_batch_supervised ?(policy = default_policy)
    ?(faults = Workload.Fault.none) t jobs =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let outcome : outcome option array = Array.make n None in
  let attempts = Array.make n 0 in
  let app_failures : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let failure_count app =
    Option.value ~default:0 (Hashtbl.find_opt app_failures app)
  in
  let quarantined app = failure_count app >= policy.quarantine_after in
  let t_start = Unix.gettimeofday () in
  let deadline_passed () =
    match policy.wall_deadline_s with
    | None -> false
    | Some d -> Unix.gettimeofday () -. t_start >= d
  in
  let rounds = ref 0 in
  let finished = ref false in
  while not !finished do
    (* Dispatch set for this round: every undecided job whose app is not
       quarantined.  The wall-clock deadline is checked here — at batch
       granularity — so a round in flight always drains. *)
    let quarantine_now i j =
      let app = job_app j in
      let err =
        Util.Err.make ~app ?scheme:(job_scheme_name j)
          ~attempts:attempts.(i) Cancelled
          (Printf.sprintf "app quarantined after %d failures"
             (failure_count app))
      in
      outcome.(i) <- Some (Quarantined err)
    in
    if deadline_passed () then begin
      Array.iteri
        (fun i j ->
          if outcome.(i) = None then
            outcome.(i) <-
              Some
                (Skipped
                   (Util.Err.make ~app:(job_app j)
                      ?scheme:(job_scheme_name j) ~attempts:attempts.(i)
                      Cancelled "batch wall-clock deadline exceeded")))
        jobs;
      finished := true
    end
    else begin
      Array.iteri
        (fun i j ->
          if outcome.(i) = None && quarantined (job_app j) then
            quarantine_now i j)
        jobs;
      let pending = ref [] in
      for i = n - 1 downto 0 do
        if outcome.(i) = None then pending := i :: !pending
      done;
      match !pending with
      | [] -> finished := true
      | pending ->
        incr rounds;
        if !rounds > 1 then begin
          let d = backoff_delay_s policy ~round:(!rounds - 1) in
          if d > 0.0 then Unix.sleepf d
        end;
        List.iter (fun i -> attempts.(i) <- attempts.(i) + 1) pending;
        let results =
          Parallel.Pool.run_supervised (pool t)
            (List.map
               (fun i () ->
                 supervised_exec t policy faults jobs.(i)
                   ~attempt:attempts.(i))
               pending)
        in
        (* Results are processed in submission order, so failure counts,
           quarantine and retry decisions are identical at every
           parallelism width. *)
        List.iter2
          (fun i result ->
            match result with
            | Ok () -> outcome.(i) <- Some Completed
            | Error (exn, bt) ->
              let j = jobs.(i) in
              let app = job_app j in
              let err =
                Util.Err.with_context ~app ?scheme:(job_scheme_name j)
                  ~attempts:attempts.(i)
                  (Util.Err.of_exn ~backtrace:bt exn)
              in
              Hashtbl.replace app_failures app (failure_count app + 1);
              if quarantined app then
                outcome.(i) <-
                  Some
                    (Quarantined
                       {
                         err with
                         msg =
                           Printf.sprintf "%s (app quarantined after %d \
                                           failures)"
                             err.msg (failure_count app);
                       })
              else if
                Util.Err.retryable err && attempts.(i) <= policy.retries
              then () (* stays undecided: retried next round *)
              else outcome.(i) <- Some (Failed err))
          pending results
    end
  done;
  let reports =
    Array.to_list
      (Array.mapi
         (fun i j ->
           {
             report_app = job_app j;
             report_scheme = job_scheme_name j;
             report_attempts = attempts.(i);
             report_outcome =
               (match outcome.(i) with
               | Some o -> o
               | None -> assert false (* loop exits only when decided *));
           })
         jobs)
  in
  let failures =
    List.filter (fun r -> r.report_outcome <> Completed) reports
  in
  {
    completed = List.length reports - List.length failures;
    failures;
    reports;
    rounds = !rounds;
  }

let outcome_name = function
  | Completed -> "completed"
  | Failed _ -> "failed"
  | Quarantined _ -> "quarantined"
  | Skipped _ -> "skipped"

let outcome_err = function
  | Completed -> None
  | Failed e | Quarantined e | Skipped e -> Some e

let render_report (r : batch_report) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%d/%d jobs completed in %d round(s)\n" r.completed
       (List.length r.reports) r.rounds);
  List.iter
    (fun jr ->
      Buffer.add_string b
        (Printf.sprintf "  %-12s %-14s %-12s attempts=%d%s\n" jr.report_app
           (match jr.report_scheme with Some s -> s | None -> "(context)")
           (outcome_name jr.report_outcome)
           jr.report_attempts
           (match outcome_err jr.report_outcome with
           | Some e -> " " ^ Util.Err.to_string e
           | None -> "")))
    r.failures;
  Buffer.contents b

let mean = Util.Stats.mean

let suites =
  [
    ("Mobile", Workload.Apps.mobile);
    ("SPEC.int", Workload.Apps.spec_int);
    ("SPEC.float", Workload.Apps.spec_float);
  ]
