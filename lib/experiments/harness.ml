type job = {
  job_profile : Workload.Profile.t;
  job_scheme : Critics.Scheme.t option; (* None: prepare the context only *)
  job_config : Pipeline.Config.t;
}

type t = {
  instrs : int;
  jobs : int;
  pool : Parallel.Pool.t Lazy.t;
  lock : Mutex.t;
  contexts : (string, Critics.Run.app_context) Hashtbl.t;
  results : (string, Pipeline.Stats.t) Hashtbl.t;
}

let create ?(instrs = Critics.Run.default_instrs) ?jobs () =
  let jobs =
    max 1 (match jobs with Some j -> j | None -> Parallel.default_jobs ())
  in
  {
    instrs;
    jobs;
    pool = lazy (Parallel.Pool.create ~jobs ());
    lock = Mutex.create ();
    contexts = Hashtbl.create 32;
    results = Hashtbl.create 256;
  }

let instrs t = t.instrs
let jobs t = t.jobs
let pool t = Lazy.force t.pool

(* The memoization key depends on the *actual* machine configuration,
   not on a caller-supplied label: Config.t is a pure data record, so a
   digest of its marshalled bytes is a canonical fingerprint.  Callers
   passing a custom [?config] without a [?config_name] used to collide
   with the default "table_i" entry and read back stale stats; two
   different labels for structurally equal configs also no longer run
   the simulation twice. *)
let config_fingerprint (config : Pipeline.Config.t) =
  Digest.to_hex (Digest.string (Marshal.to_string config []))

let default_fingerprint = config_fingerprint Pipeline.Config.table_i

let result_key (profile : Workload.Profile.t) scheme fingerprint =
  Printf.sprintf "%s/%s/%s" profile.name (Critics.Scheme.name scheme)
    fingerprint

let context t (profile : Workload.Profile.t) =
  Mutex.lock t.lock;
  let cached = Hashtbl.find_opt t.contexts profile.name in
  Mutex.unlock t.lock;
  match cached with
  | Some ctx -> ctx
  | None ->
    let ctx = Critics.Run.prepare ~instrs:t.instrs profile in
    Mutex.lock t.lock;
    (* Another domain may have raced us here; keep the first insert so
       every caller shares one context (and its trace cache). *)
    let ctx =
      match Hashtbl.find_opt t.contexts profile.name with
      | Some existing -> existing
      | None ->
        Hashtbl.replace t.contexts profile.name ctx;
        ctx
    in
    Mutex.unlock t.lock;
    ctx

let stats t ?config_name ?config (profile : Workload.Profile.t) scheme =
  ignore config_name;
  let fingerprint =
    match config with
    | None -> default_fingerprint
    | Some c -> config_fingerprint c
  in
  let key = result_key profile scheme fingerprint in
  Mutex.lock t.lock;
  let cached = Hashtbl.find_opt t.results key in
  Mutex.unlock t.lock;
  match cached with
  | Some st -> st
  | None ->
    let ctx = context t profile in
    let st = Critics.Run.stats ?config ctx scheme in
    Mutex.lock t.lock;
    Hashtbl.replace t.results key st;
    Mutex.unlock t.lock;
    st

let speedup t ?config_name ?config profile scheme =
  let base = stats t profile Critics.Scheme.Baseline in
  Critics.Run.speedup ~base (stats t ?config_name ?config profile scheme)

(* ------------------------------ batches --------------------------- *)

let job ?config profile scheme =
  {
    job_profile = profile;
    job_scheme = Some scheme;
    job_config = (match config with Some c -> c | None -> Pipeline.Config.table_i);
  }

let context_job profile =
  {
    job_profile = profile;
    job_scheme = None;
    job_config = Pipeline.Config.table_i;
  }

let run_batch t jobs =
  let module SSet = Set.Make (String) in
  (* Phase 1: prepare every missing context, one parallel task per
     application (chunk 1: preparation cost is uneven across apps). *)
  let known =
    Mutex.lock t.lock;
    let k =
      Hashtbl.fold (fun name _ acc -> SSet.add name acc) t.contexts SSet.empty
    in
    Mutex.unlock t.lock;
    k
  in
  let missing_profiles =
    List.sort_uniq
      (fun (a : Workload.Profile.t) b -> compare a.name b.name)
      (List.filter
         (fun j -> not (SSet.mem j.job_profile.name known))
         jobs
      |> List.map (fun j -> j.job_profile))
  in
  let prepared =
    Parallel.Pool.map_list ~chunk:1 (pool t)
      (fun (p : Workload.Profile.t) ->
        (p.name, Critics.Run.prepare ~instrs:t.instrs p))
      missing_profiles
  in
  Mutex.lock t.lock;
  List.iter
    (fun (name, ctx) ->
      if not (Hashtbl.mem t.contexts name) then
        Hashtbl.replace t.contexts name ctx)
    prepared;
  Mutex.unlock t.lock;
  (* Phase 2: evaluate every missing (app, scheme, config) simulation.
     Jobs are grouped by (app, scheme) so consecutive jobs in a chunk
     share the per-context transformed-trace cache. *)
  let have =
    Mutex.lock t.lock;
    let k =
      Hashtbl.fold (fun key _ acc -> SSet.add key acc) t.results SSet.empty
    in
    Mutex.unlock t.lock;
    k
  in
  let keyed =
    List.filter_map
      (fun j ->
        match j.job_scheme with
        | None -> None
        | Some scheme ->
          let key =
            result_key j.job_profile scheme (config_fingerprint j.job_config)
          in
          if SSet.mem key have then None else Some (key, j, scheme))
      jobs
  in
  let dedup =
    List.sort_uniq (fun (a, _, _) (b, _, _) -> compare a b) keyed
  in
  let computed =
    Parallel.Pool.map_list ~chunk:1 (pool t)
      (fun (key, j, scheme) ->
        let ctx = context t j.job_profile in
        (key, Critics.Run.stats ~config:j.job_config ctx scheme))
      dedup
  in
  Mutex.lock t.lock;
  List.iter
    (fun (key, st) ->
      if not (Hashtbl.mem t.results key) then Hashtbl.replace t.results key st)
    computed;
  Mutex.unlock t.lock

let mean = Util.Stats.mean

let suites =
  [
    ("Mobile", Workload.Apps.mobile);
    ("SPEC.int", Workload.Apps.spec_int);
    ("SPEC.float", Workload.Apps.spec_float);
  ]
