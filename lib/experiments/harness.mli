(** Shared experiment harness: a parallel batch engine.

    Prepares each application once (program, path, trace, CritIC
    database) and memoizes simulation results keyed by
    (app, scheme, machine-configuration fingerprint), so the figure
    modules can freely share runs.  All experiments in this library draw
    from one harness instance; [dune exec bench/main.exe] builds a
    single harness and regenerates every table and figure from it.

    Independent (app × scheme × config) jobs can be evaluated across a
    pool of OCaml 5 domains: enqueue them with {!run_batch} and the
    memoized lookups ({!stats}, {!speedup}, {!context}) become cache
    hits.  Results are bit-identical to a sequential run — every job is
    deterministic (per-context seeded RNG, no shared mutable simulation
    state) and the memo tables are mutex-protected — which the test
    suite asserts. *)

type t

val create : ?instrs:int -> ?jobs:int -> unit -> t
(** [instrs] is the work-instruction budget per application run
    (default {!Critics.Run.default_instrs}).  [jobs] is the parallelism
    width for {!run_batch} (default {!Parallel.default_jobs}: the
    [CRITICS_JOBS] environment variable, else
    [Domain.recommended_domain_count ()]); [jobs = 1] never spawns a
    domain and evaluates everything sequentially in the caller. *)

val instrs : t -> int

val jobs : t -> int
(** Parallelism width this harness was created with. *)

val pool : t -> Parallel.Pool.t
(** The harness's domain pool, for experiment modules that parallelize
    custom per-app computations beyond the memoized simulations.  Do not
    call pool operations from inside tasks already running on it. *)

val context : t -> Workload.Profile.t -> Critics.Run.app_context
(** Cached per-application context (thread-safe). *)

val stats :
  t ->
  ?config_name:string ->
  ?config:Pipeline.Config.t ->
  Workload.Profile.t ->
  Critics.Scheme.t ->
  Pipeline.Stats.t
(** Cached simulation (thread-safe).  The memo key is derived from the
    *actual* [config] value (a digest of the configuration record), so
    distinct configurations never collide and structurally equal ones
    share one entry; [config_name] is accepted for backward
    compatibility and used only as a human-readable label. *)

val speedup :
  t ->
  ?config_name:string ->
  ?config:Pipeline.Config.t ->
  Workload.Profile.t ->
  Critics.Scheme.t ->
  float
(** Speedup of (scheme, config) over (Baseline, default config) for the
    same application and work. *)

(** {2 Batch evaluation} *)

type job
(** One unit of work: prepare an application and, unless it is a
    context-only job, simulate one (scheme, config) on it. *)

val job :
  ?config:Pipeline.Config.t -> Workload.Profile.t -> Critics.Scheme.t -> job
(** A simulation job ([config] defaults to Table I). *)

val context_job : Workload.Profile.t -> job
(** Prepare the application context only (program, trace, CritIC
    database) — for experiments that consume contexts directly. *)

val run_batch : t -> job list -> unit
(** Evaluate every not-yet-memoized job across the harness's domain
    pool and store the results: first all missing application contexts
    in parallel, then all missing simulations in parallel.  Duplicate
    and already-cached jobs are skipped.  Subsequent {!stats} /
    {!context} calls are cache hits. *)

val mean : float list -> float

val suites : (string * Workload.Profile.t list) list
(** [("Mobile", ...); ("SPEC.int", ...); ("SPEC.float", ...)]. *)
