(** Shared experiment harness: a parallel batch engine.

    Prepares each application once (program, path, trace, CritIC
    database) and memoizes simulation results keyed by
    (app, scheme, machine-configuration fingerprint), so the figure
    modules can freely share runs.  All experiments in this library draw
    from one harness instance; [dune exec bench/main.exe] builds a
    single harness and regenerates every table and figure from it.

    Independent (app × scheme × config) jobs can be evaluated across a
    pool of OCaml 5 domains: enqueue them with {!run_batch} and the
    memoized lookups ({!stats}, {!speedup}, {!context}) become cache
    hits.  Results are bit-identical to a sequential run — every job is
    deterministic (per-context seeded RNG, no shared mutable simulation
    state) and the memo tables are mutex-protected — which the test
    suite asserts. *)

type t

val create :
  ?instrs:int ->
  ?jobs:int ->
  ?telemetry:int ->
  ?store:Store.t ->
  ?context_cap:int ->
  unit ->
  t
(** [instrs] is the work-instruction budget per application run
    (default {!Critics.Run.default_instrs}).  [jobs] is the parallelism
    width for {!run_batch} (default {!Parallel.default_jobs}: the
    [CRITICS_JOBS] environment variable, else
    [Domain.recommended_domain_count ()]); [jobs = 1] never spawns a
    domain and evaluates everything sequentially in the caller.
    [telemetry] enables cycle-attribution probes on every simulation
    the harness runs, with the given window size in cycles; the probes
    are memoized alongside the stats ({!probe_for}) and their registries
    merge deterministically ({!telemetry_registry}).  Simulation results
    are bit-identical with telemetry on or off.

    [store] attaches a prepared-artifact cache ({!Store}): context
    preparation, compiler transforms and completed default-fuel
    simulations are persisted, so a warm harness loads them instead of
    recomputing.  Telemetry-enabled simulations always run live (probes
    observe the run itself).  [context_cap] bounds the number of
    resident application contexts (clamped to ≥ 1); the least recently
    used is evicted past the cap and transparently re-prepared — from
    the store when one is attached — on the next request, keeping peak
    heap flat across sweeps of many applications. *)

val instrs : t -> int

val jobs : t -> int
(** Parallelism width this harness was created with. *)

val telemetry_window : t -> int option
(** The probe window size, or [None] when telemetry is disabled. *)

val store : t -> Store.t option
(** The attached prepared-artifact store, if any. *)

val resident_contexts : t -> int
(** Application contexts currently held in memory. *)

val context_evictions : t -> int
(** Contexts evicted so far by the [context_cap] LRU bound. *)

val cache_registry : t -> Telemetry.Registry.t
(** Cache-effectiveness counters as a telemetry registry: the attached
    store's [store/hit], [store/miss], [store/write], [store/corrupt]
    and [store/bytes] series (when a store is attached), the trace-pack
    record/replay counters summed over resident contexts
    ([trace_pack/replays], [trace_pack/records], [trace_pack/corrupt],
    [trace_pack/bytes] — see {!Critics.Run.pack_stats}), plus
    [harness/context_evict]. *)

val pool : t -> Parallel.Pool.t
(** The harness's domain pool, for experiment modules that parallelize
    custom per-app computations beyond the memoized simulations.  Do not
    call pool operations from inside tasks already running on it. *)

val context : t -> Workload.Profile.t -> Critics.Run.app_context
(** Cached per-application context (thread-safe). *)

val stats :
  t ->
  ?config_name:string ->
  ?config:Pipeline.Config.t ->
  Workload.Profile.t ->
  Critics.Scheme.t ->
  Pipeline.Stats.t
(** Cached simulation (thread-safe).  The memo key is derived from the
    *actual* [config] value (a digest of the configuration record), so
    distinct configurations never collide and structurally equal ones
    share one entry; [config_name] is accepted for backward
    compatibility and used only as a human-readable label. *)

val speedup :
  t ->
  ?config_name:string ->
  ?config:Pipeline.Config.t ->
  Workload.Profile.t ->
  Critics.Scheme.t ->
  float
(** Speedup of (scheme, config) over (Baseline, default config) for the
    same application and work. *)

(** {2 Telemetry} *)

val probe_for :
  t ->
  ?config:Pipeline.Config.t ->
  Workload.Profile.t ->
  Critics.Scheme.t ->
  Telemetry.Probe.t option
(** The probe memoized for (app, scheme, config), if the harness has
    telemetry enabled and that simulation has run.  Like the stats memo,
    the first completed run wins; failed runs store nothing. *)

val telemetry_probes : t -> (string * Telemetry.Probe.t) list
(** Every memoized probe with its memo key, sorted by key — a
    deterministic enumeration regardless of pool completion order. *)

val telemetry_registry : t -> Telemetry.Registry.t
(** All probe registries merged, in sorted-key order.  Because registry
    merge is commutative and associative, the aggregate is identical at
    every [jobs] width and job submission order. *)

(** {2 Batch evaluation} *)

type job
(** One unit of work: prepare an application and, unless it is a
    context-only job, simulate one (scheme, config) on it. *)

val job :
  ?config:Pipeline.Config.t -> Workload.Profile.t -> Critics.Scheme.t -> job
(** A simulation job ([config] defaults to Table I). *)

val context_job : Workload.Profile.t -> job
(** Prepare the application context only (program, trace, CritIC
    database) — for experiments that consume contexts directly. *)

val run_batch : t -> job list -> unit
(** Evaluate every not-yet-memoized job across the harness's domain
    pool and store the results: first all missing application contexts
    in parallel, then all missing simulations in parallel.  Duplicate
    and already-cached jobs are skipped.  Subsequent {!stats} /
    {!context} calls are cache hits. *)

val telemetry_registry_for : t -> job list -> Telemetry.Registry.t
(** The probe registries of the given jobs' memo keys merged (duplicate
    keys counted once, sorted-key order) — how bench scopes histogram
    summaries to one artifact's job set. *)

val fetch_totals_for : t -> job list -> int * int
(** [(fetch_bytes, cycles)] summed over the distinct simulations the
    given jobs name (memoized results only) — the fetch-bandwidth
    aggregate bench embeds per artifact in BENCH_results.json. *)

(** {2 Supervised batch evaluation}

    {!run_batch} is all-or-nothing: one poisoned job aborts the whole
    sweep.  {!run_batch_supervised} instead contains every per-job
    failure — classified through {!Util.Err} with (app, scheme) context
    — retries transient ones with bounded deterministic backoff,
    quarantines repeat offenders, enforces a per-job simulation-fuel
    deadline and a batch wall-clock deadline, and reports exactly what
    happened to every job while the rest of the sweep completes.
    Successful results land in the same memo tables as {!run_batch}, so
    surviving artifacts are bit-identical to a fault-free run. *)

type policy = {
  retries : int;  (** extra attempts granted to [Transient] failures *)
  backoff_ms : float;
      (** base delay before retry round [r], doubled per round; [0.]
          disables waiting (the test default) *)
  backoff_max_ms : float;  (** backoff cap *)
  backoff_seed : int;  (** jitter seed — no ambient randomness *)
  fuel : int option;
      (** per-job simulated-cycle budget ({!Pipeline.Cpu.run_stream}'s
          cooperative watchdog); [None] = unlimited *)
  wall_deadline_s : float option;
      (** batch wall-clock deadline, checked between rounds; pending
          jobs are skipped as [Cancelled] once it passes *)
  quarantine_after : int;
      (** failed attempts (any job) an app may accumulate before its
          remaining jobs are quarantined *)
  stall_fuel : int;
      (** fuel budget substituted for jobs the fault plan stalls *)
}

val default_policy : policy
(** 2 retries, no backoff wait, no fuel or wall deadline, quarantine
    after 3 failures. *)

type outcome =
  | Completed
  | Failed of Util.Err.t  (** ran and gave up (after retries, if any) *)
  | Quarantined of Util.Err.t
      (** the app hit the quarantine threshold; this job was cut off *)
  | Skipped of Util.Err.t  (** never decided: batch deadline passed *)

type job_report = {
  report_app : string;
  report_scheme : string option;  (** [None] for context-only jobs *)
  report_attempts : int;
  report_outcome : outcome;
}

type batch_report = {
  completed : int;
  failures : job_report list;  (** non-[Completed] reports, input order *)
  reports : job_report list;  (** every job, input order *)
  rounds : int;  (** dispatch rounds executed (1 = no retries needed) *)
}

val run_batch_supervised :
  ?policy:policy -> ?faults:Workload.Fault.plan -> t -> job list -> batch_report
(** Evaluate a batch under supervision.  Jobs run across the harness's
    domain pool in rounds; round results are folded in submission
    order, so outcomes are identical at every [jobs] width.  [faults]
    (default {!Workload.Fault.none}) injects the plan's deterministic
    faults — used by the fault-injection test suite to prove
    containment end-to-end.  Failed jobs write nothing to the memo
    tables. *)

val outcome_name : outcome -> string
val outcome_err : outcome -> Util.Err.t option

val backoff_delay_s : policy -> round:int -> float
(** Delay (seconds) before retry round [round]: [backoff_ms] doubled
    per round with seeded jitter in [0.5, 1.5), capped at
    [backoff_max_ms].  Deterministic in the policy — exposed for the
    test suite. *)

val render_report : batch_report -> string
(** Human-readable summary: completion counts plus one line per
    non-completed job with its classified error. *)

val mean : float list -> float

val suites : (string * Workload.Profile.t list) list
(** [("Mobile", ...); ("SPEC.int", ...); ("SPEC.float", ...)]. *)
