(** Shared experiment harness.

    Prepares each application once (program, path, trace, CritIC
    database) and memoizes simulation results keyed by
    (app, scheme, machine configuration), so the figure modules can
    freely share runs.  All experiments in this library draw from one
    harness instance; [dune exec bench/main.exe] builds a single harness
    and regenerates every table and figure from it. *)

type t

val create : ?instrs:int -> unit -> t
(** [instrs] is the work-instruction budget per application run
    (default {!Critics.Run.default_instrs}). *)

val instrs : t -> int

val context : t -> Workload.Profile.t -> Critics.Run.app_context
(** Cached per-application context. *)

val stats :
  t ->
  ?config_name:string ->
  ?config:Pipeline.Config.t ->
  Workload.Profile.t ->
  Critics.Scheme.t ->
  Pipeline.Stats.t
(** Cached simulation.  [config_name] must uniquely identify [config]
    when a non-default configuration is passed (it is the memoization
    key). *)

val speedup :
  t ->
  ?config_name:string ->
  ?config:Pipeline.Config.t ->
  Workload.Profile.t ->
  Critics.Scheme.t ->
  float
(** Speedup of (scheme, config) over (Baseline, default config) for the
    same application and work. *)

val mean : float list -> float

val suites : (string * Workload.Profile.t list) list
(** [("Mobile", ...); ("SPEC.int", ...); ("SPEC.float", ...)]. *)
