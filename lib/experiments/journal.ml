(* Append-only batch journal (JSONL): one line per completed artifact.

   The journal is what makes a killed bench run resumable: each entry is
   appended and flushed the moment its artifact completes, so after a
   SIGKILL the journal names exactly the artifacts whose work is done.
   A line is self-contained JSON; a kill mid-append leaves at most one
   truncated final line, which [load] tolerates by skipping lines that
   do not parse (graceful degradation, never an abort). *)

type entry = {
  entry_id : string;
  wall_ms : float;
  minor_words : float;
  major_words : float;
  top_heap_words : int;
}

let to_line e =
  Printf.sprintf
    "{ \"id\": %S, \"wall_ms\": %.1f, \"minor_words\": %.0f, \
     \"major_words\": %.0f, \"top_heap_words\": %d }"
    e.entry_id e.wall_ms e.minor_words e.major_words e.top_heap_words

let of_line l =
  try
    Scanf.sscanf l
      " { \"id\": %S, \"wall_ms\": %f, \"minor_words\": %f, \
       \"major_words\": %f, \"top_heap_words\": %d }"
      (fun entry_id wall_ms minor_words major_words top_heap_words ->
        Some { entry_id; wall_ms; minor_words; major_words; top_heap_words })
  with Scanf.Scan_failure _ | End_of_file | Failure _ -> (
    (* Journals written before minor_words was recorded: accept the old
       shape so --resume across the version boundary still merges. *)
    try
      Scanf.sscanf l
        " { \"id\": %S, \"wall_ms\": %f, \"major_words\": %f, \
         \"top_heap_words\": %d }"
        (fun entry_id wall_ms major_words top_heap_words ->
          Some
            { entry_id; wall_ms; minor_words = 0.0; major_words;
              top_heap_words })
    with Scanf.Scan_failure _ | End_of_file | Failure _ -> None)

let append path e =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_line e);
      output_char oc '\n';
      flush oc)

let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | exception End_of_file -> List.rev acc
          | line ->
            go (match of_line line with Some e -> e :: acc | None -> acc)
        in
        go [])
  end

let completed_ids path =
  List.fold_left
    (fun acc (e : entry) ->
      if List.mem e.entry_id acc then acc else e.entry_id :: acc)
    [] (load path)
  |> List.rev

let reset path = if Sys.file_exists path then Sys.remove path
