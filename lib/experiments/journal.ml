(* Append-only batch journal (JSONL): one line per completed artifact.

   The journal is what makes a killed bench run resumable: each entry is
   appended and flushed the moment its artifact completes, so after a
   SIGKILL the journal names exactly the artifacts whose work is done.
   A line is self-contained JSON; a kill mid-append leaves at most one
   truncated final line, which [load] tolerates by skipping lines that
   do not parse (graceful degradation, never an abort). *)

type entry = {
  entry_id : string;
  wall_ms : float;
  minor_words : float;
  major_words : float;
  top_heap_words : int;
}

let to_line e =
  Printf.sprintf
    "{ \"id\": %S, \"wall_ms\": %.1f, \"minor_words\": %.0f, \
     \"major_words\": %.0f, \"top_heap_words\": %d }"
    e.entry_id e.wall_ms e.minor_words e.major_words e.top_heap_words

let of_line l =
  try
    Scanf.sscanf l
      " { \"id\": %S, \"wall_ms\": %f, \"minor_words\": %f, \
       \"major_words\": %f, \"top_heap_words\": %d }"
      (fun entry_id wall_ms minor_words major_words top_heap_words ->
        Some { entry_id; wall_ms; minor_words; major_words; top_heap_words })
  with Scanf.Scan_failure _ | End_of_file | Failure _ -> (
    (* Journals written before minor_words was recorded: accept the old
       shape so --resume across the version boundary still merges. *)
    try
      Scanf.sscanf l
        " { \"id\": %S, \"wall_ms\": %f, \"major_words\": %f, \
         \"top_heap_words\": %d }"
        (fun entry_id wall_ms major_words top_heap_words ->
          Some
            { entry_id; wall_ms; minor_words = 0.0; major_words;
              top_heap_words })
    with Scanf.Scan_failure _ | End_of_file | Failure _ -> None)

let append path e =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_line e);
      output_char oc '\n';
      flush oc)

let load_report path =
  if not (Sys.file_exists path) then ([], 0)
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc skipped =
          match input_line ic with
          | exception End_of_file -> (List.rev acc, skipped)
          | line -> (
            match of_line line with
            | Some e -> go (e :: acc) skipped
            | None ->
              (* Blank lines are editor noise, not data loss; anything
                 else is a torn append (crash mid-line) or corruption
                 and must be surfaced, not silently swallowed. *)
              if String.trim line = "" then go acc skipped
              else go acc (skipped + 1))
        in
        go [] 0)
  end

let load path =
  let entries, skipped = load_report path in
  if skipped > 0 then
    Printf.eprintf
      "[journal] %s: skipped %d unparseable line(s) — most likely a torn \
       final append from a crash; the named artifacts will be re-run\n%!"
      path skipped;
  entries

let completed_ids path =
  List.fold_left
    (fun acc (e : entry) ->
      if List.mem e.entry_id acc then acc else e.entry_id :: acc)
    [] (load path)
  |> List.rev

let reset path = if Sys.file_exists path then Sys.remove path
