(** Append-only batch journal (JSONL): one line per completed artifact.

    [bench/main.exe] appends an entry (with a flush) the moment an
    artifact finishes, so a run killed mid-batch leaves a journal naming
    exactly the completed work; [--resume] then skips those artifacts
    and merges their recorded measurements into the final
    [BENCH_results.json].  A kill mid-append leaves at most one
    truncated final line, which {!load} skips rather than aborting. *)

type entry = {
  entry_id : string;
  wall_ms : float;
  minor_words : float;
  major_words : float;
  top_heap_words : int;
}

val append : string -> entry -> unit
(** [append path e] appends one line to [path] (creating it if needed)
    and flushes before closing. *)

val load : string -> entry list
(** Entries in file order; a missing file is an empty journal, and
    unparseable lines (truncated tail after a kill) are skipped with a
    counted warning on stderr — a crash mid-append must degrade
    [--resume] gracefully, never poison it. *)

val load_report : string -> entry list * int
(** {!load} without the stderr warning, also returning the number of
    non-blank unparseable lines that were skipped. *)

val completed_ids : string -> string list
(** Distinct artifact ids present in the journal, first-seen order. *)

val reset : string -> unit
(** Delete the journal if present (start of a fresh, non-resumed run). *)

val to_line : entry -> string
val of_line : string -> entry option
