type row = {
  app : string;
  unique_sequences : int;
  static_sites : int;
  critic : float;
  macro : float;
}

type result = { rows : row list; mean_critic : float; mean_macro : float }

let run h =
  let mobile = List.assoc "Mobile" Harness.suites in
  let rows =
    List.map
      (fun (app : Workload.Profile.t) ->
        let db = (Harness.context h app).Critics.Run.db in
        let keys =
          List.map (fun (s : Profiler.Critic_db.site) -> s.key) db.sites
        in
        {
          app = app.name;
          unique_sequences = List.length (List.sort_uniq compare keys);
          static_sites = List.length db.sites;
          critic = Harness.speedup h app Critics.Scheme.Critic;
          macro = Harness.speedup h app Critics.Scheme.Macro_ideal;
        })
      mobile
  in
  {
    rows;
    mean_critic = Harness.mean (List.map (fun r -> r.critic) rows);
    mean_macro = Harness.mean (List.map (fun r -> r.macro) rows);
  }

let render r =
  let pct = Util.Stats.pct in
  let table =
    Util.Text_table.render
      ~header:
        [ "App"; "unique chain seqs"; "static sites"; "CritIC";
          "Macro ISA (bound)" ]
      (List.map
         (fun row ->
           [
             row.app;
             string_of_int row.unique_sequences;
             string_of_int row.static_sites;
             pct row.critic;
             pct row.macro;
           ])
         r.rows
      @ [ [ "MEAN"; "-"; "-"; pct r.mean_critic; pct r.mean_macro ] ])
  in
  Printf.sprintf
    "Extension: macro-instruction ISA extension vs CritIC\n%s\n\
     Every unique sequence would need its own macro encoding (or a\n\
     hardware table entry); the CDP/Thumb mechanism needs none and\n\
     captures %s of the unconstrained macro bound."
    table
    (if r.mean_macro <= 0.0 then "all"
     else Util.Stats.pct (r.mean_critic /. r.mean_macro))
