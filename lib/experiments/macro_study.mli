(** Extension study — the macro-instruction road not taken.

    Sec. III-B argues that turning each CritIC into a dedicated
    macro-instruction is impractical because the number of unique CritIC
    sequences (opcode+operands) is enormous — "even 10^6 per app" — and
    proposes the CDP/Thumb mechanism instead.  This experiment
    quantifies both halves of that argument on our workloads:

    - the unique-sequence counts that an ISA extension or dedicated
      hardware table would have to cover;
    - the speedup of a hypothetical macro ISA ([Scheme.Macro_ideal]:
      every chain fetched as one instruction, no encoding limits)
      against CritIC's achieved speedup — i.e. how much of the
      unconstrained upper bound the practical mechanism captures. *)

type row = {
  app : string;
  unique_sequences : int;  (** distinct structural chain keys *)
  static_sites : int;
  critic : float;          (** CritIC speedup *)
  macro : float;           (** hypothetical macro-ISA speedup *)
}

type result = {
  rows : row list;
  mean_critic : float;
  mean_macro : float;
}

val run : Harness.t -> result
val render : result -> string
