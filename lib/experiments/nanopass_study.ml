type result = {
  apps : string list;
  speedups : (string * float list) list;
  pass_reports : (string * (string * Transform.Report.t) list) list;
}

let schemes =
  [ Critics.Scheme.Hoist; Critics.Scheme.Narrow_only;
    Critics.Scheme.Critic_reorder; Critics.Scheme.Critic ]

let default_apps () =
  List.filter_map Workload.Apps.find [ "Acrobat"; "Browser"; "Youtube" ]

let jobs ?apps () =
  let apps = match apps with Some a -> a | None -> default_apps () in
  List.concat_map
    (fun app ->
      List.map
        (fun s -> Harness.job app s)
        (Critics.Scheme.Baseline :: schemes))
    apps

let run ?apps h =
  let apps = match apps with Some a -> a | None -> default_apps () in
  let speedups =
    List.map
      (fun s ->
        ( Critics.Scheme.name s,
          List.map (fun app -> Harness.speedup h app s) apps ))
      schemes
  in
  (* Re-run the canonical pipeline pass by pass (cheap next to the
     simulations above) to expose each stage's own report rather than
     the composite sum the scheme cache stores. *)
  let pass_reports =
    List.map
      (fun (app : Workload.Profile.t) ->
        let ctx = Harness.context h app in
        let env = Transform.Pass.env ctx.Critics.Run.db in
        let _, rows =
          List.fold_left
            (fun (p, acc) (pass : Transform.Pass.t) ->
              let p', r = pass.Transform.Pass.apply env p in
              (p', (pass.Transform.Pass.name, r) :: acc))
            (ctx.Critics.Run.program, [])
            (Transform.Pipeline.canonical Transform.Pass.default_options)
        in
        (app.name, List.rev rows))
      apps
  in
  {
    apps = List.map (fun (p : Workload.Profile.t) -> p.name) apps;
    speedups;
    pass_reports;
  }

let render r =
  let speedup_table =
    Util.Text_table.render
      ~header:("scheme" :: r.apps)
      (List.map
         (fun (name, per) -> name :: List.map Util.Stats.pct per)
         r.speedups)
  in
  let field_names =
    List.map fst (Transform.Report.fields Transform.Report.zero)
  in
  let report_rows =
    List.concat_map
      (fun (app, rows) ->
        List.map
          (fun (pass, rep) ->
            app :: pass
            :: List.map
                 (fun (_, v) -> string_of_int v)
                 (Transform.Report.fields rep))
          rows)
      r.pass_reports
  in
  "Pass-list ablation: speedup over baseline per variant\n" ^ speedup_table
  ^ "\n\n\
     Per-pass reports, canonical CritIC pipeline (each stage's own \
     counters;\n\
     their field-wise sum equals the historical monolithic report)\n"
  ^ Util.Text_table.render
      ~header:(("app" :: "pass" :: field_names))
      report_rows
