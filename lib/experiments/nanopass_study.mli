(** Nanopass ablation study (EXPERIMENTS.md, "pass-list ablations"):
    what each stage of the CritIC pipeline buys, measured end-to-end.

    The pass-list variants priced against each other:
    - [hoist]: chain-select + hoist only (the paper's Hoist bar);
    - [narrow.only]: chain-select + narrow-convert + cdp-insert — 16-bit
      conversion of CritICs with {e no} hoisting, a hybrid the paper
      never tried;
    - [critic.reorder]: narrow-before-hoist ordering — same final
      program as [critic] (the passes commute), priced end-to-end to
      demonstrate it;
    - [critic]: the full canonical pipeline.

    Alongside the speedups, the per-pass transform reports of the
    canonical pipeline show where sites are rejected and what each
    stage actually edits. *)

type result = {
  apps : string list;
  speedups : (string * float list) list;
      (** scheme name, speedup over baseline per app in [apps] order *)
  pass_reports : (string * (string * Transform.Report.t) list) list;
      (** app, then (pass name, report) per stage of the canonical
          CritIC pipeline in execution order *)
}

val schemes : Critics.Scheme.t list
(** The ablated pass-list variants, in increasing completeness:
    hoist, narrow.only, critic.reorder, critic. *)

val jobs : ?apps:Workload.Profile.t list -> unit -> Harness.job list
(** Every memoized simulation [run] needs (baseline + each variant per
    app), for {!Harness.run_batch} prewarming. *)

val run : ?apps:Workload.Profile.t list -> Harness.t -> result
(** Defaults to three representative mobile apps to bound runtime. *)

val render : result -> string
