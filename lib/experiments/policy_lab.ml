type cell = {
  policy : Mem.Replacement.kind;
  prefetch : Mem.Hierarchy.iprefetch;
  app : string;
  base_cycles : int;
  fetch_stall : int;
  speedup : float;
  retention : float;
}

type opportunity = {
  opp_app : string;
  misses : int;
  predictable : int;
  fraction : float;
}

type result = {
  apps : string list;
  cells : cell list;
  opps : opportunity list;
}

let policies = Mem.Replacement.all_kinds
let prefetchers = Mem.Hierarchy.all_iprefetch

let default_apps () =
  List.filter_map Workload.Apps.find [ "Acrobat"; "Browser"; "Youtube" ]

let config policy prefetch =
  {
    Pipeline.Config.table_i with
    mem =
      {
        Pipeline.Config.table_i.mem with
        l1i_policy = policy;
        l1i_prefetch = prefetch;
      };
  }

(* Opportunity counters ride on an otherwise-default baseline run; the
   mode is observational, so only the two new counters differ from the
   default cell's stats. *)
let opportunity_config =
  {
    Pipeline.Config.table_i with
    mem = { Pipeline.Config.table_i.mem with l1i_opportunity = true };
  }

let jobs ?apps () =
  let apps = match apps with Some a -> a | None -> default_apps () in
  List.concat_map
    (fun app ->
      Harness.job ~config:opportunity_config app Critics.Scheme.Baseline
      :: List.concat_map
           (fun p ->
             List.concat_map
               (fun f ->
                 let config = config p f in
                 [
                   Harness.job ~config app Critics.Scheme.Baseline;
                   Harness.job ~config app Critics.Scheme.Critic;
                 ])
               prefetchers)
           policies)
    apps

let run ?apps h =
  let apps = match apps with Some a -> a | None -> default_apps () in
  let cell_speedup (app : Workload.Profile.t) p f =
    let config = config p f in
    let base = Harness.stats h ~config app Critics.Scheme.Baseline in
    let critic = Harness.stats h ~config app Critics.Scheme.Critic in
    (base, Critics.Run.speedup ~base critic)
  in
  let cells =
    List.concat_map
      (fun (app : Workload.Profile.t) ->
        (* Retention is measured against the default machine's win. *)
        let _, default_speedup =
          cell_speedup app Mem.Replacement.Lru Mem.Hierarchy.Ip_next_line
        in
        List.concat_map
          (fun p ->
            List.map
              (fun f ->
                let base, speedup = cell_speedup app p f in
                {
                  policy = p;
                  prefetch = f;
                  app = app.name;
                  base_cycles = base.Pipeline.Stats.cycles;
                  fetch_stall = base.Pipeline.Stats.fetch_idle_supply;
                  speedup;
                  retention =
                    (if default_speedup = 0.0 then 0.0
                     else speedup /. default_speedup);
                })
              prefetchers)
          policies)
      apps
  in
  let opps =
    List.map
      (fun (app : Workload.Profile.t) ->
        let st =
          Harness.stats h ~config:opportunity_config app
            Critics.Scheme.Baseline
        in
        {
          opp_app = app.name;
          misses = st.Pipeline.Stats.iopp_misses;
          predictable = st.Pipeline.Stats.iopp_predictable;
          fraction = Pipeline.Stats.opportunity_fraction st;
        })
      apps
  in
  {
    apps = List.map (fun (p : Workload.Profile.t) -> p.name) apps;
    cells;
    opps;
  }

let variant_label p f =
  Mem.Replacement.kind_name p ^ " + " ^ Mem.Hierarchy.iprefetch_name f

let render r =
  let find app p f =
    List.find
      (fun c -> c.app = app && c.policy = p && c.prefetch = f)
      r.cells
  in
  let variant_rows per_cell =
    List.concat_map
      (fun p ->
        List.map
          (fun f ->
            variant_label p f
            :: List.map (fun app -> per_cell (find app p f)) r.apps)
          prefetchers)
      policies
  in
  let stall_table =
    Util.Text_table.render
      ~header:("policy + i-prefetch" :: r.apps)
      (variant_rows (fun c -> string_of_int c.fetch_stall))
  in
  let retention_table =
    Util.Text_table.render
      ~header:("policy + i-prefetch" :: r.apps)
      (variant_rows (fun c ->
           Printf.sprintf "%s (%.2f)" (Util.Stats.pct c.speedup) c.retention))
  in
  let opp_table =
    Util.Text_table.render
      ~header:[ "app"; "line misses"; "predictable"; "fraction" ]
      (List.map
         (fun o ->
           [
             o.opp_app;
             string_of_int o.misses;
             string_of_int o.predictable;
             Util.Stats.pct o.fraction;
           ])
         r.opps)
  in
  "Baseline fetch-stall cycles (supply side) per i-cache policy x \
   prefetcher\n" ^ stall_table
  ^ "\n\nCritIC speedup under each machine (retention vs lru + \
     next_line)\n" ^ retention_table
  ^ "\n\nPrefetch opportunity (Zhao-style): i-cache misses predictable \
     from prior fetch history\n" ^ opp_table

let to_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{ \"cells\": [\n";
  List.iteri
    (fun i c ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"app\": \"%s\", \"policy\": \"%s\", \"prefetch\": \
            \"%s\", \"base_cycles\": %d, \"fetch_stall\": %d, \
            \"speedup\": %.6f, \"retention\": %.6f }%s\n"
           (Util.Json.escape_string c.app)
           (Mem.Replacement.kind_name c.policy)
           (Mem.Hierarchy.iprefetch_name c.prefetch)
           c.base_cycles c.fetch_stall c.speedup c.retention
           (if i = List.length r.cells - 1 then "" else ",")))
    r.cells;
  Buffer.add_string b "  ], \"opportunity\": [\n";
  List.iteri
    (fun i o ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"app\": \"%s\", \"misses\": %d, \"predictable\": %d, \
            \"fraction\": %.6f }%s\n"
           (Util.Json.escape_string o.opp_app)
           o.misses o.predictable o.fraction
           (if i = List.length r.opps - 1 then "" else ",")))
    r.opps;
  Buffer.add_string b "  ] }";
  Buffer.contents b
