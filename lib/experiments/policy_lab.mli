(** The front-end policy laboratory (ROADMAP item 1): how much of the
    CritICs win survives a smarter i-cache?

    Sweeps L1i replacement policy ({!Mem.Replacement.kind}) ×
    instruction prefetcher ({!Mem.Hierarchy.iprefetch}) × app, running
    Baseline and Critic under every cell's machine and reporting the
    baseline's fetch-stall cycles, the CritIC speedup {e under that
    machine}, and the retention — cell speedup relative to the default
    (lru + next-line) cell, i.e. the fraction of the paper's win a
    smarter front end leaves standing.

    A separate opportunity row per app runs the baseline with
    {!Mem.Hierarchy.config.l1i_opportunity} on: the Zhao-style upper
    bound on how many i-cache misses any history-based prefetcher could
    have covered. *)

type cell = {
  policy : Mem.Replacement.kind;
  prefetch : Mem.Hierarchy.iprefetch;
  app : string;
  base_cycles : int;      (** baseline cycles under this machine *)
  fetch_stall : int;      (** baseline supply-side fetch-idle cycles *)
  speedup : float;        (** Critic vs Baseline, both under this machine *)
  retention : float;      (** [speedup /. speedup(lru, next_line)];
                              0 when the default cell shows no win *)
}

type opportunity = {
  opp_app : string;
  misses : int;           (** i-fetch line transitions missing the L1i *)
  predictable : int;      (** of those, last-successor predictable *)
  fraction : float;
}

type result = {
  apps : string list;
  cells : cell list;      (** app-major, then policy, then prefetcher *)
  opps : opportunity list;
}

val config :
  Mem.Replacement.kind -> Mem.Hierarchy.iprefetch -> Pipeline.Config.t
(** Table I with the given i-side policy and prefetcher.  For
    [(Lru, Ip_next_line)] this is structurally equal to
    {!Pipeline.Config.table_i}, so the default cell shares the
    harness's memoized baseline simulations bit for bit. *)

val jobs : ?apps:Workload.Profile.t list -> unit -> Harness.job list

val run : ?apps:Workload.Profile.t list -> Harness.t -> result
(** Defaults to the same three representative mobile apps as
    {!Ablations}. *)

val render : result -> string

val to_json : result -> string
(** The per-cell embed for BENCH_results.json: an object with "cells"
    and "opportunity" arrays. *)
