let table_i () =
  "Table I: baseline simulation configuration\n"
  ^ Util.Text_table.render_kv (Pipeline.Config.describe Pipeline.Config.table_i)

let table_ii () =
  "Table II: evaluated applications\n" ^ Workload.Apps.table_ii ()
