(** Tables I and II of the paper. *)

val table_i : unit -> string
(** The baseline simulated configuration. *)

val table_ii : unit -> string
(** The evaluated applications. *)
