type schedule = { cycles : int; order : (int * int list) list }

let schedule ?(width = 2) ~preds ~priority () =
  let n = Array.length preds in
  let done_at = Array.make n max_int in
  let scheduled = Array.make n false in
  let remaining = ref n in
  let order = ref [] in
  let cycle = ref 0 in
  while !remaining > 0 do
    let ready =
      List.init n Fun.id
      |> List.filter (fun i ->
             (not scheduled.(i))
             && List.for_all (fun p -> done_at.(p) <= !cycle) preds.(i))
      |> List.sort (fun a b ->
             match compare (priority b) (priority a) with
             | 0 -> compare a b
             | c -> c)
    in
    let issued = List.filteri (fun k _ -> k < width) ready in
    List.iter
      (fun i ->
        scheduled.(i) <- true;
        done_at.(i) <- !cycle + 1;
        decr remaining)
      issued;
    if issued <> [] then order := (!cycle, issued) :: !order;
    incr cycle
  done;
  { cycles = !cycle; order = List.rev !order }

type comparison = {
  fanout_first : schedule;
  chain_first : schedule;
  saved_cycles : int;
}

(* The example DFG, in the spirit of Figs. 2/4.

   A 3-wide machine runs:
   - three parallel "ladders": serial chains with a redundant skip edge,
     so every interior member has fanout 2;
   - the critical chain c0 -> ... -> c7: interior members have fanout 1,
     but the tail feeds six consumers;
   - the ladders' side consumers and the tail consumers (fanout 0).

   Instruction-level fanout prioritization always prefers the
   fanout-2 ladder members over the fanout-1 chain interior, so the
   chain only starts once the ladders are exhausted and the machine
   drains into a serialized tail — the stall the paper's Fig. 2
   illustrates.  Ranking the chain by its aggregate criticality
   (average fanout per instruction, lifted by the high-fanout tail)
   keeps one issue slot on the chain from cycle 0. *)

let ladder_len = 10
let chain_len = 8
let tail_consumers = 6

let example_graph () =
  let nodes = ref [] in
  let count = ref 0 in
  let fresh preds =
    let id = !count in
    incr count;
    nodes := (id, preds) :: !nodes;
    id
  in
  (* three ladders; a redundant skip edge (m -> m+2) gives every
     interior member fanout 2 without adding side work *)
  for _ = 1 to 3 do
    let prev2 = ref None and prev = ref None in
    for _ = 1 to ladder_len do
      let preds =
        match (!prev, !prev2) with
        | None, _ -> []
        | Some p, None -> [ p ]
        | Some p, Some q -> [ p; q ]
      in
      let m = fresh preds in
      prev2 := !prev;
      prev := Some m
    done
  done;
  (* the critical chain *)
  let chain = ref [] in
  let prev = ref None in
  for _ = 1 to chain_len do
    let m = fresh (match !prev with None -> [] | Some p -> [ p ]) in
    chain := m :: !chain;
    prev := Some m
  done;
  let tail = List.hd !chain in
  for _ = 1 to tail_consumers do
    ignore (fresh [ tail ])
  done;
  let n = !count in
  let preds = Array.make n [] in
  List.iter (fun (id, ps) -> preds.(id) <- ps) !nodes;
  (preds, List.rev !chain)

let fanout_of preds i =
  Array.fold_left
    (fun acc ps -> if List.mem i ps then acc + 1 else acc)
    0 preds

let example () =
  let preds, chain = example_graph () in
  let fanout = fanout_of preds in
  let width = 3 in
  let fanout_first = schedule ~width ~preds ~priority:fanout () in
  (* Chain members inherit the chain's criticality: its average fanout
     per instruction, which the high-fanout tail lifts above the
     individual fanouts of the interior members. *)
  let chain_criticality =
    let total = List.fold_left (fun acc i -> acc + fanout i) 0 chain in
    (total + List.length chain - 1) / List.length chain
  in
  let priority i =
    if List.mem i chain then max (fanout i) (chain_criticality + 8)
    else fanout i
  in
  let chain_first = schedule ~width ~preds ~priority () in
  {
    fanout_first;
    chain_first;
    saved_cycles = fanout_first.cycles - chain_first.cycles;
  }

let render c =
  let show s =
    s.order
    |> List.map (fun (cycle, is) ->
           Printf.sprintf "  cycle %2d: %s" cycle
             (String.concat " " (List.map (fun i -> "I" ^ string_of_int i) is)))
    |> String.concat "\n"
  in
  Printf.sprintf
    "Fig 2/4: 2-wide schedules of the example DFG\n\
     high-fanout-first: %d cycles\n%s\n\
     chain-first:       %d cycles\n%s\n\
     chain prioritization saves %d cycle(s)"
    c.fanout_first.cycles (show c.fanout_first) c.chain_first.cycles
    (show c.chain_first) c.saved_cycles
