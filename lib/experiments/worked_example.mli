(** Figs. 2 and 4 — the worked scheduling examples.

    A small list scheduler over an explicit dependence graph shows why
    instruction-level fanout prioritization is insufficient: a chain of
    individually low-fanout instructions that leads to a high-fanout
    instruction must be prioritized *as a chain*.  [compare] schedules
    the same DFG on a 2-wide machine under both policies. *)

type schedule = {
  cycles : int;
  order : (int * int list) list;  (** cycle -> instructions issued *)
}

val schedule :
  ?width:int ->
  preds:int list array ->
  priority:(int -> int) ->
  unit ->
  schedule
(** Unit-latency list scheduling: each cycle issues up to [width] ready
    instructions, highest [priority] first (ties to the lower index). *)

type comparison = {
  fanout_first : schedule;
  chain_first : schedule;
  saved_cycles : int;
}

val example : unit -> comparison
(** The bundled Fig. 2/4-style DFG: a fanout tree competing with a
    critical chain whose members are individually low-fanout. *)

val render : comparison -> string
