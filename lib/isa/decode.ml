type decoded = {
  d_opcode : Opcode.t;
  d_cond : Instr.cond;
  d_dst : Reg.t option;
  d_srcs : Reg.t list;
  d_cdp_count : int;
}

type handler =
  | Format of string * (int -> (decoded, string) result)
  | Trap of string

let ( let* ) = Result.bind
let absent = 0xF

(* A 4-bit Thumb operand field: 0..10 name a register, 0xF is "no
   operand", 11..14 have no meaning (the encoder can never emit them). *)
let t16_field h shift =
  match (h lsr shift) land 0xF with
  | v when v = absent -> Ok None
  | v when v <= Reg.thumb_limit -> Ok (Some (Reg.r v))
  | v -> Error (Printf.sprintf "operand field %d outside r0..r10" v)

let work_format op name =
  Format
    ( name,
      fun h ->
        let* dst = t16_field h 8 in
        let* s1 = t16_field h 4 in
        let* s2 = t16_field h 0 in
        let* srcs =
          match (s1, s2) with
          | Some a, Some b -> Ok [ a; b ]
          | Some a, None -> Ok [ a ]
          | None, None -> Ok []
          | None, Some _ -> Error "src2 present without src1"
        in
        Ok { d_opcode = op; d_cond = Instr.Always; d_dst = dst;
             d_srcs = srcs; d_cdp_count = 0 } )

let cdp_format =
  Format
    ( "t-cdp",
      fun h ->
        if (h lsr 4) land 0xFF <> 0 then
          Error "CDP marker has non-zero operand fields"
        else
          let l = h land 0xF in
          if l > 8 then Error "CDP length field exceeds 8 (1..9 follow)"
          else
            Ok { d_opcode = Opcode.Cdp_switch; d_cond = Instr.Always;
                 d_dst = None; d_srcs = []; d_cdp_count = l + 1 } )

(* Upper byte = opcode nibble | dst nibble: the dst field is part of the
   dispatch index (as in the exemplar table), so illegal dst values trap
   straight from the LUT without entering a handler. *)
let classify upper =
  let op_nib = (upper lsr 4) land 0xF in
  let dst_nib = upper land 0xF in
  if op_nib = 0xF then
    if dst_nib = 0 then cdp_format
    else Trap "CDP marker requires a zero dst field"
  else
    match Encode.op_of_index op_nib with
    | None -> Trap (Printf.sprintf "undefined 16-bit opcode %#x" op_nib)
    | Some op ->
      if dst_nib = absent || dst_nib <= Reg.thumb_limit then
        work_format op ("t-" ^ Opcode.to_string op)
      else
        Trap (Printf.sprintf "dst field %d outside r0..r10" dst_nib)

let thumb_lut = Array.init 256 classify

let decode16 h =
  if h < 0 || h > 0xFFFF then Error "halfword out of range"
  else
    match thumb_lut.((h lsr 8) land 0xFF) with
    | Trap reason -> Error reason
    | Format (_, dec) -> dec h

let a32_srcs w n =
  let rec go k acc =
    if k < 0 then acc
    else go (k - 1) (Reg.r ((w lsr (12 - (4 * k))) land 0xF) :: acc)
  in
  go (n - 1) []

let decode32 w =
  if w < 0 || w > 0xFFFFFFFF then Error "word out of range"
  else
    let* cond =
      match Encode.cond_of_bits ((w lsr 28) land 0xF) with
      | Some c -> Ok c
      | None ->
        Error (Printf.sprintf "undefined condition code %#x" ((w lsr 28) land 0xF))
    in
    let* op =
      match Encode.op_of_index ((w lsr 24) land 0xF) with
      | Some op -> Ok op
      | None ->
        Error (Printf.sprintf "undefined 32-bit opcode %#x" ((w lsr 24) land 0xF))
    in
    let nsrcs = (w lsr 21) land 0x7 in
    let* () = if nsrcs > 4 then Error "source count exceeds 4" else Ok () in
    let dst = if (w lsr 20) land 1 = 1 then Some (Reg.r ((w lsr 16) land 0xF)) else None in
    let* () =
      (* unused fields must read zero so every word has one decoding *)
      let used_srcs_mask = lnot ((1 lsl (16 - (4 * nsrcs))) - 1) land 0xFFFF in
      let unused_dst = if dst = None && (w lsr 16) land 0xF <> 0 then true else false in
      if unused_dst then Error "dst field set without has-dst"
      else if w land 0xFFFF land lnot used_srcs_mask <> 0 then
        Error "unused source fields must be zero"
      else Ok ()
    in
    Ok { d_opcode = op; d_cond = cond; d_dst = dst;
         d_srcs = a32_srcs w nsrcs; d_cdp_count = 0 }

let decode_bytes s =
  let byte k = Char.code s.[k] in
  match String.length s with
  | 2 -> decode16 (byte 0 lor (byte 1 lsl 8))
  | 4 -> decode32 (byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24))
  | n -> Error (Printf.sprintf "wire encoding must be 2 or 4 bytes, got %d" n)

(* A representative halfword for each Format entry: the upper byte with
   absent src fields (or, for CDP, a zero length field). *)
let representative upper =
  if (upper lsr 4) land 0xF = 0xF then upper lsl 8
  else (upper lsl 8) lor (absent lsl 4) lor absent

let check_total () =
  if Array.length thumb_lut <> 256 then Error "LUT is not 256 entries"
  else
    let rec go i =
      if i = 256 then Ok ()
      else
        match thumb_lut.(i) with
        | Trap "" -> Error (Printf.sprintf "entry %#x traps without a reason" i)
        | Trap _ -> go (i + 1)
        | Format (name, dec) -> (
          match dec (representative i) with
          | Ok _ -> go (i + 1)
          | Error e ->
            Error (Printf.sprintf "entry %#x (%s) rejects its representative: %s" i name e))
    in
    go 0
