(** Instruction decoders: the inverse of {!Encode}, with the 16-bit
    side dispatched through a 256-entry format LUT.

    Following the classic table-driven Thumb decoder (gba-odin's
    [thumb.odin]), the 16-bit format is dispatched on the halfword's
    upper byte — opcode nibble plus dst nibble — so every one of the 256
    possible upper bytes resolves, at table-construction time, either to
    a format handler or to an explicit trap naming why no encoding lives
    there.  {!check_total} re-verifies that totality constructively and
    is run by the test suite over all 65536 halfwords. *)

type decoded = {
  d_opcode : Opcode.t;
  d_cond : Instr.cond;
  d_dst : Reg.t option;
  d_srcs : Reg.t list;
  d_cdp_count : int;  (** [0] except for the CDP format switch *)
}
(** The structural fields a wire encoding carries.  [uid], memory
    signatures and chain tags are simulator metadata with no wire
    representation. *)

type handler =
  | Format of string * (int -> (decoded, string) result)
      (** format name + full-halfword decoder (which still validates the
          low-byte operand fields) *)
  | Trap of string  (** no encoding has this upper byte; the reason *)

val thumb_lut : handler array
(** The 256-entry dispatch table, indexed by halfword bits [15:8]. *)

val decode16 : int -> (decoded, string) result
(** Decode a halfword in [0, 0xFFFF] via {!thumb_lut}. *)

val decode32 : int -> (decoded, string) result
(** Decode a 32-bit word in [0, 0xFFFFFFFF]. *)

val decode_bytes : string -> (decoded, string) result
(** Decode little-endian wire bytes by length: 2 → {!decode16},
    4 → {!decode32}. *)

val check_total : unit -> (unit, string) result
(** Constructive totality: the LUT has exactly 256 entries; every
    [Format] handler decodes its canonical representative halfword; every
    [Trap] carries a non-empty reason.  Returns the first violation. *)
