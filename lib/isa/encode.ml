(* Wire formats.  Field layouts are documented in DESIGN.md §13; the
   numbers here are the one source of truth for byte widths and for
   Thumb-convertibility (Decode mirrors them, test-locked both ways). *)

let op_index = function
  | Opcode.Alu -> Some 0
  | Opcode.Alu_shift -> Some 1
  | Opcode.Mul -> Some 2
  | Opcode.Div -> Some 3
  | Opcode.Load -> Some 4
  | Opcode.Store -> Some 5
  | Opcode.Branch -> Some 6
  | Opcode.Call -> Some 7
  | Opcode.Return -> Some 8
  | Opcode.Fp_add -> Some 9
  | Opcode.Fp_mul -> Some 10
  | Opcode.Fp_div -> Some 11
  | Opcode.Nop -> Some 12
  | Opcode.Cdp_switch -> None

let op_of_index = function
  | 0 -> Some Opcode.Alu
  | 1 -> Some Opcode.Alu_shift
  | 2 -> Some Opcode.Mul
  | 3 -> Some Opcode.Div
  | 4 -> Some Opcode.Load
  | 5 -> Some Opcode.Store
  | 6 -> Some Opcode.Branch
  | 7 -> Some Opcode.Call
  | 8 -> Some Opcode.Return
  | 9 -> Some Opcode.Fp_add
  | 10 -> Some Opcode.Fp_mul
  | 11 -> Some Opcode.Fp_div
  | 12 -> Some Opcode.Nop
  | _ -> None

let cond_bits = function
  | Instr.Eq -> 0x0
  | Instr.Ne -> 0x1
  | Instr.Ge -> 0xA
  | Instr.Lt -> 0xB
  | Instr.Gt -> 0xC
  | Instr.Le -> 0xD
  | Instr.Always -> 0xE

let cond_of_bits = function
  | 0x0 -> Some Instr.Eq
  | 0x1 -> Some Instr.Ne
  | 0xA -> Some Instr.Ge
  | 0xB -> Some Instr.Lt
  | 0xC -> Some Instr.Gt
  | 0xD -> Some Instr.Le
  | 0xE -> Some Instr.Always
  | _ -> None

(* Operand fields are 4 bits; 0xF marks an absent operand.  The 16-bit
   format additionally requires every named register to fit the Thumb
   operand range R0..R10 (11..14 are unrepresentable, 15 is the absence
   marker). *)
let absent = 0xF

let t16_reg r =
  let i = Reg.index r in
  if i <= Reg.thumb_limit then Ok i
  else Error (Printf.sprintf "r%d exceeds the Thumb operand range (r10)" i)

let ( let* ) = Result.bind

(* 16-bit halfword:
     [15:12] opcode (0..12; 0xF = CDP format switch; 13/14 undefined)
     [11:8]  dst   (0..10, 0xF = none)
     [7:4]   src1  (0..10, 0xF = none)
     [3:0]   src2  (0..10, 0xF = none)
   CDP marker: [15:12]=0xF, [11:4]=0, [3:0] = cdp_count - 1 (0..8). *)
let encode16 (i : Instr.t) =
  if i.opcode = Opcode.Cdp_switch then
    if i.cdp_count >= 1 && i.cdp_count <= 9 then
      Ok ((0xF lsl 12) lor (i.cdp_count - 1))
    else Error "CDP marker announces 1..9 following instructions"
  else if Instr.is_predicated i then
    Error "the 16-bit format has no predication"
  else
    match op_index i.opcode with
    | None -> Error "opcode class has no 16-bit encoding"
    | Some op ->
      let* dst = match i.dst with None -> Ok absent | Some r -> t16_reg r in
      let* s1, s2 =
        match i.srcs with
        | [] -> Ok (absent, absent)
        | [ a ] ->
          let* a = t16_reg a in
          Ok (a, absent)
        | [ a; b ] ->
          let* a = t16_reg a in
          let* b = t16_reg b in
          Ok (a, b)
        | _ -> Error "more than two sources exceed the 16-bit format"
      in
      Ok ((op lsl 12) lor (dst lsl 8) lor (s1 lsl 4) lor s2)

(* 32-bit word:
     [31:28] cond (ARM nibble, {!cond_bits})
     [27:24] opcode (0..12; 13..15 undefined)
     [23:21] source count (0..4)
     [20]    has-dst
     [19:16] dst  (0 when absent)
     [15:12] src1  [11:8] src2  [7:4] src3  [3:0] src4 (0 when absent) *)
let encode32 (i : Instr.t) =
  match op_index i.opcode with
  | None -> Error "the CDP marker is 16-bit only"
  | Some op ->
    let nsrcs = List.length i.srcs in
    if nsrcs > 4 then Error "more than four sources exceed the 32-bit format"
    else begin
      let srcs = Array.make 4 0 in
      List.iteri (fun k r -> srcs.(k) <- Reg.index r) i.srcs;
      let hd, dst =
        match i.dst with None -> (0, 0) | Some r -> (1, Reg.index r)
      in
      Ok
        ((cond_bits i.cond lsl 28)
        lor (op lsl 24)
        lor (nsrcs lsl 21)
        lor (hd lsl 20)
        lor (dst lsl 16)
        lor (srcs.(0) lsl 12)
        lor (srcs.(1) lsl 8)
        lor (srcs.(2) lsl 4)
        lor srcs.(3))
    end

let le_bytes n width =
  String.init width (fun k -> Char.chr ((n lsr (8 * k)) land 0xFF))

let encode (i : Instr.t) =
  match i.encoding with
  | Instr.Fused -> Ok ""
  | Instr.Thumb16 ->
    let* h = encode16 i in
    Ok (le_bytes h 2)
  | Instr.Arm32 ->
    let* w = encode32 i in
    Ok (le_bytes w 4)

let thumb_convertible (i : Instr.t) =
  i.opcode <> Opcode.Cdp_switch && Result.is_ok (encode16 i)
