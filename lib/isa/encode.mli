(** Instruction encoders: the wire formats behind the [encoding] tags.

    Two concrete formats are defined (DESIGN.md §13):

    - a Thumb-like 16-bit halfword — 4-bit opcode, three 4-bit operand
      fields restricted to R0..R10, no predication, plus the CDP
      format-switch marker occupying the [0xF] opcode slot;
    - an ARM-like 32-bit word — 4-bit ARM condition code, 4-bit opcode,
      explicit operand count, and full R0..R15 operand fields.

    The encoder is the single source of truth for byte widths and for
    Thumb-convertibility: {!thumb_convertible} is "the 16-bit encoder
    succeeds", and [Instr.size_bytes] equals the encoded length whenever
    {!encode} succeeds (test-locked).  The only instructions the encoder
    rejects while their tag claims a width are the *hypothetical*
    re-encodings used by upper-bound studies ([Instr.force_thumb] under
    CritIC.Ideal, [Instr.fuse] under the macro study); those keep their
    claimed width but have no wire bytes by construction. *)

val op_index : Opcode.t -> int option
(** Stable 4-bit opcode number shared by both formats: Alu=0, Alu_shift=1,
    Mul=2, Div=3, Load=4, Store=5, Branch=6, Call=7, Return=8, Fp_add=9,
    Fp_mul=10, Fp_div=11, Nop=12.  [Cdp_switch] has no work-class number
    (it owns the 16-bit [0xF] format) and maps to [None]. *)

val op_of_index : int -> Opcode.t option
(** Inverse of {!op_index}; [None] for 13, 14, 15 and out-of-range. *)

val cond_bits : Instr.cond -> int
(** ARM condition-code nibble: EQ=0x0, NE=0x1, GE=0xA, LT=0xB, GT=0xC,
    LE=0xD, Always=0xE (AL). *)

val cond_of_bits : int -> Instr.cond option

val encode16 : Instr.t -> (int, string) result
(** Pack into the 16-bit halfword (returned in [0, 0xFFFF]).  Fails —
    naming the violated constraint — when the instruction is predicated,
    names a register above R10, has more than two sources, or the opcode
    class has no 16-bit encoding.  A CDP marker packs into the [0xF]
    format with [cdp_count - 1] in the low nibble. *)

val encode32 : Instr.t -> (int, string) result
(** Pack into the 32-bit word (returned in [0, 0xFFFFFFFF]).  Fails for
    [Cdp_switch] (the marker is 16-bit only) and for more than four
    sources. *)

val encode : Instr.t -> (string, string) result
(** Wire bytes per the instruction's [encoding] tag, little-endian:
    2 bytes for [Thumb16], 4 for [Arm32], [""] for [Fused] (a fused
    constituent rides in the preceding instruction's word).  Fails only
    for hypothetical re-encodings whose tag a real encoder cannot honour
    (e.g. a [force_thumb]-ed predicated instruction). *)

val thumb_convertible : Instr.t -> bool
(** "The 16-bit encoder succeeds" — the operative convertibility
    predicate used by the compiler passes.  Excludes the CDP marker:
    convertibility is about re-encoding work instructions, not the
    marker's own format.  Agrees with the structural spec predicate
    [Instr.thumb_convertible] on every instruction (qcheck-locked). *)
