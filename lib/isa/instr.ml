type encoding = Arm32 | Thumb16 | Fused

type cond = Always | Eq | Ne | Gt | Lt | Ge | Le

type mem_signature = {
  region : int;
  stride : int;
  working_set : int;
  randomness : float;
}

type chain_tag = { chain_id : int; pos : int; len : int }

type t = {
  uid : int;
  opcode : Opcode.t;
  dst : Reg.t option;
  srcs : Reg.t list;
  cond : cond;
  encoding : encoding;
  mem : mem_signature option;
  chain : chain_tag option;
  cdp_count : int;
}

let is_predicated t = t.cond <> Always

(* Structural mirror of the 16-bit wire format (Encode.encode16): two
   4-bit source fields, one dst field, no predication, registers within
   the Thumb operand range.  Encode.thumb_convertible is the operative
   predicate; agreement between the two is qcheck-locked. *)
let thumb_convertible t =
  (not (is_predicated t))
  && Opcode.thumb_expressible t.opcode
  && (match t.srcs with _ :: _ :: _ :: _ -> false | _ -> true)
  && List.for_all Reg.thumb_addressable
       (t.srcs @ Option.to_list t.dst)

let make ~uid ~opcode ?dst ?(srcs = []) ?(cond = Always) ?(encoding = Arm32)
    ?mem ?chain ?(cdp_count = 0) () =
  (match mem with
  | Some _ when not (Opcode.is_memory opcode) ->
    invalid_arg "Instr.make: memory signature on non-memory opcode"
  | _ -> ());
  let t = { uid; opcode; dst; srcs; cond; encoding; mem; chain; cdp_count } in
  if encoding = Thumb16 && opcode <> Opcode.Cdp_switch
     && not (thumb_convertible t)
  then invalid_arg "Instr.make: instruction not representable in Thumb16";
  t

let size_bytes t =
  match t.encoding with Arm32 -> 4 | Thumb16 -> 2 | Fused -> 0

let with_encoding encoding t =
  if encoding = Thumb16 && t.opcode <> Opcode.Cdp_switch
     && not (thumb_convertible t)
  then invalid_arg "Instr.with_encoding: not Thumb-convertible";
  { t with encoding }

let force_thumb t = { t with encoding = Thumb16 }
let fuse t = { t with encoding = Fused }
let with_chain chain t = { t with chain }
let with_uid uid t = { t with uid }

let regs_read t =
  match t.opcode with
  | Opcode.Store -> t.srcs @ Option.to_list t.dst
  (* A store reads both its data "dst" and its address sources. *)
  | _ -> t.srcs

let regs_written t =
  match t.opcode with
  | Opcode.Store | Opcode.Branch -> []
  | _ -> Option.to_list t.dst

let cdp ~uid ~following =
  if following < 1 || following > 9 then
    invalid_arg "Instr.cdp: a single CDP announces 1..9 instructions";
  {
    uid;
    opcode = Opcode.Cdp_switch;
    dst = None;
    srcs = [];
    cond = Always;
    encoding = Thumb16;
    (* The CDP half-word shares a 32-bit word with the first chain
       instruction (Fig. 9), so it occupies 16 bits of fetch bandwidth. *)
    mem = None;
    chain = None;
    cdp_count = following;
  }

let cond_to_string = function
  | Always -> ""
  | Eq -> ".eq"
  | Ne -> ".ne"
  | Gt -> ".gt"
  | Lt -> ".lt"
  | Ge -> ".ge"
  | Le -> ".le"

let pp fmt t =
  let enc =
    match t.encoding with Arm32 -> "" | Thumb16 -> ".t16" | Fused -> ".fused"
  in
  let dst =
    match t.dst with
    | None -> ""
    | Some r -> Format.asprintf " %a," Reg.pp r
  in
  let srcs =
    t.srcs |> List.map (Format.asprintf "%a" Reg.pp) |> String.concat ", "
  in
  Format.fprintf fmt "%a%s%s%s %s" Opcode.pp t.opcode
    (cond_to_string t.cond) enc dst srcs

let structural_key t =
  let b = Buffer.create 24 in
  Buffer.add_string b (Opcode.to_string t.opcode);
  Buffer.add_string b (cond_to_string t.cond);
  (match t.dst with
  | None -> ()
  | Some r -> Buffer.add_string b (Printf.sprintf " d%d" (Reg.index r)));
  List.iter
    (fun r -> Buffer.add_string b (Printf.sprintf " s%d" (Reg.index r)))
    t.srcs;
  Buffer.contents b
