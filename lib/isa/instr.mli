(** Static instructions.

    An instruction carries exactly what the simulator, the DFG analysis
    and the compiler passes need: opcode class, register operands,
    predication, encoding format, and optional memory / chain metadata.
    Semantics (actual values) are never interpreted. *)

type encoding =
  | Arm32   (** contemporary 32-bit ARM format *)
  | Thumb16 (** concise 16-bit Thumb format *)
  | Fused   (** hypothetical macro-instruction constituent: fetched for
                free as part of the preceding instruction's word.  Used
                only by the ISA-extension upper-bound study (the design
                the paper rejects in Sec. III-B because the number of
                unique CritIC sequences makes it impractical) *)

type cond =
  | Always (** not predicated *)
  | Eq | Ne | Gt | Lt | Ge | Le
      (** predicated execution — unavailable in the 16-bit format *)

type mem_signature = {
  region : int;       (** data region identifier; distinct regions never alias *)
  stride : int;       (** bytes between successive dynamic accesses *)
  working_set : int;  (** bytes after which the access stream wraps *)
  randomness : float; (** probability a dynamic access jumps to a random
                          offset inside the working set instead of striding *)
}
(** Statistical description of an instruction's dynamic address stream;
    the trace expander turns it into concrete addresses. *)

type chain_tag = {
  chain_id : int; (** identity of the CritIC this instruction belongs to *)
  pos : int;      (** position within the chain, 0-based *)
  len : int;      (** chain length *)
}
(** Attached by the CritIC compiler pass to hoisted chain members (and to
    the CDP marker); drives chain-aware statistics and issue priority. *)

type t = {
  uid : int;                    (** program-unique static identifier *)
  opcode : Opcode.t;
  dst : Reg.t option;
  srcs : Reg.t list;
  cond : cond;
  encoding : encoding;
  mem : mem_signature option;   (** only for [Load]/[Store] *)
  chain : chain_tag option;
  cdp_count : int;              (** for [Cdp_switch]: how many following
                                    instructions are 16-bit ([l+1] ≤ 9) *)
}

val make :
  uid:int ->
  opcode:Opcode.t ->
  ?dst:Reg.t ->
  ?srcs:Reg.t list ->
  ?cond:cond ->
  ?encoding:encoding ->
  ?mem:mem_signature ->
  ?chain:chain_tag ->
  ?cdp_count:int ->
  unit ->
  t
(** Smart constructor; defaults: no operands, [Always], [Arm32], no
    memory signature, no chain, [cdp_count = 0]. Raises
    [Invalid_argument] if a memory signature is attached to a non-memory
    opcode or a Thumb16 encoding violates {!thumb_convertible}. *)

val size_bytes : t -> int
(** 4 for [Arm32], 2 for [Thumb16], 0 for [Fused] — the width claimed by
    the encoding tag.  Equal to the length of [Encode.encode] whenever
    that encoder succeeds (test-locked); only the hypothetical
    re-encodings of the upper-bound studies keep a claimed width with no
    real wire bytes. *)

val is_predicated : t -> bool

val thumb_convertible : t -> bool
(** The paper's conversion rule: an instruction can be represented in the
    16-bit format iff it is not predicated, every register operand is
    addressable by the Thumb operand fields (≤ R10), it has at most two
    sources (the format has two source fields), and the opcode class has
    a Thumb encoding.  This is the structural spec of
    [Encode.thumb_convertible] ("the 16-bit encoder succeeds"), which is
    what the compiler passes consult; agreement is qcheck-locked. *)

val with_encoding : encoding -> t -> t
(** Re-encode; raises [Invalid_argument] when converting a
    non-convertible instruction to [Thumb16]. *)

val force_thumb : t -> t
(** Re-encode to [Thumb16] bypassing {!thumb_convertible} — used only by
    the hypothetical CritIC.Ideal configuration (Sec. IV-E), which
    assumes every chain instruction had a 16-bit encoding.  Dependence
    structure and semantics metadata are untouched. *)

val fuse : t -> t
(** Re-encode to [Fused] (zero fetch bytes) — used only by the
    macro-instruction upper-bound study. *)

val with_chain : chain_tag option -> t -> t
val with_uid : int -> t -> t

val regs_read : t -> Reg.t list
val regs_written : t -> Reg.t list

val cdp : uid:int -> following:int -> t
(** [cdp ~uid ~following] is the format-switch marker announcing
    [following] 16-bit instructions.  [following] must be in [1, 9]
    (a 3-bit argument encodes [l], and [l + 1] instructions follow). *)

val pp : Format.formatter -> t -> unit

val structural_key : t -> string
(** Opcode + operands + predication, ignoring [uid] and metadata — the
    paper keys unique CritIC sequences on "opcode+operands of all
    constituent instructions". *)
