type t =
  | Alu
  | Alu_shift
  | Mul
  | Div
  | Load
  | Store
  | Branch
  | Call
  | Return
  | Fp_add
  | Fp_mul
  | Fp_div
  | Cdp_switch
  | Nop

let all =
  [ Alu; Alu_shift; Mul; Div; Load; Store; Branch; Call; Return;
    Fp_add; Fp_mul; Fp_div; Cdp_switch; Nop ]

let exec_latency = function
  | Alu -> 1
  | Alu_shift -> 2
  | Mul -> 3
  | Div -> 12
  | Load -> 1 (* address generation; memory time added by the hierarchy *)
  | Store -> 1
  | Branch -> 1
  | Call -> 1
  | Return -> 1
  | Fp_add -> 3
  | Fp_mul -> 4
  | Fp_div -> 14
  | Cdp_switch -> 1
  | Nop -> 1

let is_memory = function Load | Store -> true | _ -> false
let is_control = function Branch | Call | Return -> true | _ -> false
let is_long_latency op = exec_latency op > 1

let thumb_expressible = function
  | Cdp_switch -> false
  | Alu | Alu_shift | Mul | Div | Load | Store | Branch | Call | Return
  | Fp_add | Fp_mul | Fp_div | Nop -> true

let unit_kind = function
  | Alu | Alu_shift -> `Int_alu
  | Mul | Div -> `Int_mul
  | Load | Store -> `Mem
  | Branch | Call | Return -> `Branch
  | Fp_add | Fp_mul | Fp_div -> `Fp
  | Cdp_switch | Nop -> `None

let to_string = function
  | Alu -> "alu"
  | Alu_shift -> "alu.sh"
  | Mul -> "mul"
  | Div -> "div"
  | Load -> "ldr"
  | Store -> "str"
  | Branch -> "b"
  | Call -> "bl"
  | Return -> "ret"
  | Fp_add -> "fadd"
  | Fp_mul -> "fmul"
  | Fp_div -> "fdiv"
  | Cdp_switch -> "cdp"
  | Nop -> "nop"

let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal = ( = )
