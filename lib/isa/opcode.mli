(** Opcode classes of the modelled ISA.

    The simulator does not interpret instruction semantics; it needs the
    *class* of each instruction to derive execution latency, functional
    unit, memory behaviour and Thumb-convertibility. *)

type t =
  | Alu        (** single-cycle integer op: add, sub, mov, cmp, logic *)
  | Alu_shift  (** integer op with register-specified shift *)
  | Mul        (** integer multiply *)
  | Div        (** integer divide *)
  | Load       (** memory read *)
  | Store      (** memory write *)
  | Branch     (** conditional or unconditional control transfer *)
  | Call       (** function call (branch-and-link) *)
  | Return     (** function return *)
  | Fp_add     (** floating add/sub/convert *)
  | Fp_mul     (** floating multiply *)
  | Fp_div     (** floating divide/sqrt *)
  | Cdp_switch (** the CDP co-processor mnemonic reused as the 16-bit
                   format-switch marker (Sec. IV-B of the paper) *)
  | Nop

val all : t list

val exec_latency : t -> int
(** Execution latency in cycles once issued, excluding memory time for
    [Load]/[Store] (that comes from the cache hierarchy). *)

val is_memory : t -> bool
val is_control : t -> bool

val is_long_latency : t -> bool
(** Latency strictly greater than 1 cycle — the paper's Fig. 3c
    classification of high- vs low-latency instructions. *)

val thumb_expressible : t -> bool
(** Whether the 16-bit format has an encoding for this opcode class at
    all.  Per the paper the limiting factors are predication and register
    pressure, so every ordinary class is expressible; [Cdp_switch] is the
    switch marker itself and never converted. *)

val unit_kind : t -> [ `Int_alu | `Int_mul | `Mem | `Branch | `Fp | `None ]
(** Functional-unit pool the class issues to. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
