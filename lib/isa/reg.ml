type t = int

let count = 16
let thumb_limit = 10

let r i =
  if i < 0 || i >= count then invalid_arg "Reg.r: index out of range";
  i

let index t = t
let sp = 13
let lr = 14
let pc = 15
let thumb_addressable t = t <= thumb_limit
let pp fmt t = Format.fprintf fmt "r%d" t
let equal = Int.equal
let compare = Int.compare
