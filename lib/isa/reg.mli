(** Architected registers of the modelled ARM-flavoured ISA.

    The 32-bit format can name all sixteen registers R0..R15; the 16-bit
    Thumb format can only name the low registers R0..R10 (eleven
    registers), which is one of the two constraints that decide whether a
    CritIC instruction is Thumb-convertible (the other being
    predication). *)

type t = private int
(** A register index in [0, 15]. *)

val r : int -> t
(** [r i] is register Ri.  Raises [Invalid_argument] outside [0, 15]. *)

val index : t -> int

val sp : t
(** R13, the stack pointer. *)

val lr : t
(** R14, the link register. *)

val pc : t
(** R15, the program counter. *)

val count : int
(** Number of architected registers (16). *)

val thumb_limit : int
(** Highest register index addressable by the 16-bit format (10): the
    Thumb operand fields are 3–4 bits wide, giving 11 usable registers. *)

val thumb_addressable : t -> bool
(** Whether the register fits in a Thumb operand field. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
val compare : t -> t -> int
