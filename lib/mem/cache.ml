type stats = {
  accesses : int;
  hits : int;
  misses : int;
  fills : int;
  prefetch_fills : int;
  writebacks : int;
}

type t = {
  name : string;
  line_bytes : int;
  line_shift : int;
  sets : int;
  assoc : int;
  tags : int array array;     (* tags.(set).(way); -1 = invalid *)
  dirty : bool array array;
  repl : Replacement.t;
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable fills : int;
  mutable prefetch_fills : int;
  mutable writebacks : int;
  (* Victim of the most recent install, readable without allocating the
     [(addr, dirty) option] of {!access_evict}: -1 = no valid line was
     displaced.  Only meaningful immediately after {!access_demand} or
     {!fill}. *)
  mutable victim_addr : int;
  mutable victim_dirty : bool;
}

let is_pow2 x = x > 0 && x land (x - 1) = 0

let log2 x =
  let rec go i v = if v <= 1 then i else go (i + 1) (v lsr 1) in
  go 0 x

let create ?(policy = Replacement.Lru) ~name ~size_bytes ~assoc ~line_bytes ()
    =
  if not (is_pow2 line_bytes) then
    invalid_arg "Cache.create: line_bytes must be a power of two";
  if assoc <= 0 then invalid_arg "Cache.create: assoc must be positive";
  if size_bytes mod (assoc * line_bytes) <> 0 then
    invalid_arg "Cache.create: size not divisible by assoc * line";
  let sets = size_bytes / (assoc * line_bytes) in
  {
    name;
    line_bytes;
    line_shift = log2 line_bytes;
    sets;
    assoc;
    tags = Array.init sets (fun _ -> Array.make assoc (-1));
    dirty = Array.init sets (fun _ -> Array.make assoc false);
    repl = Replacement.create policy ~sets ~assoc;
    accesses = 0;
    hits = 0;
    misses = 0;
    fills = 0;
    prefetch_fills = 0;
    writebacks = 0;
    victim_addr = -1;
    victim_dirty = false;
  }

let name t = t.name
let line_bytes t = t.line_bytes
let sets t = t.sets
let assoc t = t.assoc
let policy t = Replacement.kind t.repl
let line_of t addr = addr land lnot (t.line_bytes - 1)

(* -1 when the tag is not present: called once per access, so it avoids
   allocating an option on every cache hit.  Plain loops over mutable
   locals rather than local recursive functions: a [let rec] capturing
   [ways]/[tag] costs a closure allocation per call without flambda,
   which on this per-access path is the difference between a GC-silent
   simulation loop and one minor allocation per cache access. *)
let find_way t set tag =
  let ways = t.tags.(set) in
  let found = ref (-1) in
  let i = ref 0 in
  while !found < 0 && !i < t.assoc do
    if ways.(!i) = tag then found := !i;
    incr i
  done;
  !found

(* Invalid ways are preferred regardless of policy; the replacement
   policy only arbitrates full sets. *)
let victim_way t set =
  let tags = t.tags.(set) in
  let invalid = ref (-1) in
  let i = ref 0 in
  while !invalid < 0 && !i < t.assoc do
    if tags.(!i) = -1 then invalid := !i;
    incr i
  done;
  if !invalid >= 0 then !invalid else Replacement.victim t.repl ~set

(* Install a tag, recording the victim line in [victim_addr]/
   [victim_dirty] ([victim_addr = -1]: no valid line displaced).
   Returns the way used.  [hint] is the replacement policy's fill hint
   (temperature for TRRIP; ignored by the others; -1 = none). *)
let install t set tag hint =
  let way = victim_way t set in
  let old_tag = t.tags.(set).(way) in
  if old_tag = -1 then t.victim_addr <- -1
  else begin
    let addr = ((old_tag * t.sets) + set) lsl t.line_shift in
    let was_dirty = t.dirty.(set).(way) in
    if was_dirty then t.writebacks <- t.writebacks + 1;
    t.victim_addr <- addr;
    t.victim_dirty <- was_dirty
  end;
  t.tags.(set).(way) <- tag;
  t.dirty.(set).(way) <- false;
  Replacement.on_fill t.repl ~set ~way ~hint;
  way

(* [~write]/[~hint] are plain labelled arguments, not optional: the hot
   path in Mem.Hierarchy passes runtime-computed values, and an optional
   argument would box them as [Some _] on every access. *)
let access_demand_hinted ~write ~hint t addr =
  (* set_and_tag, open-coded to skip the per-access pair allocation *)
  let line = addr lsr t.line_shift in
  let set = line mod t.sets and tag = line / t.sets in
  t.accesses <- t.accesses + 1;
  let way = find_way t set tag in
  if way >= 0 then begin
    t.hits <- t.hits + 1;
    Replacement.on_hit t.repl ~set ~way;
    if write then t.dirty.(set).(way) <- true;
    t.victim_addr <- -1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    t.fills <- t.fills + 1;
    let way = install t set tag hint in
    if write then t.dirty.(set).(way) <- true;
    false
  end

let access_demand ~write t addr = access_demand_hinted ~write ~hint:(-1) t addr

let victim_addr t = t.victim_addr
let victim_dirty t = t.victim_dirty

let access_evict ?(write = false) t addr =
  let hit = access_demand ~write t addr in
  let victim =
    if t.victim_addr = -1 then None else Some (t.victim_addr, t.victim_dirty)
  in
  (hit, victim)

let access ?(write = false) t addr = access_demand ~write t addr

let probe t addr =
  let line = addr lsr t.line_shift in
  find_way t (line mod t.sets) (line / t.sets) >= 0

let fill t addr =
  let line = addr lsr t.line_shift in
  let set = line mod t.sets and tag = line / t.sets in
  let way = find_way t set tag in
  if way >= 0 then begin
    Replacement.on_hit t.repl ~set ~way;
    (* The line was already resident: nothing was displaced.  Leaving
       the previous install's victim in place would let a caller absorb
       the same writeback twice. *)
    t.victim_addr <- -1
  end
  else begin
    t.fills <- t.fills + 1;
    t.prefetch_fills <- t.prefetch_fills + 1;
    ignore (install t set tag (-1))
  end

let invalidate_all t =
  Array.iter (fun ways -> Array.fill ways 0 t.assoc (-1)) t.tags;
  Array.iter (fun d -> Array.fill d 0 t.assoc false) t.dirty;
  Replacement.reset t.repl;
  t.victim_addr <- -1;
  t.victim_dirty <- false

let stats t =
  {
    accesses = t.accesses;
    hits = t.hits;
    misses = t.misses;
    fills = t.fills;
    prefetch_fills = t.prefetch_fills;
    writebacks = t.writebacks;
  }

let reset_stats t =
  t.accesses <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.fills <- 0;
  t.prefetch_fills <- 0;
  t.writebacks <- 0

let miss_rate t =
  if t.accesses = 0 then 0.0
  else float_of_int t.misses /. float_of_int t.accesses
