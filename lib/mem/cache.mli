(** Set-associative cache with true-LRU replacement.

    Tag state only — no data are stored, since the simulator never
    interprets values.  Access counters feed both the performance model
    (miss stalls) and the energy model (per-access energies). *)

type t

type stats = {
  accesses : int;
  hits : int;
  misses : int;
  fills : int;
  prefetch_fills : int;
  writebacks : int;  (** dirty lines evicted *)
}

val create :
  name:string -> size_bytes:int -> assoc:int -> line_bytes:int -> t
(** Geometry must be consistent: [size_bytes] divisible by
    [assoc * line_bytes], and [line_bytes] a power of two. *)

val name : t -> string
val line_bytes : t -> int
val sets : t -> int
val assoc : t -> int

val line_of : t -> int -> int
(** Line-aligned address of the line containing the byte address. *)

val access : ?write:bool -> t -> int -> bool
(** [access c addr] looks up the line; on a miss it fills it.  Returns
    [true] on hit.  Updates recency and counters; [write] (default
    false) marks the line dirty. *)

val access_evict : ?write:bool -> t -> int -> bool * (int * bool) option
(** Like {!access}, also reporting the victim when the fill evicted a
    valid line: [(line_address, was_dirty)].  Dirty evictions are what
    the next level must absorb as writebacks. *)

val access_demand : write:bool -> t -> int -> bool
(** Allocation-free {!access_evict}: same counter and replacement
    effects, returning only the hit flag.  The victim, if any, is left
    in {!victim_addr}/{!victim_dirty} until the next access.  [~write]
    is a required label (not optional) so runtime flags on the hot path
    never box an option. *)

val victim_addr : t -> int
(** Line address of the valid line displaced by the most recent
    {!access_demand} (or [fill]); [-1] when nothing was displaced. *)

val victim_dirty : t -> bool
(** Whether that victim was dirty.  Meaningless when
    [victim_addr c = -1]. *)

val probe : t -> int -> bool
(** Lookup without any state change or counting. *)

val fill : t -> int -> unit
(** Install a line (e.g. a prefetch) without counting an access. *)

val invalidate_all : t -> unit
val stats : t -> stats
val reset_stats : t -> unit

val miss_rate : t -> float
(** Misses per access; 0 when never accessed. *)
