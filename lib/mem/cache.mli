(** Set-associative cache with a pluggable replacement policy
    ({!Replacement}; true LRU by default).

    Tag state only — no data are stored, since the simulator never
    interprets values.  Access counters feed both the performance model
    (miss stalls) and the energy model (per-access energies). *)

type t

type stats = {
  accesses : int;
  hits : int;
  misses : int;
  fills : int;
  prefetch_fills : int;
  writebacks : int;  (** dirty lines evicted *)
}

val create :
  ?policy:Replacement.kind ->
  name:string ->
  size_bytes:int ->
  assoc:int ->
  line_bytes:int ->
  unit ->
  t
(** Geometry must be consistent: [size_bytes] divisible by
    [assoc * line_bytes], and [line_bytes] a power of two.  [policy]
    defaults to {!Replacement.Lru}, the historical behavior. *)

val name : t -> string
val line_bytes : t -> int
val sets : t -> int
val assoc : t -> int

val policy : t -> Replacement.kind

val line_of : t -> int -> int
(** Line-aligned address of the line containing the byte address. *)

val access : ?write:bool -> t -> int -> bool
(** [access c addr] looks up the line; on a miss it fills it.  Returns
    [true] on hit.  Updates replacement state and counters; [write]
    (default false) marks the line dirty. *)

val access_evict : ?write:bool -> t -> int -> bool * (int * bool) option
(** Like {!access}, also reporting the victim when the fill evicted a
    valid line: [(line_address, was_dirty)].  Dirty evictions are what
    the next level must absorb as writebacks. *)

val access_demand : write:bool -> t -> int -> bool
(** Allocation-free {!access_evict}: same counter and replacement
    effects, returning only the hit flag.  The victim, if any, is left
    in {!victim_addr}/{!victim_dirty} until the next access.  [~write]
    is a required label (not optional) so runtime flags on the hot path
    never box an option. *)

val access_demand_hinted : write:bool -> hint:int -> t -> int -> bool
(** {!access_demand} carrying a replacement fill hint: the block
    temperature for {!Replacement.Trrip} (0 hot .. 3 cold; negative =
    unknown).  Other policies ignore it; [access_demand] is this with
    [~hint:(-1)]. *)

val victim_addr : t -> int
(** Line address of the valid line displaced by the most recent
    {!access_demand} or {!fill}; [-1] when nothing was displaced. *)

val victim_dirty : t -> bool
(** Whether that victim was dirty.  Meaningless when
    [victim_addr c = -1]. *)

val probe : t -> int -> bool
(** Lookup without any state change or counting. *)

val fill : t -> int -> unit
(** Install a line (e.g. a prefetch) without counting an access.  Like
    an install on the demand path, the displaced line — if any — is
    reported through {!victim_addr}/{!victim_dirty} so the caller can
    absorb a dirty victim's writeback; when the line was already
    resident, {!victim_addr} is cleared. *)

val invalidate_all : t -> unit
(** Drop every line: tags, dirty bits, replacement state, and the
    pending victim report all return to the post-{!create} state. *)

val stats : t -> stats
val reset_stats : t -> unit

val miss_rate : t -> float
(** Misses per access; 0 when never accessed. *)
