type config = {
  channels : int;
  ranks_per_channel : int;
  banks_per_rank : int;
  row_bytes : int;
  tcl_cycles : int;
  trp_cycles : int;
  trcd_cycles : int;
  burst_cycles : int;
}

let default_config =
  {
    channels = 1;
    ranks_per_channel = 2;
    banks_per_rank = 8;
    row_bytes = 2048;
    tcl_cycles = 17;
    trp_cycles = 17;
    trcd_cycles = 17;
    burst_cycles = 4;
  }

type bank = { mutable open_row : int; mutable busy_until : int }

type stats = {
  reads : int;
  writes : int;
  row_hits : int;
  row_misses : int;
}

type t = {
  config : config;
  banks : bank array;
  mutable reads : int;
  mutable writes : int;
  mutable row_hits : int;
  mutable row_misses : int;
}

let create ?(config = default_config) () =
  let nbanks =
    config.channels * config.ranks_per_channel * config.banks_per_rank
  in
  {
    config;
    banks = Array.init nbanks (fun _ -> { open_row = -1; busy_until = 0 });
    reads = 0;
    writes = 0;
    row_hits = 0;
    row_misses = 0;
  }

let access t ~now ~write addr =
  let c = t.config in
  let nbanks = Array.length t.banks in
  let row_id = addr / c.row_bytes in
  (* Interleave rows across banks so streaming accesses spread out. *)
  let bank = t.banks.(row_id mod nbanks) in
  if write then t.writes <- t.writes + 1 else t.reads <- t.reads + 1;
  let start = max now bank.busy_until in
  let service =
    if bank.open_row = row_id then begin
      t.row_hits <- t.row_hits + 1;
      c.tcl_cycles + c.burst_cycles
    end
    else begin
      t.row_misses <- t.row_misses + 1;
      let precharge = if bank.open_row = -1 then 0 else c.trp_cycles in
      precharge + c.trcd_cycles + c.tcl_cycles + c.burst_cycles
    end
  in
  bank.open_row <- row_id;
  bank.busy_until <- start + service;
  (start - now) + service

let stats t =
  {
    reads = t.reads;
    writes = t.writes;
    row_hits = t.row_hits;
    row_misses = t.row_misses;
  }

let row_hit_rate t =
  let total = t.row_hits + t.row_misses in
  if total = 0 then 0.0 else float_of_int t.row_hits /. float_of_int total
