(** LPDDR3 main-memory timing model (DRAMSim2 substitute).

    Open-page policy over channel/rank/bank geometry from Table I of the
    paper: 1 channel, 2 ranks/channel, 8 banks/rank, with
    tCL = tRP = tRCD = 13 ns.  A row hit pays tCL + burst; a row miss
    pays tRP + tRCD + tCL + burst; bank busy times serialize back-to-back
    accesses to the same bank. *)

type t

type config = {
  channels : int;
  ranks_per_channel : int;
  banks_per_rank : int;
  row_bytes : int;       (** bytes covered by one open row *)
  tcl_cycles : int;      (** CAS latency, in CPU cycles *)
  trp_cycles : int;      (** precharge *)
  trcd_cycles : int;     (** activate *)
  burst_cycles : int;    (** data transfer for one cache line *)
}

val default_config : config
(** Table I values at a 1.3 GHz CPU clock: 13 ns ≈ 17 cycles for each of
    tCL/tRP/tRCD, 4-cycle burst. *)

type stats = {
  reads : int;
  writes : int;
  row_hits : int;
  row_misses : int;
}

val create : ?config:config -> unit -> t

val access : t -> now:int -> write:bool -> int -> int
(** [access t ~now ~write addr] returns the total latency (queueing
    included) of the access issued at cycle [now], and updates bank
    state. *)

val stats : t -> stats
val row_hit_rate : t -> float
