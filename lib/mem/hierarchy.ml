type config = {
  line_bytes : int;
  l1i_size : int;
  l1i_assoc : int;
  l1i_hit : int;
  l1d_size : int;
  l1d_assoc : int;
  l1d_hit : int;
  l2_size : int;
  l2_assoc : int;
  l2_hit : int;
  l2_prefetcher : bool;
  l1i_next_line : bool;
  dram : Dram.config;
}

let table_i =
  {
    line_bytes = 64;
    l1i_size = 32 * 1024;
    l1i_assoc = 2;
    l1i_hit = 2;
    l1d_size = 64 * 1024;
    l1d_assoc = 4;
    l1d_hit = 2;
    l2_size = 2 * 1024 * 1024;
    l2_assoc = 8;
    l2_hit = 10;
    l2_prefetcher = true;
    l1i_next_line = true;
    dram = Dram.default_config;
  }

type level = L1 | L2 | Main

type outcome = { level : level; latency : int }

type t = {
  config : config;
  l1i : Cache.t;
  l1d : Cache.t;
  l2 : Cache.t;
  dram : Dram.t;
  prefetcher : Stride_prefetcher.t option;
  (* In-flight fills per cache: line address -> cycle the line becomes
     usable.  Entries are installed by prefetches and consumed (or
     expired) by demand accesses. *)
  pending_l1i : (int, int) Hashtbl.t;
  pending_l1d : (int, int) Hashtbl.t;
  pending_l2 : (int, int) Hashtbl.t;
}

let create config =
  {
    config;
    l1i =
      Cache.create ~name:"l1i" ~size_bytes:config.l1i_size
        ~assoc:config.l1i_assoc ~line_bytes:config.line_bytes;
    l1d =
      Cache.create ~name:"l1d" ~size_bytes:config.l1d_size
        ~assoc:config.l1d_assoc ~line_bytes:config.line_bytes;
    l2 =
      Cache.create ~name:"l2" ~size_bytes:config.l2_size
        ~assoc:config.l2_assoc ~line_bytes:config.line_bytes;
    dram = Dram.create ~config:config.dram ();
    prefetcher =
      (if config.l2_prefetcher then Some (Stride_prefetcher.create ())
       else None);
    pending_l1i = Hashtbl.create 64;
    pending_l1d = Hashtbl.create 64;
    pending_l2 = Hashtbl.create 64;
  }

let config t = t.config

(* If a prefetch for [line] is in flight, the demand access waits for the
   remaining cycles instead of redoing the whole miss path. *)
let pending_wait pending cache ~now line =
  match Hashtbl.find_opt pending line with
  | None -> None
  | Some ready ->
    Hashtbl.remove pending line;
    Cache.fill cache line;
    Some (max 0 (ready - now))

(* A dirty line displaced from the L2 drains to DRAM through the write
   buffer: it consumes DRAM bandwidth but is off the load's critical
   path, so no latency is charged to the demand access. *)
let absorb_l2_victim t ~now = function
  | Some (addr, true) -> ignore (Dram.access t.dram ~now ~write:true addr)
  | Some (_, false) | None -> ()

(* L2 lookup (with DRAM fallback) shared by both L1 miss paths.
   Returns (level, cycles beyond the L1 hit time). *)
let l2_path t ~now ~write line =
  let c = t.config in
  match pending_wait t.pending_l2 t.l2 ~now line with
  | Some wait -> (L2, c.l2_hit + wait)
  | None ->
    let hit, victim = Cache.access_evict t.l2 line in
    absorb_l2_victim t ~now victim;
    if hit then (L2, c.l2_hit)
    else
      let dram_lat =
        Dram.access t.dram ~now:(now + c.l2_hit) ~write line
      in
      (Main, c.l2_hit + dram_lat)

(* A dirty L1d victim writes back into the L2 (again off the critical
   path); the L2 may in turn displace a dirty line of its own. *)
let absorb_l1d_victim t ~now = function
  | Some (addr, true) ->
    let _, victim = Cache.access_evict ~write:true t.l2 addr in
    absorb_l2_victim t ~now victim
  | Some (_, false) | None -> ()

let train_prefetcher t ~now ~pc line =
  match t.prefetcher with
  | None -> ()
  | Some p ->
    let addrs = Stride_prefetcher.observe p ~pc ~addr:line in
    List.iter
      (fun addr ->
        let pline = Cache.line_of t.l2 addr in
        if
          (not (Cache.probe t.l2 pline))
          && not (Hashtbl.mem t.pending_l2 pline)
        then begin
          let lat = Dram.access t.dram ~now ~write:false pline in
          Hashtbl.replace t.pending_l2 pline (now + lat)
        end)
      addrs

let demand_access t ~now ~pc ~write ~l1 ~l1_hit ~pending addr =
  let line = Cache.line_of l1 addr in
  let is_data = l1 == t.l1d in
  let absorb victim = if is_data then absorb_l1d_victim t ~now victim in
  match pending_wait pending l1 ~now line with
  | Some wait ->
    let _, victim = Cache.access_evict ~write l1 line in
    absorb victim;
    { level = L1; latency = l1_hit + wait }
  | None ->
    let hit, victim = Cache.access_evict ~write l1 line in
    absorb victim;
    if hit then { level = L1; latency = l1_hit }
    else begin
      let level, beyond = l2_path t ~now ~write:false line in
      if level = Main then train_prefetcher t ~now ~pc line;
      { level; latency = l1_hit + beyond }
    end

let prefetch ~l1 ~pending t ~now ~write addr =
  let line = Cache.line_of l1 addr in
  if (not (Cache.probe l1 line)) && not (Hashtbl.mem pending line) then begin
    let _, beyond = l2_path t ~now ~write line in
    Hashtbl.replace pending line (now + beyond)
  end

let ifetch t ~now addr =
  let o =
    demand_access t ~now ~pc:addr ~write:false ~l1:t.l1i
      ~l1_hit:t.config.l1i_hit ~pending:t.pending_l1i addr
  in
  if t.config.l1i_next_line then
    prefetch ~l1:t.l1i ~pending:t.pending_l1i t ~now ~write:false
      (addr + t.config.line_bytes);
  o

let dread t ~now ~pc addr =
  demand_access t ~now ~pc ~write:false ~l1:t.l1d ~l1_hit:t.config.l1d_hit
    ~pending:t.pending_l1d addr

let dwrite t ~now ~pc addr =
  demand_access t ~now ~pc ~write:true ~l1:t.l1d ~l1_hit:t.config.l1d_hit
    ~pending:t.pending_l1d addr

let prefetch_i t ~now addr =
  prefetch ~l1:t.l1i ~pending:t.pending_l1i t ~now ~write:false addr

let prefetch_d t ~now ~pc addr =
  ignore pc;
  prefetch ~l1:t.l1d ~pending:t.pending_l1d t ~now ~write:false addr

let touch_i t addr =
  let line = Cache.line_of t.l1i addr in
  Cache.fill t.l1i line;
  Cache.fill t.l2 line

let touch_d t addr =
  let line = Cache.line_of t.l1d addr in
  Cache.fill t.l1d line;
  Cache.fill t.l2 line

let l1i_stats t = Cache.stats t.l1i
let l1d_stats t = Cache.stats t.l1d
let l2_stats t = Cache.stats t.l2
let dram_stats t = Dram.stats t.dram
