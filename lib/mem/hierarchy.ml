type iprefetch = Ip_none | Ip_next_line | Ip_fetch_directed

let iprefetch_name = function
  | Ip_none -> "none"
  | Ip_next_line -> "next_line"
  | Ip_fetch_directed -> "fetch_directed"

let iprefetch_of_string = function
  | "none" -> Some Ip_none
  | "next_line" -> Some Ip_next_line
  | "fetch_directed" -> Some Ip_fetch_directed
  | _ -> None

let all_iprefetch = [ Ip_none; Ip_next_line; Ip_fetch_directed ]

type config = {
  line_bytes : int;
  l1i_size : int;
  l1i_assoc : int;
  l1i_hit : int;
  l1d_size : int;
  l1d_assoc : int;
  l1d_hit : int;
  l2_size : int;
  l2_assoc : int;
  l2_hit : int;
  l2_prefetcher : bool;
  l1i_policy : Replacement.kind;
  l1i_prefetch : iprefetch;
  l1i_opportunity : bool;
  dram : Dram.config;
}

let table_i =
  {
    line_bytes = 64;
    l1i_size = 32 * 1024;
    l1i_assoc = 2;
    l1i_hit = 2;
    l1d_size = 64 * 1024;
    l1d_assoc = 4;
    l1d_hit = 2;
    l2_size = 2 * 1024 * 1024;
    l2_assoc = 8;
    l2_hit = 10;
    l2_prefetcher = true;
    l1i_policy = Replacement.Lru;
    l1i_prefetch = Ip_next_line;
    l1i_opportunity = false;
    dram = Dram.default_config;
  }

type level = L1 | L2 | Main

type outcome = { level : level; latency : int }

type t = {
  config : config;
  l1i : Cache.t;
  l1d : Cache.t;
  l2 : Cache.t;
  dram : Dram.t;
  prefetcher : Stride_prefetcher.t option;
  (* In-flight fills per cache: line address -> cycle the line becomes
     usable.  Entries are installed by prefetches and consumed (or
     expired) by demand accesses. *)
  pending_l1i : (int, int) Hashtbl.t;
  pending_l1d : (int, int) Hashtbl.t;
  pending_l2 : (int, int) Hashtbl.t;
  (* Level that served the most recent demand access, readable without
     allocating an [outcome] record (the pipeline only needs the
     latency; the record API below is a wrapper over this field). *)
  mutable last_level : level;
  (* Fetch-directed i-prefetch: a single stride detector over the
     demand-fetch line stream (the i-side analogue of the per-pc CLPT
     entry — fetch lines form one stream, so one detector suffices). *)
  mutable fd_last_line : int;
  mutable fd_stride : int;
  mutable fd_conf : int;
  (* Prefetch-opportunity characterization (Zhao-style upper bound):
     of the i-fetch line transitions that miss the L1i, how many went
     to the line a last-successor predictor trained on prior fetch
     history would have named?  Purely observational; only maintained
     when [config.l1i_opportunity]. *)
  mutable opp_prev_line : int;
  opp_succ : (int, int) Hashtbl.t;
  mutable opp_misses : int;
  mutable opp_predictable : int;
}

let create config =
  {
    config;
    l1i =
      Cache.create ~policy:config.l1i_policy ~name:"l1i"
        ~size_bytes:config.l1i_size ~assoc:config.l1i_assoc
        ~line_bytes:config.line_bytes ();
    l1d =
      Cache.create ~name:"l1d" ~size_bytes:config.l1d_size
        ~assoc:config.l1d_assoc ~line_bytes:config.line_bytes ();
    l2 =
      Cache.create ~name:"l2" ~size_bytes:config.l2_size
        ~assoc:config.l2_assoc ~line_bytes:config.line_bytes ();
    dram = Dram.create ~config:config.dram ();
    prefetcher =
      (if config.l2_prefetcher then Some (Stride_prefetcher.create ())
       else None);
    pending_l1i = Hashtbl.create 64;
    pending_l1d = Hashtbl.create 64;
    pending_l2 = Hashtbl.create 64;
    last_level = L1;
    fd_last_line = -1;
    fd_stride = 0;
    fd_conf = 0;
    opp_prev_line = -1;
    opp_succ = Hashtbl.create 256;
    opp_misses = 0;
    opp_predictable = 0;
  }

let config t = t.config

(* If a prefetch for [line] is in flight, the demand access waits for the
   remaining cycles instead of redoing the whole miss path.  -1 means no
   fill was pending (an exception match instead of [find_opt] so the
   per-access path never allocates a [Some]).  On consumption the fill
   installs into [cache] and may displace a dirty line: the caller must
   absorb that victim before its next access clears the report. *)
let pending_wait pending cache ~now line =
  match Hashtbl.find pending line with
  | exception Not_found -> -1
  | ready ->
    Hashtbl.remove pending line;
    Cache.fill cache line;
    max 0 (ready - now)

(* A dirty line displaced from the L2 drains to DRAM through the write
   buffer: it consumes DRAM bandwidth but is off the load's critical
   path, so no latency is charged to the demand access.  Reads the L2's
   victim fields, so it must run before the next L2 access. *)
let absorb_l2_victim t ~now =
  if Cache.victim_addr t.l2 >= 0 && Cache.victim_dirty t.l2 then
    ignore (Dram.access t.dram ~now ~write:true (Cache.victim_addr t.l2))

(* L2 lookup (with DRAM fallback) shared by both L1 miss paths.
   Returns cycles beyond the L1 hit time and records the serving level
   in [last_level]. *)
let l2_path t ~now ~write line =
  let c = t.config in
  let wait = pending_wait t.pending_l2 t.l2 ~now line in
  if wait >= 0 then begin
    (* The consumed fill may itself have displaced a dirty L2 line. *)
    absorb_l2_victim t ~now;
    t.last_level <- L2;
    c.l2_hit + wait
  end
  else begin
    let hit = Cache.access_demand ~write:false t.l2 line in
    absorb_l2_victim t ~now;
    if hit then begin
      t.last_level <- L2;
      c.l2_hit
    end
    else begin
      t.last_level <- Main;
      c.l2_hit + Dram.access t.dram ~now:(now + c.l2_hit) ~write line
    end
  end

(* A dirty L1d victim writes back into the L2 (again off the critical
   path); the L2 may in turn displace a dirty line of its own.  Reads
   [l1]'s victim fields, so it must run before the next access to that
   cache; i-side victims are clean by construction and ignored. *)
let absorb_l1_victim t ~now ~is_data l1 =
  if is_data && Cache.victim_addr l1 >= 0 && Cache.victim_dirty l1 then begin
    let addr = Cache.victim_addr l1 in
    ignore (Cache.access_demand ~write:true t.l2 addr);
    absorb_l2_victim t ~now
  end

let train_prefetcher t ~now ~pc line =
  match t.prefetcher with
  | None -> ()
  | Some p ->
    let addrs = Stride_prefetcher.observe p ~pc ~addr:line in
    List.iter
      (fun addr ->
        let pline = Cache.line_of t.l2 addr in
        if
          (not (Cache.probe t.l2 pline))
          && not (Hashtbl.mem t.pending_l2 pline)
        then begin
          let lat = Dram.access t.dram ~now ~write:false pline in
          Hashtbl.replace t.pending_l2 pline (now + lat)
        end)
      addrs

(* Latency-only demand access: the serving level lands in [last_level],
   nothing is allocated.  The [outcome]-returning API below wraps it.
   [hint] is the L1's replacement fill hint (block temperature for
   TRRIP; -1 = none). *)
let demand_lat t ~now ~pc ~write ~hint ~l1 ~l1_hit ~pending addr =
  let line = Cache.line_of l1 addr in
  let is_data = l1 == t.l1d in
  let wait = pending_wait pending l1 ~now line in
  if wait >= 0 then begin
    (* Absorb the consumed fill's victim before the hit below clears
       the victim report. *)
    absorb_l1_victim t ~now ~is_data l1;
    ignore (Cache.access_demand_hinted ~write ~hint l1 line);
    t.last_level <- L1;
    l1_hit + wait
  end
  else begin
    let hit = Cache.access_demand_hinted ~write ~hint l1 line in
    absorb_l1_victim t ~now ~is_data l1;
    if hit then begin
      t.last_level <- L1;
      l1_hit
    end
    else begin
      let beyond = l2_path t ~now ~write:false line in
      if t.last_level = Main then train_prefetcher t ~now ~pc line;
      l1_hit + beyond
    end
  end

let prefetch ~l1 ~pending t ~now ~write addr =
  let line = Cache.line_of l1 addr in
  if (not (Cache.probe l1 line)) && not (Hashtbl.mem pending line) then begin
    let beyond = l2_path t ~now ~write line in
    Hashtbl.replace pending line (now + beyond)
  end

(* Observe a demand-fetch line for the Zhao-style opportunity bound: a
   transition that misses counts as predictable when the last-successor
   table already mapped the previous line to this one.  Runs before the
   demand access so residency is judged pre-fill. *)
let opportunity_observe t line =
  if line <> t.opp_prev_line then begin
    if
      (not (Cache.probe t.l1i line)) && not (Hashtbl.mem t.pending_l1i line)
    then begin
      t.opp_misses <- t.opp_misses + 1;
      match Hashtbl.find t.opp_succ t.opp_prev_line with
      | exception Not_found -> ()
      | succ -> if succ = line then t.opp_predictable <- t.opp_predictable + 1
    end;
    if t.opp_prev_line >= 0 then Hashtbl.replace t.opp_succ t.opp_prev_line line;
    t.opp_prev_line <- line
  end

(* Fetch-directed prefetch: train the stride detector on the demand
   line stream and, at confidence, run two strides ahead of the fetch
   front (same threshold/saturation discipline as Stride_prefetcher). *)
let fetch_directed t ~now line =
  if line <> t.fd_last_line then begin
    if t.fd_last_line >= 0 then begin
      let stride = line - t.fd_last_line in
      if stride = t.fd_stride then begin
        if t.fd_conf < 3 then t.fd_conf <- t.fd_conf + 1
      end
      else begin
        t.fd_stride <- stride;
        t.fd_conf <- 1
      end
    end;
    t.fd_last_line <- line;
    if t.fd_conf >= 2 && t.fd_stride <> 0 then begin
      prefetch ~l1:t.l1i ~pending:t.pending_l1i t ~now ~write:false
        (line + t.fd_stride);
      prefetch ~l1:t.l1i ~pending:t.pending_l1i t ~now ~write:false
        (line + (2 * t.fd_stride))
    end
  end

let ifetch_lat_hinted t ~now ~hint addr =
  if t.config.l1i_opportunity then
    opportunity_observe t (Cache.line_of t.l1i addr);
  let lat =
    demand_lat t ~now ~pc:addr ~write:false ~hint ~l1:t.l1i
      ~l1_hit:t.config.l1i_hit ~pending:t.pending_l1i addr
  in
  (match t.config.l1i_prefetch with
  | Ip_none -> ()
  | Ip_next_line ->
    (* The prefetch's own L2 walk must not clobber the demand level. *)
    let level = t.last_level in
    prefetch ~l1:t.l1i ~pending:t.pending_l1i t ~now ~write:false
      (addr + t.config.line_bytes);
    t.last_level <- level
  | Ip_fetch_directed ->
    let level = t.last_level in
    fetch_directed t ~now (Cache.line_of t.l1i addr);
    t.last_level <- level);
  lat

let ifetch_lat t ~now addr = ifetch_lat_hinted t ~now ~hint:(-1) addr

let dread_lat t ~now ~pc addr =
  demand_lat t ~now ~pc ~write:false ~hint:(-1) ~l1:t.l1d
    ~l1_hit:t.config.l1d_hit ~pending:t.pending_l1d addr

let dwrite_lat t ~now ~pc addr =
  demand_lat t ~now ~pc ~write:true ~hint:(-1) ~l1:t.l1d
    ~l1_hit:t.config.l1d_hit ~pending:t.pending_l1d addr

let last_level t = t.last_level

let ifetch t ~now addr =
  let latency = ifetch_lat t ~now addr in
  { level = t.last_level; latency }

let dread t ~now ~pc addr =
  let latency = dread_lat t ~now ~pc addr in
  { level = t.last_level; latency }

let dwrite t ~now ~pc addr =
  let latency = dwrite_lat t ~now ~pc addr in
  { level = t.last_level; latency }

let prefetch_i t ~now addr =
  prefetch ~l1:t.l1i ~pending:t.pending_l1i t ~now ~write:false addr

let prefetch_d t ~now ~pc addr =
  ignore pc;
  prefetch ~l1:t.l1d ~pending:t.pending_l1d t ~now ~write:false addr

let touch_i t addr =
  let line = Cache.line_of t.l1i addr in
  Cache.fill t.l1i line;
  Cache.fill t.l2 line

let touch_d t addr =
  let line = Cache.line_of t.l1d addr in
  Cache.fill t.l1d line;
  Cache.fill t.l2 line

let invalidate_all t =
  Cache.invalidate_all t.l1i;
  Cache.invalidate_all t.l1d;
  Cache.invalidate_all t.l2;
  Hashtbl.reset t.pending_l1i;
  Hashtbl.reset t.pending_l1d;
  Hashtbl.reset t.pending_l2;
  t.fd_last_line <- -1;
  t.fd_stride <- 0;
  t.fd_conf <- 0;
  t.opp_prev_line <- -1

let iopp_misses t = t.opp_misses
let iopp_predictable t = t.opp_predictable

let l1i_stats t = Cache.stats t.l1i
let l1d_stats t = Cache.stats t.l1d
let l2_stats t = Cache.stats t.l2
let dram_stats t = Dram.stats t.dram
