(** The full memory hierarchy of the simulated SoC: split L1 (i-cache /
    d-cache), unified L2 with the CLPT stride prefetcher, and LPDDR3
    DRAM.  Latencies are returned to the pipeline; access counts feed the
    energy model.

    Prefetches fill asynchronously: a prefetched line becomes usable only
    once its miss path would have completed, and a demand access arriving
    earlier pays the remaining cycles.

    The i-side is a policy laboratory: the L1i replacement policy
    ({!Replacement.kind}) and the instruction prefetcher ({!iprefetch})
    are both configurable, and an opt-in opportunity mode characterizes
    how predictable i-cache misses were from prior fetch history. *)

type t

type iprefetch =
  | Ip_none  (** no instruction prefetch *)
  | Ip_next_line
      (** next-line prefetch on i-cache accesses — standard on the
          Cortex-class cores the paper targets *)
  | Ip_fetch_directed
      (** stride-on-fetch: a stride detector over the demand fetch-line
          stream runs two lines ahead at confidence *)

val iprefetch_name : iprefetch -> string
val iprefetch_of_string : string -> iprefetch option
val all_iprefetch : iprefetch list

type config = {
  line_bytes : int;
  l1i_size : int;
  l1i_assoc : int;
  l1i_hit : int;   (** i-cache hit latency, cycles *)
  l1d_size : int;
  l1d_assoc : int;
  l1d_hit : int;
  l2_size : int;
  l2_assoc : int;
  l2_hit : int;
  l2_prefetcher : bool;  (** the CLPT stride prefetcher of Table I *)
  l1i_policy : Replacement.kind;  (** L1i replacement policy *)
  l1i_prefetch : iprefetch;
  l1i_opportunity : bool;
      (** maintain the Zhao-style prefetch-opportunity counters
          ({!iopp_misses} / {!iopp_predictable}); off by default so the
          demand path stays untouched *)
  dram : Dram.config;
}

val table_i : config
(** Table I baseline: 2-way 32 KB i-cache and 64 KB d-cache with 2-cycle
    hits; 8-way 2 MB L2 with 10-cycle hits and the CLPT prefetcher;
    LPDDR3 DRAM.  LRU everywhere, next-line i-prefetch. *)

type level = L1 | L2 | Main

type outcome = { level : level; latency : int }
(** [level] is where the demand access was served; [latency] is the
    total cycles until data return. *)

val create : config -> t
val config : t -> config

val ifetch : t -> now:int -> int -> outcome
(** Instruction fetch of the line containing the address. *)

val dread : t -> now:int -> pc:int -> int -> outcome
(** Demand data read ([pc] trains the L2 prefetcher). *)

val dwrite : t -> now:int -> pc:int -> int -> outcome

val ifetch_lat : t -> now:int -> int -> int
(** Allocation-free {!ifetch}: same state effects, returning only the
    latency.  The serving level is left in {!last_level}. *)

val ifetch_lat_hinted : t -> now:int -> hint:int -> int -> int
(** {!ifetch_lat} carrying the fetched block's temperature (0 hot ..
    3 cold; negative = unknown) as the L1i replacement fill hint —
    the TRRIP feedback path.  [ifetch_lat] is this with [~hint:(-1)]. *)

val dread_lat : t -> now:int -> pc:int -> int -> int
val dwrite_lat : t -> now:int -> pc:int -> int -> int

val last_level : t -> level
(** Level that served the most recent demand access. *)

val prefetch_i : t -> now:int -> int -> unit
(** Start an instruction-side prefetch into the i-cache (EFetch). *)

val prefetch_d : t -> now:int -> pc:int -> int -> unit
(** Start a data-side prefetch into the d-cache (critical-load
    prefetching baseline). *)

val touch_i : t -> int -> unit
(** Install the line containing the address into i-cache and L2 without
    counting statistics — used to warm the hierarchy to steady state
    before measurement (the paper measures minutes-old app executions,
    not cold starts). *)

val touch_d : t -> int -> unit

val invalidate_all : t -> unit
(** Drop all cached state: every line (and dirty bit) in all three
    caches, all in-flight prefetches, and the fetch-history state of
    the fetch-directed prefetcher and opportunity tracker.  A
    warmed-then-invalidated hierarchy produces no phantom writebacks.
    Statistics counters are left untouched. *)

val iopp_misses : t -> int
(** Opportunity mode: i-fetch line transitions that missed the L1i
    (0 unless [config.l1i_opportunity]). *)

val iopp_predictable : t -> int
(** Of {!iopp_misses}, those whose line a last-successor predictor over
    prior fetch history would have named — the Zhao-style upper bound
    on what history-based instruction prefetching could cover. *)

val l1i_stats : t -> Cache.stats
val l1d_stats : t -> Cache.stats
val l2_stats : t -> Cache.stats
val dram_stats : t -> Dram.stats
