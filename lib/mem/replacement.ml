type kind = Lru | Srrip | Brrip | Trrip

let kind_name = function
  | Lru -> "lru"
  | Srrip -> "srrip"
  | Brrip -> "brrip"
  | Trrip -> "trrip"

let kind_of_string = function
  | "lru" -> Some Lru
  | "srrip" -> Some Srrip
  | "brrip" -> Some Brrip
  | "trrip" -> Some Trrip
  | _ -> None

let all_kinds = [ Lru; Srrip; Brrip; Trrip ]

(* 2-bit RRPVs for the whole RRIP family. *)
let rrpv_max = 3

(* SRRIP/TRRIP fills predict a "long" re-reference interval. *)
let rrpv_long = rrpv_max - 1

(* BRRIP inserts at long only once per this many fills (deterministic
   counter in place of the usual PRNG so runs replay exactly). *)
let brrip_period = 32

type t = {
  kind : kind;
  assoc : int;
  (* state.(set).(way): LRU recency stamp (larger = more recent) or
     RRIP RRPV (0 = near-immediate .. 3 = distant). *)
  state : int array array;
  mutable clock : int;     (* Lru only *)
  mutable fill_seq : int;  (* Brrip only *)
}

let initial_state = function Lru -> 0 | Srrip | Brrip | Trrip -> rrpv_max

let create kind ~sets ~assoc =
  if sets <= 0 || assoc <= 0 then
    invalid_arg "Replacement.create: geometry must be positive";
  {
    kind;
    assoc;
    state = Array.init sets (fun _ -> Array.make assoc (initial_state kind));
    clock = 0;
    fill_seq = 0;
  }

let kind t = t.kind

let on_hit t ~set ~way =
  match t.kind with
  | Lru ->
    t.clock <- t.clock + 1;
    t.state.(set).(way) <- t.clock
  | Srrip | Brrip | Trrip -> t.state.(set).(way) <- 0

let on_fill t ~set ~way ~hint =
  match t.kind with
  | Lru ->
    t.clock <- t.clock + 1;
    t.state.(set).(way) <- t.clock
  | Srrip -> t.state.(set).(way) <- rrpv_long
  | Brrip ->
    t.fill_seq <- t.fill_seq + 1;
    t.state.(set).(way) <-
      (if t.fill_seq mod brrip_period = 0 then rrpv_long else rrpv_max)
  | Trrip ->
    t.state.(set).(way) <-
      (if hint < 0 then rrpv_long
       else if hint > rrpv_max then rrpv_max
       else hint)

(* Allocation-free scans, same discipline as Cache.find_way: plain
   loops over mutable locals, no closures on the per-miss path. *)
let victim t ~set =
  let st = t.state.(set) in
  match t.kind with
  | Lru ->
    (* First way holding the strictly smallest stamp — the exact scan
       the historical cache used, so LRU victims are bit-identical. *)
    let best = ref 0 in
    for i = 0 to t.assoc - 1 do
      if st.(i) < st.(!best) then best := i
    done;
    !best
  | Srrip | Brrip | Trrip ->
    (* First way already at distant; otherwise age every way and
       rescan.  Terminates in at most rrpv_max rounds. *)
    let found = ref (-1) in
    while !found < 0 do
      let i = ref 0 in
      while !found < 0 && !i < t.assoc do
        if st.(!i) = rrpv_max then found := !i;
        incr i
      done;
      if !found < 0 then
        for i = 0 to t.assoc - 1 do
          st.(i) <- st.(i) + 1
        done
    done;
    !found

let reset t =
  let init = initial_state t.kind in
  Array.iter (fun st -> Array.fill st 0 t.assoc init) t.state;
  t.clock <- 0;
  t.fill_seq <- 0
