(** Pluggable cache-replacement policies.

    A policy owns one small integer of state per (set, way) — an LRU
    recency stamp or an RRIP re-reference prediction value — and three
    hooks the cache calls on its behalf: {!on_hit} when a resident line
    is referenced, {!on_fill} when a line is installed, and {!victim}
    when every way of a set is valid and one must be displaced.
    Invalid-way preference stays in {!Cache}: [victim] is only
    consulted for full sets.

    Implemented kinds:

    - [Lru] — true LRU via a global clock; bit-identical to the
      historical hard-coded policy (golden digests depend on this).
    - [Srrip] — static RRIP with 2-bit RRPVs (Jaleel et al.): fills
      predict a {e long} re-reference interval (RRPV 2), hits promote
      to {e near-immediate} (0), victims are found by aging every way
      until one reaches {e distant} (3).
    - [Brrip] — bimodal RRIP: like SRRIP but most fills predict
      {e distant} (3); every 32nd fill predicts {e long} (2).  The
      1/32 throttle is a deterministic fill counter, not a PRNG, so
      simulations replay exactly.
    - [Trrip] — temperature RRIP ("A TRRIP Down Memory Lane"): the
      fill RRPV comes from a per-block temperature hint supplied by the
      profiler (0 hot … 3 cold; negative = unknown, treated as SRRIP's
      long).  Hits promote to 0 as usual. *)

type kind = Lru | Srrip | Brrip | Trrip

val kind_name : kind -> string
(** ["lru"], ["srrip"], ["brrip"], ["trrip"]. *)

val kind_of_string : string -> kind option
val all_kinds : kind list

type t

val create : kind -> sets:int -> assoc:int -> t
val kind : t -> kind

val on_hit : t -> set:int -> way:int -> unit

val on_fill : t -> set:int -> way:int -> hint:int -> unit
(** [hint] is a temperature in 0..3 (0 hottest) or negative for
    unknown.  Only [Trrip] reads it. *)

val victim : t -> set:int -> int
(** Way to displace.  Precondition: every way of [set] holds a valid
    line (the cache prefers invalid ways without consulting the
    policy). *)

val reset : t -> unit
(** Return all per-set state (and the LRU clock / BRRIP fill counter)
    to the post-{!create} value. *)
