type entry = {
  mutable tag : int;
  mutable last_addr : int;
  mutable stride : int;
  mutable confidence : int;
}

type t = {
  entries : entry array;
  degree : int;
  mutable issued : int;
}

let confidence_max = 3
let confidence_threshold = 2

let create ?(entries = 1024) ?(degree = 1) () =
  {
    entries =
      Array.init entries (fun _ ->
          { tag = -1; last_addr = 0; stride = 0; confidence = 0 });
    degree;
    issued = 0;
  }

let observe t ~pc ~addr =
  let e = t.entries.(pc mod Array.length t.entries) in
  if e.tag <> pc then begin
    e.tag <- pc;
    e.last_addr <- addr;
    e.stride <- 0;
    e.confidence <- 0;
    []
  end
  else begin
    let stride = addr - e.last_addr in
    if stride <> 0 && stride = e.stride then
      e.confidence <- min confidence_max (e.confidence + 1)
    else e.confidence <- 0;
    e.stride <- stride;
    e.last_addr <- addr;
    if e.confidence >= confidence_threshold then begin
      let addrs =
        List.init t.degree (fun i -> addr + (stride * (i + 1)))
      in
      t.issued <- t.issued + List.length addrs;
      addrs
    end
    else []
  end

let issued t = t.issued
