(** PC-indexed stride prefetcher — the "CLPT prefetcher
    (1024 × 7 bits entries)" attached to the L2 in Table I.

    Each table entry tracks the last address and last stride observed for
    one load PC with a small confidence counter; once confidence is
    established, the next line is prefetched into the target cache. *)

type t

val create : ?entries:int -> ?degree:int -> unit -> t
(** [entries] defaults to 1024, [degree] (lines prefetched ahead) to 1. *)

val observe : t -> pc:int -> addr:int -> int list
(** [observe t ~pc ~addr] trains on a demand access and returns the
    addresses to prefetch (empty while confidence is low). *)

val issued : t -> int
(** Total prefetch addresses returned so far. *)
