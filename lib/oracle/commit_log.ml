(* Canonical architectural commit log produced by the golden-model
   interpreter (Interp).  The log has two granularities:

   - [entries]: one entry per dynamic instruction in program order,
     carrying the architectural effects (register writes with values,
     memory reads/writes with addresses and values, branch outcomes).
     This is what the differential harness lines up against the cycle
     simulator's retirement stream.

   - [block_digests]: one 64-bit digest per executed block instance,
     folding the end-of-block register file, the multiset of memory
     writes performed inside the block, and the control decision that
     left it.  The multiset (not sequence) of stores makes the digest
     invariant under the legal intra-block reorderings the compiler
     passes perform, while remaining sensitive to any dataflow change —
     this is the equivalence the transform fuzzer checks. *)

type value = int64

type effect_ =
  | Reg_write of { reg : int; value : value }
  | Mem_read of { addr : int; value : value }
  | Mem_write of { addr : int; value : value }
  | Branch_out of { taken : bool }

type entry = {
  seq : int;
  uid : int;
  pc : int;
  block_id : int;
  opcode : Isa.Opcode.t;
  effects : effect_ list;
}

type t = {
  entries : entry array;
  block_digests : int64 array;
  final_regs : value array;
  digest : int64;
}

(* SplitMix64 finalizer: the one deterministic value-mixing function the
   whole oracle is built on. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let golden = 0x9E3779B97F4A7C15L

(* Non-commutative combine: order matters. *)
let mix2 a b = mix64 (Int64.add (mix64 a) (Int64.mul golden b))
let mix_int a i = mix2 a (Int64.of_int i)

let effect_digest acc = function
  | Reg_write { reg; value } -> mix2 (mix_int acc (reg + 1)) value
  | Mem_read { addr; value } -> mix2 (mix_int acc (-addr - 1)) value
  | Mem_write { addr; value } -> mix2 (mix_int acc (addr + 1)) value
  | Branch_out { taken } -> mix_int acc (if taken then 3 else 5)

let entry_digest e =
  let acc = mix_int (mix_int (Int64.of_int e.seq) e.uid) e.pc in
  List.fold_left effect_digest acc e.effects

let log_digest entries final_regs =
  let acc = Array.fold_left (fun acc e -> mix2 acc (entry_digest e)) 1L entries in
  Array.fold_left mix2 acc final_regs

let make ~entries ~block_digests ~final_regs =
  { entries; block_digests; final_regs;
    digest = log_digest entries final_regs }

let num_entries t = Array.length t.entries

let mem_addr_of_entry e =
  List.fold_left
    (fun acc eff ->
      match eff with
      | Mem_read { addr; _ } | Mem_write { addr; _ } -> addr
      | Reg_write _ | Branch_out _ -> acc)
    (-1) e.effects

let taken_of_entry e =
  List.fold_left
    (fun acc eff ->
      match eff with Branch_out { taken } -> taken | _ -> acc)
    false e.effects

(* ----------------------------- printing --------------------------- *)

let pp_effect fmt = function
  | Reg_write { reg; value } ->
    Format.fprintf fmt "r%d := %Lx" reg value
  | Mem_read { addr; value } -> Format.fprintf fmt "load [%#x] = %Lx" addr value
  | Mem_write { addr; value } ->
    Format.fprintf fmt "store [%#x] <- %Lx" addr value
  | Branch_out { taken } ->
    Format.fprintf fmt "branch %s" (if taken then "taken" else "not-taken")

let pp_entry fmt e =
  Format.fprintf fmt "#%d uid=%d pc=%#x blk=%d %a [%a]" e.seq e.uid e.pc
    e.block_id Isa.Opcode.pp e.opcode
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ")
       pp_effect)
    e.effects

let entry_to_string e = Format.asprintf "%a" pp_entry e

(* ---------------------------- comparison -------------------------- *)

type divergence = {
  at : int;             (* index into the diverging stream *)
  expected : string;    (* description from the first log *)
  got : string;         (* description from the second log *)
}

let arch_equivalent a b =
  a.block_digests = b.block_digests && a.final_regs = b.final_regs

(* First block instance whose digest diverges, as an actionable
   description.  Fine-grained entry mismatch is reported by the
   differential harness, which also knows the cycle-simulator side. *)
let first_divergence a b =
  if arch_equivalent a b then None
  else begin
    let na = Array.length a.block_digests
    and nb = Array.length b.block_digests in
    if na <> nb then
      Some
        {
          at = min na nb;
          expected = Printf.sprintf "%d block instances" na;
          got = Printf.sprintf "%d block instances" nb;
        }
    else begin
      let i = ref 0 in
      while !i < na && a.block_digests.(!i) = b.block_digests.(!i) do incr i done;
      if !i < na then
        Some
          {
            at = !i;
            expected = Printf.sprintf "block digest %Lx" a.block_digests.(!i);
            got = Printf.sprintf "block digest %Lx" b.block_digests.(!i);
          }
      else begin
        let r = ref 0 in
        while
          !r < Array.length a.final_regs && a.final_regs.(!r) = b.final_regs.(!r)
        do
          incr r
        done;
        Some
          {
            at = !r;
            expected = Printf.sprintf "final r%d = %Lx" !r a.final_regs.(!r);
            got = Printf.sprintf "final r%d = %Lx" !r b.final_regs.(!r);
          }
      end
    end
  end
