(** Canonical architectural commit log.

    The golden-model interpreter ({!Interp}) emits one of these per run:
    a per-instruction effect stream in program order plus a per-block
    digest stream that is invariant under the legal intra-block
    reorderings performed by the compiler passes (the store multiset and
    end-of-block register file are order-insensitive within a block) yet
    sensitive to any dataflow change. *)

type value = int64

type effect_ =
  | Reg_write of { reg : int; value : value }
  | Mem_read of { addr : int; value : value }
  | Mem_write of { addr : int; value : value }
  | Branch_out of { taken : bool }

type entry = {
  seq : int;          (** position in the commit stream *)
  uid : int;          (** static uid (synthetic for terminators) *)
  pc : int;
  block_id : int;
  opcode : Isa.Opcode.t;
  effects : effect_ list;
}

type t = {
  entries : entry array;
  block_digests : int64 array;  (** one digest per executed block instance *)
  final_regs : value array;     (** architectural register file at exit *)
  digest : int64;               (** digest of the entire fine-grained log *)
}

val make :
  entries:entry array ->
  block_digests:int64 array ->
  final_regs:value array ->
  t

val num_entries : t -> int

val mem_addr_of_entry : entry -> int
(** Memory address touched, or [-1] when the entry has no memory effect. *)

val taken_of_entry : entry -> bool
(** [true] iff the entry carries a taken branch outcome. *)

val mix64 : int64 -> int64
(** SplitMix64 finalizer — the deterministic mixing function the oracle's
    value semantics is built on. *)

val mix2 : int64 -> int64 -> int64
(** Non-commutative combine of two values. *)

val mix_int : int64 -> int -> int64

val pp_effect : Format.formatter -> effect_ -> unit
val pp_entry : Format.formatter -> entry -> unit
val entry_to_string : entry -> string

type divergence = { at : int; expected : string; got : string }

val arch_equivalent : t -> t -> bool
(** Block-digest and final-register-file equality: the semantic
    equivalence the transform fuzzer demands of every compiler pass. *)

val first_divergence : t -> t -> divergence option
(** [None] iff {!arch_equivalent}; otherwise a description of the first
    diverging block instance (or final register). *)
