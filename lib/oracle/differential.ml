(* Differential harness: every check runs some pair of independent
   implementations against each other and reports the first divergence
   as an actionable message.

   The comparison chain is:

     Walk.path_for_instrs  ==  Interp's independent walk      (check_walk)
     Trace.expand          ==  Interp's commit-log entries    (check_trace)
     Cpu.run retirement    ==  Trace minus CDP markers        (check_cpu_trace)
     transformed program   ==  original, per-block digests    (check_transform_pair)

   so a green [check_prepared] means the golden model, the trace
   expander, the walk sampler, the cycle simulator and the compiler
   passes all agree on the architectural behaviour of a program. *)

module T = Prog.Trace

let ( let* ) = Result.bind

(* ----------------------- configuration sweep ----------------------- *)

let configs : (string * Pipeline.Config.t) list =
  let open Pipeline.Config in
  [
    ("table_i", table_i);
    ("2x_fd", with_2x_fd table_i);
    ("4x_icache+backend_prio", with_backend_prio (with_4x_icache table_i));
    ("narrow2", { table_i with width = 2; fetch_bytes = 8 });
    ("free_cdp+efetch", { (with_efetch table_i) with cdp_decode_penalty = 0 });
    ("perfect_bp+clp", with_critical_load_prefetch (with_perfect_branch table_i));
    ("wrong_path", { table_i with wrong_path_fetch = true });
  ]

let sample_config seed =
  List.nth configs (abs seed mod List.length configs)

(* ------------------------------ checks ----------------------------- *)

let check_walk program ~seed ~instrs =
  let reference = Prog.Walk.path_for_instrs program ~seed ~instrs in
  let oracle = (Interp.run program ~seed ~instrs).Interp.path in
  if reference = oracle then Ok ()
  else if Array.length reference <> Array.length oracle then
    Error
      (Printf.sprintf "walk divergence: %d visits (Walk) vs %d (oracle)"
         (Array.length reference) (Array.length oracle))
  else begin
    let i = ref 0 in
    while reference.(!i) = oracle.(!i) do incr i done;
    Error
      (Printf.sprintf
         "walk divergence at visit %d: block %d (Walk) vs block %d (oracle)"
         !i reference.(!i) oracle.(!i))
  end

let check_trace program ~seed ~path =
  let trace = T.expand program ~seed path in
  let oracle = Interp.run_path program ~seed path in
  let entries = oracle.Interp.log.Commit_log.entries in
  let ne = Array.length entries and nt = Array.length trace in
  if ne <> nt then
    Error
      (Printf.sprintf "trace divergence: %d events (Trace) vs %d (oracle)" nt
         ne)
  else begin
    let err = ref None in
    let fail i fmt =
      Printf.ksprintf
        (fun msg ->
          if !err = None then
            err :=
              Some
                (Printf.sprintf "trace divergence at event %d (uid %d): %s" i
                   trace.(i).T.instr.Isa.Instr.uid msg))
        fmt
    in
    Array.iteri
      (fun i (e : Commit_log.entry) ->
        let ev = trace.(i) in
        if e.Commit_log.uid <> ev.T.instr.Isa.Instr.uid then
          fail i "uid %d (oracle)" e.Commit_log.uid;
        if e.Commit_log.pc <> ev.T.pc then
          fail i "pc %#x (Trace) vs %#x (oracle)" ev.T.pc e.Commit_log.pc;
        if e.Commit_log.block_id <> ev.T.block_id then
          fail i "block %d (Trace) vs %d (oracle)" ev.T.block_id
            e.Commit_log.block_id;
        let addr = Commit_log.mem_addr_of_entry e in
        if addr <> ev.T.mem_addr then
          fail i "mem addr %#x (Trace) vs %#x (oracle)" ev.T.mem_addr addr;
        if Commit_log.taken_of_entry e <> ev.T.taken then
          fail i "taken %b (Trace) vs %b (oracle)" ev.T.taken
            (Commit_log.taken_of_entry e))
      entries;
    match !err with
    | Some msg -> Error msg
    | None ->
      if oracle.Interp.work_instrs <> T.work_count trace then
        Error
          (Printf.sprintf "work count: %d (Trace) vs %d (oracle)"
             (T.work_count trace) oracle.Interp.work_instrs)
      else Ok oracle
  end

let check_cpu_trace ?(warm = true) ~config trace =
  let expected =
    Array.of_seq
      (Seq.filter
         (fun (e : T.event) -> e.T.instr.Isa.Instr.opcode <> Isa.Opcode.Cdp_switch)
         (Array.to_seq trace))
  in
  let nexp = Array.length expected in
  let pos = ref 0 in
  let err = ref None in
  let on_commit (c : Pipeline.Cpu.commit) =
    if !err = None then begin
      if c.Pipeline.Cpu.commit_seq <> !pos then
        err :=
          Some
            (Printf.sprintf "commit seq %d, expected %d"
               c.Pipeline.Cpu.commit_seq !pos)
      else if !pos >= nexp then
        err := Some (Printf.sprintf "extra retirement past %d events" nexp)
      else begin
        let want = expected.(!pos) in
        let got = c.Pipeline.Cpu.event in
        if got.T.seq <> want.T.seq then
          err :=
            Some
              (Printf.sprintf
                 "retirement %d: trace event %d (uid %d), expected event %d \
                  (uid %d)"
                 !pos got.T.seq got.T.instr.Isa.Instr.uid want.T.seq
                 want.T.instr.Isa.Instr.uid)
      end;
      incr pos
    end
  in
  let stats = Pipeline.Cpu.run ~warm ~checks:true ~on_commit config trace in
  match !err with
  | Some msg -> Error ("cpu divergence: " ^ msg)
  | None ->
    if !pos <> nexp then
      Error
        (Printf.sprintf "cpu divergence: %d retirements, expected %d" !pos nexp)
    else begin
      let cdp =
        Array.fold_left
          (fun acc (e : T.event) ->
            if e.T.instr.Isa.Instr.opcode = Isa.Opcode.Cdp_switch then acc + 1
            else acc)
          0 trace
      in
      let open Pipeline.Stats in
      if stats.committed_total <> Array.length trace then
        Error
          (Printf.sprintf "stats divergence: committed_total %d <> %d events"
             stats.committed_total (Array.length trace))
      else if stats.cdp_markers <> cdp then
        Error
          (Printf.sprintf "stats divergence: cdp_markers %d <> %d in trace"
             stats.cdp_markers cdp)
      else if stats.committed_work <> T.work_count trace then
        Error
          (Printf.sprintf "stats divergence: committed_work %d <> %d in trace"
             stats.committed_work (T.work_count trace))
      else if stats.stage_all.count <> stats.committed_total - stats.cdp_markers
      then
        Error
          (Printf.sprintf
             "stats divergence: stage count %d <> committed %d - markers %d"
             stats.stage_all.count stats.committed_total stats.cdp_markers)
      else Ok nexp
    end

(* Record the walk into a binary pack, replay it through the mmap
   cursor, and require bit-identical events — every field, including
   the resolved instruction (structural equality: terminator
   instructions are re-synthesized on both sides). *)
let check_pack program ~seed ~path =
  let live =
    T.Stream.to_trace (T.Stream.of_program program ~seed path)
  in
  let tmp = Filename.temp_file "critics-pack" ".cpk" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let n =
        T.Pack.record ~path:tmp (T.Stream.of_program program ~seed path)
      in
      if n <> Array.length live then
        Error
          (Printf.sprintf "pack recorded %d events, live walk yields %d" n
             (Array.length live))
      else
        match T.Pack.open_file tmp with
        | Error e -> Error ("pack fails verification after record: " ^ e)
        | Ok pk ->
          let replay = T.Stream.to_trace (T.Pack.cursor pk program) in
          if Array.length replay <> n then
            Error
              (Printf.sprintf "pack replay yields %d events, recorded %d"
                 (Array.length replay) n)
          else begin
            let rec go i =
              if i = n then Ok n
              else if replay.(i) = live.(i) then go (i + 1)
              else
                let r = replay.(i) and l = live.(i) in
                Error
                  (Printf.sprintf
                     "pack replay diverges at seq %d: replay \
                      (uid %d pc %#x next %#x mem %d) vs live \
                      (uid %d pc %#x next %#x mem %d)"
                     i r.T.instr.Isa.Instr.uid r.T.pc r.T.next_pc r.T.mem_addr
                     l.T.instr.Isa.Instr.uid l.T.pc l.T.next_pc l.T.mem_addr)
            in
            go 0
          end)

let check_transform_pair ~original ~transformed ~seed ~path =
  let a = Interp.run_path original ~seed path in
  let b = Interp.run_path transformed ~seed path in
  if Commit_log.arch_equivalent a.Interp.log b.Interp.log then Ok ()
  else
    match Commit_log.first_divergence a.Interp.log b.Interp.log with
    | None -> Error "oracle divergence (unlocated)"
    | Some d ->
      let where =
        if d.Commit_log.at < Array.length path then
          Printf.sprintf " (visit %d, block %d)" d.Commit_log.at
            path.(d.Commit_log.at)
        else ""
      in
      Error
        (Printf.sprintf "oracle divergence at %d%s: %s vs %s" d.Commit_log.at
           where d.Commit_log.expected d.Commit_log.got)

(* --------------------- whole-program check suite ------------------- *)

type prepared = {
  program : Prog.Program.t;
  seed : int;
  instrs : int;
  path : Prog.Walk.path;
  trace : T.t;
  db : Profiler.Critic_db.t;
}

let prepare ?(instrs = 2_000) program ~seed =
  let path = Prog.Walk.path_for_instrs program ~seed ~instrs in
  let trace = T.expand program ~seed path in
  let db = Profiler.Profile_run.profile trace in
  { program; seed; instrs; path; trace; db }

let transform_variants p =
  let critic options =
    fst (Transform.Critic_pass.apply ~options p.db p.program)
  in
  let default = Transform.Critic_pass.default_options in
  [
    ("hoist", critic { default with mode = Transform.Critic_pass.Hoist_only });
    ("critic", critic default);
    ("critic_ideal", critic Transform.Critic_pass.ideal_options);
    ( "critic_branches",
      critic { default with mode = Transform.Critic_pass.Branches } );
    ( "narrow_only",
      fst
        (Transform.Pipeline.run_exn
           (Transform.Pass.env p.db)
           Transform.Pipeline.narrow_only p.program) );
    ("opp16", fst (Transform.Thumb.opp16 p.program));
    ("compress", fst (Transform.Thumb.compress p.program));
    ("opp16_critic", fst (Transform.Thumb.opp16 (critic default)));
  ]

(* ---------------------- per-pass pipeline checks ------------------- *)

let pipeline_variants p =
  let default = Transform.Critic_pass.default_options in
  let case name options passes =
    (name, Transform.Pass.env ~options p.db, passes)
  in
  let canonical name options =
    case name options (Transform.Pipeline.canonical options)
  in
  [
    canonical "hoist" { default with mode = Transform.Critic_pass.Hoist_only };
    canonical "critic" default;
    canonical "critic_ideal" Transform.Critic_pass.ideal_options;
    canonical "critic_branches"
      { default with mode = Transform.Critic_pass.Branches };
    canonical "macro" { default with mode = Transform.Critic_pass.Fused_macro };
    case "narrow_only" default Transform.Pipeline.narrow_only;
    case "narrow_before_hoist" default Transform.Pipeline.reordered;
  ]

let pass_check p ~pass:_ ~before:_ ~after =
  (* Every stage must stay equivalent to the *source* program: switch
     markers are dataflow- and architecture-transparent, so both the
     static per-block summaries and the golden model's commit digests
     are stage invariants.  Checking against the source rather than the
     previous stage pins divergence to the first pass that breaks. *)
  let* () =
    Result.map
      (fun _ -> ())
      (Transform.Verify.check_pass (fun _ -> (after, ())) p.program)
  in
  check_transform_pair ~original:p.program ~transformed:after ~seed:p.seed
    ~path:p.path

let check_pipeline p (name, env, passes) =
  match
    Transform.Pipeline.run ~check:(pass_check p) env passes p.program
  with
  | Ok (program', _) -> Ok program'
  | Error e ->
    Error
      (Printf.sprintf "[%s/%s] %s" name e.Transform.Pipeline.failed_pass
         e.Transform.Pipeline.detail)

let check_pipelines ?(variants = pipeline_variants) p =
  List.fold_left
    (fun acc v ->
      let* n = acc in
      let* _ = check_pipeline p v in
      Ok (n + 1))
    (Ok 0) (variants p)

let in_context name r =
  Result.map_error (fun msg -> Printf.sprintf "[%s] %s" name msg) r

let check_variant ?(configs = configs) p (name, program') =
  let* () =
    in_context name
      (if Transform.Verify.program_equivalent p.program program' then Ok ()
       else Error "Verify.program_equivalent failed")
  in
  let* () =
    in_context name
      (check_transform_pair ~original:p.program ~transformed:program'
         ~seed:p.seed ~path:p.path)
  in
  let* _ = in_context name (check_trace program' ~seed:p.seed ~path:p.path) in
  let* _ =
    in_context (name ^ "/pack")
      (check_pack program' ~seed:p.seed ~path:p.path)
  in
  let trace' = T.expand program' ~seed:p.seed p.path in
  List.fold_left
    (fun acc (cname, config) ->
      let* total = acc in
      let* n =
        in_context
          (name ^ "/" ^ cname)
          (check_cpu_trace ~config trace')
      in
      Ok (total + n))
    (Ok 0) configs

let check_prepared ?(configs = configs) ?variant_configs ?(variants = true) p =
  (* Baseline crosses the whole sweep; variants default to a cut-down
     sweep (first + last entry) to keep fuzz loops fast, unless the
     caller asks for more. *)
  let variant_configs =
    match variant_configs with
    | Some cs -> cs
    | None -> (
      match configs with
      | [] -> []
      | [ c ] -> [ c ]
      | c :: rest -> [ c; List.nth rest (List.length rest - 1) ])
  in
  let* () =
    in_context "walk" (check_walk p.program ~seed:p.seed ~instrs:p.instrs)
  in
  let* _ =
    in_context "baseline" (check_trace p.program ~seed:p.seed ~path:p.path)
  in
  let* _ =
    in_context "baseline/pack"
      (check_pack p.program ~seed:p.seed ~path:p.path)
  in
  let* base_events =
    List.fold_left
      (fun acc (cname, config) ->
        let* total = acc in
        let* n =
          in_context ("baseline/" ^ cname) (check_cpu_trace ~config p.trace)
        in
        Ok (total + n))
      (Ok 0) configs
  in
  if not variants then Ok base_events
  else
    List.fold_left
      (fun acc variant ->
        let* total = acc in
        let* n = check_variant ~configs:variant_configs p variant in
        Ok (total + n))
      (Ok base_events) (transform_variants p)

let check_program ?configs ?variant_configs ?(variants = true) ?(instrs = 2_000)
    program ~seed =
  let p = prepare ~instrs program ~seed in
  check_prepared ?configs ?variant_configs ~variants p
