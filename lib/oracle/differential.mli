(** Differential harness: pairs of independent implementations checked
    against each other, reporting the first divergence as an actionable
    message.

    The comparison chain — a green {!check_prepared} means all of these
    agree on a program's architectural behaviour:
    - {!check_walk}: {!Prog.Walk.path_for_instrs} vs the golden model's
      independent walk;
    - {!check_trace}: {!Prog.Trace.expand} vs the golden model's commit
      log (pcs, uids, memory addresses, branch outcomes, work counts);
    - {!check_cpu_trace}: {!Pipeline.Cpu.run} retirement stream (with
      [~checks:true] invariants armed) vs the trace minus CDP markers,
      plus statistics accounting identities;
    - {!check_transform_pair}: per-block commit digests of a transformed
      program vs its original. *)

val configs : (string * Pipeline.Config.t) list
(** Named machine variants the sweep crosses programs with: Table I,
    2×-front-end, 4×-i-cache + BackendPrio, a narrow 2-wide machine,
    free CDP + EFetch, perfect branch + critical-load prefetch, and
    wrong-path fetch. *)

val sample_config : int -> string * Pipeline.Config.t
(** Deterministically pick one of {!configs} from a seed. *)

val check_walk :
  Prog.Program.t -> seed:int -> instrs:int -> (unit, string) result

val check_trace :
  Prog.Program.t ->
  seed:int ->
  path:Prog.Walk.path ->
  (Interp.result, string) result
(** Expand the trace and run the golden model over the same path;
    compare event-by-event.  Returns the oracle result on success. *)

val check_cpu_trace :
  ?warm:bool ->
  config:Pipeline.Config.t ->
  Prog.Trace.t ->
  (int, string) result
(** Simulate with invariants armed and the commit observer attached;
    the retirement stream must be exactly the trace minus CDP markers,
    in order, and the statistics must satisfy the accounting
    identities.  Returns the number of retirements compared. *)

val check_pack :
  Prog.Program.t ->
  seed:int ->
  path:Prog.Walk.path ->
  (int, string) result
(** Record the walk into a binary trace pack ({!Prog.Trace.Pack}) in a
    temp file, replay it through the mmap cursor, and require the
    replayed events to be bit-identical to the live walk, field for
    field.  Returns the number of events compared.  Run for the
    baseline and for every transform variant by {!check_prepared}. *)

val check_transform_pair :
  original:Prog.Program.t ->
  transformed:Prog.Program.t ->
  seed:int ->
  path:Prog.Walk.path ->
  (unit, string) result
(** Golden-model equivalence of two program versions over the same
    walk: per-block-instance commit digests and final register file
    must match ({!Commit_log.arch_equivalent}). *)

type prepared = {
  program : Prog.Program.t;
  seed : int;
  instrs : int;
  path : Prog.Walk.path;
  trace : Prog.Trace.t;
  db : Profiler.Critic_db.t;
}

val prepare : ?instrs:int -> Prog.Program.t -> seed:int -> prepared
(** Walk, expand and profile a program ([instrs] defaults to 2000 —
    fuzz-sized runs). *)

val transform_variants : prepared -> (string * Prog.Program.t) list
(** The compiler pipelines under test, applied to the prepared program:
    hoist, critic, critic_ideal, critic_branches, narrow_only, opp16,
    compress and opp16∘critic (every semantics-preserving scheme). *)

val pipeline_variants :
  prepared ->
  (string * Transform.Pass.env * Transform.Pass.t list) list
(** The nanopass pipelines under per-pass test: the canonical list for
    every switch mode (hoist, critic, critic_ideal, critic_branches,
    macro) plus the hybrid lists (narrow_only, narrow_before_hoist). *)

val check_pipeline :
  prepared ->
  string * Transform.Pass.env * Transform.Pass.t list ->
  (Prog.Program.t, string) result
(** Run one pass list with the architectural checker armed after
    {e every individual pass}: each intermediate program must be
    dataflow-equivalent to the source per block
    ({!Transform.Verify.check_pass}, which names the first divergent
    block and uid) and golden-model equivalent over the prepared walk
    ({!check_transform_pair}).  A failure is reported as
    ["[variant/pass] detail"], attributing the divergence to the exact
    stage that introduced it. *)

val check_pipelines :
  ?variants:(prepared -> (string * Transform.Pass.env * Transform.Pass.t list) list) ->
  prepared ->
  (int, string) result
(** {!check_pipeline} over every variant (default
    {!pipeline_variants}); returns the number of pipelines checked. *)

val check_variant :
  ?configs:(string * Pipeline.Config.t) list ->
  prepared ->
  string * Prog.Program.t ->
  (int, string) result
(** Full differential for one transformed variant:
    [Verify.program_equivalent], golden-model equivalence, trace
    agreement, then simulator agreement per config.  Error messages are
    prefixed with the variant (and config) name. *)

val check_prepared :
  ?configs:(string * Pipeline.Config.t) list ->
  ?variant_configs:(string * Pipeline.Config.t) list ->
  ?variants:bool ->
  prepared ->
  (int, string) result
(** The whole suite on one program: walk, baseline trace, baseline
    simulation across [configs], and (unless [variants:false]) every
    transform variant across [variant_configs] (default: first and last
    of [configs]).  Returns the total number of retirements compared. *)

val check_program :
  ?configs:(string * Pipeline.Config.t) list ->
  ?variant_configs:(string * Pipeline.Config.t) list ->
  ?variants:bool ->
  ?instrs:int ->
  Prog.Program.t ->
  seed:int ->
  (int, string) result
(** [prepare] + [check_prepared]. *)
