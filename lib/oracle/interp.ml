(* Golden reference model: a simple, functional, one-instruction-per-
   step architectural interpreter over [Prog.Program].

   It shares nothing with the cycle simulator: no pipeline, no caches,
   no queues — every dynamic instruction executes in one step, in
   program order, against an architectural register file and a flat
   memory.  Since the ISA carries no immediates or concrete semantics,
   the interpreter assigns each instruction a *canonical* deterministic
   semantics (SplitMix64 value mixing over the source operands, keyed by
   opcode and predication).  Any two programs that compute the same
   dataflow produce the same values; any pass that breaks a dependence,
   reorders conflicting memory operations, or drops an instruction
   produces a diverging commit log.

   The dynamic memory address stream is re-derived here from the
   instruction's [mem_signature] following the same published rule as
   [Prog.Trace] ((seed, uid, access-count)-keyed one-shot generators);
   the differential harness cross-checks the two implementations against
   each other. *)

module I = Isa.Instr
module Op = Isa.Opcode
module L = Commit_log

type result = {
  log : Commit_log.t;
  path : Prog.Walk.path;
  work_instrs : int;
}

(* --------------------- canonical value semantics ------------------- *)

let opcode_index op =
  let rec idx i = function
    | [] -> invalid_arg "Interp.opcode_index"
    | o :: rest -> if Op.equal o op then i else idx (i + 1) rest
  in
  idx 0 Op.all

let cond_index = function
  | I.Always -> 0
  | I.Eq -> 1
  | I.Ne -> 2
  | I.Gt -> 3
  | I.Lt -> 4
  | I.Ge -> 5
  | I.Le -> 6

let opcode_salt (ins : I.t) =
  L.mix_int (L.mix_int 0x0CA11L (opcode_index ins.opcode))
    (cond_index ins.cond)

let initial_reg i = L.mix64 (Int64.of_int (0x5EED_0000 + i))
let fresh_mem_value addr = L.mix64 (Int64.of_int (addr lxor 0x4D45_4D00))

(* ------------------- dynamic memory address spec ------------------- *)

(* Mirrors the published address-stream rule of Prog.Trace.mem_address:
   each (seed, uid, count) triple keys a one-shot generator, so the
   stream of any one static instruction is independent of instruction
   order.  Kept as an independent implementation on purpose — the
   differential harness diffs the two. *)
let mem_address ~seed ~uid ~count (m : I.mem_signature) =
  let data_base = 0x4000_0000 and region_span = 0x0100_0000 in
  let base = data_base + (m.region * region_span) in
  let ws = max m.stride m.working_set in
  let slots = max 1 (ws / max 1 m.stride) in
  let rng =
    Util.Rng.create
      ((seed * 0x9E3779B1) lxor (uid * 0x85EBCA77) lxor (count * 0xC2B2AE3D))
  in
  let slot =
    if m.randomness > 0.0 && Util.Rng.chance rng m.randomness then
      Util.Rng.int rng slots
    else count mod slots
  in
  base + (slot * m.stride)

(* ----------------------------- machine ----------------------------- *)

type machine = {
  seed : int;
  regs : int64 array;
  mem : (int, int64) Hashtbl.t;
  counts : (int, int) Hashtbl.t; (* per-uid dynamic access count *)
  mutable seq : int;
  mutable work : int;
  mutable entries_rev : L.entry list;
  mutable block_digests_rev : int64 list;
  (* commutative digest of the stores of the current block instance *)
  mutable store_acc : int64;
}

let create_machine seed =
  {
    seed;
    regs = Array.init Isa.Reg.count initial_reg;
    mem = Hashtbl.create 4096;
    counts = Hashtbl.create 1024;
    seq = 0;
    work = 0;
    entries_rev = [];
    block_digests_rev = [];
    store_acc = 0L;
  }

let next_count m uid =
  let c = Option.value ~default:0 (Hashtbl.find_opt m.counts uid) in
  Hashtbl.replace m.counts uid (c + 1);
  c

let read_reg m r = m.regs.(Isa.Reg.index r)

let read_mem m addr =
  match Hashtbl.find_opt m.mem addr with
  | Some v -> v
  | None -> fresh_mem_value addr

let emit m ~uid ~pc ~block_id ~opcode effects =
  let e = { L.seq = m.seq; uid; pc; block_id; opcode; effects } in
  m.seq <- m.seq + 1;
  m.entries_rev <- e :: m.entries_rev

let combine_srcs salt vals = List.fold_left L.mix2 salt vals

(* Execute one body instruction; returns its size in bytes. *)
let exec_instr m ~block_id ~pc (ins : I.t) =
  let is_work =
    ins.opcode <> Op.Cdp_switch && not (Op.is_control ins.opcode)
  in
  if is_work then m.work <- m.work + 1;
  (match ins.opcode with
  | Op.Cdp_switch ->
    (* Format-switch marker: decoder metadata, no architectural effect. *)
    emit m ~uid:ins.uid ~pc ~block_id ~opcode:ins.opcode []
  | Op.Branch | Op.Call | Op.Return ->
    (* Body control (Approach-1 switch branches): unconditional,
       always taken, no dataflow. *)
    emit m ~uid:ins.uid ~pc ~block_id ~opcode:ins.opcode
      [ L.Branch_out { taken = true } ]
  | Op.Load when ins.mem <> None ->
    let msig = Option.get ins.mem in
    let addr =
      mem_address ~seed:m.seed ~uid:ins.uid ~count:(next_count m ins.uid) msig
    in
    let value = read_mem m addr in
    let effects =
      L.Mem_read { addr; value }
      ::
      (match ins.dst with
      | None -> []
      | Some d ->
        m.regs.(Isa.Reg.index d) <- value;
        [ L.Reg_write { reg = Isa.Reg.index d; value } ])
    in
    emit m ~uid:ins.uid ~pc ~block_id ~opcode:ins.opcode effects
  | Op.Store when ins.mem <> None ->
    let msig = Option.get ins.mem in
    let addr =
      mem_address ~seed:m.seed ~uid:ins.uid ~count:(next_count m ins.uid) msig
    in
    (* A store's data operand is its [dst] register (see
       Instr.regs_read); the address registers contribute too, so any
       dependence breakage upstream changes the stored value. *)
    let value =
      combine_srcs (opcode_salt ins) (List.map (read_reg m) (I.regs_read ins))
    in
    Hashtbl.replace m.mem addr value;
    m.store_acc <-
      Int64.logxor m.store_acc (L.mix2 (Int64.of_int addr) value);
    emit m ~uid:ins.uid ~pc ~block_id ~opcode:ins.opcode
      [ L.Mem_write { addr; value } ]
  | _ ->
    (* Generic compute (including a Load/Store without a memory
       signature, which the timing model also treats as plain work). *)
    let value =
      combine_srcs (opcode_salt ins) (List.map (read_reg m) (I.regs_read ins))
    in
    let effects =
      match I.regs_written ins with
      | [] -> []
      | writes ->
        List.map
          (fun d ->
            m.regs.(Isa.Reg.index d) <- value;
            L.Reg_write { reg = Isa.Reg.index d; value })
          writes
    in
    emit m ~uid:ins.uid ~pc ~block_id ~opcode:ins.opcode effects);
  I.size_bytes ins

let terminator_opcode = function
  | Prog.Block.Fallthrough _ -> None
  | Prog.Block.Cond_branch _ | Prog.Block.Jump _ -> Some Op.Branch
  | Prog.Block.Call _ -> Some Op.Call
  | Prog.Block.Return -> Some Op.Return

let regfile_digest m = Array.fold_left L.mix2 7L m.regs

let term_code = function
  | Prog.Block.Fallthrough _ -> 0
  | Prog.Block.Cond_branch _ -> 1
  | Prog.Block.Jump _ -> 2
  | Prog.Block.Call _ -> 3
  | Prog.Block.Return -> 4

(* Execute one block instance.  [taken] is the control decision leaving
   it (meaningful for conditional terminators; mirrors the trace rule
   that only a transfer matching the next path block counts as taken). *)
let exec_block m program block_id ~taken =
  let b = Prog.Program.block program block_id in
  let pc = ref (Prog.Program.block_addr program block_id) in
  m.store_acc <- 0L;
  Array.iter
    (fun ins -> pc := !pc + exec_instr m ~block_id ~pc:!pc ins)
    b.Prog.Block.body;
  (match terminator_opcode b.Prog.Block.term with
  | None -> ()
  | Some opcode ->
    (* Synthetic terminators count as work (Trace.is_work: their uid is
       above control_uid_base), unlike body control markers. *)
    m.work <- m.work + 1;
    emit m ~uid:(Prog.Trace.control_uid_base + block_id) ~pc:!pc ~block_id
      ~opcode
      [ L.Branch_out { taken } ]);
  let bd =
    L.mix2
      (L.mix_int
         (L.mix_int 2L block_id)
         ((2 * term_code b.Prog.Block.term) + if taken then 1 else 0))
      (L.mix2 m.store_acc (regfile_digest m))
  in
  m.block_digests_rev <- bd :: m.block_digests_rev

let finish m path =
  let entries = Array.of_list (List.rev m.entries_rev) in
  let block_digests = Array.of_list (List.rev m.block_digests_rev) in
  {
    log =
      Commit_log.make ~entries ~block_digests ~final_regs:(Array.copy m.regs);
    path;
    work_instrs = m.work;
  }

(* ----------------------------- drivers ----------------------------- *)

let run_path program ~seed path =
  let m = create_machine seed in
  let npath = Array.length path in
  Array.iteri
    (fun visit block_id ->
      let b = Prog.Program.block program block_id in
      let taken =
        match b.Prog.Block.term with
        | Prog.Block.Fallthrough _ -> false
        | Prog.Block.Jump _ | Prog.Block.Call _ | Prog.Block.Return -> true
        | Prog.Block.Cond_branch { taken; _ } ->
          visit + 1 < npath && path.(visit + 1) = taken
      in
      exec_block m program block_id ~taken)
    path;
  finish m path

let run program ~seed ~instrs =
  (* Independent re-implementation of the Prog.Walk sampling rule: one
     Rng draw per conditional branch, visits counted before stepping,
     calls push their return block, a return with an empty stack restarts
     at the entry.  The differential harness checks the resulting path
     against Prog.Walk's. *)
  let m = create_machine seed in
  let rng = Util.Rng.create seed in
  let stack = ref [] in
  let cur = ref (Prog.Program.entry program) in
  let executed = ref 0 in
  let path_rev = ref [] in
  while !executed < instrs do
    let block_id = !cur in
    let b = Prog.Program.block program block_id in
    path_rev := block_id :: !path_rev;
    executed := !executed + Array.length b.Prog.Block.body;
    let next =
      match b.Prog.Block.term with
      | Prog.Block.Fallthrough n | Prog.Block.Jump n -> n
      | Prog.Block.Cond_branch { taken; not_taken; taken_bias } ->
        if Util.Rng.chance rng taken_bias then taken else not_taken
      | Prog.Block.Call { callee; return_to } ->
        stack := return_to :: !stack;
        callee
      | Prog.Block.Return -> (
        match !stack with
        | r :: rest ->
          stack := rest;
          r
        | [] -> Prog.Program.entry program)
    in
    let continues = !executed < instrs in
    let taken =
      match b.Prog.Block.term with
      | Prog.Block.Fallthrough _ -> false
      | Prog.Block.Jump _ | Prog.Block.Call _ | Prog.Block.Return -> true
      | Prog.Block.Cond_branch { taken; _ } -> continues && next = taken
    in
    exec_block m program block_id ~taken;
    cur := next
  done;
  finish m (Array.of_list (List.rev !path_rev))
