(** Golden reference model: a one-instruction-per-step architectural
    interpreter over {!Prog.Program}, fully independent of the cycle
    simulator.

    The ISA carries no concrete semantics (no immediates), so the
    interpreter defines a canonical deterministic one: every value is a
    SplitMix64 mix of the instruction's source-operand values keyed by
    opcode and predication, loads read a flat memory whose address
    stream re-derives the published [Prog.Trace.mem_address] rule, and
    stores fold their data operands.  Two programs compute the same
    commit log iff they have the same dataflow — which is exactly the
    property compiler passes must preserve. *)

type result = {
  log : Commit_log.t;
  path : Prog.Walk.path;  (** block instances executed, in order *)
  work_instrs : int;      (** work instructions (trace-visible, non-marker) *)
}

val run_path : Prog.Program.t -> seed:int -> Prog.Walk.path -> result
(** Execute the program along an externally supplied block path (e.g.
    one produced by {!Prog.Walk.path_for_instrs}). *)

val run : Prog.Program.t -> seed:int -> instrs:int -> result
(** Execute the program along the oracle's own independent
    re-implementation of the {!Prog.Walk} sampling rule ([instrs] body
    instructions budget).  The resulting [path] lets the differential
    harness cross-check the two walk implementations. *)
