(** Multicore fan-out for embarrassingly parallel experiment sweeps.

    [Pool] is the reusable domain pool; the toplevel helpers cover the
    one-shot case. *)

module Pool = Pool

let default_jobs = Pool.default_jobs

let map ?jobs f xs =
  let pool = Pool.create ?jobs () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () -> Pool.map_list pool f xs)
