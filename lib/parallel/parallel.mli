(** Domain-pool parallelism for the experiment engine (stdlib-only). *)

module Pool : module type of Pool

val default_jobs : unit -> int
(** See {!Pool.default_jobs}: [CRITICS_JOBS] override, else
    [Domain.recommended_domain_count ()]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot order-preserving parallel map on a transient pool
    ([jobs] defaults to {!default_jobs}). *)
