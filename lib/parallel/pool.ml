(* Fixed-size domain pool over a shared job queue.

   Workers are OCaml 5 domains blocked on a condition variable; batches
   submitted through [run] are executed by [jobs - 1] workers plus the
   submitting domain itself (the caller drains the queue while its batch
   is outstanding, so a pool with [jobs = 1] or a nested [run] from
   inside a task degrades gracefully to sequential execution instead of
   deadlocking). *)

exception Batch_failure of (exn * string) list

let () =
  Printexc.register_printer (function
    | Batch_failure errs ->
      Some
        (Printf.sprintf "Pool.Batch_failure: %d jobs failed: %s"
           (List.length errs)
           (String.concat "; "
              (List.map (fun (e, _) -> Printexc.to_string e) errs)))
    | _ -> None)

(* Per-job failures are recorded in submission order, each with the
   backtrace captured at the catch point. *)
type batch = {
  mutable remaining : int;
  mutable errs : (int * exn * string) list; (* submission idx, newest first *)
}

type t = {
  jobs : int;
  lock : Mutex.t;
  work_available : Condition.t;
  batch_done : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable live : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () =
  match Sys.getenv_opt "CRITICS_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* One process-wide registry of live pools, drained by a single
   [at_exit] callback.  Registering a fresh closure per pool kept every
   pool (and its captured state) reachable for the life of the process —
   a leak for test suites that create hundreds of short-lived pools. *)
let registry_lock = Mutex.create ()
let registry : t list ref = ref []
let registry_at_exit_installed = ref false

let shutdown t =
  Mutex.lock registry_lock;
  registry := List.filter (fun p -> p != t) !registry;
  Mutex.unlock registry_lock;
  Mutex.lock t.lock;
  t.live <- false;
  Condition.broadcast t.work_available;
  let workers = t.workers in
  t.workers <- [];
  Mutex.unlock t.lock;
  List.iter Domain.join workers

let register t =
  Mutex.lock registry_lock;
  registry := t :: !registry;
  if not !registry_at_exit_installed then begin
    registry_at_exit_installed := true;
    at_exit (fun () ->
        let rec drain () =
          Mutex.lock registry_lock;
          let pools = !registry in
          registry := [];
          Mutex.unlock registry_lock;
          if pools <> [] then begin
            List.iter shutdown pools;
            drain ()
          end
        in
        drain ())
  end;
  Mutex.unlock registry_lock

let create ?jobs () =
  let jobs = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  let t =
    {
      jobs;
      lock = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      queue = Queue.create ();
      live = true;
      workers = [];
    }
  in
  register t;
  t

let jobs t = t.jobs

let rec worker_loop t =
  Mutex.lock t.lock;
  let rec next () =
    if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
    else if not t.live then None
    else begin
      Condition.wait t.work_available t.lock;
      next ()
    end
  in
  let task = next () in
  Mutex.unlock t.lock;
  match task with
  | None -> ()
  | Some f ->
    f ();
    worker_loop t

(* Spawn the worker domains on first use, so pools that only ever run
   sequentially (jobs = 1, or no batch submitted) cost nothing. *)
let ensure_workers t =
  Mutex.lock t.lock;
  let missing = t.live && t.workers = [] && t.jobs > 1 in
  Mutex.unlock t.lock;
  if missing then begin
    let spawned =
      List.init (t.jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t))
    in
    Mutex.lock t.lock;
    t.workers <- t.workers @ spawned;
    Mutex.unlock t.lock
  end

(* Re-raise policy shared by the sequential and parallel paths: one
   failed job re-raises its own exception (existing behavior callers
   match on); several raise the composite so no failure is silently
   dropped. *)
let raise_collected errs =
  match errs with
  | [] -> ()
  | [ (_, e, _) ] -> raise e
  | _ ->
    raise
      (Batch_failure
         (List.map
            (fun (_, e, bt) -> (e, bt))
            (List.sort
               (fun (a, _, _) (b, _, _) -> Int.compare a b)
               errs)))

let run t thunks =
  match thunks with
  | [] -> ()
  | [ f ] -> f ()
  | _ when t.jobs <= 1 ->
    let errs = ref [] in
    List.iteri
      (fun i f ->
        try f ()
        with e ->
          errs := (i, e, Printexc.get_backtrace ()) :: !errs)
      thunks;
    raise_collected !errs
  | _ ->
    ensure_workers t;
    let batch = { remaining = List.length thunks; errs = [] } in
    let wrap i f () =
      (try f ()
       with e ->
         let bt = Printexc.get_backtrace () in
         Mutex.lock t.lock;
         batch.errs <- (i, e, bt) :: batch.errs;
         Mutex.unlock t.lock);
      Mutex.lock t.lock;
      batch.remaining <- batch.remaining - 1;
      if batch.remaining = 0 then Condition.broadcast t.batch_done;
      Mutex.unlock t.lock
    in
    Mutex.lock t.lock;
    List.iteri (fun i f -> Queue.add (wrap i f) t.queue) thunks;
    Condition.broadcast t.work_available;
    let rec help () =
      if batch.remaining > 0 then
        if not (Queue.is_empty t.queue) then begin
          let task = Queue.pop t.queue in
          Mutex.unlock t.lock;
          task ();
          Mutex.lock t.lock;
          help ()
        end
        else begin
          Condition.wait t.batch_done t.lock;
          help ()
        end
    in
    help ();
    Mutex.unlock t.lock;
    raise_collected batch.errs

let run_supervised t thunks =
  let n = List.length thunks in
  let out = Array.make n None in
  let wrapped =
    List.mapi
      (fun i f () ->
        out.(i) <-
          Some
            (try Ok (f ())
             with e -> Error (e, Printexc.get_backtrace ())))
      thunks
  in
  run t wrapped;
  Array.to_list
    (Array.map
       (function
         | Some r -> r
         | None -> assert false (* every wrapped thunk stores a result *))
       out)

let map ?chunk t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if t.jobs <= 1 || n = 1 then Array.map f xs
  else begin
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 (n / (t.jobs * 8))
    in
    let out = Array.make n None in
    let nchunks = (n + chunk - 1) / chunk in
    let thunks =
      List.init nchunks (fun c ->
          let lo = c * chunk in
          let hi = min n (lo + chunk) in
          fun () ->
            for i = lo to hi - 1 do
              out.(i) <- Some (f xs.(i))
            done)
    in
    run t thunks;
    Array.map
      (function Some v -> v | None -> assert false (* run would have raised *))
      out
  end

let map_list ?chunk t f xs =
  Array.to_list (map ?chunk t f (Array.of_list xs))

let map_reduce ?chunk t ~map:f ~reduce ~init xs =
  List.fold_left reduce init (map_list ?chunk t f xs)
