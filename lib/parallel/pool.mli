(** A fixed-size pool of worker domains with a shared job queue.

    Built on stdlib [Domain]/[Mutex]/[Condition] only.  Worker domains
    are spawned lazily on the first parallel batch; a pool created with
    [jobs = 1] never spawns a domain and executes everything in the
    calling domain, so code written against the pool degrades gracefully
    on single-core hosts ([Domain.recommended_domain_count () = 1]).

    Determinism: [map]/[map_list]/[map_reduce] are order-preserving —
    result [i] is [f input(i)] regardless of which domain evaluated it,
    and [map_reduce] folds the mapped results left-to-right — so a
    parallel run returns exactly what the sequential fallback returns
    whenever [f] itself is deterministic. *)

type t

exception Batch_failure of (exn * string) list
(** Raised by {!run} (and the [map] family) when {e more than one} job
    of a batch failed: every failure, in submission order, paired with
    the backtrace captured where it was caught.  A batch with exactly
    one failure re-raises that exception unchanged. *)

val default_jobs : unit -> int
(** [CRITICS_JOBS] from the environment when set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> t
(** [jobs] (default {!default_jobs}) is the parallelism width: the pool
    spawns [jobs - 1] worker domains and the submitting domain itself
    works through the queue while its batch is outstanding.  The pool is
    shut down automatically at process exit. *)

val jobs : t -> int

val run : t -> (unit -> unit) list -> unit
(** Execute a batch of jobs on the pool, blocking until all complete.
    If exactly one job raised, its exception is re-raised in the caller
    after the batch drains; if several raised, all of them are
    aggregated into {!Batch_failure} (submission order, with
    backtraces) — no failure is dropped.  Safe to call from inside a
    pool job: the nested caller executes queued work itself rather than
    deadlocking. *)

val run_supervised : t -> (unit -> 'a) list -> ('a, exn * string) result list
(** Like {!run}, but never raises: result [i] is [Ok v] when job [i]
    returned [v] and [Error (exn, backtrace)] when it raised.  The
    supervision layer above classifies the captured exceptions
    ({!Util.Err.of_exn}) and decides retry / quarantine per job. *)

val map : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map.  The input is split into contiguous
    chunks of [chunk] elements (default [n / (jobs * 8)], at least 1)
    that are load-balanced over the pool. *)

val map_list : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list

val map_reduce :
  ?chunk:int ->
  t ->
  map:('a -> 'b) ->
  reduce:('c -> 'b -> 'c) ->
  init:'c ->
  'a list ->
  'c
(** [map] in parallel, then fold the results in input order. *)

val shutdown : t -> unit
(** Stop and join the worker domains, and drop the pool from the global
    exit registry.  Idempotent.  Pools still live at process exit are
    shut down by one shared [at_exit] callback (a single registry, not
    one closure per pool). *)
