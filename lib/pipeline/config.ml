type issue_policy = Oldest_first | Critical_first

type t = {
  width : int;
  fetch_bytes : int;
  fetch_queue : int;
  decode_queue : int;
  rob : int;
  iq : int;
  int_alus : int;
  mul_units : int;
  mem_ports : int;
  fp_units : int;
  branch_units : int;
  mispredict_penalty : int;
  cdp_decode_penalty : int;
  mem : Mem.Hierarchy.config;
  bpu : Bpu.Predictor.kind;
  issue_policy : issue_policy;
  critical_load_prefetch : bool;
  efetch : bool;
  wrong_path_fetch : bool;
  byte_fetch : bool;
  fanout_critical_threshold : int;
}

let table_i =
  {
    width = 4;
    fetch_bytes = 16;
    fetch_queue = 24;
    decode_queue = 12;
    rob = 128;
    iq = 48;
    int_alus = 3;
    mul_units = 1;
    mem_ports = 2;
    fp_units = 2;
    branch_units = 1;
    mispredict_penalty = 10;
    cdp_decode_penalty = 1;
    mem = Mem.Hierarchy.table_i;
    bpu = Bpu.Predictor.default_kind;
    issue_policy = Oldest_first;
    critical_load_prefetch = false;
    efetch = false;
    wrong_path_fetch = false;
    byte_fetch = false;
    fanout_critical_threshold = 4;
  }

let with_byte_fetch t = { t with byte_fetch = true }

let with_2x_fd t =
  {
    t with
    fetch_bytes = t.fetch_bytes * 2;
    fetch_queue = t.fetch_queue * 2;
    decode_queue = t.decode_queue * 2;
    mem = { t.mem with l1i_hit = max 1 (t.mem.l1i_hit / 2) };
  }

let with_4x_icache t =
  { t with mem = { t.mem with l1i_size = t.mem.l1i_size * 4 } }

let with_efetch t = { t with efetch = true }
let with_perfect_branch t = { t with bpu = Bpu.Predictor.Perfect }
let with_backend_prio t = { t with issue_policy = Critical_first }
let with_critical_load_prefetch t = { t with critical_load_prefetch = true }

let all_hw t =
  t |> with_4x_icache |> with_efetch |> with_perfect_branch
  |> with_backend_prio

let describe t =
  let b = Printf.sprintf in
  [
    ("pipeline width", b "%d-wide" t.width);
    ( "fetch group",
      b "%d bytes/cycle%s" t.fetch_bytes
        (if t.byte_fetch then ", byte-accurate aligned windows" else "") );
    ("ROB", b "%d entries" t.rob);
    ("issue queue", b "%d entries" t.iq);
    ( "functional units",
      b "%d ALU, %d mul/div, %d mem, %d FP, %d branch" t.int_alus t.mul_units
        t.mem_ports t.fp_units t.branch_units );
    ( "i-cache",
      b "%dKB %d-way, %d-cycle hit" (t.mem.l1i_size / 1024) t.mem.l1i_assoc
        t.mem.l1i_hit );
  ]
  (* Policy-laboratory knobs are described only off their defaults, so
     the Table I header — part of the bench's byte-locked stdout —
     is unchanged for every seed configuration. *)
  @ (if
       t.mem.l1i_policy = Mem.Replacement.Lru
       && t.mem.l1i_prefetch = Mem.Hierarchy.Ip_next_line
       && not t.mem.l1i_opportunity
     then []
     else
       [
         ( "i-cache policy",
           b "%s replacement, %s prefetch%s"
             (Mem.Replacement.kind_name t.mem.l1i_policy)
             (Mem.Hierarchy.iprefetch_name t.mem.l1i_prefetch)
             (if t.mem.l1i_opportunity then ", opportunity counters" else "")
         );
       ])
  @ [
    ( "d-cache",
      b "%dKB %d-way, %d-cycle hit" (t.mem.l1d_size / 1024) t.mem.l1d_assoc
        t.mem.l1d_hit );
    ( "L2",
      b "%dMB %d-way, %d-cycle hit, prefetcher %s"
        (t.mem.l2_size / 1024 / 1024)
        t.mem.l2_assoc t.mem.l2_hit
        (if t.mem.l2_prefetcher then "on" else "off") );
    ( "DRAM",
      b "LPDDR3, %d ch / %d ranks / %d banks, tCL=tRP=tRCD=%d cycles"
        t.mem.dram.channels t.mem.dram.ranks_per_channel
        t.mem.dram.banks_per_rank t.mem.dram.tcl_cycles );
    ( "branch predictor",
      match t.bpu with
      | Bpu.Predictor.Two_level { entries; history_bits } ->
        b "2-level, %d entries, %d history bits" entries history_bits
      | Bpu.Predictor.Static_taken -> "static taken"
      | Bpu.Predictor.Perfect -> "perfect" );
    ("mispredict penalty", b "%d cycles" t.mispredict_penalty);
    ( "issue policy",
      match t.issue_policy with
      | Oldest_first -> "oldest-first"
      | Critical_first -> "critical-first (BackendPrio)" );
  ]
