(** Pipeline configurations.

    [table_i] is the paper's baseline (a Google-Tablet-class core in
    GEM5); the named variants are the hardware mechanisms of Sec. IV-G
    that CritIC is compared against and combined with. *)

type issue_policy =
  | Oldest_first
      (** age-ordered select — the baseline scheduler *)
  | Critical_first
      (** BackendPrio [32,33]: predicted high-fanout instructions are
          selected for issue (and functional units) first *)

type t = {
  width : int;              (** fetch/decode/rename/issue/commit width *)
  fetch_bytes : int;        (** fetch-group bytes per cycle (one i-cache
                                access); 16 = four 32-bit words *)
  fetch_queue : int;        (** fetch-buffer entries *)
  decode_queue : int;
  rob : int;
  iq : int;                 (** issue-queue entries *)
  int_alus : int;
  mul_units : int;
  mem_ports : int;
  fp_units : int;
  branch_units : int;
  mispredict_penalty : int; (** front-end refill cycles after redirect *)
  cdp_decode_penalty : int; (** extra decode cycle on a CDP marker *)
  mem : Mem.Hierarchy.config;
  bpu : Bpu.Predictor.kind;
  issue_policy : issue_policy;
  critical_load_prefetch : bool;
      (** the single-instruction criticality baseline [18]: prefetch
          predicted-critical loads at fetch *)
  efetch : bool;
      (** the EFetch instruction prefetcher [71] *)
  wrong_path_fetch : bool;
      (** model wrong-path instruction fetch after a misprediction: the
          front end keeps streaming sequential lines through the i-cache
          until the branch resolves, polluting it (and warming it) the
          way real hardware does.  Off in Table I — trace-driven
          simulators usually omit it — and exercised by the fidelity
          ablation *)
  byte_fetch : bool;
      (** byte-accurate fetch-group formation: a fetch group is an
          aligned [fetch_bytes] window over the byte-accurate Thumb/ARM
          encodings ({!Isa.Encode}), so a group ends early when the next
          instruction would straddle the window boundary — mixed
          16/32-bit code packs more instructions per group than uniform
          32-bit code.  An instruction that straddles at the very start
          of a group is still fetched (and terminates the group), so
          fetch always makes progress.  Off in Table I: the default
          counts instructions against the [fetch_bytes] budget in
          program order without alignment — the seed-era behaviour the
          golden digests pin.  Fetch byte/group statistics
          ({!Stats.t.fetch_bytes}) are counted in both modes. *)
  fanout_critical_threshold : int;
      (** fanout at which an instruction counts as critical, for both
          predictors and statistics.  The paper uses 8 on real traces;
          the synthetic streams' compressed fanout scale makes 4 the
          equivalent percentile (see DESIGN.md) *)
}

val table_i : t
(** Baseline configuration of Table I. *)

(* Hardware variants of Sec. IV-G, expressed as transformers so they
   compose (e.g. [all_hw] or "mechanism + CritIC"). *)

val with_2x_fd : t -> t
(** Double fetch/decode bandwidth and halve i-cache hit latency. *)

val with_byte_fetch : t -> t
(** Turn on byte-accurate fetch-group formation (see [byte_fetch]). *)

val with_4x_icache : t -> t
val with_efetch : t -> t
val with_perfect_branch : t -> t
val with_backend_prio : t -> t
val with_critical_load_prefetch : t -> t
val all_hw : t -> t
(** 4×i-cache + EFetch + PerfectBr + BackendPrio. *)

val describe : t -> (string * string) list
(** Key/value rendering for reports (Table I). *)
