type commit = {
  commit_seq : int;   (* position in the ROB retirement stream *)
  commit_cycle : int;
  event : Prog.Trace.event;
}

(* A slot is the simulator's in-flight record for one dynamic
   instruction.  Slots live in a fixed ring sized by the in-flight
   window of the modeled core (fetch queue + decode queue + ROB): a
   record is (re)initialized when the fetch engine first reaches its
   event and recycled — in place, keeping its grown [dependents]
   array — once a younger instruction wraps around the ring, which can
   only happen after the occupant has retired.  [idx] is the global
   stream position and doubles as the recycling stamp: any stashed
   reference (rename table, checks bookkeeping) compares its recorded
   idx against the record's current one to detect that the slot has
   moved on, which implies the referenced instruction already
   retired. *)
type slot = {
  mutable idx : int;           (* global position in the event stream *)
  mutable ev : Prog.Trace.event;
  mutable fetch_request : int; (* cycle the fetch engine first reached it *)
  mutable stall_i : int;       (* supply-side stall cycles while fetch head *)
  mutable stall_bp : int;      (* backpressure stall cycles while fetch head *)
  mutable fetched : int;
  mutable decoded : int;
  mutable renamed : int;
  mutable issued : int;
  mutable completed : int;
  mutable committed : int;
  mutable waiting_on : int;    (* unresolved producers *)
  mutable ready_time : int;    (* earliest issue cycle *)
  mutable dependents : int array; (* global stream indices; grown geometrically *)
  mutable ndeps : int;
  mutable fanout : int;        (* consumers renamed before our commit *)
  mutable in_iq : bool;
}

type source = unit -> Prog.Trace.Stream.cursor

(* Int-specialized max: the stage accounting below takes several per
   retirement, and the polymorphic Stdlib.max goes through compare_val. *)
let[@inline] imax (a : int) b = if a >= b then a else b

(* Bounded FIFO of stream indices backing the stage queues (fetch
   queue, decode queue, ROB).  Each is capped by its architected
   capacity, so one int array serves the whole run and push/pop are
   GC-silent — unlike [Queue.t], which conses a cell per element. *)
type iring = {
  q : int array;
  mutable hd : int;  (* position of the oldest entry *)
  mutable n : int;   (* population *)
}

let iring_make cap = { q = Array.make (max 1 cap) 0; hd = 0; n = 0 }
let[@inline] iring_is_empty r = r.n = 0
let[@inline] iring_peek r = r.q.(r.hd)

let[@inline] iring_push r v =
  r.q.((r.hd + r.n) mod Array.length r.q) <- v;
  r.n <- r.n + 1

let[@inline] iring_pop r =
  let v = r.q.(r.hd) in
  r.hd <- (r.hd + 1) mod Array.length r.q;
  r.n <- r.n - 1;
  v

type acc = {
  mutable count : int;
  mutable fetch_i : int;
  mutable fetch_rd : int;
  mutable decode : int;
  mutable rename : int;
  mutable issue_wait : int;
  mutable execute : int;
  mutable commit_wait : int;
}

let new_acc () =
  {
    count = 0;
    fetch_i = 0;
    fetch_rd = 0;
    decode = 0;
    rename = 0;
    issue_wait = 0;
    execute = 0;
    commit_wait = 0;
  }

let acc_to_summary a : Stats.stage_summary =
  {
    count = a.count;
    fetch_i = a.fetch_i;
    fetch_rd = a.fetch_rd;
    decode = a.decode;
    rename = a.rename;
    issue_wait = a.issue_wait;
    execute = a.execute;
    commit_wait = a.commit_wait;
  }

let dummy_event : Prog.Trace.event =
  {
    seq = -1;
    pc = 0;
    size = 4;
    instr = Isa.Instr.make ~uid:(-1) ~opcode:Isa.Opcode.Nop ();
    block_id = -1;
    body_index = -1;
    func = -1;
    mem_addr = -1;
    is_cond_branch = false;
    taken = false;
    next_pc = 0;
    fetch_break = false;
  }

let no_itemp : int array = [||]

let run_stream ?(warm = true) ?(checks = false) ?fuel ?on_commit ?probe
    ?(itemp = no_itemp) (cfg : Config.t) (source : source) : Stats.t =
  (match fuel with
  | Some f when f <= 0 -> invalid_arg "Cpu.run_stream: fuel must be positive"
  | _ -> ());
  (* Block-temperature table for the TRRIP i-cache policy: indexed by
     block id, 0 hot .. 3 cold.  Empty = no hints (every lookup yields
     -1, the policies' "unknown"). *)
  let nitemp = Array.length itemp in
  let fresh_slot () =
    {
      idx = -1;
      ev = dummy_event;
      fetch_request = -1;
      stall_i = 0;
      stall_bp = 0;
      fetched = -1;
      decoded = -1;
      renamed = -1;
      issued = -1;
      completed = -1;
      committed = -1;
      waiting_on = 0;
      ready_time = 0;
      dependents = [||];
      ndeps = 0;
      fanout = 0;
      in_iq = false;
    }
  in
  (* Ring capacity: every in-flight slot sits in the fetch queue, the
     decode queue or the ROB, plus the one not-yet-fetched head the
     fetch engine is staring at — so the live *population* is bounded by
     the machine window.  The live index *span* can exceed it: CDP
     markers retire at decode and vacate their slots early, so in
     marker-dense code the distance from oldest live slot to newest pull
     outgrows the population.  When a pull would land on a still-live
     record the ring doubles; the records kept are a contiguous index
     range shorter than the old capacity, so re-placing each at
     [idx mod ncap] never collides.  Capacity converges to the maximal
     span — a machine property, independent of stream length. *)
  let cap = ref (cfg.fetch_queue + cfg.decode_queue + cfg.rob + 8) in
  let ring = ref (Array.init !cap (fun _ -> fresh_slot ())) in
  let slot_at idx = !ring.(idx mod !cap) in
  let grow_ring () =
    let ncap = 2 * !cap in
    let nring = Array.init ncap (fun _ -> fresh_slot ()) in
    Array.iter
      (fun s -> if s.idx >= 0 then nring.(s.idx mod ncap) <- s)
      !ring;
    ring := nring;
    cap := ncap
  in
  let hier = Mem.Hierarchy.create cfg.mem in
  (* Warm the memory hierarchy to steady state: replay the trace's
     footprint through the caches (LRU order, no cost, no stats).  The
     paper samples minutes-old executions, so cold-start misses are not
     part of what any configuration should be charged for. *)
  if warm then
    Prog.Trace.Stream.iter
      (fun (e : Prog.Trace.event) ->
        Mem.Hierarchy.touch_i hier e.pc;
        if e.mem_addr >= 0 then Mem.Hierarchy.touch_d hier e.mem_addr)
      (source ());
  let cursor = source () in
  let bpu = Bpu.Predictor.create cfg.bpu in
  let crit_table =
    Criticality_table.create ~threshold:cfg.fanout_critical_threshold ()
  in
  let efetch = Efetch.create ~line_bytes:cfg.mem.line_bytes () in

  let invariant_fail fmt =
    Printf.ksprintf
      (fun msg -> failwith ("Cpu.run invariant violated: " ^ msg))
      fmt
  in

  (* Absent-slot sentinel: [head], [pending_mispredict] and the rename
     table hold direct slot references, with [no_slot] (compared by
     [==]) standing for "none" so the hot path never wraps a slot in
     [Some]. *)
  let no_slot = fresh_slot () in

  (* Queues between stages: stream indices into the slot ring. *)
  let fetch_q = iring_make cfg.fetch_queue in
  let decode_q = iring_make cfg.decode_queue in
  let rob = iring_make cfg.rob in

  (* Stream head: the next not-yet-fetched instruction, materialized
     into its ring slot the moment the fetch engine first needs it. *)
  let pulled = ref 0 in
  let head = ref no_slot in
  let exhausted = ref false in
  let peek_head () =
    if !head != no_slot then !head
    else if !exhausted then no_slot
    else begin
      let ev = Prog.Trace.Stream.next_ev cursor in
      if ev == Prog.Trace.Stream.end_marker then begin
        exhausted := true;
        no_slot
      end
      else begin
        let idx = !pulled in
        while
          (let s = slot_at idx in
           s.idx >= 0 && s.committed < 0)
        do
          grow_ring ()
        done;
        let s = slot_at idx in
        s.idx <- idx;
        s.ev <- ev;
        s.fetch_request <- -1;
        s.stall_i <- 0;
        s.stall_bp <- 0;
        s.fetched <- -1;
        s.decoded <- -1;
        s.renamed <- -1;
        s.issued <- -1;
        s.completed <- -1;
        s.committed <- -1;
        s.waiting_on <- 0;
        s.ready_time <- 0;
        s.ndeps <- 0;
        s.fanout <- 0;
        s.in_iq <- false;
        incr pulled;
        head := s;
        s
      end
    end
  in
  let advance_head () = head := no_slot in

  (* Issue queue: a flat array in insertion (age) order.  Capacity is
     bounded by cfg.iq (rename stops at that size), so one allocation
     serves the whole run; the backing array is created on first insert
     because [Array.make] needs a live slot as seed. *)
  let iq_cap = max 1 cfg.iq in
  let iq_arr : slot array ref = ref [||] in
  let iq_len = ref 0 in
  let iq_push s =
    if Array.length !iq_arr = 0 then iq_arr := Array.make iq_cap s;
    !iq_arr.(!iq_len) <- s;
    incr iq_len
  in
  (* Dependent edges are stored as global stream indices in growable int
     arrays — no list cons per wake-up edge.  The arrays survive slot
     recycling (only [ndeps] resets), so their footprint is O(window). *)
  let add_dependent producer (s : slot) =
    let nd = producer.ndeps in
    let cap = Array.length producer.dependents in
    if nd = cap then begin
      let grown = Array.make (max 4 (2 * cap)) 0 in
      Array.blit producer.dependents 0 grown 0 nd;
      producer.dependents <- grown
    end;
    producer.dependents.(nd) <- s.idx;
    producer.ndeps <- nd + 1
  in

  (* Completion calendar: a timing wheel of [wsize] buckets of stream
     indices, bucket [c mod wsize] holding the slots that finish at
     cycle [c].  Every completion lands at most a bounded execution
     latency ahead of [now] (the wheel doubles in the DRAM-bound worst
     case), and each bucket is drained exactly at its cycle, so two
     distinct cycles never occupy one bucket together.  Replaces the
     int-keyed hashtable whose per-schedule list cons and bucket churn
     were a minor-allocation source per simulated cycle.  The within-
     cycle wake-up order differs from the hashtable's LIFO lists, which
     is observationally irrelevant: the effects (decrement, max,
     reset) commute. *)
  let wsize = ref 1024 in
  let wheel = ref (Array.make !wsize [||]) in
  let wlen = ref (Array.make !wsize 0) in
  let wcount = ref 0 in
  let bucket_push wheel wlen b idx =
    let arr = wheel.(b) in
    let n = wlen.(b) in
    if n = Array.length arr then begin
      let grown = Array.make (imax 4 (2 * n)) 0 in
      Array.blit arr 0 grown 0 n;
      grown.(n) <- idx;
      wheel.(b) <- grown
    end
    else arr.(n) <- idx;
    wlen.(b) <- n + 1
  in
  let wheel_grow delta =
    let nsize = ref (2 * !wsize) in
    while delta >= !nsize do
      nsize := 2 * !nsize
    done;
    let nwheel = Array.make !nsize [||] in
    let nlen = Array.make !nsize 0 in
    for b = 0 to !wsize - 1 do
      let arr = !wheel.(b) in
      for k = 0 to !wlen.(b) - 1 do
        let idx = arr.(k) in
        bucket_push nwheel nlen ((slot_at idx).completed mod !nsize) idx
      done
    done;
    wheel := nwheel;
    wlen := nlen;
    wsize := !nsize
  in
  let schedule_completion ~now s cycle =
    s.completed <- cycle;
    if cycle - now >= !wsize then wheel_grow (cycle - now);
    bucket_push !wheel !wlen (cycle mod !wsize) s.idx;
    incr wcount
  in

  (* Register rename: last in-flight (or most recent) writer per reg.
     [rename_stamp] records the writer's stream index at write time; a
     mismatch against the record's current [idx] means the slot was
     recycled, which implies the original writer retired long ago — a
     case whose every effect below is a no-op anyway. *)
  let rename_table : slot array = Array.make Isa.Reg.count no_slot in
  let rename_stamp : int array = Array.make Isa.Reg.count (-1) in

  (* Fetch engine state. *)
  let fetch_resume_at = ref 0 in
  let cur_line = ref (-1) in
  let pending_mispredict = ref no_slot in
  let decode_block_until = ref 0 in

  (* Machine-level idle-fetch counters. *)
  let idle_supply = ref 0 in
  let idle_backpressure = ref 0 in
  (* Stall cycles accumulated since the last successful fetch cycle;
     attributed to the instructions of the next fetched group, which are
     the ones that were held at the fetch stage during the stall. *)
  let pending_stall_i = ref 0 in
  let pending_stall_bp = ref 0 in

  (* Functional units. *)
  let div_busy_until = ref 0 in

  (* Fetch-bandwidth counters (maintained in both fetch modes). *)
  let fbytes_total = ref 0 in
  let fgroups = ref 0 in

  (* Retirement counters. *)
  let committed_total = ref 0 in
  let committed_work = ref 0 in
  let thumb_committed = ref 0 in
  let cdp_markers = ref 0 in
  let critical_count = ref 0 in
  let commit_seq = ref 0 in
  (* Invariant-check bookkeeping (tiny when checks are off).  Producers
     are remembered as (slot, stream idx) pairs so the check survives
     the producer retiring and its record being recycled. *)
  let last_committed_idx = ref (-1) in
  let producers : (int, (slot * int) list) Hashtbl.t =
    Hashtbl.create (if checks then 1024 else 1)
  in
  let fetch_live = ref 0 in
  let fetch_active = ref 0 in
  let acc_all = new_acc () in
  let acc_crit = new_acc () in
  let acc_chain = new_acc () in

  let line_mask = lnot (cfg.mem.line_bytes - 1) in
  let line_of pc = pc land line_mask in

  let is_critical s = s.fanout >= cfg.fanout_critical_threshold in

  (* Stage attribution is computed once per retirement (the same
     arithmetic that used to live in [record], hoisted so the telemetry
     probe observes the very numbers the accumulators sum — keeping
     [Stats.t] bit-identical with the probe on or off). *)
  let record acc ~fetch_i ~fetch_rd ~decode ~issue_wait ~execute ~commit_wait
      =
    acc.count <- acc.count + 1;
    acc.fetch_i <- acc.fetch_i + fetch_i;
    acc.fetch_rd <- acc.fetch_rd + fetch_rd;
    acc.decode <- acc.decode + decode;
    acc.rename <- acc.rename + 1;
    acc.issue_wait <- acc.issue_wait + issue_wait;
    acc.execute <- acc.execute + execute;
    acc.commit_wait <- acc.commit_wait + commit_wait
  in

  let retire now (s : slot) =
    s.committed <- now;
    (match on_commit with
    | None -> ()
    | Some f -> f { commit_seq = !commit_seq; commit_cycle = now; event = s.ev });
    incr commit_seq;
    if checks then begin
      if s.idx <= !last_committed_idx then
        invariant_fail "out-of-order retirement: slot %d after slot %d" s.idx
          !last_committed_idx;
      last_committed_idx := s.idx;
      if
        not
          (0 <= s.fetch_request
          && s.fetch_request <= s.fetched
          && s.fetched < s.decoded && s.decoded < s.renamed
          && s.renamed < s.issued && s.issued <= s.completed
          && s.completed <= now)
      then
        invariant_fail
          "non-monotone stage timestamps for slot %d (uid %d): \
           req=%d f=%d d=%d r=%d i=%d x=%d c=%d"
          s.idx s.ev.instr.uid s.fetch_request s.fetched s.decoded s.renamed
          s.issued s.completed now
    end;
    incr committed_total;
    (* Work accounting mirrors Trace.work_count. *)
    let is_work =
      s.ev.instr.opcode <> Isa.Opcode.Cdp_switch
      && (s.ev.instr.uid >= Prog.Trace.control_uid_base
          || not (Isa.Opcode.is_control s.ev.instr.opcode))
    in
    if is_work then incr committed_work;
    if s.ev.instr.encoding = Isa.Instr.Thumb16 then incr thumb_committed;
    Criticality_table.train crit_table ~pc:s.ev.pc ~fanout:s.fanout;
    let fetch_i = s.stall_i in
    let fetch_rd = s.stall_bp + imax 0 (s.decoded - s.fetched - 1) in
    let decode = imax 0 (s.renamed - s.decoded) in
    let issue_wait = imax 0 (s.issued - s.renamed - 1) in
    let execute = imax 0 (s.completed - s.issued) in
    let commit_wait = imax 0 (s.committed - s.completed) in
    let critical = is_critical s in
    record acc_all ~fetch_i ~fetch_rd ~decode ~issue_wait ~execute
      ~commit_wait;
    if critical then begin
      incr critical_count;
      record acc_crit ~fetch_i ~fetch_rd ~decode ~issue_wait ~execute
        ~commit_wait
    end;
    if s.ev.instr.chain <> None then
      record acc_chain ~fetch_i ~fetch_rd ~decode ~issue_wait ~execute
        ~commit_wait;
    match probe with
    | None -> ()
    | Some p ->
      let chain_id, chain_pos, chain_len =
        match s.ev.instr.chain with
        | Some (c : Isa.Instr.chain_tag) -> (c.chain_id, c.pos, c.len)
        | None -> (-1, 0, 0)
      in
      Telemetry.Probe.retire p
        {
          cycle = now;
          critical;
          chain_id;
          chain_pos;
          chain_len;
          dispatch = s.renamed;
          fetch_i;
          fetch_rd;
          decode;
          rename = 1;
          issue_wait;
          execute;
          commit_wait;
        }
  in

  (* ---------------- pipeline stages, one call each per cycle ------- *)

  let do_commit now =
    let budget = ref cfg.width in
    let continue = ref true in
    while !continue && !budget > 0 && not (iring_is_empty rob) do
      let s = slot_at (iring_peek rob) in
      if s.completed >= 0 && s.completed <= now then begin
        ignore (iring_pop rob);
        if s.ev.instr.opcode = Isa.Opcode.Store && s.ev.mem_addr >= 0 then
          ignore (Mem.Hierarchy.dwrite_lat hier ~now ~pc:s.ev.pc s.ev.mem_addr);
        retire now s;
        decr budget
      end
      else continue := false
    done
  in

  let do_completions now =
    let b = now mod !wsize in
    let n = !wlen.(b) in
    if n > 0 then begin
      let arr = !wheel.(b) in
      for k = 0 to n - 1 do
        let s = slot_at arr.(k) in
        let deps = s.dependents in
        for j = 0 to s.ndeps - 1 do
          let dep = slot_at deps.(j) in
          if checks && dep.idx <> deps.(j) then
            invariant_fail
              "dependent slot %d recycled while producer %d in flight"
              deps.(j) s.idx;
          dep.waiting_on <- dep.waiting_on - 1;
          if dep.ready_time < now then dep.ready_time <- now
        done;
        s.ndeps <- 0
      done;
      !wlen.(b) <- 0;
      wcount := !wcount - n
    end
  in

  let unit_available now (op : Isa.Opcode.t) ~alu ~mul ~mem ~fp ~br =
    match Isa.Opcode.unit_kind op with
    | `Int_alu -> !alu < cfg.int_alus
    | `Int_mul ->
      !mul < cfg.mul_units
      && (op <> Isa.Opcode.Div || now >= !div_busy_until)
    | `Mem -> !mem < cfg.mem_ports
    | `Fp -> !fp < cfg.fp_units
    | `Branch -> !br < cfg.branch_units
    | `None -> true
  in

  let consume_unit now (op : Isa.Opcode.t) ~alu ~mul ~mem ~fp ~br =
    (match Isa.Opcode.unit_kind op with
    | `Int_alu -> incr alu
    | `Int_mul ->
      incr mul;
      if op = Isa.Opcode.Div then
        div_busy_until := now + Isa.Opcode.exec_latency Isa.Opcode.Div
    | `Mem -> incr mem
    | `Fp -> incr fp
    | `Branch -> incr br
    | `None -> ())
  in

  let issue_one now (s : slot) =
    if checks then begin
      match Hashtbl.find_opt producers s.idx with
      | None -> ()
      | Some ps ->
        List.iter
          (fun ((p : slot), pidx) ->
            (* A recycled record means the producer retired — and hence
               completed — before this issue; only live records carry
               timestamps worth checking. *)
            if p.idx = pidx && (p.completed < 0 || p.completed > now) then
              invariant_fail
                "slot %d (uid %d) issued at cycle %d before producer slot %d \
                 completed"
                s.idx s.ev.instr.uid now pidx)
          ps;
        Hashtbl.remove producers s.idx
    end;
    s.issued <- now;
    s.in_iq <- false;
    let completion =
      match s.ev.instr.opcode with
      | Isa.Opcode.Load when s.ev.mem_addr >= 0 ->
        now + 1 + Mem.Hierarchy.dread_lat hier ~now ~pc:s.ev.pc s.ev.mem_addr
      | Isa.Opcode.Store -> now + 1
      | op -> now + Isa.Opcode.exec_latency op
    in
    schedule_completion ~now s completion
  in

  (* Issue-stage scratch state, allocated once per run (not per cycle):
     the unit counters, the issue counter, and the per-cycle criticality
     flags for Critical_first (predict is queried exactly once per queue
     entry, in age order, matching the former List.partition). *)
  let alu = ref 0 and mul = ref 0 and mem = ref 0 and fp = ref 0 in
  let br = ref 0 in
  let issued = ref 0 in
  let crit_flags = Array.make iq_cap false in
  let try_issue now (s : slot) =
    if
      !issued < cfg.width && s.in_iq && s.waiting_on = 0
      && now >= s.ready_time
      && unit_available now s.ev.instr.opcode ~alu ~mul ~mem ~fp ~br
    then begin
      consume_unit now s.ev.instr.opcode ~alu ~mul ~mem ~fp ~br;
      issue_one now s;
      incr issued
    end
  in
  let do_issue now =
    if checks then begin
      (* The issue queue must stay within capacity and in age order —
         the select loops below rely on scanning it oldest-first. *)
      if !iq_len > cfg.iq then
        invariant_fail "issue queue over capacity: %d > %d" !iq_len cfg.iq;
      let a = !iq_arr in
      for i = 1 to !iq_len - 1 do
        if a.(i - 1).idx >= a.(i).idx then
          invariant_fail "issue queue not in age order at position %d" i
      done
    end;
    alu := 0;
    mul := 0;
    mem := 0;
    fp := 0;
    br := 0;
    issued := 0;
    let a = !iq_arr in
    let len = !iq_len in
    (match cfg.issue_policy with
    | Config.Oldest_first ->
      for i = 0 to len - 1 do
        try_issue now a.(i)
      done
    | Config.Critical_first ->
      for i = 0 to len - 1 do
        crit_flags.(i) <- Criticality_table.predict crit_table ~pc:a.(i).ev.pc
      done;
      for i = 0 to len - 1 do
        if crit_flags.(i) then try_issue now a.(i)
      done;
      for i = 0 to len - 1 do
        if not crit_flags.(i) then try_issue now a.(i)
      done);
    if !issued > 0 then begin
      (* Compact in place, preserving age order. *)
      let j = ref 0 in
      for i = 0 to len - 1 do
        let s = a.(i) in
        if s.in_iq then begin
          a.(!j) <- s;
          incr j
        end
      done;
      iq_len := !j
    end
  in

  (* Rename scratch: the distinct producers seen for the instruction
     being renamed (at most one per register read — a handful).  A
     reused array instead of a consed list, and the instruction's
     register lists are walked directly instead of through
     [Instr.regs_read]/[regs_written], whose Store/writer cases build a
     fresh list per call. *)
  let seen = ref (Array.make 8 no_slot) in
  let seen_n = ref 0 in
  let note_read now (s : slot) ri =
    let producer = rename_table.(ri) in
    (* [no_slot]: no writer yet.  A stamp mismatch means the record was
       recycled, so the original writer retired — for which every
       branch below is a no-op. *)
    if
      producer != no_slot && producer != s
      && producer.idx = rename_stamp.(ri)
    then begin
      let dup = ref false in
      for k = 0 to !seen_n - 1 do
        if !seen.(k) == producer then dup := true
      done;
      if not !dup then begin
        if !seen_n = Array.length !seen then begin
          let grown = Array.make (2 * !seen_n) no_slot in
          Array.blit !seen 0 grown 0 !seen_n;
          seen := grown
        end;
        !seen.(!seen_n) <- producer;
        incr seen_n;
        if producer.committed < 0 then producer.fanout <- producer.fanout + 1;
        if producer.completed < 0 then begin
          (* completion time unknown: wait for wake-up *)
          add_dependent producer s;
          s.waiting_on <- s.waiting_on + 1
        end
        else if producer.completed > now then begin
          if producer.completed > s.ready_time then
            s.ready_time <- producer.completed
        end
      end
    end
  in
  let rec note_reads now s = function
    | [] -> ()
    | r :: tl ->
      note_read now s (Isa.Reg.index r);
      note_reads now s tl
  in

  let do_rename now =
    let budget = ref cfg.width in
    let continue = ref true in
    while
      !continue && !budget > 0
      && (not (iring_is_empty decode_q))
      && rob.n < cfg.rob
      && !iq_len < cfg.iq
    do
      let s = slot_at (iring_peek decode_q) in
      if s.decoded >= 0 && s.decoded < now then begin
        ignore (iring_pop decode_q);
        s.renamed <- now;
        s.ready_time <- now + 1;
        seen_n := 0;
        note_reads now s s.ev.instr.srcs;
        (match s.ev.instr.opcode with
        | Isa.Opcode.Store ->
          (* A store also reads its data "dst" (cf. Instr.regs_read). *)
          (match s.ev.instr.dst with
          | Some r -> note_read now s (Isa.Reg.index r)
          | None -> ())
        | _ -> ());
        if checks && !seen_n > 0 then begin
          let ps = ref [] in
          for k = !seen_n - 1 downto 0 do
            let p = !seen.(k) in
            ps := (p, p.idx) :: !ps
          done;
          Hashtbl.replace producers s.idx !ps
        end;
        (match s.ev.instr.opcode with
        | Isa.Opcode.Store | Isa.Opcode.Branch -> ()
        | _ -> (
          match s.ev.instr.dst with
          | Some r ->
            let ri = Isa.Reg.index r in
            rename_table.(ri) <- s;
            rename_stamp.(ri) <- s.idx
          | None -> ()));
        iring_push rob s.idx;
        iq_push s;
        s.in_iq <- true;
        decr budget
      end
      else continue := false
    done
  in

  let do_decode now =
    if now >= !decode_block_until then begin
      let budget = ref cfg.width in
      let continue = ref true in
      while
        !continue && !budget > 0
        && (not (iring_is_empty fetch_q))
        && decode_q.n < cfg.decode_queue
      do
        let s = slot_at (iring_peek fetch_q) in
        if s.fetched >= 0 && s.fetched < now then begin
          ignore (iring_pop fetch_q);
          s.decoded <- now;
          decr budget;
          if s.ev.instr.opcode = Isa.Opcode.Cdp_switch then begin
            (* The CDP marker retires at decode: it informs the decoder
               of the format switch.  It always consumes a decode slot;
               the paper's conservative one extra decode-stage cycle is
               the default penalty, ending this decode cycle at the
               marker.  A penalty of 0 models free switching (used by
               the CDP-cost ablation). *)
            if cfg.cdp_decode_penalty > 0 then begin
              decode_block_until := now + cfg.cdp_decode_penalty - 1;
              continue := false
            end;
            s.renamed <- now;
            s.issued <- now;
            s.completed <- now;
            s.committed <- now;
            incr cdp_markers;
            incr committed_total;
            match probe with
            | Some p ->
              Telemetry.Probe.cdp_marker p ~cycle:now
                ~penalty:cfg.cdp_decode_penalty
            | None -> ()
          end
          else iring_push decode_q s.idx
        end
        else continue := false
      done
    end
  in

  (* Fetch-stage scratch refs, allocated once per run. *)
  let bytes = ref 0 in
  let new_line_accessed = ref false in
  let fetched_any = ref false in
  let blocked_bp = ref false in
  let stop = ref false in
  let do_fetch now =
    let first = peek_head () in
    if first != no_slot then begin
      if checks then incr fetch_live;
      if first.fetch_request < 0 then first.fetch_request <- now;
      (* Redirect pending: wait for the mispredicted branch to resolve. *)
      let blocked_redirect =
        let b = !pending_mispredict in
        if b == no_slot then false
        else if
          b.completed >= 0 && now >= b.completed + cfg.mispredict_penalty
        then begin
          pending_mispredict := no_slot;
          cur_line := -1;
          false
        end
        else true
      in
      if blocked_redirect || now < !fetch_resume_at then begin
        (* Wrong-path modelling: while waiting on an unresolved branch
           the front end keeps streaming sequential lines from the
           not-taken path through the i-cache — pollution and pointless
           energy, occasionally useful warming, exactly as on real
           hardware.  The wrong-path instructions themselves are not
           simulated (their results are squashed). *)
        if blocked_redirect && cfg.wrong_path_fetch then begin
          let b = !pending_mispredict in
          if b != no_slot then begin
            let line = cfg.mem.line_bytes in
            let ahead =
              let d = now - b.fetched in
              if d <= 0 then 0 else if d >= 8 then 8 else d
            in
            let wrong_pc = b.ev.pc + b.ev.size + (line * ahead) in
            ignore (Mem.Hierarchy.ifetch_lat hier ~now wrong_pc)
          end
        end;
        incr pending_stall_i;
        incr idle_supply
      end
      else begin
        (* Group budget.  Default mode: a flat [fetch_bytes] allowance,
           regardless of alignment — the seed-era behaviour the golden
           digests pin.  Byte-accurate mode: the group is the aligned
           [fetch_bytes] window the head's pc falls in, so only the
           bytes from pc to the window end are available this cycle.
           [fetch_bytes] is a power of two in every configuration. *)
        bytes :=
          if cfg.byte_fetch then
            cfg.fetch_bytes - (first.ev.pc land (cfg.fetch_bytes - 1))
          else cfg.fetch_bytes;
        new_line_accessed := false;
        fetched_any := false;
        blocked_bp := false;
        stop := false;
        while not !stop do
          let s = peek_head () in
          if s == no_slot then stop := true
          else begin
            if s.fetch_request < 0 then s.fetch_request <- now;
            if fetch_q.n >= cfg.fetch_queue then begin
              blocked_bp := true;
              stop := true
            end
            else begin
              let line = line_of s.ev.pc in
              if line <> !cur_line && !new_line_accessed then
                (* second new line in one cycle: wait for next cycle *)
                stop := true
              else begin
                if line <> !cur_line then begin
                  let hint =
                    let b = s.ev.block_id in
                    if b >= 0 && b < nitemp then itemp.(b) else -1
                  in
                  let lat =
                    Mem.Hierarchy.ifetch_lat_hinted hier ~now ~hint s.ev.pc
                  in
                  new_line_accessed := true;
                  cur_line := line;
                  if lat > cfg.mem.l1i_hit then begin
                    fetch_resume_at := now + lat - cfg.mem.l1i_hit;
                    stop := true
                  end
                end;
                if (not !stop) && !bytes < s.ev.size then begin
                  (* In byte-accurate mode an instruction straddling the
                     window boundary at the very start of a group is
                     still fetched (hardware fetches both windows over
                     two accesses); the negative remaining budget then
                     terminates the group, so fetch always progresses.
                     Mid-group straddles wait for the next window. *)
                  if not (cfg.byte_fetch && not !fetched_any) then
                    stop := true
                end;
                if not !stop then begin
                  bytes := !bytes - s.ev.size;
                  fbytes_total := !fbytes_total + s.ev.size;
                  s.fetched <- now;
                  s.stall_i <- s.stall_i + !pending_stall_i;
                  s.stall_bp <- s.stall_bp + !pending_stall_bp;
                  iring_push fetch_q s.idx;
                  fetched_any := true;
                  advance_head ();
                  (* Optimization hooks that observe the fetch stream. *)
                  (match s.ev.instr.opcode with
                  | Isa.Opcode.Call when cfg.efetch ->
                    List.iter
                      (fun addr -> Mem.Hierarchy.prefetch_i hier ~now addr)
                      (Efetch.on_call efetch ~target:s.ev.next_pc)
                  | Isa.Opcode.Load
                    when cfg.critical_load_prefetch && s.ev.mem_addr >= 0
                         && Criticality_table.predict crit_table ~pc:s.ev.pc
                    ->
                    Mem.Hierarchy.prefetch_d hier ~now ~pc:s.ev.pc
                      s.ev.mem_addr
                  | _ -> ());
                  (* Control flow: mispredicts block fetch; correct taken
                     transfers end the fetch group. *)
                  if s.ev.is_cond_branch then begin
                    let correct =
                      Bpu.Predictor.predict_and_update bpu ~pc:s.ev.pc
                        ~taken:s.ev.taken
                    in
                    if not correct then begin
                      pending_mispredict := s;
                      stop := true
                    end
                    else if s.ev.taken then stop := true
                  end
                  else if s.ev.fetch_break then stop := true
                end
              end
            end
          end
        done;
        if !fetched_any then begin
          incr fgroups;
          if checks then incr fetch_active;
          pending_stall_i := 0;
          pending_stall_bp := 0
        end
        else if !blocked_bp then begin
          incr pending_stall_bp;
          incr idle_backpressure
        end
        else begin
          incr pending_stall_i;
          incr idle_supply
        end
      end
    end
  in

  (* ------------------------------ main loop ------------------------ *)
  (* Prime the head so an empty stream finishes in zero cycles, exactly
     as the materialized path always has. *)
  ignore (peek_head ());
  let now = ref 0 in
  let finished () =
    !exhausted
    && !head == no_slot
    && iring_is_empty fetch_q && iring_is_empty decode_q
    && iring_is_empty rob
  in
  (* Cooperative deadline: the fuel budget bounds simulated cycles, so a
     runaway or stalled job aborts deterministically at the same cycle
     on every run — the watchdog the supervised harness relies on. *)
  let fuel_limit = match fuel with Some f -> f | None -> max_int in
  while not (finished ()) do
    if !now >= fuel_limit then begin
      (match probe with
      | Some p ->
        Telemetry.Probe.fault p ~cycle:!now ~kind:"fuel_exhausted";
        Telemetry.Probe.finish p ~cycles:!now
      | None -> ());
      Util.Err.failf Timeout
        "simulation fuel exhausted: %d cycles simulated, %d events pulled, \
         %d committed"
        !now !pulled !committed_total
    end;
    if !now > (!pulled * 300) + 1_000_000 then
      failwith "Cpu.run: deadlock (cycle guard exceeded)";
    do_commit !now;
    do_completions !now;
    do_issue !now;
    do_rename !now;
    do_decode !now;
    do_fetch !now;
    incr now
  done;

  let n = !pulled in
  if checks then begin
    (* End-of-run accounting identities. *)
    if !committed_total <> n then
      invariant_fail "committed %d of %d trace events" !committed_total n;
    if !iq_len <> 0 then
      invariant_fail "issue queue not drained (%d entries left)" !iq_len;
    if !wcount <> 0 then
      invariant_fail "completion calendar not drained (%d entries pending)"
        !wcount;
    if Hashtbl.length producers <> 0 then
      invariant_fail "producer bookkeeping not drained (%d entries)"
        (Hashtbl.length producers);
    if acc_all.count <> !committed_total - !cdp_markers then
      invariant_fail "stage accounting: %d recorded <> %d committed - %d markers"
        acc_all.count !committed_total !cdp_markers;
    (* The Fig. 3 fetch split: StallForI + StallForR/D + Active must
       cover every cycle the fetch engine was live. *)
    if !fetch_live <> !fetch_active + !idle_supply + !idle_backpressure then
      invariant_fail
        "fetch accounting: %d live cycles <> %d active + %d supply-stall + \
         %d backpressure-stall"
        !fetch_live !fetch_active !idle_supply !idle_backpressure;
    (* Telemetry accounting contract: the probe's running totals must
       reproduce the stage accumulators field-for-field. *)
    match probe with
    | None -> ()
    | Some p ->
      let check_pop name pop (a : acc) =
        let t : Telemetry.Probe.stage_totals = Telemetry.Probe.totals p pop in
        if
          t.count <> a.count || t.fetch_i <> a.fetch_i
          || t.fetch_rd <> a.fetch_rd || t.decode <> a.decode
          || t.rename <> a.rename || t.issue_wait <> a.issue_wait
          || t.execute <> a.execute || t.commit_wait <> a.commit_wait
        then
          invariant_fail
            "telemetry totals diverge from stage accounting for the %s \
             population (probe count %d vs %d)"
            name t.count a.count
      in
      check_pop "all" Telemetry.Probe.All acc_all;
      check_pop "critical" Telemetry.Probe.Critical acc_crit;
      check_pop "chain" Telemetry.Probe.Chain acc_chain
  end;
  (match probe with
  | Some p -> Telemetry.Probe.finish p ~cycles:!now
  | None -> ());

  {
    Stats.cycles = !now;
    committed_total = !committed_total;
    committed_work = !committed_work;
    thumb_committed = !thumb_committed;
    cdp_markers = !cdp_markers;
    critical_count = !critical_count;
    fetch_idle_supply = !idle_supply;
    fetch_idle_backpressure = !idle_backpressure;
    stage_all = acc_to_summary acc_all;
    stage_critical = acc_to_summary acc_crit;
    stage_chain = acc_to_summary acc_chain;
    bpu = Bpu.Predictor.stats bpu;
    l1i = Mem.Hierarchy.l1i_stats hier;
    l1d = Mem.Hierarchy.l1d_stats hier;
    l2 = Mem.Hierarchy.l2_stats hier;
    dram = Mem.Hierarchy.dram_stats hier;
    efetch_predictions = Efetch.predictions efetch;
    efetch_correct = Efetch.correct efetch;
    fetch_bytes = !fbytes_total;
    fetch_groups = !fgroups;
    iopp_misses = Mem.Hierarchy.iopp_misses hier;
    iopp_predictable = Mem.Hierarchy.iopp_predictable hier;
  }

let run ?warm ?checks ?fuel ?on_commit ?probe ?itemp (cfg : Config.t)
    (trace : Prog.Trace.t) : Stats.t =
  run_stream ?warm ?checks ?fuel ?on_commit ?probe ?itemp cfg (fun () ->
      Prog.Trace.Stream.of_trace trace)
