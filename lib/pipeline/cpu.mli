(** Trace-driven cycle-level out-of-order core.

    The model implements the Table I machine: a [width]-wide
    fetch/decode/rename/issue/execute/commit pipeline with a 128-entry
    ROB, a decoupling fetch buffer, register-renamed RAW dependences, a
    two-level branch predictor, and the {!Mem.Hierarchy} for both
    instruction and data sides.  Wrong-path work is not simulated; a
    mispredicted branch stalls fetch until it resolves plus a redirect
    penalty, which is the standard trace-driven approximation.

    Special instruction handling:
    - 16-bit (Thumb) instructions occupy half the fetch-group bytes,
      which is how the CritIC transformation buys fetch bandwidth;
    - [Cdp_switch] markers occupy fetch bytes and a decode slot, add
      {!Config.t.cdp_decode_penalty} cycles at decode, and retire there
      without entering the ROB;
    - body control instructions (the Approach-1 switch branches) execute
      on the branch unit and always break the fetch group. *)

type commit = {
  commit_seq : int;    (** position in the ROB retirement stream *)
  commit_cycle : int;  (** cycle the instruction retired *)
  event : Prog.Trace.event;
}
(** One ROB retirement, as observed by [?on_commit].  [Cdp_switch]
    markers retire at decode and never enter the ROB, so they do not
    appear in this stream. *)

type source = unit -> Prog.Trace.Stream.cursor
(** A replayable event source.  The simulator pulls the stream twice per
    run — once for the warm pass and once for simulation — so the
    thunk must yield a fresh cursor over the same events each call. *)

val run_stream :
  ?warm:bool ->
  ?checks:bool ->
  ?fuel:int ->
  ?on_commit:(commit -> unit) ->
  ?probe:Telemetry.Probe.t ->
  ?itemp:int array ->
  Config.t ->
  source ->
  Stats.t
(** Simulate an event stream to completion and report statistics.  Peak
    memory is O(window): in-flight instructions live in a fixed ring of
    slot records sized by fetch queue + decode queue + ROB, recycled in
    stream order, so arbitrarily long streams simulate without ever
    materializing a trace.

    [warm] (default true) replays the stream's memory footprint through
    the cache hierarchy first, so measurements reflect steady state
    rather than cold start.  Raises [Failure] if the machine deadlocks
    (internal invariant violation).

    [checks] (default false) enables runtime self-verification:
    in-order retirement, monotone per-instruction stage timestamps,
    issue-queue capacity and age ordering, no instruction issuing before
    all of its renamed producers have completed, and end-of-run
    accounting identities (every stream
    event committed; queues and the completion calendar drained; stage
    counts = committed − CDP markers; fetch-stall split covers every
    live fetch cycle).  A violation raises [Failure] naming the
    invariant.  Used by the differential test harness; costs a few
    percent of runtime.

    [fuel] is a cooperative per-run deadline in simulated cycles: when
    the main loop reaches that cycle the run aborts by raising
    [Util.Err.Error] with kind [Timeout] (deterministically — the same
    stream and configuration abort at the same cycle on every host).
    The warm pass is not fuel-metered; it is linear in the stream.
    Default: unlimited.  Raises [Invalid_argument] if [fuel <= 0].

    [on_commit] observes every ROB retirement in order — the hook the
    oracle differential harness lines up against the golden model's
    commit log.

    [probe] attaches a {!Telemetry.Probe}: it is fed one record per ROB
    retirement (with the exact stage-attribution values the stage
    accumulators sum), one notification per CDP marker consumed at
    decode, and a fault notification if the fuel watchdog trips; its
    windows are flushed before the function returns.  The probe is
    purely observational — the returned [Stats.t] is bit-identical with
    or without one attached — and with [checks] on, the end-of-run
    identities additionally assert that the probe's running totals equal
    the stage accumulators for all three populations.

    [itemp] is a per-block temperature table (indexed by
    [Prog.Trace.event.block_id]; 0 hot .. 3 cold) consulted on every
    demand i-fetch line transition and passed to the hierarchy as the
    L1i replacement fill hint — the feedback path of the TRRIP policy
    ({!Mem.Replacement.Trrip}).  Out-of-range ids (and the default
    empty table) yield -1, "unknown".  Policies other than TRRIP
    ignore the hint, so passing a table under the default
    configuration changes nothing. *)

val run :
  ?warm:bool ->
  ?checks:bool ->
  ?fuel:int ->
  ?on_commit:(commit -> unit) ->
  ?probe:Telemetry.Probe.t ->
  ?itemp:int array ->
  Config.t ->
  Prog.Trace.t ->
  Stats.t
(** {!run_stream} over a materialized trace — bit-identical statistics.
    Kept as the convenient entry point for tests and callers that
    already hold arrays. *)
