(** Trace-driven cycle-level out-of-order core.

    The model implements the Table I machine: a [width]-wide
    fetch/decode/rename/issue/execute/commit pipeline with a 128-entry
    ROB, a decoupling fetch buffer, register-renamed RAW dependences, a
    two-level branch predictor, and the {!Mem.Hierarchy} for both
    instruction and data sides.  Wrong-path work is not simulated; a
    mispredicted branch stalls fetch until it resolves plus a redirect
    penalty, which is the standard trace-driven approximation.

    Special instruction handling:
    - 16-bit (Thumb) instructions occupy half the fetch-group bytes,
      which is how the CritIC transformation buys fetch bandwidth;
    - [Cdp_switch] markers occupy fetch bytes and a decode slot, add
      {!Config.t.cdp_decode_penalty} cycles at decode, and retire there
      without entering the ROB;
    - body control instructions (the Approach-1 switch branches) execute
      on the branch unit and always break the fetch group. *)

val run : ?warm:bool -> Config.t -> Prog.Trace.t -> Stats.t
(** Simulate the whole event stream to completion and report statistics.
    [warm] (default true) replays the trace's memory footprint through
    the cache hierarchy first, so measurements reflect steady state
    rather than cold start.  Raises [Failure] if the machine deadlocks
    (internal invariant violation). *)
