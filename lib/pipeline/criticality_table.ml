type t = {
  confidence : int array; (* 2-bit counters; predict critical when >= 2 *)
  tags : int array;
  threshold : int;
  mutable hits : int;
}

let create ?(entries = 4096) ~threshold () =
  {
    confidence = Array.make entries 0;
    tags = Array.make entries (-1);
    threshold;
    hits = 0;
  }

let slot t pc = (pc lsr 1) mod Array.length t.confidence

let predict t ~pc =
  let i = slot t pc in
  let critical = t.tags.(i) = pc && t.confidence.(i) >= 2 in
  if critical then t.hits <- t.hits + 1;
  critical

let train t ~pc ~fanout =
  let i = slot t pc in
  if t.tags.(i) <> pc then begin
    t.tags.(i) <- pc;
    t.confidence.(i) <- if fanout >= t.threshold then 2 else 0
  end
  else if fanout >= t.threshold then begin
    (* int-specialized saturation: train runs once per retirement *)
    let c = t.confidence.(i) in
    t.confidence.(i) <- (if c >= 3 then 3 else c + 1)
  end
  else begin
    let c = t.confidence.(i) in
    t.confidence.(i) <- (if c <= 0 then 0 else c - 1)
  end

let predicted_critical t = t.hits
