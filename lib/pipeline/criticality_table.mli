(** PC-indexed criticality predictor.

    The conventional hardware scheme (Sec. II-A of the paper): a table,
    looked up at fetch with the PC, remembers which static instructions
    exceeded the fanout threshold on earlier executions — "similar to
    branch predictors".  Drives both the critical-load prefetching
    baseline [18] and the BackendPrio issue policy [32, 33]. *)

type t

val create : ?entries:int -> threshold:int -> unit -> t
(** [entries] defaults to 4096 (direct-mapped by PC). *)

val predict : t -> pc:int -> bool
(** Whether the instruction at [pc] is predicted critical. *)

val train : t -> pc:int -> fanout:int -> unit
(** Record the observed fanout of a completed instruction; a 2-bit
    confidence counter hysteresis avoids flapping on variable fanout. *)

val predicted_critical : t -> int
(** Number of [predict] calls that answered [true]. *)
