type t = {
  table : int array; (* signature slot -> predicted call target; 0 = cold *)
  lines_ahead : int;
  line_bytes : int;
  mutable signature : int;
  mutable last_prediction : int;
  mutable predictions : int;
  mutable correct : int;
}

let create ?(entries = 4096) ?(lines_ahead = 4) ?(line_bytes = 64) () =
  {
    table = Array.make entries 0;
    lines_ahead;
    line_bytes;
    signature = 0;
    last_prediction = 0;
    predictions = 0;
    correct = 0;
  }

let slot t = (t.signature * 0x9E3779B1 land max_int) mod Array.length t.table

let on_call t ~target =
  (* Score the previous prediction against what actually happened. *)
  if t.last_prediction <> 0 then begin
    t.predictions <- t.predictions + 1;
    if t.last_prediction = target then t.correct <- t.correct + 1
  end;
  (* Learn: the current signature led to [target]. *)
  let i = slot t in
  let predicted = t.table.(i) in
  t.table.(i) <- target;
  (* Advance the signature with the new call. *)
  t.signature <- (t.signature lsl 8) lxor target lxor (t.signature lsr 17);
  (* Predict the call after this one from the updated history. *)
  let next = t.table.(slot t) in
  t.last_prediction <- next;
  ignore predicted;
  if next = 0 then []
  else List.init t.lines_ahead (fun k -> next + (k * t.line_bytes))

let predictions t = t.predictions
let correct t = t.correct
