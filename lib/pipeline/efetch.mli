(** EFetch-style instruction prefetcher [71].

    EFetch targets user-event-driven code: it tracks a signature of the
    recent call history and uses it to predict the function that will be
    called next, prefetching that function's leading i-cache lines.  The
    paper cites a 39 KB lookup table; we model a 4096-entry table keyed
    by a hash of the last few call targets. *)

type t

val create : ?entries:int -> ?lines_ahead:int -> ?line_bytes:int -> unit -> t
(** [lines_ahead] is how many leading lines of the predicted function to
    prefetch (default 4); [line_bytes] is the i-cache line size the
    prefetch addresses stride by (default 64, matching Table I — pass
    the configuration's [mem.line_bytes] so prefetches stay
    line-aligned on non-default hierarchies). *)

val on_call : t -> target:int -> int list
(** [on_call t ~target] is invoked when a call to [target] is fetched.
    It returns the addresses to prefetch for the *predicted next* call
    (empty on a cold signature) and then folds [target] into the
    history. *)

val predictions : t -> int
val correct : t -> int
(** Prediction accuracy counters, for reporting. *)
