type stage_summary = {
  count : int;
  fetch_i : int;
  fetch_rd : int;
  decode : int;
  rename : int;
  issue_wait : int;
  execute : int;
  commit_wait : int;
}

let empty_summary =
  {
    count = 0;
    fetch_i = 0;
    fetch_rd = 0;
    decode = 0;
    rename = 0;
    issue_wait = 0;
    execute = 0;
    commit_wait = 0;
  }

let summary_total s =
  s.fetch_i + s.fetch_rd + s.decode + s.rename + s.issue_wait + s.execute
  + s.commit_wait

let summary_shares s =
  (* An empty population (e.g. no CritIC-tagged instructions under
     Baseline) has nothing to normalize by: report all-zero shares
     rather than dividing by zero. *)
  let total = summary_total s in
  let f = if total = 0 then fun _ -> 0.0 else
      fun x -> float_of_int x /. float_of_int total in
  [
    ("fetch.stall_for_i", f s.fetch_i);
    ("fetch.stall_for_r+d", f s.fetch_rd);
    ("decode", f s.decode);
    ("rename", f s.rename);
    ("issue", f s.issue_wait);
    ("execute", f s.execute);
    ("commit", f s.commit_wait);
  ]

type t = {
  cycles : int;
  committed_total : int;
  committed_work : int;
  thumb_committed : int;
  cdp_markers : int;
  critical_count : int;
  fetch_idle_supply : int;
  fetch_idle_backpressure : int;
  stage_all : stage_summary;
  stage_critical : stage_summary;
  stage_chain : stage_summary;
  bpu : Bpu.Predictor.stats;
  l1i : Mem.Cache.stats;
  l1d : Mem.Cache.stats;
  l2 : Mem.Cache.stats;
  dram : Mem.Dram.stats;
  efetch_predictions : int;
  efetch_correct : int;
  (* New fields go at the end: the golden-digest tests marshal a
     projection tuple of the seed-era fields (see test_golden.ml), which
     only stays byte-compatible if the established prefix keeps its
     declaration order. *)
  fetch_bytes : int;
  fetch_groups : int;
  iopp_misses : int;
      (* opportunity mode: i-fetch line transitions that missed the L1i *)
  iopp_predictable : int;
      (* of those, misses a last-successor predictor would have covered *)
}

let opportunity_fraction t =
  if t.iopp_misses = 0 then 0.0
  else float_of_int t.iopp_predictable /. float_of_int t.iopp_misses

let bytes_per_cycle t =
  if t.cycles = 0 then 0.0
  else float_of_int t.fetch_bytes /. float_of_int t.cycles

let ipc t =
  if t.cycles = 0 then 0.0
  else float_of_int t.committed_work /. float_of_int t.cycles

let critical_fraction t =
  if t.committed_work = 0 then 0.0
  else float_of_int t.critical_count /. float_of_int t.committed_work

let render t =
  let cache_line name (c : Mem.Cache.stats) =
    ( name,
      Printf.sprintf "%d accesses, %d misses (%.2f%%)" c.accesses c.misses
        (if c.accesses = 0 then 0.0
         else 100.0 *. float_of_int c.misses /. float_of_int c.accesses) )
  in
  let shares s =
    summary_shares s
    |> List.map (fun (k, v) -> Printf.sprintf "%s %.1f%%" k (100.0 *. v))
    |> String.concat ", "
  in
  Util.Text_table.render_kv
    ([
      ("cycles", string_of_int t.cycles);
      ("committed (work)", string_of_int t.committed_work);
      ("committed (total)", string_of_int t.committed_total);
      ("IPC (work)", Printf.sprintf "%.3f" (ipc t));
      ("critical fraction", Util.Stats.pct (critical_fraction t));
      ("thumb committed", string_of_int t.thumb_committed);
      ("cdp markers", string_of_int t.cdp_markers);
      ("fetch idle (supply)", string_of_int t.fetch_idle_supply);
      ("fetch idle (backpressure)", string_of_int t.fetch_idle_backpressure);
      ( "fetch bandwidth",
        Printf.sprintf "%d bytes in %d groups (%.2f B/cycle)" t.fetch_bytes
          t.fetch_groups (bytes_per_cycle t) );
    ]
    (* Opportunity counters only exist when the characterization mode
       ran; omitting the line otherwise keeps default output
       byte-identical to the seed. *)
    @ (if t.iopp_misses = 0 then []
       else
         [
           ( "i-prefetch opportunity",
             Printf.sprintf "%d line misses, %d predictable (%.1f%%)"
               t.iopp_misses t.iopp_predictable
               (100.0 *. opportunity_fraction t) );
         ])
    @ [
      ("stage shares (all)", shares t.stage_all);
      ("stage shares (critical)", shares t.stage_critical);
      ( "bpu",
        Printf.sprintf "%d lookups, %d mispredicts" t.bpu.lookups
          t.bpu.mispredicts );
      cache_line "l1i" t.l1i;
      cache_line "l1d" t.l1d;
      cache_line "l2" t.l2;
      ( "dram",
        Printf.sprintf "%d reads, %d writes, %d row hits, %d row misses"
          t.dram.reads t.dram.writes t.dram.row_hits t.dram.row_misses );
    ])
