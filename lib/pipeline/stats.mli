(** Simulation results.

    Per-instruction residencies are aggregated into stage summaries for
    three populations: all instructions, critical (high-fanout)
    instructions — the paper's Fig. 3 population — and CritIC-tagged
    instructions (after the compiler pass).  Fetch time is split into
    the paper's two components: [fetch_i] (F.StallForI — waiting for
    supply: i-cache misses, branch redirects) and [fetch_rd]
    (F.StallForR+D — waiting to drain into decode against
    back-pressure). *)

type stage_summary = {
  count : int;          (** instructions in this population *)
  fetch_i : int;        (** cycles: F.StallForI *)
  fetch_rd : int;       (** cycles: F.StallForR+D *)
  decode : int;
  rename : int;
  issue_wait : int;     (** dispatch → issue (dependences + resources) *)
  execute : int;        (** issue → completion *)
  commit_wait : int;    (** completion → commit (ROB residency) *)
}

val empty_summary : stage_summary

val summary_total : stage_summary -> int
(** Sum of all stage cycles. *)

val summary_shares : stage_summary -> (string * float) list
(** Normalized per-stage shares, in pipeline order.  An empty population
    (zero total stage cycles) yields all-zero shares. *)

type t = {
  cycles : int;
  committed_total : int;   (** everything that retired, incl. overhead *)
  committed_work : int;    (** work instructions (excl. CDP markers and
                               transform-inserted switch branches) *)
  thumb_committed : int;   (** retired instructions in 16-bit format *)
  cdp_markers : int;       (** CDP switch markers consumed at decode *)
  critical_count : int;    (** committed instructions with fanout ≥
                               threshold *)
  fetch_idle_supply : int; (** cycles fetch delivered nothing for supply
                               reasons (i-cache miss, redirect) *)
  fetch_idle_backpressure : int;
      (** cycles fetch delivered nothing because the fetch buffer was
          full *)
  stage_all : stage_summary;
  stage_critical : stage_summary;
  stage_chain : stage_summary;
  bpu : Bpu.Predictor.stats;
  l1i : Mem.Cache.stats;
  l1d : Mem.Cache.stats;
  l2 : Mem.Cache.stats;
  dram : Mem.Dram.stats;
  efetch_predictions : int;
  efetch_correct : int;
  fetch_bytes : int;
      (** instruction bytes delivered by fetch groups (counted whether or
          not {!Config.t.byte_fetch} is on; under byte-accurate fetch the
          group boundaries depend on these widths) *)
  fetch_groups : int;
      (** fetch groups formed (cycles in which fetch delivered ≥ 1
          instruction) *)
  iopp_misses : int;
      (** opportunity mode ({!Mem.Hierarchy.config.l1i_opportunity}):
          i-fetch line transitions that missed the L1i; 0 when the mode
          is off *)
  iopp_predictable : int;
      (** of {!iopp_misses}, those a last-successor predictor over prior
          fetch history would have named — the Zhao-style upper bound on
          history-based instruction prefetching *)
}
(** New fields are appended at the end: the golden-digest tests marshal
    a projection tuple of the seed-era prefix, which pins its
    declaration order. *)

val ipc : t -> float
(** Work instructions per cycle. *)

val bytes_per_cycle : t -> float
(** Fetch bandwidth actually used: instruction bytes delivered per
    simulated cycle. *)

val critical_fraction : t -> float
(** Share of committed work instructions classified critical. *)

val opportunity_fraction : t -> float
(** [iopp_predictable / iopp_misses]; 0 when no misses were observed
    (in particular whenever opportunity mode was off). *)

val render : t -> string
(** Multi-line human-readable report. *)
