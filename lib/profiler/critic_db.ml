type site = {
  block_id : int;
  start_index : int;
  member_indices : int list;
  uids : int list;
  key : string;
  occurrences : int;
  criticality : float;
  convertible : bool;
}

let site_length s = List.length s.uids

type t = {
  sites : site list;
  total_work : int;
  ic_lengths : Util.Dist.Histogram.t;
  ic_spreads : Util.Dist.Histogram.t;
  chain_gaps : Util.Dist.Histogram.t;
}

let covered_instrs ?(convertible_only = false) t =
  List.fold_left
    (fun acc s ->
      if convertible_only && not s.convertible then acc
      else acc + (s.occurrences * site_length s))
    0 t.sites

let coverage t =
  if t.total_work = 0 then 0.0
  else
    min 1.0 (float_of_int (covered_instrs t) /. float_of_int t.total_work)

let convertible_coverage t =
  if t.total_work = 0 then 0.0
  else
    min 1.0
      (float_of_int (covered_instrs ~convertible_only:true t)
      /. float_of_int t.total_work)

let coverage_cdf ?(convertible_only = false) t =
  let sites =
    if convertible_only then List.filter (fun s -> s.convertible) t.sites
    else t.sites
  in
  let sorted =
    List.sort
      (fun a b ->
        compare
          (b.occurrences * site_length b)
          (a.occurrences * site_length a))
      sites
  in
  let n = List.length sorted in
  if n = 0 || t.total_work = 0 then []
  else begin
    let acc = ref 0 in
    List.mapi
      (fun i s ->
        acc := !acc + (s.occurrences * site_length s);
        ( float_of_int (i + 1) /. float_of_int n,
          min 1.0 (float_of_int !acc /. float_of_int t.total_work) ))
      sorted
  end

let truncate_site n s =
  if site_length s <= n then s
  else begin
    let take k l = List.filteri (fun i _ -> i < k) l in
    {
      s with
      member_indices = take n s.member_indices;
      uids = take n s.uids;
      key = String.concat "|" (take n (String.split_on_char '|' s.key));
    }
  end

let restrict_length n t =
  { t with sites = List.map (truncate_site n) t.sites }

let exact_length n t =
  {
    t with
    sites =
      t.sites
      |> List.filter (fun s -> site_length s >= n)
      |> List.map (truncate_site n);
  }
