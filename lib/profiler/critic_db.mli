(** The CritIC database: the output of offline profiling.

    Each {!site} is a static occurrence of a critical instruction chain
    inside one basic block — the unit the compiler pass hoists and
    Thumb-converts.  The database also carries the distribution data of
    the paper's motivation figures (IC lengths/spreads, coverage CDF). *)

type site = {
  block_id : int;
  start_index : int;       (** body index of the first chain member *)
  member_indices : int list;
      (** body indices of all members, increasing; the chain is not
          necessarily contiguous in the block before hoisting *)
  uids : int list;         (** instruction uids, in chain order *)
  key : string;            (** structural key (opcode+operands sequence) *)
  occurrences : int;       (** dynamic executions observed *)
  criticality : float;     (** mean fanout per instruction over
                               occurrences *)
  convertible : bool;      (** every member is Thumb-convertible
                               (the paper's all-or-nothing rule) *)
}

val site_length : site -> int

type t = {
  sites : site list;
      (** selected CritICs: criticality above threshold,
          non-overlapping within each block, best coverage first *)
  total_work : int;        (** dynamic work instructions profiled *)
  ic_lengths : Util.Dist.Histogram.t;  (** maximal-IC lengths (Fig. 5a) *)
  ic_spreads : Util.Dist.Histogram.t;  (** maximal-IC spreads (Fig. 5a) *)
  chain_gaps : Util.Dist.Histogram.t;
      (** low-fanout gaps between successive high-fanout instructions in
          dependence chains; -1 = none in the forward slice (Fig. 1b) *)
}

val coverage : t -> float
(** Fraction of profiled dynamic work instructions covered by the
    selected sites. *)

val convertible_coverage : t -> float
(** Same, counting only fully Thumb-convertible sites (Fig. 5b's second
    CDF). *)

val coverage_cdf : ?convertible_only:bool -> t -> (float * float) list
(** Points (unique-chain rank fraction, cumulative dynamic coverage) —
    the Fig. 5b CDF over unique CritIC sequences ordered by coverage. *)

val restrict_length : int -> t -> t
(** Keep only sites of length at most [n] (the paper's realistic CritIC
    uses n = 5; CritIC.Ideal lifts the cap).  Longer sites are truncated
    to their length-[n] prefix when that prefix is still above nothing —
    truncation is safe because any prefix of an IC is an IC. *)

val exact_length : int -> t -> t
(** Keep sites of exactly length [n], truncating longer ones (for the
    Fig. 12a length sweep). *)
