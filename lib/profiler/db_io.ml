let format_version = "critics-db-1"

let hist_to_buf buf name h =
  Buffer.add_string buf (Printf.sprintf "hist %s\n" name);
  List.iter
    (fun (v, c) -> Buffer.add_string buf (Printf.sprintf "%d %d\n" v c))
    (Util.Dist.Histogram.bins h);
  Buffer.add_string buf "end\n"

let to_string (db : Critic_db.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (format_version ^ "\n");
  Buffer.add_string buf (Printf.sprintf "total_work %d\n" db.total_work);
  Buffer.add_string buf (Printf.sprintf "sites %d\n" (List.length db.sites));
  List.iter
    (fun (s : Critic_db.site) ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %d %.6f %b %s %s %s\n" s.block_id s.start_index
           s.occurrences s.criticality s.convertible
           (String.concat "," (List.map string_of_int s.member_indices))
           (String.concat "," (List.map string_of_int s.uids))
           s.key))
    db.sites;
  hist_to_buf buf "ic_lengths" db.ic_lengths;
  hist_to_buf buf "ic_spreads" db.ic_spreads;
  hist_to_buf buf "chain_gaps" db.chain_gaps;
  Buffer.contents buf

let of_string ?path text =
  let lines = String.split_on_char '\n' text in
  let where = match path with Some p -> p | None -> "<string>" in
  let fail line msg =
    Util.Err.failf Corrupt_input "Db_io %s:%d: %s" where line msg
  in
  match lines with
  | version :: rest when version = format_version ->
    let lineno = ref 1 in
    (* Scalar conversions raise bare [Failure _] ("int_of_string", ...);
       [conv] pins them to the file and line like every other
       diagnostic. *)
    let conv f s = try f s with Failure msg -> fail !lineno msg in
    let int_of_string = conv int_of_string in
    let float_of_string = conv float_of_string in
    let bool_of_string = conv bool_of_string in
    let parse_int_list s =
      if s = "" then []
      else String.split_on_char ',' s |> List.map int_of_string
    in
    let next = ref rest in
    let pop () =
      incr lineno;
      match !next with
      | [] -> fail !lineno "unexpected end of input"
      | l :: tl ->
        next := tl;
        l
    in
    let expect_kv key =
      let l = pop () in
      match String.split_on_char ' ' l with
      | [ k; v ] when k = key -> int_of_string v
      | _ -> fail !lineno (Printf.sprintf "expected '%s <int>'" key)
    in
    let total_work = expect_kv "total_work" in
    let nsites = expect_kv "sites" in
    let parse_site l =
      match String.index_opt l ' ' with
      | None -> fail !lineno "malformed site"
      | Some _ ->
        (* split into 8 fields, key (last) may contain spaces *)
        let rec split_n acc n s =
          if n = 0 then List.rev (s :: acc)
          else
            match String.index_opt s ' ' with
            | None -> fail !lineno "malformed site"
            | Some i ->
              split_n
                (String.sub s 0 i :: acc)
                (n - 1)
                (String.sub s (i + 1) (String.length s - i - 1))
        in
        (match split_n [] 7 l with
        | [ block; start; occ; crit; conv; idxs; uids; key ] ->
          {
            Critic_db.block_id = int_of_string block;
            start_index = int_of_string start;
            occurrences = int_of_string occ;
            criticality = float_of_string crit;
            convertible = bool_of_string conv;
            member_indices = parse_int_list idxs;
            uids = parse_int_list uids;
            key;
          }
        | _ -> fail !lineno "malformed site")
    in
    let sites = List.init nsites (fun _ -> parse_site (pop ())) in
    let parse_hist name =
      let header = pop () in
      if header <> "hist " ^ name then
        fail !lineno (Printf.sprintf "expected 'hist %s'" name);
      let h = Util.Dist.Histogram.create () in
      let rec go () =
        let l = pop () in
        if l = "end" then h
        else
          match String.split_on_char ' ' l with
          | [ v; c ] ->
            Util.Dist.Histogram.addn h (int_of_string v) (int_of_string c);
            go ()
          | _ -> fail !lineno "malformed histogram entry"
      in
      go ()
    in
    let ic_lengths = parse_hist "ic_lengths" in
    let ic_spreads = parse_hist "ic_spreads" in
    let chain_gaps = parse_hist "chain_gaps" in
    { Critic_db.sites; total_work; ic_lengths; ic_spreads; chain_gaps }
  | v :: _ ->
    Util.Err.failf Corrupt_input "Db_io %s:1: unsupported format %S (expected %s)"
      where
      (if String.length v > 32 then String.sub v 0 32 else v)
      format_version
  | [] -> Util.Err.failf Corrupt_input "Db_io %s: empty input" where

(* Crash-safe via the shared tmp+rename discipline: a crash mid-write
   leaves the previous database (or nothing) plus a stray .tmp — never
   a truncated file that a later [load] would half-parse.  Durable: the
   profile database is a hand-off artifact (profiled once, applied many
   times), so the save also pays the fsync discipline — data before
   rename, parent directory after — and survives power loss, not just
   process death. *)
let save db path =
  Util.Atomic_io.write ~durable:true path (to_string db)

let sweep_tmp dir = Util.Atomic_io.sweep_tmp dir

let load path = Util.Atomic_io.read_file path |> of_string ~path
