(** CritIC database persistence.

    The paper's flow profiles apps offline (emulator + simulator +
    distributed aggregation) and ships the resulting chain database to
    the on-device ART compiler.  This module provides the equivalent
    hand-off: a stable, human-readable text format so a database
    profiled once can be applied to the program many times (or
    inspected).

    Format: a header line, then one line per site —
    [block start occurrences criticality convertible idx0,idx1,...
    uid0,uid1,... key] — with the structural key last since it contains
    spaces.  Histograms are serialized as [hist <name>] sections of
    [value count] pairs. *)

val save : Critic_db.t -> string -> unit
(** [save db path] writes the database atomically and durably: the
    bytes go to [path ^ ".tmp"], which is fsynced and then renamed over
    [path] (with a parent-directory fsync), so neither a crash
    mid-write nor a power loss right after the call leaves a truncated
    or empty database behind.  Raises [Sys_error] on I/O failure
    (removing the temporary). *)

val load : string -> Critic_db.t
(** [load path] reads a database written by {!save}.  Raises
    [Util.Err.Error] with kind [Corrupt_input] — naming the file path
    and line number — on malformed input. *)

val sweep_tmp : string -> int
(** Remove stale [*.tmp] orphans an interrupted {!save} may have left
    in a database directory; returns the number removed.  Call at
    startup, before any concurrent saver is live. *)

val to_string : Critic_db.t -> string

val of_string : ?path:string -> string -> Critic_db.t
(** [path] (default ["<string>"]) labels parse diagnostics with the
    file the text came from. *)
