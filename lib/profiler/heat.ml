type t = { counts : int array; temps : int array }

(* Cumulative-share boundaries, in percent: blocks covering the first
   50% of dynamic instructions are hot (0), to 80% warm (1), to 95%
   cool (2), the rest cold (3). *)
let hot_pct = 50
let warm_pct = 80
let cool_pct = 95

let of_counts counts =
  let n = Array.length counts in
  let total = Array.fold_left ( + ) 0 counts in
  let temps = Array.make n 3 in
  if total > 0 then begin
    let order = Array.init n (fun i -> i) in
    (* Hottest first; ties by block id keep the ranking deterministic. *)
    Array.sort
      (fun a b ->
        if counts.(a) <> counts.(b) then compare counts.(b) counts.(a)
        else compare a b)
      order;
    (* A block's tier comes from the share accumulated *before* it, so
       the hottest block is always hot even when it alone exceeds the
       first boundary. *)
    let cum = ref 0 in
    Array.iter
      (fun b ->
        if counts.(b) > 0 then begin
          let before = !cum * 100 in
          temps.(b) <-
            (if before < hot_pct * total then 0
             else if before < warm_pct * total then 1
             else if before < cool_pct * total then 2
             else 3);
          cum := !cum + counts.(b)
        end)
      order
  end;
  { counts; temps }

let profile ~num_blocks cursor =
  let counts = Array.make num_blocks 0 in
  Prog.Trace.Stream.iter
    (fun (e : Prog.Trace.event) ->
      let b = e.block_id in
      if b >= 0 && b < num_blocks then counts.(b) <- counts.(b) + 1)
    cursor;
  of_counts counts

let temperature t b =
  if b >= 0 && b < Array.length t.temps then t.temps.(b) else 3

let temperatures t = t.temps

let count t b =
  if b >= 0 && b < Array.length t.counts then t.counts.(b) else 0
