(** Block-temperature profiles for temperature-aware i-cache
    replacement (the TRRIP policy, "A TRRIP Down Memory Lane").

    The profiler already knows which blocks dominate dynamic execution;
    this module exports that knowledge as one small integer per block —
    a {e temperature} in 0 (hot) .. 3 (cold) — which the pipeline
    threads into the memory hierarchy as the L1i replacement fill hint
    ({!Mem.Replacement.Trrip} maps it directly to the insertion RRPV).

    Temperatures are assigned by cumulative dynamic-instruction share
    over blocks ranked hottest first: the blocks forming the first 50%
    of dynamic instructions are hot (0), up to 80% warm (1), up to 95%
    cool (2), and the tail — including never-executed blocks — cold
    (3).  Ties rank by block id, so the profile is deterministic. *)

type t

val profile : num_blocks:int -> Prog.Trace.Stream.cursor -> t
(** Count dynamic instructions per block over the stream (one event =
    one instruction; events with out-of-range block ids are ignored)
    and derive temperatures. *)

val of_counts : int array -> t
(** Derive temperatures from precomputed per-block dynamic counts. *)

val temperature : t -> int -> int
(** Temperature of a block id; 3 (cold) when out of range. *)

val temperatures : t -> int array
(** The full per-block table, indexed by block id — the shape
    {!Pipeline.Cpu.run_stream}'s [?itemp] expects.  The returned array
    is the profile's own; treat it as read-only. *)

val count : t -> int -> int
(** Dynamic instructions observed for a block id; 0 when out of
    range. *)
