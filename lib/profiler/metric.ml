type t = Average_fanout | Geometric_mean | Tail_weighted | Minimum_fanout

let all = [ Average_fanout; Geometric_mean; Tail_weighted; Minimum_fanout ]

let name = function
  | Average_fanout -> "average"
  | Geometric_mean -> "geomean"
  | Tail_weighted -> "tail-weighted"
  | Minimum_fanout -> "minimum"

let of_string s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun m -> name m = s) all

let score metric fanouts =
  match fanouts with
  | [] -> 0.0
  | _ ->
    let n = List.length fanouts in
    let fn = float_of_int n in
    (match metric with
    | Average_fanout ->
      float_of_int (List.fold_left ( + ) 0 fanouts) /. fn
    | Geometric_mean ->
      (* fanout-0 members zero the product; add-one smoothing keeps the
         metric comparable to the arithmetic mean on uniform chains *)
      let logsum =
        List.fold_left
          (fun acc f -> acc +. log (float_of_int (f + 1)))
          0.0 fanouts
      in
      exp (logsum /. fn) -. 1.0
    | Tail_weighted ->
      (* weights 1..n, later members heavier *)
      let acc = ref 0.0 and wsum = ref 0.0 in
      List.iteri
        (fun i f ->
          let w = float_of_int (i + 1) in
          acc := !acc +. (w *. float_of_int f);
          wsum := !wsum +. w)
        fanouts;
      !acc /. !wsum
    | Minimum_fanout ->
      float_of_int (List.fold_left min max_int fanouts))
