(** Chain-criticality metrics.

    The paper scores a chain by its *average fanout per instruction* and
    notes that "one could consider higher order representations for
    capturing such variances ... in future work": a cumulatively
    high-fanout chain may front-load all its criticality, or hide it at
    the tail.  This module implements that future work as a family of
    scoring functions over the chain's member fanouts; the profiler and
    the ablation suite can select any of them. *)

type t =
  | Average_fanout   (** the paper's metric: arithmetic mean *)
  | Geometric_mean   (** punishes low-fanout members multiplicatively *)
  | Tail_weighted    (** linearly up-weights later members: a chain
                         whose *future* is critical deserves priority —
                         the paper's own "look into the future"
                         argument, taken one step further *)
  | Minimum_fanout   (** strictest: the weakest member scores the chain *)

val all : t list
val name : t -> string
val of_string : string -> t option

val score : t -> int list -> float
(** [score metric fanouts] scores a chain from its per-member fanouts
    (in chain order).  All metrics are normalized per instruction, so a
    single threshold is comparable across them.  Returns 0 for the
    empty list. *)
