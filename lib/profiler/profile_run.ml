module H = Util.Dist.Histogram

type agg = {
  mutable occurrences : int;
  mutable criticality_sum : float;
  site : Critic_db.site; (* occurrences/criticality filled at the end *)
}

(* Cut an IC path into maximal segments that sit inside a single visit
   of a single block: within one visit the stream is contiguous, so the
   seq distance between members must equal their body-index distance.
   Each segment is independently hoistable by the compiler (producers of
   its head may live in earlier blocks; the head stays first). *)
let single_block_segments dfg nodes =
  let event n = (Dfg.node dfg n).Dfg.event in
  let continues prev n =
    let e = event n and ep = event prev in
    e.Prog.Trace.block_id = ep.Prog.Trace.block_id
    && e.Prog.Trace.body_index > ep.Prog.Trace.body_index
    && e.Prog.Trace.seq - ep.Prog.Trace.seq
       = e.Prog.Trace.body_index - ep.Prog.Trace.body_index
  in
  let rec go segments current prev = function
    | [] -> List.rev (List.rev current :: segments)
    | n :: tl ->
      if (event n).Prog.Trace.body_index < 0 then
        go (List.rev current :: segments) [] n tl
      else if current = [] || continues prev n then
        go segments (n :: current) n tl
      else go (List.rev current :: segments) [ n ] n tl
  in
  match
    List.filter (fun n -> (event n).Prog.Trace.body_index >= 0) nodes
  with
  | [] -> []
  | first :: rest ->
    go [] [ first ] first rest |> List.filter (fun s -> List.length s >= 2)

let chain_criticality ?(metric = Metric.Average_fanout) dfg nodes =
  Metric.score metric (List.map (Dfg.fanout dfg) nodes)

let profile_stream ?(window = 512) ?(threshold = 4.0) ?(max_len = 9)
    ?(fanout_threshold = 4) ?(fraction = 1.0) ?(max_paths_per_window = 512)
    ?(metric = Metric.Average_fanout) ~total_events
    (cursor : Prog.Trace.Stream.cursor) : Critic_db.t =
  let n = total_events in
  let limit =
    max 0 (min n (int_of_float (fraction *. float_of_int n)))
  in
  let ic_lengths = H.create () in
  let ic_spreads = H.create () in
  let chain_gaps = H.create () in
  let table : (string, agg) Hashtbl.t = Hashtbl.create 1024 in
  (* The same segment appears in many maximal ICs of one window (paths
     branch at every fanout tree); count each static chain at most once
     per window. *)
  let seen_this_window : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let record_segment dfg segment =
    let prefix = segment in
    let rec shrink nodes =
      match nodes with
      | [] | [ _ ] -> None
      | _ when chain_criticality ~metric dfg nodes >= threshold -> Some nodes
      | _ -> shrink (List.filteri (fun i _ -> i < List.length nodes - 1) nodes)
    in
    match shrink prefix with
    | None -> ()
    | Some nodes ->
      let events =
        List.map (fun i -> (Dfg.node dfg i).Dfg.event) nodes
      in
      let uids =
        List.map (fun (e : Prog.Trace.event) -> e.instr.uid) events
      in
      let key = String.concat "," (List.map string_of_int uids) in
      if Hashtbl.mem seen_this_window key then ()
      else begin
      Hashtbl.replace seen_this_window key ();
      let crit = chain_criticality ~metric dfg nodes in
      (match Hashtbl.find_opt table key with
      | Some agg ->
        agg.occurrences <- agg.occurrences + 1;
        agg.criticality_sum <- agg.criticality_sum +. crit
      | None ->
        let first = List.hd events in
        let site : Critic_db.site =
          {
            block_id = first.block_id;
            start_index = first.body_index;
            member_indices =
              List.map (fun (e : Prog.Trace.event) -> e.body_index) events;
            uids;
            key =
              String.concat "|"
                (List.map
                   (fun (e : Prog.Trace.event) ->
                     Isa.Instr.structural_key e.instr)
                   events);
            occurrences = 0;
            criticality = 0.0;
            convertible =
              List.for_all
                (fun (e : Prog.Trace.event) ->
                  Isa.Encode.thumb_convertible e.instr)
                events;
          }
        in
        Hashtbl.replace table key
          { occurrences = 1; criticality_sum = crit; site })
      end
  in
  (* Chains longer than [max_len] become several consecutive sites of
     at most [max_len] members each — a chunk's external producers are
     earlier chain members, which precede its hoist point, so every
     chunk remains independently hoistable. *)
  let rec chunk l =
    if List.length l <= max_len then [ l ]
    else
      List.filteri (fun i _ -> i < max_len) l
      :: chunk (List.filteri (fun i _ -> i >= max_len) l)
  in
  let record_candidate dfg nodes =
    List.iter
      (fun seg -> List.iter (record_segment dfg) (chunk seg))
      (single_block_segments dfg nodes)
  in
  (* One window of events lives in a reused buffer; DFG node indices are
     window-relative either way, and events carry their absolute [seq],
     so each window's analysis is identical to slicing a materialized
     trace at the same offsets. *)
  let buf : Prog.Trace.t ref = ref [||] in
  let taken = ref 0 in
  let total_work = ref 0 in
  let take_window () =
    let len = ref 0 in
    let continue = ref true in
    while !continue && !len < window && !taken < limit do
      match Prog.Trace.Stream.next cursor with
      | None -> continue := false
      | Some e ->
        if Array.length !buf = 0 then buf := Array.make (max 1 window) e;
        !buf.(!len) <- e;
        incr len;
        incr taken;
        if Prog.Trace.is_work e then incr total_work
    done;
    !len
  in
  let continue = ref true in
  while !continue do
    let len = take_window () in
    if len = 0 then continue := false
    else if len >= 8 then begin
      Hashtbl.reset seen_this_window;
      let dfg = Dfg.of_events ~lo:0 ~hi:len !buf in
      let ics =
        Dfg.Ic.enumerate ~max_paths:max_paths_per_window ~max_len:window dfg
      in
      List.iter
        (fun (ic : Dfg.Ic.t) ->
          H.add ic_lengths (Dfg.Ic.length ic);
          H.add ic_spreads (Dfg.Ic.spread dfg ic);
          record_candidate dfg ic.nodes)
        ics;
      let gaps = Dfg.chain_gaps ~threshold:fanout_threshold dfg in
      List.iter
        (fun (v, c) -> H.addn chain_gaps v c)
        (H.bins gaps)
    end
  done;
  (* Greedy per-block selection of non-overlapping sites, best dynamic
     coverage first. *)
  let finished =
    Hashtbl.fold
      (fun _ agg acc ->
        {
          agg.site with
          occurrences = agg.occurrences;
          criticality = agg.criticality_sum /. float_of_int agg.occurrences;
        }
        :: acc)
      table []
  in
  let score s =
    s.Critic_db.occurrences * Critic_db.site_length s
  in
  let sorted = List.sort (fun a b -> compare (score b) (score a)) finished in
  (* Disjoint *index ranges* per block (not merely disjoint indices):
     the compiler pass applies sites highest-range-first and relies on
     ranges never interleaving. *)
  let chosen : (int, (int * int) list) Hashtbl.t = Hashtbl.create 64 in
  let sites =
    List.filter
      (fun (s : Critic_db.site) ->
        let lo = List.hd s.member_indices in
        let hi = List.fold_left max lo s.member_indices in
        let used =
          Option.value ~default:[] (Hashtbl.find_opt chosen s.block_id)
        in
        let overlap =
          List.exists (fun (rlo, rhi) -> lo <= rhi && rlo <= hi) used
        in
        if overlap then false
        else begin
          Hashtbl.replace chosen s.block_id ((lo, hi) :: used);
          true
        end)
      sorted
  in
  { Critic_db.sites; total_work = !total_work; ic_lengths; ic_spreads;
    chain_gaps }

let profile ?window ?threshold ?max_len ?fanout_threshold ?fraction
    ?max_paths_per_window ?metric (trace : Prog.Trace.t) : Critic_db.t =
  profile_stream ?window ?threshold ?max_len ?fanout_threshold ?fraction
    ?max_paths_per_window ?metric ~total_events:(Array.length trace)
    (Prog.Trace.Stream.of_trace trace)
