(** Offline profiling: trace → CritIC database.

    This mirrors the paper's Sec. III-A2 flow (QEMU trace → GEM5 fanout
    tracking → Spark aggregation): the dynamic stream is cut into
    analysis windows, each window's DFG is built, independently
    schedulable ICs are enumerated, and chains whose average fanout per
    instruction exceeds the threshold are aggregated by their static
    identity into the CritIC database.  Aggregation here is an in-memory
    hash table — the laptop-scale equivalent of the paper's distributed
    PairRDD sort. *)

val profile_stream :
  ?window:int ->
  ?threshold:float ->
  ?max_len:int ->
  ?fanout_threshold:int ->
  ?fraction:float ->
  ?max_paths_per_window:int ->
  ?metric:Metric.t ->
  total_events:int ->
  Prog.Trace.Stream.cursor ->
  Critic_db.t
(** Profile a pull-based event stream in O(window) memory: events are
    staged one analysis window at a time in a reused buffer, so the
    trace is never materialized.  [total_events] is the stream's total
    event count (see {!Prog.Trace.length_of_path}), needed up front to
    resolve [fraction].  Produces the same database {!profile} would on
    the materialized trace. *)

val profile :
  ?window:int ->
  ?threshold:float ->
  ?max_len:int ->
  ?fanout_threshold:int ->
  ?fraction:float ->
  ?max_paths_per_window:int ->
  ?metric:Metric.t ->
  Prog.Trace.t ->
  Critic_db.t
(** [profile trace] analyses the stream and returns the CritIC database
    ({!profile_stream} over the materialized events).

    - [window]: analysis window in dynamic instructions (default 512);
    - [threshold]: minimum average fanout per instruction for a chain to
      be a CritIC.  The paper uses 8 with fanouts measured over GEM5's
      128-entry ROB on real app traces; our synthetic streams have a
      compressed fanout scale, so the default (4) is chosen to select
      the same population — the top decile of instructions by fanout
      (see DESIGN.md);
    - [max_len]: longest chain prefix recorded as a compiler candidate
      (default 9 — one CDP covers at most 9 instructions);
    - [fanout_threshold]: fanout at which a single instruction counts as
      high-fanout for the Fig. 1b gap histogram (default 4, matching
      [threshold]);
    - [fraction]: profile only the leading fraction of the trace — the
      partial-profiling axis of Fig. 12b (default 1.0);
    - [max_paths_per_window]: IC enumeration budget per window;
    - [metric]: the chain-criticality scoring function (default the
      paper's average fanout per instruction; see {!Metric}).

    Candidate chains are the single-block, single-visit segments of the
    enumerated ICs (the hoisting compiler pass works within a basic
    block); the length/spread histograms are computed over unrestricted
    maximal ICs, which is what Fig. 5a reports. *)
