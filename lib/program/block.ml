type terminator =
  | Fallthrough of int
  | Cond_branch of { taken : int; not_taken : int; taken_bias : float }
  | Jump of int
  | Call of { callee : int; return_to : int }
  | Return

type t = {
  id : int;
  func : int;
  body : Isa.Instr.t array;
  term : terminator;
}

let make ~id ~func ~body ~term = { id; func; body; term }
let with_body body t = { t with body }

let size_bytes t =
  Array.fold_left (fun acc i -> acc + Isa.Instr.size_bytes i) 0 t.body

let successors t =
  match t.term with
  | Fallthrough b | Jump b -> [ b ]
  | Cond_branch { taken; not_taken; _ } -> [ taken; not_taken ]
  | Call { callee; return_to } -> [ callee; return_to ]
  | Return -> []

let pp fmt t =
  Format.fprintf fmt "@[<v2>block %d (func %d):" t.id t.func;
  Array.iter (fun i -> Format.fprintf fmt "@,%a" Isa.Instr.pp i) t.body;
  let term =
    match t.term with
    | Fallthrough b -> Printf.sprintf "fallthrough -> %d" b
    | Cond_branch { taken; not_taken; taken_bias } ->
      Printf.sprintf "cond -> %d (p=%.2f) | %d" taken taken_bias not_taken
    | Jump b -> Printf.sprintf "jump -> %d" b
    | Call { callee; return_to } ->
      Printf.sprintf "call %d, return to %d" callee return_to
    | Return -> "return"
  in
  Format.fprintf fmt "@,%s@]" term
