(** Basic blocks.

    A block is a straight-line run of instructions with a single control
    decision at the end.  Control metadata lives on the block (not the
    trailing instruction) so that compiler passes can rewrite the
    instruction list freely while the CFG shape — and hence the
    deterministic block walk — stays fixed. *)

type terminator =
  | Fallthrough of int
      (** unconditionally continue to the given block *)
  | Cond_branch of { taken : int; not_taken : int; taken_bias : float }
      (** conditional branch; [taken_bias] is the probability of taking *)
  | Jump of int
      (** unconditional direct branch *)
  | Call of { callee : int; return_to : int }
      (** call to a function entry block; [return_to] resumes after the
          matching [Return] *)
  | Return
      (** pop the call stack; with an empty stack the walk restarts at
          the program entry *)

type t = {
  id : int;
  func : int;                (** owning function, for call-graph locality *)
  body : Isa.Instr.t array;  (** instructions, including any trailing
                                 control instruction *)
  term : terminator;
}

val make : id:int -> func:int -> body:Isa.Instr.t array -> term:terminator -> t

val with_body : Isa.Instr.t array -> t -> t

val size_bytes : t -> int
(** Total encoded size of the body. *)

val successors : t -> int list
(** Block ids reachable in one step ([Return] has none statically). *)

val pp : Format.formatter -> t -> unit
