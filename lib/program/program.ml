type t = {
  entry : int;
  blocks : Block.t array; (* indexed by block id *)
  addrs : int array;      (* start address per block id *)
  code_size : int;
  mutable muid : int;
      (* memoized [max_uid]; [min_int] until first demand.  The event
         stream sizes a per-uid counter array off it on every cursor, so
         recomputing the fold each time would scan the whole program per
         simulator run. *)
}

let code_base = 0x10000

let layout blocks =
  (* Blocks are laid out in id order; functions are built with
     consecutive block ids so this keeps functions contiguous. *)
  let addrs = Array.make (Array.length blocks) 0 in
  let pc = ref code_base in
  Array.iteri
    (fun i b ->
      addrs.(i) <- !pc;
      pc := !pc + Block.size_bytes b;
      (* Word-align every block start: a Thumb-shortened block must not
         let the next block begin mid-word. *)
      if !pc land 3 <> 0 then pc := (!pc lor 3) + 1)
    blocks;
  (addrs, !pc - code_base)

let make ~entry ~blocks =
  let n = List.length blocks in
  let arr = Array.make n None in
  List.iter
    (fun (b : Block.t) ->
      if b.id < 0 || b.id >= n then
        invalid_arg "Program.make: block ids must be dense in [0, n)";
      match arr.(b.id) with
      | Some _ -> invalid_arg "Program.make: duplicate block id"
      | None -> arr.(b.id) <- Some b)
    blocks;
  let blocks =
    Array.map
      (function
        | Some b -> b
        | None -> invalid_arg "Program.make: missing block id")
      arr
  in
  if entry < 0 || entry >= n then invalid_arg "Program.make: bad entry";
  Array.iter
    (fun b ->
      List.iter
        (fun s ->
          if s < 0 || s >= n then
            invalid_arg "Program.make: dangling successor")
        (Block.successors b))
    blocks;
  let addrs, code_size = layout blocks in
  { entry; blocks; addrs; code_size; muid = min_int }

let entry t = t.entry
let block t id = t.blocks.(id)
let blocks t = t.blocks
let num_blocks t = Array.length t.blocks
let block_addr t id = t.addrs.(id)
let code_size t = t.code_size

let instr_count t =
  Array.fold_left (fun acc b -> acc + Array.length b.Block.body) 0 t.blocks

let max_uid t =
  if t.muid = min_int then
    t.muid <-
      Array.fold_left
        (fun acc (b : Block.t) ->
          Array.fold_left
            (fun acc (i : Isa.Instr.t) -> if i.uid > acc then i.uid else acc)
            acc b.body)
        (-1) t.blocks;
  t.muid

let map_blocks f t =
  let blocks =
    Array.map
      (fun (b : Block.t) ->
        let b' = f b in
        if b'.Block.id <> b.id || b'.Block.term <> b.term then
          invalid_arg "Program.map_blocks: pass must preserve CFG shape";
        b')
      t.blocks
  in
  let addrs, code_size = layout blocks in
  (* muid resets: passes may add instructions with fresh uids *)
  { t with blocks; addrs; code_size; muid = min_int }

let iter_instrs f t =
  Array.iter (fun b -> Array.iter (f b) b.Block.body) t.blocks

let find_instr t uid =
  let found = ref None in
  (try
     Array.iter
       (fun (b : Block.t) ->
         Array.iteri
           (fun i (ins : Isa.Instr.t) ->
             if ins.uid = uid then begin
               found := Some (b, i);
               raise Exit
             end)
           b.body)
       t.blocks
   with Exit -> ());
  !found
