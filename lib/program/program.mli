(** Whole static programs: a CFG of basic blocks plus a code layout.

    The layout assigns each block a byte address (blocks of the same
    function are contiguous), which the fetch stage and i-cache observe.
    Compiler passes that change block bodies change the layout, and
    therefore the code footprint — exactly the effect Thumb conversion
    is after. *)

type t

val make : entry:int -> blocks:Block.t list -> t
(** [make ~entry ~blocks] builds a program.  Raises [Invalid_argument]
    on duplicate block ids, a dangling successor, or a missing entry. *)

val entry : t -> int
val block : t -> int -> Block.t
val blocks : t -> Block.t array
(** Blocks in id order. *)

val num_blocks : t -> int
val block_addr : t -> int -> int
(** Start byte address of a block. *)

val code_base : int
(** Base address of the code segment. *)

val code_size : t -> int
(** Total laid-out code bytes. *)

val instr_count : t -> int
(** Static instruction count. *)

val max_uid : t -> int
(** Largest instruction uid in use (for passes allocating fresh uids);
    -1 if the program has no instructions. *)

val map_blocks : (Block.t -> Block.t) -> t -> t
(** Rewrite every block body (the CFG shape must be preserved: passes may
    only change [body]).  Raises [Invalid_argument] if a pass altered a
    block's [id] or [term]. *)

val iter_instrs : (Block.t -> Isa.Instr.t -> unit) -> t -> unit

val find_instr : t -> int -> (Block.t * int) option
(** [find_instr p uid] locates an instruction by uid: its block and index
    within the block body. *)
