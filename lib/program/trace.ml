type event = {
  seq : int;
  pc : int;
  size : int;
  instr : Isa.Instr.t;
  block_id : int;
  body_index : int;
  func : int;
  mem_addr : int;
  is_cond_branch : bool;
  taken : bool;
  next_pc : int;
  fetch_break : bool;
}

type t = event array

let control_uid_base = 1_000_000_000
let data_base = 0x4000_0000
let region_span = 0x0100_0000

(* Order-independent per-access randomness: every (seed, uid, count)
   triple hashes to its own one-shot generator, so a pass that reorders
   instructions inside a block leaves every other address stream
   untouched. *)
let access_rng seed uid count =
  Util.Rng.create
    ((seed * 0x9E3779B1) lxor (uid * 0x85EBCA77) lxor (count * 0xC2B2AE3D))

let mem_address ~seed ~uid ~count (m : Isa.Instr.mem_signature) =
  let base = data_base + (m.region * region_span) in
  let ws = max m.stride m.working_set in
  let slots = max 1 (ws / max 1 m.stride) in
  let rng = access_rng seed uid count in
  let slot =
    if m.randomness > 0.0 && Util.Rng.chance rng m.randomness then
      Util.Rng.int rng slots
    else count mod slots
  in
  base + (slot * m.stride)

(* Synthetic control-transfer instruction for a block terminator. *)
let terminator_instr block_id (term : Block.terminator) =
  let uid = control_uid_base + block_id in
  let mk opcode = Isa.Instr.make ~uid ~opcode () in
  match term with
  | Block.Fallthrough _ -> None
  | Block.Cond_branch _ -> Some (mk Isa.Opcode.Branch)
  | Block.Jump _ -> Some (mk Isa.Opcode.Branch)
  | Block.Call _ -> Some (mk Isa.Opcode.Call)
  | Block.Return -> Some (mk Isa.Opcode.Return)

let expand program ~seed path =
  let counts : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let next_count uid =
    let c = Option.value ~default:0 (Hashtbl.find_opt counts uid) in
    Hashtbl.replace counts uid (c + 1);
    c
  in
  let events = ref [] in
  let npath = Array.length path in
  Array.iteri
    (fun visit block_id ->
      let b = Program.block program block_id in
      let pc = ref (Program.block_addr program block_id) in
      Array.iteri
        (fun body_index (ins : Isa.Instr.t) ->
          let size = Isa.Instr.size_bytes ins in
          let mem_addr =
            match ins.mem with
            | None -> -1
            | Some m -> mem_address ~seed ~uid:ins.uid ~count:(next_count ins.uid) m
          in
          let is_control = Isa.Opcode.is_control ins.opcode in
          events :=
            {
              seq = 0;
              pc = !pc;
              size;
              instr = ins;
              block_id;
              body_index;
              func = b.Block.func;
              mem_addr;
              is_cond_branch = false;
              (* Body control instructions (Approach-1 switch branches)
                 are unconditional and always treated as taken. *)
              taken = is_control;
              next_pc = 0;
              fetch_break = is_control;
            }
            :: !events;
          pc := !pc + size)
        b.Block.body;
      match terminator_instr block_id b.Block.term with
      | None -> ()
      | Some ins ->
        let taken =
          match b.Block.term with
          | Block.Fallthrough _ -> false
          | Block.Jump _ | Block.Call _ | Block.Return -> true
          | Block.Cond_branch { taken; _ } ->
            visit + 1 < npath && path.(visit + 1) = taken
        in
        events :=
          {
            seq = 0;
            pc = !pc;
            size = 4;
            instr = ins;
            block_id;
            body_index = -1;
            func = b.Block.func;
            mem_addr = -1;
            is_cond_branch =
              (match b.Block.term with
              | Block.Cond_branch _ -> true
              | Block.Fallthrough _ | Block.Jump _ | Block.Call _
              | Block.Return -> false);
            taken;
            next_pc = 0;
            fetch_break = taken;
          }
          :: !events)
    path;
  let arr = Array.of_list (List.rev !events) in
  let n = Array.length arr in
  Array.iteri
    (fun i e ->
      let next_pc = if i + 1 < n then arr.(i + 1).pc else e.pc + e.size in
      let fetch_break = e.fetch_break || next_pc <> e.pc + e.size in
      arr.(i) <- { e with seq = i; next_pc; fetch_break })
    arr;
  arr

let is_work (e : event) =
  e.instr.opcode <> Isa.Opcode.Cdp_switch
  && (e.instr.uid >= control_uid_base
      || not (Isa.Opcode.is_control e.instr.opcode))

let instr_events t = Array.to_list t |> List.filter is_work

let work_count t =
  Array.fold_left (fun acc e -> if is_work e then acc + 1 else acc) 0 t
