type event = {
  seq : int;
  pc : int;
  size : int;
  instr : Isa.Instr.t;
  block_id : int;
  body_index : int;
  func : int;
  mem_addr : int;
  is_cond_branch : bool;
  taken : bool;
  next_pc : int;
  fetch_break : bool;
}

type t = event array

let control_uid_base = 1_000_000_000
let data_base = 0x4000_0000
let region_span = 0x0100_0000

(* Order-independent per-access randomness: every (seed, uid, count)
   triple hashes to its own one-shot SplitMix64 generator, so a pass
   that reorders instructions inside a block leaves every other address
   stream untouched.

   This is the per-access hot path of event generation, so the draws of
   [Util.Rng.create]/[chance]/[int] are open-coded in [mem_address]:
   straight-line Int64 locals stay unboxed, where the generic generator
   pays a boxed mutable state cell and a write barrier per draw.  The
   value sequence is bit-identical to the reference expression
     let rng =
       Util.Rng.create
         ((seed * 0x9E3779B1) lxor (uid * 0x85EBCA77)
          lxor (count * 0xC2B2AE3D))
     in
     if m.randomness > 0.0 && Util.Rng.chance rng m.randomness then
       Util.Rng.int rng slots
     else count mod slots
   (golden-digest tested); any change here must preserve it. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let[@inline] mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let mem_address ~seed ~uid ~count (m : Isa.Instr.mem_signature) =
  let base = data_base + (m.region * region_span) in
  let ws = max m.stride m.working_set in
  let slots = max 1 (ws / max 1 m.stride) in
  let p = m.randomness in
  let slot =
    if p <= 0.0 then count mod slots
    else begin
      let s1 =
        Int64.add
          (Int64.of_int
             ((seed * 0x9E3779B1) lxor (uid * 0x85EBCA77)
             lxor (count * 0xC2B2AE3D)))
          golden_gamma
      in
      if p >= 1.0 then
        (* chance is certain and draws nothing; int takes the first
           output *)
        Int64.to_int (Int64.shift_right_logical (mix64 s1) 2) mod slots
      else
        let u =
          Int64.to_float (Int64.shift_right_logical (mix64 s1) 11)
          /. 9007199254740992.0 *. 1.0
        in
        if u < p then
          let s2 = Int64.add s1 golden_gamma in
          Int64.to_int (Int64.shift_right_logical (mix64 s2) 2) mod slots
        else count mod slots
    end
  in
  base + (slot * m.stride)

(* Synthetic control-transfer instruction for a block terminator. *)
let terminator_instr block_id (term : Block.terminator) =
  let uid = control_uid_base + block_id in
  let mk opcode = Isa.Instr.make ~uid ~opcode () in
  match term with
  | Block.Fallthrough _ -> None
  | Block.Cond_branch _ -> Some (mk Isa.Opcode.Branch)
  | Block.Jump _ -> Some (mk Isa.Opcode.Branch)
  | Block.Call _ -> Some (mk Isa.Opcode.Call)
  | Block.Return -> Some (mk Isa.Opcode.Return)

let length_of_path program path =
  Array.fold_left
    (fun acc block_id ->
      let b = Program.block program block_id in
      acc + Array.length b.Block.body
      + (match b.Block.term with Block.Fallthrough _ -> 0 | _ -> 1))
    0 path

let dummy_instr = Isa.Instr.make ~uid:(-1) ~opcode:Isa.Opcode.Nop ()

let dummy_event =
  {
    seq = -1;
    pc = 0;
    size = Isa.Instr.size_bytes dummy_instr;
    instr = dummy_instr;
    block_id = -1;
    body_index = -1;
    func = -1;
    mem_addr = -1;
    is_cond_branch = false;
    taken = false;
    next_pc = 0;
    fetch_break = false;
  }

module Stream = struct
  (* The cursor delivers events out of a batch buffer refilled one block
     visit at a time.  Batching is what makes pulls cheap: events inside
     a visit are address-contiguous, so every in-batch [next_pc] is just
     [pc + size], and only the batch-final event needs to know where the
     stream continues — the block address of the next visit that yields
     an event, computable without generating anything.  Each event is
     built exactly once, lookahead-free. *)
  type cursor = {
    mutable buf : event array;
    mutable pos : int;  (* next index to deliver *)
    mutable lim : int;  (* exclusive end of valid events; pos = lim when
                           the batch is drained *)
    refill : cursor -> unit;  (* produce the next batch; leaves
                                 pos = lim = 0 at end of stream *)
  }

  let of_program program ~seed path =
    (* Per-instruction access counters, dense by uid (body uids are a
       compact range; synthetic terminators never touch memory). *)
    let counts = Array.make (Program.max_uid program + 1) 0 in
    let next_count uid =
      let c = counts.(uid) in
      counts.(uid) <- c + 1;
      c
    in
    let npath = Array.length path in
    let visit = ref 0 in
    let seq = ref 0 in
    (* pc of the first event produced at or after visit [v]: the block's
       address — for an empty body the first event is the terminator,
       which sits at the block address.  Visits yielding no event (empty
       body, fallthrough) are skipped. *)
    let rec next_start v =
      if v >= npath then None
      else
        let b = Program.block program path.(v) in
        if
          Array.length b.Block.body > 0
          || (match b.Block.term with Block.Fallthrough _ -> false | _ -> true)
        then Some (Program.block_addr program path.(v))
        else next_start (v + 1)
    in
    let rec refill c =
      if !visit >= npath then begin
        c.pos <- 0;
        c.lim <- 0
      end
      else begin
        let v = !visit in
        let block_id = path.(v) in
        let b = Program.block program block_id in
        let body = b.Block.body in
        let nbody = Array.length body in
        let term = terminator_instr block_id b.Block.term in
        let nevents = nbody + (match term with Some _ -> 1 | None -> 0) in
        incr visit;
        if nevents = 0 then refill c
        else begin
          if Array.length c.buf < nevents then
            c.buf <- Array.make (max nevents (2 * Array.length c.buf))
                dummy_event;
          (* Resolved before building: the batch-final event's successor
             pc.  At end of stream the expander's convention is the
             fall-through address, filled in below once the final
             event's own pc is known. *)
          let continue_pc = next_start !visit in
          let pc = ref (Program.block_addr program block_id) in
          for i = 0 to nbody - 1 do
            let ins = body.(i) in
            let size = Isa.Instr.size_bytes ins in
            let mem_addr =
              match ins.Isa.Instr.mem with
              | None -> -1
              | Some m ->
                mem_address ~seed ~uid:ins.uid ~count:(next_count ins.uid) m
            in
            let is_control = Isa.Opcode.is_control ins.opcode in
            let last = i = nevents - 1 in
            let next_pc =
              if not last then !pc + size
              else
                match continue_pc with
                | Some a -> a
                | None -> !pc + size
            in
            c.buf.(i) <-
              {
                seq = !seq;
                pc = !pc;
                size;
                instr = ins;
                block_id;
                body_index = i;
                func = b.Block.func;
                mem_addr;
                is_cond_branch = false;
                (* Body control instructions (Approach-1 switch
                   branches) are unconditional and always taken. *)
                taken = is_control;
                next_pc;
                fetch_break = is_control || next_pc <> !pc + size;
              };
            incr seq;
            pc := !pc + size
          done;
          (match term with
          | None -> ()
          | Some ins ->
            let tsize = Isa.Instr.size_bytes ins in
            let taken =
              match b.Block.term with
              | Block.Fallthrough _ -> false
              | Block.Jump _ | Block.Call _ | Block.Return -> true
              | Block.Cond_branch { taken; _ } ->
                v + 1 < npath && path.(v + 1) = taken
            in
            let next_pc =
              match continue_pc with Some a -> a | None -> !pc + tsize
            in
            c.buf.(nbody) <-
              {
                seq = !seq;
                pc = !pc;
                size = tsize;
                instr = ins;
                block_id;
                body_index = -1;
                func = b.Block.func;
                mem_addr = -1;
                is_cond_branch =
                  (match b.Block.term with
                  | Block.Cond_branch _ -> true
                  | Block.Fallthrough _ | Block.Jump _ | Block.Call _
                  | Block.Return -> false);
                taken;
                next_pc;
                fetch_break = taken || next_pc <> !pc + tsize;
              };
            incr seq);
          c.pos <- 0;
          c.lim <- nevents
        end
      end
    in
    let c = { buf = [||]; pos = 0; lim = 0; refill } in
    refill c;
    c

  let of_trace (tr : t) =
    { buf = tr; pos = 0; lim = Array.length tr;
      refill = (fun c -> c.pos <- 0; c.lim <- 0) }

  (* Physically distinct from every event a cursor can deliver (buffers
     are overwritten up to [lim] before delivery), so [next_ev] callers
     detect end of stream with one pointer comparison instead of paying
     a [Some] allocation per event. *)
  let end_marker = { dummy_event with seq = -1 }

  let next_ev c =
    if c.pos < c.lim then begin
      let e = c.buf.(c.pos) in
      c.pos <- c.pos + 1;
      e
    end
    else if c.lim = 0 then end_marker
    else begin
      c.refill c;
      if c.pos < c.lim then begin
        let e = c.buf.(c.pos) in
        c.pos <- c.pos + 1;
        e
      end
      else end_marker
    end

  let next c =
    let e = next_ev c in
    if e == end_marker then None else Some e

  let peek c =
    if c.pos < c.lim then Some c.buf.(c.pos)
    else if c.lim = 0 then None
    else begin
      c.refill c;
      if c.pos < c.lim then Some c.buf.(c.pos) else None
    end

  let rec iter f c =
    for i = c.pos to c.lim - 1 do
      f c.buf.(i)
    done;
    if c.lim > 0 then begin
      c.pos <- c.lim;
      c.refill c;
      iter f c
    end

  let fold f init c =
    let acc = ref init in
    iter (fun e -> acc := f !acc e) c;
    !acc

  let to_trace c =
    let events = ref [] in
    let count = ref 0 in
    iter
      (fun e ->
        events := e :: !events;
        incr count)
      c;
    let rec fill arr i = function
      | [] -> arr
      | e :: tl ->
        arr.(i) <- e;
        fill arr (i - 1) tl
    in
    match !events with
    | [] -> [||]
    | last :: _ as l -> fill (Array.make !count last) (!count - 1) l
end

let expand program ~seed path =
  let n = length_of_path program path in
  if n = 0 then [||]
  else begin
    let arr = Array.make n dummy_event in
    let i = ref 0 in
    Stream.iter
      (fun e ->
        arr.(!i) <- e;
        incr i)
      (Stream.of_program program ~seed path);
    arr
  end

module Pack = struct
  (* Compact binary trace container (DESIGN.md §13).

     Layout (all integers little-endian):

       0   magic   "CRTCPK01"                      8 bytes
       8   version i32                             4 bytes
       12  count   i64 (number of event records)   8 bytes
       20  digest  MD5 of the record region        16 bytes
       36  pad     zero                            12 bytes
       48  records count x 32 bytes

     Record (32 bytes): uid i32 | pc i32 | next_pc i32 | block_id i32 |
     body_index i32 (-1 = terminator) | flags u8 (bit0 is_cond_branch,
     bit1 taken, bit2 fetch_break) | pad 3 | mem_addr i64 (-1 = none).
     [seq] is the record index; [size], [func] and the [instr] pointer
     are resolved from the program at replay, so a pack is only
     meaningful against the exact program it was recorded from — the
     store key (context key x scheme) enforces that.

     Replay maps the file with [Unix.map_file]: the payload stays in the
     page cache (no read copies), decoding works in unboxed ints, and
     the only per-event allocation is the delivered event record itself
     — required by the cursor contract, since consumers may retain
     events beyond the refill batch. *)

  type t = {
    map : (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout)
        Bigarray.Array1.t;
    count : int;
    file_bytes : int;
  }

  let version = 1
  let magic = "CRTCPK01"
  let header_bytes = 48
  let record_bytes = 32

  let count t = t.count
  let file_bytes t = t.file_bytes

  let flag_bits e =
    (if e.is_cond_branch then 1 else 0)
    lor (if e.taken then 2 else 0)
    lor if e.fetch_break then 4 else 0

  let put_record b e =
    Bytes.set_int32_le b 0 (Int32.of_int e.instr.Isa.Instr.uid);
    Bytes.set_int32_le b 4 (Int32.of_int e.pc);
    Bytes.set_int32_le b 8 (Int32.of_int e.next_pc);
    Bytes.set_int32_le b 12 (Int32.of_int e.block_id);
    Bytes.set_int32_le b 16 (Int32.of_int e.body_index);
    Bytes.set_int32_le b 20 (Int32.of_int (flag_bits e));
    Bytes.set_int64_le b 24 (Int64.of_int e.mem_addr)

  let write_header oc ~count ~digest =
    output_string oc magic;
    let b = Bytes.make (header_bytes - 8) '\000' in
    Bytes.set_int32_le b 0 (Int32.of_int version);
    Bytes.set_int64_le b 4 (Int64.of_int count);
    Bytes.blit_string digest 0 b 12 16;
    output_bytes oc b

  let record ~path cursor =
    let oc = open_out_bin path in
    let count = ref 0 in
    (try
       write_header oc ~count:0 ~digest:(String.make 16 '\000');
       let b = Bytes.create record_bytes in
       Stream.iter
         (fun e ->
           put_record b e;
           output_bytes oc b;
           incr count)
         cursor;
       close_out oc
     with exn ->
       close_out_noerr oc;
       raise exn);
    (* One streaming pass for the payload digest, then patch the header
       in place: the file never holds a valid digest over partial data. *)
    let digest =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          seek_in ic header_bytes;
          Digest.channel ic (!count * record_bytes))
    in
    let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> write_header oc ~count:!count ~digest);
    !count

  let open_file path =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          if len < header_bytes then Error "pack file shorter than header"
          else begin
            let hdr = really_input_string ic header_bytes in
            if String.sub hdr 0 8 <> magic then Error "bad pack magic"
            else begin
              let ver = Int32.to_int (String.get_int32_le hdr 8) in
              if ver <> version then
                Error (Printf.sprintf "pack version %d, expected %d" ver version)
              else begin
                let count = Int64.to_int (String.get_int64_le hdr 12) in
                let digest = String.sub hdr 20 16 in
                if count < 0 || len <> header_bytes + (count * record_bytes)
                then Error "pack length does not match record count"
                else begin
                  seek_in ic header_bytes;
                  let actual = Digest.channel ic (count * record_bytes) in
                  if not (Digest.equal actual digest) then
                    Error "pack payload digest mismatch"
                  else Ok (count, len)
                end
              end
            end
          end)
    with
    | exception Sys_error e -> Error e
    | exception End_of_file -> Error "truncated pack header"
    | Error _ as e -> e
    | Ok (count, len) -> (
      match
        let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            Bigarray.array1_of_genarray
              (Unix.map_file fd Bigarray.char Bigarray.c_layout false
                 [| len |]))
      with
      | map -> Ok { map; count; file_bytes = len }
      | exception Unix.Unix_error (e, _, _) ->
        Error (Unix.error_message e))

  (* Field readers over the mapped file; manual byte assembly keeps the
     hot loop free of Int32/Int64 boxing. *)
  let[@inline] u8 m off = Char.code (Bigarray.Array1.unsafe_get m off)

  let[@inline] u32 m off =
    u8 m off
    lor (u8 m (off + 1) lsl 8)
    lor (u8 m (off + 2) lsl 16)
    lor (u8 m (off + 3) lsl 24)

  let[@inline] i32 m off =
    let v = u32 m off in
    if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

  let[@inline] i64_as_int m off =
    let lo = u32 m off and hi = u32 m (off + 4) in
    if hi = 0xFFFF_FFFF && lo = 0xFFFF_FFFF then -1
    else (hi lsl 32) lor lo

  let batch = 512

  let cursor t program =
    let nblocks =
      Array.fold_left
        (fun acc (b : Block.t) -> max acc (b.Block.id + 1))
        0 (Program.blocks program)
    in
    (* Static side resolved once per cursor: body instructions dense by
       uid, synthetic terminators and functions dense by block id. *)
    let body = Array.make (Program.max_uid program + 2) dummy_instr in
    Program.iter_instrs
      (fun _ i -> body.(i.Isa.Instr.uid) <- i)
      program;
    let term = Array.make nblocks dummy_instr in
    let func = Array.make nblocks (-1) in
    Array.iter
      (fun (b : Block.t) ->
        func.(b.Block.id) <- b.Block.func;
        match terminator_instr b.Block.id b.Block.term with
        | Some i -> term.(b.Block.id) <- i
        | None -> ())
      (Program.blocks program);
    let map = t.map in
    let idx = ref 0 in
    let refill c =
      let i0 = !idx in
      if i0 >= t.count then begin
        c.Stream.pos <- 0;
        c.Stream.lim <- 0
      end
      else begin
        let n = min batch (t.count - i0) in
        if Array.length c.Stream.buf < n then
          c.Stream.buf <- Array.make n dummy_event;
        let buf = c.Stream.buf in
        for k = 0 to n - 1 do
          let off = header_bytes + ((i0 + k) * record_bytes) in
          let uid = u32 map off in
          let instr =
            if uid >= control_uid_base then term.(uid - control_uid_base)
            else body.(uid)
          in
          let flags = u8 map (off + 20) in
          let block_id = u32 map (off + 12) in
          buf.(k) <-
            {
              seq = i0 + k;
              pc = u32 map (off + 4);
              size = Isa.Instr.size_bytes instr;
              instr;
              block_id;
              body_index = i32 map (off + 16);
              func = func.(block_id);
              mem_addr = i64_as_int map (off + 24);
              is_cond_branch = flags land 1 <> 0;
              taken = flags land 2 <> 0;
              next_pc = u32 map (off + 8);
              fetch_break = flags land 4 <> 0;
            }
        done;
        idx := i0 + n;
        c.Stream.pos <- 0;
        c.Stream.lim <- n
      end
    in
    let c = { Stream.buf = [||]; pos = 0; lim = 0; refill } in
    refill c;
    c
end

let is_work (e : event) =
  e.instr.opcode <> Isa.Opcode.Cdp_switch
  && (e.instr.uid >= control_uid_base
      || not (Isa.Opcode.is_control e.instr.opcode))

let instr_events t = Array.to_list t |> List.filter is_work

let work_count t =
  Array.fold_left (fun acc e -> if is_work e then acc + 1 else acc) 0 t
