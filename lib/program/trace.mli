(** Dynamic instruction traces.

    Expanding a block path over a program yields the event stream the
    pipeline simulates: per-instruction program counters, concrete memory
    addresses, and control-transfer outcomes.  Expansion is fully
    deterministic in (program, path, seed); memory-address randomness is
    keyed on (seed, instruction uid, access count) so that compiler
    passes which reorder instructions inside a block do not perturb any
    other instruction's address stream. *)

type event = {
  seq : int;                (** position in the dynamic stream *)
  pc : int;                 (** byte address of the instruction *)
  size : int;               (** encoded size: 4 or 2 bytes *)
  instr : Isa.Instr.t;
  block_id : int;
  body_index : int;         (** index within the block body; -1 for the
                                synthetic terminator *)
  func : int;
  mem_addr : int;           (** concrete byte address; -1 for non-memory *)
  is_cond_branch : bool;    (** consults the direction predictor *)
  taken : bool;             (** actual control outcome *)
  next_pc : int;            (** address of the next dynamic instruction *)
  fetch_break : bool;       (** a taken transfer ends the fetch group *)
}

type t = event array

module Stream : sig
  (** Pull-based event cursor: the same dynamic stream {!expand}
      materializes, produced one event at a time in O(1) space (plus the
      per-static-instruction access counters).  [expand] itself is
      implemented by materializing this stream, so the two can never
      diverge. *)

  type cursor

  val of_program : Program.t -> seed:int -> Walk.path -> cursor
  (** Expand lazily over [path]; each pull yields the next event.  One
      event of internal lookahead resolves [next_pc]/[fetch_break]. *)

  val of_trace : t -> cursor
  (** Replay an already-materialized trace — the thin adapter used by
      tests and by callers that still hold arrays. *)

  val next : cursor -> event option
  (** Consume and return the next event, or [None] at end of stream. *)

  val end_marker : event
  (** Sentinel returned by {!next_ev} at end of stream.  Physically
      distinct from every deliverable event; never store it in a
      trace. *)

  val next_ev : cursor -> event
  (** Allocation-free {!next}: returns {!end_marker} (compare with
      [==]) instead of wrapping each event in [Some]. *)

  val peek : cursor -> event option
  (** Return the next event without consuming it. *)

  val iter : (event -> unit) -> cursor -> unit
  val fold : ('a -> event -> 'a) -> 'a -> cursor -> 'a

  val to_trace : cursor -> t
  (** Materialize the rest of the stream into an array. *)
end

module Pack : sig
  (** Compact binary trace container: a length-framed, versioned,
      digest-verified file of packed dynamic events (32 bytes each; see
      DESIGN.md §13 for the exact layout).  Recording streams a cursor
      to disk once; replay maps the file ([Unix.map_file]) and feeds the
      standard {!Stream} cursor machinery — the payload stays in the
      page cache, decoding is unboxed, and the only per-event allocation
      is the delivered event record itself, so replay memory is O(batch)
      regardless of budget.

      A pack stores only the dynamic side (uids, addresses, outcomes);
      instruction pointers, sizes and functions are resolved from the
      program at replay, so a pack must be replayed against the exact
      program it was recorded from.  Callers caching packs through the
      store key them by (context key, scheme) to enforce that. *)

  type t

  val version : int
  val header_bytes : int
  val record_bytes : int

  val record : path:string -> Stream.cursor -> int
  (** Drain [cursor] into a pack file at [path] (overwriting), then
      patch the header with the payload digest — a crash mid-write never
      leaves a file whose digest verifies.  Returns the event count. *)

  val open_file : string -> (t, string) result
  (** Map a pack file, verifying magic, version, framed length and
      payload digest up front; any mismatch is an [Error] naming the
      violation (the caller treats it like a cache miss). *)

  val count : t -> int
  (** Number of event records. *)

  val file_bytes : t -> int
  (** Total on-disk size, header included. *)

  val cursor : t -> Program.t -> Stream.cursor
  (** Replay cursor over the mapped records, resolving static fields
      from [program].  Bit-identical to [Stream.of_program] on the
      (program, seed, path) the pack was recorded from (test- and
      differential-locked). *)
end

val expand : Program.t -> seed:int -> Walk.path -> t
(** Expand a block path into the dynamic event stream.  Synthetic
    control-transfer instructions are appended per block terminator
    (conditional branch, jump, call, return); [Fallthrough] appends
    nothing.  Equivalent to materializing {!Stream.of_program}. *)

val length_of_path : Program.t -> Walk.path -> int
(** Number of events {!expand} would produce for [path] — body
    instructions plus one synthetic terminator per non-fallthrough
    block visit — computed in O(path) without expanding. *)

val is_work : event -> bool
(** True for useful-work events: everything except synthetic block
    terminators and CDP markers. *)

val instr_events : t -> event list
(** Events excluding synthetic terminators and CDP markers — the
    "useful work" instructions used for IPC-style accounting. *)

val work_count : t -> int
(** Number of useful-work events ({!instr_events} length). *)

val control_uid_base : int
(** Synthetic terminator instructions get uid
    [control_uid_base + block_id]; the range never collides with body
    instruction uids (which are non-negative and far smaller). *)
