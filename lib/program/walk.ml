type path = int array

let step program rng stack cur =
  let b = Program.block program cur in
  match b.Block.term with
  | Block.Fallthrough next | Block.Jump next -> next
  | Block.Cond_branch { taken; not_taken; taken_bias } ->
    if Util.Rng.chance rng taken_bias then taken else not_taken
  | Block.Call { callee; return_to } ->
    stack := return_to :: !stack;
    callee
  | Block.Return -> (
    match !stack with
    | r :: rest ->
      stack := rest;
      r
    | [] -> Program.entry program)

let walk program ~seed ~continue =
  let rng = Util.Rng.create seed in
  let stack = ref [] in
  let acc = ref [] in
  let cur = ref (Program.entry program) in
  let visits = ref 0 in
  let instrs = ref 0 in
  while continue ~visits:!visits ~instrs:!instrs do
    acc := !cur :: !acc;
    incr visits;
    instrs :=
      !instrs + Array.length (Program.block program !cur).Block.body;
    cur := step program rng stack !cur
  done;
  Array.of_list (List.rev !acc)

let path_for_instrs program ~seed ~instrs =
  walk program ~seed ~continue:(fun ~visits:_ ~instrs:n -> n < instrs)

let path_visits program ~seed ~visits =
  walk program ~seed ~continue:(fun ~visits:v ~instrs:_ -> v < visits)
