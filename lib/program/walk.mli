(** Deterministic control-flow walks.

    A walk is a sequence of block ids sampled from the CFG's branch
    biases with an explicit seed.  Compiler passes preserve block ids and
    terminators, so a path computed on the baseline program replays the
    *same work* on every transformed variant — the basis of all
    before/after comparisons in the experiments. *)

type path = int array
(** Visited block ids, in order, starting at the program entry. *)

val path_for_instrs : Program.t -> seed:int -> instrs:int -> path
(** Walk until at least [instrs] body instructions (counted on the given
    program) have been visited.  Control decisions consume one RNG draw
    per block visit regardless of block contents. *)

val path_visits : Program.t -> seed:int -> visits:int -> path
(** Walk for exactly [visits] block visits. *)
