type upload = { up_id : string; up_app : string; up_payload : string }

type case = {
  case_index : int;
  case_fault : string;
  case_crashed : bool;
  case_acked : int;
  case_violations : string list;
}

type report = {
  rep_ops : int;
  rep_cases : case list;
  rep_crashes : int;
  rep_contained : int;
  rep_violations : int;
}

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter
      (fun name -> rm_rf (Filename.concat path name))
      (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path

let fault_of k =
  match k mod 4 with
  | 0 -> (Util.Atomic_io.Crash, "crash")
  | 1 -> (Util.Atomic_io.Torn 7, "torn 7B")
  | 2 -> (Util.Atomic_io.Fail 3, "enospc 3B")
  | _ -> (Util.Atomic_io.Torn 1, "torn 1B")

(* Injectors arm only after recovery is done: faults target steady-state
   ingest, and recovery itself must always run clean (its own
   crash-safety is proven by the fact that every case's recovery
   succeeds on every possible crashed state). *)
let counting_injector () =
  let armed = ref false in
  let count = ref 0 in
  let inject ~op:_ =
    if !armed then incr count;
    Util.Atomic_io.Proceed
  in
  (inject, armed, count)

let one_shot_injector ~at ~action =
  let armed = ref false in
  let count = ref 0 in
  let fired = ref false in
  let inject ~op:_ =
    if not !armed then Util.Atomic_io.Proceed
    else begin
      let k = !count in
      incr count;
      if k = at && not !fired then begin
        fired := true;
        action
      end
      else Util.Atomic_io.Proceed
    end
  in
  (inject, armed)

(* Drive the workload.  A contained [Error] (the ENOSPC fault) is
   retried once — the injector is one-shot, so the retry must succeed.
   Returns the ids acknowledged, or the partial list if the run
   crashed. *)
let drive eng uploads =
  let acked = ref [] in
  let crashed = ref false in
  (try
     List.iter
       (fun u ->
         let once () =
           Engine.ingest eng ~id:u.up_id ~app:u.up_app ~payload:u.up_payload
         in
         match once () with
         | Ok _ -> acked := u.up_id :: !acked
         | Error _ -> (
           match once () with
           | Ok _ -> acked := u.up_id :: !acked
           | Error msg ->
             failwith ("chaos: retry after contained failure failed: " ^ msg)))
       uploads
   with Util.Atomic_io.Injected_crash _ -> crashed := true);
  (List.rev !acked, !crashed)

let check_case ~dir ~cfg ~uploads ~acked ~baseline =
  let violations = ref [] in
  let bad fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  (* Recovery must succeed on whatever the fault left behind.  Any
     exception — Failure, Sys_error, Unix_error from mkdir/truncate/IO —
     is a violation of this case, not a reason to kill the sweep. *)
  (match Engine.open_ cfg with
  | exception e -> bad "recovery failed: %s" (Printexc.to_string e)
  | eng, _rec ->
    (* 1. Acknowledged uploads survive. *)
    List.iter
      (fun id ->
        if not (Engine.mem eng ~id) then bad "acked upload %s lost" id)
      acked;
    (* 2. The recovered directory is strictly clean (torn tails were
       repaired by recovery itself). *)
    (match Engine.fsck dir with
    | Error msg -> bad "fsck after recovery: %s" msg
    | Ok r ->
      if not (Engine.clean ~strict:true r) then
        bad "fsck not clean after recovery:\n%s" (Engine.render r));
    (* 3. Re-submitting the whole workload (duplicates included)
       converges to the fault-free state, byte for byte. *)
    let _resubmitted, crashed = drive eng uploads in
    if crashed then bad "re-submission crashed with no injector armed"
    else begin
      let bytes = Engine.snapshot_bytes eng in
      if bytes <> baseline then bad "final state differs from baseline";
      let n = Engine.uploads eng in
      let expect = List.length uploads in
      if n <> expect then bad "final uploads %d, expected %d" n expect
    end;
    Engine.close eng;
    (* 4. Reopen is a no-op: replay is idempotent. *)
    (match Engine.open_ cfg with
    | exception e -> bad "second recovery failed: %s" (Printexc.to_string e)
    | eng2, _ ->
      if Engine.snapshot_bytes eng2 <> Engine.snapshot_bytes eng then
        bad "state changed across an idle close/reopen";
      Engine.close eng2));
  List.rev !violations

let sweep ~dir ?(shards = 2) ?(checkpoint_every = 8) ?max_cases ~uploads () =
  rm_rf dir;
  let case_dir i = Filename.concat dir (Printf.sprintf "case-%04d" i) in
  let cfg d = Engine.config ~shards ~checkpoint_every d in
  (* Baseline: fault-free run under a counting injector. *)
  let base_dir = Filename.concat dir "baseline" in
  let inject, armed, count = counting_injector () in
  let eng, _ = Engine.open_ ~inject (cfg base_dir) in
  armed := true;
  let acked, crashed = drive eng uploads in
  if crashed then failwith "chaos: baseline run crashed without faults";
  if List.length acked <> List.length uploads then
    failwith "chaos: baseline run did not ack every upload";
  let baseline = Engine.snapshot_bytes eng in
  Engine.close eng;
  let total_ops = !count in
  (* Choose crash points: all of them, or an even sample. *)
  let points =
    match max_cases with
    | Some m when m < total_ops && m > 0 ->
      List.init m (fun i -> i * total_ops / m)
    | _ -> List.init total_ops (fun i -> i)
  in
  let cases =
    List.map
      (fun k ->
        let action, fault_name = fault_of k in
        let d = case_dir k in
        let inject, armed = one_shot_injector ~at:k ~action in
        let eng, _ = Engine.open_ ~inject (cfg d) in
        armed := true;
        let acked, crashed = drive eng uploads in
        armed := false;
        (* Simulated process death (or the end of a contained run):
           close the fds — closing flushes nothing and alters no file
           contents, it only keeps hundreds of cases from exhausting
           descriptors. *)
        Engine.close eng;
        let violations =
          check_case ~dir:d ~cfg:(cfg d) ~uploads ~acked ~baseline
        in
        (* Passing cases clean up after themselves so a full sweep's
           disk footprint stays bounded; failures keep their directory
           for the post-mortem. *)
        if violations = [] then rm_rf d;
        {
          case_index = k;
          case_fault = fault_name;
          case_crashed = crashed;
          case_acked = List.length acked;
          case_violations = violations;
        })
      points
  in
  {
    rep_ops = total_ops;
    rep_cases = cases;
    rep_crashes =
      List.fold_left (fun n c -> n + Bool.to_int c.case_crashed) 0 cases;
    rep_contained =
      List.fold_left (fun n c -> n + Bool.to_int (not c.case_crashed)) 0 cases;
    rep_violations =
      List.fold_left
        (fun n c -> n + List.length c.case_violations)
        0 cases;
  }

let render r =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "chaos sweep: %d IO operations, %d case(s) (%d crashed, %d \
        contained)%s\n"
       r.rep_ops
       (List.length r.rep_cases)
       r.rep_crashes r.rep_contained
       (if List.length r.rep_cases < r.rep_ops then
          Printf.sprintf " — SAMPLED %d of %d crash points"
            (List.length r.rep_cases)
            r.rep_ops
        else ""));
  List.iter
    (fun c ->
      if c.case_violations <> [] then begin
        Buffer.add_string b
          (Printf.sprintf "  FAIL case %d (%s, %d acked):\n" c.case_index
             c.case_fault c.case_acked);
        List.iter
          (fun v -> Buffer.add_string b (Printf.sprintf "    - %s\n" v))
          c.case_violations
      end)
    r.rep_cases;
  Buffer.add_string b
    (if r.rep_violations = 0 then
       "chaos sweep: PASS — every acknowledged upload survived every \
        crash point\n"
     else Printf.sprintf "chaos sweep: %d violation(s)\n" r.rep_violations);
  Buffer.contents b
