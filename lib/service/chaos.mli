(** Deterministic chaos harness for the ingest engine.

    The harness first runs the full upload workload fault-free under a
    counting injector, learning (a) how many injectable IO operations
    the run performs and (b) the byte-exact final aggregate — the
    {e baseline}.  It then replays the same workload once per crash
    point [k], arming a one-shot fault at the [k]-th IO operation.  The
    fault kind cycles with [k] so every seam sees every failure mode:

    - [k mod 4 = 0] — {b crash}: the process dies at the operation
      (no cleanup code runs; in-flight state is abandoned exactly as
      [kill -9] leaves it);
    - [k mod 4 = 1] — {b torn write}: 7 bytes of the operation's
      payload reach the file, then the process dies;
    - [k mod 4 = 2] — {b contained failure}: the operation fails with
      [ENOSPC] after 3 bytes; the service must survive and refuse the
      acknowledgement;
    - [k mod 4 = 3] — {b torn write}, 1 byte (tears inside the length
      frame rather than the body).

    After each fault the harness recovers the directory and asserts the
    durability contract:

    + every upload acknowledged before the fault is present after
      recovery;
    + {!Engine.fsck} reports strictly clean (recovery repaired any torn
      tail);
    + re-submitting the {e entire} workload — duplicates and all —
      converges to a state byte-identical to the baseline;
    + a further close/reopen changes nothing (replay is idempotent).

    Everything is seed-free and deterministic: same workload, same
    engine geometry → same operation count, same crash points, same
    verdicts. *)

type upload = { up_id : string; up_app : string; up_payload : string }

type case = {
  case_index : int;  (** the crash point [k] *)
  case_fault : string;  (** human name of the injected fault *)
  case_crashed : bool;  (** the fault killed the run (vs. contained) *)
  case_acked : int;  (** uploads acknowledged before the fault *)
  case_violations : string list;  (** contract violations — empty = pass *)
}

type report = {
  rep_ops : int;  (** injectable IO operations in the fault-free run *)
  rep_cases : case list;
  rep_crashes : int;
  rep_contained : int;
  rep_violations : int;  (** total violations across all cases *)
}

val sweep :
  dir:string ->
  ?shards:int ->
  ?checkpoint_every:int ->
  ?max_cases:int ->
  uploads:upload list ->
  unit ->
  report
(** Run the sweep under [dir] (created; each case gets a fresh
    subdirectory).  [max_cases] bounds the number of crash points by
    sampling them evenly across the run — the report still records the
    full operation count so the dropped coverage is visible.  Defaults:
    2 shards, checkpoint every 8 records (small so the sweep exercises
    checkpoint and rotation seams often), all crash points. *)

val render : report -> string
(** Multi-line summary; one line per failing case, violations spelled
    out. *)
