let magic = "CRTCKP01"

type t = { seq : int; ids : (string * int) list; registry : string }

let body_of t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "seq %d\n" t.seq);
  Buffer.add_string buf (Printf.sprintf "ids %d\n" (List.length t.ids));
  List.iter
    (fun (id, seq) ->
      Buffer.add_string buf
        (Printf.sprintf "%d:%s %d\n" (String.length id) id seq))
    (List.sort compare t.ids);
  Buffer.add_string buf
    (Printf.sprintf "registry %d\n" (String.length t.registry));
  Buffer.add_string buf t.registry;
  Buffer.contents buf

let save ?inject path t =
  let body = body_of t in
  let framed =
    Printf.sprintf "%s %s %d\n%s" magic
      (Digest.to_hex (Digest.string body))
      (String.length body) body
  in
  Util.Atomic_io.write ~durable:true ?inject path framed

exception Bad of string

let load path =
  if not (Sys.file_exists path) then Ok None
  else begin
    try
      let text = Util.Atomic_io.read_file path in
      let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
      let nl =
        match String.index_opt text '\n' with
        | Some i -> i
        | None -> fail "missing header line"
      in
      let body =
        match String.split_on_char ' ' (String.sub text 0 nl) with
        | [ m; digest; len ] -> (
          match int_of_string_opt len with
          | Some n when m = magic && String.length text - nl - 1 = n ->
            let body = String.sub text (nl + 1) n in
            if Digest.to_hex (Digest.string body) <> digest then
              fail "body digest mismatch"
            else body
          | _ -> fail "bad header frame")
        | _ -> fail "bad header"
      in
      (* Cursor-parse the body: line-oriented header fields, a
         length-framed id table, then raw registry bytes.  Id entries
         are parsed purely by their length prefix — never with line()
         — because ids are client-chosen and may contain any byte,
         '\n' included. *)
      let pos = ref 0 in
      let len = String.length body in
      let line () =
        match String.index_from_opt body !pos '\n' with
        | None -> fail "truncated body"
        | Some i ->
          let l = String.sub body !pos (i - !pos) in
          pos := i + 1;
          l
      in
      let int_field name =
        match String.split_on_char ' ' (line ()) with
        | [ k; v ] when k = name -> (
          match int_of_string_opt v with
          | Some n -> n
          | None -> fail "bad %s value" name)
        | _ -> fail "expected %s line" name
      in
      let seq = int_field "seq" in
      let nids = int_field "ids" in
      let ids =
        List.init nids (fun _ ->
            let colon =
              match String.index_from_opt body !pos ':' with
              | None -> fail "bad id frame"
              | Some i -> i
            in
            let idlen =
              match int_of_string_opt (String.sub body !pos (colon - !pos)) with
              | Some n when n >= 0 -> n
              | _ -> fail "bad id frame length"
            in
            (* "<idlen>:<id bytes> <seq>\n" — the id bytes are taken
               verbatim by length; only the delimiters around them are
               structural. *)
            if colon + 1 + idlen + 1 > len then fail "truncated id frame";
            let id = String.sub body (colon + 1) idlen in
            if body.[colon + 1 + idlen] <> ' ' then fail "bad id frame";
            let seq_start = colon + 1 + idlen + 1 in
            let nl =
              match String.index_from_opt body seq_start '\n' with
              | None -> fail "truncated id frame"
              | Some i -> i
            in
            match int_of_string_opt (String.sub body seq_start (nl - seq_start))
            with
            | Some s ->
              pos := nl + 1;
              (id, s)
            | None -> fail "bad id seq")
      in
      let reg_len = int_field "registry" in
      if len - !pos <> reg_len then fail "registry length mismatch";
      let registry = String.sub body !pos reg_len in
      Ok (Some { seq; ids; registry })
    with
    | Bad msg -> Error (Printf.sprintf "%s: %s" path msg)
    | Sys_error msg -> Error msg
  end
