(** Compacted shard checkpoints.

    A checkpoint is the digest-verified serialization of a shard's
    aggregate state — last applied sequence number, the applied
    upload-id table (what makes re-submitted uploads idempotent across
    restarts) and the merged telemetry registry — written atomically
    and durably through {!Util.Atomic_io}.  After a checkpoint at
    sequence [S] the WAL is rotated; recovery loads the checkpoint and
    replays only records with [seq > S], so a crash anywhere between
    the two steps is harmless (stale records are skipped by sequence
    number: replay is idempotent).

    File layout: one header line
    ["CRTCKP01 <md5-of-body> <body-length>\n"] followed by the body —
    the same self-verifying frame discipline as the store. *)

type t = {
  seq : int;  (** last sequence number folded into this state *)
  ids : (string * int) list;  (** applied upload id → its sequence *)
  registry : string;  (** {!Telemetry.Registry.to_bytes} of the aggregate *)
}

val save : ?inject:Util.Atomic_io.injector -> string -> t -> unit
(** Atomic, durable write.  Raises [Unix.Unix_error]/[Sys_error] on
    contained I/O failure (the previous checkpoint survives untouched)
    and propagates injected crashes. *)

val load : string -> (t option, string) result
(** [Ok None] when the file does not exist (a young shard);
    [Error] on a digest, frame or parse violation — corruption of a
    checkpoint is data loss and must be loud. *)
