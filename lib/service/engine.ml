module Registry = Telemetry.Registry

type config = {
  dir : string;
  shards : int;
  checkpoint_every : int;
  durable : bool;
  dedup_window : int;
}

let config ?(shards = 4) ?(checkpoint_every = 256) ?(durable = true)
    ?(dedup_window = 65536) dir =
  if shards < 1 then invalid_arg "Engine.config: shards must be >= 1";
  if checkpoint_every < 1 then
    invalid_arg "Engine.config: checkpoint_every must be >= 1";
  if dedup_window < 1 then
    invalid_arg "Engine.config: dedup_window must be >= 1";
  { dir; shards; checkpoint_every; durable; dedup_window }

let meta_magic = "CRTSRV01"

type shard = {
  id : int;
  shard_dir : string;
  lock : Mutex.t;
  mutable wal : Wal.t;
  mutable applied : int;  (* last applied sequence number *)
  mutable ckpt_seq : int;  (* sequence covered by the last checkpoint *)
  mutable since_ckpt : int;
  ids : (string, int) Hashtbl.t;  (* applied upload id -> seq *)
  agg : Registry.t;
}

type t = {
  cfg : config;
  shard_arr : shard array;
  inject : Util.Atomic_io.injector option;
  run : Registry.t;  (* operational counters, process lifetime *)
  run_lock : Mutex.t;
}

type recovery = {
  rec_replayed : int;
  rec_skipped : int;
  rec_truncated_bytes : int;
  rec_torn_tails : int;
  rec_uploads : int;
}

let mkdir_p path =
  let rec go path =
    if not (Sys.file_exists path) then begin
      go (Filename.dirname path);
      try Unix.mkdir path 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path;
  if not (Sys.is_directory path) then
    raise (Sys_error (path ^ ": not a directory"))

let shard_dirname i = Printf.sprintf "shard-%03d" i
let wal_path dir = Filename.concat dir "wal.log"
let ckpt_path dir = Filename.concat dir "ckpt.bin"
let meta_path dir = Filename.concat dir "META"

(* Stable shard choice: MD5 is deterministic across runs, hosts and
   OCaml versions, unlike Hashtbl.hash. *)
let shard_index ~shards app =
  let d = Digest.string app in
  let v =
    (Char.code d.[0] lsl 16) lor (Char.code d.[1] lsl 8) lor Char.code d.[2]
  in
  v mod shards

let meta_contents cfg =
  Printf.sprintf "%s\nshards %d\n" meta_magic cfg.shards

let load_meta path =
  match Util.Atomic_io.read_file path with
  | exception Sys_error _ -> Ok None
  | text -> (
    match String.split_on_char '\n' text with
    | [ magic; shards_line; "" ] when magic = meta_magic -> (
      match String.split_on_char ' ' shards_line with
      | [ "shards"; n ] -> (
        match int_of_string_opt n with
        | Some shards when shards >= 1 -> Ok (Some shards)
        | _ -> Error (path ^ ": bad shard count"))
      | _ -> Error (path ^ ": bad META line"))
    | _ -> Error (path ^ ": bad META magic"))

(* ------------------------------ apply ----------------------------- *)

(* Duplicate suppression is windowed: ids whose sequence number has
   fallen more than [window] behind the shard head are forgotten, which
   bounds both resident memory and checkpoint size no matter how many
   uploads the directory has ever ingested.  The slack batches removals
   (one O(table) sweep per ~window/8 inserts) so pruning is amortized
   O(1) per applied record. *)
let prune_ids ~window ~applied ids =
  if Hashtbl.length ids > window + max 8 (window / 8) then begin
    let floor = applied - window in
    let stale =
      Hashtbl.fold
        (fun id seq acc -> if seq <= floor then id :: acc else acc)
        ids []
    in
    List.iter (Hashtbl.remove ids) stale
  end

(* One upload's effect on a shard: merge its registry delta and advance
   the durable bookkeeping.  Used identically by live ingest and by
   WAL replay, which is what makes replay reproduce exactly the
   acknowledged state. *)
let apply_record shard ~window ~seq ~id payload_reg =
  Registry.merge_into ~into:shard.agg payload_reg;
  Registry.incr (Registry.counter shard.agg "service/uploads");
  Hashtbl.replace shard.ids id seq;
  prune_ids ~window ~applied:seq shard.ids;
  shard.applied <- seq;
  shard.since_ckpt <- shard.since_ckpt + 1

(* --------------------------- recovery ----------------------------- *)

let recover_shard ?inject ~dir ~window ~i () =
  let sdir = Filename.concat dir (shard_dirname i) in
  mkdir_p sdir;
  ignore (Util.Atomic_io.sweep_tmp sdir);
  let agg = Registry.create () in
  let ids = Hashtbl.create 256 in
  let ckpt_seq, replayed, skipped, truncated =
    let ckpt =
      match Checkpoint.load (ckpt_path sdir) with
      | Ok c -> c
      | Error msg -> failwith ("Engine: corrupt checkpoint: " ^ msg)
    in
    let ckpt_seq =
      match ckpt with
      | None -> 0
      | Some c ->
        (match Registry.of_bytes c.Checkpoint.registry with
        | Ok reg -> Registry.merge_into ~into:agg reg
        | Error msg ->
          failwith ("Engine: corrupt checkpoint registry: " ^ msg));
        List.iter (fun (id, seq) -> Hashtbl.replace ids id seq) c.ids;
        c.seq
    in
    let scan =
      match Wal.scan (wal_path sdir) with
      | Ok s -> s
      | Error msg -> failwith ("Engine: " ^ msg)
    in
    let applied = ref ckpt_seq in
    let replayed = ref 0 in
    let skipped = ref 0 in
    List.iter
      (fun { Wal.seq; id; payload } ->
        if seq <= !applied then incr skipped
        else if seq = !applied + 1 then begin
          (match Registry.of_bytes payload with
          | Ok reg ->
            Registry.merge_into ~into:agg reg;
            Registry.incr (Registry.counter agg "service/uploads");
            Hashtbl.replace ids id seq;
            prune_ids ~window ~applied:seq ids
          | Error msg ->
            (* Digest-verified record with an unparseable payload: the
               writer validated it before appending, so this is wild
               corruption that happens to re-verify — refuse. *)
            failwith
              (Printf.sprintf "Engine: shard %d seq %d: bad payload: %s" i
                 seq msg));
          applied := seq;
          incr replayed
        end
        else
          failwith
            (Printf.sprintf
               "Engine: shard %d: sequence gap (%d after %d) — WAL records \
                lost"
               i seq !applied))
      scan.records;
    if scan.torn_bytes > 0 then
      Wal.truncate_to (wal_path sdir) scan.good_bytes;
    (ckpt_seq, (!applied, !replayed), !skipped, scan.torn_bytes)
  in
  let applied, replayed = replayed in
  let wal = Wal.open_writer ?inject (wal_path sdir) in
  ( {
      id = i;
      shard_dir = sdir;
      lock = Mutex.create ();
      wal;
      applied;
      ckpt_seq;
      (* Records above the checkpoint still live in the WAL; counting
         them keeps the next checkpoint on schedule after recovery. *)
      since_ckpt = applied - ckpt_seq;
      ids;
      agg;
    },
    (replayed, skipped, truncated) )

let open_ ?inject cfg =
  mkdir_p cfg.dir;
  (match load_meta (meta_path cfg.dir) with
  | Ok None ->
    Util.Atomic_io.write ~durable:cfg.durable (meta_path cfg.dir)
      (meta_contents cfg)
  | Ok (Some shards) ->
    if shards <> cfg.shards then
      failwith
        (Printf.sprintf
           "Engine: %s was created with %d shards, reopened with %d — \
            resharding is not supported"
           cfg.dir shards cfg.shards)
  | Error msg -> failwith ("Engine: " ^ msg));
  let replayed = ref 0 in
  let skipped = ref 0 in
  let truncated = ref 0 in
  let torn_tails = ref 0 in
  let shard_arr =
    Array.init cfg.shards (fun i ->
        let shard, (r, s, tb) =
          recover_shard ?inject ~dir:cfg.dir ~window:cfg.dedup_window ~i ()
        in
        replayed := !replayed + r;
        skipped := !skipped + s;
        truncated := !truncated + tb;
        if tb > 0 then incr torn_tails;
        shard)
  in
  let uploads =
    Array.fold_left (fun n s -> n + Hashtbl.length s.ids) 0 shard_arr
  in
  ( {
      cfg;
      shard_arr;
      inject;
      run = Registry.create ();
      run_lock = Mutex.create ();
    },
    {
      rec_replayed = !replayed;
      rec_skipped = !skipped;
      rec_truncated_bytes = !truncated;
      rec_torn_tails = !torn_tails;
      rec_uploads = uploads;
    } )

(* ---------------------------- runtime ----------------------------- *)

let count t name =
  Mutex.lock t.run_lock;
  Registry.incr (Registry.counter t.run name);
  Mutex.unlock t.run_lock

let runtime t = t.run

(* --------------------------- checkpoint --------------------------- *)

(* Caller holds the shard lock.  Ordering is the crash-safety argument:
   (1) the checkpoint covering seq S is installed atomically+durably;
   (2) the WAL is rotated to empty.  A crash after (1) leaves a stale
   WAL whose records are all <= S — replay skips them by sequence
   number.  A crash during (2)'s tmp+rename leaves either log. *)
let checkpoint_locked t shard =
  let c =
    {
      Checkpoint.seq = shard.applied;
      ids = Hashtbl.fold (fun id seq acc -> (id, seq) :: acc) shard.ids [];
      registry = Registry.to_bytes shard.agg;
    }
  in
  Checkpoint.save ?inject:t.inject (ckpt_path shard.shard_dir) c;
  shard.ckpt_seq <- shard.applied;
  shard.since_ckpt <- 0;
  count t "service/checkpoints";
  Wal.close shard.wal;
  (try Util.Atomic_io.write ~durable:t.cfg.durable ?inject:t.inject
         (wal_path shard.shard_dir) Wal.header
   with Unix.Unix_error _ | Sys_error _ ->
     (* Contained rotate failure: the old WAL (all records <= ckpt_seq,
        now stale) stays; replay will skip it.  Keep serving. *)
     count t "service/rotate_failures");
  shard.wal <- Wal.open_writer ?inject:t.inject (wal_path shard.shard_dir)

let maybe_checkpoint_locked t shard =
  if shard.since_ckpt >= t.cfg.checkpoint_every then
    try checkpoint_locked t shard
    with Unix.Unix_error _ | Sys_error _ ->
      (* Checkpoint failure is not data loss — the WAL has everything.
         Reset the countdown so we retry after another interval rather
         than on every upload. *)
      shard.since_ckpt <- 0;
      count t "service/checkpoint_failures"

(* ----------------------------- ingest ----------------------------- *)

let shard_of t ~app = shard_index ~shards:t.cfg.shards app

type ack = { ack_shard : int; ack_seq : int; ack_duplicate : bool }

let ingest t ~id ~app ~payload =
  (* Validate before locking: both limits are client-controlled, and
     Wal.append raises Invalid_argument past them — which must never
     happen with the shard mutex held.  The WAL likewise must only ever
     contain applicable records, so replay cannot fail on what ingest
     accepted. *)
  if String.length id > Wal.max_id_bytes then begin
    count t "service/rejects";
    Error
      (Printf.sprintf "invalid id: %d bytes exceeds %d" (String.length id)
         Wal.max_id_bytes)
  end
  else if 2 + String.length id + String.length payload > Wal.max_body then begin
    count t "service/rejects";
    Error
      (Printf.sprintf "oversized upload: record body exceeds %d bytes"
         Wal.max_body)
  end
  else
  match Registry.of_bytes payload with
  | Error msg ->
    count t "service/rejects";
    Error ("invalid payload: " ^ msg)
  | Ok payload_reg -> (
    let shard = t.shard_arr.(shard_of t ~app) in
    Mutex.lock shard.lock;
    match Hashtbl.find_opt shard.ids id with
    | Some seq ->
      Mutex.unlock shard.lock;
      count t "service/duplicates";
      Ok { ack_shard = shard.id; ack_seq = seq; ack_duplicate = true }
    | None -> (
      let seq = shard.applied + 1 in
      match Wal.append shard.wal ~seq ~id ~payload with
      | exception (Util.Atomic_io.Injected_crash _ as e) ->
        (* Injected crash: simulated process death — do not release the
           lock or repair anything; the "process" is gone and recovery
           owns the state now. *)
        raise e
      | exception e ->
        (* Contained failure (ENOSPC and anything else the append can
           raise): Wal.append already truncated its partial tail, so
           unlock and refuse the ack — the shard must keep serving. *)
        Mutex.unlock shard.lock;
        count t "service/rejects";
        Error ("append failed: " ^ Printexc.to_string e)
      | () ->
        (* The record is durable: this is the acknowledgement point.
           Everything below re-derives from the WAL on recovery. *)
        apply_record shard ~window:t.cfg.dedup_window ~seq ~id payload_reg;
        let r = { ack_shard = shard.id; ack_seq = seq; ack_duplicate = false } in
        maybe_checkpoint_locked t shard;
        Mutex.unlock shard.lock;
        count t "service/appends";
        Ok r))

(* -------------------------- introspection ------------------------- *)

let with_shards t f =
  Array.iter (fun s -> Mutex.lock s.lock) t.shard_arr;
  Fun.protect
    ~finally:(fun () -> Array.iter (fun s -> Mutex.unlock s.lock) t.shard_arr)
    (fun () -> f t.shard_arr)

let uploads t =
  with_shards t (fun arr ->
      Array.fold_left (fun n s -> n + Hashtbl.length s.ids) 0 arr)

let mem t ~id =
  with_shards t (fun arr ->
      Array.exists (fun s -> Hashtbl.mem s.ids id) arr)

let snapshot t =
  let into = Registry.create () in
  with_shards t (fun arr ->
      Array.iter (fun s -> Registry.merge_into ~into s.agg) arr);
  into

let snapshot_bytes t = Registry.to_bytes (snapshot t)

let shard_seqs t =
  with_shards t (fun arr -> Array.map (fun s -> s.applied) arr)

let checkpoint t =
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock s.lock)
        (fun () ->
          if s.since_ckpt > 0 || s.ckpt_seq < s.applied then
            checkpoint_locked t s))
    t.shard_arr

let close t = Array.iter (fun s -> Wal.close s.wal) t.shard_arr

(* ------------------------------ fsck ------------------------------ *)

type shard_report = {
  fs_shard : int;
  fs_ckpt_seq : int;
  fs_wal_records : int;
  fs_stale : int;
  fs_uploads : int;
  fs_torn_bytes : int;
  fs_errors : string list;
}

type report = {
  shards_checked : int;
  shard_reports : shard_report list;
  total_uploads : int;
  torn_tails : int;
  corrupt : int;
}

let fsck_shard ~dir i =
  let sdir = Filename.concat dir (shard_dirname i) in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let ids = Hashtbl.create 64 in
  let ckpt_seq =
    match Checkpoint.load (ckpt_path sdir) with
    | Ok None -> -1
    | Ok (Some c) ->
      (match Registry.of_bytes c.Checkpoint.registry with
      | Ok _ -> ()
      | Error msg -> err "checkpoint registry unparseable: %s" msg);
      List.iter (fun (id, seq) -> Hashtbl.replace ids id seq) c.ids;
      c.seq
    | Error msg ->
      err "corrupt checkpoint: %s" msg;
      -1
  in
  let wal_records, stale, torn_bytes =
    match Wal.scan (wal_path sdir) with
    | Error msg ->
      err "%s" msg;
      (0, 0, 0)
    | Ok scan ->
      let applied = ref (max ckpt_seq 0) in
      let stale = ref 0 in
      List.iter
        (fun { Wal.seq; id; payload } ->
          if seq <= !applied then incr stale
          else begin
            if seq <> !applied + 1 then
              err "sequence gap: record %d follows %d" seq !applied;
            (match Registry.of_bytes payload with
            | Ok _ -> ()
            | Error msg -> err "record %d payload unparseable: %s" seq msg);
            Hashtbl.replace ids id seq;
            applied := seq
          end)
        scan.records;
        (List.length scan.records, !stale, scan.torn_bytes)
  in
  {
    fs_shard = i;
    fs_ckpt_seq = ckpt_seq;
    fs_wal_records = wal_records;
    fs_stale = stale;
    fs_uploads = Hashtbl.length ids;
    fs_torn_bytes = torn_bytes;
    fs_errors = List.rev !errors;
  }

let fsck dir =
  if not (Sys.file_exists dir) then Error (dir ^ ": no such directory")
  else
    match load_meta (meta_path dir) with
    | Error msg -> Error msg
    | Ok None -> Error (dir ^ ": no META — not a service directory")
    | Ok (Some shards) ->
      let shard_reports = List.init shards (fsck_shard ~dir) in
      Ok
        {
          shards_checked = shards;
          shard_reports;
          total_uploads =
            List.fold_left (fun n r -> n + r.fs_uploads) 0 shard_reports;
          torn_tails =
            List.fold_left
              (fun n r -> n + if r.fs_torn_bytes > 0 then 1 else 0)
              0 shard_reports;
          corrupt =
            List.fold_left
              (fun n r -> n + if r.fs_errors <> [] then 1 else 0)
              0 shard_reports;
        }

let clean ?(strict = false) r =
  r.corrupt = 0 && ((not strict) || r.torn_tails = 0)

let render r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%d shard(s), %d distinct upload(s)\n" r.shards_checked
       r.total_uploads);
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf
           "  shard %03d: ckpt seq %d, wal records %d (%d stale), uploads \
            %d%s%s\n"
           s.fs_shard s.fs_ckpt_seq s.fs_wal_records s.fs_stale s.fs_uploads
           (if s.fs_torn_bytes > 0 then
              Printf.sprintf ", TORN TAIL %d bytes" s.fs_torn_bytes
            else "")
           (match s.fs_errors with
           | [] -> ""
           | errs -> ", ERRORS: " ^ String.concat "; " errs)))
    r.shard_reports;
  Buffer.add_string b
    (if clean ~strict:true r then "fsck: clean\n"
     else if clean r then
       Printf.sprintf
         "fsck: clean apart from %d torn tail(s) — unacknowledged bytes \
          from a crash mid-append; the next recovery repairs them\n"
         r.torn_tails
     else Printf.sprintf "fsck: %d shard(s) CORRUPT\n" r.corrupt);
  Buffer.contents b
