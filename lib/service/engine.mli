(** Sharded, crash-recoverable profile-aggregation engine.

    The long-lived successor to the paper's offline Spark aggregation:
    a population of synthetic users uploads per-app criticality
    profiles (serialized {!Telemetry.Registry} deltas) and the engine
    folds them into durable per-shard aggregates through the registry's
    commutative/associative merge.

    Durability contract, in order:

    - {b An acknowledgement is a promise.}  [ingest] returns [Ok] only
      after the upload's WAL record is written and fsynced.  Whatever
      happens next — crash mid-checkpoint, torn write, [kill -9] —
      recovery reconstructs a state containing that upload.
    - {b Replay is idempotent.}  Records are sequence-numbered; recovery
      loads the last checkpoint (sequence [S]) and applies only records
      with [seq > S], each exactly once.  Re-running recovery is a
      no-op.
    - {b Re-submission is idempotent — within the dedup window.}  Every
      upload carries a client id; a duplicate is acknowledged without
      being re-applied (the applied-id table is part of the checkpoint
      and the WAL records, so it survives recovery).  A client that
      crashed mid-upload can always just send again.  Retention is
      bounded: a shard remembers the ids of its most recent
      [dedup_window] applied uploads, so state and checkpoint size
      stay O(window) instead of growing with lifetime ingest.  A
      retry arriving more than [dedup_window] uploads late is applied
      as new — clients must retry promptly, not weeks later.
    - {b Torn tails are repaired, corruption is loud.}  A torn final
      WAL record (crash mid-append — by the ack contract, never
      acknowledged) is truncated at recovery and counted.  A corrupt
      checkpoint or a sequence gap is data loss: [open_] raises and
      {!fsck} reports it.

    Shards are independent (own WAL, checkpoint, mutex, aggregate);
    uploads hash to shards by app, so concurrent ingest from a domain
    pool contends only within an app's shard. *)

type config = {
  dir : string;
  shards : int;
  checkpoint_every : int;
      (** WAL records a shard accumulates before compacting into a
          checkpoint and rotating the log *)
  durable : bool;
      (** [false] skips fsyncs (throughput mode for benchmarks on
          filesystems where fsync is the bottleneck); the crash
          contract then only covers process death, not power loss *)
  dedup_window : int;
      (** per-shard duplicate-suppression retention, in applied
          uploads: ids older than this many sequence numbers are
          forgotten (bounds memory and checkpoint size); see the
          re-submission contract above *)
}

val config :
  ?shards:int ->
  ?checkpoint_every:int ->
  ?durable:bool ->
  ?dedup_window:int ->
  string ->
  config
(** Defaults: 4 shards, checkpoint every 256 records, durable, dedup
    window 65536. *)

type t

type recovery = {
  rec_replayed : int;  (** WAL records applied over checkpoints *)
  rec_skipped : int;  (** stale records ([seq <=] checkpoint) skipped *)
  rec_truncated_bytes : int;  (** torn-tail bytes repaired away *)
  rec_torn_tails : int;  (** shards that had a torn tail *)
  rec_uploads : int;  (** distinct uploads in the recovered state *)
}

val open_ : ?inject:Util.Atomic_io.injector -> config -> t * recovery
(** Open (creating or recovering) the engine rooted at [config.dir].
    Raises [Failure] on unrecoverable states: corrupt checkpoint,
    sequence gap, shard-count mismatch with the on-disk META.
    [inject] arms the chaos fault seam on every subsequent IO
    (tests only). *)

type ack = { ack_shard : int; ack_seq : int; ack_duplicate : bool }

val ingest : t -> id:string -> app:string -> payload:string -> (ack, string) result
(** Durably ingest one upload.  [Error] — invalid payload (not a
    registry wire form), an id over {!Wal.max_id_bytes}, a record over
    {!Wal.max_body}, or a contained I/O failure like ENOSPC — means
    {e not acknowledged, not applied}; the caller may retry with the
    same [id].  Oversized input is rejected before the shard lock is
    taken, so no client-controlled bytes can wedge a shard.
    Thread-safe; callers on a domain pool contend per shard.  Under
    chaos, {!Util.Atomic_io.Injected_crash} escapes — that upload's
    fate is decided by recovery. *)

val uploads : t -> int
(** Distinct uploads retained in the dedup window, over all shards
    (survives recovery).  Equals total uploads ever applied while that
    total is below [dedup_window] per shard. *)

val mem : t -> id:string -> bool
(** Is this upload id in the retained dedup window? *)

val snapshot : t -> Telemetry.Registry.t
(** Fresh merge of every shard's aggregate (the shards keep their own
    registries; the caller owns the result). *)

val snapshot_bytes : t -> string
(** [Telemetry.Registry.to_bytes] of {!snapshot} — a deterministic
    state fingerprint: byte-equal iff the aggregates are equal. *)

val shard_seqs : t -> int array
val shard_of : t -> app:string -> int

val checkpoint : t -> unit
(** Force-checkpoint every shard (normally they self-checkpoint every
    [checkpoint_every] records). *)

val runtime : t -> Telemetry.Registry.t
(** Process-lifetime operational counters (not durable):
    [service/appends], [service/duplicates], [service/rejects],
    [service/checkpoints], [service/checkpoint_failures],
    [service/rotate_failures]. *)

val close : t -> unit
(** Close every shard's WAL fd.  No flush is needed — acknowledged
    state is already durable; that is the whole point. *)

(** {2 fsck} *)

type shard_report = {
  fs_shard : int;
  fs_ckpt_seq : int;  (** -1 = no checkpoint *)
  fs_wal_records : int;
  fs_stale : int;  (** records at or below the checkpoint sequence *)
  fs_uploads : int;  (** distinct uploads visible in this shard *)
  fs_torn_bytes : int;
  fs_errors : string list;
}

type report = {
  shards_checked : int;
  shard_reports : shard_report list;
  total_uploads : int;
  torn_tails : int;
  corrupt : int;  (** shards with a hard error *)
}

val fsck : string -> (report, string) result
(** Read-only integrity walk of a service directory: META, every
    shard's checkpoint (digest, parse), every WAL record (frame +
    digest), sequence continuity, id-table/registry parseability.
    Never modifies anything; safe on a live or crashed directory. *)

val clean : ?strict:bool -> report -> bool
(** No corruption and no sequence gaps.  [strict] (default [false])
    additionally rejects torn tails — right after a recovery there must
    be none; right after a [kill -9] one is expected and will be
    repaired by the next [open_]. *)

val render : report -> string
