let header = "CRTWAL01"
let frame_bytes = 4 + 8 + 16 (* len + seq + digest *)
let max_id_bytes = 0xFFFF
let max_body = 16 * 1024 * 1024

type t = {
  path : string;
  mutable fd : Unix.file_descr option;
  inject : Util.Atomic_io.injector option;
}

let open_writer ?inject path =
  if not (Sys.file_exists path) then
    (* The empty log is born durable: header via tmp+rename+fsync, so a
       crash during creation leaves nothing or a complete empty log,
       never a half-written magic that scan would reject. *)
    Util.Atomic_io.write ~durable:true ?inject path header;
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
  { path; fd = Some fd; inject }

let fd_exn t =
  match t.fd with
  | Some fd -> fd
  | None -> invalid_arg "Wal: closed writer"

let size t = (Unix.fstat (fd_exn t)).Unix.st_size

let close t =
  match t.fd with
  | None -> ()
  | Some fd ->
    t.fd <- None;
    (try Unix.close fd with Unix.Unix_error _ -> ())

let encode_record ~seq ~id ~payload =
  let id_len = String.length id in
  if id_len > max_id_bytes then invalid_arg "Wal.append: id longer than 65535";
  let body_len = 2 + id_len + String.length payload in
  if body_len > max_body then invalid_arg "Wal.append: oversized record";
  let b = Bytes.create (frame_bytes + body_len) in
  Bytes.set_int32_le b 0 (Int32.of_int body_len);
  Bytes.set_int64_le b 4 (Int64.of_int seq);
  Bytes.set_uint16_le b frame_bytes id_len;
  Bytes.blit_string id 0 b (frame_bytes + 2) id_len;
  Bytes.blit_string payload 0 b
    (frame_bytes + 2 + id_len)
    (String.length payload);
  (* Digest binds body to its sequence number: a record blitted to the
     wrong offset or re-framed by corruption cannot verify. *)
  let seq_le = Bytes.sub_string b 4 8 in
  let body = Bytes.sub_string b frame_bytes body_len in
  let digest = Digest.string (seq_le ^ body) in
  Bytes.blit_string digest 0 b 12 16;
  Bytes.to_string b

let append t ~seq ~id ~payload =
  let fd = fd_exn t in
  let record = encode_record ~seq ~id ~payload in
  let start = (Unix.fstat fd).Unix.st_size in
  try
    Util.Atomic_io.injected_write t.inject ~op:"wal.write" fd record;
    match t.inject with
    | None -> Unix.fsync fd
    | Some inject ->
      Util.Atomic_io.with_injection inject ~op:"wal.fsync" (fun () ->
          Unix.fsync fd)
  with
  | Unix.Unix_error _ as e ->
    (* Contained failure (ENOSPC, short write surfaced as an error):
       drop the partial tail so the log is exactly as before the
       append, then let the service refuse the ack. *)
    (try Unix.ftruncate fd start with Unix.Unix_error _ -> ());
    raise e
  | Util.Atomic_io.Injected_crash _ as e ->
    (* Simulated process death: the torn tail stays, recovery truncates
       it. *)
    raise e

type record = { seq : int; id : string; payload : string }

type scan = { records : record list; good_bytes : int; torn_bytes : int }

let scan path =
  if not (Sys.file_exists path) then
    Ok { records = []; good_bytes = 0; torn_bytes = 0 }
  else begin
    let text = Util.Atomic_io.read_file path in
    let n = String.length text in
    let hlen = String.length header in
    if n < hlen || String.sub text 0 hlen <> header then
      Error (Printf.sprintf "%s: not a WAL (bad magic)" path)
    else begin
      let records = ref [] in
      let pos = ref hlen in
      let stop = ref false in
      while not !stop do
        if !pos + frame_bytes > n then stop := true
        else begin
          let b = Bytes.unsafe_of_string text in
          let body_len = Int32.to_int (Bytes.get_int32_le b !pos) in
          if body_len < 2 || body_len > max_body || !pos + frame_bytes + body_len > n
          then stop := true
          else begin
            let seq = Int64.to_int (Bytes.get_int64_le b (!pos + 4)) in
            let digest = String.sub text (!pos + 12) 16 in
            let seq_le = String.sub text (!pos + 4) 8 in
            let body = String.sub text (!pos + frame_bytes) body_len in
            if Digest.string (seq_le ^ body) <> digest then stop := true
            else begin
              let id_len = Bytes.get_uint16_le b (!pos + frame_bytes) in
              if 2 + id_len > body_len then stop := true
              else begin
                let id = String.sub body 2 id_len in
                let payload =
                  String.sub body (2 + id_len) (body_len - 2 - id_len)
                in
                records := { seq; id; payload } :: !records;
                pos := !pos + frame_bytes + body_len
              end
            end
          end
        end
      done;
      Ok
        {
          records = List.rev !records;
          good_bytes = !pos;
          torn_bytes = n - !pos;
        }
    end
  end

let truncate_to path good_bytes =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.ftruncate fd good_bytes;
      Unix.fsync fd)
