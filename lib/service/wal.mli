(** Checksummed, sequence-numbered append-only write-ahead log.

    One WAL per shard of the profile-ingest service.  Every acknowledged
    upload is first appended here — length-framed, digest-per-record,
    sequence-numbered — and fsynced before the acknowledgement, so the
    ack is a durability promise: recovery replays the log over the last
    checkpoint and must find every acked record intact.

    Torn-tail discipline: a crash mid-append leaves a prefix of the
    final record.  {!scan} verifies records in order (frame bounds, then
    the per-record MD5 over sequence + id + payload) and treats the
    first bad byte as end-of-log; {!truncate_to} repairs the file to
    that point at recovery.  Records are never interpreted past a bad
    one — framing is lost there, and a record that fails its digest was
    by construction never acknowledged (the fsync happens after the full
    write) or is disk corruption that fsck must surface, not paper
    over.

    Record wire format, little-endian:
    [[4B body len][8B seq][16B MD5(seq_le ^ body)][body]] where
    [body = [2B id len][id bytes][payload bytes]]. *)

type t
(** An open writer handle (append mode). *)

val header : string
(** The 8-byte file magic ["CRTWAL01"]. *)

val max_id_bytes : int
(** Largest encodable client id (65535 — the 2-byte idlen field).
    [append] raises [Invalid_argument] past it; services must validate
    before calling. *)

val max_body : int
(** Largest encodable record body (idlen field + id + payload), 16 MiB.
    Same contract as {!max_id_bytes}. *)

val open_writer : ?inject:Util.Atomic_io.injector -> string -> t
(** Open the log for appending, creating it (with header, durably) if
    missing.  The caller must have repaired any torn tail first
    ({!scan} + {!truncate_to}); appending after garbage would orphan
    every subsequent record. *)

val append : t -> seq:int -> id:string -> payload:string -> unit
(** Durably append one record: one [wal.write] fault point for the
    bytes, one [wal.fsync] for the barrier.  On an ordinary I/O error
    (e.g. ENOSPC, injected or real) the partially-written tail is
    truncated away and the error re-raised as [Unix.Unix_error] — the
    log is exactly as before and the upload is {e not} acknowledged.
    An injected crash leaves the torn tail in place, as a real crash
    would. *)

val size : t -> int
(** Current byte size of the log. *)

val close : t -> unit
(** Close the fd (idempotent). *)

type record = { seq : int; id : string; payload : string }

type scan = {
  records : record list;  (** digest-valid records, in file order *)
  good_bytes : int;  (** offset of the first torn/corrupt byte *)
  torn_bytes : int;  (** bytes past [good_bytes] (0 = clean) *)
}

val scan : string -> (scan, string) result
(** Read and verify the whole log.  A missing file scans as empty and
    clean; a file without the magic header is an [Error]. *)

val truncate_to : string -> int -> unit
(** Repair: truncate the file to [good_bytes], discarding a torn tail.
    Raises [Unix.Unix_error] on failure. *)
