let format_version = "critics-store-1"

let code_version_memo = ref None

let code_version () =
  match !code_version_memo with
  | Some v -> v
  | None ->
    let v =
      try
        let ic =
          Unix.open_process_in "git describe --always --dirty 2>/dev/null"
        in
        let line = try input_line ic with End_of_file -> "" in
        ignore (Unix.close_process_in ic);
        if line = "" then "unknown" else line
      with _ -> "unknown"
    in
    code_version_memo := Some v;
    v

type t = {
  dir : string;
  mutable hits : int;
  mutable misses : int;
  mutable writes : int;
  mutable corrupt : int;
  quarantine_limit : int;
  inject : Util.Atomic_io.injector option;
}

let mkdir_p path =
  let rec go path =
    if not (Sys.file_exists path) then begin
      go (Filename.dirname path);
      try Unix.mkdir path 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path;
  if not (Sys.is_directory path) then
    raise (Sys_error (path ^ ": not a directory"))

let default_quarantine_limit = 32

let open_dir ?(quarantine_limit = default_quarantine_limit) ?inject dir =
  mkdir_p dir;
  ignore (Util.Atomic_io.sweep_tmp dir);
  Array.iter
    (fun name ->
      let sub = Filename.concat dir name in
      if Sys.is_directory sub then ignore (Util.Atomic_io.sweep_tmp sub))
    (Sys.readdir dir);
  {
    dir;
    hits = 0;
    misses = 0;
    writes = 0;
    corrupt = 0;
    quarantine_limit;
    inject;
  }

let open_default () =
  match Sys.getenv_opt "CRITICS_CACHE_DIR" with
  | None | Some "" -> None
  | Some dir -> Some (open_dir dir)

let dir t = t.dir

type key = { kind : string; digest : string (* hex *) }

(* Length-framed concatenation: no choice of part contents can make two
   distinct part lists serialize identically. *)
let key ?code_version:cv ~kind parts =
  if String.contains kind '/' then invalid_arg "Store.key: kind with '/'";
  let cv = match cv with Some v -> v | None -> code_version () in
  let buf = Buffer.create 256 in
  List.iter
    (fun part ->
      Buffer.add_string buf (string_of_int (String.length part));
      Buffer.add_char buf ':';
      Buffer.add_string buf part)
    (format_version :: cv :: kind :: parts);
  { kind; digest = Digest.to_hex (Digest.string (Buffer.contents buf)) }

let key_digest k = k.digest

let path_of t k = Filename.concat (Filename.concat t.dir k.kind) k.digest

(* Entry layout: one header line binding the payload to its key —
   "<format_version> <key-digest> <payload-md5> <payload-length>\n" —
   then the raw payload bytes. *)
let encode k payload =
  Printf.sprintf "%s %s %s %d\n%s" format_version k.digest
    (Digest.to_hex (Digest.string payload))
    (String.length payload) payload

let decode k text =
  match String.index_opt text '\n' with
  | None -> None
  | Some nl ->
    let header = String.sub text 0 nl in
    (match String.split_on_char ' ' header with
    | [ fmt; kd; pd; len ] ->
      let payload_pos = nl + 1 in
      (match int_of_string_opt len with
      | Some n
        when fmt = format_version && kd = k.digest
             && String.length text - payload_pos = n ->
        let payload = String.sub text payload_pos n in
        if Digest.to_hex (Digest.string payload) = pd then Some payload
        else None
      | _ -> None)
    | _ -> None)

(* Corrupt entries are evidence, not garbage: chaos- or crash-found
   corruption is moved aside into [<dir>/corrupt/] (bounded; oldest
   evicted) so it can be post-mortemed, instead of being deleted on
   sight.  The counters are untouched by the move — a corrupt entry is
   still one [corrupt] plus one [miss], exactly as before. *)
let quarantine_dirname = "corrupt"

let quarantine_dir t = Filename.concat t.dir quarantine_dirname

let quarantined t =
  let dir = quarantine_dir t in
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.sort compare names;
    Array.to_list (Array.map (Filename.concat dir) names)

let quarantine t k =
  let dir = quarantine_dir t in
  try
    mkdir_p dir;
    Sys.rename (path_of t k) (Filename.concat dir (k.kind ^ "." ^ k.digest));
    (* Bound the morgue: evict oldest-first (mtime, then name) past the
       limit so a corruption storm cannot fill the disk. *)
    let entries =
      List.filter_map
        (fun path ->
          match Unix.stat path with
          | { Unix.st_mtime; _ } -> Some (st_mtime, path)
          | exception Unix.Unix_error _ -> None)
        (quarantined t)
    in
    let excess = List.length entries - t.quarantine_limit in
    if excess > 0 then
      List.sort compare entries
      |> List.filteri (fun i _ -> i < excess)
      |> List.iter (fun (_, path) ->
             try Sys.remove path with Sys_error _ -> ())
  with Sys_error _ | Unix.Unix_error _ ->
    (* Quarantine is best-effort; never let it mask the miss. *)
    (try Sys.remove (path_of t k) with Sys_error _ -> ())

let find t k =
  let path = path_of t k in
  match Util.Atomic_io.read_file path with
  | exception Sys_error _ ->
    t.misses <- t.misses + 1;
    None
  | text -> (
    match decode k text with
    | Some payload ->
      t.hits <- t.hits + 1;
      Some payload
    | None ->
      (* Truncation, corruption or collision: quarantine the entry and
         fall back to recompute — never a crash, never a wrong
         payload. *)
      t.corrupt <- t.corrupt + 1;
      t.misses <- t.misses + 1;
      quarantine t k;
      None)

let add t k payload =
  try
    mkdir_p (Filename.concat t.dir k.kind);
    (* Durable: an installed entry that evaporates on power loss is
       harmless (a future miss), but a *named, empty* entry is a
       guaranteed corrupt-count on every later run — pay the fsync. *)
    Util.Atomic_io.write ~durable:true ?inject:t.inject (path_of t k)
      (encode k payload);
    t.writes <- t.writes + 1
  with Sys_error _ | Unix.Unix_error _ -> ()

(* Raw caller-verified blobs.  Some artifacts — mmap-replayed trace
   packs — must live as standalone files in their final format rather
   than as string payloads behind a header line.  The store still owns
   naming (key → path), atomic installation and orphan sweeping;
   content integrity is the caller's, whose format is self-verifying
   (Prog.Trace.Pack frames, versions and digests itself).  A caller
   that finds a blob corrupt hands it back through [remove_blob] so the
   corruption is counted like any other. *)

let find_blob t k =
  let path = path_of t k in
  if Sys.file_exists path then begin
    t.hits <- t.hits + 1;
    Some path
  end
  else begin
    t.misses <- t.misses + 1;
    None
  end

let blob_seq = Atomic.make 0

let add_blob t k produce =
  let path = path_of t k in
  (* Unique per producer: concurrent domains (or processes) recording
     the same key must not interleave writes into one temp file; each
     renames its own complete file, last one wins. *)
  let tmp =
    Printf.sprintf "%s.%d-%d.tmp" path (Unix.getpid ())
      (Atomic.fetch_and_add blob_seq 1)
  in
  try
    mkdir_p (Filename.concat t.dir k.kind);
    produce tmp;
    (* Same durability contract as [add]: fsync the produced blob
       before the rename and the directory after it.  Opened for
       writing — some platforms refuse fsync on a read-only fd — and a
       failed fsync propagates to the handler below, so the install is
       reported failed rather than silently non-durable. *)
    let fd = Unix.openfile tmp [ Unix.O_WRONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> Unix.fsync fd);
    Unix.rename tmp path;
    Util.Atomic_io.fsync_dir (Filename.dirname path);
    t.writes <- t.writes + 1;
    true
  with Sys_error _ | Unix.Unix_error _ ->
    (try Sys.remove tmp with Sys_error _ -> ());
    false

let remove_blob t k =
  t.corrupt <- t.corrupt + 1;
  quarantine t k

type stats = { hits : int; misses : int; writes : int; corrupt : int }

let stats (t : t) =
  { hits = t.hits; misses = t.misses; writes = t.writes; corrupt = t.corrupt }

let fold_entries t f init =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> init
  | kinds ->
    Array.fold_left
      (fun acc kind ->
        let sub = Filename.concat t.dir kind in
        (* The quarantine morgue is not part of the cache: its blobs
           are already-dead evidence and must not count as entries,
           bytes, or [clear] victims. *)
        if kind = quarantine_dirname || not (Sys.is_directory sub) then acc
        else
          Array.fold_left
            (fun acc name -> f acc (Filename.concat sub name))
            acc (Sys.readdir sub))
      init kinds

let entry_count t = fold_entries t (fun n _ -> n + 1) 0

let total_bytes t =
  fold_entries t
    (fun n path ->
      match Unix.stat path with
      | { Unix.st_size; _ } -> n + st_size
      | exception Unix.Unix_error _ -> n)
    0

let clear t =
  fold_entries t
    (fun n path ->
      match Sys.remove path with
      | () -> n + 1
      | exception Sys_error _ -> n)
    0

let publish (t : t) registry =
  let count name v =
    Telemetry.Registry.add (Telemetry.Registry.counter registry name) v
  in
  count "store/hit" t.hits;
  count "store/miss" t.misses;
  count "store/write" t.writes;
  count "store/corrupt" t.corrupt;
  Telemetry.Registry.set_max
    (Telemetry.Registry.gauge registry "store/bytes")
    (total_bytes t)
