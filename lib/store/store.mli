(** Versioned on-disk cache of prepared artifacts.

    Prepared app contexts, transformed programs and simulation results
    are deterministic functions of (app profile × configuration × code
    version), so recomputing them on every invocation is pure waste —
    the same "pay once, reuse across runs" opportunity the paper's
    caching analysis identifies in app content loads.  This store makes
    the recomputation skippable: callers serialize an artifact to bytes
    once, keyed by a fingerprint of everything the bytes depend on, and
    later runs load the bytes back instead of recomputing.

    Design rules, in order:

    - {b Wrong answers are impossible; stale answers are impossible.}
      A key digests the cache-format version, the code version (git
      describe), an artifact kind, and every caller-supplied input
      part.  Change any of them and the lookup misses.  Entries carry
      their key digest, payload digest and payload length in a header;
      [find] re-verifies all three and treats any mismatch — truncated
      write, flipped bit, hash collision across kinds — as a miss
      (counted as [corrupt], entry removed), falling back to
      recompute.
    - {b Crash-safe.}  Writes go through {!Util.Atomic_io} (tmp +
      rename); [open_dir] sweeps stale [*.tmp] orphans.
    - {b Hermetic by default.}  Nothing touches the disk unless the
      caller opens a store; [open_default] only opens one when
      [CRITICS_CACHE_DIR] is set, so tests and default runs see no
      cross-run state.

    Layout: [<dir>/<kind>/<key-digest>], one file per entry. *)

type t

val format_version : string
(** Baked into every key; bump on any layout/serialization change. *)

val code_version : unit -> string
(** [git describe --always --dirty] of the running build, computed once
    and cached; ["unknown"] when git is unavailable.  Baked into every
    key so rebuilt code never reuses stale artifacts (conservative:
    any new commit invalidates). *)

val open_dir :
  ?quarantine_limit:int -> ?inject:Util.Atomic_io.injector -> string -> t
(** Open (creating if needed) a store rooted at the directory.  Sweeps
    stale [*.tmp] files.  Raises [Sys_error] if the directory cannot be
    created.  [quarantine_limit] (default 32) bounds the
    [<dir>/corrupt/] morgue corrupt entries are moved into.  [inject]
    arms the {!Util.Atomic_io} chaos fault seam on [add]'s installs
    (tests only). *)

val open_default : unit -> t option
(** [Some (open_dir dir)] when [CRITICS_CACHE_DIR] is set to a
    non-empty [dir], else [None]. *)

val dir : t -> string

type key

val key : ?code_version:string -> kind:string -> string list -> key
(** Fingerprint of an artifact: digests [format_version],
    [code_version] (default {!code_version}[ ()]), the [kind] and every
    part, length-framed so part boundaries can't alias.  [kind] must be
    a single path component (no ['/']); it namespaces the entry on
    disk.  The [?code_version] override exists for invalidation tests. *)

val key_digest : key -> string
(** Hex digest of the key — a stable content fingerprint callers can
    embed in further keys (e.g. a derived artifact keyed by the
    fingerprint of its input artifact). *)

val find : t -> key -> string option
(** The stored payload, or [None] on miss.  Corrupt or mismatched
    entries are quarantined into [<dir>/corrupt/] (bounded,
    oldest-evicted — see {!quarantined}), counted, and reported as
    misses — the caller recomputes and may [add] again. *)

val add : t -> key -> string -> unit
(** Store a payload under the key (atomically and durably: the entry is
    fsynced before the rename and the directory after; last writer
    wins).  I/O failures are swallowed: a read-only or full cache
    directory degrades to recompute-every-time, never to a crash. *)

(** {2 Raw blobs}

    Caller-verified standalone files for artifacts that must keep their
    own on-disk format (e.g. mmap-replayed trace packs, which are
    length-framed, versioned and digest-verified by
    [Prog.Trace.Pack] itself).  The store owns naming, atomic
    installation and [*.tmp] orphan sweeping; content verification is
    the caller's. *)

val find_blob : t -> key -> string option
(** Path of the blob for [key] if one is installed (counted as a hit),
    else [None] (a miss).  The caller verifies the content; if it is
    corrupt, report it back via {!remove_blob} and recompute. *)

val add_blob : t -> key -> (string -> unit) -> bool
(** [add_blob t k produce] calls [produce tmp_path] to write the blob,
    then atomically renames it into place (last writer wins).  Returns
    [false] — removing any partial temp file — if production or
    installation failed; like {!add}, failures never escape. *)

val remove_blob : t -> key -> unit
(** Quarantine a blob the caller found corrupt; counted under
    [corrupt]. *)

(** {2 Introspection} *)

val quarantine_dir : t -> string
(** [<dir>/corrupt/], where corrupt entries and blobs are moved so
    chaos- or crash-found corruption stays post-mortem-able.  Bounded
    by the open-time [quarantine_limit]: past it the oldest (mtime,
    then name) quarantined file is evicted.  Quarantined files are not
    cache entries — {!entry_count}, {!total_bytes} and {!clear} ignore
    them. *)

val quarantined : t -> string list
(** Paths of the currently quarantined files, sorted by name. *)

type stats = { hits : int; misses : int; writes : int; corrupt : int }

val stats : t -> stats
(** Lookup counters since [open_dir]. *)

val entry_count : t -> int
(** Entries currently on disk (scans the directory). *)

val total_bytes : t -> int
(** Bytes currently on disk across all entries (scans the directory). *)

val clear : t -> int
(** Remove every entry; returns the number removed. *)

val publish : t -> Telemetry.Registry.t -> unit
(** Export [store/hit], [store/miss], [store/write], [store/corrupt]
    counters and the [store/bytes] gauge into a registry. *)
