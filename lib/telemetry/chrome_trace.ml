type event =
  | Counter of { ts : int; name : string; value : int }
  | Async_b of { ts : int; name : string; id : int }
  | Async_e of { ts : int; name : string; id : int }
  | Instant of { ts : int; name : string; args : (string * string) list }

type t = {
  ring : event array;
  capacity : int;
  mutable next : int; (* next write position *)
  mutable count : int; (* live events, <= capacity *)
  mutable dropped : int;
}

let dummy = Instant { ts = 0; name = ""; args = [] }

let create ?(capacity = 65536) () =
  let capacity = max 16 capacity in
  { ring = Array.make capacity dummy; capacity; next = 0; count = 0;
    dropped = 0 }

let push t ev =
  t.ring.(t.next) <- ev;
  t.next <- (t.next + 1) mod t.capacity;
  if t.count < t.capacity then t.count <- t.count + 1
  else t.dropped <- t.dropped + 1

let counter t ~ts ~name ~value = push t (Counter { ts; name; value })
let async_begin t ~ts ~name ~id = push t (Async_b { ts; name; id })
let async_end t ~ts ~name ~id = push t (Async_e { ts; name; id })
let instant t ~ts ~name ?(args = []) () = push t (Instant { ts; name; args })

let length t = t.count
let dropped t = t.dropped

(* Oldest-first; when the ring has wrapped the oldest event sits at
   [next]. *)
let events t =
  let start = if t.count < t.capacity then 0 else t.next in
  List.init t.count (fun i -> t.ring.((start + i) mod t.capacity))

let to_json t =
  let evs = events t in
  (* Ring truncation can drop one half of an async pair; keep only ids
     seen on both sides so the output always validates. *)
  let begins = Hashtbl.create 16 and ends = Hashtbl.create 16 in
  List.iter
    (function
      | Async_b { name; id; _ } -> Hashtbl.replace begins (name, id) ()
      | Async_e { name; id; _ } -> Hashtbl.replace ends (name, id) ()
      | _ -> ())
    evs;
  let open Util.Json in
  let base ~name ~ph ~ts rest =
    Obj
      ([
         ("name", Str name);
         ("ph", Str ph);
         ("ts", Num (float_of_int ts));
         ("pid", Num 1.);
         ("tid", Num 1.);
       ]
      @ rest)
  in
  let json_events =
    List.filter_map
      (function
        | Counter { ts; name; value } ->
          Some
            (base ~name ~ph:"C" ~ts
               [ ("args", Obj [ ("value", Num (float_of_int value)) ]) ])
        | Async_b { ts; name; id } ->
          if Hashtbl.mem ends (name, id) then
            Some
              (base ~name ~ph:"b" ~ts
                 [ ("cat", Str "chain"); ("id", Num (float_of_int id)) ])
          else None
        | Async_e { ts; name; id } ->
          if Hashtbl.mem begins (name, id) then
            Some
              (base ~name ~ph:"e" ~ts
                 [ ("cat", Str "chain"); ("id", Num (float_of_int id)) ])
          else None
        | Instant { ts; name; args } ->
          Some
            (base ~name ~ph:"i" ~ts
               [
                 ("s", Str "g");
                 ("args", Obj (List.map (fun (k, v) -> (k, Str v)) args));
               ]))
      evs
  in
  to_string
    (Obj
       [
         ("traceEvents", Arr json_events); ("displayTimeUnit", Str "ms");
       ])

let write_file t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_json t);
      output_char oc '\n');
  Sys.rename tmp path

let validate text =
  let open Util.Json in
  match parse text with
  | exception Parse_error msg -> Error ("trace does not parse: " ^ msg)
  | json -> (
    try
      let evs = arr (field "traceEvents" json) in
      (* last ts per counter / instant track *)
      let tracks : (string, int) Hashtbl.t = Hashtbl.create 16 in
      (* outstanding async begins: (name, id) -> begin ts *)
      let open_spans : (string * int, int) Hashtbl.t = Hashtbl.create 16 in
      let check_track kind name ts =
        let key = kind ^ ":" ^ name in
        (match Hashtbl.find_opt tracks key with
        | Some prev when ts < prev ->
          failwith
            (Printf.sprintf "track %s goes backwards: %d after %d" key ts
               prev)
        | _ -> ());
        Hashtbl.replace tracks key ts
      in
      List.iter
        (fun ev ->
          let name = str (field "name" ev) in
          let ph = str (field "ph" ev) in
          let ts = int (field "ts" ev) in
          ignore (int (field "pid" ev));
          ignore (int (field "tid" ev));
          match ph with
          | "C" ->
            ignore (int (field "value" (field "args" ev)));
            check_track "C" name ts
          | "i" -> check_track "i" name ts
          | "b" ->
            let id = int (field "id" ev) in
            if str (field "cat" ev) <> "chain" then
              failwith "async event outside the chain category";
            if Hashtbl.mem open_spans (name, id) then
              failwith
                (Printf.sprintf "duplicate async begin %s/%d" name id);
            Hashtbl.replace open_spans (name, id) ts
          | "e" -> (
            let id = int (field "id" ev) in
            match Hashtbl.find_opt open_spans (name, id) with
            | None ->
              failwith
                (Printf.sprintf "async end %s/%d without a begin" name id)
            | Some b_ts ->
              if ts < b_ts then
                failwith
                  (Printf.sprintf "async span %s/%d ends before it begins"
                     name id);
              Hashtbl.remove open_spans (name, id))
          | ph -> failwith (Printf.sprintf "unexpected phase %S" ph))
        evs;
      if Hashtbl.length open_spans > 0 then
        failwith
          (Printf.sprintf "%d async begins without a matching end"
             (Hashtbl.length open_spans));
      Ok (List.length evs)
    with Failure msg -> Error msg)
