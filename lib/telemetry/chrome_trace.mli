(** Chrome/Perfetto trace-event exporter over a bounded ring.

    Events accumulate in a fixed-capacity ring: once full, the oldest
    events are overwritten (count available via {!dropped}), so a trace
    of an arbitrarily long run stays O(capacity) in memory — the
    Perfetto UI cares about the most recent window anyway.

    The export format is the Chrome trace-event JSON object form
    ([{"traceEvents": [...]}]), with one cycle mapped to one
    microsecond of trace time:

    - stage-occupancy tracks are ["C"] (counter) events, one track per
      stage name, value = stall cycles attributed in that window;
    - CritIC chain instances are ["b"]/["e"] async spans in category
      ["chain"], one unique [id] per instance so overlapping instances
      of the same chain render as separate slices;
    - fuel-watchdog and fault-injection hits are ["i"] (instant)
      events.

    Ring truncation can orphan the begin of an async pair; orphans are
    filtered at export so emitted JSON always validates. *)

type t

val create : ?capacity:int -> unit -> t
(** Ring of at most [capacity] events (default 65536, min 16). *)

val counter : t -> ts:int -> name:string -> value:int -> unit
(** One sample on counter track [name] at cycle [ts]. *)

val async_begin : t -> ts:int -> name:string -> id:int -> unit
val async_end : t -> ts:int -> name:string -> id:int -> unit
(** Async span in category ["chain"]; pair by identical [name]/[id]. *)

val instant : t -> ts:int -> name:string -> ?args:(string * string) list ->
  unit -> unit
(** Global instant event ([ph:"i"], [s:"g"]). *)

val length : t -> int
(** Events currently held (after ring truncation). *)

val dropped : t -> int
(** Events overwritten by ring wrap-around. *)

val to_json : t -> string
(** Deterministic trace JSON; orphaned async begins/ends (whose partner
    fell off the ring) are dropped from the output. *)

val write_file : t -> string -> unit
(** Atomic write (temp file + rename) of {!to_json}. *)

val validate : string -> (int, string) result
(** Validate trace JSON text: parses, every event carries
    name/ph/ts/pid/tid, counter and instant timestamps are monotonically
    non-decreasing per track, and every async begin has a matching end
    with [e.ts >= b.ts] (and vice versa).  [Ok n] gives the event
    count. *)
