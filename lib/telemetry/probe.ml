type population = All | Critical | Chain

let population_name = function
  | All -> "all"
  | Critical -> "critical"
  | Chain -> "chain"

type retire = {
  cycle : int;
  critical : bool;
  chain_id : int;
  chain_pos : int;
  chain_len : int;
  dispatch : int;
  fetch_i : int;
  fetch_rd : int;
  decode : int;
  rename : int;
  issue_wait : int;
  execute : int;
  commit_wait : int;
}

type window_sample = {
  w_index : int;
  w_pop : population;
  w_count : int;
  w_fetch_i : int;
  w_fetch_rd : int;
  w_decode : int;
  w_rename : int;
  w_issue_wait : int;
  w_execute : int;
  w_commit_wait : int;
}

type stage_totals = {
  count : int;
  fetch_i : int;
  fetch_rd : int;
  decode : int;
  rename : int;
  issue_wait : int;
  execute : int;
  commit_wait : int;
}

let zero_totals =
  {
    count = 0;
    fetch_i = 0;
    fetch_rd = 0;
    decode = 0;
    rename = 0;
    issue_wait = 0;
    execute = 0;
    commit_wait = 0;
  }

(* Mutable per-window accumulator, one per population. *)
type wacc = {
  mutable a_count : int;
  mutable a_fetch_i : int;
  mutable a_fetch_rd : int;
  mutable a_decode : int;
  mutable a_rename : int;
  mutable a_issue_wait : int;
  mutable a_execute : int;
  mutable a_commit_wait : int;
}

let fresh_wacc () =
  {
    a_count = 0;
    a_fetch_i = 0;
    a_fetch_rd = 0;
    a_decode = 0;
    a_rename = 0;
    a_issue_wait = 0;
    a_execute = 0;
    a_commit_wait = 0;
  }

let reset_wacc a =
  a.a_count <- 0;
  a.a_fetch_i <- 0;
  a.a_fetch_rd <- 0;
  a.a_decode <- 0;
  a.a_rename <- 0;
  a.a_issue_wait <- 0;
  a.a_execute <- 0;
  a.a_commit_wait <- 0

type t = {
  win : int;
  tr : Chrome_trace.t option;
  reg : Registry.t;
  mutable cur_w : int;
  acc_all : wacc;
  acc_crit : wacc;
  acc_chain : wacc;
  mutable tot_all : stage_totals;
  mutable tot_crit : stage_totals;
  mutable tot_chain : stage_totals;
  mutable rev_samples : window_sample list;
  chain_starts : (int, int) Hashtbl.t; (* chain id -> dispatch of member 0 *)
  mutable next_span : int; (* unique async-span id per chain instance *)
  retired : Registry.counter;
  chain_instances : Registry.counter;
  chain_latency : Registry.histogram;
  mutable finished : bool;
}

let create ?(window = 1024) ?trace () =
  let win = max 1 window in
  let reg = Registry.create () in
  Registry.set (Registry.gauge reg "window/size") win;
  {
    win;
    tr = trace;
    reg;
    cur_w = 0;
    acc_all = fresh_wacc ();
    acc_crit = fresh_wacc ();
    acc_chain = fresh_wacc ();
    tot_all = zero_totals;
    tot_crit = zero_totals;
    tot_chain = zero_totals;
    rev_samples = [];
    chain_starts = Hashtbl.create 16;
    next_span = 0;
    retired = Registry.counter reg "retired";
    chain_instances = Registry.counter reg "chain/instances";
    chain_latency = Registry.histogram reg "chain/latency";
    finished = false;
  }

let window t = t.win
let trace t = t.tr
let registry t = t.reg
let samples t = List.rev t.rev_samples

let totals t pop =
  match pop with
  | All -> t.tot_all
  | Critical -> t.tot_crit
  | Chain -> t.tot_chain

let stage_names =
  [
    "fetch_i"; "fetch_rd"; "decode"; "rename"; "issue_wait"; "execute";
    "commit_wait";
  ]

let wacc_fields a =
  [
    a.a_fetch_i; a.a_fetch_rd; a.a_decode; a.a_rename; a.a_issue_wait;
    a.a_execute; a.a_commit_wait;
  ]

let flush_window t =
  let flush_pop pop a =
    if a.a_count > 0 then begin
      t.rev_samples <-
        {
          w_index = t.cur_w;
          w_pop = pop;
          w_count = a.a_count;
          w_fetch_i = a.a_fetch_i;
          w_fetch_rd = a.a_fetch_rd;
          w_decode = a.a_decode;
          w_rename = a.a_rename;
          w_issue_wait = a.a_issue_wait;
          w_execute = a.a_execute;
          w_commit_wait = a.a_commit_wait;
        }
        :: t.rev_samples;
      let prefix = "window/" ^ population_name pop ^ "/" in
      Registry.observe (Registry.histogram t.reg (prefix ^ "count")) a.a_count;
      List.iter2
        (fun stage v ->
          Registry.observe (Registry.histogram t.reg (prefix ^ stage)) v)
        stage_names (wacc_fields a);
      (match (pop, t.tr) with
      | All, Some tr ->
        let ts = t.cur_w * t.win in
        List.iter2
          (fun stage v ->
            Chrome_trace.counter tr ~ts ~name:("stage/" ^ stage) ~value:v)
          stage_names (wacc_fields a)
      | _ -> ());
      reset_wacc a
    end
  in
  flush_pop All t.acc_all;
  flush_pop Critical t.acc_crit;
  flush_pop Chain t.acc_chain

let bump_totals tot (r : retire) =
  {
    count = tot.count + 1;
    fetch_i = tot.fetch_i + r.fetch_i;
    fetch_rd = tot.fetch_rd + r.fetch_rd;
    decode = tot.decode + r.decode;
    rename = tot.rename + r.rename;
    issue_wait = tot.issue_wait + r.issue_wait;
    execute = tot.execute + r.execute;
    commit_wait = tot.commit_wait + r.commit_wait;
  }

let bump_wacc a (r : retire) =
  a.a_count <- a.a_count + 1;
  a.a_fetch_i <- a.a_fetch_i + r.fetch_i;
  a.a_fetch_rd <- a.a_fetch_rd + r.fetch_rd;
  a.a_decode <- a.a_decode + r.decode;
  a.a_rename <- a.a_rename + r.rename;
  a.a_issue_wait <- a.a_issue_wait + r.issue_wait;
  a.a_execute <- a.a_execute + r.execute;
  a.a_commit_wait <- a.a_commit_wait + r.commit_wait

let retire t r =
  if t.finished then
    invalid_arg "Telemetry.Probe.retire: probe already finished";
  let w = r.cycle / t.win in
  if w > t.cur_w then begin
    flush_window t;
    t.cur_w <- w
  end;
  Registry.incr t.retired;
  bump_wacc t.acc_all r;
  t.tot_all <- bump_totals t.tot_all r;
  if r.critical then begin
    bump_wacc t.acc_crit r;
    t.tot_crit <- bump_totals t.tot_crit r
  end;
  if r.chain_id >= 0 then begin
    bump_wacc t.acc_chain r;
    t.tot_chain <- bump_totals t.tot_chain r;
    if r.chain_pos = 0 then Hashtbl.replace t.chain_starts r.chain_id
        r.dispatch;
    if r.chain_pos = r.chain_len - 1 then begin
      let start =
        match Hashtbl.find_opt t.chain_starts r.chain_id with
        | Some s -> s
        | None -> r.dispatch
      in
      Hashtbl.remove t.chain_starts r.chain_id;
      let latency = r.cycle - start in
      Registry.incr t.chain_instances;
      Registry.observe t.chain_latency latency;
      Registry.observe
        (Registry.histogram t.reg
           (Printf.sprintf "chain/id/%d/latency" r.chain_id))
        latency;
      match t.tr with
      | Some tr ->
        let id = t.next_span in
        t.next_span <- id + 1;
        let name = Printf.sprintf "chain-%d" r.chain_id in
        Chrome_trace.async_begin tr ~ts:start ~name ~id;
        Chrome_trace.async_end tr ~ts:r.cycle ~name ~id
      | None -> ()
    end
  end

let cdp_marker t ~cycle:_ ~penalty =
  Registry.incr (Registry.counter t.reg "cdp/markers");
  Registry.add (Registry.counter t.reg "cdp/decode_cycles") penalty

let fault t ~cycle ~kind =
  Registry.incr (Registry.counter t.reg ("fault/" ^ kind));
  match t.tr with
  | Some tr ->
    Chrome_trace.instant tr ~ts:cycle ~name:("fault:" ^ kind)
      ~args:[ ("kind", kind) ] ()
  | None -> ()

let finish t ~cycles =
  if not t.finished then begin
    t.finished <- true;
    flush_window t;
    Registry.add (Registry.counter t.reg "run/cycles") cycles;
    match t.tr with
    | Some tr ->
      Registry.set_max
        (Registry.gauge t.reg "trace/dropped")
        (Chrome_trace.dropped tr)
    | None -> ()
  end
