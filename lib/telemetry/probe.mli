(** Pipeline cycle-attribution observer.

    A probe is handed to [Pipeline.Cpu.run_stream ?probe] and fed one
    {!retire} record per committed instruction (plus CDP-marker and
    fault notifications).  It never feeds anything back: the simulator's
    architectural and timing state is bit-identical with or without a
    probe attached — the golden-digest suite runs both ways to prove
    it.

    From the retire stream the probe derives, online and in O(1) per
    event:

    - {b windowed cycle attribution}: an instruction belongs to window
      [commit_cycle / window]; per window and per population (all /
      critical / CritIC-chain-tagged) the seven stage-residency fields
      are summed.  Summing a population's windows reproduces the
      corresponding [Pipeline.Stats.stage_summary] field-for-field —
      the accounting contract locked down in [test_telemetry.ml].
    - {b per-chain latencies}: dispatch of a chain's first member to
      commit of its last, observed into the ["chain/latency"] histogram
      and a per-chain-id ["chain/id/<n>/latency"] histogram.
    - {b trace events}: when created with [~trace], window flushes emit
      stage counter-track samples, chain instances emit async spans and
      faults emit instant events into the bounded {!Chrome_trace} ring.

    CDP markers retire at decode and never reach the commit stage, so
    they are reported separately ({!cdp_marker}) and appear in the
    registry (["cdp/markers"], ["cdp/decode_cycles"]) but never in the
    windowed populations — mirroring how [Stats] excludes them from the
    stage summaries. *)

type population = All | Critical | Chain

val population_name : population -> string
(** ["all"], ["critical"], ["chain"] — used in metric names. *)

type retire = {
  cycle : int;  (** commit cycle *)
  critical : bool;
  chain_id : int;  (** CritIC chain id, [-1] when untagged *)
  chain_pos : int;
  chain_len : int;
  dispatch : int;  (** rename/dispatch cycle (chain-latency start) *)
  fetch_i : int;
  fetch_rd : int;
  decode : int;
  rename : int;
  issue_wait : int;
  execute : int;
  commit_wait : int;
}

type window_sample = {
  w_index : int;  (** window number, [commit_cycle / window] *)
  w_pop : population;
  w_count : int;  (** instructions committed in this window *)
  w_fetch_i : int;
  w_fetch_rd : int;
  w_decode : int;
  w_rename : int;
  w_issue_wait : int;
  w_execute : int;
  w_commit_wait : int;
}

type stage_totals = {
  count : int;
  fetch_i : int;
  fetch_rd : int;
  decode : int;
  rename : int;
  issue_wait : int;
  execute : int;
  commit_wait : int;
}

type t

val create : ?window:int -> ?trace:Chrome_trace.t -> unit -> t
(** [window] is the attribution window size in cycles (default 1024,
    min 1).  [trace] attaches a Chrome-trace ring. *)

val window : t -> int
val trace : t -> Chrome_trace.t option

(** {2 Feeding (called by the simulator)} *)

val retire : t -> retire -> unit
(** Record one committed instruction.  Commit cycles must be
    non-decreasing (in-order retirement guarantees this). *)

val cdp_marker : t -> cycle:int -> penalty:int -> unit
(** A CDP switch marker consumed at decode for [penalty] cycles. *)

val fault : t -> cycle:int -> kind:string -> unit
(** A fuel-watchdog trip or injected fault; counted under
    ["fault/<kind>"] and emitted as an instant trace event. *)

val finish : t -> cycles:int -> unit
(** Flush the last open window and record end-of-run metrics.
    Idempotent; further [retire] calls after [finish] are a programming
    error. *)

(** {2 Reading} *)

val samples : t -> window_sample list
(** Flushed window samples in emission order (window index ascending,
    population order all/critical/chain within a window); zero-count
    windows are skipped. *)

val totals : t -> population -> stage_totals
(** Running per-population totals — equals the field-wise sum of
    {!samples} for that population, and must equal the simulator's
    [Stats.stage_summary]. *)

val registry : t -> Registry.t
(** The probe's metric registry (chain latency histograms, per-window
    stage histograms, cdp/fault counters, run gauges). *)
