type counter = { mutable c : int }
type gauge = { mutable g : int }

let num_buckets = 64

type histogram = {
  mutable n : int;
  mutable sum : int;
  mutable hmax : int;
  buckets : int array; (* power-of-two buckets; see bucket_of *)
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }
let is_empty t = Hashtbl.length t.tbl = 0

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let get_or_create t name ~make ~cast =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> (
    match cast m with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Telemetry.Registry: %S already bound as a %s" name
           (kind_name m)))
  | None ->
    let m, v = make () in
    Hashtbl.replace t.tbl name m;
    v

let counter t name =
  get_or_create t name
    ~make:(fun () ->
      let c = { c = 0 } in
      (Counter c, c))
    ~cast:(function Counter c -> Some c | _ -> None)

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let counter_value c = c.c

let gauge t name =
  get_or_create t name
    ~make:(fun () ->
      let g = { g = 0 } in
      (Gauge g, g))
    ~cast:(function Gauge g -> Some g | _ -> None)

let set g v = g.g <- v
let set_max g v = if v > g.g then g.g <- v
let gauge_value g = g.g

let histogram t name =
  get_or_create t name
    ~make:(fun () ->
      let h = { n = 0; sum = 0; hmax = 0; buckets = Array.make num_buckets 0 } in
      (Histogram h, h))
    ~cast:(function Histogram h -> Some h | _ -> None)

(* Bucket index = bit width of v: v <= 0 -> 0, otherwise bucket b holds
   [2^(b-1), 2^b - 1].  Constant number of shift/test steps. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let v = ref v in
    let b = ref 0 in
    if !v lsr 32 <> 0 then begin b := !b + 32; v := !v lsr 32 end;
    if !v lsr 16 <> 0 then begin b := !b + 16; v := !v lsr 16 end;
    if !v lsr 8 <> 0 then begin b := !b + 8; v := !v lsr 8 end;
    if !v lsr 4 <> 0 then begin b := !b + 4; v := !v lsr 4 end;
    if !v lsr 2 <> 0 then begin b := !b + 2; v := !v lsr 2 end;
    if !v lsr 1 <> 0 then begin b := !b + 1 end;
    min (num_buckets - 1) (!b + 1)
  end

let observe h v =
  h.n <- h.n + 1;
  h.sum <- h.sum + v;
  if v > h.hmax then h.hmax <- v;
  let b = h.buckets in
  let i = bucket_of v in
  b.(i) <- b.(i) + 1

let hist_count h = h.n
let hist_sum h = h.sum
let hist_max h = h.hmax

let quantile h q =
  if h.n = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int h.n)) in
      if r < 1 then 1 else if r > h.n then h.n else r
    in
    let cum = ref 0 in
    let res = ref h.hmax in
    (try
       for b = 0 to num_buckets - 1 do
         cum := !cum + h.buckets.(b);
         if !cum >= rank then begin
           res := (if b = 0 then 0 else (1 lsl b) - 1);
           raise Exit
         end
       done
     with Exit -> ());
    min !res h.hmax
  end

let merge_into ~into src =
  Hashtbl.iter
    (fun name m ->
      match m with
      | Counter c -> add (counter into name) c.c
      | Gauge g -> set_max (gauge into name) g.g
      | Histogram h ->
        let dst = histogram into name in
        dst.n <- dst.n + h.n;
        dst.sum <- dst.sum + h.sum;
        if h.hmax > dst.hmax then dst.hmax <- h.hmax;
        for b = 0 to num_buckets - 1 do
          dst.buckets.(b) <- dst.buckets.(b) + h.buckets.(b)
        done)
    src.tbl

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of {
      count : int;
      sum : int;
      max : int;
      p50 : int;
      p90 : int;
      p99 : int;
    }

let snapshot t =
  Hashtbl.fold
    (fun name m acc ->
      let v =
        match m with
        | Counter c -> Counter_v c.c
        | Gauge g -> Gauge_v g.g
        | Histogram h ->
          Histogram_v
            {
              count = h.n;
              sum = h.sum;
              max = h.hmax;
              p50 = quantile h 0.50;
              p90 = quantile h 0.90;
              p99 = quantile h 0.99;
            }
      in
      (name, v) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let to_json t =
  let snap = snapshot t in
  let section pred =
    let fields =
      List.filter_map
        (fun (name, v) ->
          match pred v with
          | Some payload ->
            Some
              (Printf.sprintf "\"%s\":%s" (Util.Json.escape_string name)
                 payload)
          | None -> None)
        snap
    in
    "{" ^ String.concat "," fields ^ "}"
  in
  let counters =
    section (function Counter_v c -> Some (string_of_int c) | _ -> None)
  in
  let gauges =
    section (function Gauge_v g -> Some (string_of_int g) | _ -> None)
  in
  let hists =
    section (function
      | Histogram_v { count; sum; max; p50; p90; p99 } ->
        Some
          (Printf.sprintf
             "{\"count\":%d,\"sum\":%d,\"max\":%d,\"p50\":%d,\"p90\":%d,\
              \"p99\":%d}"
             count sum max p50 p90 p99)
      | _ -> None)
  in
  Printf.sprintf "{\"counters\":%s,\"gauges\":%s,\"histograms\":%s}" counters
    gauges hists

(* ------------------------- serialization -------------------------- *)

(* Full-fidelity wire form for the ingest service: unlike [to_json]
   (which summarizes histograms to quantiles), this round-trips every
   bucket, so [of_bytes] followed by [merge_into] is exactly the merge
   of the original registries.  Deterministic: metrics sorted by name,
   names length-framed so any byte is legal in a name. *)

let wire_magic = "CRTREG01"

let to_bytes t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf wire_magic;
  Buffer.add_char buf '\n';
  let names =
    Hashtbl.fold (fun name _ acc -> name :: acc) t.tbl []
    |> List.sort compare
  in
  List.iter
    (fun name ->
      let framed = Printf.sprintf "%d:%s" (String.length name) name in
      match Hashtbl.find t.tbl name with
      | Counter c -> Buffer.add_string buf (Printf.sprintf "c %s %d\n" framed c.c)
      | Gauge g -> Buffer.add_string buf (Printf.sprintf "g %s %d\n" framed g.g)
      | Histogram h ->
        Buffer.add_string buf
          (Printf.sprintf "h %s %d %d %d" framed h.n h.sum h.hmax);
        Array.iter
          (fun b -> Buffer.add_string buf (Printf.sprintf " %d" b))
          h.buckets;
        Buffer.add_char buf '\n')
    names;
  Buffer.contents buf

exception Wire of string

let of_bytes text =
  try
    let n = String.length text in
    let pos = ref 0 in
    let fail fmt = Printf.ksprintf (fun m -> raise (Wire m)) fmt in
    let line () =
      match String.index_from_opt text !pos '\n' with
      | None -> fail "missing newline at byte %d" !pos
      | Some nl ->
        let l = String.sub text !pos (nl - !pos) in
        pos := nl + 1;
        l
    in
    if n < String.length wire_magic + 1 || line () <> wire_magic then
      raise (Wire "bad magic");
    let t = create () in
    let parse_name l at =
      (* "<len>:<name>" starting at [at]; returns (name, next index) *)
      match String.index_from_opt l at ':' with
      | None -> fail "missing name frame"
      | Some colon -> (
        match int_of_string_opt (String.sub l at (colon - at)) with
        | Some len
          when len >= 0 && colon + 1 + len <= String.length l ->
          (String.sub l (colon + 1) len, colon + 1 + len)
        | _ -> fail "bad name frame")
    in
    let ints_after l at =
      String.sub l at (String.length l - at)
      |> String.split_on_char ' '
      |> List.filter (fun s -> s <> "")
      |> List.map (fun s ->
             match int_of_string_opt s with
             | Some v -> v
             | None -> fail "bad integer %S" s)
    in
    while !pos < n do
      let l = line () in
      if String.length l < 2 then fail "short line";
      let name, rest = parse_name l 2 in
      let vals = ints_after l rest in
      match (l.[0], vals) with
      | 'c', [ v ] -> add (counter t name) v
      | 'g', [ v ] -> set (gauge t name) v
      | 'h', cnt :: sum :: hmax :: buckets
        when List.length buckets = num_buckets ->
        let h = histogram t name in
        h.n <- cnt;
        h.sum <- sum;
        h.hmax <- hmax;
        List.iteri (fun i b -> h.buckets.(i) <- b) buckets
      | k, _ -> fail "bad metric line kind %c" k
    done;
    Ok t
  with
  | Wire msg -> Error msg
  | Invalid_argument msg -> Error msg

let render t =
  let rows =
    List.map
      (fun (name, v) ->
        ( name,
          match v with
          | Counter_v c -> string_of_int c
          | Gauge_v g -> string_of_int g
          | Histogram_v { count; max; p50; p90; p99; _ } ->
            Printf.sprintf "n=%d p50=%d p90=%d p99=%d max=%d" count p50 p90
              p99 max ))
      (snapshot t)
  in
  if rows = [] then "(empty registry)\n" else Util.Text_table.render_kv rows
