type counter = { mutable c : int }
type gauge = { mutable g : int }

let num_buckets = 64

type histogram = {
  mutable n : int;
  mutable sum : int;
  mutable hmax : int;
  buckets : int array; (* power-of-two buckets; see bucket_of *)
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }
let is_empty t = Hashtbl.length t.tbl = 0

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let get_or_create t name ~make ~cast =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> (
    match cast m with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Telemetry.Registry: %S already bound as a %s" name
           (kind_name m)))
  | None ->
    let m, v = make () in
    Hashtbl.replace t.tbl name m;
    v

let counter t name =
  get_or_create t name
    ~make:(fun () ->
      let c = { c = 0 } in
      (Counter c, c))
    ~cast:(function Counter c -> Some c | _ -> None)

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let counter_value c = c.c

let gauge t name =
  get_or_create t name
    ~make:(fun () ->
      let g = { g = 0 } in
      (Gauge g, g))
    ~cast:(function Gauge g -> Some g | _ -> None)

let set g v = g.g <- v
let set_max g v = if v > g.g then g.g <- v
let gauge_value g = g.g

let histogram t name =
  get_or_create t name
    ~make:(fun () ->
      let h = { n = 0; sum = 0; hmax = 0; buckets = Array.make num_buckets 0 } in
      (Histogram h, h))
    ~cast:(function Histogram h -> Some h | _ -> None)

(* Bucket index = bit width of v: v <= 0 -> 0, otherwise bucket b holds
   [2^(b-1), 2^b - 1].  Constant number of shift/test steps. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let v = ref v in
    let b = ref 0 in
    if !v lsr 32 <> 0 then begin b := !b + 32; v := !v lsr 32 end;
    if !v lsr 16 <> 0 then begin b := !b + 16; v := !v lsr 16 end;
    if !v lsr 8 <> 0 then begin b := !b + 8; v := !v lsr 8 end;
    if !v lsr 4 <> 0 then begin b := !b + 4; v := !v lsr 4 end;
    if !v lsr 2 <> 0 then begin b := !b + 2; v := !v lsr 2 end;
    if !v lsr 1 <> 0 then begin b := !b + 1 end;
    min (num_buckets - 1) (!b + 1)
  end

let observe h v =
  h.n <- h.n + 1;
  h.sum <- h.sum + v;
  if v > h.hmax then h.hmax <- v;
  let b = h.buckets in
  let i = bucket_of v in
  b.(i) <- b.(i) + 1

let hist_count h = h.n
let hist_sum h = h.sum
let hist_max h = h.hmax

let quantile h q =
  if h.n = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int h.n)) in
      if r < 1 then 1 else if r > h.n then h.n else r
    in
    let cum = ref 0 in
    let res = ref h.hmax in
    (try
       for b = 0 to num_buckets - 1 do
         cum := !cum + h.buckets.(b);
         if !cum >= rank then begin
           res := (if b = 0 then 0 else (1 lsl b) - 1);
           raise Exit
         end
       done
     with Exit -> ());
    min !res h.hmax
  end

let merge_into ~into src =
  Hashtbl.iter
    (fun name m ->
      match m with
      | Counter c -> add (counter into name) c.c
      | Gauge g -> set_max (gauge into name) g.g
      | Histogram h ->
        let dst = histogram into name in
        dst.n <- dst.n + h.n;
        dst.sum <- dst.sum + h.sum;
        if h.hmax > dst.hmax then dst.hmax <- h.hmax;
        for b = 0 to num_buckets - 1 do
          dst.buckets.(b) <- dst.buckets.(b) + h.buckets.(b)
        done)
    src.tbl

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of {
      count : int;
      sum : int;
      max : int;
      p50 : int;
      p90 : int;
      p99 : int;
    }

let snapshot t =
  Hashtbl.fold
    (fun name m acc ->
      let v =
        match m with
        | Counter c -> Counter_v c.c
        | Gauge g -> Gauge_v g.g
        | Histogram h ->
          Histogram_v
            {
              count = h.n;
              sum = h.sum;
              max = h.hmax;
              p50 = quantile h 0.50;
              p90 = quantile h 0.90;
              p99 = quantile h 0.99;
            }
      in
      (name, v) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let to_json t =
  let snap = snapshot t in
  let section pred =
    let fields =
      List.filter_map
        (fun (name, v) ->
          match pred v with
          | Some payload ->
            Some
              (Printf.sprintf "\"%s\":%s" (Util.Json.escape_string name)
                 payload)
          | None -> None)
        snap
    in
    "{" ^ String.concat "," fields ^ "}"
  in
  let counters =
    section (function Counter_v c -> Some (string_of_int c) | _ -> None)
  in
  let gauges =
    section (function Gauge_v g -> Some (string_of_int g) | _ -> None)
  in
  let hists =
    section (function
      | Histogram_v { count; sum; max; p50; p90; p99 } ->
        Some
          (Printf.sprintf
             "{\"count\":%d,\"sum\":%d,\"max\":%d,\"p50\":%d,\"p90\":%d,\
              \"p99\":%d}"
             count sum max p50 p90 p99)
      | _ -> None)
  in
  Printf.sprintf "{\"counters\":%s,\"gauges\":%s,\"histograms\":%s}" counters
    gauges hists

let render t =
  let rows =
    List.map
      (fun (name, v) ->
        ( name,
          match v with
          | Counter_v c -> string_of_int c
          | Gauge_v g -> string_of_int g
          | Histogram_v { count; max; p50; p90; p99; _ } ->
            Printf.sprintf "n=%d p50=%d p90=%d p99=%d max=%d" count p50 p90
              p99 max ))
      (snapshot t)
  in
  if rows = [] then "(empty registry)\n" else Util.Text_table.render_kv rows
