(** Typed metric registry: counters, gauges and log-bucketed histograms.

    The registry is the aggregation substrate of the observability
    layer: every {!Probe} owns one, the experiment harness merges the
    per-job registries of a sweep, and bench embeds histogram summaries
    in BENCH_results.json.  Design constraints, in order:

    - {b O(1) record.}  [incr]/[add]/[set]/[observe] touch one mutable
      record; [observe] additionally computes a power-of-two bucket
      index with a constant number of shifts.  Recording never
      allocates.
    - {b Deterministic snapshots.}  [snapshot]/[to_json]/[render] sort
      metrics by name, so two registries with equal contents produce
      byte-identical output regardless of creation or merge order.
    - {b Order-insensitive merge.}  Counter merge adds, gauge merge
      takes the maximum, histogram merge adds bucket-wise — all
      commutative and associative, so folding per-job registries in any
      pool completion order yields the same aggregate (the qcheck suite
      locks this down).

    A name is permanently bound to the kind it was first created with;
    re-requesting it with a different kind raises [Invalid_argument]. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

(** {2 Recording} *)

val counter : t -> string -> counter
(** Get or create the counter [name] (monotone sum; merge adds). *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : t -> string -> gauge
(** Get or create the gauge [name] (last-set value; merge takes max, so
    use gauges for level/high-water readings where max is the right
    cross-job aggregate). *)

val set : gauge -> int -> unit
val set_max : gauge -> int -> unit
(** [set_max g v] is [set g v] only when [v] exceeds the current value. *)

val gauge_value : gauge -> int

val histogram : t -> string -> histogram
(** Get or create the histogram [name]: 64 power-of-two buckets (bucket
    [b >= 1] holds values in [[2^(b-1), 2^b - 1]], bucket 0 holds
    [v <= 0]), exact count/sum/max. *)

val observe : histogram -> int -> unit

val hist_count : histogram -> int
val hist_sum : histogram -> int
val hist_max : histogram -> int

val quantile : histogram -> float -> int
(** [quantile h q] for [q] in [[0, 1]]: the upper bound of the bucket
    holding the [ceil (q * count)]-th smallest observation, capped at
    the exact maximum.  0 for an empty histogram.  p50/p90/p99 are
    [quantile h 0.5] etc. *)

(** {2 Aggregation and output} *)

val merge_into : into:t -> t -> unit
(** Fold [src] into [into]: counters add, gauges max, histograms add
    bucket-wise.  Metrics missing from [into] are created.  Raises
    [Invalid_argument] if a name is bound to different kinds. *)

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of {
      count : int;
      sum : int;
      max : int;
      p50 : int;
      p90 : int;
      p99 : int;
    }

val snapshot : t -> (string * value) list
(** Every metric, sorted by name. *)

val to_json : t -> string
(** Deterministic JSON object with ["counters"], ["gauges"] and
    ["histograms"] members, names sorted.  Equal snapshots produce
    byte-identical strings. *)

val render : t -> string
(** Human-readable two-column table (sorted). *)

val to_bytes : t -> string
(** Full-fidelity deterministic serialization (every histogram bucket,
    metrics sorted by name): two registries with equal contents produce
    byte-identical strings, so a [to_bytes] comparison is a state
    equality check.  This is the wire and checkpoint format of the
    profile-ingest service — unlike {!to_json}, it round-trips. *)

val of_bytes : string -> (t, string) result
(** Parse {!to_bytes} output.  [Error] (never an exception) on any
    framing, magic or arity violation — a torn or corrupted upload
    payload must be rejectable, not a crash. *)

val is_empty : t -> bool
