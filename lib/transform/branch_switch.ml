module I = Isa.Instr

(* Approach 1's stock-hardware switch: an always-taken 32-bit branch
   into the 16-bit region and a 16-bit branch back.  Fresh uids follow
   the same contract as Cdp_insert — blocks ascending, chains
   descending, and within a chain the entry branch drawn before the
   exit branch. *)
let apply (_ : Pass.env) program =
  let next_uid = ref (Prog.Program.max_uid program + 1) in
  let fresh_uid () =
    let u = !next_uid in
    incr next_uid;
    u
  in
  let nbr = ref 0 in
  let program' =
    Prog.Program.map_blocks
      (fun block ->
        match Chains.in_block block with
        | [] -> block
        | chains ->
          let body = ref block.Prog.Block.body in
          List.iter
            (fun (c : Chains.t) ->
              let inserts =
                List.concat_map
                  (fun run ->
                    let first = List.hd run in
                    let last = List.nth run (List.length run - 1) in
                    let pre =
                      I.make ~uid:(fresh_uid ()) ~opcode:Isa.Opcode.Branch ()
                    in
                    let post =
                      I.make ~uid:(fresh_uid ()) ~opcode:Isa.Opcode.Branch
                        ~encoding:I.Thumb16 ()
                    in
                    [ (first, pre); (last + 1, post) ])
                  (Chains.runs c)
              in
              nbr := !nbr + List.length inserts;
              body := Chains.splice !body inserts)
            (Chains.descending chains);
          Prog.Block.with_body !body block)
      program
  in
  (program', { Report.zero with Report.switch_branches_inserted = !nbr })

let pass = { Pass.name = "branch-switch"; apply }
