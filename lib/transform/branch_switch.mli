(** Approach 1 (Sec. IV-A): format switching on stock hardware with an
    explicit 32-bit branch before and a 16-bit branch after each run of
    chain members, both always taken.

    Report field owned: [switch_branches_inserted] (two per run). *)

val pass : Pass.t
