module I = Isa.Instr

let span = 9

(* Insert one CDP marker per group of up to [span] consecutive chain
   members, the marker announcing the group that follows it.

   Fresh uids are part of the bit-identicality contract: the monolithic
   pass drew them from a single counter starting at [max_uid + 1],
   walking blocks in ascending id order and sites within a block in
   descending start-index order, groups ascending within a site.  The
   earlier passes create no instructions, so [max_uid] here equals the
   original program's, and Chains.descending reproduces the site
   order.  Grouping by chain id (not by scanning for tagged runs) keeps
   adjacent chains from sharing a marker window. *)
let apply (_ : Pass.env) program =
  let next_uid = ref (Prog.Program.max_uid program + 1) in
  let fresh_uid () =
    let u = !next_uid in
    incr next_uid;
    u
  in
  let ncdp = ref 0 in
  let program' =
    Prog.Program.map_blocks
      (fun block ->
        match Chains.in_block block with
        | [] -> block
        | chains ->
          let body = ref block.Prog.Block.body in
          List.iter
            (fun (c : Chains.t) ->
              let inserts =
                List.concat_map
                  (fun run ->
                    Chains.chunk span run
                    |> List.map (fun group ->
                           ( List.hd group,
                             I.cdp ~uid:(fresh_uid ())
                               ~following:(List.length group) )))
                  (Chains.runs c)
              in
              ncdp := !ncdp + List.length inserts;
              body := Chains.splice !body inserts)
            (Chains.descending chains);
          Prog.Block.with_body !body block)
      program
  in
  (program', { Report.zero with Report.cdp_inserted = !ncdp })

let pass = { Pass.name = "cdp-insert"; apply }
