(** The paper's format switch: a CDP marker announcing up to nine
    16-bit instructions (Sec. III-B, Fig. 9).

    Each maximal run of consecutive chain members is chunked into
    groups of at most nine, and a {!Isa.Instr.cdp} half-word is placed
    in front of each group.  After {!Hoist} a chain is a single run;
    in the narrow-only hybrid (no hoisting) every scattered run gets
    its own markers.

    Report field owned: [cdp_inserted]. *)

val span : int
(** 9 — instructions one CDP announces. *)

val pass : Pass.t
