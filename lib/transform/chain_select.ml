module I = Isa.Instr
module Db = Profiler.Critic_db

(* Selection reproduces the monolithic pass's decision procedure
   exactly, but instead of rewriting it only *marks*: accepted prefix
   members get a chain tag at their original position, and every later
   pass finds its work through the tags.

   Checks run against the block as profiled (sites are index-range
   disjoint within a block, so the monolithic pass's
   descending-start-index fold saw exactly this body at every site it
   checked).  [floor] covers the non-disjoint corner: positions at or
   above an already-accepted site's first member would have been
   rewritten by the time the monolithic pass revisited them, so a later
   site touching them is stale here too.  A member/uid length mismatch
   — possible in an externally loaded database — likewise counts as
   stale instead of raising, the first failing check being
   re-validation. *)

let select_block (env : Pass.env) bump chain_counter (block : Prog.Block.t)
    sites =
  let sorted =
    List.sort (fun (a : Db.site) b -> compare b.start_index a.start_index) sites
  in
  let body = Array.copy block.Prog.Block.body in
  let floor = ref max_int in
  List.iter
    (fun (site : Db.site) ->
      bump (fun r ->
          { r with Report.sites_considered = r.Report.sites_considered + 1 });
      let fresh_site_ok =
        List.length site.member_indices = List.length site.uids
        && List.for_all2
             (fun idx uid ->
               idx >= 0
               && idx < Array.length body
               && idx < !floor
               && body.(idx).I.uid = uid)
             site.member_indices site.uids
      in
      if not fresh_site_ok then
        bump (fun r ->
            { r with Report.rejected_stale = r.Report.rejected_stale + 1 })
      else begin
        let view = Prog.Block.with_body body block in
        (* Longest legal prefix: any prefix of an IC is an IC, so when
           the full chain cannot be hoisted (e.g. a register is reused
           further down) we fall back to the longest hoistable prefix. *)
        let rec legal_prefix indices =
          match indices with
          | [] | [ _ ] -> None
          | _ when Hoist.legal view indices -> Some indices
          | _ ->
            legal_prefix
              (List.filteri (fun i _ -> i < List.length indices - 1) indices)
        in
        match legal_prefix site.member_indices with
        | None ->
          bump (fun r ->
              {
                r with
                Report.rejected_legality = r.Report.rejected_legality + 1;
              })
        | Some member_indices ->
          let members = List.map (fun i -> body.(i)) member_indices in
          let needs_conversion =
            match env.Pass.options.mode with
            | Pass.Cdp | Pass.Branches -> true
            | Pass.Hoist_only | Pass.Fused_macro -> false
          in
          let convertible =
            env.Pass.options.ideal || List.for_all Isa.Encode.thumb_convertible members
          in
          if needs_conversion && not convertible then
            (* All-or-nothing: the whole sequence stays untouched. *)
            bump (fun r ->
                {
                  r with
                  Report.rejected_convertibility =
                    r.Report.rejected_convertibility + 1;
                })
          else begin
            let len = List.length member_indices in
            let chain_id = !chain_counter in
            incr chain_counter;
            List.iteri
              (fun pos idx ->
                body.(idx) <-
                  I.with_chain (Some { I.chain_id; pos; len }) body.(idx))
              member_indices;
            floor := min !floor (List.hd member_indices);
            bump (fun r ->
                { r with Report.sites_applied = r.Report.sites_applied + 1 })
          end
      end)
    sorted;
  Prog.Block.with_body body block

let apply (env : Pass.env) program =
  let by_block : (int, Db.site list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (s : Db.site) ->
      if Db.site_length s >= 2 then
        Hashtbl.replace by_block s.block_id
          (s :: Option.value ~default:[] (Hashtbl.find_opt by_block s.block_id)))
    env.Pass.db.Db.sites;
  let chain_counter = ref 0 in
  let r = ref Report.zero in
  let bump f = r := f !r in
  let program' =
    Prog.Program.map_blocks
      (fun block ->
        match Hashtbl.find_opt by_block block.Prog.Block.id with
        | None -> block
        | Some sites -> select_block env bump chain_counter block sites)
      program
  in
  (program', !r)

let pass = { Pass.name = "chain-select"; apply }
