(** Pass 1 of the CritIC pipeline: decide which profiled sites become
    chains, and mark their members.

    For every database site (of length ≥ 2, after the environment's
    length restriction) the pass re-validates the site against the
    current block, finds the longest hoist-legal prefix, applies the
    all-or-nothing Thumb-convertibility rule (in the modes that
    convert), and — on acceptance — tags the surviving members with a
    {!Isa.Instr.chain_tag} in place.  No instruction moves, appears or
    disappears: the program is dataflow-identical to its input, and the
    tags are the only communication channel to the later passes.

    Chain ids are assigned in the monolithic pass's application order —
    blocks ascending, sites within a block by descending start index —
    which the fresh-uid allocation of the switch passes depends on.

    Report fields owned: [sites_considered], [sites_applied],
    [rejected_stale], [rejected_legality], [rejected_convertibility] —
    each rejection counted under its first failing check (a site that
    is both stale and illegal counts once, as stale). *)

val pass : Pass.t
