module I = Isa.Instr

type t = { id : int; len : int; positions : int list }

let in_block (block : Prog.Block.t) =
  let tbl : (int, int * int list ref) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  Array.iteri
    (fun i (ins : I.t) ->
      match ins.I.chain with
      | None -> ()
      | Some { I.chain_id; len; _ } -> (
        match Hashtbl.find_opt tbl chain_id with
        | None ->
          Hashtbl.add tbl chain_id (len, ref [ i ]);
          order := chain_id :: !order
        | Some (_, ps) -> ps := i :: !ps))
    block.Prog.Block.body;
  List.rev !order
  |> List.map (fun id ->
         let len, ps = Hashtbl.find tbl id in
         { id; len; positions = List.rev !ps })

let descending chains = List.rev chains

let runs c =
  let rec go current acc = function
    | [] -> List.rev (List.rev current :: acc)
    | p :: rest -> (
      match current with
      | prev :: _ when p = prev + 1 -> go (p :: current) acc rest
      | _ -> go [ p ] (List.rev current :: acc) rest)
  in
  match c.positions with [] -> [] | p :: rest -> go [ p ] [] rest

let splice body inserts =
  let n = Array.length body in
  let out = Array.make (n + List.length inserts) (I.cdp ~uid:0 ~following:1) in
  let j = ref 0 in
  let rem = ref inserts in
  let drain p =
    let continue = ref true in
    while !continue do
      match !rem with
      | (p', ins) :: tl when p' = p ->
        out.(!j) <- ins;
        incr j;
        rem := tl
      | _ -> continue := false
    done
  in
  for i = 0 to n - 1 do
    drain i;
    out.(!j) <- body.(i);
    incr j
  done;
  drain n;
  out

let chunk span positions =
  let rec go acc current n = function
    | [] -> List.rev (List.rev current :: acc)
    | p :: rest ->
      if n < span then go acc (p :: current) (n + 1) rest
      else go (List.rev current :: acc) [ p ] 1 rest
  in
  match positions with [] -> [] | p :: rest -> go [] [ p ] 1 rest
