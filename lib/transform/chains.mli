(** Reading chain tags back out of a block — the shared view every
    post-selection pass ({!Hoist}, {!Narrow_convert}, {!Cdp_insert},
    {!Branch_switch}, {!Macro_fuse}) uses to find its work.

    Chain membership is carried on the instructions themselves
    ({!Isa.Instr.chain_tag}, placed by {!Chain_select}), so this module
    is pure bookkeeping: group tagged body positions by chain id. *)

type t = {
  id : int;  (** the tag's [chain_id] *)
  len : int;  (** chain length as recorded in the tag *)
  positions : int list;  (** member body indices, ascending *)
}

val in_block : Prog.Block.t -> t list
(** Chains present in a block, ordered by ascending first position.
    Sites are index-range disjoint within a block, so this is also
    ascending [chain_id] order reversed per block — see
    {!Chain_select}. *)

val descending : t list -> t list
(** Reverse of {!in_block}: descending first position — the order in
    which the rewriting passes must process chains so that edits at
    higher indices never disturb the positions of chains below them
    (and the order in which the monolithic pass allocated fresh uids,
    which the bit-identicality contract fixes). *)

val runs : t -> int list list
(** Maximal runs of consecutive member positions, ascending.  After
    {!Hoist} a chain is one run; without hoisting (the narrow-only
    hybrid) members may be scattered and each run gets its own switch
    markers. *)

val splice : Isa.Instr.t array -> (int * Isa.Instr.t) list -> Isa.Instr.t array
(** [splice body inserts] places each instruction *before* the given
    body position (position [length body] appends), with the insert
    list sorted by ascending position; same-position inserts keep list
    order. *)

val chunk : int -> int list -> int list list
(** [chunk span positions] splits a run into groups of at most [span]
    positions, preserving order — CDP's 9-instruction announcement
    window. *)
