module I = Isa.Instr
module Db = Profiler.Critic_db

type switch_mode = Pass.switch_mode = Cdp | Branches | Hoist_only | Fused_macro

type options = Pass.options = {
  max_len : int;
  mode : switch_mode;
  ideal : bool;
}

let default_options = Pass.default_options
let ideal_options = Pass.ideal_options

type report = Report.t = {
  sites_considered : int;
  sites_applied : int;
  rejected_stale : int;
  rejected_legality : int;
  rejected_convertibility : int;
  instrs_hoisted : int;
  instrs_converted : int;
  cdp_inserted : int;
  switch_branches_inserted : int;
}

let apply ?(options = default_options) (db : Db.t) program =
  Pipeline.run_exn (Pass.env ~options db) (Pipeline.canonical options) program

(* ------------------------------------------------------------------ *)
(* The original single-shot implementation, kept verbatim as the seed
   reference the pass-algebra tests compare the pipeline against.  Its
   one known defect is preserved on purpose: a site whose member/uid
   lists differ in length raises instead of counting as stale (the
   pipeline's Chain_select fixes this).                                *)

let cdp_span = 9

(* Replace the hoisted segment [first, first+len) with its converted
   form: chain tags on every member, plus the chosen switch mechanism. *)
let emit_segment ~options ~fresh_uid ~chain_id members =
  let len = List.length members in
  let tagged =
    List.mapi
      (fun pos m ->
        I.with_chain (Some { I.chain_id; pos; len }) m)
      members
  in
  match options.mode with
  | Hoist_only -> (tagged, 0, 0, 0)
  | Fused_macro ->
    (* One fetch for the whole chain: the head keeps its 32-bit slot
       (the hypothetical macro opcode word), the rest ride for free. *)
    (match tagged with
    | [] -> ([], 0, 0, 0)
    | head :: rest -> (head :: List.map I.fuse rest, len, 0, 0))
  | Branches ->
    let pre = I.make ~uid:(fresh_uid ()) ~opcode:Isa.Opcode.Branch () in
    let post =
      I.make ~uid:(fresh_uid ()) ~opcode:Isa.Opcode.Branch
        ~encoding:I.Thumb16 ()
    in
    let converted =
      List.map
        (fun m -> if options.ideal then I.force_thumb m else I.with_encoding I.Thumb16 m)
        tagged
    in
    ((pre :: converted) @ [ post ], len, 0, 2)
  | Cdp ->
    let rec chunks acc = function
      | [] -> List.rev acc
      | l ->
        let n = min cdp_span (List.length l) in
        chunks
          (List.filteri (fun i _ -> i < n) l :: acc)
          (List.filteri (fun i _ -> i >= n) l)
    in
    let groups = chunks [] tagged in
    let out =
      List.concat_map
        (fun group ->
          I.cdp ~uid:(fresh_uid ()) ~following:(List.length group)
          :: List.map
               (fun m ->
                 if options.ideal then I.force_thumb m
                 else I.with_encoding I.Thumb16 m)
               group)
        groups
    in
    (out, len, List.length groups, 0)

let apply_monolithic ?(options = default_options) (db : Db.t) program =
  let db =
    if options.ideal then db else Db.restrict_length options.max_len db
  in
  let by_block : (int, Db.site list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (s : Db.site) ->
      if Db.site_length s >= 2 then
        Hashtbl.replace by_block s.block_id
          (s :: Option.value ~default:[] (Hashtbl.find_opt by_block s.block_id)))
    db.sites;
  let next_uid = ref (Prog.Program.max_uid program + 1) in
  let fresh_uid () =
    let u = !next_uid in
    incr next_uid;
    u
  in
  let chain_counter = ref 0 in
  let r = ref Report.zero in
  let bump f = r := f !r in
  let apply_site (block : Prog.Block.t) (site : Db.site) =
    bump (fun r -> { r with sites_considered = r.sites_considered + 1 });
    let body = block.Prog.Block.body in
    let fresh_site_ok =
      List.for_all2
        (fun idx uid -> idx < Array.length body && body.(idx).I.uid = uid)
        site.member_indices site.uids
    in
    if not fresh_site_ok then begin
      bump (fun r -> { r with rejected_stale = r.rejected_stale + 1 });
      block
    end
    else begin
      (* Longest legal prefix: any prefix of an IC is an IC, so when the
         full chain cannot be hoisted (e.g. a register is reused further
         down) we fall back to the longest hoistable prefix. *)
      let rec legal_prefix indices =
        match indices with
        | [] | [ _ ] -> None
        | _ when Hoist.legal block indices -> Some indices
        | _ ->
          legal_prefix
            (List.filteri (fun i _ -> i < List.length indices - 1) indices)
      in
      match legal_prefix site.member_indices with
      | None ->
        bump (fun r -> { r with rejected_legality = r.rejected_legality + 1 });
        block
      | Some member_indices ->
      let members = List.map (fun i -> body.(i)) member_indices in
      let needs_conversion =
        match options.mode with
        | Cdp | Branches -> true
        | Hoist_only | Fused_macro -> false
      in
      let convertible =
        options.ideal || List.for_all Isa.Encode.thumb_convertible members
      in
      if needs_conversion && not convertible then begin
        (* All-or-nothing: the whole sequence stays untouched. *)
        bump (fun r ->
            { r with rejected_convertibility = r.rejected_convertibility + 1 });
        block
      end
      else begin
        let hoisted = Hoist.apply block member_indices in
        let first = List.hd member_indices in
        let len = List.length member_indices in
        let chain_id = !chain_counter in
        incr chain_counter;
        let segment =
          Array.to_list (Array.sub hoisted.Prog.Block.body first len)
        in
        let converted, ninstr, ncdp, nbr =
          emit_segment ~options ~fresh_uid ~chain_id segment
        in
        let body' =
          Array.concat
            [
              Array.sub hoisted.Prog.Block.body 0 first;
              Array.of_list converted;
              Array.sub hoisted.Prog.Block.body (first + len)
                (Array.length hoisted.Prog.Block.body - first - len);
            ]
        in
        bump (fun r ->
            {
              r with
              sites_applied = r.sites_applied + 1;
              instrs_hoisted = r.instrs_hoisted + len;
              instrs_converted = r.instrs_converted + ninstr;
              cdp_inserted = r.cdp_inserted + ncdp;
              switch_branches_inserted = r.switch_branches_inserted + nbr;
            });
        Prog.Block.with_body body' hoisted
      end
    end
  in
  let program' =
    Prog.Program.map_blocks
      (fun block ->
        match Hashtbl.find_opt by_block block.Prog.Block.id with
        | None -> block
        | Some sites ->
          (* Highest start index first: rewrites at higher indices never
             disturb the indices of sites below them (site index ranges
             are disjoint by construction). *)
          let sorted =
            List.sort
              (fun (a : Db.site) b -> compare b.start_index a.start_index)
              sites
          in
          List.fold_left apply_site block sorted)
      program
  in
  (program', !r)
