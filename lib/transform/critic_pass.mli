(** The CritIC instrumentation pass (Sec. III-B / Fig. 9).

    For every profiled CritIC site the pass: (1) re-validates the chain
    against the current block and the hoist-legality rules; (2) checks
    the all-or-nothing Thumb-convertibility rule; (3) hoists the chain
    members back-to-back; and (4) re-encodes them in the 16-bit format
    behind a format switch.  Two switch mechanisms are modelled:

    - [Cdp] — the paper's proposal: a CDP marker announcing up to nine
      16-bit instructions (1 extra decode cycle, evaluated in
      Sec. IV-B);
    - [Branches] — Approach 1 (Sec. IV-A), usable on stock hardware: an
      explicit 32-bit branch before and a 16-bit branch after the chain,
      both always taken;
    - [Hoist_only] — the "Hoist" design point of Sec. IV-D: aggregation
      without format conversion;
    - [Fused_macro] — the ISA-extension alternative the paper rejects
      (Sec. III-B): each chain becomes a single hypothetical
      macro-instruction, so only its head costs fetch bytes.  An upper
      bound with no encoding constraints at all.

    Since the nanopass refactor this module is a thin wrapper: {!apply}
    assembles the canonical pass list for the options ({!Pipeline.canonical})
    and runs it.  The stage decomposition lives in {!Chain_select},
    {!Hoist}, {!Narrow_convert}, {!Cdp_insert}, {!Branch_switch} and
    {!Macro_fuse}; DESIGN.md §12 documents the pipeline contract. *)

type switch_mode = Pass.switch_mode = Cdp | Branches | Hoist_only | Fused_macro

type options = Pass.options = {
  max_len : int;   (** chain length cap; the paper's realistic CritIC
                       uses 5 *)
  mode : switch_mode;
  ideal : bool;    (** CritIC.Ideal: no length cap and hypothetical
                       16-bit encodings for every chain member *)
}

val default_options : options
(** [{ max_len = 5; mode = Cdp; ideal = false }] *)

val ideal_options : options

type report = Report.t = {
  sites_considered : int;
  sites_applied : int;
  rejected_stale : int;        (** program no longer matches the profile *)
  rejected_legality : int;     (** hoist would violate a dependence *)
  rejected_convertibility : int;  (** all-or-nothing Thumb rule *)
  instrs_hoisted : int;
  instrs_converted : int;
  cdp_inserted : int;
  switch_branches_inserted : int;
}

val apply :
  ?options:options ->
  Profiler.Critic_db.t ->
  Prog.Program.t ->
  Prog.Program.t * report
(** Apply the pass to a program (normally the one that was profiled).
    The CFG shape is preserved; only block bodies change.  Equivalent
    to [Pipeline.run_exn (Pass.env ~options db) (Pipeline.canonical
    options)] — and bit-identical, program and report, to the
    pre-refactor monolithic implementation. *)

val apply_monolithic :
  ?options:options ->
  Profiler.Critic_db.t ->
  Prog.Program.t ->
  Prog.Program.t * report
(** The original single-shot implementation, kept verbatim as the seed
    reference for the pass-algebra differential tests.  Not for
    production use: it preserves the historical defect of raising
    [Invalid_argument] on a site whose member/uid lists differ in
    length, where the pipeline counts the site as stale. *)
