module I = Isa.Instr

let inter l1 l2 = List.exists (fun r -> List.exists (Isa.Reg.equal r) l2) l1

let mem_conflict (m : I.t) (s : I.t) =
  match (m.mem, s.mem) with
  | Some mm, Some sm ->
    (* Moving a load past a load is harmless; anything involving a
       store to the same region is not. *)
    let either_store =
      m.opcode = Isa.Opcode.Store || s.opcode = Isa.Opcode.Store
    in
    either_store && mm.region = sm.region
  | _ -> false

let check_indices body indices =
  let n = Array.length body in
  let rec go prev = function
    | [] -> true
    | i :: rest -> i > prev && i < n && go i rest
  in
  match indices with
  | [] | [ _ ] -> false
  | i :: rest -> i >= 0 && i < n && go i rest

let legal (block : Prog.Block.t) indices =
  check_indices block.body indices
  && begin
    let members = List.map (fun i -> block.body.(i)) indices in
    let first = List.hd indices in
    let last = List.fold_left (fun _ i -> i) first indices in
    let skipped =
      List.init (last - first + 1) (fun k -> first + k)
      |> List.filter (fun i -> not (List.mem i indices))
      |> List.map (fun i -> (i, block.body.(i)))
    in
    List.for_all
      (fun (m_idx, m) ->
        List.for_all
          (fun (s_idx, s) ->
            if s_idx > m_idx then true
            else begin
              (* m moves up past s *)
              (not (inter (I.regs_read m) (I.regs_written s)))
              && (not (inter (I.regs_written m) (I.regs_read s)))
              && (not (inter (I.regs_written m) (I.regs_written s)))
              && not (mem_conflict m s)
            end)
          skipped)
      (List.combine indices members)
  end

let apply (block : Prog.Block.t) indices =
  if not (legal block indices) then
    invalid_arg "Hoist.apply: illegal or malformed hoist";
  let body = block.body in
  let first = List.hd indices in
  let member_set = List.sort_uniq compare indices in
  let members = List.map (fun i -> body.(i)) indices in
  let new_body =
    Array.to_list body
    |> List.mapi (fun i ins -> (i, ins))
    |> List.concat_map (fun (i, ins) ->
           if i = first then members
           else if List.mem i member_set then []
           else [ ins ])
    |> Array.of_list
  in
  Prog.Block.with_body new_body block

(* The pass form: hoist every tagged chain.  Chain_select only accepts
   hoist-legal prefixes, so [apply] cannot raise here.  Chains are
   processed in descending first-position order; a hoist permutes only
   the [first, last] span, so the positions of chains below stay
   valid. *)
let pass =
  let run (_ : Pass.env) program =
    let hoisted = ref 0 in
    let program' =
      Prog.Program.map_blocks
        (fun block ->
          match Chains.in_block block with
          | [] -> block
          | chains ->
            List.fold_left
              (fun b (c : Chains.t) ->
                hoisted := !hoisted + c.Chains.len;
                apply b c.Chains.positions)
              block (Chains.descending chains))
        program
    in
    (program', { Report.zero with Report.instrs_hoisted = !hoisted })
  in
  { Pass.name = "hoist"; apply = run }
