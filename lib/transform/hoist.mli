(** Chain hoisting: moving a CritIC's member instructions so they sit
    back-to-back at the position of the first member.

    Hoisting is only performed when provably safe.  A member moving up
    past a skipped instruction must not: read a register the skipped
    instruction writes (RAW), write a register it reads (WAR), or write
    a register it writes (WAW); and a member memory access never moves
    across a skipped memory access to the same region.  The IC property
    guarantees the absence of in-chain RAW violations dynamically, but
    the checker re-establishes all of it statically and rejects the site
    otherwise. *)

val legal : Prog.Block.t -> int list -> bool
(** [legal block member_indices] checks whether the members (increasing
    body indices) can be hoisted to the first member's position. *)

val apply : Prog.Block.t -> int list -> Prog.Block.t
(** Rewrite the block body with the members contiguous at the hoist
    point, preserving the relative order of everything else.  Raises
    [Invalid_argument] if [legal] is false or indices are out of
    range/unsorted. *)

val pass : Pass.t
(** The pipeline form: hoist every chain tagged by {!Chain_select},
    highest chain first within each block.  Report field owned:
    [instrs_hoisted] (total chain members moved, heads included). *)
