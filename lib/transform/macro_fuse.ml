module I = Isa.Instr

(* The rejected ISA-extension alternative: each chain becomes one
   hypothetical macro-instruction.  The head (tag position 0) keeps its
   32-bit slot — the macro opcode word — and every other member rides
   for free as a fused slice. *)
let apply (_ : Pass.env) program =
  let nconv = ref 0 in
  let program' =
    Prog.Program.map_blocks
      (fun block ->
        let changed = ref false in
        let body =
          Array.map
            (fun (ins : I.t) ->
              match ins.I.chain with
              | None -> ins
              | Some tag ->
                incr nconv;
                if tag.I.pos = 0 then ins
                else begin
                  changed := true;
                  I.fuse ins
                end)
            block.Prog.Block.body
        in
        if !changed then Prog.Block.with_body body block else block)
      program
  in
  (program', { Report.zero with Report.instrs_converted = !nconv })

let pass = { Pass.name = "macro-fuse"; apply }
