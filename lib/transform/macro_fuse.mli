(** The ISA-extension alternative the paper rejects (Sec. III-B): a
    whole chain as one hypothetical macro-instruction.  Only the chain
    head costs fetch bytes; every other member is re-encoded as
    {!Isa.Instr.encoding} [Fused] (zero bytes).

    Report field owned: [instrs_converted] — every chain member, head
    included, matching the monolithic accounting. *)

val pass : Pass.t
