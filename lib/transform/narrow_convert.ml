module I = Isa.Instr

(* Re-encode every chain member in the 16-bit format.  Convertibility
   was established per chain by Chain_select (or waived by
   [options.ideal], which uses the hypothetical encodings), so this is
   a pure per-instruction rewrite wherever a tag sits — position
   independent, hence equally correct before or after Hoist.

   Members already in Thumb16 are left untouched, which makes the pass
   idempotent on programs; they still count as converted, matching the
   monolithic report (which charged every member of a converted
   chain). *)
let apply (env : Pass.env) program =
  let converted = ref 0 in
  let program' =
    Prog.Program.map_blocks
      (fun block ->
        let changed = ref false in
        let body =
          Array.map
            (fun (ins : I.t) ->
              match ins.I.chain with
              | None -> ins
              | Some _ ->
                incr converted;
                if ins.I.encoding = I.Thumb16 then ins
                else begin
                  changed := true;
                  if env.Pass.options.ideal then I.force_thumb ins
                  else I.with_encoding I.Thumb16 ins
                end)
            block.Prog.Block.body
        in
        if !changed then Prog.Block.with_body body block else block)
      program
  in
  (program', { Report.zero with Report.instrs_converted = !converted })

let pass = { Pass.name = "narrow-convert"; apply }
