(** Re-encode chain members in the 16-bit format.

    A per-instruction rewrite over the chain tags: non-ideal runs use
    {!Isa.Instr.with_encoding} (convertibility already guaranteed per
    chain by {!Chain_select}'s all-or-nothing rule), ideal runs use
    {!Isa.Instr.force_thumb}.  Members already in Thumb16 are left
    untouched, so the pass is idempotent on programs — running it
    twice produces the same program as once, a property the algebra
    tests lock.

    Report field owned: [instrs_converted] — every member of every
    converted chain, whether or not its encoding actually changed
    (matching the monolithic accounting). *)

val pass : Pass.t
