type switch_mode = Cdp | Branches | Hoist_only | Fused_macro

type options = { max_len : int; mode : switch_mode; ideal : bool }

let default_options = { max_len = 5; mode = Cdp; ideal = false }
let ideal_options = { max_len = max_int; mode = Cdp; ideal = true }

type env = { db : Profiler.Critic_db.t; options : options }

let env ?(options = default_options) db =
  let db =
    if options.ideal then db
    else Profiler.Critic_db.restrict_length options.max_len db
  in
  { db; options }

type t = {
  name : string;
  apply : env -> Prog.Program.t -> Prog.Program.t * Report.t;
}
