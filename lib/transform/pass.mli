(** The nanopass interface of the CritIC compiler step.

    A pass is a named, total program-to-program function: it receives
    the shared environment (profile database plus options), returns the
    rewritten program, and accounts for what it did in a {!Report.t}.
    Passes communicate exclusively through the program — chain
    membership travels as {!Isa.Instr.chain_tag}s placed by
    {!Chain_select} and read by every later pass — so any pass list is
    runnable and individually checkable (see {!Pipeline}). *)

type switch_mode = Cdp | Branches | Hoist_only | Fused_macro
(** The format-switch mechanism (see {!Critic_pass} for the paper
    mapping of each mode). *)

type options = {
  max_len : int;  (** chain length cap; the paper's realistic CritIC
                      uses 5 *)
  mode : switch_mode;
  ideal : bool;  (** CritIC.Ideal: no length cap and hypothetical
                     16-bit encodings for every chain member *)
}

val default_options : options
(** [{ max_len = 5; mode = Cdp; ideal = false }] *)

val ideal_options : options

type env = { db : Profiler.Critic_db.t; options : options }
(** What every pass sees.  [db] is already length-restricted according
    to the options (see {!env}). *)

val env : ?options:options -> Profiler.Critic_db.t -> env
(** Build the pass environment: unless [options.ideal], the database is
    restricted to [options.max_len]-member prefixes — exactly the
    restriction the monolithic pass applied on entry. *)

type t = {
  name : string;  (** stable identifier used in check attribution *)
  apply : env -> Prog.Program.t -> Prog.Program.t * Report.t;
}
