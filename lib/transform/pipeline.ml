type error = { failed_pass : string; detail : string }

type check =
  pass:string ->
  before:Prog.Program.t ->
  after:Prog.Program.t ->
  (unit, string) result

let run ?check (env : Pass.env) passes program =
  let rec go program report = function
    | [] -> Ok (program, report)
    | (p : Pass.t) :: rest -> (
      let program', pr = p.Pass.apply env program in
      let report = Report.add report pr in
      match check with
      | None -> go program' report rest
      | Some f -> (
        match f ~pass:p.Pass.name ~before:program ~after:program' with
        | Ok () -> go program' report rest
        | Error detail -> Error { failed_pass = p.Pass.name; detail }))
  in
  go program Report.zero passes

let run_exn env passes program =
  match run env passes program with
  | Ok r -> r
  | Error e ->
    failwith (Printf.sprintf "Pipeline.run_exn: [%s] %s" e.failed_pass e.detail)

let canonical (options : Pass.options) =
  let narrow =
    match options.mode with
    | Pass.Cdp | Pass.Branches -> [ Narrow_convert.pass ]
    | Pass.Hoist_only | Pass.Fused_macro -> []
  in
  let switch =
    match options.mode with
    | Pass.Cdp -> [ Cdp_insert.pass ]
    | Pass.Branches -> [ Branch_switch.pass ]
    | Pass.Hoist_only -> []
    | Pass.Fused_macro -> [ Macro_fuse.pass ]
  in
  (Chain_select.pass :: Hoist.pass :: narrow) @ switch

let narrow_only = [ Chain_select.pass; Narrow_convert.pass; Cdp_insert.pass ]

let reordered =
  [ Chain_select.pass; Narrow_convert.pass; Hoist.pass; Cdp_insert.pass ]

let names passes = List.map (fun (p : Pass.t) -> p.Pass.name) passes
