(** Running a pass list, with optional per-pass verification.

    The combinator folds the passes left to right, summing their
    reports.  With a [check] installed, the callback runs after every
    individual pass over the (before, after) program pair; the first
    failure aborts the pipeline and names the offending pass, so a
    defect is attributed to the exact stage that introduced it rather
    than surfacing end-to-end.  {!Oracle.Differential} supplies the
    architectural-equivalence checker (this library sits below the
    oracle, hence the callback inversion). *)

type error = {
  failed_pass : string;  (** {!Pass.t} [name] of the stage that failed *)
  detail : string;  (** the checker's message, e.g. the first divergent
                        block/uid *)
}

type check =
  pass:string ->
  before:Prog.Program.t ->
  after:Prog.Program.t ->
  (unit, string) result

val run :
  ?check:check ->
  Pass.env ->
  Pass.t list ->
  Prog.Program.t ->
  (Prog.Program.t * Report.t, error) result
(** Run the pass list.  Without [check] the result is always [Ok]. *)

val run_exn :
  Pass.env -> Pass.t list -> Prog.Program.t -> Prog.Program.t * Report.t
(** {!run} without a checker; for the production path.  Raises
    [Failure] only if a checker-less run could fail, which it cannot —
    kept total for the compiler's sake. *)

val canonical : Pass.options -> Pass.t list
(** The pass list equivalent to the historical monolithic
    [Critic_pass.apply] for these options: [chain-select; hoist]
    followed by [narrow-convert] in the converting modes ([Cdp],
    [Branches]) and the mode's switch pass ([cdp-insert],
    [branch-switch], nothing for [Hoist_only], [macro-fuse] for
    [Fused_macro]). *)

val narrow_only : Pass.t list
(** Hybrid the paper never tried: narrow conversion *without* hoisting
    — [chain-select; narrow-convert; cdp-insert].  Chain members stay
    scattered, so every consecutive run pays its own CDP markers. *)

val reordered : Pass.t list
(** [chain-select; narrow-convert; hoist; cdp-insert]: narrow before
    hoist.  Produces the same program as {!canonical} with default
    options — re-encoding commutes with hoisting — which the algebra
    tests lock. *)

val names : Pass.t list -> string list
