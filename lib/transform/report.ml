type t = {
  sites_considered : int;
  sites_applied : int;
  rejected_stale : int;
  rejected_legality : int;
  rejected_convertibility : int;
  instrs_hoisted : int;
  instrs_converted : int;
  cdp_inserted : int;
  switch_branches_inserted : int;
}

let zero =
  {
    sites_considered = 0;
    sites_applied = 0;
    rejected_stale = 0;
    rejected_legality = 0;
    rejected_convertibility = 0;
    instrs_hoisted = 0;
    instrs_converted = 0;
    cdp_inserted = 0;
    switch_branches_inserted = 0;
  }

let add a b =
  {
    sites_considered = a.sites_considered + b.sites_considered;
    sites_applied = a.sites_applied + b.sites_applied;
    rejected_stale = a.rejected_stale + b.rejected_stale;
    rejected_legality = a.rejected_legality + b.rejected_legality;
    rejected_convertibility =
      a.rejected_convertibility + b.rejected_convertibility;
    instrs_hoisted = a.instrs_hoisted + b.instrs_hoisted;
    instrs_converted = a.instrs_converted + b.instrs_converted;
    cdp_inserted = a.cdp_inserted + b.cdp_inserted;
    switch_branches_inserted =
      a.switch_branches_inserted + b.switch_branches_inserted;
  }

let fields r =
  [
    ("sites_considered", r.sites_considered);
    ("sites_applied", r.sites_applied);
    ("rejected_stale", r.rejected_stale);
    ("rejected_legality", r.rejected_legality);
    ("rejected_convertibility", r.rejected_convertibility);
    ("instrs_hoisted", r.instrs_hoisted);
    ("instrs_converted", r.instrs_converted);
    ("cdp_inserted", r.cdp_inserted);
    ("switch_branches_inserted", r.switch_branches_inserted);
  ]

let pp fmt r =
  Format.fprintf fmt "{%s}"
    (fields r
    |> List.filter (fun (_, v) -> v <> 0)
    |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
    |> String.concat "; ")
