(** The transform report: one counter record shared by every nanopass
    and by the composite pipeline.

    Each pass fills only the fields it owns ({!Chain_select} the
    selection counters, {!Hoist} [instrs_hoisted], {!Narrow_convert}
    [instrs_converted], the switch passes their marker counts) and the
    pipeline folds the per-pass reports with {!add}, so the composite
    equals the historical monolithic [Critic_pass.report] field for
    field — a property the test suite locks. *)

type t = {
  sites_considered : int;
  sites_applied : int;
  rejected_stale : int;       (** program no longer matches the profile *)
  rejected_legality : int;    (** hoist would violate a dependence *)
  rejected_convertibility : int;  (** all-or-nothing Thumb rule *)
  instrs_hoisted : int;
  instrs_converted : int;
  cdp_inserted : int;
  switch_branches_inserted : int;
}

val zero : t

val add : t -> t -> t
(** Field-wise sum; [zero] is its identity. *)

val fields : t -> (string * int) list
(** Every counter with its name, in declaration order — the
    field-for-field comparison hook used by the pass-algebra tests. *)

val pp : Format.formatter -> t -> unit
(** Compact rendering of the non-zero counters. *)
