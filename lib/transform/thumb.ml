module I = Isa.Instr

type report = {
  runs_converted : int;
  instrs_converted : int;
  cdp_inserted : int;
}

let zero_report = { runs_converted = 0; instrs_converted = 0; cdp_inserted = 0 }

let add_report a b =
  {
    runs_converted = a.runs_converted + b.runs_converted;
    instrs_converted = a.instrs_converted + b.instrs_converted;
    cdp_inserted = a.cdp_inserted + b.cdp_inserted;
  }

let cdp_span = 9

let convert_run ~fresh_uid run =
  if run = [] then invalid_arg "Thumb.convert_run: empty run";
  List.iter
    (fun i ->
      if not (Isa.Encode.thumb_convertible i) then
        invalid_arg "Thumb.convert_run: non-convertible instruction")
    run;
  let rec chunks acc = function
    | [] -> List.rev acc
    | l ->
      let n = min cdp_span (List.length l) in
      let head = List.filteri (fun i _ -> i < n) l in
      let tail = List.filteri (fun i _ -> i >= n) l in
      chunks (head :: acc) tail
  in
  let groups = chunks [] run in
  let out =
    List.concat_map
      (fun group ->
        I.cdp ~uid:(fresh_uid ()) ~following:(List.length group)
        :: List.map (I.with_encoding I.Thumb16) group)
      groups
  in
  ( out,
    {
      runs_converted = 1;
      instrs_converted = List.length run;
      cdp_inserted = List.length groups;
    } )

(* Split a block body into maximal runs of eligible instructions and
   convert the runs of at least [min_run]. *)
let convert_block ~fresh_uid ~min_run (block : Prog.Block.t) =
  let eligible (i : I.t) =
    i.encoding = I.Arm32
    && i.opcode <> Isa.Opcode.Cdp_switch
    && Isa.Encode.thumb_convertible i
  in
  let out = ref [] in
  let report = ref zero_report in
  let flush_run run =
    match run with
    | [] -> ()
    | run when List.length run >= min_run ->
      let converted, r = convert_run ~fresh_uid (List.rev run) in
      report := add_report !report r;
      List.iter (fun i -> out := i :: !out) converted
    | run -> List.iter (fun i -> out := i :: !out) (List.rev run)
  in
  let run = ref [] in
  Array.iter
    (fun ins ->
      if eligible ins then run := ins :: !run
      else begin
        flush_run !run;
        run := [];
        out := ins :: !out
      end)
    block.body;
  flush_run !run;
  (Prog.Block.with_body (Array.of_list (List.rev !out)) block, !report)

let run_pass ~min_run program =
  let next_uid = ref (Prog.Program.max_uid program + 1) in
  let fresh_uid () =
    let u = !next_uid in
    incr next_uid;
    u
  in
  let total = ref zero_report in
  let program =
    Prog.Program.map_blocks
      (fun b ->
        let b', r = convert_block ~fresh_uid ~min_run b in
        total := add_report !total r;
        b')
      program
  in
  (program, !total)

let opp16 ?(min_run = 3) program = run_pass ~min_run program
let compress program = run_pass ~min_run:2 program
