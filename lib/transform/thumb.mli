(** Thumb (16-bit) conversion passes.

    {!convert_run} is the shared primitive: it re-encodes a run of
    instructions to the 16-bit format, prefixing a CDP switch marker per
    nine instructions (the CDP's 3-bit argument covers at most l+1 = 9).

    {!opp16} and {!compress} are the two criticality-agnostic schemes of
    Sec. V: OPP16 converts any run of at least [min_run] (default 3)
    consecutive convertible instructions without reordering anything;
    Compress models the fine-grained profile-guided Thumb conversion of
    Krishnaswamy & Gupta [78], which converts more aggressively (runs of
    at least 2). *)

type report = {
  runs_converted : int;
  instrs_converted : int;
  cdp_inserted : int;
}

val zero_report : report
val add_report : report -> report -> report

val convert_run :
  fresh_uid:(unit -> int) -> Isa.Instr.t list -> Isa.Instr.t list * report
(** Convert a run (all members must be Thumb-convertible), inserting CDP
    markers.  Returns the replacement instruction sequence. *)

val opp16 : ?min_run:int -> Prog.Program.t -> Prog.Program.t * report
(** Opportunistic conversion of every eligible run of 32-bit
    convertible instructions; already-converted (Thumb) instructions and
    CDP markers are left alone, so it composes with the CritIC pass. *)

val compress : Prog.Program.t -> Prog.Program.t * report
(** The Compress baseline: {!opp16} with runs of at least 2. *)
