module I = Isa.Instr

(* Marker instructions inserted by the passes: they carry no dataflow. *)
let is_marker (i : I.t) =
  i.opcode = Isa.Opcode.Cdp_switch
  || (Isa.Opcode.is_control i.opcode && i.dst = None && i.srcs = [])

(* For every non-marker instruction: (uid, source reg, producer uid or
   -1 when the value comes from outside the block), plus the block's
   final writer per register. *)
let dataflow_summary (b : Prog.Block.t) =
  let last = Array.make Isa.Reg.count (-1) in
  let reads = ref [] in
  Array.iter
    (fun (ins : I.t) ->
      if not (is_marker ins) then begin
        List.iter
          (fun src ->
            reads :=
              (ins.I.uid, Isa.Reg.index src, last.(Isa.Reg.index src))
              :: !reads)
          (I.regs_read ins);
        List.iter
          (fun d -> last.(Isa.Reg.index d) <- ins.I.uid)
          (I.regs_written ins)
      end)
    b.body;
  (List.sort compare !reads, Array.to_list last)

let dataflow_equivalent a b = dataflow_summary a = dataflow_summary b

let describe_producer p = if p < 0 then "outside the block" else Printf.sprintf "uid %d" p

(* First point where two summaries disagree, as prose naming the
   offending instruction uid — what a fuzzer counterexample needs. *)
let block_divergence a b =
  if dataflow_equivalent a b then None
  else begin
    let ra, la = dataflow_summary a and rb, lb = dataflow_summary b in
    let rec first_read_diff xs ys =
      match (xs, ys) with
      | [], [] -> None
      | (u, s, p) :: _, [] ->
        Some
          (Printf.sprintf
             "instruction uid %d lost its read of r%d (from %s)" u s
             (describe_producer p))
      | [], (u, s, p) :: _ ->
        Some
          (Printf.sprintf "instruction uid %d gained a read of r%d (from %s)"
             u s (describe_producer p))
      | ((u, s, p) as x) :: xs', ((u', s', p') as y) :: ys' ->
        if x = y then first_read_diff xs' ys'
        else if u = u' && s = s' then
          Some
            (Printf.sprintf
               "instruction uid %d now reads r%d from %s instead of %s" u s
               (describe_producer p') (describe_producer p))
        else if x < y then
          Some
            (Printf.sprintf "instruction uid %d lost its read of r%d (from %s)"
               u s (describe_producer p))
        else
          Some
            (Printf.sprintf
               "instruction uid %d gained a read of r%d (from %s)" u' s'
               (describe_producer p'))
    in
    match first_read_diff ra rb with
    | Some msg -> Some msg
    | None ->
      (* Reads agree: a final register writer changed. *)
      let rec writer_diff r xs ys =
        match (xs, ys) with
        | x :: xs', y :: ys' ->
          if x = y then writer_diff (r + 1) xs' ys'
          else
            Some
              (Printf.sprintf "final writer of r%d changed from %s to %s" r
                 (describe_producer x) (describe_producer y))
        | _ -> Some "dataflow summaries differ (unlocated)"
      in
      writer_diff 0 la lb
  end

let program_equivalent p p' =
  let a = Prog.Program.blocks p and b = Prog.Program.blocks p' in
  Array.length a = Array.length b
  && begin
    let ok = ref true in
    Array.iteri
      (fun i block -> if not (dataflow_equivalent block b.(i)) then ok := false)
      a;
    !ok
  end

let check_pass pass program =
  let program', report = pass program in
  let a = Prog.Program.blocks program and b = Prog.Program.blocks program' in
  if Array.length a <> Array.length b then
    Error
      (Printf.sprintf "block count changed from %d to %d" (Array.length a)
         (Array.length b))
  else begin
    let bad = ref None in
    Array.iteri
      (fun i block ->
        if !bad = None then
          match block_divergence block b.(i) with
          | None -> ()
          | Some detail ->
            bad :=
              Some
                (Printf.sprintf
                   "dataflow changed in block %d (func %d, index %d): %s"
                   block.Prog.Block.id block.Prog.Block.func i detail))
      a;
    match !bad with
    | Some msg -> Error msg
    | None -> Ok (program', report)
  end
