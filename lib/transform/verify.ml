module I = Isa.Instr

(* Marker instructions inserted by the passes: they carry no dataflow. *)
let is_marker (i : I.t) =
  i.opcode = Isa.Opcode.Cdp_switch
  || (Isa.Opcode.is_control i.opcode && i.dst = None && i.srcs = [])

(* For every non-marker instruction: (uid, source reg, producer uid or
   -1 when the value comes from outside the block), plus the block's
   final writer per register. *)
let dataflow_summary (b : Prog.Block.t) =
  let last = Array.make Isa.Reg.count (-1) in
  let reads = ref [] in
  Array.iter
    (fun (ins : I.t) ->
      if not (is_marker ins) then begin
        List.iter
          (fun src ->
            reads :=
              (ins.I.uid, Isa.Reg.index src, last.(Isa.Reg.index src))
              :: !reads)
          (I.regs_read ins);
        List.iter
          (fun d -> last.(Isa.Reg.index d) <- ins.I.uid)
          (I.regs_written ins)
      end)
    b.body;
  (List.sort compare !reads, Array.to_list last)

let dataflow_equivalent a b = dataflow_summary a = dataflow_summary b

let program_equivalent p p' =
  let a = Prog.Program.blocks p and b = Prog.Program.blocks p' in
  Array.length a = Array.length b
  && begin
    let ok = ref true in
    Array.iteri
      (fun i block -> if not (dataflow_equivalent block b.(i)) then ok := false)
      a;
    !ok
  end

let check_pass pass program =
  let program', report = pass program in
  let a = Prog.Program.blocks program and b = Prog.Program.blocks program' in
  if Array.length a <> Array.length b then Error "block count changed"
  else begin
    let bad = ref None in
    Array.iteri
      (fun i block ->
        if !bad = None && not (dataflow_equivalent block b.(i)) then
          bad := Some block.Prog.Block.id)
      a;
    match !bad with
    | Some id -> Error (Printf.sprintf "dataflow changed in block %d" id)
    | None -> Ok (program', report)
  end
