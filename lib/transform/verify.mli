(** Transformation verification.

    Independent checker used by tests and available to callers who want
    the compiler's output re-validated: two blocks are dataflow
    equivalent when every instruction reads each of its source registers
    from the same producer (by uid, or from outside the block) in both
    versions, and the final writer of every register is unchanged.
    Hoisting must preserve this exactly; format conversion must preserve
    it modulo inserted markers (CDP, switch branches), which read and
    write nothing. *)

val dataflow_equivalent : Prog.Block.t -> Prog.Block.t -> bool
(** Compare two versions of a block (marker instructions in either are
    ignored). *)

val block_divergence : Prog.Block.t -> Prog.Block.t -> string option
(** [None] when {!dataflow_equivalent}; otherwise prose naming the first
    divergent instruction uid (a lost/gained/re-routed source read, or a
    changed final register writer). *)

val program_equivalent : Prog.Program.t -> Prog.Program.t -> bool
(** All blocks pairwise {!dataflow_equivalent}; false when block counts
    differ. *)

val check_pass :
  (Prog.Program.t -> Prog.Program.t * 'a) ->
  Prog.Program.t ->
  (Prog.Program.t * 'a, string) result
(** [check_pass pass program] runs the pass and verifies equivalence.
    On failure the [Error] names the offending block (id, function and
    positional index) and the first divergent instruction uid via
    {!block_divergence}. *)
