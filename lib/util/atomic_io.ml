let write path data =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc data;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let sweep_tmp dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | entries ->
    Array.fold_left
      (fun n name ->
        if Filename.check_suffix name ".tmp" then begin
          (try Sys.remove (Filename.concat dir name) with Sys_error _ -> ());
          n + 1
        end
        else n)
      0 entries
