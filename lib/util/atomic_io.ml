type action = Proceed | Crash | Torn of int | Fail of int

type injector = op:string -> action

exception Injected_crash of string

let enospc op = raise (Unix.Unix_error (Unix.ENOSPC, op, ""))

let with_injection inject ~op thunk =
  match inject ~op with
  | Proceed -> thunk ()
  | Crash | Torn _ -> raise (Injected_crash op)
  | Fail _ -> enospc op

let opt_injection inject ~op thunk =
  match inject with
  | None -> thunk ()
  | Some inject -> with_injection inject ~op thunk

(* Unix.write can legitimately write fewer bytes than asked; loop.  The
   injected [Torn]/[Fail] actions persist a prefix first so recovery
   code faces exactly what a mid-write crash leaves behind. *)
let write_all fd data pos len =
  let written = ref 0 in
  while !written < len do
    written :=
      !written
      + Unix.write_substring fd data (pos + !written) (len - !written)
  done

let injected_write inject ~op fd data =
  let len = String.length data in
  match inject with
  | None -> write_all fd data 0 len
  | Some inject -> (
    match inject ~op with
    | Proceed -> write_all fd data 0 len
    | Crash -> raise (Injected_crash op)
    | Torn n ->
      write_all fd data 0 (max 0 (min n len));
      raise (Injected_crash op)
    | Fail n ->
      write_all fd data 0 (max 0 (min n len));
      enospc op)

let fsync_dir ?inject dir =
  opt_injection inject ~op:"aio.fsync_dir" (fun () ->
      match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
      | exception Unix.Unix_error _ -> ()
      | fd ->
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            (* Some filesystems (and all of them on some platforms)
               refuse to fsync a directory fd; the rename is still
               atomic, just not power-loss-durable there. *)
            try Unix.fsync fd with Unix.Unix_error _ -> ()))

let write ?(durable = false) ?inject path data =
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  (try
     injected_write inject ~op:"aio.write" fd data;
     if durable then
       opt_injection inject ~op:"aio.fsync" (fun () -> Unix.fsync fd);
     Unix.close fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (* An injected crash is a simulated process death: leave the torn
        temp file exactly as a real crash would (sweep_tmp collects it
        at the next startup).  Ordinary errors clean up. *)
     (match e with
     | Injected_crash _ -> ()
     | _ -> ( try Sys.remove tmp with Sys_error _ -> ()));
     raise e);
  opt_injection inject ~op:"aio.rename" (fun () -> Sys.rename tmp path);
  if durable then fsync_dir ?inject (Filename.dirname path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let sweep_tmp dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | entries ->
    Array.fold_left
      (fun n name ->
        if Filename.check_suffix name ".tmp" then begin
          (try Sys.remove (Filename.concat dir name) with Sys_error _ -> ());
          n + 1
        end
        else n)
      0 entries
