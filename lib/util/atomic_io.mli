(** Crash-safe file writes via the tmp+rename discipline.

    [write] serializes to [path ^ ".tmp"], flushes and closes, then
    renames over the target: a crash mid-write leaves the previous file
    (or nothing) plus a stray [.tmp] — never a truncated file a later
    reader would half-parse.  [sweep_tmp] is the matching startup
    cleanup for directories of atomically-written files.

    {2 Durability}

    Plain [write] is atomic with respect to concurrent readers but not
    to power loss: the rename can be journaled before the data blocks
    reach the disk, leaving a correctly-named empty or partial file
    after a crash.  [write ~durable:true] closes that window with the
    full fsync discipline — fsync the temp file before the rename and
    fsync the parent directory after it — which is what the ingest
    service's WAL rotation, checkpoints, profile-database saves and
    store installs use.

    {2 Fault injection}

    Every physical step of a durable write (and of the service WAL's
    appends) is a {e fault point}: a seeded chaos plan can make any one
    of them tear, fail with [ENOSPC], or "crash" the process
    (raise {!Injected_crash}, unwinding without cleanup exactly like a
    [kill -9] at that instant).  The seam is an optional [inject]
    callback consulted once per fault point; production code passes
    nothing and pays nothing. *)

type action =
  | Proceed  (** perform the operation normally *)
  | Crash  (** skip the operation and raise {!Injected_crash} *)
  | Torn of int
      (** for data writes: persist only the first [n] bytes, then raise
          {!Injected_crash} — a torn write.  Non-write operations treat
          it as [Crash]. *)
  | Fail of int
      (** for data writes: persist only the first [n] bytes, then raise
          [Unix.Unix_error (ENOSPC, _, _)] — a short write surfaced as
          an ordinary I/O error the caller must contain (no crash).
          Non-write operations raise the error without side effects. *)

type injector = op:string -> action
(** Consulted once per fault point with the operation's name
    ([aio.write], [aio.fsync], [aio.rename], [aio.fsync_dir],
    [wal.write], [wal.fsync]).  Stateful by construction: a chaos plan
    counts calls and fires at its chosen index. *)

exception Injected_crash of string
(** Raised at an injected crash point, carrying the operation name.
    Simulates the process dying there: no cleanup code between the
    fault point and the test harness's recovery path runs. *)

val with_injection : injector -> op:string -> (unit -> unit) -> unit
(** Run a non-write fault point: consult the injector (when any) and
    either run the thunk, raise {!Injected_crash}, or raise [ENOSPC].
    Exposed so other IO seams (the service WAL) share one protocol. *)

val injected_write :
  injector option -> op:string -> Unix.file_descr -> string -> unit
(** Write the whole string through the fault seam: [Torn]/[Fail]
    persist a prefix before raising; a genuinely short [Unix.write]
    loops.  Exposed for the service WAL. *)

val write : ?durable:bool -> ?inject:injector -> string -> string -> unit
(** [write path data] atomically replaces [path] with [data].
    [durable] (default [false]) adds the fsync discipline described
    above.  [inject] arms the fault seam (tests only). *)

val fsync_dir : ?inject:injector -> string -> unit
(** fsync a directory, making a completed rename inside it durable.
    Silently ignores filesystems that refuse directory fsync. *)

val read_file : string -> string
(** Whole-file read (binary).  Raises [Sys_error] if unreadable. *)

val sweep_tmp : string -> int
(** Remove every [*.tmp] orphan left in the directory by interrupted
    {!write}s.  Returns the number removed; 0 for a missing directory.
    Only safe to call when no writer is concurrently mid-[write] in the
    directory (i.e. at startup/open time). *)
