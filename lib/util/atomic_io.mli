(** Crash-safe file writes via the tmp+rename discipline.

    [write] serializes to [path ^ ".tmp"], flushes and closes, then
    renames over the target: a crash mid-write leaves the previous file
    (or nothing) plus a stray [.tmp] — never a truncated file a later
    reader would half-parse.  [sweep_tmp] is the matching startup
    cleanup for directories of atomically-written files. *)

val write : string -> string -> unit
(** [write path data] atomically replaces [path] with [data]. *)

val read_file : string -> string
(** Whole-file read (binary).  Raises [Sys_error] if unreadable. *)

val sweep_tmp : string -> int
(** Remove every [*.tmp] orphan left in the directory by interrupted
    {!write}s.  Returns the number removed; 0 for a missing directory.
    Only safe to call when no writer is concurrently mid-[write] in the
    directory (i.e. at startup/open time). *)
