module Histogram = struct
  type t = { counts : (int, int) Hashtbl.t; mutable total : int }

  let create () = { counts = Hashtbl.create 64; total = 0 }

  let addn h v n =
    if n < 0 then invalid_arg "Histogram.addn: negative count";
    let cur = Option.value ~default:0 (Hashtbl.find_opt h.counts v) in
    Hashtbl.replace h.counts v (cur + n);
    h.total <- h.total + n

  let add h v = addn h v 1
  let count h = h.total
  let get h v = Option.value ~default:0 (Hashtbl.find_opt h.counts v)

  let max_value h =
    Hashtbl.fold (fun v n acc -> if n > 0 then max v acc else acc) h.counts 0

  let fraction h v =
    if h.total = 0 then 0.0
    else float_of_int (get h v) /. float_of_int h.total

  let fraction_at_least h v =
    if h.total = 0 then 0.0
    else begin
      let n =
        Hashtbl.fold
          (fun value c acc -> if value >= v then acc + c else acc)
          h.counts 0
      in
      float_of_int n /. float_of_int h.total
    end

  let bins h =
    Hashtbl.fold (fun v n acc -> (v, n) :: acc) h.counts []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let mean h =
    if h.total = 0 then 0.0
    else begin
      let s =
        Hashtbl.fold (fun v n acc -> acc +. float_of_int (v * n)) h.counts 0.0
      in
      s /. float_of_int h.total
    end
end

module Cdf = struct
  type t = { points : (float * float) array }
  (* Support values paired with cumulative probability, ascending. *)

  let of_weighted = function
    | [] -> invalid_arg "Cdf.of_weighted: empty"
    | pts ->
      let sorted = List.sort (fun (a, _) (b, _) -> compare a b) pts in
      let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 sorted in
      if total <= 0.0 then invalid_arg "Cdf.of_weighted: zero total weight";
      let acc = ref 0.0 in
      let points =
        List.map
          (fun (v, w) ->
            acc := !acc +. w;
            (v, !acc /. total))
          sorted
        |> Array.of_list
      in
      { points }

  let eval c x =
    let n = Array.length c.points in
    (* Largest support point <= x, by binary search. *)
    if x < fst c.points.(0) then 0.0
    else begin
      let rec go lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi + 1) / 2 in
          if fst c.points.(mid) <= x then go mid hi else go lo (mid - 1)
      in
      snd c.points.(go 0 (n - 1))
    end

  let quantile c q =
    let n = Array.length c.points in
    let rec go i = if i >= n - 1 || snd c.points.(i) >= q then fst c.points.(i) else go (i + 1) in
    go 0

  let points c = Array.to_list c.points
end
