(** Empirical distributions: integer histograms and CDFs.

    Used to report the paper's distribution figures (Fig. 1b chain-gap
    histogram, Fig. 5 IC length/spread and coverage CDFs). *)

module Histogram : sig
  type t
  (** Counts of integer-valued observations. *)

  val create : unit -> t
  val add : t -> int -> unit
  val addn : t -> int -> int -> unit
  (** [addn h v n] records [n] occurrences of value [v]. *)

  val count : t -> int
  (** Total number of observations. *)

  val get : t -> int -> int
  (** Occurrences of one value. *)

  val max_value : t -> int
  (** Largest observed value; 0 when empty. *)

  val fraction : t -> int -> float
  (** [fraction h v] is the share of observations equal to [v]. *)

  val fraction_at_least : t -> int -> float
  (** Share of observations [>= v]. *)

  val bins : t -> (int * int) list
  (** All (value, count) pairs in increasing value order. *)

  val mean : t -> float
end

module Cdf : sig
  type t
  (** Piecewise-constant empirical CDF over float-valued points with
      attached weights. *)

  val of_weighted : (float * float) list -> t
  (** [of_weighted pts] builds a CDF from (value, weight) pairs.  Weights
      need not be normalised.  Raises on an empty list or non-positive
      total weight. *)

  val eval : t -> float -> float
  (** [eval c x] is P(value <= x) in [0,1]. *)

  val quantile : t -> float -> float
  (** [quantile c q] is the smallest value [v] with [eval c v >= q];
      [q] in [0,1]. *)

  val points : t -> (float * float) list
  (** The (value, cumulative-probability) support points. *)
end
