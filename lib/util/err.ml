type kind = Transient | Fatal | Timeout | Corrupt_input | Cancelled

type t = {
  kind : kind;
  msg : string;
  app : string option;
  scheme : string option;
  config : string option;
  attempts : int;
  backtrace : string option;
}

exception Error of t

let make ?app ?scheme ?config ?backtrace ?(attempts = 0) kind msg =
  { kind; msg; app; scheme; config; attempts; backtrace }

let error ?app ?scheme ?config ?backtrace ?attempts kind msg =
  Error (make ?app ?scheme ?config ?backtrace ?attempts kind msg)

let fail ?app ?scheme ?config ?backtrace ?attempts kind msg =
  raise (error ?app ?scheme ?config ?backtrace ?attempts kind msg)

let failf ?app ?scheme ?config ?backtrace ?attempts kind fmt =
  Printf.ksprintf
    (fun msg -> fail ?app ?scheme ?config ?backtrace ?attempts kind msg)
    fmt

let kind_name = function
  | Transient -> "transient"
  | Fatal -> "fatal"
  | Timeout -> "timeout"
  | Corrupt_input -> "corrupt-input"
  | Cancelled -> "cancelled"

let with_context ?app ?scheme ?config ?attempts e =
  let keep old fresh = match old with Some _ -> old | None -> fresh in
  {
    e with
    app = keep e.app app;
    scheme = keep e.scheme scheme;
    config = keep e.config config;
    attempts = (match attempts with Some a -> a | None -> e.attempts);
  }

let retryable e = e.kind = Transient

let of_exn ?backtrace = function
  | Error e ->
    (match (e.backtrace, backtrace) with
    | None, Some _ -> { e with backtrace }
    | _ -> e)
  | Failure msg -> make ?backtrace Fatal msg
  | exn -> make ?backtrace Fatal (Printexc.to_string exn)

let to_string e =
  let b = Buffer.create 64 in
  Buffer.add_char b '[';
  Buffer.add_string b (kind_name e.kind);
  Buffer.add_char b ']';
  (match e.app with
  | Some a ->
    Buffer.add_string b " app=";
    Buffer.add_string b a
  | None -> ());
  (match e.scheme with
  | Some s ->
    Buffer.add_string b " scheme=";
    Buffer.add_string b s
  | None -> ());
  (match e.config with
  | Some c ->
    Buffer.add_string b " config=";
    Buffer.add_string b c
  | None -> ());
  if e.attempts > 0 then
    Buffer.add_string b (Printf.sprintf " attempts=%d" e.attempts);
  Buffer.add_char b ' ';
  Buffer.add_string b e.msg;
  Buffer.contents b

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Err.Error " ^ to_string e)
    | _ -> None)
