(** Structured error taxonomy for supervised experiment execution.

    Long multi-app sweeps must not abort wholesale when one job
    misbehaves: the supervision layer (Pool.run_supervised /
    Harness.run_batch_supervised) classifies every per-job failure into
    one of five kinds and carries the (app, scheme, config) context it
    occurred under, so a batch can retry what is retryable, quarantine
    what is not, and report exactly what went wrong where. *)

type kind =
  | Transient  (** expected to succeed on retry (flaky I/O, injected) *)
  | Fatal  (** deterministic failure; retrying cannot help *)
  | Timeout  (** cooperative deadline exceeded (simulation fuel) *)
  | Corrupt_input  (** malformed persistent artifact (profile DB, ...) *)
  | Cancelled  (** never ran: quarantine, batch deadline, or shutdown *)

type t = {
  kind : kind;
  msg : string;
  app : string option;  (** application the failing job ran on *)
  scheme : string option;
  config : string option;
  attempts : int;  (** executions consumed when the job was given up *)
  backtrace : string option;
}

exception Error of t
(** The carrier for every supervised path.  Raw exceptions escaping a
    job are converted with {!of_exn}. *)

val make :
  ?app:string ->
  ?scheme:string ->
  ?config:string ->
  ?backtrace:string ->
  ?attempts:int ->
  kind ->
  string ->
  t

val error :
  ?app:string ->
  ?scheme:string ->
  ?config:string ->
  ?backtrace:string ->
  ?attempts:int ->
  kind ->
  string ->
  exn
(** [Error (make ...)], for [raise]. *)

val fail :
  ?app:string ->
  ?scheme:string ->
  ?config:string ->
  ?backtrace:string ->
  ?attempts:int ->
  kind ->
  string ->
  'a

val failf :
  ?app:string ->
  ?scheme:string ->
  ?config:string ->
  ?backtrace:string ->
  ?attempts:int ->
  kind ->
  ('a, unit, string, 'b) format4 ->
  'a
(** [fail] with a format string. *)

val with_context :
  ?app:string -> ?scheme:string -> ?config:string -> ?attempts:int -> t -> t
(** Fill in context fields that are still [None] (existing context
    wins); [attempts], when given, always overwrites. *)

val of_exn : ?backtrace:string -> exn -> t
(** [Error e] passes through (adopting [backtrace] if [e] has none);
    anything else becomes [Fatal] with the printed exception. *)

val retryable : t -> bool
(** [true] iff [kind = Transient]. *)

val kind_name : kind -> string
val to_string : t -> string
