type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad \\u escape"
  in
  let string_body () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
        advance ();
        Buffer.contents b
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some (('"' | '\\' | '/') as c) ->
          Buffer.add_char b c;
          advance ();
          go ()
        | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
        | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
        | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
        | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let code =
            (hex_digit s.[!pos] lsl 12)
            lor (hex_digit s.[!pos + 1] lsl 8)
            lor (hex_digit s.[!pos + 2] lsl 4)
            lor hex_digit s.[!pos + 3]
          in
          pos := !pos + 4;
          (* Our own documents are ASCII; decode BMP code points as
             UTF-8 so foreign files still round-trip sensibly. *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end;
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' -> Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let escape_string s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string (v : t) =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f -> Buffer.add_string b (number_to_string f)
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape_string s);
      Buffer.add_char b '"'
    | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          go x)
        xs;
      Buffer.add_char b ']'
    | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape_string k);
          Buffer.add_string b "\":";
          go x)
        kvs;
      Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

let member name = function
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let field name v =
  match member name v with
  | Some x -> x
  | None -> failwith (Printf.sprintf "missing JSON field %S" name)

let num = function
  | Num f -> f
  | _ -> failwith "expected JSON number"

let int v =
  let f = num v in
  if Float.is_integer f then int_of_float f
  else failwith "expected integral JSON number"

let str = function
  | Str s -> s
  | _ -> failwith "expected JSON string"

let arr = function
  | Arr l -> l
  | _ -> failwith "expected JSON array"

let obj = function
  | Obj kvs -> kvs
  | _ -> failwith "expected JSON object"
