(** Minimal JSON tree, parser and deterministic printer.

    Enough for the repository's own emitters — bench results, the
    telemetry registry snapshot and the Chrome trace export — with no
    dependency on an external JSON package, so every validator binary
    runs anywhere the repo builds.  The printer is deterministic (object
    members keep their given order, numbers print via [%.17g] trimmed),
    which the byte-identical golden-trace tests rely on. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!parse} with a message naming the byte offset. *)

val parse : string -> t
(** Full recursive-descent parse; raises {!Parse_error} on malformed
    input or trailing garbage. *)

val to_string : t -> string
(** Compact deterministic rendering (no whitespace).  Integral numbers
    print without a fractional part, so a parse → print round trip of
    integer-only documents is a fixpoint. *)

val escape_string : string -> string
(** The string-literal body (no surrounding quotes) with quotes,
    backslashes and control characters escaped — shared with
    handwritten emitters. *)

val member : string -> t -> t option
(** Object field lookup; [None] for missing fields or non-objects. *)

val field : string -> t -> t
(** Like {!member} but raises [Failure] naming the field. *)

val num : t -> float
val int : t -> int
(** {!num} checked to be integral; raises [Failure] otherwise. *)

val str : t -> string
val arr : t -> t list
val obj : t -> (string * t) list
(** Coercions; raise [Failure] on a different constructor. *)
