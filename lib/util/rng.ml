type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = mix (Int64.logxor s 0xA5A5A5A5A5A5A5A5L) }

let copy t = { state = t.state }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit native int. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (* 53 random bits scaled to [0,1). *)
  v /. 9007199254740992.0 *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p must be in (0,1]";
  if p >= 1.0 then 0
  else
    let u = float t 1.0 in
    let u = if u <= 0.0 then epsilon_float else u in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let exponential t mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let weighted_index t w =
  let total = Array.fold_left ( +. ) 0.0 w in
  if total <= 0.0 then invalid_arg "Rng.weighted_index: weights sum to zero";
  let x = float t total in
  let n = Array.length w in
  let rec go i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if x < acc then i else go (i + 1) acc
  in
  go 0 0.0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
