(** Deterministic pseudo-random number generation.

    Every stochastic component of the simulator draws from an explicit
    [Rng.t] so that a given seed reproduces a run bit-for-bit.  The
    implementation is SplitMix64, which is fast, has a 64-bit state and
    supports cheap stream splitting. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each subsystem (workload, cache warmup, ...) its own
    stream so adding draws in one place does not perturb another. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] draws uniformly from [0 .. n-1].  [n] must be positive. *)

val float : t -> float -> float
(** [float t x] draws uniformly from [0, x). *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [0,1]). *)

val geometric : t -> float -> int
(** [geometric t p] draws the number of failures before the first success
    of a Bernoulli([p]) trial; mean [(1-p)/p].  [p] must be in (0, 1]. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp with the given mean. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val weighted_index : t -> float array -> int
(** [weighted_index t w] draws index [i] with probability proportional to
    [w.(i)].  Weights must be non-negative with a positive sum. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
