let sum = List.fold_left ( +. ) 0.0

let mean = function
  | [] -> 0.0
  | xs -> sum xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let logs = List.map (fun x ->
      if x <= 0.0 then invalid_arg "Stats.geomean: non-positive input"
      else log x) xs
    in
    exp (mean logs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let sq = List.map (fun x -> (x -. m) *. (x -. m)) xs in
    sqrt (mean sq)

let percentile p = function
  | [] -> invalid_arg "Stats.percentile: empty list"
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n = 1 then a.(0)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)
    end

let speedup ~baseline ~optimized =
  if optimized <= 0.0 then invalid_arg "Stats.speedup: non-positive time";
  (baseline /. optimized) -. 1.0

let pct x = Printf.sprintf "%.1f%%" (100.0 *. x)

module Running = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int t.n
end
