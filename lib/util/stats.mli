(** Small numerical-statistics helpers shared by the profiler, the
    experiment harness and the tests. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val geomean : float list -> float
(** Geometric mean; 0 for the empty list.  All inputs must be positive. *)

val stddev : float list -> float
(** Population standard deviation; 0 for fewer than two samples. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100], linear interpolation between
    order statistics.  Raises [Invalid_argument] on the empty list. *)

val sum : float list -> float

val speedup : baseline:float -> optimized:float -> float
(** [speedup ~baseline ~optimized] is the fractional improvement
    [(baseline /. optimized) -. 1.], e.g. 0.126 for a 12.6 % speedup. *)

val pct : float -> string
(** Render a fraction as a percentage with one decimal, e.g. ["12.6%"]. *)

module Running : sig
  (** Online mean/variance accumulator (Welford). *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
end
