type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?aligns ~header rows =
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) (List.length header)
      rows
  in
  let fill_row r =
    r @ List.init (ncols - List.length r) (fun _ -> "")
  in
  let header = fill_row header in
  let rows = List.map fill_row rows in
  let aligns =
    match aligns with
    | Some a when List.length a >= ncols -> Array.of_list a
    | _ -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let widths = Array.make ncols 0 in
  List.iter
    (fun r ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) r)
    (header :: rows);
  let line r =
    List.mapi (fun i cell -> pad aligns.(i) widths.(i) cell) r
    |> String.concat "  "
  in
  let rule =
    Array.to_list widths
    |> List.map (fun w -> String.make w '-')
    |> String.concat "  "
  in
  String.concat "\n" (line header :: rule :: List.map line rows)

let render_kv kvs =
  let width =
    List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 kvs
  in
  kvs
  |> List.map (fun (k, v) -> Printf.sprintf "%s  %s" (pad Left width k) v)
  |> String.concat "\n"

let bar_chart ?(width = 40) ?fmt rows =
  let fmt =
    match fmt with
    | Some f -> f
    | None -> fun v -> Printf.sprintf "%.1f%%" (100.0 *. v)
  in
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows
  in
  let peak =
    List.fold_left (fun acc (_, v) -> Float.max acc (Float.abs v)) 0.0 rows
  in
  let bar v =
    if peak <= 0.0 then ""
    else begin
      let n =
        int_of_float (Float.round (Float.abs v /. peak *. float_of_int width))
      in
      let block = String.concat "" (List.init n (fun _ -> "\xe2\x96\x88")) in
      if v < 0.0 then "-" ^ block else block
    end
  in
  rows
  |> List.map (fun (l, v) ->
         Printf.sprintf "%s  %s %s" (pad Left label_w l) (bar v) (fmt v))
  |> String.concat "\n"
