(** Plain-text table rendering for experiment and benchmark reports. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the rows out in aligned columns with a
    separator rule under the header.  [aligns] defaults to left for the
    first column and right for the rest.  Ragged rows are padded with
    empty cells. *)

val render_kv : (string * string) list -> string
(** Two-column key/value rendering without a header. *)

val bar_chart :
  ?width:int -> ?fmt:(float -> string) -> (string * float) list -> string
(** Horizontal ASCII bar chart: one row per (label, value), bars scaled
    to the largest absolute value ([width] characters, default 40).
    Negative values render to the left marker.  [fmt] renders the value
    label (default percent with one decimal). *)
