let kb n = n * 1024
let mb n = n * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Suite baselines                                                     *)
(* ------------------------------------------------------------------ *)

let mobile_base : Profile.t =
  {
    name = "mobile-base";
    suite = Profile.Mobile;
    activity = "";
    seed = 0;
    functions = 900;
    dispatcher_slots = 48;
    blocks_per_function = (2, 5);
    body_instrs = (40, 62);
    call_prob = 0.22;
    call_locality = 0.55;
    branch_prob = 0.35;
    loop_prob = 0.15;
    loop_iterations = 6;
    branch_bias = (0.55, 0.9);
    chain_groups = (1, 1);
    spine_len = (3, 4);
    chain_gap = (1, 2);
    fanout = (6, 9);
    gap_fanout = (1, 2);
    chain_linked = false;
    spine_load_frac = 0.6;
    isolated_groups = (0, 0);
    isolated_fanout = (0, 0);
    loop_carried = false;
    leaf_load_frac = 0.15;
    leaf_store_frac = 0.08;
    load_frac = 0.2;
    store_frac = 0.1;
    mul_frac = 0.02;
    div_frac = 0.002;
    fp_frac = 0.02;
    predicated_frac = 0.25;
    high_reg_frac = 0.12;
    chain_unconvertible_frac = 0.012;
    regions = 4;
    load_stride = 16;
    load_working_set = kb 32;
    load_randomness = 0.15;
  }

let spec_int_base : Profile.t =
  {
    mobile_base with
    name = "spec-int-base";
    suite = Profile.Spec_int;
    functions = 36;
    dispatcher_slots = 8;
    blocks_per_function = (4, 8);
    body_instrs = (20, 40);
    call_prob = 0.04;
    call_locality = 0.8;
    branch_prob = 0.45;
    loop_prob = 0.6;
    loop_iterations = 40;
    branch_bias = (0.2, 0.7);
    chain_groups = (0, 1);
    spine_len = (2, 3);
    chain_gap = (3, 8);
    fanout = (9, 14);
    gap_fanout = (0, 1);
    chain_linked = false;
    spine_load_frac = 0.7;
    isolated_groups = (1, 1);
    isolated_fanout = (12, 24);
    loop_carried = true;
    leaf_load_frac = 0.08;
    leaf_store_frac = 0.05;
    load_frac = 0.22;
    store_frac = 0.1;
    mul_frac = 0.05;
    div_frac = 0.01;
    fp_frac = 0.02;
    predicated_frac = 0.1;
    high_reg_frac = 0.15;
    chain_unconvertible_frac = 0.15;
    regions = 8;
    load_stride = 24;
    load_working_set = mb 8;
    load_randomness = 0.35;
  }

let spec_float_base : Profile.t =
  {
    spec_int_base with
    name = "spec-float-base";
    suite = Profile.Spec_float;
    functions = 24;
    dispatcher_slots = 6;
    blocks_per_function = (3, 7);
    body_instrs = (30, 60);
    call_prob = 0.03;
    branch_prob = 0.3;
    loop_prob = 0.75;
    loop_iterations = 80;
    branch_bias = (0.3, 0.85);
    chain_groups = (0, 1);
    chain_gap = (4, 8);
    isolated_groups = (1, 2);
    isolated_fanout = (14, 28);
    spine_load_frac = 0.85;
    load_frac = 0.25;
    store_frac = 0.08;
    mul_frac = 0.02;
    div_frac = 0.01;
    fp_frac = 0.45;
    load_stride = 64;
    load_working_set = mb 16;
    load_randomness = 0.05;
  }

(* ------------------------------------------------------------------ *)
(* Table II mobile apps                                                *)
(* ------------------------------------------------------------------ *)

let mobile =
  [
    {
      mobile_base with
      name = "Acrobat";
      activity = "View, add comment";
      seed = 101;
      chain_groups = (1, 2);
      functions = 1000;
      body_instrs = (44, 66);
    };
    {
      mobile_base with
      name = "Angrybirds";
      activity = "1 level of game";
      seed = 102;
      mul_frac = 0.05;
      fp_frac = 0.08;
      loop_prob = 0.25;
      loop_iterations = 10;
      functions = 750;
    };
    {
      mobile_base with
      name = "Browser";
      activity = "Search and load pages";
      seed = 103;
      functions = 1400;
      dispatcher_slots = 64;
      call_prob = 0.28;
      call_locality = 0.45;
      chain_groups = (1, 1);
    };
    {
      mobile_base with
      name = "Facebook";
      activity = "RT-texting";
      seed = 104;
      functions = 1100;
      call_prob = 0.3;
      body_instrs = (34, 52);
      chain_groups = (1, 1);
    };
    {
      mobile_base with
      name = "Email";
      activity = "Send, receive mail";
      seed = 105;
      functions = 800;
      call_prob = 0.24;
    };
    {
      mobile_base with
      name = "Maps";
      activity = "Search directions";
      seed = 106;
      fanout = (6, 9);
      chain_groups = (1, 2);
      load_working_set = kb 64;
      functions = 950;
    };
    {
      mobile_base with
      name = "Music";
      activity = "2 minutes song";
      seed = 107;
      functions = 420;
      dispatcher_slots = 20;
      chain_groups = (0, 1);
      call_prob = 0.16;
      body_instrs = (36, 56);
    };
    {
      mobile_base with
      name = "Office";
      activity = "Slide edit, present";
      seed = 108;
      functions = 1000;
      chain_groups = (1, 2);
    };
    {
      mobile_base with
      name = "PhotoGallery";
      activity = "Browse images";
      seed = 109;
      load_working_set = kb 96;
      load_stride = 64;
      load_randomness = 0.15;
      functions = 700;
    };
    {
      mobile_base with
      name = "Youtube";
      activity = "HQ video stream";
      seed = 110;
      fanout = (6, 9);
      chain_groups = (1, 2);
      load_working_set = kb 48;
      functions = 850;
    };
  ]

(* ------------------------------------------------------------------ *)
(* SPEC members                                                        *)
(* ------------------------------------------------------------------ *)

let spec_int =
  [
    {
      spec_int_base with
      name = "bzip2";
      activity = "compression";
      seed = 201;
      load_stride = 8;
      load_working_set = mb 4;
    };
    {
      spec_int_base with
      name = "hmmer";
      activity = "gene sequencing";
      seed = 202;
      loop_iterations = 60;
      load_randomness = 0.1;
      load_stride = 16;
    };
    {
      spec_int_base with
      name = "libquantum";
      activity = "quantum simulation";
      seed = 203;
      load_stride = 64;
      load_randomness = 0.02;
      load_working_set = mb 24;
      isolated_fanout = (16, 28);
    };
    {
      spec_int_base with
      name = "mcf";
      activity = "vehicle scheduling";
      seed = 204;
      load_randomness = 0.6;
      load_working_set = mb 32;
      branch_bias = (0.35, 0.65);
    };
    {
      spec_int_base with
      name = "gcc";
      activity = "compiler";
      seed = 205;
      functions = 160;
      call_prob = 0.1;
      load_working_set = mb 6;
    };
    {
      spec_int_base with
      name = "gobmk";
      activity = "game of go";
      seed = 206;
      branch_bias = (0.4, 0.6);
      branch_prob = 0.55;
      loop_prob = 0.4;
    };
    {
      spec_int_base with
      name = "sjeng";
      activity = "chess";
      seed = 207;
      branch_bias = (0.42, 0.62);
      branch_prob = 0.5;
    };
    {
      spec_int_base with
      name = "h264ref";
      activity = "video encoding";
      seed = 208;
      mul_frac = 0.09;
      fp_frac = 0.05;
      load_stride = 32;
      load_randomness = 0.08;
    };
  ]

let spec_float =
  [
    {
      spec_float_base with
      name = "sperand";
      activity = "linear programming";
      seed = 301;
    };
    {
      spec_float_base with
      name = "namd";
      activity = "molecular dynamics";
      seed = 302;
      isolated_fanout = (16, 30);
      fp_frac = 0.5;
    };
    {
      spec_float_base with
      name = "gromacs";
      activity = "molecular dynamics";
      seed = 303;
      load_working_set = mb 8;
    };
    {
      spec_float_base with
      name = "calculix";
      activity = "structural mechanics";
      seed = 304;
      mul_frac = 0.04;
      div_frac = 0.02;
    };
    {
      spec_float_base with
      name = "lbm";
      activity = "fluid dynamics";
      seed = 305;
      load_working_set = mb 48;
      load_stride = 64;
      load_randomness = 0.02;
      isolated_groups = (2, 3);
    };
    {
      spec_float_base with
      name = "milc";
      activity = "lattice QCD";
      seed = 306;
      load_randomness = 0.3;
      load_working_set = mb 24;
    };
    {
      spec_float_base with
      name = "dealII";
      activity = "finite elements";
      seed = 307;
      branch_prob = 0.4;
      functions = 60;
      call_prob = 0.08;
    };
    {
      spec_float_base with
      name = "leslie3d";
      activity = "combustion";
      seed = 308;
      loop_iterations = 120;
      load_stride = 64;
    };
  ]

let all = mobile @ spec_int @ spec_float

let find name =
  let lower = String.lowercase_ascii name in
  List.find_opt
    (fun (p : Profile.t) -> String.lowercase_ascii p.name = lower)
    all

let of_suite suite =
  List.filter (fun (p : Profile.t) -> p.suite = suite) all

let table_ii () =
  let mobile_rows =
    List.map
      (fun (p : Profile.t) -> [ "Mobile"; p.name; p.activity ])
      mobile
  in
  let spec_row suite members =
    [ suite; String.concat ", " members; "" ]
  in
  Util.Text_table.render
    ~aligns:[ Util.Text_table.Left; Util.Text_table.Left; Util.Text_table.Left ]
    ~header:[ "Domain"; "App"; "Activities performed" ]
    (mobile_rows
    @ [
        spec_row "SPEC.int"
          (List.map (fun (p : Profile.t) -> p.name) spec_int);
        spec_row "SPEC.float"
          (List.map (fun (p : Profile.t) -> p.name) spec_float);
      ])
