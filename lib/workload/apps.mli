(** The evaluation workloads of Table II: ten popular Play-Store apps
    plus the SPEC.int and SPEC.float members the paper compares against.

    Parameters are calibrated per suite so the generated streams show
    the paper's qualitative contrasts: mobile apps execute from a large,
    call-heavy code base with short, dense critical chains of low-latency
    instructions; SPEC codes run hot loops with isolated high-fanout
    loads, long-latency arithmetic and long loop-carried chains. *)

val mobile : Profile.t list
(** Acrobat, Angrybirds, Browser, Facebook, Email, Maps, Music, Office,
    PhotoGallery, Youtube. *)

val spec_int : Profile.t list
(** bzip2, hmmer, libquantum, mcf, gcc, gobmk, sjeng, h264ref. *)

val spec_float : Profile.t list
(** sperand, namd, gromacs, calculix, lbm, milc, dealII, leslie3d. *)

val all : Profile.t list

val find : string -> Profile.t option
(** Case-insensitive lookup by name. *)

val of_suite : Profile.suite -> Profile.t list

val table_ii : unit -> string
(** Render Table II (apps and the activities performed). *)
