type t = {
  work_instructions : int;
  mix : (string * float) list;
  control_share : float;
  cond_branch_share : float;
  taken_share : float;
  mean_run_length : float;
  distinct_blocks : int;
  distinct_functions : int;
  touched_code_bytes : int;
  mean_block_visit : float;
  thumb_convertible_share : float;
}

let of_trace (trace : Prog.Trace.t) =
  let n = Array.length trace in
  let mix_counts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let blocks = Hashtbl.create 256 in
  let funcs = Hashtbl.create 64 in
  let lines = Hashtbl.create 1024 in
  let control = ref 0 in
  let cond = ref 0 in
  let taken = ref 0 in
  let convertible = ref 0 in
  let block_visits = ref 0 in
  let prev = ref None in
  Array.iter
    (fun (e : Prog.Trace.event) ->
      let key = Isa.Opcode.to_string e.instr.opcode in
      Hashtbl.replace mix_counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt mix_counts key));
      Hashtbl.replace blocks e.block_id ();
      Hashtbl.replace funcs e.func ();
      Hashtbl.replace lines (e.pc lsr 6) ();
      if Isa.Opcode.is_control e.instr.opcode then begin
        incr control;
        if e.is_cond_branch then incr cond;
        if e.taken then incr taken
      end;
      if Isa.Encode.thumb_convertible e.instr then incr convertible;
      (* a visit continues while we advance through the same block's
         body (the synthetic terminator has body_index -1) *)
      (match !prev with
      | Some (pb, pidx)
        when pb = e.block_id && (e.body_index > pidx || e.body_index = -1) ->
        ()
      | _ -> incr block_visits);
      prev := Some (e.block_id, e.body_index))
    trace;
  let fn = float_of_int (max 1 n) in
  let mix =
    Hashtbl.fold (fun k c acc -> (k, float_of_int c /. fn) :: acc) mix_counts []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  {
    work_instructions = Prog.Trace.work_count trace;
    mix;
    control_share = float_of_int !control /. fn;
    cond_branch_share = float_of_int !cond /. fn;
    taken_share =
      (if !control = 0 then 0.0
       else float_of_int !taken /. float_of_int !control);
    mean_run_length = (if !taken = 0 then fn else fn /. float_of_int !taken);
    distinct_blocks = Hashtbl.length blocks;
    distinct_functions = Hashtbl.length funcs;
    touched_code_bytes = Hashtbl.length lines * 64;
    mean_block_visit =
      (if !block_visits = 0 then 0.0 else fn /. float_of_int !block_visits);
    thumb_convertible_share = float_of_int !convertible /. fn;
  }

let render t =
  let pct = Util.Stats.pct in
  Util.Text_table.render_kv
    ([
       ("work instructions", string_of_int t.work_instructions);
       ("control transfers", pct t.control_share);
       ("conditional branches", pct t.cond_branch_share);
       ("taken share", pct t.taken_share);
       ("mean run length", Printf.sprintf "%.1f instrs" t.mean_run_length);
       ("distinct blocks", string_of_int t.distinct_blocks);
       ("distinct functions", string_of_int t.distinct_functions);
       ( "touched code",
         Printf.sprintf "%d KB" (t.touched_code_bytes / 1024) );
       ("instrs / block visit", Printf.sprintf "%.1f" t.mean_block_visit);
       ("16-bit representable", pct t.thumb_convertible_share);
     ]
    @ List.map (fun (k, v) -> ("mix: " ^ k, pct v)) t.mix)
