(** Workload characterization.

    Summarizes a dynamic trace the way the paper's workload sections
    (and the authors' companion IISWC'17 characterization) do: the
    instruction mix, control behaviour, code footprint and basic-block
    shape that explain *why* an app behaves as it does on the machine.
    Used for calibration checks, the CLI's `characterize` command, and
    the workload tests. *)

type t = {
  work_instructions : int;
  mix : (string * float) list;
      (** share per opcode class, descending *)
  control_share : float;       (** control transfers per instruction *)
  cond_branch_share : float;
  taken_share : float;         (** taken fraction of control transfers *)
  mean_run_length : float;     (** instructions between taken transfers *)
  distinct_blocks : int;
  distinct_functions : int;
  touched_code_bytes : int;    (** distinct 64-byte code lines × 64 *)
  mean_block_visit : float;    (** instructions per block visit *)
  thumb_convertible_share : float;
      (** instructions directly representable in the 16-bit format *)
}

val of_trace : Prog.Trace.t -> t
val render : t -> string
