(* Deterministic fault injection for the supervision layer.

   A plan is derived entirely from a seed: victim applications are
   drawn by shuffling the candidate list with [Util.Rng] (never
   [Random.self_init]), so the same seed over the same app list injects
   the same faults on every run, host and parallelism width — which is
   what lets the tests assert that a supervised batch reports *exactly*
   the planned failures. *)

type action =
  | Raise_transient of int
      (* raise Err Transient on the first [n] attempts, succeed after *)
  | Raise_fatal (* raise Err Fatal on every attempt *)
  | Stall (* burn past the fuel budget: the Cpu watchdog aborts *)
  | Corrupt_db (* hand the loader a corrupted profile database *)

type plan = { seed : int; victims : (string * action) list }

let action_name = function
  | Raise_transient n -> Printf.sprintf "raise-transient(%d)" n
  | Raise_fatal -> "raise-fatal"
  | Stall -> "stall"
  | Corrupt_db -> "corrupt-db"

let none = { seed = 0; victims = [] }

let plan ~seed ?(raise_transient = 0) ?(transient_failures = 1)
    ?(raise_fatal = 0) ?(stall = 0) ?(corrupt_db = 0) candidates =
  let wanted = raise_transient + raise_fatal + stall + corrupt_db in
  if wanted > List.length candidates then
    invalid_arg
      (Printf.sprintf "Fault.plan: %d victims requested from %d candidates"
         wanted (List.length candidates));
  let order = Array.of_list candidates in
  let rng = Util.Rng.create (seed lxor 0xFA_0175) in
  Util.Rng.shuffle rng order;
  let take = ref 0 in
  let pick n action =
    List.init n (fun _ ->
        let app = order.(!take) in
        incr take;
        (app, action))
  in
  let victims =
    pick raise_transient (Raise_transient (max 1 transient_failures))
    @ pick raise_fatal Raise_fatal
    @ pick stall Stall
    @ pick corrupt_db Corrupt_db
  in
  { seed; victims }

let victims plan = plan.victims
let seed plan = plan.seed
let action_for plan ~app = List.assoc_opt app plan.victims

let to_string plan =
  if plan.victims = [] then "no injected faults"
  else
    Printf.sprintf "seed %d: %s" plan.seed
      (String.concat ", "
         (List.map
            (fun (app, a) -> Printf.sprintf "%s:%s" app (action_name a))
            plan.victims))

(* ------------------------- artifact corruption -------------------- *)

(* Keep the first half: what a crashed non-atomic writer leaves behind.
   Always detectable by the DB parser — the site count and histogram
   terminators no longer match — unlike a bit flip, which can land in a
   free-text field. *)
let truncate_string s = String.sub s 0 (String.length s / 2)

let corrupt_string ~seed s =
  let rng = Util.Rng.create (seed lxor 0xC0_44FE) in
  let n = String.length s in
  if n < 4 || Util.Rng.bool rng then
    (* Truncate mid-stream — the shape a crashed non-atomic writer
       leaves behind. *)
    String.sub s 0 (n / 2)
  else begin
    (* Flip one bit of one byte. *)
    let b = Bytes.of_string s in
    let i = Util.Rng.int rng n in
    let bit = Util.Rng.int rng 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
    Bytes.to_string b
  end

let corrupt_file ~seed path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (corrupt_string ~seed s))
