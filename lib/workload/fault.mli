(** Deterministic fault injection for the supervision layer.

    Large sweeps must tolerate per-app failures; this module makes
    failures {e reproducible} so every supervision path (containment,
    retry, quarantine, deadline abort, corrupt-input rejection) can be
    exercised by tests.  A plan derives entirely from its seed — victim
    apps are chosen by a seeded shuffle, never by ambient randomness —
    so the same plan fires the same faults at any parallelism width. *)

type action =
  | Raise_transient of int
      (** raise [Util.Err.Error] with kind [Transient] on the first [n]
          attempts of a job, then succeed — the retry-then-succeed
          path *)
  | Raise_fatal  (** raise kind [Fatal] on every attempt *)
  | Stall
      (** run the job with a tiny simulation-fuel budget so the
          {!Pipeline.Cpu.run_stream} watchdog aborts it with [Timeout] *)
  | Corrupt_db
      (** round-trip the job's profile database through a corrupted
          serialization, so the loader rejects it with
          [Corrupt_input] *)

type plan

val none : plan
(** The empty plan: no job faults. *)

val plan :
  seed:int ->
  ?raise_transient:int ->
  ?transient_failures:int ->
  ?raise_fatal:int ->
  ?stall:int ->
  ?corrupt_db:int ->
  string list ->
  plan
(** [plan ~seed ... candidates] draws the requested number of distinct
    victims per action from [candidates] (app names) by seeded shuffle.
    [transient_failures] (default 1) is how many attempts each
    [Raise_transient] victim fails before succeeding.  Raises
    [Invalid_argument] if more victims are requested than candidates. *)

val action_for : plan -> app:string -> action option
(** The fault (if any) planned for [app]. *)

val seed : plan -> int

val victims : plan -> (string * action) list
val action_name : action -> string
val to_string : plan -> string

val truncate_string : string -> string
(** First half of the input — a guaranteed-detectable corruption of a
    profile database (counts and section terminators go missing). *)

val corrupt_string : seed:int -> string -> string
(** Deterministically damage a serialized artifact: truncate it
    mid-stream (what a crashed non-atomic writer leaves) or flip one
    bit. *)

val corrupt_file : seed:int -> string -> unit
(** Rewrite [path] with [corrupt_string] of its contents. *)
