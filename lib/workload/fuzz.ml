(* QCheck program fuzzer: random but well-formed CFGs for the
   differential oracle.

   The generator works on a small *genome* (plain integers) rather than
   on Prog values directly, so that shrinking stays structural: QCheck
   shrinks the genome (fewer blocks, shorter bodies, simpler
   instructions, fallthrough terminators) and [build] re-derives a legal
   program from whatever is left.  [build] clamps every cross-block
   reference modulo the block count and pads empty bodies with a Nop, so
   *every* genome — including every shrink step — yields a program that
   [Prog.Program.make] accepts and whose walk terminates. *)

module I = Isa.Instr
module Op = Isa.Opcode
module B = Prog.Block

type instr_spec = {
  op : int;          (* index into [ops] *)
  dst : int;         (* register 0..12 *)
  srcs : int list;   (* source registers, 0..12 *)
  predicated : bool; (* blocks Thumb conversion *)
  region : int;      (* memory region 0..3 *)
  stride_ix : int;   (* index into [strides] *)
  ws_mult : int;     (* working set = stride * (1 + ws_mult) *)
  random_pct : int;  (* address randomness, percent *)
}

type term_spec =
  | T_fall of int
  | T_jump of int
  | T_cond of { target : int; other : int; bias_pct : int }
  | T_call of { callee : int; ret : int }
  | T_return

type block_spec = { body : instr_spec list; term : term_spec }
type t = block_spec list

(* Body opcodes: every non-control class (control flow lives in
   terminators; body control markers are inserted by the passes). *)
let ops =
  [| Op.Alu; Op.Alu_shift; Op.Mul; Op.Div; Op.Load; Op.Store;
     Op.Fp_add; Op.Fp_mul; Op.Fp_div; Op.Nop |]

let strides = [| 4; 8; 16; 64 |]

(* ------------------------------ build ------------------------------ *)

let build (spec : t) : Prog.Program.t =
  let spec = if spec = [] then [ { body = []; term = T_jump 0 } ] else spec in
  let n = List.length spec in
  let clamp b = ((b mod n) + n) mod n in
  let uid = ref 0 in
  let fresh () =
    let u = !uid in
    incr uid;
    u
  in
  let reg r = Isa.Reg.r (((r mod 13) + 13) mod 13) in
  let instr (s : instr_spec) =
    let op = ops.(((s.op mod Array.length ops) + Array.length ops)
                  mod Array.length ops) in
    let dst = Some (reg s.dst) in
    let srcs = List.map reg s.srcs in
    let cond = if s.predicated then I.Eq else I.Always in
    match op with
    | Op.Load | Op.Store ->
      let stride =
        strides.(((s.stride_ix mod Array.length strides)
                  + Array.length strides)
                 mod Array.length strides)
      in
      let mem =
        {
          I.region = abs s.region mod 4;
          stride;
          working_set = stride * (1 + (abs s.ws_mult mod 64));
          randomness = float_of_int (abs s.random_pct mod 31) /. 100.;
        }
      in
      I.make ~uid:(fresh ()) ~opcode:op ?dst ~srcs ~cond ~mem ()
    | Op.Nop -> I.make ~uid:(fresh ()) ~opcode:op ~cond ()
    | _ -> I.make ~uid:(fresh ()) ~opcode:op ?dst ~srcs ~cond ()
  in
  let term = function
    | T_fall b -> B.Fallthrough (clamp b)
    | T_jump b -> B.Jump (clamp b)
    | T_cond { target; other; bias_pct } ->
      B.Cond_branch
        {
          taken = clamp target;
          not_taken = clamp other;
          taken_bias = float_of_int (abs bias_pct mod 101) /. 100.;
        }
    | T_call { callee; ret } ->
      B.Call { callee = clamp callee; return_to = clamp ret }
    | T_return -> B.Return
  in
  let blocks =
    List.mapi
      (fun id (b : block_spec) ->
        let body = List.map instr b.body in
        (* An empty body would let the walk spin without consuming its
           instruction budget; pad with a Nop. *)
        let body =
          if body = [] then [ I.make ~uid:(fresh ()) ~opcode:Op.Nop () ]
          else body
        in
        B.make ~id ~func:0 ~body:(Array.of_list body) ~term:(term b.term))
      spec
  in
  Prog.Program.make ~entry:0 ~blocks

let size (spec : t) =
  List.fold_left (fun acc b -> acc + max 1 (List.length b.body)) 0 spec

(* --------------------------- generation ---------------------------- *)

let gen_instr : instr_spec QCheck.Gen.t =
  let open QCheck.Gen in
  let* op = int_bound (Array.length ops - 1) in
  let* dst = int_bound 12 in
  let* srcs = list_size (int_bound 2) (int_bound 12) in
  let* predicated = frequency [ (4, return false); (1, return true) ] in
  let* region = int_bound 3 in
  let* stride_ix = int_bound (Array.length strides - 1) in
  let* ws_mult = int_bound 63 in
  let+ random_pct = frequency [ (3, return 0); (1, int_bound 30) ] in
  { op; dst; srcs; predicated; region; stride_ix; ws_mult; random_pct }

let gen_term nblocks : term_spec QCheck.Gen.t =
  let open QCheck.Gen in
  let block = int_bound (max 0 (nblocks - 1)) in
  frequency
    [
      (3, map (fun b -> T_fall b) block);
      (2, map (fun b -> T_jump b) block);
      ( 4,
        let* target = block in
        let* other = block in
        let+ bias_pct = int_bound 100 in
        T_cond { target; other; bias_pct } );
      ( 2,
        let* callee = block in
        let+ ret = block in
        T_call { callee; ret } );
      (1, return T_return);
    ]

let gen : t QCheck.Gen.t =
  let open QCheck.Gen in
  let* nblocks = int_range 1 8 in
  let gen_block =
    let* body = list_size (int_range 0 8) gen_instr in
    let+ term = gen_term nblocks in
    { body; term }
  in
  list_repeat nblocks gen_block

(* ---------------------------- shrinking ---------------------------- *)

let shrink_instr (s : instr_spec) yield =
  QCheck.Shrink.list ~shrink:QCheck.Shrink.int s.srcs (fun srcs ->
      yield { s with srcs });
  if s.predicated then yield { s with predicated = false };
  if s.random_pct > 0 then yield { s with random_pct = 0 };
  if s.ws_mult > 0 then yield { s with ws_mult = 0 };
  if s.region > 0 then yield { s with region = 0 };
  if s.op > 0 then yield { s with op = 0 };
  if s.dst > 0 then yield { s with dst = 0 }

let shrink_term (t : term_spec) yield =
  match t with T_fall 0 -> () | _ -> yield (T_fall 0)

let shrink_block (b : block_spec) yield =
  QCheck.Shrink.list ~shrink:shrink_instr b.body (fun body ->
      yield { b with body });
  shrink_term b.term (fun term -> yield { b with term })

let shrink : t QCheck.Shrink.t = QCheck.Shrink.list ~shrink:shrink_block

(* ---------------------------- printing ----------------------------- *)

let instr_to_string (s : instr_spec) =
  Printf.sprintf "%s d%d s[%s]%s%s"
    (Op.to_string
       ops.(((s.op mod Array.length ops) + Array.length ops)
            mod Array.length ops))
    s.dst
    (String.concat "," (List.map string_of_int s.srcs))
    (if s.predicated then " pred" else "")
    (if s.random_pct > 0 then Printf.sprintf " rnd%d%%" s.random_pct else "")

let term_to_string = function
  | T_fall b -> Printf.sprintf "fall %d" b
  | T_jump b -> Printf.sprintf "jump %d" b
  | T_cond { target; other; bias_pct } ->
    Printf.sprintf "cond %d/%d @%d%%" target other bias_pct
  | T_call { callee; ret } -> Printf.sprintf "call %d ret %d" callee ret
  | T_return -> "return"

let to_string (spec : t) =
  String.concat "\n"
    (List.mapi
       (fun i (b : block_spec) ->
         Printf.sprintf "block %d: [%s] -> %s" i
           (String.concat "; " (List.map instr_to_string b.body))
           (term_to_string b.term))
       spec)

let arbitrary : t QCheck.arbitrary =
  QCheck.make ~print:to_string ~shrink gen

(* ------------------------- fixed-seed corpus ----------------------- *)

let spec_of_seed seed : t =
  QCheck.Gen.generate1 ~rand:(Random.State.make [| 0x0F5A; seed |]) gen

let program_of_seed seed = build (spec_of_seed seed)
