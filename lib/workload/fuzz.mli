(** QCheck program fuzzer.

    Generates random but well-formed programs — bounded registers
    (R0–R12), acyclic intra-block dataflow (straight-line bodies reading
    earlier writers), legal branches (every cross-block reference
    clamped into range) — as a shrinkable integer {e genome}.  {!build}
    turns any genome, including every shrink step, into a program that
    {!Prog.Program.make} accepts and whose {!Prog.Walk} terminates.

    Used by the differential tests to fuzz the transform pipeline and
    the cycle simulator against the golden model, and by
    [critics_cli check] for the fixed-seed smoke corpus. *)

type instr_spec = {
  op : int;          (** index into the body-opcode table *)
  dst : int;         (** destination register 0..12 *)
  srcs : int list;   (** source registers 0..12 *)
  predicated : bool; (** predicated execution (blocks Thumb conversion) *)
  region : int;      (** memory region 0..3 *)
  stride_ix : int;   (** index into the stride table *)
  ws_mult : int;     (** working set = stride × (1 + ws_mult) *)
  random_pct : int;  (** address randomness, percent *)
}

type term_spec =
  | T_fall of int
  | T_jump of int
  | T_cond of { target : int; other : int; bias_pct : int }
  | T_call of { callee : int; ret : int }
  | T_return

type block_spec = { body : instr_spec list; term : term_spec }

type t = block_spec list
(** The genome: one spec per block, block ids positional. *)

val build : t -> Prog.Program.t
(** Realise a genome as a program.  Total: clamps block references
    modulo the block count, pads empty bodies with a Nop (so walks
    always consume budget), and maps the empty genome to a minimal
    one-block program. *)

val size : t -> int
(** Static instruction count of the built program (body instructions). *)

val gen : t QCheck.Gen.t
val shrink : t QCheck.Shrink.t
val to_string : t -> string

val arbitrary : t QCheck.arbitrary
(** [gen] + [shrink] + printer, ready for [QCheck.Test.make]. *)

val spec_of_seed : int -> t
(** Deterministic genome from a seed (fixed-seed corpus replay). *)

val program_of_seed : int -> Prog.Program.t
