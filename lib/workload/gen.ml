module Rng = Util.Rng
module I = Isa.Instr
module Op = Isa.Opcode

let reg = Isa.Reg.r

(* Register map (all within the Thumb-addressable range r0..r10):
   - r0..r4: chain-member destinations, cycled so every member of a
     chain writes a distinct register — a precondition for legal
     hoisting when gap links have their own consumers;
   - r5: the chain link register: every chain's tail writes it and (for
     [chain_linked] profiles) the next chain's root reads it;
   - r6: fanout-tree leaf scratch;
   - r7..r9: filler pool;
   - r10: loop-carried accumulator;
   - r11/r12: deliberately non-Thumb-addressable sabotage registers. *)
let chain_regs = [| reg 0; reg 1; reg 2; reg 3; reg 4 |]
let r_link = reg 5
let r_leaf = reg 6
let filler_pool = [| reg 7; reg 8; reg 9 |]
let r_acc = reg 10
let high_regs = [| reg 11; reg 12 |]

type ctx = {
  rng : Rng.t;
  p : Profile.t;
  mutable uid : int;
  (* filler registers currently holding a value, usable as sources *)
  mutable defined : Isa.Reg.t list;
}

let fresh ctx =
  let u = ctx.uid in
  ctx.uid <- u + 1;
  u

let range rng (lo, hi) = if hi <= lo then lo else lo + Rng.int rng (hi - lo + 1)

let mem_signature ctx : I.mem_signature =
  let p = ctx.p in
  let jitter = 1 + Rng.int ctx.rng 2 in
  {
    region = Rng.int ctx.rng p.regions;
    stride = p.load_stride;
    working_set = max p.load_stride (p.load_working_set * jitter / 2);
    randomness = p.load_randomness;
  }

let mk ctx ?dst ?(srcs = []) ?cond ?mem opcode =
  I.make ~uid:(fresh ctx) ~opcode ?dst ~srcs ?cond ?mem ()

(* Make an instruction non-Thumb-convertible, alternating between the
   two obstacles the paper cites: predication and high registers. *)
let sabotage ctx ?dst ?(srcs = []) opcode =
  if Rng.bool ctx.rng then mk ctx ?dst ~srcs ~cond:I.Ne opcode
  else
    let dst =
      match dst with Some _ -> Some (Rng.pick ctx.rng high_regs) | None -> None
    in
    mk ctx ?dst ~srcs opcode

let chain_member ctx ?dst ?(srcs = []) opcode =
  if Rng.chance ctx.rng ctx.p.chain_unconvertible_frac then
    sabotage ctx ?dst ~srcs opcode
  else mk ctx ?dst ~srcs opcode

(* Leaves write the shared scratch register; consecutive leaves only
   read their producer, so they add fanout there and nowhere else.
   A profile-controlled share of leaves are loads and stores consuming
   the produced value (the memory mix of the app), and another share is
   predicated or uses high registers — the Thumb-convertibility
   obstacles that bound how much of the stream OPP16/Compress can
   convert. *)
let leaf ctx src =
  let p = ctx.p in
  let roll = Rng.float ctx.rng 1.0 in
  if roll < p.leaf_load_frac then
    I.make ~uid:(fresh ctx) ~opcode:Op.Load ~dst:r_leaf ~srcs:[ src ]
      ~mem:(mem_signature ctx) ()
  else if roll < p.leaf_load_frac +. p.leaf_store_frac then
    I.make ~uid:(fresh ctx) ~opcode:Op.Store ~srcs:[ src ]
      ~mem:(mem_signature ctx) ()
  else begin
    let opcode = if Rng.chance ctx.rng p.fp_frac then Op.Fp_add else Op.Alu in
    if Rng.chance ctx.rng p.predicated_frac then
      mk ctx ~dst:r_leaf ~srcs:[ src ] ~cond:I.Ne opcode
    else if Rng.chance ctx.rng p.high_reg_frac then
      mk ctx ~dst:(Rng.pick ctx.rng high_regs) ~srcs:[ src ] opcode
    else mk ctx ~dst:r_leaf ~srcs:[ src ] opcode
  end

(* A critical chain group: high-fanout spine nodes linked through
   low-fanout gap instructions, each spine node feeding a burst of
   consumers (Sec. II-C structure). *)
let emit_chain ctx out =
  let p = ctx.p in
  let spine = max 1 (range ctx.rng p.spine_len) in
  let next_reg =
    let k = ref 0 in
    fun () ->
      let r = chain_regs.(!k mod Array.length chain_regs) in
      incr k;
      r
  in
  let cur = ref (next_reg ()) in
  let root_srcs = if p.chain_linked then [ r_link ] else [] in
  let root =
    if Rng.chance ctx.rng p.spine_load_frac then
      I.make ~uid:(fresh ctx) ~opcode:Op.Load ~dst:!cur ~srcs:root_srcs
        ~mem:(mem_signature ctx) ()
    else chain_member ctx ~dst:!cur ~srcs:root_srcs Op.Alu
  in
  out root;
  for s = 0 to spine - 1 do
    let last = s = spine - 1 in
    let f = max 2 (range ctx.rng p.fanout) in
    for _ = 1 to f - 1 do
      out (leaf ctx !cur)
    done;
    if not last then begin
      let g = range ctx.rng p.chain_gap in
      let prev = ref !cur in
      for _ = 1 to g do
        let r = next_reg () in
        out (chain_member ctx ~dst:r ~srcs:[ !prev ] Op.Alu);
        prev := r;
        (* gap links have a few consumers of their own: not enough to be
           individually critical, but they lift the chain average *)
        let gf = range ctx.rng p.gap_fanout in
        for _ = 1 to gf do
          out (leaf ctx r)
        done
      done;
      let next_is_tail = s + 1 = spine - 1 in
      let r = if next_is_tail then r_link else next_reg () in
      out (chain_member ctx ~dst:r ~srcs:[ !prev ] Op.Alu);
      cur := r
    end
  done

(* A SPEC-style isolated criticality group: one high-fanout root (a
   load) whose consumers are all low-fanout — no dependent critical
   instruction downstream. *)
let emit_isolated ctx out =
  let p = ctx.p in
  let f = max 2 (range ctx.rng p.isolated_fanout) in
  let root = chain_regs.(0) in
  out
    (I.make ~uid:(fresh ctx) ~opcode:Op.Load ~dst:root
       ~mem:(mem_signature ctx) ());
  for _ = 1 to f do
    out (leaf ctx root)
  done

let pick_defined ctx =
  match ctx.defined with
  | [] -> []
  | l -> [ List.nth l (Rng.int ctx.rng (List.length l)) ]

let emit_filler ctx out =
  let p = ctx.p in
  let roll = Rng.float ctx.rng 1.0 in
  let dst = Rng.pick ctx.rng filler_pool in
  let define r = if not (List.memq r ctx.defined) then ctx.defined <- r :: ctx.defined in
  let cum1 = p.load_frac in
  let cum2 = cum1 +. p.store_frac in
  let cum3 = cum2 +. p.mul_frac in
  let cum4 = cum3 +. p.div_frac in
  let cum5 = cum4 +. p.fp_frac in
  if roll < cum1 then begin
    out
      (I.make ~uid:(fresh ctx) ~opcode:Op.Load ~dst ~srcs:(pick_defined ctx)
         ~mem:(mem_signature ctx) ());
    define dst
  end
  else if roll < cum2 then
    match pick_defined ctx with
    | [] ->
      out (mk ctx ~dst Op.Alu);
      define dst
    | srcs ->
      out
        (I.make ~uid:(fresh ctx) ~opcode:Op.Store ~srcs
           ~mem:(mem_signature ctx) ())
  else if roll < cum3 then begin
    out (mk ctx ~dst ~srcs:(pick_defined ctx) Op.Mul);
    define dst
  end
  else if roll < cum4 then begin
    out (mk ctx ~dst ~srcs:(pick_defined ctx) Op.Div);
    define dst
  end
  else if roll < cum5 then begin
    let op = if Rng.bool ctx.rng then Op.Fp_add else Op.Fp_mul in
    out (mk ctx ~dst ~srcs:(pick_defined ctx) op);
    define dst
  end
  else begin
    (* plain ALU filler, possibly predicated or using high registers *)
    let srcs = pick_defined ctx in
    if Rng.chance ctx.rng p.predicated_frac then
      out (mk ctx ~dst ~srcs ~cond:I.Ne Op.Alu)
    else if Rng.chance ctx.rng p.high_reg_frac then
      out (mk ctx ~dst:(Rng.pick ctx.rng high_regs) ~srcs Op.Alu)
    else out (mk ctx ~dst ~srcs Op.Alu);
    define dst
  end

let gen_body ctx =
  let p = ctx.p in
  ctx.defined <- [];
  let instrs = ref [] in
  let count = ref 0 in
  let out i =
    instrs := i :: !instrs;
    incr count
  in
  let target = range ctx.rng p.body_instrs in
  let groups =
    List.init (range ctx.rng p.chain_groups) (fun _ () -> emit_chain ctx out)
    @ List.init (range ctx.rng p.isolated_groups) (fun _ () ->
          emit_isolated ctx out)
  in
  let ngroups = List.length groups in
  (* Interleave filler around the groups so critical chains sit at
     varying offsets in the block. *)
  let filler_budget () =
    let remaining = max 0 (target - !count) in
    if ngroups = 0 then remaining else remaining / (ngroups + 1)
  in
  List.iteri
    (fun gi group ->
      let n = if gi = 0 then filler_budget () else filler_budget () / 2 in
      for _ = 1 to n do
        emit_filler ctx out
      done;
      group ())
    groups;
  while !count < target do
    emit_filler ctx out
  done;
  if p.loop_carried then begin
    let extra = match pick_defined ctx with [] -> [] | l -> l in
    out (mk ctx ~dst:r_acc ~srcs:(r_acc :: extra) Op.Alu)
  end;
  Array.of_list (List.rev !instrs)

(* Small filler-only bodies for the dispatcher blocks. *)
let dispatcher_body ctx =
  ctx.defined <- [];
  let n = 3 + Rng.int ctx.rng 5 in
  let instrs = ref [] in
  for _ = 1 to n do
    emit_filler ctx (fun i -> instrs := i :: !instrs)
  done;
  Array.of_list (List.rev !instrs)

(* Terminators for ordinary functions (f >= 1).  Calls only target
   higher-numbered functions, making the call graph a DAG: the walk can
   never recurse unboundedly. *)
let gen_terminator ctx ~nfun ~fun_entry ~f ~size ~j ~id =
  let p = ctx.p in
  let next = id + 1 in
  if j = size - 1 then Prog.Block.Return
  else begin
    let roll = Rng.float ctx.rng 1.0 in
    if roll < p.call_prob && f < nfun - 1 then begin
      let callee =
        if Rng.chance ctx.rng p.call_locality then
          min (nfun - 1) (f + 1 + Rng.int ctx.rng 8)
        else f + 1 + Rng.int ctx.rng (nfun - 1 - f)
      in
      Prog.Block.Call { callee = fun_entry.(callee); return_to = next }
    end
    else if roll < p.call_prob +. p.branch_prob then begin
      if Rng.chance ctx.rng p.loop_prob && j > 0 then begin
        (* backward loop edge *)
        let back = max 0 (j - 1 - Rng.int ctx.rng (min 3 j)) in
        let bias = 1.0 -. (1.0 /. float_of_int p.loop_iterations) in
        Prog.Block.Cond_branch
          { taken = fun_entry.(f) + back; not_taken = next; taken_bias = bias }
      end
      else if j + 2 <= size - 1 then begin
        (* forward skip *)
        let fwd = j + 2 + Rng.int ctx.rng (size - 1 - (j + 1)) in
        let fwd = min fwd (size - 1) in
        let lo, hi = p.branch_bias in
        let bias = lo +. Rng.float ctx.rng (max 0.0 (hi -. lo)) in
        Prog.Block.Cond_branch
          { taken = fun_entry.(f) + fwd; not_taken = next; taken_bias = bias }
      end
      else Prog.Block.Fallthrough next
    end
    else Prog.Block.Fallthrough next
  end

(* The dispatcher (function 0) models the app main loop: [slots] handler
   call-sites, each guarded by a coin-flip gate so every iteration runs
   a different random subset of handlers, dispersing execution over the
   whole code base.  Layout: gate g_i = block 2i, call c_i = block 2i+1,
   closing block 2*slots jumps back to the start. *)
let dispatcher_blocks ctx ~nfun ~fun_entry =
  let p = ctx.p in
  let slots = p.dispatcher_slots in
  let handler i =
    if nfun <= 1 then 0
    else begin
      let spread = 1 + (i * (nfun - 1) / slots) in
      let jitter = Rng.int ctx.rng (max 1 ((nfun - 1) / slots)) in
      min (nfun - 1) (spread + jitter)
    end
  in
  let blocks = ref [] in
  for i = 0 to slots - 1 do
    let gate_id = 2 * i in
    let call_id = (2 * i) + 1 in
    let next_gate = 2 * (i + 1) in
    blocks :=
      Prog.Block.make ~id:gate_id ~func:0 ~body:(dispatcher_body ctx)
        ~term:
          (Prog.Block.Cond_branch
             { taken = next_gate; not_taken = call_id; taken_bias = 0.72 })
      :: !blocks;
    let term =
      if nfun <= 1 then Prog.Block.Fallthrough next_gate
      else
        Prog.Block.Call
          { callee = fun_entry.(handler i); return_to = next_gate }
    in
    blocks :=
      Prog.Block.make ~id:call_id ~func:0 ~body:(dispatcher_body ctx) ~term
      :: !blocks
  done;
  blocks :=
    Prog.Block.make ~id:(2 * slots) ~func:0 ~body:(dispatcher_body ctx)
      ~term:(Prog.Block.Jump 0)
    :: !blocks;
  List.rev !blocks

let program p =
  Profile.validate p;
  let ctx = { rng = Rng.create p.seed; p; uid = 0; defined = [] } in
  let nfun = p.functions in
  let sizes =
    Array.init nfun (fun f ->
        if f = 0 then (2 * p.dispatcher_slots) + 1
        else max 1 (range ctx.rng p.blocks_per_function))
  in
  let fun_entry = Array.make nfun 0 in
  let total = ref 0 in
  Array.iteri
    (fun f size ->
      fun_entry.(f) <- !total;
      total := !total + size)
    sizes;
  let blocks = ref (List.rev (dispatcher_blocks ctx ~nfun ~fun_entry)) in
  for f = 1 to nfun - 1 do
    let size = sizes.(f) in
    for j = 0 to size - 1 do
      let id = fun_entry.(f) + j in
      let body = gen_body ctx in
      let term = gen_terminator ctx ~nfun ~fun_entry ~f ~size ~j ~id in
      blocks := Prog.Block.make ~id ~func:f ~body ~term :: !blocks
    done
  done;
  Prog.Program.make ~entry:0 ~blocks:(List.rev !blocks)

let trace ?(instrs = 100_000) ?seed p =
  let program = program p in
  let seed = Option.value ~default:(p.seed lxor 0x5EED) seed in
  let path = Prog.Walk.path_for_instrs program ~seed ~instrs in
  (program, Prog.Trace.expand program ~seed path)
