(** Synthetic program generation.

    [program p] realises a {!Profile.t} as a concrete {!Prog.Program.t}.
    Generation is deterministic in [p.seed].

    Register conventions (so the generated DFG structure is controlled
    rather than accidental):
    - r0: gap-link register of critical chains
    - r1/r2: chain spine registers (alternating)
    - r3: fanout-tree leaf scratch
    - r4: loop-carried accumulator (reserved; only used when
      [loop_carried] is set)
    - r5..r10: filler pool
    - r11/r12: "high" registers used to make selected instructions
      non-Thumb-convertible *)

val program : Profile.t -> Prog.Program.t

val trace :
  ?instrs:int -> ?seed:int -> Profile.t -> Prog.Program.t * Prog.Trace.t
(** Convenience: generate the program, walk it for at least [instrs]
    (default 100_000) work instructions and expand the trace.  [seed]
    defaults to a value derived from the profile seed. *)
