module Registry = Telemetry.Registry

(* Small splitmix-style PRNG over OCaml's 63-bit ints: enough state
   churn to decorrelate users, fully deterministic, no dependency on
   [Random]'s global state. *)
(* The multiplicative constants are the splitmix64 ones truncated to
   OCaml's 63-bit native int. *)
let mix state =
  let z = (state + 0x1E3779B97F4A7C15) land max_int in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 land max_int in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB land max_int in
  (z, z lxor (z lsr 31))

type rng = { mutable state : int }

let rng_create seed = { state = seed land max_int }

let next r =
  let state, v = mix r.state in
  r.state <- state;
  v

(* Uniform float in [0, 1). *)
let unit_float r = float_of_int (next r land 0xFFFFFFFF) /. 4294967296.0

(* Scale factor in [0.75, 1.25). *)
let factor r = 0.75 +. (unit_float r /. 2.0)

let jitter p ~user =
  let r = rng_create ((p.Profile.seed * 0x10001) lxor (user * 0x9E37)) in
  let scale_int v = max 1 (int_of_float (float_of_int v *. factor r)) in
  let nudge_prob v = Float.min 1.0 (Float.max 0.0 (v *. factor r)) in
  {
    p with
    Profile.seed = (p.Profile.seed lxor (user * 2654435761)) land max_int;
    loop_iterations = scale_int p.Profile.loop_iterations;
    regions = scale_int p.Profile.regions;
    load_stride = scale_int p.Profile.load_stride;
    load_working_set = scale_int p.Profile.load_working_set;
    functions = scale_int p.Profile.functions;
    dispatcher_slots = scale_int p.Profile.dispatcher_slots;
    call_prob = nudge_prob p.Profile.call_prob;
    branch_prob = nudge_prob p.Profile.branch_prob;
    loop_prob = nudge_prob p.Profile.loop_prob;
    load_frac = nudge_prob p.Profile.load_frac;
    store_frac = nudge_prob p.Profile.store_frac;
    fp_frac = nudge_prob p.Profile.fp_frac;
    load_randomness = nudge_prob p.Profile.load_randomness;
  }

type upload = { id : string; app : string; payload : string }

let sample_range r (lo, hi) = lo + (next r mod max 1 (hi - lo + 1))

let upload p ~user =
  let j = jitter p ~user in
  let r = rng_create (j.Profile.seed lxor 0x5EED) in
  let reg = Registry.create () in
  Registry.incr (Registry.counter reg "population/uploads");
  (* Approximate stream volume this user's session generated. *)
  let instrs =
    j.Profile.functions
    * ((fst j.Profile.body_instrs + snd j.Profile.body_instrs) / 2)
    * j.Profile.loop_iterations
  in
  Registry.add (Registry.counter reg "population/instructions") instrs;
  Registry.add
    (Registry.counter reg ("population/suite/" ^ Profile.suite_name j.suite))
    1;
  Registry.set_max
    (Registry.gauge reg "population/max_working_set")
    j.Profile.load_working_set;
  (* Per-session distributions a device-side profiler would report:
     chain shape and dispatch latency, sampled from the jittered
     calibration. *)
  let chain = Registry.histogram reg "population/chain_length" in
  let fanout = Registry.histogram reg "population/fanout" in
  let latency = Registry.histogram reg "population/session_us" in
  for _ = 1 to 24 do
    let spine = sample_range r j.Profile.spine_len in
    let gaps = sample_range r j.Profile.chain_gap in
    Registry.observe chain (spine + (gaps * max 1 (spine - 1)));
    Registry.observe fanout (sample_range r j.Profile.fanout);
    Registry.observe latency
      (100 + (next r mod (100 * j.Profile.loop_iterations)))
  done;
  {
    id = Printf.sprintf "%s/u%04d" p.Profile.name user;
    app = p.Profile.name;
    payload = Registry.to_bytes reg;
  }

let generate ?apps ~users_per_app () =
  let apps = match apps with Some l -> l | None -> Apps.all in
  List.concat_map
    (fun p -> List.init users_per_app (fun user -> upload p ~user))
    apps
