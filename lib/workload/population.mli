(** Synthetic upload population for the ingest service.

    The paper's pipeline profiles each app once; a fleet-scale service
    instead receives thousands of per-user uploads whose statistics
    jitter around each app's Table II calibration — different users
    exercise different activities, code paths and working sets.  This
    module derives that population deterministically from the 26 shipped
    profiles: [jitter] perturbs a profile's scalar parameters with a
    per-user seeded PRNG (clamped so {!Profile.validate} always holds),
    and [upload] turns the jittered profile into one service upload — a
    serialized {!Telemetry.Registry} delta of [population/*] counters
    and histograms, tagged with a stable client id.

    Everything is a pure function of [(profile.seed, user)]: the same
    population can be regenerated for replay, chaos sweeps and
    benchmarks, and two uploads with the same id carry byte-identical
    payloads (which is what makes re-submission after a crashed ack
    safe to test against). *)

val jitter : Profile.t -> user:int -> Profile.t
(** Per-user variation of [profile]: scalar code-shape and memory
    parameters scaled by a deterministic factor in roughly [0.75, 1.25],
    probabilities nudged and clamped to [0, 1].  The result always
    passes {!Profile.validate}. *)

type upload = { id : string; app : string; payload : string }
(** [id] is ["<app>/u<user>"]; [payload] is
    {!Telemetry.Registry.to_bytes} of the user's metric delta. *)

val upload : Profile.t -> user:int -> upload

val generate : ?apps:Profile.t list -> users_per_app:int -> unit -> upload list
(** The cross product: [users_per_app] uploads for each app (default
    {!Apps.all}, i.e. all 26 profiles), in app-major order. *)
