type suite = Mobile | Spec_int | Spec_float

let suite_name = function
  | Mobile -> "Mobile"
  | Spec_int -> "SPEC.int"
  | Spec_float -> "SPEC.float"

type t = {
  name : string;
  suite : suite;
  activity : string;
  seed : int;
  functions : int;
  dispatcher_slots : int;
  blocks_per_function : int * int;
  body_instrs : int * int;
  call_prob : float;
  call_locality : float;
  branch_prob : float;
  loop_prob : float;
  loop_iterations : int;
  branch_bias : float * float;
  chain_groups : int * int;
  spine_len : int * int;
  chain_gap : int * int;
  fanout : int * int;
  gap_fanout : int * int;
  chain_linked : bool;
  spine_load_frac : float;
  isolated_groups : int * int;
  isolated_fanout : int * int;
  loop_carried : bool;
  leaf_load_frac : float;
  leaf_store_frac : float;
  load_frac : float;
  store_frac : float;
  mul_frac : float;
  div_frac : float;
  fp_frac : float;
  predicated_frac : float;
  high_reg_frac : float;
  chain_unconvertible_frac : float;
  regions : int;
  load_stride : int;
  load_working_set : int;
  load_randomness : float;
}

let check_range name (lo, hi) =
  if lo < 0 || hi < lo then
    invalid_arg (Printf.sprintf "Profile: bad range for %s" name)

let check_prob name p =
  if p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Profile: %s must be a probability" name)

let validate t =
  if t.functions <= 0 then invalid_arg "Profile: functions must be positive";
  if t.dispatcher_slots < 1 then
    invalid_arg "Profile: dispatcher_slots must be >= 1";
  check_range "blocks_per_function" t.blocks_per_function;
  if fst t.blocks_per_function < 1 then
    invalid_arg "Profile: at least one block per function";
  check_range "body_instrs" t.body_instrs;
  check_range "chain_groups" t.chain_groups;
  check_range "spine_len" t.spine_len;
  check_range "chain_gap" t.chain_gap;
  check_range "fanout" t.fanout;
  check_range "gap_fanout" t.gap_fanout;
  check_range "isolated_groups" t.isolated_groups;
  check_range "isolated_fanout" t.isolated_fanout;
  List.iter
    (fun (name, p) -> check_prob name p)
    [
      ("call_prob", t.call_prob);
      ("call_locality", t.call_locality);
      ("branch_prob", t.branch_prob);
      ("loop_prob", t.loop_prob);
      ("branch_bias.lo", fst t.branch_bias);
      ("branch_bias.hi", snd t.branch_bias);
      ("spine_load_frac", t.spine_load_frac);
      ("leaf_load_frac", t.leaf_load_frac);
      ("leaf_store_frac", t.leaf_store_frac);
      ("load_frac", t.load_frac);
      ("store_frac", t.store_frac);
      ("mul_frac", t.mul_frac);
      ("div_frac", t.div_frac);
      ("fp_frac", t.fp_frac);
      ("predicated_frac", t.predicated_frac);
      ("high_reg_frac", t.high_reg_frac);
      ("chain_unconvertible_frac", t.chain_unconvertible_frac);
      ("load_randomness", t.load_randomness);
    ];
  if t.loop_iterations < 1 then
    invalid_arg "Profile: loop_iterations must be >= 1";
  if t.regions < 1 then invalid_arg "Profile: regions must be >= 1";
  if t.load_stride < 1 then invalid_arg "Profile: load_stride must be >= 1";
  if t.load_working_set < t.load_stride then
    invalid_arg "Profile: working set smaller than stride"

let pp fmt t =
  Format.fprintf fmt "%s (%s): %s" t.name (suite_name t.suite) t.activity
