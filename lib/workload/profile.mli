(** Workload profiles.

    A profile is the statistical description of one application from
    Table II (or one SPEC CPU member): code shape, control behaviour,
    dependence-chain structure, instruction mix, Thumb-convertibility
    obstacles and memory behaviour.  {!Gen.program} realises a profile
    as a concrete synthetic program; the parameters below are calibrated
    so the generated streams exhibit the distributions the paper reports
    (Figs. 1b, 3c, 5a). *)

type suite = Mobile | Spec_int | Spec_float

val suite_name : suite -> string

type t = {
  name : string;
  suite : suite;
  activity : string;  (** the Table II "activities performed" column *)
  seed : int;
  (* -- code shape ------------------------------------------------- *)
  functions : int;
  dispatcher_slots : int;
      (** handler call-sites in the event-dispatcher function; each loop
          iteration takes a random subset of them, which is what keeps a
          mobile app's instruction stream dispersing over its large code
          base *)
  blocks_per_function : int * int;  (** inclusive range *)
  body_instrs : int * int;
      (** target body instructions per block (chains + filler) *)
  call_prob : float;   (** probability a non-final block ends in a call *)
  call_locality : float;
      (** probability a call goes to one of the 8 "nearby" functions
          rather than uniformly anywhere *)
  branch_prob : float; (** probability of a conditional terminator *)
  loop_prob : float;   (** conditional branch is a backward loop edge *)
  loop_iterations : int; (** expected trips of a loop edge *)
  branch_bias : float * float; (** forward taken-bias range *)
  (* -- critical chain structure ----------------------------------- *)
  chain_groups : int * int;
      (** critical chain groups per block (the mobile pattern:
          high-fanout spine nodes separated by low-fanout links) *)
  spine_len : int * int;   (** high-fanout nodes per chain *)
  chain_gap : int * int;   (** low-fanout links between spine nodes *)
  fanout : int * int;      (** consumers per spine node *)
  gap_fanout : int * int;  (** consumers per gap link (below the critical
                               threshold, but they raise the chain's
                               average fanout per instruction) *)
  chain_linked : bool;
      (** optional stress pattern: chains thread through a dedicated
          link register (r5), each chain's root consuming the previous
          chain's tail.  Off in all shipped profiles — it creates
          arbitrarily long cross-block ICs, which is the SPEC shape
          (Fig. 5a), not the mobile one; SPEC uses [loop_carried]
          instead *)
  spine_load_frac : float; (** probability the chain root is a load *)
  isolated_groups : int * int;
      (** SPEC-style isolated high-fanout trees per block (a root with
          many consumers and no dependent critical instruction) *)
  isolated_fanout : int * int;
  loop_carried : bool;
      (** thread an accumulator dependence through loop iterations —
          the source of SPEC's very long, widely spread ICs *)
  leaf_load_frac : float;
      (** probability a fanout-tree consumer is a load *)
  leaf_store_frac : float;
      (** probability a fanout-tree consumer is a store *)
  (* -- filler instruction mix (fractions of filler; rest is ALU) --- *)
  load_frac : float;
  store_frac : float;
  mul_frac : float;
  div_frac : float;
  fp_frac : float;     (** also the probability fanout-tree leaves are FP *)
  (* -- Thumb-convertibility obstacles ------------------------------ *)
  predicated_frac : float; (** filler ALU predication probability *)
  high_reg_frac : float;   (** filler using registers above R10 *)
  chain_unconvertible_frac : float;
      (** probability a chain member is made non-convertible, leaving
          the whole chain unoptimizable (all-or-nothing rule) *)
  (* -- memory behaviour -------------------------------------------- *)
  regions : int;
  load_stride : int;
  load_working_set : int;
  load_randomness : float;
}

val validate : t -> unit
(** Raises [Invalid_argument] on out-of-range parameters (negative
    ranges, probabilities outside [0,1], empty code). *)

val pp : Format.formatter -> t -> unit
