(* Tests for the branch predictors. *)

module P = Bpu.Predictor

let test_perfect () =
  let p = P.create P.Perfect in
  for i = 0 to 99 do
    Alcotest.(check bool) "always correct" true
      (P.predict_and_update p ~pc:(i * 4) ~taken:(i mod 3 = 0))
  done;
  Alcotest.(check (float 1e-9)) "accuracy 1" 1.0 (P.accuracy p)

let test_static () =
  let p = P.create P.Static_taken in
  Alcotest.(check bool) "taken correct" true
    (P.predict_and_update p ~pc:0 ~taken:true);
  Alcotest.(check bool) "not-taken wrong" false
    (P.predict_and_update p ~pc:0 ~taken:false)

let test_two_level_learns_bias () =
  let p = P.create P.default_kind in
  (* strongly biased branch becomes predictable *)
  for _ = 1 to 2000 do
    ignore (P.predict_and_update p ~pc:0x40 ~taken:true)
  done;
  let before = (P.stats p).P.mispredicts in
  for _ = 1 to 1000 do
    ignore (P.predict_and_update p ~pc:0x40 ~taken:true)
  done;
  Alcotest.(check int) "no more mispredicts once trained" before
    (P.stats p).P.mispredicts

let test_two_level_learns_pattern () =
  let p = P.create P.default_kind in
  (* alternating pattern is captured by global history *)
  for i = 0 to 4000 do
    ignore (P.predict_and_update p ~pc:0x80 ~taken:(i mod 2 = 0))
  done;
  let s0 = (P.stats p).P.mispredicts in
  for i = 0 to 999 do
    ignore (P.predict_and_update p ~pc:0x80 ~taken:(i mod 2 = 1))
  done;
  let s1 = (P.stats p).P.mispredicts in
  Alcotest.(check bool) "pattern mostly predicted" true (s1 - s0 < 100)

let test_stats_counting () =
  let p = P.create P.Static_taken in
  ignore (P.predict_and_update p ~pc:0 ~taken:true);
  ignore (P.predict_and_update p ~pc:0 ~taken:false);
  let s = P.stats p in
  Alcotest.(check int) "lookups" 2 s.P.lookups;
  Alcotest.(check int) "mispredicts" 1 s.P.mispredicts;
  Alcotest.(check (float 1e-9)) "accuracy" 0.5 (P.accuracy p)

let test_entries_power_of_two () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Predictor.create: entries must be a power of two")
    (fun () ->
      ignore (P.create (P.Two_level { entries = 1000; history_bits = 8 })))

let () =
  Alcotest.run "bpu"
    [
      ( "predictor",
        [
          Alcotest.test_case "perfect" `Quick test_perfect;
          Alcotest.test_case "static" `Quick test_static;
          Alcotest.test_case "learns bias" `Quick test_two_level_learns_bias;
          Alcotest.test_case "learns pattern" `Quick test_two_level_learns_pattern;
          Alcotest.test_case "stats" `Quick test_stats_counting;
          Alcotest.test_case "validation" `Quick test_entries_power_of_two;
        ] );
    ]
