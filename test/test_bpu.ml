(* Tests for the branch predictors. *)

module P = Bpu.Predictor

let test_perfect () =
  let p = P.create P.Perfect in
  for i = 0 to 99 do
    Alcotest.(check bool) "always correct" true
      (P.predict_and_update p ~pc:(i * 4) ~taken:(i mod 3 = 0))
  done;
  Alcotest.(check (float 1e-9)) "accuracy 1" 1.0 (P.accuracy p)

let test_static () =
  let p = P.create P.Static_taken in
  Alcotest.(check bool) "taken correct" true
    (P.predict_and_update p ~pc:0 ~taken:true);
  Alcotest.(check bool) "not-taken wrong" false
    (P.predict_and_update p ~pc:0 ~taken:false)

let test_two_level_learns_bias () =
  let p = P.create P.default_kind in
  (* strongly biased branch becomes predictable *)
  for _ = 1 to 2000 do
    ignore (P.predict_and_update p ~pc:0x40 ~taken:true)
  done;
  let before = (P.stats p).P.mispredicts in
  for _ = 1 to 1000 do
    ignore (P.predict_and_update p ~pc:0x40 ~taken:true)
  done;
  Alcotest.(check int) "no more mispredicts once trained" before
    (P.stats p).P.mispredicts

let test_two_level_learns_pattern () =
  let p = P.create P.default_kind in
  (* alternating pattern is captured by global history *)
  for i = 0 to 4000 do
    ignore (P.predict_and_update p ~pc:0x80 ~taken:(i mod 2 = 0))
  done;
  let s0 = (P.stats p).P.mispredicts in
  for i = 0 to 999 do
    ignore (P.predict_and_update p ~pc:0x80 ~taken:(i mod 2 = 1))
  done;
  let s1 = (P.stats p).P.mispredicts in
  Alcotest.(check bool) "pattern mostly predicted" true (s1 - s0 < 100)

let test_stats_counting () =
  let p = P.create P.Static_taken in
  ignore (P.predict_and_update p ~pc:0 ~taken:true);
  ignore (P.predict_and_update p ~pc:0 ~taken:false);
  let s = P.stats p in
  Alcotest.(check int) "lookups" 2 s.P.lookups;
  Alcotest.(check int) "mispredicts" 1 s.P.mispredicts;
  Alcotest.(check (float 1e-9)) "accuracy" 0.5 (P.accuracy p)

let test_entries_power_of_two () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Predictor.create: entries must be a power of two")
    (fun () ->
      ignore (P.create (P.Two_level { entries = 1000; history_bits = 8 })))

let trace_arb =
  QCheck.(list_of_size Gen.(int_range 1 300) (pair (int_bound 0xFFFF) bool))

(* Prediction is a pure function of the (pc, taken) history: replaying
   the same trace into a fresh predictor of the same kind reproduces
   the correctness stream bit for bit. *)
let prop_replay_deterministic =
  QCheck.Test.make ~name:"replay is deterministic" ~count:100
    QCheck.(pair (int_bound 2) trace_arb)
    (fun (k, trace) ->
      let kind =
        match k with
        | 0 -> P.Two_level { entries = 64; history_bits = 6 }
        | 1 -> P.Static_taken
        | _ -> P.Perfect
      in
      let run () =
        let p = P.create kind in
        List.map (fun (pc, taken) -> P.predict_and_update p ~pc ~taken) trace
      in
      run () = run ())

(* The gshare index folds [pc lsr 2] into [entries] buckets, so two pcs
   that differ by a multiple of [entries * 4] are indistinguishable:
   aliasing is bounded by the index width alone.  Shifting every pc in
   a trace by such a multiple cannot change a single prediction. *)
let prop_aliasing_bounded_by_index_width =
  QCheck.Test.make ~name:"aliasing bounded by index width" ~count:100
    QCheck.(triple (int_range 1 64) (int_bound 4) trace_arb)
    (fun (k, extra_history, trace) ->
      let entries = 64 in
      let kind = P.Two_level { entries; history_bits = 4 + extra_history } in
      let run shift =
        let p = P.create kind in
        List.map
          (fun (pc, taken) -> P.predict_and_update p ~pc:(pc + shift) ~taken)
          trace
      in
      run 0 = run (k * entries * 4))

let prop_perfect_never_mispredicts =
  QCheck.Test.make ~name:"perfect predictor never mispredicts" ~count:100
    trace_arb
    (fun trace ->
      let p = P.create P.Perfect in
      List.for_all
        (fun (pc, taken) -> P.predict_and_update p ~pc ~taken)
        trace
      && (P.stats p).P.mispredicts = 0)

let () =
  Alcotest.run "bpu"
    [
      ( "predictor",
        [
          Alcotest.test_case "perfect" `Quick test_perfect;
          Alcotest.test_case "static" `Quick test_static;
          Alcotest.test_case "learns bias" `Quick test_two_level_learns_bias;
          Alcotest.test_case "learns pattern" `Quick test_two_level_learns_pattern;
          Alcotest.test_case "stats" `Quick test_stats_counting;
          Alcotest.test_case "validation" `Quick test_entries_power_of_two;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_replay_deterministic;
            prop_aliasing_bounded_by_index_width;
            prop_perfect_never_mispredicts;
          ] );
    ]
