(* Tests for the DFG and instruction-chain analysis. *)

module I = Isa.Instr
module Op = Isa.Opcode
module B = Prog.Block
module P = Prog.Program

let r = Isa.Reg.r

let mk uid ?dst ?(srcs = []) op = I.make ~uid ~opcode:op ?dst ~srcs ()

(* body: 0: r0 <- .          (root, fanout 3: 1,2,3)
         1: r1 <- r0
         2: r2 <- r0
         3: r3 <- r0, then overwritten chains
         4: r4 <- r1, r2     (joins two paths)
         5: r5 <- r4          *)
let diamond_trace () =
  let body =
    [|
      mk 0 ~dst:(r 0) Op.Alu;
      mk 1 ~dst:(r 1) ~srcs:[ r 0 ] Op.Alu;
      mk 2 ~dst:(r 2) ~srcs:[ r 0 ] Op.Alu;
      mk 3 ~dst:(r 3) ~srcs:[ r 0 ] Op.Alu;
      mk 4 ~dst:(r 4) ~srcs:[ r 1; r 2 ] Op.Alu;
      mk 5 ~dst:(r 5) ~srcs:[ r 4 ] Op.Alu;
    |]
  in
  let p =
    P.make ~entry:0 ~blocks:[ B.make ~id:0 ~func:0 ~body ~term:(B.Jump 0) ]
  in
  Prog.Trace.expand p ~seed:1 (Prog.Walk.path_visits p ~seed:1 ~visits:1)

let test_edges () =
  let t = diamond_trace () in
  let g = Dfg.of_events t in
  Alcotest.(check int) "root fanout" 3 (Dfg.fanout g 0);
  Alcotest.(check (list int)) "node 4 preds" [ 1; 2 ] (Dfg.node g 4).Dfg.preds;
  Alcotest.(check (list int)) "node 0 succs" [ 1; 2; 3 ] (Dfg.node g 0).Dfg.succs;
  Alcotest.(check (list int)) "roots" [ 0; 6 ] (Dfg.roots g)
(* node 6 is the synthetic jump terminator, an isolated root *)

let test_last_writer_semantics () =
  (* a second write to r0 redirects subsequent readers *)
  let body =
    [|
      mk 0 ~dst:(r 0) Op.Alu;
      mk 1 ~dst:(r 0) Op.Alu;
      mk 2 ~dst:(r 1) ~srcs:[ r 0 ] Op.Alu;
    |]
  in
  let p =
    P.make ~entry:0 ~blocks:[ B.make ~id:0 ~func:0 ~body ~term:(B.Jump 0) ]
  in
  let t = Prog.Trace.expand p ~seed:1 (Prog.Walk.path_visits p ~seed:1 ~visits:1) in
  let g = Dfg.of_events t in
  Alcotest.(check int) "old writer has no consumers" 0 (Dfg.fanout g 0);
  Alcotest.(check int) "new writer has the consumer" 1 (Dfg.fanout g 1)

let test_window () =
  let t = diamond_trace () in
  let g = Dfg.of_events ~lo:1 ~hi:4 t in
  Alcotest.(check int) "window size" 3 (Dfg.size g);
  (* within the window, producers outside are invisible: all roots *)
  Alcotest.(check (list int)) "all roots in window" [ 0; 1; 2 ] (Dfg.roots g)

let test_toposort () =
  let t = diamond_trace () in
  let g = Dfg.of_events t in
  Alcotest.(check (list int)) "stream order" [ 0; 1; 2; 3; 4; 5; 6 ]
    (Dfg.toposort g)

let test_high_fanout () =
  let t = diamond_trace () in
  let g = Dfg.of_events t in
  Alcotest.(check bool) "fanout 3 >= threshold 3" true
    (Dfg.is_high_fanout ~threshold:3 g 0);
  Alcotest.(check bool) "not at threshold 4" false
    (Dfg.is_high_fanout ~threshold:4 g 0)

let test_chain_gaps () =
  let t = diamond_trace () in
  let g = Dfg.of_events t in
  (* with threshold 2: node 0 (fanout 3) and node 4 (fanout 1)... only
     node 0 is high-fanout; its slice has no other critical node. *)
  let h = Dfg.chain_gaps ~threshold:2 g in
  Alcotest.(check int) "one critical node recorded" 1
    (Util.Dist.Histogram.count h);
  Alcotest.(check int) "no dependent critical" 1 (Util.Dist.Histogram.get h (-1))

(* ------------------------------ ICs -------------------------------- *)

let test_ic_enumerate () =
  let t = diamond_trace () in
  let g = Dfg.of_events t in
  let ics = Dfg.Ic.enumerate g in
  Alcotest.(check bool) "at least 2 ICs" true (List.length ics >= 2);
  List.iter
    (fun (ic : Dfg.Ic.t) ->
      Alcotest.(check bool) "every enumerated IC satisfies is_ic" true
        (Dfg.Ic.is_ic g ic.nodes))
    ics;
  (* the diamond join (node 4) requires both 1 and 2: a plain path
     0->1->4 is not independently schedulable *)
  Alcotest.(check bool) "0->1->4 is not an IC" false
    (Dfg.Ic.is_ic g [ 0; 1; 4 ])

let test_ic_prefixes () =
  let t = diamond_trace () in
  let g = Dfg.of_events t in
  let ic = { Dfg.Ic.nodes = [ 0; 1 ] } in
  Alcotest.(check bool) "prefix of IC is IC" true (Dfg.Ic.is_ic g ic.nodes);
  let three = { Dfg.Ic.nodes = [ 0; 1; 2 ] } in
  List.iter
    (fun (p : Dfg.Ic.t) ->
      Alcotest.(check bool) "prefixes are ICs" true (Dfg.Ic.is_ic g p.nodes))
    (Dfg.Ic.prefixes three)

let test_ic_criticality_and_spread () =
  let t = diamond_trace () in
  let g = Dfg.of_events t in
  let ic = { Dfg.Ic.nodes = [ 0; 3 ] } in
  Alcotest.(check (float 1e-9)) "avg fanout" 1.5 (Dfg.Ic.criticality g ic);
  Alcotest.(check int) "spread" 3 (Dfg.Ic.spread g ic)

let test_ic_max_len () =
  let t = diamond_trace () in
  let g = Dfg.of_events t in
  let ics = Dfg.Ic.enumerate ~max_len:1 g in
  List.iter
    (fun ic ->
      Alcotest.(check bool) "length capped" true (Dfg.Ic.length ic <= 1))
    ics

let test_ic_enumerate_greedy () =
  let t = diamond_trace () in
  let g = Dfg.of_events t in
  let ics = Dfg.Ic.enumerate_greedy g in
  List.iter
    (fun (ic : Dfg.Ic.t) ->
      Alcotest.(check bool) "greedy clusters satisfy is_ic" true
        (Dfg.Ic.is_ic g ic.nodes))
    ics;
  (* the cluster from node 0 absorbs the whole diamond *)
  let root_cluster =
    List.find (fun (ic : Dfg.Ic.t) -> List.hd ic.nodes = 0) ics
  in
  Alcotest.(check (list int)) "diamond fully absorbed" [ 0; 1; 2; 3; 4; 5 ]
    root_cluster.nodes

(* property: on random small programs every enumerated IC checks out *)
let arbitrary_trace =
  QCheck.make
    QCheck.Gen.(
      let* seed = int_range 0 10_000 in
      let* n = int_range 4 20 in
      let rng = Util.Rng.create seed in
      let body =
        Array.init n (fun i ->
            let dst = r (Util.Rng.int rng 8) in
            let srcs =
              if i = 0 || Util.Rng.bool rng then []
              else [ r (Util.Rng.int rng 8) ]
            in
            mk i ~dst ~srcs Op.Alu)
      in
      let p =
        P.make ~entry:0
          ~blocks:[ B.make ~id:0 ~func:0 ~body ~term:(B.Jump 0) ]
      in
      return
        (Prog.Trace.expand p ~seed
           (Prog.Walk.path_visits p ~seed ~visits:2)))

let prop_enumerated_ics_valid =
  QCheck.Test.make ~name:"enumerated ICs satisfy the IC property" ~count:200
    arbitrary_trace (fun t ->
      let g = Dfg.of_events t in
      List.for_all
        (fun (ic : Dfg.Ic.t) -> Dfg.Ic.is_ic g ic.nodes)
        (Dfg.Ic.enumerate ~max_paths:64 g)
      && List.for_all
           (fun (ic : Dfg.Ic.t) -> Dfg.Ic.is_ic g ic.nodes)
           (Dfg.Ic.enumerate_greedy g))

let prop_fanout_conserved =
  QCheck.Test.make ~name:"sum of fanouts = sum of in-degrees" ~count:200
    arbitrary_trace (fun t ->
      let g = Dfg.of_events t in
      let out = ref 0 and inn = ref 0 in
      Array.iter
        (fun (n : Dfg.node) ->
          out := !out + List.length n.Dfg.succs;
          inn := !inn + List.length n.Dfg.preds)
        (Dfg.nodes g);
      !out = !inn)

let () =
  Alcotest.run "dfg"
    [
      ( "graph",
        [
          Alcotest.test_case "edges" `Quick test_edges;
          Alcotest.test_case "last writer" `Quick test_last_writer_semantics;
          Alcotest.test_case "window" `Quick test_window;
          Alcotest.test_case "toposort" `Quick test_toposort;
          Alcotest.test_case "high fanout" `Quick test_high_fanout;
          Alcotest.test_case "chain gaps" `Quick test_chain_gaps;
        ] );
      ( "ic",
        [
          Alcotest.test_case "enumerate" `Quick test_ic_enumerate;
          Alcotest.test_case "prefixes" `Quick test_ic_prefixes;
          Alcotest.test_case "criticality & spread" `Quick
            test_ic_criticality_and_spread;
          Alcotest.test_case "max_len" `Quick test_ic_max_len;
          Alcotest.test_case "greedy clusters" `Quick test_ic_enumerate_greedy;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_enumerated_ics_valid; prop_fanout_conserved ] );
    ]
