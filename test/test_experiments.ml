(* Tests for the experiment harness and the cheap experiment entries.
   The full figure suite runs in bench/main.exe; here we verify the
   machinery: caching, registry completeness, rendering and the worked
   example's result. *)

let test_registry_complete () =
  let ids = List.map (fun (e : Experiments.entry) -> e.id) Experiments.all in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " registered") true (List.mem id ids))
    [ "tab1"; "tab2"; "fig1"; "fig2"; "fig3"; "fig5"; "fig8"; "fig10";
      "fig11"; "fig12"; "fig13"; "ablations" ];
  Alcotest.(check bool) "find works" true (Experiments.find "fig10" <> None);
  Alcotest.(check bool) "find rejects unknown" true
    (Experiments.find "fig99" = None)

let test_tables_render () =
  let t1 = Experiments.Tables.table_i () in
  let t2 = Experiments.Tables.table_ii () in
  Alcotest.(check bool) "table I non-empty" true (String.length t1 > 100);
  Alcotest.(check bool) "table II non-empty" true (String.length t2 > 100)

let test_worked_example () =
  let c = Experiments.Worked_example.example () in
  Alcotest.(check bool) "chain-first is faster" true (c.saved_cycles > 0);
  Alcotest.(check bool) "schedules complete" true
    (c.fanout_first.cycles > 0 && c.chain_first.cycles > 0);
  let rendered = Experiments.Worked_example.render c in
  Alcotest.(check bool) "render non-empty" true (String.length rendered > 100)

let test_scheduler_respects_deps () =
  (* node 1 depends on node 0: it can never issue in cycle 0 *)
  let s =
    Experiments.Worked_example.schedule ~width:2 ~preds:[| []; [ 0 ] |]
      ~priority:(fun i -> i)
      ()
  in
  Alcotest.(check int) "two cycles" 2 s.cycles;
  (match s.order with
  | (0, first) :: _ ->
    Alcotest.(check (list int)) "only root in cycle 0" [ 0 ] first
  | _ -> Alcotest.fail "no schedule");
  (* all nodes issued exactly once *)
  let issued = List.concat_map snd s.order in
  Alcotest.(check (list int)) "all issued" [ 0; 1 ] (List.sort compare issued)

let test_harness_caches () =
  let h = Experiments.Harness.create ~instrs:10_000 () in
  let app = Option.get (Workload.Apps.find "Music") in
  let t0 = Unix.gettimeofday () in
  let a = Experiments.Harness.stats h app Critics.Scheme.Baseline in
  let cold = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  let b = Experiments.Harness.stats h app Critics.Scheme.Baseline in
  let warm = Unix.gettimeofday () -. t1 in
  Alcotest.(check int) "same result" a.cycles b.cycles;
  Alcotest.(check bool) "cached lookup much faster" true
    (warm < cold /. 10.0 || warm < 0.001)

let test_harness_speedup_zero_for_baseline () =
  let h = Experiments.Harness.create ~instrs:10_000 () in
  let app = Option.get (Workload.Apps.find "Music") in
  Alcotest.(check (float 1e-9)) "baseline speedup is zero" 0.0
    (Experiments.Harness.speedup h app Critics.Scheme.Baseline)

let test_parallel_determinism () =
  (* The acceptance bar for the batch engine: a jobs=4 harness must
     produce stat-for-stat identical results to a jobs=1 harness. *)
  let apps =
    List.map
      (fun n -> Option.get (Workload.Apps.find n))
      [ "Music"; "lbm" ]
  in
  let schemes =
    [ Critics.Scheme.Baseline; Critics.Scheme.Critic; Critics.Scheme.Hoist ]
  in
  let jobs_list =
    List.concat_map
      (fun app -> List.map (Experiments.Harness.job app) schemes)
      apps
  in
  let seq = Experiments.Harness.create ~instrs:8_000 ~jobs:1 () in
  let par = Experiments.Harness.create ~instrs:8_000 ~jobs:4 () in
  Experiments.Harness.run_batch seq jobs_list;
  Experiments.Harness.run_batch par jobs_list;
  List.iter
    (fun app ->
      List.iter
        (fun scheme ->
          let a = Experiments.Harness.stats seq app scheme in
          let b = Experiments.Harness.stats par app scheme in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s identical" app.Workload.Profile.name
               (Critics.Scheme.name scheme))
            true (a = b))
        schemes)
    apps

let test_memo_key_uses_config () =
  (* Regression: a custom ?config without a distinguishing name used to
     collide with the default entry in the memo table, returning stale
     table-I stats for the custom machine (and vice versa). *)
  let h = Experiments.Harness.create ~instrs:8_000 () in
  let app = Option.get (Workload.Apps.find "Music") in
  let default_stats = Experiments.Harness.stats h app Critics.Scheme.Baseline in
  let custom = { Pipeline.Config.table_i with iq = 8 } in
  let custom_stats =
    Experiments.Harness.stats h ~config:custom app Critics.Scheme.Baseline
  in
  Alcotest.(check bool) "custom config not served stale default stats" true
    (custom_stats.Pipeline.Stats.cycles <> default_stats.Pipeline.Stats.cycles);
  let direct =
    Critics.Run.stats ~config:custom
      (Experiments.Harness.context h app)
      Critics.Scheme.Baseline
  in
  Alcotest.(check int) "memoized custom stats match a direct run"
    direct.Pipeline.Stats.cycles custom_stats.Pipeline.Stats.cycles;
  (* default entry must be untouched by the custom run *)
  let again = Experiments.Harness.stats h app Critics.Scheme.Baseline in
  Alcotest.(check int) "default entry untouched" default_stats.cycles
    again.cycles;
  (* structurally-equal configs share one memo entry regardless of the
     caller-supplied label: same physical record comes back *)
  let renamed_stats =
    Experiments.Harness.stats h ~config_name:"copy"
      ~config:Pipeline.Config.table_i app Critics.Scheme.Baseline
  in
  Alcotest.(check bool) "equal configs share one memo entry" true
    (renamed_stats == again)

let test_policy_lab_default_cell_shares_memo () =
  (* The policy lab's (lru, next_line) machine is structurally equal to
     table_i, so its cells must come from the same memo entries as a
     plain default-machine run — the sweep's anchor row is the baseline
     row, bit for bit, not a re-simulation that could drift. *)
  Alcotest.(check bool) "policy-lab registered" true
    (Experiments.find "policy-lab" <> None);
  let default_config =
    Experiments.Policy_lab.config Mem.Replacement.Lru Mem.Hierarchy.Ip_next_line
  in
  Alcotest.(check bool) "default cell config equals table_i" true
    (default_config = Pipeline.Config.table_i);
  let h = Experiments.Harness.create ~instrs:8_000 () in
  let app = Option.get (Workload.Apps.find "Music") in
  let plain = Experiments.Harness.stats h app Critics.Scheme.Baseline in
  let cell =
    Experiments.Harness.stats h ~config:default_config app
      Critics.Scheme.Baseline
  in
  Alcotest.(check bool) "same memo entry (physical equality)" true
    (cell == plain)

let test_policy_lab_runs_small () =
  let h = Experiments.Harness.create ~instrs:6_000 () in
  let apps = [ Option.get (Workload.Apps.find "Music") ] in
  let r = Experiments.Policy_lab.run ~apps h in
  Alcotest.(check int) "12 cells (4 policies x 3 prefetchers)" 12
    (List.length r.Experiments.Policy_lab.cells);
  let default_cell =
    List.find
      (fun (c : Experiments.Policy_lab.cell) ->
        c.policy = Mem.Replacement.Lru && c.prefetch = Mem.Hierarchy.Ip_next_line)
      r.cells
  in
  Alcotest.(check (float 1e-9)) "default cell retention is 1 (or 0/0)"
    (if default_cell.speedup = 0.0 then 0.0 else 1.0)
    default_cell.retention;
  Alcotest.(check int) "one opportunity row" 1
    (List.length r.Experiments.Policy_lab.opps);
  let o = List.hd r.opps in
  Alcotest.(check bool) "predictable <= misses" true
    (o.Experiments.Policy_lab.predictable <= o.Experiments.Policy_lab.misses);
  let rendered = Experiments.Policy_lab.render r in
  Alcotest.(check bool) "render non-empty" true (String.length rendered > 100);
  let json = Experiments.Policy_lab.to_json r in
  Alcotest.(check bool) "json mentions cells" true
    (String.length json > 100
    && String.sub json 0 12 = "{ \"cells\": [")

let test_suites_structure () =
  Alcotest.(check int) "three suites" 3 (List.length Experiments.Harness.suites);
  List.iter
    (fun (name, apps) ->
      Alcotest.(check bool) (name ^ " non-empty") true (apps <> []))
    Experiments.Harness.suites

let () =
  Alcotest.run "experiments"
    [
      ( "machinery",
        [
          Alcotest.test_case "registry" `Quick test_registry_complete;
          Alcotest.test_case "tables" `Quick test_tables_render;
          Alcotest.test_case "worked example" `Quick test_worked_example;
          Alcotest.test_case "scheduler deps" `Quick test_scheduler_respects_deps;
          Alcotest.test_case "harness caching" `Quick test_harness_caches;
          Alcotest.test_case "baseline speedup" `Quick
            test_harness_speedup_zero_for_baseline;
          Alcotest.test_case "suites" `Quick test_suites_structure;
        ] );
      ( "batch engine",
        [
          Alcotest.test_case "parallel = sequential" `Quick
            test_parallel_determinism;
          Alcotest.test_case "memo key uses config" `Quick
            test_memo_key_uses_config;
        ] );
      ( "policy lab",
        [
          Alcotest.test_case "default cell shares memo" `Quick
            test_policy_lab_default_cell_shares_memo;
          Alcotest.test_case "small sweep" `Quick test_policy_lab_runs_small;
        ] );
    ]
