(* Tests for the experiment harness and the cheap experiment entries.
   The full figure suite runs in bench/main.exe; here we verify the
   machinery: caching, registry completeness, rendering and the worked
   example's result. *)

let test_registry_complete () =
  let ids = List.map (fun (e : Experiments.entry) -> e.id) Experiments.all in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " registered") true (List.mem id ids))
    [ "tab1"; "tab2"; "fig1"; "fig2"; "fig3"; "fig5"; "fig8"; "fig10";
      "fig11"; "fig12"; "fig13"; "ablations" ];
  Alcotest.(check bool) "find works" true (Experiments.find "fig10" <> None);
  Alcotest.(check bool) "find rejects unknown" true
    (Experiments.find "fig99" = None)

let test_tables_render () =
  let t1 = Experiments.Tables.table_i () in
  let t2 = Experiments.Tables.table_ii () in
  Alcotest.(check bool) "table I non-empty" true (String.length t1 > 100);
  Alcotest.(check bool) "table II non-empty" true (String.length t2 > 100)

let test_worked_example () =
  let c = Experiments.Worked_example.example () in
  Alcotest.(check bool) "chain-first is faster" true (c.saved_cycles > 0);
  Alcotest.(check bool) "schedules complete" true
    (c.fanout_first.cycles > 0 && c.chain_first.cycles > 0);
  let rendered = Experiments.Worked_example.render c in
  Alcotest.(check bool) "render non-empty" true (String.length rendered > 100)

let test_scheduler_respects_deps () =
  (* node 1 depends on node 0: it can never issue in cycle 0 *)
  let s =
    Experiments.Worked_example.schedule ~width:2 ~preds:[| []; [ 0 ] |]
      ~priority:(fun i -> i)
      ()
  in
  Alcotest.(check int) "two cycles" 2 s.cycles;
  (match s.order with
  | (0, first) :: _ ->
    Alcotest.(check (list int)) "only root in cycle 0" [ 0 ] first
  | _ -> Alcotest.fail "no schedule");
  (* all nodes issued exactly once *)
  let issued = List.concat_map snd s.order in
  Alcotest.(check (list int)) "all issued" [ 0; 1 ] (List.sort compare issued)

let test_harness_caches () =
  let h = Experiments.Harness.create ~instrs:10_000 () in
  let app = Option.get (Workload.Apps.find "Music") in
  let t0 = Unix.gettimeofday () in
  let a = Experiments.Harness.stats h app Critics.Scheme.Baseline in
  let cold = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  let b = Experiments.Harness.stats h app Critics.Scheme.Baseline in
  let warm = Unix.gettimeofday () -. t1 in
  Alcotest.(check int) "same result" a.cycles b.cycles;
  Alcotest.(check bool) "cached lookup much faster" true
    (warm < cold /. 10.0 || warm < 0.001)

let test_harness_speedup_zero_for_baseline () =
  let h = Experiments.Harness.create ~instrs:10_000 () in
  let app = Option.get (Workload.Apps.find "Music") in
  Alcotest.(check (float 1e-9)) "baseline speedup is zero" 0.0
    (Experiments.Harness.speedup h app Critics.Scheme.Baseline)

let test_suites_structure () =
  Alcotest.(check int) "three suites" 3 (List.length Experiments.Harness.suites);
  List.iter
    (fun (name, apps) ->
      Alcotest.(check bool) (name ^ " non-empty") true (apps <> []))
    Experiments.Harness.suites

let () =
  Alcotest.run "experiments"
    [
      ( "machinery",
        [
          Alcotest.test_case "registry" `Quick test_registry_complete;
          Alcotest.test_case "tables" `Quick test_tables_render;
          Alcotest.test_case "worked example" `Quick test_worked_example;
          Alcotest.test_case "scheduler deps" `Quick test_scheduler_respects_deps;
          Alcotest.test_case "harness caching" `Quick test_harness_caches;
          Alcotest.test_case "baseline speedup" `Quick
            test_harness_speedup_zero_for_baseline;
          Alcotest.test_case "suites" `Quick test_suites_structure;
        ] );
    ]
