(* Golden statistics of the cycle simulator.

   Each entry is the MD5 of the marshalled [Pipeline.Stats.t] that the
   pre-streaming engine (commit 2344d12, which materialized the whole
   trace and allocated one slot per event) produced for an
   (app, scheme, machine-variant) triple at a 6000-instruction budget.
   The windowed streaming engine must reproduce every one bit for bit:
   these digests are the recorded-seed contract that O(window)
   recycling, the batch cursor and the scheme cache changed *nothing*
   observable.

   If an intentional semantic change to the simulator ever invalidates
   them, regenerate with the same loop as [cases] below, printing
   [digest (Critics.Run.stats ~config ctx scheme)] per case. *)

let digest (st : Pipeline.Stats.t) =
  Digest.to_hex (Digest.string (Marshal.to_string st []))

let golden =
  [
    ("Acrobat", "baseline", "table_i", "49933c833a1d353408309a48c812486c");
    ("Acrobat", "baseline", "2x_fd", "5969a765bfeb5e3692d2279406bd438b");
    ("Acrobat", "baseline", "4x_icache+backend_prio", "7a0501576323547b2d5105119df6d9f6");
    ("Acrobat", "baseline", "narrow2", "f3769926bd59edc3e27d3758ca8d2c25");
    ("Acrobat", "baseline", "free_cdp+efetch", "49933c833a1d353408309a48c812486c");
    ("Acrobat", "baseline", "perfect_bp+clp", "3339e007696a920f92b532513cb4233e");
    ("Acrobat", "baseline", "wrong_path", "c8dc03b26fbd62b132b3f3884b4b5763");
    ("Acrobat", "critic", "table_i", "6d1adc44993869918195f4e83735d757");
    ("Acrobat", "critic", "2x_fd", "72e191c5566d5c80e22bcfd0a0d14f11");
    ("Acrobat", "critic", "4x_icache+backend_prio", "50358f8b1e464f0b572c03406d036e12");
    ("Acrobat", "critic", "narrow2", "6686ab47f1e7af714da37626b6f911f4");
    ("Acrobat", "critic", "free_cdp+efetch", "73ebef736d732c5138b45e804386d698");
    ("Acrobat", "critic", "perfect_bp+clp", "39e7263c5ae95de7adbbdfc0215c46ba");
    ("Acrobat", "critic", "wrong_path", "4f91cae06ca6938ca2b007ed2ee27561");
    ("Acrobat", "opp16+critic", "table_i", "f921ac8d12586ef03bac495e85d5e9e0");
    ("Acrobat", "opp16+critic", "2x_fd", "e10706d15f0006d9e8be94831a14eed9");
    ("Acrobat", "opp16+critic", "4x_icache+backend_prio", "88a122081b65b96228ac227d5a8adb5c");
    ("Acrobat", "opp16+critic", "narrow2", "4ddc01fc68e6939fe6e9a0de0e4c40ae");
    ("Acrobat", "opp16+critic", "free_cdp+efetch", "e2f88e0c4c0113689fafc242a49e9050");
    ("Acrobat", "opp16+critic", "perfect_bp+clp", "53768a29e13aa462c646adc3e1a641b6");
    ("Acrobat", "opp16+critic", "wrong_path", "90b18e0ab2c004af2e9dc4b9627dc73a");
    ("Music", "baseline", "table_i", "d33787c6c35b0c938a0b1285b736eb7a");
    ("Music", "baseline", "2x_fd", "d4e1f6ab546dc3f75ddae9f988590667");
    ("Music", "baseline", "4x_icache+backend_prio", "d3698ab9ff04cf65dd444f44e42ca072");
    ("Music", "baseline", "narrow2", "0c004886fde63d8694842de6f5f4717f");
    ("Music", "baseline", "free_cdp+efetch", "d33787c6c35b0c938a0b1285b736eb7a");
    ("Music", "baseline", "perfect_bp+clp", "310d7eed0c24cc2c8923638fb4e8fb0e");
    ("Music", "baseline", "wrong_path", "2e39033fa8044d6960b2f823b62c3d52");
    ("Music", "critic", "table_i", "3f78d843fbc94107a8384f5c7512f0f0");
    ("Music", "critic", "2x_fd", "e160b7def8079495b067e63a541e4d4e");
    ("Music", "critic", "4x_icache+backend_prio", "4b97760480f24965a42f1fff9c45d43d");
    ("Music", "critic", "narrow2", "e3601cc46a92da4bd282e187fc306240");
    ("Music", "critic", "free_cdp+efetch", "a5f4a86fdbda20e41165e3a73133d554");
    ("Music", "critic", "perfect_bp+clp", "34be58f0244f26bc414dbd60acdb1785");
    ("Music", "critic", "wrong_path", "47c6edb04370db19221f5781f1f5a751");
    ("Music", "opp16+critic", "table_i", "e701473e3c7f07299ffcc5e7e08e0859");
    ("Music", "opp16+critic", "2x_fd", "d2581117acbd3f3bb62bf035c8ddba3b");
    ("Music", "opp16+critic", "4x_icache+backend_prio", "aefa76587aa7f9ef22db8917f08741c2");
    ("Music", "opp16+critic", "narrow2", "eaee765b45785e1cc183aa68ff3220f6");
    ("Music", "opp16+critic", "free_cdp+efetch", "f544f32df93a88c805a32be16acc86e1");
    ("Music", "opp16+critic", "perfect_bp+clp", "e56df2cb4c1af622e446aee1b6bcedd0");
    ("Music", "opp16+critic", "wrong_path", "5938dd04dad377effb00e0dd1eca4dfa");
    ("lbm", "baseline", "table_i", "3b0c9772abb73d90dc13d62ab7b1403a");
    ("lbm", "baseline", "2x_fd", "2c8d586953bcca239af015ba7c0c9780");
    ("lbm", "baseline", "4x_icache+backend_prio", "01cf52e3c11f42b01d51b7cbd2f928c4");
    ("lbm", "baseline", "narrow2", "0a1ccda3de5229c4de3b3218ecb93bbc");
    ("lbm", "baseline", "free_cdp+efetch", "3b0c9772abb73d90dc13d62ab7b1403a");
    ("lbm", "baseline", "perfect_bp+clp", "d04e24aaec3f39c3a69a6c2b38ae3175");
    ("lbm", "baseline", "wrong_path", "2b7dc19c6aa36fb2b672195d18ba646b");
    ("lbm", "critic", "table_i", "d4f014cb4947667cbd9dd9147b43d05f");
    ("lbm", "critic", "2x_fd", "85e41505df37114134c70a75a815a293");
    ("lbm", "critic", "4x_icache+backend_prio", "819898737b1be65caed324a0740de10f");
    ("lbm", "critic", "narrow2", "59bae7fc1e40ea5ecffec430aff6ab15");
    ("lbm", "critic", "free_cdp+efetch", "569177a212c7aa3ae5e68dd51b93258c");
    ("lbm", "critic", "perfect_bp+clp", "a362196a7834359599a0bea10cfdd707");
    ("lbm", "critic", "wrong_path", "0ee4b4e4741560c3ab454babbe6a0dea");
    ("lbm", "opp16+critic", "table_i", "d0af99f466120c688e3d265745723034");
    ("lbm", "opp16+critic", "2x_fd", "46d71a0e9c1b326b0c07ad99c4bb6738");
    ("lbm", "opp16+critic", "4x_icache+backend_prio", "bdc6c0ec849f50d77cd5b1406ff83ff9");
    ("lbm", "opp16+critic", "narrow2", "32f000fbab38d2748f5084cd6e19ef6a");
    ("lbm", "opp16+critic", "free_cdp+efetch", "6de579cf0917caa86e64338db70fee80");
    ("lbm", "opp16+critic", "perfect_bp+clp", "ee3d71168c232d9cf44ceba49eb013ac");
    ("lbm", "opp16+critic", "wrong_path", "04f9f00b58f5794d5a8ade5098fc1562");
  ]

let schemes =
  [
    Critics.Scheme.Baseline; Critics.Scheme.Critic; Critics.Scheme.Opp16_critic;
  ]

(* CRITICS_TELEMETRY=1 re-runs the whole suite with a cycle-attribution
   probe attached to every simulation.  The digests must not change:
   the probe is observational, and this is the proof at golden-contract
   strength.  CI runs the suite both ways. *)
let probe () =
  match Sys.getenv_opt "CRITICS_TELEMETRY" with
  | None | Some "" | Some "0" -> None
  | Some _ -> Some (Telemetry.Probe.create ~window:256 ())

let cases () =
  List.concat_map
    (fun app ->
      let ctx =
        Critics.Run.prepare ~instrs:6_000
          (Option.get (Workload.Apps.find app))
      in
      List.concat_map
        (fun scheme ->
          List.map
            (fun (cname, config) ->
              ( app,
                Critics.Scheme.name scheme,
                cname,
                digest (Critics.Run.stats ~config ?probe:(probe ()) ctx scheme) ))
            Oracle.Differential.configs)
        schemes)
    [ "Acrobat"; "Music"; "lbm" ]

let test_stats_match_recorded_engine () =
  let actual = cases () in
  Alcotest.(check int) "case count" (List.length golden) (List.length actual);
  List.iter2
    (fun (app, scheme, cfg, want) (app', scheme', cfg', got) ->
      Alcotest.(check (triple string string string))
        "case identity" (app, scheme, cfg) (app', scheme', cfg');
      Alcotest.(check string)
        (Printf.sprintf "%s/%s/%s stats digest" app scheme cfg)
        want got)
    golden actual

let () =
  Alcotest.run "golden"
    [
      ( "windowed engine vs recorded stats",
        [
          Alcotest.test_case "63 (app x scheme x config) digests" `Slow
            test_stats_match_recorded_engine;
        ] );
    ]
