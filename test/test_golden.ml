(* Golden statistics of the cycle simulator.

   Each entry is the MD5 of the marshalled [Pipeline.Stats.t] that the
   pre-streaming engine (commit 2344d12, which materialized the whole
   trace and allocated one slot per event) produced for an
   (app, scheme, machine-variant) triple at a 6000-instruction budget.
   The windowed streaming engine must reproduce every one bit for bit:
   these digests are the recorded-seed contract that O(window)
   recycling, the batch cursor and the scheme cache changed *nothing*
   observable.

   If an intentional semantic change to the simulator ever invalidates
   them, regenerate by running this suite with CRITICS_GOLDEN_PRINT=1:
   each table is printed as ready-to-paste OCaml tuples instead of
   asserted.

   One such regeneration has happened: the five lbm/perfect_bp+clp
   entries changed when the prefetch-fill victim bug was fixed (a
   critical-load prefetch fill that evicted a dirty L1d line used to
   drop the writeback the L2 should absorb; lbm under clp is the one
   recorded workload that actually evicts dirty lines through that
   path at the 6000-instruction budget).  All other entries — in
   particular every table_i row — are the original seed recordings,
   still reproduced bit for bit. *)

(* The digest marshals a projection tuple of the fields [Stats.t] had
   when the tables were recorded, in their declaration order.  Records
   and tuples share a heap representation (tag-0 block, fields in
   order), so the marshalled bytes — and hence every recorded hex
   digest — are identical to marshalling the seed-era record, while the
   fields appended since (fetch_bytes, fetch_groups: purely additive
   counters) stay outside the recorded contract. *)
let digest (st : Pipeline.Stats.t) =
  let projection =
    ( st.cycles,
      st.committed_total,
      st.committed_work,
      st.thumb_committed,
      st.cdp_markers,
      st.critical_count,
      st.fetch_idle_supply,
      st.fetch_idle_backpressure,
      st.stage_all,
      st.stage_critical,
      st.stage_chain,
      st.bpu,
      st.l1i,
      st.l1d,
      st.l2,
      st.dram,
      st.efetch_predictions,
      st.efetch_correct )
  in
  Digest.to_hex (Digest.string (Marshal.to_string projection []))

let golden =
  [
    ("Acrobat", "baseline", "table_i", "49933c833a1d353408309a48c812486c");
    ("Acrobat", "baseline", "2x_fd", "5969a765bfeb5e3692d2279406bd438b");
    ("Acrobat", "baseline", "4x_icache+backend_prio", "7a0501576323547b2d5105119df6d9f6");
    ("Acrobat", "baseline", "narrow2", "f3769926bd59edc3e27d3758ca8d2c25");
    ("Acrobat", "baseline", "free_cdp+efetch", "49933c833a1d353408309a48c812486c");
    ("Acrobat", "baseline", "perfect_bp+clp", "3339e007696a920f92b532513cb4233e");
    ("Acrobat", "baseline", "wrong_path", "c8dc03b26fbd62b132b3f3884b4b5763");
    ("Acrobat", "critic", "table_i", "6d1adc44993869918195f4e83735d757");
    ("Acrobat", "critic", "2x_fd", "72e191c5566d5c80e22bcfd0a0d14f11");
    ("Acrobat", "critic", "4x_icache+backend_prio", "50358f8b1e464f0b572c03406d036e12");
    ("Acrobat", "critic", "narrow2", "6686ab47f1e7af714da37626b6f911f4");
    ("Acrobat", "critic", "free_cdp+efetch", "73ebef736d732c5138b45e804386d698");
    ("Acrobat", "critic", "perfect_bp+clp", "39e7263c5ae95de7adbbdfc0215c46ba");
    ("Acrobat", "critic", "wrong_path", "4f91cae06ca6938ca2b007ed2ee27561");
    ("Acrobat", "opp16+critic", "table_i", "f921ac8d12586ef03bac495e85d5e9e0");
    ("Acrobat", "opp16+critic", "2x_fd", "e10706d15f0006d9e8be94831a14eed9");
    ("Acrobat", "opp16+critic", "4x_icache+backend_prio", "88a122081b65b96228ac227d5a8adb5c");
    ("Acrobat", "opp16+critic", "narrow2", "4ddc01fc68e6939fe6e9a0de0e4c40ae");
    ("Acrobat", "opp16+critic", "free_cdp+efetch", "e2f88e0c4c0113689fafc242a49e9050");
    ("Acrobat", "opp16+critic", "perfect_bp+clp", "53768a29e13aa462c646adc3e1a641b6");
    ("Acrobat", "opp16+critic", "wrong_path", "90b18e0ab2c004af2e9dc4b9627dc73a");
    ("Music", "baseline", "table_i", "d33787c6c35b0c938a0b1285b736eb7a");
    ("Music", "baseline", "2x_fd", "d4e1f6ab546dc3f75ddae9f988590667");
    ("Music", "baseline", "4x_icache+backend_prio", "d3698ab9ff04cf65dd444f44e42ca072");
    ("Music", "baseline", "narrow2", "0c004886fde63d8694842de6f5f4717f");
    ("Music", "baseline", "free_cdp+efetch", "d33787c6c35b0c938a0b1285b736eb7a");
    ("Music", "baseline", "perfect_bp+clp", "310d7eed0c24cc2c8923638fb4e8fb0e");
    ("Music", "baseline", "wrong_path", "2e39033fa8044d6960b2f823b62c3d52");
    ("Music", "critic", "table_i", "3f78d843fbc94107a8384f5c7512f0f0");
    ("Music", "critic", "2x_fd", "e160b7def8079495b067e63a541e4d4e");
    ("Music", "critic", "4x_icache+backend_prio", "4b97760480f24965a42f1fff9c45d43d");
    ("Music", "critic", "narrow2", "e3601cc46a92da4bd282e187fc306240");
    ("Music", "critic", "free_cdp+efetch", "a5f4a86fdbda20e41165e3a73133d554");
    ("Music", "critic", "perfect_bp+clp", "34be58f0244f26bc414dbd60acdb1785");
    ("Music", "critic", "wrong_path", "47c6edb04370db19221f5781f1f5a751");
    ("Music", "opp16+critic", "table_i", "e701473e3c7f07299ffcc5e7e08e0859");
    ("Music", "opp16+critic", "2x_fd", "d2581117acbd3f3bb62bf035c8ddba3b");
    ("Music", "opp16+critic", "4x_icache+backend_prio", "aefa76587aa7f9ef22db8917f08741c2");
    ("Music", "opp16+critic", "narrow2", "eaee765b45785e1cc183aa68ff3220f6");
    ("Music", "opp16+critic", "free_cdp+efetch", "f544f32df93a88c805a32be16acc86e1");
    ("Music", "opp16+critic", "perfect_bp+clp", "e56df2cb4c1af622e446aee1b6bcedd0");
    ("Music", "opp16+critic", "wrong_path", "5938dd04dad377effb00e0dd1eca4dfa");
    ("lbm", "baseline", "table_i", "3b0c9772abb73d90dc13d62ab7b1403a");
    ("lbm", "baseline", "2x_fd", "2c8d586953bcca239af015ba7c0c9780");
    ("lbm", "baseline", "4x_icache+backend_prio", "01cf52e3c11f42b01d51b7cbd2f928c4");
    ("lbm", "baseline", "narrow2", "0a1ccda3de5229c4de3b3218ecb93bbc");
    ("lbm", "baseline", "free_cdp+efetch", "3b0c9772abb73d90dc13d62ab7b1403a");
    ("lbm", "baseline", "perfect_bp+clp", "b0a4d522a5139e5cbbd4f9e0bbaac11c");
    ("lbm", "baseline", "wrong_path", "2b7dc19c6aa36fb2b672195d18ba646b");
    ("lbm", "critic", "table_i", "d4f014cb4947667cbd9dd9147b43d05f");
    ("lbm", "critic", "2x_fd", "85e41505df37114134c70a75a815a293");
    ("lbm", "critic", "4x_icache+backend_prio", "819898737b1be65caed324a0740de10f");
    ("lbm", "critic", "narrow2", "59bae7fc1e40ea5ecffec430aff6ab15");
    ("lbm", "critic", "free_cdp+efetch", "569177a212c7aa3ae5e68dd51b93258c");
    ("lbm", "critic", "perfect_bp+clp", "74ef7ab2c44e017b9bc00a92292404b4");
    ("lbm", "critic", "wrong_path", "0ee4b4e4741560c3ab454babbe6a0dea");
    ("lbm", "opp16+critic", "table_i", "d0af99f466120c688e3d265745723034");
    ("lbm", "opp16+critic", "2x_fd", "46d71a0e9c1b326b0c07ad99c4bb6738");
    ("lbm", "opp16+critic", "4x_icache+backend_prio", "bdc6c0ec849f50d77cd5b1406ff83ff9");
    ("lbm", "opp16+critic", "narrow2", "32f000fbab38d2748f5084cd6e19ef6a");
    ("lbm", "opp16+critic", "free_cdp+efetch", "6de579cf0917caa86e64338db70fee80");
    ("lbm", "opp16+critic", "perfect_bp+clp", "e938d564991bcd8ff587fa55c0b55fbd");
    ("lbm", "opp16+critic", "wrong_path", "04f9f00b58f5794d5a8ade5098fc1562");
  ]

let schemes =
  [
    Critics.Scheme.Baseline; Critics.Scheme.Critic; Critics.Scheme.Opp16_critic;
  ]

(* The hybrid pass lists the nanopass refactor added (PR 7), recorded
   the day they landed with the same loop at the same 6000-instruction
   budget.  [critic.reorder] digests are identical to [critic]'s above
   — narrow-before-hoist produces the same program (the passes
   commute), and the equality is asserted structurally below, not just
   recorded. *)
let golden_hybrid =
  [
    ("Acrobat", "narrow.only", "table_i", "655097d94aacc7fd42bfb90c0787e5f8");
    ("Acrobat", "narrow.only", "2x_fd", "abf8e17d744ed072d6eb55677f1d6d0a");
    ("Acrobat", "narrow.only", "4x_icache+backend_prio", "e21a8ea8dcd14f876164d0a8ae1dbba1");
    ("Acrobat", "narrow.only", "narrow2", "bebe25b50e928e614013f1a570f9643f");
    ("Acrobat", "narrow.only", "free_cdp+efetch", "f5fcc6566e93e69354644d4f37ba56ce");
    ("Acrobat", "narrow.only", "perfect_bp+clp", "ac0f5c87dc260c09c15757c843b340f1");
    ("Acrobat", "narrow.only", "wrong_path", "318d4afb107102e4f84d1b0d8b476010");
    ("Acrobat", "critic.reorder", "table_i", "6d1adc44993869918195f4e83735d757");
    ("Acrobat", "critic.reorder", "2x_fd", "72e191c5566d5c80e22bcfd0a0d14f11");
    ("Acrobat", "critic.reorder", "4x_icache+backend_prio", "50358f8b1e464f0b572c03406d036e12");
    ("Acrobat", "critic.reorder", "narrow2", "6686ab47f1e7af714da37626b6f911f4");
    ("Acrobat", "critic.reorder", "free_cdp+efetch", "73ebef736d732c5138b45e804386d698");
    ("Acrobat", "critic.reorder", "perfect_bp+clp", "39e7263c5ae95de7adbbdfc0215c46ba");
    ("Acrobat", "critic.reorder", "wrong_path", "4f91cae06ca6938ca2b007ed2ee27561");
    ("Music", "narrow.only", "table_i", "59f2eec26eeb8504512d3db5abba66eb");
    ("Music", "narrow.only", "2x_fd", "1366d33e6e4b5ef151dc6ba05384aa2c");
    ("Music", "narrow.only", "4x_icache+backend_prio", "7b965e18b1c8dcdaa3e5e79c0b54d565");
    ("Music", "narrow.only", "narrow2", "8dfdb47e24969edbeff44ef1d7d46423");
    ("Music", "narrow.only", "free_cdp+efetch", "77f4ab88552d221981071511955c1740");
    ("Music", "narrow.only", "perfect_bp+clp", "dc5eba380fb1625ebaf9af097eccdf24");
    ("Music", "narrow.only", "wrong_path", "5dca06724b3f136e4ec04993596d366b");
    ("Music", "critic.reorder", "table_i", "3f78d843fbc94107a8384f5c7512f0f0");
    ("Music", "critic.reorder", "2x_fd", "e160b7def8079495b067e63a541e4d4e");
    ("Music", "critic.reorder", "4x_icache+backend_prio", "4b97760480f24965a42f1fff9c45d43d");
    ("Music", "critic.reorder", "narrow2", "e3601cc46a92da4bd282e187fc306240");
    ("Music", "critic.reorder", "free_cdp+efetch", "a5f4a86fdbda20e41165e3a73133d554");
    ("Music", "critic.reorder", "perfect_bp+clp", "34be58f0244f26bc414dbd60acdb1785");
    ("Music", "critic.reorder", "wrong_path", "47c6edb04370db19221f5781f1f5a751");
    ("lbm", "narrow.only", "table_i", "ab5b4f65cfc666cce999ef1b90d053b1");
    ("lbm", "narrow.only", "2x_fd", "544ba3c2420758d7c988f14c6c8adae9");
    ("lbm", "narrow.only", "4x_icache+backend_prio", "fbf805214920a36b075f56100a3fa619");
    ("lbm", "narrow.only", "narrow2", "15eb5e26612ee919bf07ec4c25a2a067");
    ("lbm", "narrow.only", "free_cdp+efetch", "7cbd2918431a1587cc59d65585fe58dc");
    ("lbm", "narrow.only", "perfect_bp+clp", "01eff21e971dab189312429825f46b35");
    ("lbm", "narrow.only", "wrong_path", "889f3a33de5b7637f6b18ab69e7f229c");
    ("lbm", "critic.reorder", "table_i", "d4f014cb4947667cbd9dd9147b43d05f");
    ("lbm", "critic.reorder", "2x_fd", "85e41505df37114134c70a75a815a293");
    ("lbm", "critic.reorder", "4x_icache+backend_prio", "819898737b1be65caed324a0740de10f");
    ("lbm", "critic.reorder", "narrow2", "59bae7fc1e40ea5ecffec430aff6ab15");
    ("lbm", "critic.reorder", "free_cdp+efetch", "569177a212c7aa3ae5e68dd51b93258c");
    ("lbm", "critic.reorder", "perfect_bp+clp", "74ef7ab2c44e017b9bc00a92292404b4");
    ("lbm", "critic.reorder", "wrong_path", "0ee4b4e4741560c3ab454babbe6a0dea");
  ]

let hybrid_schemes =
  [ Critics.Scheme.Narrow_only; Critics.Scheme.Critic_reorder ]

(* Non-default i-cache replacement policies (PR 10), recorded the day
   the policy laboratory landed, same loop and 6000-instruction budget.
   Two machines: Table I with SRRIP, and with TRRIP (whose fill hints
   come from the profiler's block-heat tiers via Run.heat).  These lock
   the RRIP family against silent drift the same way the tables above
   lock the engine; the reference-model properties in test_mem lock the
   policies against their specs. *)
(* Music and lbm never fill an L1i set at this budget, so the policy is
   never consulted and their digests equal the LRU recordings above —
   the equality is itself part of the contract (invalid-way preference
   stays policy-independent).  Acrobat's i-side working set does evict:
   its srrip digests diverge from table_i's, as does critic under trrip
   (baseline under trrip happens to pick the same victims as LRU at
   this budget). *)
let golden_policy =
  [
    ("Acrobat", "baseline", "srrip_i", "00082a0fe28faf4a5da7071f810aac72");
    ("Acrobat", "baseline", "trrip_i", "49933c833a1d353408309a48c812486c");
    ("Acrobat", "critic", "srrip_i", "ef8b40dabfbd8277023671be0145c600");
    ("Acrobat", "critic", "trrip_i", "bd0a22d05f32636ca58d225b028649a5");
    ("Music", "baseline", "srrip_i", "9ec6091ef9bbf1f144546267bccfe309");
    ("Music", "baseline", "trrip_i", "9ec6091ef9bbf1f144546267bccfe309");
    ("Music", "critic", "srrip_i", "8575238a4352ff267ef33b0fc9f26808");
    ("Music", "critic", "trrip_i", "8575238a4352ff267ef33b0fc9f26808");
    ("lbm", "baseline", "srrip_i", "3b0c9772abb73d90dc13d62ab7b1403a");
    ("lbm", "baseline", "trrip_i", "3b0c9772abb73d90dc13d62ab7b1403a");
    ("lbm", "critic", "srrip_i", "d4f014cb4947667cbd9dd9147b43d05f");
    ("lbm", "critic", "trrip_i", "d4f014cb4947667cbd9dd9147b43d05f");
  ]

let policy_configs =
  let with_policy p =
    {
      Pipeline.Config.table_i with
      mem = { Pipeline.Config.table_i.mem with Mem.Hierarchy.l1i_policy = p };
    }
  in
  [
    ("srrip_i", with_policy Mem.Replacement.Srrip);
    ("trrip_i", with_policy Mem.Replacement.Trrip);
  ]

let policy_schemes = [ Critics.Scheme.Baseline; Critics.Scheme.Critic ]

(* CRITICS_TELEMETRY=1 re-runs the whole suite with a cycle-attribution
   probe attached to every simulation.  The digests must not change:
   the probe is observational, and this is the proof at golden-contract
   strength.  CI runs the suite both ways. *)
let probe () =
  match Sys.getenv_opt "CRITICS_TELEMETRY" with
  | None | Some "" | Some "0" -> None
  | Some _ -> Some (Telemetry.Probe.create ~window:256 ())

let cases ~configs schemes =
  List.concat_map
    (fun app ->
      let ctx =
        Critics.Run.prepare ~instrs:6_000
          (Option.get (Workload.Apps.find app))
      in
      List.concat_map
        (fun scheme ->
          List.map
            (fun (cname, config) ->
              ( app,
                Critics.Scheme.name scheme,
                cname,
                digest (Critics.Run.stats ~config ?probe:(probe ()) ctx scheme) ))
            configs)
        schemes)
    [ "Acrobat"; "Music"; "lbm" ]

let cases_for schemes = cases ~configs:Oracle.Differential.configs schemes

(* Regeneration mode: CRITICS_GOLDEN_PRINT=1 prints each table as
   ready-to-paste OCaml tuples instead of asserting, so an intentional
   semantic change updates the contract with one run. *)
let print_mode () =
  match Sys.getenv_opt "CRITICS_GOLDEN_PRINT" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let check_table golden actual =
  if print_mode () then
    List.iter
      (fun (app, scheme, cfg, d) ->
        Printf.printf "    (%S, %S, %S, %S);\n" app scheme cfg d)
      actual
  else begin
    Alcotest.(check int) "case count" (List.length golden) (List.length actual);
    List.iter2
      (fun (app, scheme, cfg, want) (app', scheme', cfg', got) ->
        Alcotest.(check (triple string string string))
          "case identity" (app, scheme, cfg) (app', scheme', cfg');
        Alcotest.(check string)
          (Printf.sprintf "%s/%s/%s stats digest" app scheme cfg)
          want got)
      golden actual
  end

let test_stats_match_recorded_engine () =
  check_table golden (cases_for schemes)

let test_policy_machines_match_recorded () =
  check_table golden_policy (cases ~configs:policy_configs policy_schemes)

let test_hybrid_schemes_match_recorded () =
  let actual = cases_for hybrid_schemes in
  check_table golden_hybrid actual;
  (* Structural half of the commuting claim: every critic.reorder
     digest must equal the recorded critic digest for the same
     (app, config) — not merely match its own recording. *)
  if not (print_mode ()) then
    List.iter
      (fun (app, scheme, cfg, got) ->
        if scheme = "critic.reorder" then
          match
            List.find_opt
              (fun (a, s, c, _) -> a = app && s = "critic" && c = cfg)
              golden
          with
          | Some (_, _, _, want) ->
            Alcotest.(check string)
              (Printf.sprintf "%s/critic.reorder/%s equals critic" app cfg)
              want got
          | None ->
            Alcotest.failf "no recorded critic digest for %s/%s" app cfg)
      actual

let () =
  Alcotest.run "golden"
    [
      ( "windowed engine vs recorded stats",
        [
          Alcotest.test_case "63 (app x scheme x config) digests" `Slow
            test_stats_match_recorded_engine;
          Alcotest.test_case "42 hybrid-scheme digests" `Slow
            test_hybrid_schemes_match_recorded;
          Alcotest.test_case "12 policy-machine digests" `Slow
            test_policy_machines_match_recorded;
        ] );
    ]
