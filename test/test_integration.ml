(* End-to-end integration tests over the public Critics facade, plus
   the qualitative shape assertions of DESIGN.md §5. *)

let instrs = 40_000

let mobile_ctx =
  lazy (Critics.Run.prepare ~instrs (Option.get (Workload.Apps.find "Acrobat")))

let spec_ctx =
  lazy (Critics.Run.prepare ~instrs (Option.get (Workload.Apps.find "lbm")))

let test_all_schemes_run () =
  let ctx = Lazy.force mobile_ctx in
  let base = Critics.Run.stats ctx Critics.Scheme.Baseline in
  List.iter
    (fun scheme ->
      let st = Critics.Run.stats ctx scheme in
      Alcotest.(check bool)
        (Critics.Scheme.name scheme ^ " completes")
        true (st.cycles > 0);
      Alcotest.(check int)
        (Critics.Scheme.name scheme ^ " preserves work")
        base.committed_work st.committed_work)
    Critics.Scheme.all

let test_speedup_sane () =
  let ctx = Lazy.force mobile_ctx in
  let base = Critics.Run.stats ctx Critics.Scheme.Baseline in
  List.iter
    (fun scheme ->
      let s = Critics.Run.speedup ~base (Critics.Run.stats ctx scheme) in
      Alcotest.(check bool)
        (Critics.Scheme.name scheme ^ " within sane range")
        true
        (s > -0.5 && s < 1.0))
    Critics.Scheme.all

let test_critic_beats_hoist_on_mobile () =
  let ctx = Lazy.force mobile_ctx in
  let base = Critics.Run.stats ctx Critics.Scheme.Baseline in
  let hoist =
    Critics.Run.speedup ~base (Critics.Run.stats ctx Critics.Scheme.Hoist)
  in
  let critic =
    Critics.Run.speedup ~base (Critics.Run.stats ctx Critics.Scheme.Critic)
  in
  Alcotest.(check bool) "critic positive" true (critic > 0.0);
  Alcotest.(check bool) "critic > hoist" true (critic > hoist)

let test_critic_converts_selectively () =
  let ctx = Lazy.force mobile_ctx in
  let critic = Critics.Run.stats ctx Critics.Scheme.Critic in
  let opp16 = Critics.Run.stats ctx Critics.Scheme.Opp16 in
  Alcotest.(check bool) "critic converts far fewer instructions" true
    (critic.thumb_committed * 3 < opp16.thumb_committed)

let test_baselines_shape () =
  (* single-instruction criticality: helps SPEC, not mobile *)
  let spec = Lazy.force spec_ctx in
  let mobile = Lazy.force mobile_ctx in
  let speedup_with config ctx =
    let base = Critics.Run.stats ctx Critics.Scheme.Baseline in
    Critics.Run.speedup ~base
      (Critics.Run.stats ~config ctx Critics.Scheme.Baseline)
  in
  let prefetch =
    Critics.Pipeline.Config.with_critical_load_prefetch
      Critics.Pipeline.Config.table_i
  in
  let spec_gain = speedup_with prefetch spec in
  let mobile_gain = speedup_with prefetch mobile in
  Alcotest.(check bool) "prefetching helps SPEC" true (spec_gain > 0.02);
  Alcotest.(check bool) "prefetching does little for mobile" true
    (mobile_gain < spec_gain /. 2.0)

let test_fetch_bound_contrast () =
  let mobile = Critics.Run.stats (Lazy.force mobile_ctx) Critics.Scheme.Baseline in
  let spec = Critics.Run.stats (Lazy.force spec_ctx) Critics.Scheme.Baseline in
  let supply_share (s : Critics.Pipeline.Stats.t) =
    float_of_int s.fetch_idle_supply /. float_of_int s.cycles
  in
  let backpressure_share (s : Critics.Pipeline.Stats.t) =
    float_of_int s.fetch_idle_backpressure /. float_of_int s.cycles
  in
  Alcotest.(check bool) "mobile is fetch-supply bound vs SPEC" true
    (supply_share mobile > supply_share spec);
  Alcotest.(check bool) "SPEC is backpressure bound vs mobile" true
    (backpressure_share spec > backpressure_share mobile)

let test_energy_breakdown () =
  let ctx = Lazy.force mobile_ctx in
  let base = Critics.Run.stats ctx Critics.Scheme.Baseline in
  let b = Critics.Energy.Model.of_stats base in
  let parts = b.cpu +. b.icache +. b.dcache +. b.l2 +. b.dram +. b.rest in
  Alcotest.(check (float 1e-6)) "breakdown sums to total" b.total parts;
  let critic = Critics.Run.stats ctx Critics.Scheme.Critic in
  let saving = Critics.Run.energy ~base critic in
  Alcotest.(check bool) "system saving consistent with components" true
    (abs_float
       (saving.system
       -. (saving.cpu_contrib +. saving.icache_contrib
          +. saving.memory_contrib +. saving.rest_contrib
          +. ((base.l1d.accesses - critic.l1d.accesses |> float_of_int) *. 0.0)))
    < 0.02)

let test_macro_ideal_upper_bound () =
  let ctx = Lazy.force mobile_ctx in
  let base = Critics.Run.stats ctx Critics.Scheme.Baseline in
  let macro = Critics.Run.stats ctx Critics.Scheme.Macro_ideal in
  (* the fused chains preserve the work and never add instructions *)
  Alcotest.(check int) "work preserved" base.committed_work
    macro.committed_work;
  Alcotest.(check int) "no cdp markers in macro mode" 0 macro.cdp_markers;
  Alcotest.(check bool) "macro bound at least baseline" true
    (Critics.Run.speedup ~base macro > -0.02)

let test_scheme_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check bool) "of_string roundtrips" true
        (Critics.Scheme.of_string (Critics.Scheme.name s) = Some s))
    Critics.Scheme.all;
  Alcotest.(check bool) "unknown scheme" true
    (Critics.Scheme.of_string "nope" = None)

let test_apps_table () =
  Alcotest.(check int) "10 mobile apps" 10 (List.length Workload.Apps.mobile);
  Alcotest.(check int) "8 spec int" 8 (List.length Workload.Apps.spec_int);
  Alcotest.(check int) "8 spec float" 8 (List.length Workload.Apps.spec_float);
  List.iter
    (fun (p : Workload.Profile.t) -> Workload.Profile.validate p)
    Workload.Apps.all;
  (* names unique *)
  let names = List.map (fun (p : Workload.Profile.t) -> p.name) Workload.Apps.all in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_characterize () =
  let ctx = Lazy.force mobile_ctx in
  let c =
    Workload.Characterize.of_trace
      (Critics.Run.trace_of ctx Critics.Scheme.Baseline)
  in
  Alcotest.(check bool) "mix sums to ~1" true
    (abs_float (List.fold_left (fun a (_, v) -> a +. v) 0.0 c.mix -. 1.0)
    < 1e-6);
  Alcotest.(check bool) "alu dominates a mobile app" true
    (fst (List.hd c.mix) = "alu");
  Alcotest.(check bool) "code footprint positive" true
    (c.touched_code_bytes > 0);
  Alcotest.(check bool) "render non-empty" true
    (String.length (Workload.Characterize.render c) > 100)

let test_samples_differ () =
  let app = Option.get (Workload.Apps.find "Music") in
  let a = Critics.Run.prepare ~instrs:10_000 ~sample:0 app in
  let b = Critics.Run.prepare ~instrs:10_000 ~sample:1 app in
  Alcotest.(check bool) "samples take different paths" true
    (a.path <> b.path);
  (* same program in both samples *)
  Alcotest.(check int) "same code" 
    (Prog.Program.instr_count a.program)
    (Prog.Program.instr_count b.program)

let test_transform_cache () =
  (* A fresh context so counts aren't polluted by the shared lazies. *)
  let ctx =
    Critics.Run.prepare ~instrs:5_000
      (Option.get (Workload.Apps.find "Music"))
  in
  Alcotest.(check int) "no transforms yet" 0 (Critics.Run.transform_count ctx);
  let a = Critics.Run.stats ctx Critics.Scheme.Baseline in
  let b = Critics.Run.stats ctx Critics.Scheme.Critic in
  (* alternating back to an already-transformed scheme must hit the
     cache, and baseline must never occupy a slot *)
  let a' = Critics.Run.stats ctx Critics.Scheme.Baseline in
  let b' = Critics.Run.stats ctx Critics.Scheme.Critic in
  Alcotest.(check int) "critic pipeline ran exactly once" 1
    (Critics.Run.transform_count ctx);
  Alcotest.(check int) "baseline reproducible" a.cycles a'.cycles;
  Alcotest.(check int) "critic reproducible" b.cycles b'.cycles

let test_find_case_insensitive () =
  Alcotest.(check bool) "lowercase lookup" true
    (Workload.Apps.find "acrobat" <> None);
  Alcotest.(check bool) "unknown app" true (Workload.Apps.find "nope" = None)

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "all schemes run" `Slow test_all_schemes_run;
          Alcotest.test_case "speedups sane" `Slow test_speedup_sane;
          Alcotest.test_case "critic > hoist (mobile)" `Slow
            test_critic_beats_hoist_on_mobile;
          Alcotest.test_case "selective conversion" `Slow
            test_critic_converts_selectively;
          Alcotest.test_case "baseline shape" `Slow test_baselines_shape;
          Alcotest.test_case "fetch-bound contrast" `Slow
            test_fetch_bound_contrast;
          Alcotest.test_case "energy breakdown" `Slow test_energy_breakdown;
          Alcotest.test_case "macro ideal" `Slow test_macro_ideal_upper_bound;
        ] );
      ( "api",
        [
          Alcotest.test_case "scheme roundtrip" `Quick test_scheme_roundtrip;
          Alcotest.test_case "apps table" `Quick test_apps_table;
          Alcotest.test_case "characterize" `Slow test_characterize;
          Alcotest.test_case "samples differ" `Quick test_samples_differ;
          Alcotest.test_case "transform cache" `Slow test_transform_cache;
          Alcotest.test_case "find" `Quick test_find_case_insensitive;
        ] );
    ]
