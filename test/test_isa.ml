(* Tests for the ISA library: registers, opcode classes, instructions
   and the Thumb-convertibility rules the CritIC pass relies on. *)

module Reg = Isa.Reg
module Op = Isa.Opcode
module I = Isa.Instr

let test_reg_bounds () =
  Alcotest.check_raises "negative register"
    (Invalid_argument "Reg.r: index out of range") (fun () ->
      ignore (Reg.r (-1)));
  Alcotest.check_raises "register 16"
    (Invalid_argument "Reg.r: index out of range") (fun () ->
      ignore (Reg.r 16));
  Alcotest.(check int) "pc is r15" 15 (Reg.index Reg.pc);
  Alcotest.(check int) "sp is r13" 13 (Reg.index Reg.sp);
  Alcotest.(check int) "lr is r14" 14 (Reg.index Reg.lr)

let test_thumb_addressable () =
  Alcotest.(check bool) "r10 ok" true (Reg.thumb_addressable (Reg.r 10));
  Alcotest.(check bool) "r11 not" false (Reg.thumb_addressable (Reg.r 11));
  Alcotest.(check bool) "r0 ok" true (Reg.thumb_addressable (Reg.r 0))

let test_latencies () =
  Alcotest.(check int) "alu 1" 1 (Op.exec_latency Op.Alu);
  Alcotest.(check bool) "div long" true (Op.is_long_latency Op.Div);
  Alcotest.(check bool) "alu short" false (Op.is_long_latency Op.Alu);
  List.iter
    (fun op ->
      Alcotest.(check bool)
        (Op.to_string op ^ " has positive latency")
        true
        (Op.exec_latency op > 0))
    Op.all

let test_opcode_classes () =
  Alcotest.(check bool) "load is memory" true (Op.is_memory Op.Load);
  Alcotest.(check bool) "store is memory" true (Op.is_memory Op.Store);
  Alcotest.(check bool) "alu not memory" false (Op.is_memory Op.Alu);
  Alcotest.(check bool) "branch is control" true (Op.is_control Op.Branch);
  Alcotest.(check bool) "call is control" true (Op.is_control Op.Call);
  Alcotest.(check bool) "cdp not thumb-expressible" false
    (Op.thumb_expressible Op.Cdp_switch)

let mk ?dst ?(srcs = []) ?cond ?encoding ?mem op =
  I.make ~uid:1 ~opcode:op ?dst ~srcs ?cond ?encoding ?mem ()

let test_sizes () =
  Alcotest.(check int) "arm32 is 4 bytes" 4 (I.size_bytes (mk Op.Alu));
  Alcotest.(check int) "thumb is 2 bytes" 2
    (I.size_bytes (mk ~encoding:I.Thumb16 ~dst:(Reg.r 1) Op.Alu))

let test_thumb_convertibility () =
  let plain = mk ~dst:(Reg.r 2) ~srcs:[ Reg.r 3 ] Op.Alu in
  Alcotest.(check bool) "plain convertible" true (I.thumb_convertible plain);
  let predicated = mk ~dst:(Reg.r 2) ~cond:I.Ne Op.Alu in
  Alcotest.(check bool) "predicated not" false (I.thumb_convertible predicated);
  let high = mk ~dst:(Reg.r 12) Op.Alu in
  Alcotest.(check bool) "high dst not" false (I.thumb_convertible high);
  let high_src = mk ~dst:(Reg.r 2) ~srcs:[ Reg.r 11 ] Op.Alu in
  Alcotest.(check bool) "high src not" false (I.thumb_convertible high_src)

let test_make_rejects_bad_thumb () =
  Alcotest.check_raises "thumb predicated rejected"
    (Invalid_argument "Instr.make: instruction not representable in Thumb16")
    (fun () -> ignore (mk ~cond:I.Ne ~encoding:I.Thumb16 Op.Alu))

let test_make_rejects_mem_on_alu () =
  let mem = { I.region = 0; stride = 4; working_set = 64; randomness = 0.0 } in
  Alcotest.check_raises "mem on alu rejected"
    (Invalid_argument "Instr.make: memory signature on non-memory opcode")
    (fun () -> ignore (mk ~mem Op.Alu))

let test_with_encoding () =
  let plain = mk ~dst:(Reg.r 2) Op.Alu in
  let t = I.with_encoding I.Thumb16 plain in
  Alcotest.(check int) "converted size" 2 (I.size_bytes t);
  Alcotest.check_raises "refuses unconvertible"
    (Invalid_argument "Instr.with_encoding: not Thumb-convertible")
    (fun () -> ignore (I.with_encoding I.Thumb16 (mk ~cond:I.Ne Op.Alu)))

let test_force_thumb () =
  let predicated = mk ~cond:I.Ne ~dst:(Reg.r 2) Op.Alu in
  let forced = I.force_thumb predicated in
  Alcotest.(check int) "forced to 2 bytes" 2 (I.size_bytes forced)

let test_cdp () =
  let c = I.cdp ~uid:9 ~following:5 in
  Alcotest.(check int) "cdp occupies 16 bits" 2 (I.size_bytes c);
  Alcotest.(check int) "count recorded" 5 c.cdp_count;
  Alcotest.check_raises "max 9"
    (Invalid_argument "Instr.cdp: a single CDP announces 1..9 instructions")
    (fun () -> ignore (I.cdp ~uid:1 ~following:10));
  Alcotest.check_raises "min 1"
    (Invalid_argument "Instr.cdp: a single CDP announces 1..9 instructions")
    (fun () -> ignore (I.cdp ~uid:1 ~following:0))

let test_regs_read_written () =
  let store = mk ~dst:(Reg.r 1) ~srcs:[ Reg.r 2 ] Op.Store in
  Alcotest.(check int) "store reads data+addr" 2
    (List.length (I.regs_read store));
  Alcotest.(check int) "store writes nothing" 0
    (List.length (I.regs_written store));
  let alu = mk ~dst:(Reg.r 1) ~srcs:[ Reg.r 2 ] Op.Alu in
  Alcotest.(check int) "alu writes dst" 1 (List.length (I.regs_written alu))

let test_structural_key () =
  let a = mk ~dst:(Reg.r 1) ~srcs:[ Reg.r 2 ] Op.Alu in
  let b = I.with_uid 999 a in
  Alcotest.(check string) "key ignores uid" (I.structural_key a)
    (I.structural_key b);
  let c = mk ~dst:(Reg.r 3) ~srcs:[ Reg.r 2 ] Op.Alu in
  Alcotest.(check bool) "key sees operands" false
    (I.structural_key a = I.structural_key c)

(* ------------------------- encode / decode ------------------------ *)

module E = Isa.Encode
module D = Isa.Decode

let ok_or_fail label = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: %s" label msg

let test_encode_formats () =
  let i = mk ~dst:(Reg.r 2) ~srcs:[ Reg.r 3; Reg.r 4 ] Op.Alu in
  let h = ok_or_fail "encode16" (E.encode16 i) in
  Alcotest.(check bool) "halfword in range" true (h >= 0 && h <= 0xFFFF);
  let w = ok_or_fail "encode32" (E.encode32 i) in
  Alcotest.(check bool) "word in range" true (w >= 0 && w <= 0xFFFFFFFF);
  (* ARM32 predication is encodable; Thumb16 is not. *)
  let p = mk ~dst:(Reg.r 2) ~cond:I.Ne Op.Alu in
  Alcotest.(check bool) "predicated 32-bit ok" true
    (Result.is_ok (E.encode32 p));
  Alcotest.(check bool) "predicated 16-bit rejected" true
    (Result.is_error (E.encode16 p));
  (* The rejection reasons name the violated constraint. *)
  (match E.encode16 (mk ~dst:(Reg.r 12) Op.Alu) with
  | Error msg ->
    Alcotest.(check bool) "names the operand range" true
      (String.length msg > 0)
  | Ok _ -> Alcotest.fail "r12 must not encode in 16 bits");
  Alcotest.(check bool) "3 sources rejected in 16-bit" true
    (Result.is_error
       (E.encode16 (mk ~srcs:[ Reg.r 1; Reg.r 2; Reg.r 3 ] Op.Alu)))

let test_encode_bytes_length () =
  let arm = mk ~dst:(Reg.r 2) Op.Alu in
  let b = ok_or_fail "encode arm32" (E.encode arm) in
  Alcotest.(check int) "arm32 wire length" (I.size_bytes arm)
    (String.length b);
  let thumb = I.with_encoding I.Thumb16 arm in
  let b16 = ok_or_fail "encode thumb16" (E.encode thumb) in
  Alcotest.(check int) "thumb16 wire length" (I.size_bytes thumb)
    (String.length b16);
  (* force_thumb creates hypothetical re-encodings: the tag claims a
     width but no real encoder can honour it. *)
  let forced = I.force_thumb (mk ~cond:I.Ne ~dst:(Reg.r 2) Op.Alu) in
  Alcotest.(check int) "forced keeps claimed width" 2 (I.size_bytes forced);
  Alcotest.(check bool) "forced has no wire bytes" true
    (Result.is_error (E.encode forced))

let test_cdp_roundtrip () =
  let c = I.cdp ~uid:3 ~following:7 in
  let h = ok_or_fail "encode cdp" (E.encode16 c) in
  let d = ok_or_fail "decode cdp" (D.decode16 h) in
  Alcotest.(check bool) "cdp opcode" true (d.D.d_opcode = Op.Cdp_switch);
  Alcotest.(check int) "cdp count survives" 7 d.D.d_cdp_count;
  (* Counts outside 1..9 have no encoding: low nibble 9..15 rejects. *)
  Alcotest.(check bool) "count-10 halfword rejected" true
    (Result.is_error (D.decode16 0xF009))

let test_lut_totality () =
  (match D.check_total () with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "check_total: %s" msg);
  Alcotest.(check int) "256 entries" 256 (Array.length D.thumb_lut);
  (* Exhaustive sweep: every halfword either decodes or returns a
     reasoned error — never an exception, never an empty reason. *)
  for h = 0 to 0xFFFF do
    match D.decode16 h with
    | Ok _ -> ()
    | Error msg ->
      if String.length msg = 0 then
        Alcotest.failf "halfword %04x: empty rejection reason" h
  done

(* qcheck: instruction generator over the legal space *)
let arbitrary_instr =
  let open QCheck.Gen in
  let gen =
    let* opcode =
      oneofl [ Op.Alu; Op.Alu_shift; Op.Mul; Op.Load; Op.Store; Op.Fp_add ]
    in
    let* dst = int_range 0 12 in
    let* src = int_range 0 12 in
    let* pred = bool in
    let mem =
      if Op.is_memory opcode then
        Some { I.region = 0; stride = 8; working_set = 128; randomness = 0.0 }
      else None
    in
    return
      (I.make ~uid:0 ~opcode ~dst:(Reg.r dst) ~srcs:[ Reg.r src ]
         ~cond:(if pred then I.Ne else I.Always)
         ?mem ())
  in
  QCheck.make gen

let prop_convertible_iff =
  QCheck.Test.make ~name:"thumb_convertible matches the rule" ~count:500
    arbitrary_instr (fun i ->
      let expected =
        (not (I.is_predicated i))
        && Op.thumb_expressible i.opcode
        && List.for_all Reg.thumb_addressable (i.srcs @ Option.to_list i.dst)
      in
      I.thumb_convertible i = expected)

let prop_roundtrip_encoding =
  QCheck.Test.make ~name:"convertible instrs roundtrip encodings" ~count:500
    arbitrary_instr (fun i ->
      QCheck.assume (I.thumb_convertible i);
      let t = I.with_encoding I.Thumb16 i in
      let back = I.with_encoding I.Arm32 t in
      I.size_bytes t = 2 && I.size_bytes back = 4
      && I.structural_key back = I.structural_key i)

(* A wider generator for the wire formats: full register range (so
   operand-range rejects are exercised), 0-3 sources, every condition
   code. *)
let arbitrary_wire_instr =
  let open QCheck.Gen in
  let gen =
    let* opcode =
      oneofl
        [ Op.Alu; Op.Alu_shift; Op.Mul; Op.Load; Op.Store; Op.Fp_add;
          Op.Fp_mul ]
    in
    let* dst = int_range 0 15 in
    let* nsrcs = int_range 0 3 in
    let* srcs = list_repeat nsrcs (int_range 0 15) in
    let* cond = oneofl [ I.Always; I.Eq; I.Ne; I.Ge; I.Lt; I.Gt; I.Le ] in
    let mem =
      if Op.is_memory opcode then
        Some { I.region = 0; stride = 8; working_set = 128; randomness = 0.0 }
      else None
    in
    return
      (I.make ~uid:0 ~opcode ~dst:(Reg.r dst) ~srcs:(List.map Reg.r srcs)
         ~cond ?mem ())
  in
  QCheck.make gen

let prop_decode16_inverts_encode16 =
  QCheck.Test.make ~name:"decode16 inverts encode16" ~count:1000
    arbitrary_wire_instr (fun i ->
      match E.encode16 i with
      | Error _ -> QCheck.assume_fail ()
      | Ok h -> (
        match D.decode16 h with
        | Error msg ->
          QCheck.Test.fail_reportf "encoded %04x does not decode: %s" h msg
        | Ok d ->
          d.D.d_opcode = i.opcode && d.D.d_cond = I.Always
          && d.D.d_dst = i.dst && d.D.d_srcs = i.srcs && d.D.d_cdp_count = 0))

let prop_decode32_inverts_encode32 =
  QCheck.Test.make ~name:"decode32 inverts encode32" ~count:1000
    arbitrary_wire_instr (fun i ->
      match E.encode32 i with
      | Error msg -> QCheck.Test.fail_reportf "32-bit encode failed: %s" msg
      | Ok w -> (
        match D.decode32 w with
        | Error msg ->
          QCheck.Test.fail_reportf "encoded %08x does not decode: %s" w msg
        | Ok d ->
          d.D.d_opcode = i.opcode && d.D.d_cond = i.cond && d.D.d_dst = i.dst
          && d.D.d_srcs = i.srcs))

let prop_decode_bytes_inverts_encode =
  QCheck.Test.make ~name:"decode_bytes inverts encode" ~count:1000
    arbitrary_wire_instr (fun i ->
      match E.encode i with
      | Error _ -> QCheck.assume_fail ()
      | Ok bytes -> (
        String.length bytes = I.size_bytes i
        &&
        match D.decode_bytes bytes with
        | Error _ -> false
        | Ok d -> d.D.d_opcode = i.opcode && d.D.d_dst = i.dst))

let prop_encoder_is_the_convertibility_predicate =
  QCheck.Test.make
    ~name:"Encode.thumb_convertible agrees with the structural predicate"
    ~count:1000 arbitrary_wire_instr (fun i ->
      E.thumb_convertible i = I.thumb_convertible i
      && I.thumb_convertible i = Result.is_ok (E.encode16 i))

let prop_nonconvertible_rejected =
  QCheck.Test.make ~name:"non-convertible instrs fail the 16-bit encoder"
    ~count:1000 arbitrary_wire_instr (fun i ->
      QCheck.assume (not (I.thumb_convertible i));
      match E.encode16 i with
      | Error msg -> String.length msg > 0
      | Ok _ -> false)

let () =
  Alcotest.run "isa"
    [
      ( "reg",
        [
          Alcotest.test_case "bounds" `Quick test_reg_bounds;
          Alcotest.test_case "thumb addressable" `Quick test_thumb_addressable;
        ] );
      ( "opcode",
        [
          Alcotest.test_case "latencies" `Quick test_latencies;
          Alcotest.test_case "classes" `Quick test_opcode_classes;
        ] );
      ( "instr",
        [
          Alcotest.test_case "sizes" `Quick test_sizes;
          Alcotest.test_case "thumb convertibility" `Quick test_thumb_convertibility;
          Alcotest.test_case "make rejects bad thumb" `Quick test_make_rejects_bad_thumb;
          Alcotest.test_case "make rejects mem on alu" `Quick test_make_rejects_mem_on_alu;
          Alcotest.test_case "with_encoding" `Quick test_with_encoding;
          Alcotest.test_case "force_thumb" `Quick test_force_thumb;
          Alcotest.test_case "cdp" `Quick test_cdp;
          Alcotest.test_case "regs read/written" `Quick test_regs_read_written;
          Alcotest.test_case "structural key" `Quick test_structural_key;
        ] );
      ( "encode/decode",
        [
          Alcotest.test_case "wire formats" `Quick test_encode_formats;
          Alcotest.test_case "wire length = size_bytes" `Quick
            test_encode_bytes_length;
          Alcotest.test_case "cdp marker roundtrip" `Quick test_cdp_roundtrip;
          Alcotest.test_case "LUT totality (65536 halfwords)" `Quick
            test_lut_totality;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_convertible_iff; prop_roundtrip_encoding;
            prop_decode16_inverts_encode16; prop_decode32_inverts_encode32;
            prop_decode_bytes_inverts_encode;
            prop_encoder_is_the_convertibility_predicate;
            prop_nonconvertible_rejected;
          ] );
    ]
