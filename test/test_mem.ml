(* Tests for the memory hierarchy: caches, DRAM, prefetchers. *)

module C = Mem.Cache
module D = Mem.Dram
module H = Mem.Hierarchy
module SP = Mem.Stride_prefetcher

let mk_cache ?(size = 1024) ?(assoc = 2) ?(line = 64) () =
  C.create ~name:"t" ~size_bytes:size ~assoc ~line_bytes:line

let test_geometry () =
  let c = mk_cache () in
  Alcotest.(check int) "sets" 8 (C.sets c);
  Alcotest.(check int) "assoc" 2 (C.assoc c);
  Alcotest.check_raises "bad line"
    (Invalid_argument "Cache.create: line_bytes must be a power of two")
    (fun () -> ignore (C.create ~name:"x" ~size_bytes:1024 ~assoc:2 ~line_bytes:48))

let test_hit_after_fill () =
  let c = mk_cache () in
  Alcotest.(check bool) "first access misses" false (C.access c 0x1000);
  Alcotest.(check bool) "second access hits" true (C.access c 0x1000);
  Alcotest.(check bool) "same line hits" true (C.access c 0x103F);
  Alcotest.(check bool) "next line misses" false (C.access c 0x1040)

let test_lru_eviction () =
  (* 2-way, 8 sets, 64B lines: addresses 0, 8*64, 16*64 map to set 0 *)
  let c = mk_cache () in
  let a0 = 0 and a1 = 8 * 64 and a2 = 16 * 64 in
  ignore (C.access c a0);
  ignore (C.access c a1);
  ignore (C.access c a0); (* a0 now MRU; a1 is LRU *)
  ignore (C.access c a2); (* evicts a1 *)
  Alcotest.(check bool) "a0 survives" true (C.probe c a0);
  Alcotest.(check bool) "a1 evicted" false (C.probe c a1);
  Alcotest.(check bool) "a2 resident" true (C.probe c a2)

let test_probe_no_side_effect () =
  let c = mk_cache () in
  ignore (C.probe c 0x2000);
  Alcotest.(check int) "probe not counted" 0 (C.stats c).C.accesses;
  Alcotest.(check bool) "probe does not fill" false (C.probe c 0x2000)

let test_stats () =
  let c = mk_cache () in
  ignore (C.access c 0);
  ignore (C.access c 0);
  ignore (C.access c 64);
  let s = C.stats c in
  Alcotest.(check int) "accesses" 3 s.C.accesses;
  Alcotest.(check int) "hits" 1 s.C.hits;
  Alcotest.(check int) "misses" 2 s.C.misses;
  Alcotest.(check (float 1e-9)) "miss rate" (2.0 /. 3.0) (C.miss_rate c)

let test_fill_is_prefetch () =
  let c = mk_cache () in
  C.fill c 0x3000;
  let s = C.stats c in
  Alcotest.(check int) "prefetch fill counted" 1 s.C.prefetch_fills;
  Alcotest.(check int) "no access counted" 0 s.C.accesses;
  Alcotest.(check bool) "line resident" true (C.probe c 0x3000)

let test_writeback_tracking () =
  let c = mk_cache () in
  (* dirty a line in set 0, then evict it with two more set-0 lines *)
  ignore (C.access ~write:true c 0);
  ignore (C.access c (8 * 64));
  ignore (C.access c (16 * 64));
  Alcotest.(check int) "one writeback" 1 (C.stats c).C.writebacks;
  (* clean evictions do not count *)
  ignore (C.access c (24 * 64));
  Alcotest.(check int) "clean eviction free" 1 (C.stats c).C.writebacks

let test_hierarchy_store_writeback_reaches_dram () =
  let small =
    { H.table_i with H.l1d_size = 1024; l2_size = 4096; l1i_next_line = false }
  in
  let h = H.create small in
  (* dirty many distinct lines: they must eventually drain to DRAM *)
  for i = 0 to 299 do
    ignore (H.dwrite h ~now:(i * 10) ~pc:0 (0x10000 + (i * 64)))
  done;
  Alcotest.(check bool) "dram saw writebacks" true ((H.dram_stats h).D.writes > 0)

(* ------------------------------- DRAM ----------------------------- *)

let test_dram_row_hits () =
  let d = D.create () in
  let lat1 = D.access d ~now:0 ~write:false 0x100 in
  let lat2 = D.access d ~now:1000 ~write:false 0x140 in
  Alcotest.(check bool) "row hit faster" true (lat2 < lat1);
  let s = D.stats d in
  Alcotest.(check int) "one row hit" 1 s.D.row_hits;
  Alcotest.(check int) "one row miss" 1 s.D.row_misses

let test_dram_bank_contention () =
  let d = D.create () in
  let l1 = D.access d ~now:0 ~write:false 0x100 in
  (* immediate second access to the same bank queues behind the first *)
  let l2 = D.access d ~now:0 ~write:false (0x100 + (2048 * 16)) in
  Alcotest.(check bool) "queued access slower" true (l2 > l1)

let test_dram_counts_writes () =
  let d = D.create () in
  ignore (D.access d ~now:0 ~write:true 0x100);
  Alcotest.(check int) "write counted" 1 (D.stats d).D.writes

(* ---------------------------- prefetcher --------------------------- *)

let test_stride_prefetcher_learns () =
  let p = SP.create () in
  Alcotest.(check (list int)) "cold" [] (SP.observe p ~pc:4 ~addr:0);
  Alcotest.(check (list int)) "first stride" [] (SP.observe p ~pc:4 ~addr:64);
  Alcotest.(check (list int)) "confidence building" []
    (SP.observe p ~pc:4 ~addr:128);
  Alcotest.(check (list int)) "prefetch issued" [ 256 ]
    (SP.observe p ~pc:4 ~addr:192);
  Alcotest.(check int) "issued count" 1 (SP.issued p)

let test_stride_prefetcher_resets_on_noise () =
  let p = SP.create () in
  ignore (SP.observe p ~pc:4 ~addr:0);
  ignore (SP.observe p ~pc:4 ~addr:64);
  ignore (SP.observe p ~pc:4 ~addr:128);
  Alcotest.(check (list int)) "noise clears confidence" []
    (SP.observe p ~pc:4 ~addr:1000)

(* ---------------------------- hierarchy ---------------------------- *)

let test_hierarchy_levels () =
  let h = H.create H.table_i in
  let o1 = H.dread h ~now:0 ~pc:0 0x5000 in
  Alcotest.(check bool) "first read from DRAM" true (o1.H.level = H.Main);
  let o2 = H.dread h ~now:100 ~pc:0 0x5000 in
  Alcotest.(check bool) "second read from L1" true (o2.H.level = H.L1);
  Alcotest.(check int) "L1 latency is hit latency" H.table_i.H.l1d_hit
    o2.H.latency;
  Alcotest.(check bool) "DRAM slower than L1" true (o1.H.latency > o2.H.latency)

let test_hierarchy_prefetch_hides_latency () =
  let h = H.create H.table_i in
  H.prefetch_d h ~now:0 ~pc:0 0x9000;
  (* long after the prefetch completes, the demand access is an L1 hit *)
  let o = H.dread h ~now:1000 ~pc:0 0x9000 in
  Alcotest.(check int) "hidden latency" H.table_i.H.l1d_hit o.H.latency

let test_hierarchy_early_demand_pays_partial () =
  let h = H.create H.table_i in
  H.prefetch_d h ~now:0 ~pc:0 0xA000;
  let immediate = H.dread h ~now:1 ~pc:0 0xA000 in
  Alcotest.(check bool) "early demand pays remainder" true
    (immediate.H.latency > H.table_i.H.l1d_hit);
  let h2 = H.create H.table_i in
  let cold = H.dread h2 ~now:1 ~pc:0 0xA000 in
  Alcotest.(check bool) "still cheaper than cold miss" true
    (immediate.H.latency <= cold.H.latency)

let test_hierarchy_touch_warm () =
  let h = H.create H.table_i in
  H.touch_i h 0x7000;
  let o = H.ifetch h ~now:0 0x7000 in
  Alcotest.(check bool) "warmed line hits L1" true (o.H.level = H.L1);
  Alcotest.(check int) "touch not counted as access" 1 (H.l1i_stats h).C.accesses

let test_next_line_prefetcher () =
  let h = H.create H.table_i in
  ignore (H.ifetch h ~now:0 0x8000);
  (* give the next-line prefetch time to land, then access it *)
  let o = H.ifetch h ~now:500 0x8040 in
  Alcotest.(check bool) "next line was prefetched" true (o.H.level = H.L1)

let prop_cache_hits_bounded =
  QCheck.Test.make ~name:"hits + misses = accesses" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 200) (int_bound 0xFFFF))
    (fun addrs ->
      let c = mk_cache () in
      List.iter (fun a -> ignore (C.access c a)) addrs;
      let s = C.stats c in
      s.C.hits + s.C.misses = s.C.accesses
      && s.C.accesses = List.length addrs)

(* True-LRU reference model.  Each set is an MRU-ordered (tag, dirty)
   list; [Cache.access_evict] and [Cache.fill] must agree with it on
   every observable: the hit flag, the evicted line and its dirty bit,
   residency as seen by [probe] (inclusion of the model in the cache and
   vice versa), and the writeback count. *)
let prop_cache_matches_lru_model =
  let sets = 4 and assoc = 4 and shift = 6 in
  QCheck.Test.make ~name:"cache matches a true-LRU reference model"
    ~count:200
    (* (address, op) with op 0 = demand read, 1 = demand write,
       2 = prefetch fill; 0x7FF spans 8 tags per set for pressure. *)
    QCheck.(list_of_size Gen.(int_range 1 400)
              (pair (int_bound 0x7FF) (int_bound 2)))
    (fun ops ->
      let c =
        C.create ~name:"model" ~size_bytes:(sets * assoc * 64) ~assoc
          ~line_bytes:64
      in
      let model = Array.make sets [] in
      let model_writebacks = ref 0 in
      (* Install at MRU; if the set is full the LRU tail is the victim. *)
      let install set tag dirty =
        if List.length model.(set) >= assoc then begin
          let rec split acc = function
            | [ last ] -> (List.rev acc, last)
            | x :: tl -> split (x :: acc) tl
            | [] -> assert false
          in
          let keep, ((_, vd) as victim) = split [] model.(set) in
          if vd then incr model_writebacks;
          model.(set) <- (tag, dirty) :: keep;
          Some victim
        end
        else begin
          model.(set) <- (tag, dirty) :: model.(set);
          None
        end
      in
      let promote set tag extra_dirty =
        let dirty = ref extra_dirty in
        let rest =
          List.filter
            (fun (t, d) -> if t = tag then (dirty := !dirty || d; false) else true)
            model.(set)
        in
        model.(set) <- (tag, !dirty) :: rest
      in
      List.for_all
        (fun (addr, op) ->
          let line = addr lsr shift in
          let set = line mod sets and tag = line / sets in
          let present = List.mem_assoc tag model.(set) in
          let step_ok =
            if op = 2 then begin
              C.fill c addr;
              if present then promote set tag false
              else ignore (install set tag false);
              true
            end
            else begin
              let write = op = 1 in
              let hit, victim = C.access_evict ~write c addr in
              let model_victim =
                if present then (promote set tag write; None)
                else install set tag write
              in
              hit = present
              && (match (victim, model_victim) with
                 | None, None -> true
                 | Some (va, vd), Some (vt, vd') ->
                   va = ((vt * sets) + set) lsl shift && vd = vd'
                 | _ -> false)
            end
          in
          step_ok && C.probe c addr = List.mem_assoc tag model.(set))
        ops
      && (C.stats c).C.writebacks = !model_writebacks)

(* An affine address stream trains the stride table in exactly three
   observations; from the fourth on every observation returns exactly
   [degree] addresses spaced by the stride, and [issued] accounts for
   every one of them.  In particular the demand stream itself is
   untouched: predictions are extrapolations, never substitutions. *)
let prop_stride_prefetcher_affine =
  QCheck.Test.make ~name:"affine stream predicted exactly" ~count:200
    QCheck.(quad (int_bound 0xFFFF)
              (int_range (-512) 512) (int_range 1 4) (int_range 4 32))
    (fun (base, stride, degree, n) ->
      QCheck.assume (stride <> 0);
      let sp = SP.create ~degree () in
      let total = ref 0 in
      let ok = ref true in
      for k = 0 to n - 1 do
        let addr = base + (k * stride) in
        let preds = SP.observe sp ~pc:0x40 ~addr in
        total := !total + List.length preds;
        let expect =
          if k < 3 then []
          else List.init degree (fun i -> addr + (stride * (i + 1)))
        in
        if preds <> expect then ok := false
      done;
      !ok && SP.issued sp = !total)

let () =
  Alcotest.run "mem"
    [
      ( "cache",
        [
          Alcotest.test_case "geometry" `Quick test_geometry;
          Alcotest.test_case "hit after fill" `Quick test_hit_after_fill;
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
          Alcotest.test_case "probe side-effect free" `Quick test_probe_no_side_effect;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "fill is prefetch" `Quick test_fill_is_prefetch;
          Alcotest.test_case "writeback tracking" `Quick test_writeback_tracking;
          Alcotest.test_case "writebacks reach DRAM" `Quick
            test_hierarchy_store_writeback_reaches_dram;
        ] );
      ( "dram",
        [
          Alcotest.test_case "row hits" `Quick test_dram_row_hits;
          Alcotest.test_case "bank contention" `Quick test_dram_bank_contention;
          Alcotest.test_case "write counting" `Quick test_dram_counts_writes;
        ] );
      ( "prefetcher",
        [
          Alcotest.test_case "learns strides" `Quick test_stride_prefetcher_learns;
          Alcotest.test_case "noise resets" `Quick test_stride_prefetcher_resets_on_noise;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "levels" `Quick test_hierarchy_levels;
          Alcotest.test_case "prefetch hides latency" `Quick
            test_hierarchy_prefetch_hides_latency;
          Alcotest.test_case "early demand partial wait" `Quick
            test_hierarchy_early_demand_pays_partial;
          Alcotest.test_case "warmup touch" `Quick test_hierarchy_touch_warm;
          Alcotest.test_case "next-line prefetch" `Quick test_next_line_prefetcher;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_cache_hits_bounded;
            prop_cache_matches_lru_model;
            prop_stride_prefetcher_affine;
          ] );
    ]
