(* Tests for the memory hierarchy: caches, DRAM, prefetchers. *)

module C = Mem.Cache
module D = Mem.Dram
module H = Mem.Hierarchy
module SP = Mem.Stride_prefetcher

let mk_cache ?policy ?(size = 1024) ?(assoc = 2) ?(line = 64) () =
  C.create ?policy ~name:"t" ~size_bytes:size ~assoc ~line_bytes:line ()

let test_geometry () =
  let c = mk_cache () in
  Alcotest.(check int) "sets" 8 (C.sets c);
  Alcotest.(check int) "assoc" 2 (C.assoc c);
  Alcotest.check_raises "bad line"
    (Invalid_argument "Cache.create: line_bytes must be a power of two")
    (fun () ->
      ignore (C.create ~name:"x" ~size_bytes:1024 ~assoc:2 ~line_bytes:48 ()))

let test_hit_after_fill () =
  let c = mk_cache () in
  Alcotest.(check bool) "first access misses" false (C.access c 0x1000);
  Alcotest.(check bool) "second access hits" true (C.access c 0x1000);
  Alcotest.(check bool) "same line hits" true (C.access c 0x103F);
  Alcotest.(check bool) "next line misses" false (C.access c 0x1040)

let test_lru_eviction () =
  (* 2-way, 8 sets, 64B lines: addresses 0, 8*64, 16*64 map to set 0 *)
  let c = mk_cache () in
  let a0 = 0 and a1 = 8 * 64 and a2 = 16 * 64 in
  ignore (C.access c a0);
  ignore (C.access c a1);
  ignore (C.access c a0); (* a0 now MRU; a1 is LRU *)
  ignore (C.access c a2); (* evicts a1 *)
  Alcotest.(check bool) "a0 survives" true (C.probe c a0);
  Alcotest.(check bool) "a1 evicted" false (C.probe c a1);
  Alcotest.(check bool) "a2 resident" true (C.probe c a2)

let test_probe_no_side_effect () =
  let c = mk_cache () in
  ignore (C.probe c 0x2000);
  Alcotest.(check int) "probe not counted" 0 (C.stats c).C.accesses;
  Alcotest.(check bool) "probe does not fill" false (C.probe c 0x2000)

let test_stats () =
  let c = mk_cache () in
  ignore (C.access c 0);
  ignore (C.access c 0);
  ignore (C.access c 64);
  let s = C.stats c in
  Alcotest.(check int) "accesses" 3 s.C.accesses;
  Alcotest.(check int) "hits" 1 s.C.hits;
  Alcotest.(check int) "misses" 2 s.C.misses;
  Alcotest.(check (float 1e-9)) "miss rate" (2.0 /. 3.0) (C.miss_rate c)

let test_fill_is_prefetch () =
  let c = mk_cache () in
  C.fill c 0x3000;
  let s = C.stats c in
  Alcotest.(check int) "prefetch fill counted" 1 s.C.prefetch_fills;
  Alcotest.(check int) "no access counted" 0 s.C.accesses;
  Alcotest.(check bool) "line resident" true (C.probe c 0x3000)

let test_writeback_tracking () =
  let c = mk_cache () in
  (* dirty a line in set 0, then evict it with two more set-0 lines *)
  ignore (C.access ~write:true c 0);
  ignore (C.access c (8 * 64));
  ignore (C.access c (16 * 64));
  Alcotest.(check int) "one writeback" 1 (C.stats c).C.writebacks;
  (* clean evictions do not count *)
  ignore (C.access c (24 * 64));
  Alcotest.(check int) "clean eviction free" 1 (C.stats c).C.writebacks

let test_fill_reports_victim () =
  (* A prefetch fill that displaces a dirty line must report the victim
     so the caller can absorb the writeback — dropping it was the
     historical bug behind the lbm golden regeneration. *)
  let c = mk_cache () in
  ignore (C.access ~write:true c 0);
  ignore (C.access c (8 * 64));
  C.fill c (16 * 64);
  Alcotest.(check int) "victim line reported" 0 (C.victim_addr c);
  Alcotest.(check bool) "victim was dirty" true (C.victim_dirty c);
  Alcotest.(check int) "writeback counted" 1 (C.stats c).C.writebacks;
  (* Refilling a resident line displaces nothing; leaving the previous
     report in place would let a caller absorb the same victim twice. *)
  C.fill c (16 * 64);
  Alcotest.(check int) "resident fill clears report" (-1) (C.victim_addr c)

let test_cache_invalidate_all () =
  let c = mk_cache () in
  ignore (C.access ~write:true c 0);
  ignore (C.access c (8 * 64));
  C.invalidate_all c;
  Alcotest.(check bool) "lines dropped" false (C.probe c 0);
  Alcotest.(check int) "victim report cleared" (-1) (C.victim_addr c);
  (* Dirty bits died with the lines: churning the set afterwards evicts
     clean lines only, so no phantom writebacks appear. *)
  let wb = (C.stats c).C.writebacks in
  ignore (C.access c 0);
  ignore (C.access c (8 * 64));
  ignore (C.access c (16 * 64));
  ignore (C.access c (24 * 64));
  Alcotest.(check int) "no phantom writebacks" wb (C.stats c).C.writebacks

let test_srrip_prefers_distant () =
  (* 2-way set 0: a0 re-referenced (RRPV 0), a1 only filled (RRPV 2).
     SRRIP ages both and evicts a1 — where true LRU, for which a1 is the
     more recent line, would have evicted a0. *)
  let c = mk_cache ~policy:Mem.Replacement.Srrip () in
  let a0 = 0 and a1 = 8 * 64 and a2 = 16 * 64 in
  ignore (C.access c a0);
  ignore (C.access c a0);
  ignore (C.access c a1);
  ignore (C.access c a2);
  Alcotest.(check bool) "re-referenced line survives" true (C.probe c a0);
  Alcotest.(check bool) "long-interval line evicted" false (C.probe c a1)

let test_hierarchy_store_writeback_reaches_dram () =
  let small =
    { H.table_i with H.l1d_size = 1024; l2_size = 4096; l1i_prefetch = H.Ip_none }
  in
  let h = H.create small in
  (* dirty many distinct lines: they must eventually drain to DRAM *)
  for i = 0 to 299 do
    ignore (H.dwrite h ~now:(i * 10) ~pc:0 (0x10000 + (i * 64)))
  done;
  Alcotest.(check bool) "dram saw writebacks" true ((H.dram_stats h).D.writes > 0)

(* ------------------------------- DRAM ----------------------------- *)

let test_dram_row_hits () =
  let d = D.create () in
  let lat1 = D.access d ~now:0 ~write:false 0x100 in
  let lat2 = D.access d ~now:1000 ~write:false 0x140 in
  Alcotest.(check bool) "row hit faster" true (lat2 < lat1);
  let s = D.stats d in
  Alcotest.(check int) "one row hit" 1 s.D.row_hits;
  Alcotest.(check int) "one row miss" 1 s.D.row_misses

let test_dram_bank_contention () =
  let d = D.create () in
  let l1 = D.access d ~now:0 ~write:false 0x100 in
  (* immediate second access to the same bank queues behind the first *)
  let l2 = D.access d ~now:0 ~write:false (0x100 + (2048 * 16)) in
  Alcotest.(check bool) "queued access slower" true (l2 > l1)

let test_dram_counts_writes () =
  let d = D.create () in
  ignore (D.access d ~now:0 ~write:true 0x100);
  Alcotest.(check int) "write counted" 1 (D.stats d).D.writes

(* ---------------------------- prefetcher --------------------------- *)

let test_stride_prefetcher_learns () =
  let p = SP.create () in
  Alcotest.(check (list int)) "cold" [] (SP.observe p ~pc:4 ~addr:0);
  Alcotest.(check (list int)) "first stride" [] (SP.observe p ~pc:4 ~addr:64);
  Alcotest.(check (list int)) "confidence building" []
    (SP.observe p ~pc:4 ~addr:128);
  Alcotest.(check (list int)) "prefetch issued" [ 256 ]
    (SP.observe p ~pc:4 ~addr:192);
  Alcotest.(check int) "issued count" 1 (SP.issued p)

let test_stride_prefetcher_resets_on_noise () =
  let p = SP.create () in
  ignore (SP.observe p ~pc:4 ~addr:0);
  ignore (SP.observe p ~pc:4 ~addr:64);
  ignore (SP.observe p ~pc:4 ~addr:128);
  Alcotest.(check (list int)) "noise clears confidence" []
    (SP.observe p ~pc:4 ~addr:1000)

(* ---------------------------- hierarchy ---------------------------- *)

let test_hierarchy_levels () =
  let h = H.create H.table_i in
  let o1 = H.dread h ~now:0 ~pc:0 0x5000 in
  Alcotest.(check bool) "first read from DRAM" true (o1.H.level = H.Main);
  let o2 = H.dread h ~now:100 ~pc:0 0x5000 in
  Alcotest.(check bool) "second read from L1" true (o2.H.level = H.L1);
  Alcotest.(check int) "L1 latency is hit latency" H.table_i.H.l1d_hit
    o2.H.latency;
  Alcotest.(check bool) "DRAM slower than L1" true (o1.H.latency > o2.H.latency)

let test_hierarchy_prefetch_hides_latency () =
  let h = H.create H.table_i in
  H.prefetch_d h ~now:0 ~pc:0 0x9000;
  (* long after the prefetch completes, the demand access is an L1 hit *)
  let o = H.dread h ~now:1000 ~pc:0 0x9000 in
  Alcotest.(check int) "hidden latency" H.table_i.H.l1d_hit o.H.latency

let test_hierarchy_early_demand_pays_partial () =
  let h = H.create H.table_i in
  H.prefetch_d h ~now:0 ~pc:0 0xA000;
  let immediate = H.dread h ~now:1 ~pc:0 0xA000 in
  Alcotest.(check bool) "early demand pays remainder" true
    (immediate.H.latency > H.table_i.H.l1d_hit);
  let h2 = H.create H.table_i in
  let cold = H.dread h2 ~now:1 ~pc:0 0xA000 in
  Alcotest.(check bool) "still cheaper than cold miss" true
    (immediate.H.latency <= cold.H.latency)

let test_hierarchy_touch_warm () =
  let h = H.create H.table_i in
  H.touch_i h 0x7000;
  let o = H.ifetch h ~now:0 0x7000 in
  Alcotest.(check bool) "warmed line hits L1" true (o.H.level = H.L1);
  Alcotest.(check int) "touch not counted as access" 1 (H.l1i_stats h).C.accesses

let test_next_line_prefetcher () =
  let h = H.create H.table_i in
  ignore (H.ifetch h ~now:0 0x8000);
  (* give the next-line prefetch time to land, then access it *)
  let o = H.ifetch h ~now:500 0x8040 in
  Alcotest.(check bool) "next line was prefetched" true (o.H.level = H.L1)

let test_hierarchy_invalidate_all () =
  let h = H.create H.table_i in
  ignore (H.dwrite h ~now:0 ~pc:0 0xB000);
  H.prefetch_d h ~now:100 ~pc:0 0x9000;
  let writes = (H.dram_stats h).D.writes in
  H.invalidate_all h;
  Alcotest.(check int) "invalidation writes nothing back" writes
    ((H.dram_stats h).D.writes);
  (* The dirty line and the completed part of the prefetch are both
     gone: each address is a full cold miss again. *)
  let o = H.dread h ~now:1000 ~pc:0 0xB000 in
  Alcotest.(check bool) "dirty line dropped" true (o.H.level = H.Main);
  let o = H.dread h ~now:1001 ~pc:0 0x9000 in
  Alcotest.(check bool) "prefetched line dropped" true (o.H.level = H.Main)

let test_hierarchy_invalidate_kills_inflight_prefetch () =
  (* Invalidate while the prefetch is still in flight: the later demand
     must pay the whole miss, not the remaining cycles. *)
  let h = H.create H.table_i in
  H.prefetch_d h ~now:0 ~pc:0 0xA000;
  H.invalidate_all h;
  let after = H.dread h ~now:1 ~pc:0 0xA000 in
  let cold = H.dread (H.create H.table_i) ~now:1 ~pc:0 0xA000 in
  Alcotest.(check bool) "full miss again" true (after.H.level = H.Main);
  (* No partial-wait credit from the killed prefetch: at least the cold
     miss (DRAM bank timing is not cache state, so queueing behind the
     prefetch's DRAM access may make it dearer). *)
  Alcotest.(check bool) "no partial-wait credit" true
    (after.H.latency >= cold.H.latency)

let prop_cache_hits_bounded =
  QCheck.Test.make ~name:"hits + misses = accesses" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 200) (int_bound 0xFFFF))
    (fun addrs ->
      let c = mk_cache () in
      List.iter (fun a -> ignore (C.access c a)) addrs;
      let s = C.stats c in
      s.C.hits + s.C.misses = s.C.accesses
      && s.C.accesses = List.length addrs)

(* True-LRU reference model.  Each set is an MRU-ordered (tag, dirty)
   list; [Cache.access_evict] and [Cache.fill] must agree with it on
   every observable: the hit flag, the evicted line and its dirty bit,
   residency as seen by [probe] (inclusion of the model in the cache and
   vice versa), and the writeback count. *)
let prop_cache_matches_lru_model =
  let sets = 4 and assoc = 4 and shift = 6 in
  QCheck.Test.make ~name:"cache matches a true-LRU reference model"
    ~count:200
    (* (address, op) with op 0 = demand read, 1 = demand write,
       2 = prefetch fill; 0x7FF spans 8 tags per set for pressure. *)
    QCheck.(list_of_size Gen.(int_range 1 400)
              (pair (int_bound 0x7FF) (int_bound 2)))
    (fun ops ->
      let c =
        C.create ~name:"model" ~size_bytes:(sets * assoc * 64) ~assoc
          ~line_bytes:64 ()
      in
      let model = Array.make sets [] in
      let model_writebacks = ref 0 in
      (* Install at MRU; if the set is full the LRU tail is the victim. *)
      let install set tag dirty =
        if List.length model.(set) >= assoc then begin
          let rec split acc = function
            | [ last ] -> (List.rev acc, last)
            | x :: tl -> split (x :: acc) tl
            | [] -> assert false
          in
          let keep, ((_, vd) as victim) = split [] model.(set) in
          if vd then incr model_writebacks;
          model.(set) <- (tag, dirty) :: keep;
          Some victim
        end
        else begin
          model.(set) <- (tag, dirty) :: model.(set);
          None
        end
      in
      let promote set tag extra_dirty =
        let dirty = ref extra_dirty in
        let rest =
          List.filter
            (fun (t, d) -> if t = tag then (dirty := !dirty || d; false) else true)
            model.(set)
        in
        model.(set) <- (tag, !dirty) :: rest
      in
      List.for_all
        (fun (addr, op) ->
          let line = addr lsr shift in
          let set = line mod sets and tag = line / sets in
          let present = List.mem_assoc tag model.(set) in
          let step_ok =
            if op = 2 then begin
              C.fill c addr;
              if present then promote set tag false
              else ignore (install set tag false);
              true
            end
            else begin
              let write = op = 1 in
              let hit, victim = C.access_evict ~write c addr in
              let model_victim =
                if present then (promote set tag write; None)
                else install set tag write
              in
              hit = present
              && (match (victim, model_victim) with
                 | None, None -> true
                 | Some (va, vd), Some (vt, vd') ->
                   va = ((vt * sets) + set) lsl shift && vd = vd'
                 | _ -> false)
            end
          in
          step_ok && C.probe c addr = List.mem_assoc tag model.(set))
        ops
      && (C.stats c).C.writebacks = !model_writebacks)

(* RRIP-family reference models.  One naive per-way executable spec,
   written straight from the papers rather than from [Mem.Replacement]:
   each line carries a 2-bit RRPV; fills predict per the policy (SRRIP:
   long; BRRIP: distant except every 32nd fill; TRRIP: the temperature
   hint, clamped); hits promote to near-immediate; the victim is the
   first way at distant, aging every way until one gets there.  Invalid
   ways are preferred before the policy is consulted.  The cache must
   agree on the hit flag, the victim report, residency, and the
   writeback count. *)
let prop_cache_matches_rrip_model kind =
  let sets = 4 and assoc = 4 and shift = 6 in
  QCheck.Test.make
    ~name:
      (Printf.sprintf "cache matches a naive %s reference model"
         (Mem.Replacement.kind_name kind))
    ~count:200
    (* (address, (op, hint)): op 0 = demand read, 1 = demand write,
       2 = prefetch fill; hint is a TRRIP temperature, -1 = unknown
       (ignored by SRRIP/BRRIP). *)
    QCheck.(
      list_of_size
        Gen.(int_range 1 400)
        (pair (int_bound 0x7FF) (pair (int_bound 2) (int_range (-1) 3))))
    (fun ops ->
      let c =
        C.create ~policy:kind ~name:"model" ~size_bytes:(sets * assoc * 64)
          ~assoc ~line_bytes:64 ()
      in
      let mtag = Array.make_matrix sets assoc (-1) in
      let mdirty = Array.make_matrix sets assoc false in
      let mrrpv = Array.make_matrix sets assoc 3 in
      let fills = ref 0 in
      let model_writebacks = ref 0 in
      let fill_rrpv hint =
        match kind with
        | Mem.Replacement.Srrip -> 2
        | Mem.Replacement.Brrip ->
          incr fills;
          if !fills mod 32 = 0 then 2 else 3
        | Mem.Replacement.Trrip -> if hint < 0 then 2 else min hint 3
        | Mem.Replacement.Lru -> assert false
      in
      let find set tag =
        let w = ref (-1) in
        for i = assoc - 1 downto 0 do
          if mtag.(set).(i) = tag then w := i
        done;
        !w
      in
      let install set tag hint dirty =
        let way = ref (find set (-1)) in
        if !way < 0 then begin
          let found = ref (-1) in
          while !found < 0 do
            for i = assoc - 1 downto 0 do
              if mrrpv.(set).(i) = 3 then found := i
            done;
            if !found < 0 then
              for i = 0 to assoc - 1 do
                mrrpv.(set).(i) <- mrrpv.(set).(i) + 1
              done
          done;
          way := !found
        end;
        let victim =
          if mtag.(set).(!way) = -1 then None
          else begin
            let vd = mdirty.(set).(!way) in
            if vd then incr model_writebacks;
            Some (((mtag.(set).(!way) * sets) + set) lsl shift, vd)
          end
        in
        mtag.(set).(!way) <- tag;
        mdirty.(set).(!way) <- dirty;
        mrrpv.(set).(!way) <- fill_rrpv hint;
        victim
      in
      let victim_agrees mv =
        match mv with
        | None -> C.victim_addr c = -1
        | Some (va, vd) -> C.victim_addr c = va && C.victim_dirty c = vd
      in
      List.for_all
        (fun (addr, (op, hint)) ->
          let line = addr lsr shift in
          let set = line mod sets and tag = line / sets in
          let way = find set tag in
          let present = way >= 0 in
          let step_ok =
            if op = 2 then begin
              C.fill c addr;
              let mv =
                if present then begin
                  mrrpv.(set).(way) <- 0;
                  None
                end
                else install set tag (-1) false
              in
              victim_agrees mv
            end
            else begin
              let write = op = 1 in
              let hit = C.access_demand_hinted ~write ~hint c addr in
              let mv =
                if present then begin
                  mrrpv.(set).(way) <- 0;
                  if write then mdirty.(set).(way) <- true;
                  None
                end
                else install set tag hint write
              in
              hit = present && victim_agrees mv
            end
          in
          step_ok && C.probe c addr = (find set tag >= 0))
        ops
      && (C.stats c).C.writebacks = !model_writebacks)

(* An affine address stream trains the stride table in exactly three
   observations; from the fourth on every observation returns exactly
   [degree] addresses spaced by the stride, and [issued] accounts for
   every one of them.  In particular the demand stream itself is
   untouched: predictions are extrapolations, never substitutions. *)
let prop_stride_prefetcher_affine =
  QCheck.Test.make ~name:"affine stream predicted exactly" ~count:200
    QCheck.(quad (int_bound 0xFFFF)
              (int_range (-512) 512) (int_range 1 4) (int_range 4 32))
    (fun (base, stride, degree, n) ->
      QCheck.assume (stride <> 0);
      let sp = SP.create ~degree () in
      let total = ref 0 in
      let ok = ref true in
      for k = 0 to n - 1 do
        let addr = base + (k * stride) in
        let preds = SP.observe sp ~pc:0x40 ~addr in
        total := !total + List.length preds;
        let expect =
          if k < 3 then []
          else List.init degree (fun i -> addr + (stride * (i + 1)))
        in
        if preds <> expect then ok := false
      done;
      !ok && SP.issued sp = !total)

let () =
  Alcotest.run "mem"
    [
      ( "cache",
        [
          Alcotest.test_case "geometry" `Quick test_geometry;
          Alcotest.test_case "hit after fill" `Quick test_hit_after_fill;
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
          Alcotest.test_case "probe side-effect free" `Quick test_probe_no_side_effect;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "fill is prefetch" `Quick test_fill_is_prefetch;
          Alcotest.test_case "fill reports victim" `Quick test_fill_reports_victim;
          Alcotest.test_case "invalidate all" `Quick test_cache_invalidate_all;
          Alcotest.test_case "srrip prefers distant" `Quick
            test_srrip_prefers_distant;
          Alcotest.test_case "writeback tracking" `Quick test_writeback_tracking;
          Alcotest.test_case "writebacks reach DRAM" `Quick
            test_hierarchy_store_writeback_reaches_dram;
        ] );
      ( "dram",
        [
          Alcotest.test_case "row hits" `Quick test_dram_row_hits;
          Alcotest.test_case "bank contention" `Quick test_dram_bank_contention;
          Alcotest.test_case "write counting" `Quick test_dram_counts_writes;
        ] );
      ( "prefetcher",
        [
          Alcotest.test_case "learns strides" `Quick test_stride_prefetcher_learns;
          Alcotest.test_case "noise resets" `Quick test_stride_prefetcher_resets_on_noise;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "levels" `Quick test_hierarchy_levels;
          Alcotest.test_case "prefetch hides latency" `Quick
            test_hierarchy_prefetch_hides_latency;
          Alcotest.test_case "early demand partial wait" `Quick
            test_hierarchy_early_demand_pays_partial;
          Alcotest.test_case "warmup touch" `Quick test_hierarchy_touch_warm;
          Alcotest.test_case "next-line prefetch" `Quick test_next_line_prefetcher;
          Alcotest.test_case "invalidate all" `Quick test_hierarchy_invalidate_all;
          Alcotest.test_case "invalidate kills in-flight prefetch" `Quick
            test_hierarchy_invalidate_kills_inflight_prefetch;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_cache_hits_bounded;
            prop_cache_matches_lru_model;
            prop_cache_matches_rrip_model Mem.Replacement.Srrip;
            prop_cache_matches_rrip_model Mem.Replacement.Brrip;
            prop_cache_matches_rrip_model Mem.Replacement.Trrip;
            prop_stride_prefetcher_affine;
          ] );
    ]
