(* Per-pass differential tests for the nanopass transform pipeline:
   every intermediate program of every pass list must stay
   architecturally equivalent to the source (not just the final
   output), an injected per-pass bug must be caught, attributed to its
   pass by name, and shrunk; and the pass algebra must reproduce the
   monolithic seed semantics bit for bit. *)

module D = Oracle.Differential
module F = Workload.Fuzz
module CP = Transform.Critic_pass
module Pa = Transform.Pass
module Pl = Transform.Pipeline
module R = Transform.Report
module I = Isa.Instr
module Op = Isa.Opcode
module B = Prog.Block
module P = Prog.Program
module Db = Profiler.Critic_db

let check = Alcotest.(check bool)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let digest_program p = Digest.to_hex (Digest.string (Marshal.to_string p []))

(* ------------------- per-pass differential corpus ------------------ *)

(* Every seed application: every pipeline variant (all switch modes
   plus the hybrids), the oracle armed after each individual pass. *)
let test_apps_per_pass () =
  List.iter
    (fun (profile : Workload.Profile.t) ->
      let program = Workload.Gen.program profile in
      let seed = profile.seed lxor 0x9A55 in
      let p = D.prepare ~instrs:1_500 program ~seed in
      match D.check_pipelines p with
      | Ok n ->
        Alcotest.(check int) (profile.name ^ ": pipelines checked") 7 n
      | Error msg -> Alcotest.failf "%s: %s" profile.name msg)
    Workload.Apps.all

(* 300 fixed-seed fuzzed programs through the same per-pass harness,
   with a coverage floor so corpus drift cannot quietly turn the test
   into a no-op. *)
let test_fuzz_per_pass () =
  let exercised = ref 0 in
  for seed = 0 to 299 do
    let program = F.program_of_seed seed in
    let p = D.prepare ~instrs:400 program ~seed:(seed * 13 + 5) in
    (match D.check_pipelines p with
    | Ok _ -> ()
    | Error msg ->
      Alcotest.failf "fuzz seed %d: %s\n%s" seed msg
        (F.to_string (F.spec_of_seed seed)));
    let _, r = CP.apply p.D.db p.D.program in
    if r.CP.sites_applied > 0 then incr exercised
  done;
  (* Small fuzzed programs rarely cross the criticality threshold:
     ~3% of this corpus gets an applied site (measured, stable across
     budgets) — the floor guards against the corpus drifting to zero. *)
  check
    (Printf.sprintf "corpus exercises the passes (%d/300 applied)" !exercised)
    true (!exercised >= 5)

(* ----------------------- injected per-pass bug --------------------- *)

(* A hoist that drops a dependence edge: after the legal hoist it swaps
   the first two members of every chain, reordering a producer past its
   consumer with no legality check.  Same name as the real pass — the
   checker must attribute the divergence to "hoist". *)
let buggy_hoist =
  let apply env program =
    let program', r = Transform.Hoist.pass.Pa.apply env program in
    let program'' =
      P.map_blocks
        (fun b ->
          match Transform.Chains.in_block b with
          | [] -> b
          | chains ->
            let body = Array.copy b.B.body in
            List.iter
              (fun (c : Transform.Chains.t) ->
                match c.Transform.Chains.positions with
                | p0 :: p1 :: _ when p1 = p0 + 1 ->
                  let t = body.(p0) in
                  body.(p0) <- body.(p1);
                  body.(p1) <- t
                | _ -> ())
              chains;
            B.with_body body b)
        program'
    in
    (program'', r)
  in
  { Pa.name = "hoist"; Pa.apply }

let buggy_passes =
  [
    Transform.Chain_select.pass;
    buggy_hoist;
    Transform.Narrow_convert.pass;
    Transform.Cdp_insert.pass;
  ]

let check_buggy spec =
  let program = F.build spec in
  let p = D.prepare ~instrs:300 program ~seed:11 in
  D.check_pipeline p ("buggy", Pa.env p.D.db, buggy_passes)

let test_injected_pass_bug () =
  let cell =
    QCheck.Test.make_cell ~name:"buggy hoist pass survives per-pass checks"
      ~count:300 F.arbitrary (fun spec ->
        match check_buggy spec with Ok _ -> true | Error _ -> false)
  in
  let res = QCheck.Test.check_cell ~rand:(Random.State.make [| 7 |]) cell in
  match QCheck.TestResult.get_state res with
  | QCheck.TestResult.Failed { instances = c :: _ } -> (
    let spec = c.QCheck.TestResult.instance in
    let sz = F.size spec in
    if sz > 20 then
      Alcotest.failf "counterexample not shrunk enough: %d instructions\n%s" sz
        (F.to_string spec);
    check "shrinking made progress" true (c.QCheck.TestResult.shrink_steps > 0);
    match check_buggy spec with
    | Error msg ->
      check
        (Printf.sprintf "divergence attributed to the hoist pass: %s" msg)
        true
        (contains ~sub:"buggy/hoist" msg)
    | Ok _ -> Alcotest.fail "shrunk instance no longer fails")
  | QCheck.TestResult.Success ->
    Alcotest.fail "injected hoist-pass bug was not caught"
  | _ -> Alcotest.fail "unexpected fuzzer outcome for the injected bug"

(* ---------------------------- pass algebra ------------------------- *)

let mode_cases =
  [
    ("cdp", CP.default_options);
    ("branches", { CP.default_options with CP.mode = CP.Branches });
    ("hoist_only", { CP.default_options with CP.mode = CP.Hoist_only });
    ("macro", { CP.default_options with CP.mode = CP.Fused_macro });
    ("ideal", CP.ideal_options);
  ]

(* The canonical pass list reproduces the monolithic seed semantics —
   program and report — in every switch mode. *)
let prop_pipeline_equals_monolithic =
  QCheck.Test.make ~name:"canonical pipeline = monolithic semantics" ~count:60
    F.arbitrary (fun spec ->
      let program = F.build spec in
      let p = D.prepare ~instrs:300 program ~seed:17 in
      List.for_all
        (fun (label, options) ->
          let prog_a, rep_a = CP.apply ~options p.D.db p.D.program in
          let prog_b, rep_b = CP.apply_monolithic ~options p.D.db p.D.program in
          if digest_program prog_a <> digest_program prog_b then
            QCheck.Test.fail_reportf "%s: programs differ" label
          else if rep_a <> rep_b then
            QCheck.Test.fail_reportf "%s: reports differ" label
          else true)
        mode_cases)

let prop_narrow_idempotent =
  QCheck.Test.make ~name:"narrow-convert is idempotent" ~count:60 F.arbitrary
    (fun spec ->
      let program = F.build spec in
      let p = D.prepare ~instrs:300 program ~seed:19 in
      let env = Pa.env p.D.db in
      let tagged, _ = Transform.Chain_select.pass.Pa.apply env p.D.program in
      let once, _ = Transform.Narrow_convert.pass.Pa.apply env tagged in
      let twice, _ = Transform.Narrow_convert.pass.Pa.apply env once in
      digest_program once = digest_program twice)

let prop_hoist_preserves_multiset =
  QCheck.Test.make ~name:"hoist preserves per-block instruction multiset"
    ~count:60 F.arbitrary (fun spec ->
      let program = F.build spec in
      let p = D.prepare ~instrs:300 program ~seed:29 in
      let env = Pa.env p.D.db in
      let tagged, _ = Transform.Chain_select.pass.Pa.apply env p.D.program in
      let hoisted, _ = Transform.Hoist.pass.Pa.apply env tagged in
      let sorted_body (b : B.t) = List.sort compare (Array.to_list b.B.body) in
      let a = P.blocks tagged and b = P.blocks hoisted in
      Array.length a = Array.length b
      && Array.for_all
           (fun i -> sorted_body a.(i) = sorted_body b.(i))
           (Array.init (Array.length a) Fun.id))

(* Per-pass reports sum to the composite report field for field, and
   the composite equals the monolithic one. *)
let prop_reports_sum =
  QCheck.Test.make ~name:"per-pass reports sum to composite report" ~count:60
    F.arbitrary (fun spec ->
      let program = F.build spec in
      let p = D.prepare ~instrs:300 program ~seed:31 in
      List.for_all
        (fun (label, options) ->
          let env = Pa.env ~options p.D.db in
          let _, per_pass =
            List.fold_left
              (fun (prog, acc) (pass : Pa.t) ->
                let prog', r = pass.Pa.apply env prog in
                (prog', r :: acc))
              (p.D.program, [])
              (Pl.canonical options)
          in
          let summed = List.fold_left R.add R.zero per_pass in
          let _, composite = CP.apply ~options p.D.db p.D.program in
          let _, mono = CP.apply_monolithic ~options p.D.db p.D.program in
          List.for_all2
            (fun (fa, va) ((fb, vb), (fc, vc)) ->
              if va <> vb || va <> vc then
                QCheck.Test.fail_reportf
                  "%s: field %s: passes sum %d, composite %d, monolithic %d"
                  label fa va vb vc
              else (assert (fa = fb && fb = fc); true))
            (R.fields summed)
            (List.combine (R.fields composite) (R.fields mono)))
        mode_cases)

(* Narrow-before-hoist commutes: the reordered hybrid produces the same
   program as the canonical Cdp list. *)
let prop_reorder_commutes =
  QCheck.Test.make ~name:"narrow-before-hoist = canonical pipeline" ~count:60
    F.arbitrary (fun spec ->
      let program = F.build spec in
      let p = D.prepare ~instrs:300 program ~seed:37 in
      let run passes =
        fst (Pl.run_exn (Pa.env p.D.db) passes p.D.program)
      in
      digest_program (run (Pl.canonical CP.default_options))
      = digest_program (run Pl.reordered))

(* ---------------- rejection attribution unit tests ----------------- *)

let r = Isa.Reg.r

let mk uid ?dst ?(srcs = []) ?cond op = I.make ~uid ~opcode:op ?dst ~srcs ?cond ()

let block body = B.make ~id:0 ~func:0 ~body ~term:(B.Jump 0)

let program_of body = P.make ~entry:0 ~blocks:[ block body ]

let site ?(start = 0) ~indices ~uids () =
  {
    Db.block_id = 0;
    start_index = start;
    member_indices = indices;
    uids;
    key = "k";
    occurrences = 1;
    criticality = 10.0;
    convertible = true;
  }

let db_of sites =
  {
    Db.sites;
    total_work = 1;
    ic_lengths = Util.Dist.Histogram.create ();
    ic_spreads = Util.Dist.Histogram.create ();
    chain_gaps = Util.Dist.Histogram.create ();
  }

(* 0 -> 2 is an illegal hoist: member 2 reads r6, which the skipped
   instruction 1 writes. *)
let illegal_body () =
  [|
    mk 0 ~dst:(r 0) Op.Alu;
    mk 1 ~dst:(r 6) ~srcs:[ r 0 ] Op.Alu;
    mk 2 ~dst:(r 1) ~srcs:[ r 6 ] Op.Alu;
  |]

let test_rejection_first_failing_check () =
  let program = program_of (illegal_body ()) in
  (* Fresh but illegal: charged to legality. *)
  let _, rep = CP.apply (db_of [ site ~indices:[ 0; 2 ] ~uids:[ 0; 2 ] () ]) program in
  Alcotest.(check int) "legality rejection" 1 rep.CP.rejected_legality;
  Alcotest.(check int) "no stale rejection" 0 rep.CP.rejected_stale;
  (* Stale AND illegal: re-validation fails first, so the site counts
     as stale only — never under both, never under legality. *)
  let _, rep =
    CP.apply (db_of [ site ~indices:[ 0; 2 ] ~uids:[ 7; 8 ] () ]) program
  in
  Alcotest.(check int) "stale rejection" 1 rep.CP.rejected_stale;
  Alcotest.(check int) "legality not double-counted" 0 rep.CP.rejected_legality;
  Alcotest.(check int) "considered once" 1 rep.CP.sites_considered

let test_length_mismatch_counts_stale () =
  let program = program_of (illegal_body ()) in
  (* More uids than member indices (site_length counts uids, so a
     uids-short site is filtered before consideration). *)
  let db = db_of [ site ~indices:[ 0; 2 ] ~uids:[ 0; 2; 4 ] () ] in
  (* The monolithic pass raised on a member/uid length mismatch — the
     silent-loss defect this refactor fixes. *)
  Alcotest.check_raises "monolithic raised"
    (Invalid_argument "List.for_all2") (fun () ->
      ignore (CP.apply_monolithic db program));
  let _, rep = CP.apply db program in
  Alcotest.(check int) "pipeline counts it stale" 1 rep.CP.rejected_stale;
  Alcotest.(check int) "considered" 1 rep.CP.sites_considered;
  Alcotest.(check int) "nothing applied" 0 rep.CP.sites_applied

let test_convertibility_rejection () =
  (* 0 -> 2 is legal but member 2 targets a high register: the
     all-or-nothing Thumb rule rejects the whole site in Cdp mode. *)
  let body =
    [|
      mk 0 ~dst:(r 5) Op.Alu;
      mk 1 ~dst:(r 4) Op.Alu;
      mk 2 ~dst:(r 12) ~srcs:[ r 5 ] Op.Alu;
    |]
  in
  let program = program_of body in
  let db = db_of [ site ~indices:[ 0; 2 ] ~uids:[ 0; 2 ] () ] in
  let _, rep = CP.apply db program in
  Alcotest.(check int) "convertibility rejection" 1
    rep.CP.rejected_convertibility;
  Alcotest.(check int) "not legality" 0 rep.CP.rejected_legality;
  (* Hoist-only mode never converts, so the same site applies. *)
  let options = { CP.default_options with CP.mode = CP.Hoist_only } in
  let _, rep = CP.apply ~options db program in
  Alcotest.(check int) "hoist-only applies it" 1 rep.CP.sites_applied

let test_applied_site_reports () =
  (* A dependent chain 0 -> 2 -> 4 interleaved with leaves: applies
     under every mode, with mode-specific switch accounting. *)
  let body =
    [|
      mk 0 ~dst:(r 0) Op.Alu;
      mk 1 ~dst:(r 6) ~srcs:[ r 0 ] Op.Alu;
      mk 2 ~dst:(r 1) ~srcs:[ r 0 ] Op.Alu;
      mk 3 ~dst:(r 6) ~srcs:[ r 1 ] Op.Alu;
      mk 4 ~dst:(r 2) ~srcs:[ r 1 ] Op.Alu;
      mk 5 ~dst:(r 6) ~srcs:[ r 2 ] Op.Alu;
    |]
  in
  let program = program_of body in
  let db = db_of [ site ~indices:[ 0; 2; 4 ] ~uids:[ 0; 2; 4 ] () ] in
  let check_mode label options ~cdp ~branches ~converted =
    let prog_a, rep = CP.apply ~options db program in
    let prog_b, rep_b = CP.apply_monolithic ~options db program in
    Alcotest.(check int) (label ^ ": applied") 1 rep.CP.sites_applied;
    Alcotest.(check int) (label ^ ": hoisted") 3 rep.CP.instrs_hoisted;
    Alcotest.(check int) (label ^ ": converted") converted
      rep.CP.instrs_converted;
    Alcotest.(check int) (label ^ ": cdp") cdp rep.CP.cdp_inserted;
    Alcotest.(check int) (label ^ ": branches") branches
      rep.CP.switch_branches_inserted;
    check (label ^ ": = monolithic program") true
      (digest_program prog_a = digest_program prog_b);
    check (label ^ ": = monolithic report") true (rep = rep_b)
  in
  check_mode "cdp" CP.default_options ~cdp:1 ~branches:0 ~converted:3;
  check_mode "branches"
    { CP.default_options with CP.mode = CP.Branches }
    ~cdp:0 ~branches:2 ~converted:3;
  check_mode "hoist_only"
    { CP.default_options with CP.mode = CP.Hoist_only }
    ~cdp:0 ~branches:0 ~converted:0;
  check_mode "macro"
    { CP.default_options with CP.mode = CP.Fused_macro }
    ~cdp:0 ~branches:0 ~converted:3

let () =
  Alcotest.run "nanopass"
    [
      ( "per-pass differential",
        [
          Alcotest.test_case "all apps, all pipelines" `Quick
            test_apps_per_pass;
          Alcotest.test_case "300 fuzzed programs" `Quick test_fuzz_per_pass;
          Alcotest.test_case "injected pass bug caught, attributed, shrunk"
            `Quick test_injected_pass_bug;
        ] );
      ( "pass algebra",
        [
          QCheck_alcotest.to_alcotest prop_pipeline_equals_monolithic;
          QCheck_alcotest.to_alcotest prop_narrow_idempotent;
          QCheck_alcotest.to_alcotest prop_hoist_preserves_multiset;
          QCheck_alcotest.to_alcotest prop_reports_sum;
          QCheck_alcotest.to_alcotest prop_reorder_commutes;
        ] );
      ( "rejection attribution",
        [
          Alcotest.test_case "first failing check wins" `Quick
            test_rejection_first_failing_check;
          Alcotest.test_case "length mismatch counts stale" `Quick
            test_length_mismatch_counts_stale;
          Alcotest.test_case "convertibility attribution" `Quick
            test_convertibility_rejection;
          Alcotest.test_case "applied-site accounting" `Quick
            test_applied_site_reports;
        ] );
    ]
