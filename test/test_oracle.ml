(* Golden-model differential tests: the oracle interpreter, the trace
   expander, the walk sampler, the cycle simulator (with runtime
   invariants armed) and the compiler passes must all agree — on every
   seed application and on a fixed-seed fuzzed corpus, across machine
   configurations. *)

module D = Oracle.Differential
module F = Workload.Fuzz

let check = Alcotest.(check bool)

let ok_or_fail label = function
  | Ok n -> n
  | Error msg -> Alcotest.failf "%s: %s" label msg

(* Every seed application, full differential: baseline across the whole
   config sweep, every transform variant across the cut-down sweep. *)
let test_corpus () =
  List.iter
    (fun (profile : Workload.Profile.t) ->
      let program = Workload.Gen.program profile in
      let seed = profile.seed lxor 0x5EED in
      let n =
        ok_or_fail profile.name
          (D.check_program ~instrs:1_500 program ~seed)
      in
      check (profile.name ^ ": compared some retirements") true (n > 0))
    Workload.Apps.all

(* 500 fixed-seed fuzzed programs.  Every one runs baseline + every
   transform variant; the machine sweep crosses three Config.t variants
   (Table I, the narrow 2-wide core, wrong-path fetch). *)
let fuzz_configs =
  List.filter
    (fun (name, _) -> List.mem name [ "table_i"; "narrow2"; "wrong_path" ])
    D.configs

let test_fuzz_corpus () =
  let events = ref 0 in
  for seed = 0 to 499 do
    let program = F.program_of_seed seed in
    match
      D.check_program ~configs:fuzz_configs ~variant_configs:fuzz_configs
        ~instrs:500 program ~seed:(seed * 7 + 1)
    with
    | Ok n -> events := !events + n
    | Error msg ->
      Alcotest.failf "fuzz seed %d: %s\n%s" seed msg
        (F.to_string (F.spec_of_seed seed))
  done;
  check "compared many retirements" true (!events > 100_000)

(* QCheck property: the full transform pipeline stays both
   Verify-equivalent and oracle-equivalent on arbitrary programs. *)
let prop_transforms_preserve_semantics =
  QCheck.Test.make ~name:"transform pipeline preserves oracle semantics"
    ~count:60 F.arbitrary (fun spec ->
      let program = F.build spec in
      let p = D.prepare ~instrs:300 program ~seed:11 in
      List.for_all
        (fun (name, program') ->
          if not (Transform.Verify.program_equivalent p.D.program program')
          then
            QCheck.Test.fail_reportf "%s: Verify.program_equivalent failed"
              name
          else
            match
              D.check_transform_pair ~original:p.D.program
                ~transformed:program' ~seed:p.D.seed ~path:p.D.path
            with
            | Ok () -> true
            | Error msg -> QCheck.Test.fail_reportf "%s: %s" name msg)
        (D.transform_variants p))

(* QCheck property: simulator agrees with the oracle on arbitrary
   programs under a seed-sampled machine configuration. *)
let prop_cpu_matches_oracle =
  QCheck.Test.make ~name:"cpu matches oracle on fuzzed programs" ~count:60
    QCheck.(pair F.arbitrary small_nat)
    (fun (spec, cseed) ->
      let program = F.build spec in
      let _, config = D.sample_config cseed in
      let p = D.prepare ~instrs:300 program ~seed:23 in
      match
        let ( let* ) = Result.bind in
        let* _ = D.check_trace p.D.program ~seed:p.D.seed ~path:p.D.path in
        D.check_cpu_trace ~config p.D.trace
      with
      | Ok _ -> true
      | Error msg -> QCheck.Test.fail_reportf "%s" msg)

(* A deliberately injected hoist-style bug: swap the first two body
   instructions of every block — a reordering pass with no legality
   check.  The fuzzer must catch it and shrink the counterexample to a
   handful of instructions. *)
let buggy_hoist program =
  Prog.Program.map_blocks
    (fun b ->
      let body = Array.copy b.Prog.Block.body in
      if Array.length body >= 2 then begin
        let t = body.(0) in
        body.(0) <- body.(1);
        body.(1) <- t
      end;
      Prog.Block.with_body body b)
    program

let test_injected_bug_caught () =
  let cell =
    QCheck.Test.make_cell ~name:"buggy hoist is oracle-equivalent" ~count:300
      F.arbitrary (fun spec ->
        let program = F.build spec in
        let path = Prog.Walk.path_for_instrs program ~seed:3 ~instrs:200 in
        match
          D.check_transform_pair ~original:program
            ~transformed:(buggy_hoist program) ~seed:3 ~path
        with
        | Ok () -> true
        | Error _ -> false)
  in
  let res = QCheck.Test.check_cell ~rand:(Random.State.make [| 7 |]) cell in
  match QCheck.TestResult.get_state res with
  | QCheck.TestResult.Failed { instances = c :: _ } ->
    let spec = c.QCheck.TestResult.instance in
    let sz = F.size spec in
    if sz > 20 then
      Alcotest.failf
        "counterexample not shrunk enough: %d instructions\n%s" sz
        (F.to_string spec);
    check "shrinking made progress" true (c.QCheck.TestResult.shrink_steps > 0)
  | QCheck.TestResult.Success ->
    Alcotest.fail "injected hoist bug was not caught by the fuzzer"
  | _ -> Alcotest.fail "unexpected fuzzer outcome for the injected bug"

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* The Verify diagnostics must name the offending block and uid. *)
let test_verify_diagnostics () =
  (* Search the fixed-seed genomes for one the buggy swap changes. *)
  let rec find seed =
    if seed > 50 then Alcotest.fail "no divergent genome in 50 seeds"
    else begin
      let program = F.build (F.spec_of_seed seed) in
      let broken = buggy_hoist program in
      if Transform.Verify.program_equivalent program broken then
        find (seed + 1)
      else (program, broken)
    end
  in
  let program, broken = find 0 in
  let diverged = ref false in
  Array.iteri
    (fun i b ->
      match
        Transform.Verify.block_divergence b (Prog.Program.blocks broken).(i)
      with
      | None -> ()
      | Some msg ->
        diverged := true;
        check "divergence names an instruction uid" true (contains ~sub:"uid" msg))
    (Prog.Program.blocks program);
  check "buggy hoist diverges somewhere" true !diverged;
  (* check_pass reports block id, func, index and the divergent uid. *)
  match Transform.Verify.check_pass (fun _ -> (broken, ())) program with
  | Ok _ -> Alcotest.fail "check_pass accepted the buggy pass"
  | Error msg ->
    check "check_pass names the block" true (contains ~sub:"block" msg);
    check "check_pass names the uid" true (contains ~sub:"uid" msg)

let () =
  Alcotest.run "oracle"
    [
      ( "corpus",
        [ Alcotest.test_case "all apps differential" `Quick test_corpus ] );
      ( "fuzz",
        [
          Alcotest.test_case "500 fixed-seed programs" `Quick test_fuzz_corpus;
          QCheck_alcotest.to_alcotest prop_transforms_preserve_semantics;
          QCheck_alcotest.to_alcotest prop_cpu_matches_oracle;
          Alcotest.test_case "injected hoist bug is caught and shrunk" `Quick
            test_injected_bug_caught;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "verify names block and uid" `Quick
            test_verify_diagnostics;
        ] );
    ]
