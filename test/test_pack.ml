(* Binary trace packs: container framing, digest verification,
   mmap replay fidelity, and the Run-level record/replay path with its
   corruption fallback (mirroring test_store's corruption contract). *)

module Pack = Prog.Trace.Pack
module Stream = Prog.Trace.Stream

let app name = Option.get (Workload.Apps.find name)
let small_instrs = 2_000

let fresh_dir () =
  let path = Filename.temp_file "critics-pack" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_store f =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () -> f dir (Store.open_dir dir))

let with_pack_file f =
  let path = Filename.temp_file "critics-pack" ".cpk" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* Pack recording is keyed off CRITICS_TRACE_PACK; flip it around the
   store-backed tests and always restore (other suites must see it
   off). *)
let with_pack_env f =
  Unix.putenv "CRITICS_TRACE_PACK" "1";
  Fun.protect ~finally:(fun () -> Unix.putenv "CRITICS_TRACE_PACK" "0") f

let ok_or_fail label = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: %s" label msg

(* Drain two cursors in lockstep, requiring structural equality event
   for event; returns the number compared. *)
let compare_streams label a b =
  let fin = Stream.end_marker in
  let n = ref 0 in
  let rec go () =
    let ea = Stream.next_ev a in
    let eb = Stream.next_ev b in
    if ea == fin && eb == fin then ()
    else if ea == fin || eb == fin then
      Alcotest.failf "%s: streams end at different lengths (%d compared)"
        label !n
    else begin
      if ea <> eb then
        Alcotest.failf
          "%s: event %d diverges (uid %d pc %d vs uid %d pc %d)" label !n
          ea.Prog.Trace.instr.uid ea.pc eb.Prog.Trace.instr.uid eb.pc;
      incr n;
      go ()
    end
  in
  go ();
  !n

(* ------------------------------------------------------------------ *)
(* Container: framing, digest, replay fidelity                        *)

let test_roundtrip_bit_identical () =
  List.iter
    (fun (app_name, scheme) ->
      let ctx = Critics.Run.prepare ~instrs:small_instrs (app app_name) in
      with_pack_file (fun path ->
          let n = Pack.record ~path (Critics.Run.stream ctx scheme) in
          Alcotest.(check int)
            (app_name ^ ": record count = event count (baseline only)")
            (if scheme = Critics.Scheme.Baseline then ctx.event_count else n)
            n;
          let pk = ok_or_fail "open_file" (Pack.open_file path) in
          Alcotest.(check int) "count framed" n (Pack.count pk);
          Alcotest.(check int) "length framed"
            (Pack.header_bytes + (n * Pack.record_bytes))
            (Pack.file_bytes pk);
          let program = Critics.Run.transformed ctx scheme in
          let compared =
            compare_streams
              (app_name ^ "/" ^ Critics.Scheme.name scheme)
              (Pack.cursor pk program)
              (Critics.Run.stream ctx scheme)
          in
          Alcotest.(check int) "every event compared" n compared))
    [
      ("Acrobat", Critics.Scheme.Baseline);
      ("Music", Critics.Scheme.Critic);
      ("lbm", Critics.Scheme.Opp16_critic);
    ]

let test_open_rejects_bad_files () =
  let write path bytes =
    let oc = open_out_bin path in
    output_string oc bytes;
    close_out oc
  in
  with_pack_file (fun path ->
      (* Too short for a header. *)
      write path "CRTCPK01";
      Alcotest.(check bool) "short file rejected" true
        (Result.is_error (Pack.open_file path));
      (* Record a real pack to mutate. *)
      let ctx = Critics.Run.prepare ~instrs:small_instrs (app "Acrobat") in
      let n = Pack.record ~path (Critics.Run.stream ctx Critics.Scheme.Baseline) in
      Alcotest.(check bool) "recorded something" true (n > 0);
      let original = In_channel.with_open_bin path In_channel.input_all in
      (* Wrong magic. *)
      write path ("XXXXXXXX" ^ String.sub original 8 (String.length original - 8));
      Alcotest.(check bool) "bad magic rejected" true
        (Result.is_error (Pack.open_file path));
      (* Truncated payload: length framing must catch it before the
         digest is even consulted. *)
      write path (String.sub original 0 (String.length original - 7));
      Alcotest.(check bool) "truncation rejected" true
        (Result.is_error (Pack.open_file path));
      (* Flipped payload byte: digest verification must catch it. *)
      let corrupt = Bytes.of_string original in
      let pos = String.length original - 5 in
      Bytes.set corrupt pos
        (Char.chr (Char.code (Bytes.get corrupt pos) lxor 0xFF));
      write path (Bytes.to_string corrupt);
      Alcotest.(check bool) "payload corruption rejected" true
        (Result.is_error (Pack.open_file path));
      (* The pristine bytes still open. *)
      write path original;
      Alcotest.(check bool) "pristine bytes reopen" true
        (Result.is_ok (Pack.open_file path)))

(* ------------------------------------------------------------------ *)
(* Run-level record/replay through the store                          *)

let stats_digest (st : Pipeline.Stats.t) = Digest.string (Marshal.to_string st [])

let test_record_then_replay_identical_stats () =
  let scheme = Critics.Scheme.Critic in
  let hermetic =
    let ctx = Critics.Run.prepare ~instrs:small_instrs (app "Email") in
    stats_digest (Critics.Run.stats ctx scheme)
  in
  with_store (fun _dir st ->
      with_pack_env (fun () ->
          let ctx =
            Critics.Run.prepare ~store:st ~instrs:small_instrs (app "Email")
          in
          let s1 = Critics.Run.stats ctx scheme in
          let p1 = Critics.Run.pack_stats ctx in
          Alcotest.(check int) "one pack recorded" 1 p1.records;
          Alcotest.(check bool) "replays served" true (p1.replays > 0);
          Alcotest.(check int) "no corruption" 0 p1.corrupt;
          Alcotest.(check bool) "pack bytes accounted" true (p1.bytes > 0);
          let s2 = Critics.Run.stats ctx scheme in
          let p2 = Critics.Run.pack_stats ctx in
          Alcotest.(check int) "still one recording" 1 p2.records;
          Alcotest.(check bool) "more replays" true (p2.replays > p1.replays);
          Alcotest.(check string) "replayed run bit-identical to first"
            (stats_digest s1) (stats_digest s2);
          Alcotest.(check string) "pack-backed stats = hermetic stats"
            hermetic (stats_digest s1)))

let test_corrupt_pack_counted_and_recovered () =
  let scheme = Critics.Scheme.Baseline in
  let hermetic =
    let ctx = Critics.Run.prepare ~instrs:small_instrs (app "Youtube") in
    stats_digest (Critics.Run.stats ctx scheme)
  in
  with_store (fun dir st ->
      with_pack_env (fun () ->
          let prepare () =
            Critics.Run.prepare ~store:st ~instrs:small_instrs (app "Youtube")
          in
          let cold = prepare () in
          ignore (Critics.Run.stats cold scheme);
          Alcotest.(check int)
            "cold run recorded" 1 (Critics.Run.pack_stats cold).records;
          (* Corrupt the pack blob on disk (the store names blobs by key
             digest under the kind directory). *)
          let key =
            Store.key ~kind:"tracepack"
              [ cold.Critics.Run.ckey; Critics.Scheme.name scheme ]
          in
          let blob =
            Filename.concat (Filename.concat dir "tracepack")
              (Store.key_digest key)
          in
          Alcotest.(check bool) "pack blob on disk" true (Sys.file_exists blob);
          let fd = Unix.openfile blob [ Unix.O_WRONLY ] 0 in
          ignore (Unix.lseek fd (-9) Unix.SEEK_END);
          ignore (Unix.write_substring fd "X" 0 1);
          Unix.close fd;
          (* A fresh context re-opens from disk: the corrupt pack must be
             detected, counted, removed — and the run still produce the
             hermetic stats. *)
          let warm = prepare () in
          let s = Critics.Run.stats warm scheme in
          let p = Critics.Run.pack_stats warm in
          Alcotest.(check bool) "corruption counted" true (p.corrupt >= 1);
          Alcotest.(check string) "stats unharmed by corruption" hermetic
            (stats_digest s);
          (* The bad blob is gone (either removed, or atomically replaced
             by a re-recorded pack that verifies). *)
          match Pack.open_file blob with
          | Ok _ -> ()
          | Error _ ->
            Alcotest.(check bool) "bad blob not left behind" false
              (Sys.file_exists blob)))

let test_pack_disabled_without_env () =
  with_store (fun _dir st ->
      (* Env off: the stream must stay live — no recordings, no blobs. *)
      let ctx =
        Critics.Run.prepare ~store:st ~instrs:small_instrs (app "Acrobat")
      in
      ignore (Critics.Run.stats ctx Critics.Scheme.Baseline);
      let p = Critics.Run.pack_stats ctx in
      Alcotest.(check int) "no recordings" 0 p.records;
      Alcotest.(check int) "no replays" 0 p.replays)

let () =
  Alcotest.run "pack"
    [
      ( "container",
        [
          Alcotest.test_case "replay is bit-identical to the live walk"
            `Quick test_roundtrip_bit_identical;
          Alcotest.test_case "framing and digest reject bad files" `Quick
            test_open_rejects_bad_files;
        ] );
      ( "run",
        [
          Alcotest.test_case "record once, replay bit-identical stats"
            `Quick test_record_then_replay_identical_stats;
          Alcotest.test_case "corrupt pack counted, run recovers" `Quick
            test_corrupt_pack_counted_and_recovered;
          Alcotest.test_case "disabled without the env knob" `Quick
            test_pack_disabled_without_env;
        ] );
    ]
