(* Tests for the domain pool: order preservation, exception
   propagation, edge cases (empty / singleton / more jobs than items),
   map_reduce, and reuse of one pool across batches.  Property tests
   compare Pool.map against List.map for arbitrary inputs and pool
   widths — the determinism guarantee the harness relies on. *)

let with_pool jobs f =
  let pool = Parallel.Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Parallel.Pool.shutdown pool) (fun () -> f pool)

let test_map_matches_sequential () =
  let xs = List.init 100 Fun.id in
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          Alcotest.(check (list int))
            (Printf.sprintf "jobs=%d preserves order" jobs)
            (List.map (fun x -> x * x) xs)
            (Parallel.Pool.map_list pool (fun x -> x * x) xs)))
    [ 1; 2; 3; 4; 8 ]

let test_edge_cases () =
  with_pool 4 (fun pool ->
      Alcotest.(check (list int)) "empty" []
        (Parallel.Pool.map_list pool succ []);
      Alcotest.(check (list int)) "singleton" [ 8 ]
        (Parallel.Pool.map_list pool succ [ 7 ]);
      Alcotest.(check (list int)) "more jobs than items" [ 2; 3 ]
        (Parallel.Pool.map_list pool succ [ 1; 2 ]))

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          Alcotest.check_raises
            (Printf.sprintf "jobs=%d propagates" jobs)
            (Failure "boom")
            (fun () ->
              ignore
                (Parallel.Pool.map_list pool
                   (fun x -> if x = 5 then failwith "boom" else x)
                   (List.init 10 Fun.id)));
          (* the pool stays usable after a failed batch *)
          Alcotest.(check (list int)) "pool survives" [ 1; 2; 3 ]
            (Parallel.Pool.map_list pool succ [ 0; 1; 2 ])))
    [ 1; 4 ]

let test_batch_failure_aggregates () =
  (* several failing jobs: every error surfaces, in submission order *)
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          let batch =
            List.init 6 (fun i () ->
                if i mod 2 = 1 then failwith (Printf.sprintf "boom-%d" i))
          in
          match Parallel.Pool.run pool batch with
          | () -> Alcotest.fail "batch with failures returned unit"
          | exception Parallel.Pool.Batch_failure errs ->
            Alcotest.(check (list string))
              (Printf.sprintf "jobs=%d collects all errors in order" jobs)
              [ "boom-1"; "boom-3"; "boom-5" ]
              (List.map
                 (function Failure m, _ -> m | e, _ -> Printexc.to_string e)
                 errs)))
    [ 1; 4 ];
  (* exactly one failure: the original exception, not a wrapper *)
  with_pool 4 (fun pool ->
      Alcotest.check_raises "single failure re-raised unchanged"
        (Failure "alone") (fun () ->
          Parallel.Pool.run pool
            [ (fun () -> ()); (fun () -> failwith "alone"); (fun () -> ()) ]))

let test_run_supervised () =
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          let batch =
            List.init 8 (fun i () ->
                if i = 2 || i = 6 then failwith (Printf.sprintf "job-%d" i)
                else i * 10)
          in
          let results = Parallel.Pool.run_supervised pool batch in
          Alcotest.(check int) "one result per job" 8 (List.length results);
          List.iteri
            (fun i r ->
              match r with
              | Ok v ->
                Alcotest.(check bool) "succeeding index" false (i = 2 || i = 6);
                Alcotest.(check int) "value in submission slot" (i * 10) v
              | Error (Failure m, _) ->
                Alcotest.(check string) "failure carries its job"
                  (Printf.sprintf "job-%d" i) m
              | Error (e, _) -> raise e)
            results;
          (* the pool stays usable after a supervised batch *)
          Alcotest.(check (list int)) "pool survives" [ 1; 2 ]
            (Parallel.Pool.map_list pool succ [ 0; 1 ])))
    [ 1; 4 ]

let test_map_reduce () =
  with_pool 4 (fun pool ->
      let xs = List.init 1000 Fun.id in
      Alcotest.(check int) "sum of squares"
        (List.fold_left (fun acc x -> acc + (x * x)) 0 xs)
        (Parallel.Pool.map_reduce pool
           ~map:(fun x -> x * x)
           ~reduce:( + ) ~init:0 xs);
      (* left-to-right reduce order: string concat is not commutative *)
      Alcotest.(check string) "reduce is left-to-right" "0123456789"
        (Parallel.Pool.map_reduce pool ~map:string_of_int ~reduce:( ^ )
           ~init:"" (List.init 10 Fun.id)))

let test_default_jobs_env () =
  (* CRITICS_JOBS overrides the machine default *)
  Unix.putenv "CRITICS_JOBS" "3";
  let from_env = Parallel.default_jobs () in
  Unix.putenv "CRITICS_JOBS" "";
  Alcotest.(check int) "env override" 3 from_env;
  Alcotest.(check bool) "default positive" true (Parallel.default_jobs () >= 1)

let test_transient_map () =
  Alcotest.(check (list int)) "Parallel.map" [ 0; 2; 4 ]
    (Parallel.map ~jobs:2 (fun x -> 2 * x) [ 0; 1; 2 ])

(* ----------------------------- qcheck ----------------------------- *)

let prop_map_equals_list_map =
  QCheck.Test.make ~name:"Pool.map = List.map for any jobs/chunk" ~count:60
    QCheck.(
      triple (int_range 1 8) (int_range 1 7) (small_list small_int))
    (fun (jobs, chunk, xs) ->
      with_pool jobs (fun pool ->
          Parallel.Pool.map_list ~chunk pool (fun x -> (x * 7) - 1) xs
          = List.map (fun x -> (x * 7) - 1) xs))

let prop_map_reduce_equals_fold =
  QCheck.Test.make ~name:"map_reduce = fold_left over map" ~count:60
    QCheck.(pair (int_range 1 8) (small_list small_int))
    (fun (jobs, xs) ->
      with_pool jobs (fun pool ->
          Parallel.Pool.map_reduce pool ~map:succ ~reduce:( + ) ~init:0 xs
          = List.fold_left ( + ) 0 (List.map succ xs)))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_map_equals_list_map; prop_map_reduce_equals_fold ]

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "order preserved" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "edge cases" `Quick test_edge_cases;
          Alcotest.test_case "exceptions" `Quick test_exception_propagates;
          Alcotest.test_case "batch failure aggregation" `Quick
            test_batch_failure_aggregates;
          Alcotest.test_case "run_supervised" `Quick test_run_supervised;
          Alcotest.test_case "map_reduce" `Quick test_map_reduce;
          Alcotest.test_case "default_jobs" `Quick test_default_jobs_env;
          Alcotest.test_case "transient map" `Quick test_transient_map;
        ] );
      ("properties", qcheck_cases);
    ]
