(* Tests for the cycle-level pipeline model. *)

module I = Isa.Instr
module Op = Isa.Opcode
module B = Prog.Block
module P = Prog.Program
module Cfg = Pipeline.Config

let r = Isa.Reg.r

let mk uid ?dst ?(srcs = []) ?cond ?encoding ?mem op =
  I.make ~uid ~opcode:op ?dst ~srcs ?cond ?encoding ?mem ()

let trace_of_blocks ?(visits = 4) ?(seed = 1) blocks =
  let p = P.make ~entry:0 ~blocks in
  Prog.Trace.expand p ~seed (Prog.Walk.path_visits p ~seed ~visits)

let alu_block ?(n = 16) ?(term = B.Jump 0) id =
  B.make ~id ~func:0
    ~body:(Array.init n (fun i -> mk ((id * 1000) + i) ~dst:(r (i mod 8)) Op.Alu))
    ~term

let test_commits_everything () =
  let t = trace_of_blocks [ alu_block 0 ] in
  let st = Pipeline.Cpu.run Cfg.table_i t in
  Alcotest.(check int) "all events retire" (Array.length t) st.committed_total;
  Alcotest.(check int) "work matches trace" (Prog.Trace.work_count t)
    st.committed_work

let test_deterministic () =
  let t = trace_of_blocks [ alu_block 0 ] in
  let a = Pipeline.Cpu.run Cfg.table_i t in
  let b = Pipeline.Cpu.run Cfg.table_i t in
  Alcotest.(check int) "same cycles" a.cycles b.cycles

let test_ipc_bounded_by_width () =
  let t = trace_of_blocks ~visits:50 [ alu_block 0 ] in
  let st = Pipeline.Cpu.run Cfg.table_i t in
  Alcotest.(check bool) "IPC <= width" true
    (Pipeline.Stats.ipc st <= float_of_int Cfg.table_i.width)

let test_dependence_serializes () =
  (* a serial dependence chain must be slower than independent work *)
  let serial =
    B.make ~id:0 ~func:0
      ~body:
        (Array.init 32 (fun i ->
             if i = 0 then mk i ~dst:(r 0) Op.Alu
             else mk i ~dst:(r 0) ~srcs:[ r 0 ] Op.Alu))
      ~term:(B.Jump 0)
  in
  let t_serial = trace_of_blocks ~visits:8 [ serial ] in
  let t_parallel = trace_of_blocks ~visits:8 [ alu_block ~n:32 0 ] in
  let s1 = Pipeline.Cpu.run Cfg.table_i t_serial in
  let s2 = Pipeline.Cpu.run Cfg.table_i t_parallel in
  Alcotest.(check bool) "serial slower" true (s1.cycles > s2.cycles)

let test_long_latency_ops_cost () =
  let divs =
    B.make ~id:0 ~func:0
      ~body:(Array.init 16 (fun i -> mk i ~dst:(r (i mod 8)) Op.Div))
      ~term:(B.Jump 0)
  in
  let t_div = trace_of_blocks ~visits:4 [ divs ] in
  let t_alu = trace_of_blocks ~visits:4 [ alu_block 0 ] in
  let s_div = Pipeline.Cpu.run Cfg.table_i t_div in
  let s_alu = Pipeline.Cpu.run Cfg.table_i t_alu in
  Alcotest.(check bool) "div-heavy slower" true (s_div.cycles > s_alu.cycles)

let test_thumb_reduces_fetch_pressure () =
  (* identical work, half the bytes: never slower, and with a narrow
     fetch group strictly faster *)
  let narrow = { Cfg.table_i with Cfg.fetch_bytes = 8 } in
  let arm = trace_of_blocks ~visits:40 [ alu_block ~n:24 0 ] in
  let thumb_block =
    B.make ~id:0 ~func:0
      ~body:
        (Array.init 24 (fun i ->
             mk i ~dst:(r (i mod 8)) ~encoding:I.Thumb16 Op.Alu))
      ~term:(B.Jump 0)
  in
  let thumb = trace_of_blocks ~visits:40 [ thumb_block ] in
  let s_arm = Pipeline.Cpu.run narrow arm in
  let s_thumb = Pipeline.Cpu.run narrow thumb in
  Alcotest.(check bool) "thumb faster under fetch pressure" true
    (s_thumb.cycles < s_arm.cycles);
  let thumb_events =
    Array.fold_left
      (fun acc (e : Prog.Trace.event) ->
        if e.instr.I.encoding = I.Thumb16 then acc + 1 else acc)
      0 thumb
  in
  Alcotest.(check int) "thumb instructions counted" thumb_events
    s_thumb.thumb_committed

let test_cdp_markers_retire_at_decode () =
  let body =
    [|
      I.cdp ~uid:100 ~following:2;
      mk 0 ~dst:(r 0) ~encoding:I.Thumb16 Op.Alu;
      mk 1 ~dst:(r 1) ~encoding:I.Thumb16 Op.Alu;
    |]
  in
  let t =
    trace_of_blocks ~visits:5 [ B.make ~id:0 ~func:0 ~body ~term:(B.Jump 0) ]
  in
  let st = Pipeline.Cpu.run Cfg.table_i t in
  Alcotest.(check int) "cdp markers counted" 5 st.cdp_markers;
  Alcotest.(check int) "everything retires" (Array.length t) st.committed_total;
  (* CDP markers are not work *)
  Alcotest.(check int) "work excludes CDP" (Prog.Trace.work_count t)
    st.committed_work

let test_mispredicts_cost_cycles () =
  let blocks bias =
    [
      B.make ~id:0 ~func:0
        ~body:(Array.init 8 (fun i -> mk i ~dst:(r (i mod 8)) Op.Alu))
        ~term:(B.Cond_branch { taken = 0; not_taken = 1; taken_bias = bias });
      alu_block ~n:8 ~term:(B.Jump 0) 1;
    ]
  in
  (* bias 0.5 is unpredictable; bias 0.99 is easy *)
  let t_hard = trace_of_blocks ~visits:400 ~seed:7 (blocks 0.5) in
  let t_easy = trace_of_blocks ~visits:400 ~seed:7 (blocks 0.99) in
  let hard = Pipeline.Cpu.run Cfg.table_i t_hard in
  let easy = Pipeline.Cpu.run Cfg.table_i t_easy in
  let cpi (s : Pipeline.Stats.t) =
    float_of_int s.cycles /. float_of_int s.committed_work
  in
  Alcotest.(check bool) "unpredictable branches cost cycles" true
    (cpi hard > cpi easy);
  Alcotest.(check bool) "mispredicts recorded" true (hard.bpu.mispredicts > 0)

let test_perfect_branch_never_slower () =
  let t = trace_of_blocks ~visits:100 [ alu_block 0 ] in
  let base = Pipeline.Cpu.run Cfg.table_i t in
  let perfect = Pipeline.Cpu.run (Cfg.with_perfect_branch Cfg.table_i) t in
  Alcotest.(check bool) "perfect bp never slower" true
    (perfect.cycles <= base.cycles)

let test_warm_faster_than_cold () =
  let mem = { I.region = 1; stride = 64; working_set = 8192; randomness = 0.0 } in
  let body =
    Array.init 16 (fun i ->
        if i mod 2 = 0 then mk i ~dst:(r 0) ~mem Op.Load
        else mk i ~dst:(r 1) ~srcs:[ r 0 ] Op.Alu)
  in
  let t =
    trace_of_blocks ~visits:16 [ B.make ~id:0 ~func:0 ~body ~term:(B.Jump 0) ]
  in
  let warm = Pipeline.Cpu.run ~warm:true Cfg.table_i t in
  let cold = Pipeline.Cpu.run ~warm:false Cfg.table_i t in
  Alcotest.(check bool) "warm run not slower" true (warm.cycles <= cold.cycles)

let test_wrong_path_fetch_pollutes () =
  let blocks =
    [
      B.make ~id:0 ~func:0
        ~body:(Array.init 8 (fun i -> mk i ~dst:(r (i mod 8)) Op.Alu))
        ~term:(B.Cond_branch { taken = 0; not_taken = 1; taken_bias = 0.5 });
      alu_block ~n:8 ~term:(B.Jump 0) 1;
    ]
  in
  let t = trace_of_blocks ~visits:400 ~seed:7 blocks in
  let base = Pipeline.Cpu.run Cfg.table_i t in
  let wp =
    Pipeline.Cpu.run { Cfg.table_i with Cfg.wrong_path_fetch = true } t
  in
  Alcotest.(check bool) "wrong path adds i-cache traffic" true
    (wp.l1i.accesses > base.l1i.accesses);
  Alcotest.(check int) "work unchanged" base.committed_work wp.committed_work

let test_stage_accounting_consistent () =
  let t = trace_of_blocks ~visits:20 [ alu_block 0 ] in
  let st = Pipeline.Cpu.run Cfg.table_i t in
  let s = st.stage_all in
  Alcotest.(check int) "population = committed total minus markers"
    st.committed_total s.count;
  Alcotest.(check bool) "shares sum to 1" true
    (abs_float
       (List.fold_left
          (fun acc (_, v) -> acc +. v)
          0.0
          (Pipeline.Stats.summary_shares s)
       -. 1.0)
    < 1e-9)

(* An empty population (e.g. the chain population of an untransformed
   run) must yield all-zero shares, not a division by zero. *)
let test_empty_summary_shares () =
  let shares = Pipeline.Stats.summary_shares Pipeline.Stats.empty_summary in
  Alcotest.(check int) "one share per stage" 7 (List.length shares);
  List.iter
    (fun (stage, v) ->
      Alcotest.(check (float 0.0)) (stage ^ " share is zero") 0.0 v)
    shares

let test_criticality_table () =
  let ct = Pipeline.Criticality_table.create ~threshold:4 () in
  Alcotest.(check bool) "cold predicts non-critical" false
    (Pipeline.Criticality_table.predict ct ~pc:0x40);
  Pipeline.Criticality_table.train ct ~pc:0x40 ~fanout:8;
  Pipeline.Criticality_table.train ct ~pc:0x40 ~fanout:8;
  Alcotest.(check bool) "trained predicts critical" true
    (Pipeline.Criticality_table.predict ct ~pc:0x40);
  (* hysteresis: a saturated entry survives one low-fanout observation *)
  Pipeline.Criticality_table.train ct ~pc:0x40 ~fanout:0;
  Alcotest.(check bool) "hysteresis" true
    (Pipeline.Criticality_table.predict ct ~pc:0x40);
  Pipeline.Criticality_table.train ct ~pc:0x40 ~fanout:0;
  Pipeline.Criticality_table.train ct ~pc:0x40 ~fanout:0;
  Alcotest.(check bool) "eventually forgets" false
    (Pipeline.Criticality_table.predict ct ~pc:0x40)

let test_efetch_learns_call_sequence () =
  let e = Pipeline.Efetch.create () in
  (* repeat a call sequence; after training, predictions fire *)
  for _ = 1 to 50 do
    List.iter
      (fun t -> ignore (Pipeline.Efetch.on_call e ~target:t))
      [ 0x1000; 0x2000; 0x3000; 0x4000 ]
  done;
  Alcotest.(check bool) "predictions made" true (Pipeline.Efetch.predictions e > 0);
  Alcotest.(check bool) "mostly correct on a loop" true
    (float_of_int (Pipeline.Efetch.correct e)
     /. float_of_int (Pipeline.Efetch.predictions e)
    > 0.8)

let test_config_variants () =
  let c = Cfg.table_i in
  Alcotest.(check int) "2xFD doubles fetch bytes" (c.fetch_bytes * 2)
    (Cfg.with_2x_fd c).fetch_bytes;
  Alcotest.(check int) "4xI$ quadruples icache"
    (c.mem.Mem.Hierarchy.l1i_size * 4)
    (Cfg.with_4x_icache c).mem.Mem.Hierarchy.l1i_size;
  Alcotest.(check bool) "all_hw enables efetch" true (Cfg.all_hw c).efetch

let () =
  Alcotest.run "pipeline"
    [
      ( "cpu",
        [
          Alcotest.test_case "commits everything" `Quick test_commits_everything;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "ipc bounded" `Quick test_ipc_bounded_by_width;
          Alcotest.test_case "dependences serialize" `Quick test_dependence_serializes;
          Alcotest.test_case "long latency costs" `Quick test_long_latency_ops_cost;
          Alcotest.test_case "thumb fetch pressure" `Quick
            test_thumb_reduces_fetch_pressure;
          Alcotest.test_case "cdp markers" `Quick test_cdp_markers_retire_at_decode;
          Alcotest.test_case "mispredict cost" `Quick test_mispredicts_cost_cycles;
          Alcotest.test_case "perfect bp" `Quick test_perfect_branch_never_slower;
          Alcotest.test_case "warmup" `Quick test_warm_faster_than_cold;
          Alcotest.test_case "stage accounting" `Quick test_stage_accounting_consistent;
          Alcotest.test_case "empty-population shares" `Quick
            test_empty_summary_shares;
          Alcotest.test_case "wrong-path fetch" `Quick test_wrong_path_fetch_pollutes;
        ] );
      ( "components",
        [
          Alcotest.test_case "criticality table" `Quick test_criticality_table;
          Alcotest.test_case "efetch" `Quick test_efetch_learns_call_sequence;
          Alcotest.test_case "config variants" `Quick test_config_variants;
        ] );
    ]
