(* Tests for the offline profiler and the CritIC database. *)

module Db = Profiler.Critic_db

let small_ctx () =
  let app =
    { (Option.get (Workload.Apps.find "Email")) with seed = 77 }
  in
  let program = Workload.Gen.program app in
  let path = Prog.Walk.path_for_instrs program ~seed:7 ~instrs:20_000 in
  let trace = Prog.Trace.expand program ~seed:7 path in
  (program, trace)

let test_profile_finds_chains () =
  let _, trace = small_ctx () in
  let db = Profiler.Profile_run.profile trace in
  Alcotest.(check bool) "finds sites" true (List.length db.sites > 0);
  Alcotest.(check bool) "coverage positive" true (Db.coverage db > 0.0);
  Alcotest.(check bool) "coverage bounded" true (Db.coverage db <= 1.0)

let test_sites_well_formed () =
  let program, trace = small_ctx () in
  let db = Profiler.Profile_run.profile trace in
  List.iter
    (fun (s : Db.site) ->
      Alcotest.(check bool) "length >= 2" true (Db.site_length s >= 2);
      Alcotest.(check bool) "criticality above threshold" true
        (s.criticality >= 4.0);
      Alcotest.(check bool) "occurrences positive" true (s.occurrences > 0);
      (* indices strictly increasing and uids match the program *)
      let block = Prog.Program.block program s.block_id in
      let rec check_incr prev = function
        | [] -> ()
        | i :: rest ->
          Alcotest.(check bool) "strictly increasing" true (i > prev);
          check_incr i rest
      in
      check_incr (-1) s.member_indices;
      List.iter2
        (fun idx uid ->
          Alcotest.(check int) "uid matches program"
            block.Prog.Block.body.(idx).Isa.Instr.uid uid)
        s.member_indices s.uids)
    db.sites

let test_sites_nonoverlapping_ranges () =
  let _, trace = small_ctx () in
  let db = Profiler.Profile_run.profile trace in
  let by_block = Hashtbl.create 32 in
  List.iter
    (fun (s : Db.site) ->
      let lo = List.hd s.member_indices in
      let hi = List.fold_left max lo s.member_indices in
      let existing =
        Option.value ~default:[] (Hashtbl.find_opt by_block s.block_id)
      in
      List.iter
        (fun (l, h) ->
          Alcotest.(check bool) "ranges disjoint" true (hi < l || h < lo))
        existing;
      Hashtbl.replace by_block s.block_id ((lo, hi) :: existing))
    db.sites

let test_restrict_length () =
  let _, trace = small_ctx () in
  let db = Profiler.Profile_run.profile trace in
  let db5 = Db.restrict_length 3 db in
  List.iter
    (fun s ->
      Alcotest.(check bool) "capped at 3" true (Db.site_length s <= 3))
    db5.sites;
  Alcotest.(check int) "site count preserved" (List.length db.sites)
    (List.length db5.sites)

let test_exact_length () =
  let _, trace = small_ctx () in
  let db = Profiler.Profile_run.profile trace in
  let db4 = Db.exact_length 4 db in
  List.iter
    (fun s ->
      Alcotest.(check int) "exactly 4" 4 (Db.site_length s))
    db4.sites

let test_coverage_cdf_monotone () =
  let _, trace = small_ctx () in
  let db = Profiler.Profile_run.profile trace in
  let pts = Db.coverage_cdf db in
  let rec check_monotone = function
    | (r1, c1) :: ((r2, c2) :: _ as rest) ->
      Alcotest.(check bool) "ranks increase" true (r2 >= r1);
      Alcotest.(check bool) "coverage increases" true (c2 >= c1);
      check_monotone rest
    | _ -> ()
  in
  check_monotone pts;
  List.iter
    (fun (_, c) ->
      Alcotest.(check bool) "coverage within [0,1]" true (c >= 0.0 && c <= 1.0))
    pts

let test_convertible_coverage_bounded () =
  let _, trace = small_ctx () in
  let db = Profiler.Profile_run.profile trace in
  Alcotest.(check bool) "convertible <= total" true
    (Db.convertible_coverage db <= Db.coverage db)

let test_fraction_profiles_less () =
  let _, trace = small_ctx () in
  let full = Profiler.Profile_run.profile trace in
  let half = Profiler.Profile_run.profile ~fraction:0.3 trace in
  Alcotest.(check bool) "partial profile sees fewer or equal sites" true
    (List.length half.sites <= List.length full.sites)

let test_threshold_monotone () =
  let _, trace = small_ctx () in
  let lo = Profiler.Profile_run.profile ~threshold:2.0 trace in
  let hi = Profiler.Profile_run.profile ~threshold:8.0 trace in
  Alcotest.(check bool) "higher threshold selects fewer chains" true
    (List.length hi.sites <= List.length lo.sites)

let test_histograms_populated () =
  let _, trace = small_ctx () in
  let db = Profiler.Profile_run.profile trace in
  Alcotest.(check bool) "lengths recorded" true
    (Util.Dist.Histogram.count db.ic_lengths > 0);
  Alcotest.(check bool) "spreads recorded" true
    (Util.Dist.Histogram.count db.ic_spreads > 0);
  Alcotest.(check bool) "gaps recorded" true
    (Util.Dist.Histogram.count db.chain_gaps > 0)

let test_mobile_chains_short () =
  let _, trace = small_ctx () in
  let db = Profiler.Profile_run.profile ~window:2048 trace in
  (* the paper's mobile bound: chains of tens, spreads of hundreds *)
  Alcotest.(check bool) "mobile IC lengths bounded" true
    (Util.Dist.Histogram.max_value db.ic_lengths < 100)

(* ------------------------------ Db_io ------------------------------ *)

let test_db_roundtrip () =
  let _, trace = small_ctx () in
  let db = Profiler.Profile_run.profile trace in
  let db' = Profiler.Db_io.of_string (Profiler.Db_io.to_string db) in
  Alcotest.(check int) "site count" (List.length db.sites)
    (List.length db'.sites);
  Alcotest.(check int) "total work" db.total_work db'.total_work;
  Alcotest.(check (float 1e-6)) "coverage preserved" (Db.coverage db)
    (Db.coverage db');
  List.iter2
    (fun (a : Db.site) (b : Db.site) ->
      Alcotest.(check int) "block" a.block_id b.block_id;
      Alcotest.(check (list int)) "indices" a.member_indices b.member_indices;
      Alcotest.(check (list int)) "uids" a.uids b.uids;
      Alcotest.(check string) "key" a.key b.key;
      Alcotest.(check bool) "convertible" a.convertible b.convertible;
      Alcotest.(check int) "occurrences" a.occurrences b.occurrences)
    db.sites db'.sites;
  Alcotest.(check (list (pair int int)))
    "length histogram"
    (Util.Dist.Histogram.bins db.ic_lengths)
    (Util.Dist.Histogram.bins db'.ic_lengths)

let test_db_file_roundtrip () =
  let _, trace = small_ctx () in
  let db = Profiler.Profile_run.profile trace in
  let path = Filename.temp_file "critics" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Profiler.Db_io.save db path;
      let db' = Profiler.Db_io.load path in
      Alcotest.(check int) "sites survive the file" (List.length db.sites)
        (List.length db'.sites))

let corrupt_err f =
  try
    ignore (f ());
    None
  with Util.Err.Error e -> Some e

let test_db_rejects_garbage () =
  (match corrupt_err (fun () -> Profiler.Db_io.of_string "not-a-db\n") with
  | Some e ->
    Alcotest.(check bool) "bad version is Corrupt_input" true
      (e.Util.Err.kind = Util.Err.Corrupt_input)
  | None -> Alcotest.fail "bad version accepted");
  Alcotest.(check bool) "empty rejected" true
    (corrupt_err (fun () -> Profiler.Db_io.of_string "") <> None)

let test_db_corrupt_file_names_path () =
  let _, trace = small_ctx () in
  let db = Profiler.Profile_run.profile trace in
  let path = Filename.temp_file "critics" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Profiler.Db_io.save db path;
      (* Truncate the file as a crashed non-atomic writer would. *)
      let text = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (Workload.Fault.truncate_string text));
      match corrupt_err (fun () -> Profiler.Db_io.load path) with
      | None -> Alcotest.fail "truncated database accepted"
      | Some e ->
        Alcotest.(check bool) "kind is Corrupt_input" true
          (e.Util.Err.kind = Util.Err.Corrupt_input);
        Alcotest.(check bool) "message names the file path" true
          (let msg = e.Util.Err.msg in
           let plen = String.length path in
           let rec contains i =
             if i + plen > String.length msg then false
             else String.sub msg i plen = path || contains (i + 1)
           in
           contains 0))

let test_db_save_atomic () =
  let _, trace = small_ctx () in
  let db = Profiler.Profile_run.profile trace in
  let path = Filename.temp_file "critics" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* Overwriting an existing database must go through the rename
         path and leave no temporary behind. *)
      Profiler.Db_io.save db path;
      Profiler.Db_io.save db path;
      Alcotest.(check bool) "no stray .tmp" false
        (Sys.file_exists (path ^ ".tmp"));
      Alcotest.(check int) "content intact" (List.length db.sites)
        (List.length (Profiler.Db_io.load path).sites))

(* ------------------------------ Metric ----------------------------- *)

let test_metric_uniform_chain () =
  (* all metrics agree on a uniform chain *)
  List.iter
    (fun m ->
      Alcotest.(check (float 1e-6))
        (Profiler.Metric.name m ^ " on uniform")
        4.0
        (Profiler.Metric.score m [ 4; 4; 4 ]))
    Profiler.Metric.all

let test_metric_orderings () =
  let front = [ 9; 1; 1 ] and back = [ 1; 1; 9 ] in
  let score m l = Profiler.Metric.score m l in
  Alcotest.(check (float 1e-6)) "average is order-blind"
    (score Profiler.Metric.Average_fanout front)
    (score Profiler.Metric.Average_fanout back);
  Alcotest.(check bool) "tail-weighted prefers critical tails" true
    (score Profiler.Metric.Tail_weighted back
    > score Profiler.Metric.Tail_weighted front);
  Alcotest.(check (float 1e-6)) "minimum scores the weakest member" 1.0
    (score Profiler.Metric.Minimum_fanout front);
  Alcotest.(check bool) "geomean penalizes variance" true
    (score Profiler.Metric.Geometric_mean front
    < score Profiler.Metric.Average_fanout front)

let test_metric_roundtrip () =
  List.iter
    (fun m ->
      Alcotest.(check bool) "of_string roundtrips" true
        (Profiler.Metric.of_string (Profiler.Metric.name m) = Some m))
    Profiler.Metric.all;
  Alcotest.(check (float 1e-9)) "empty chain scores 0" 0.0
    (Profiler.Metric.score Profiler.Metric.Average_fanout [])

let test_profile_with_metric () =
  let _, trace = small_ctx () in
  List.iter
    (fun m ->
      let db = Profiler.Profile_run.profile ~metric:m trace in
      Alcotest.(check bool)
        (Profiler.Metric.name m ^ " produces a valid db")
        true
        (Db.coverage db >= 0.0 && Db.coverage db <= 1.0))
    Profiler.Metric.all

(* Db_io must round-trip databases profiled from arbitrary programs,
   not just the seed apps: every site field, the totals and the
   interconvertible-length histogram survive [of_string ∘ to_string]. *)
let prop_db_io_roundtrip =
  QCheck.Test.make ~name:"db_io round-trips fuzzed profiles" ~count:40
    QCheck.small_nat
    (fun seed ->
      let program = Workload.Fuzz.program_of_seed seed in
      let path = Prog.Walk.path_for_instrs program ~seed ~instrs:1_000 in
      let trace = Prog.Trace.expand program ~seed path in
      let db = Profiler.Profile_run.profile trace in
      let db' = Profiler.Db_io.of_string (Profiler.Db_io.to_string db) in
      db.total_work = db'.total_work
      && List.length db.sites = List.length db'.sites
      && List.for_all2
           (fun (a : Db.site) (b : Db.site) ->
             a.block_id = b.block_id
             && a.member_indices = b.member_indices
             && a.uids = b.uids
             && a.key = b.key
             && a.convertible = b.convertible
             && a.occurrences = b.occurrences)
           db.sites db'.sites
      && Util.Dist.Histogram.bins db.ic_lengths
         = Util.Dist.Histogram.bins db'.ic_lengths)

let () =
  Alcotest.run "profiler"
    [
      ( "profile",
        [
          Alcotest.test_case "finds chains" `Quick test_profile_finds_chains;
          Alcotest.test_case "sites well formed" `Quick test_sites_well_formed;
          Alcotest.test_case "ranges disjoint" `Quick
            test_sites_nonoverlapping_ranges;
          Alcotest.test_case "histograms" `Quick test_histograms_populated;
          Alcotest.test_case "mobile chains short" `Quick test_mobile_chains_short;
          Alcotest.test_case "partial profiling" `Quick test_fraction_profiles_less;
          Alcotest.test_case "threshold monotone" `Quick test_threshold_monotone;
        ] );
      ( "db",
        [
          Alcotest.test_case "restrict length" `Quick test_restrict_length;
          Alcotest.test_case "exact length" `Quick test_exact_length;
          Alcotest.test_case "cdf monotone" `Quick test_coverage_cdf_monotone;
          Alcotest.test_case "convertible bounded" `Quick
            test_convertible_coverage_bounded;
        ] );
      ( "db_io",
        [
          Alcotest.test_case "string roundtrip" `Quick test_db_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_db_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_db_rejects_garbage;
          Alcotest.test_case "corrupt file names path" `Quick
            test_db_corrupt_file_names_path;
          Alcotest.test_case "save is atomic" `Quick test_db_save_atomic;
          QCheck_alcotest.to_alcotest prop_db_io_roundtrip;
        ] );
      ( "metric",
        [
          Alcotest.test_case "uniform chain" `Quick test_metric_uniform_chain;
          Alcotest.test_case "orderings" `Quick test_metric_orderings;
          Alcotest.test_case "roundtrip" `Quick test_metric_roundtrip;
          Alcotest.test_case "profile with metric" `Quick test_profile_with_metric;
        ] );
    ]
