(* Tests for programs, walks and trace expansion. *)

module I = Isa.Instr
module Op = Isa.Opcode
module B = Prog.Block
module P = Prog.Program

let r = Isa.Reg.r

let mk uid ?dst ?(srcs = []) ?mem op = I.make ~uid ~opcode:op ?dst ~srcs ?mem ()

let simple_block id ?(n = 4) term =
  let body = Array.init n (fun i -> mk ((id * 100) + i) ~dst:(r (i mod 8)) Op.Alu) in
  B.make ~id ~func:0 ~body ~term

(* A tiny two-block loop: b0 -> b1, b1 jumps back to b0. *)
let tiny_program () =
  P.make ~entry:0
    ~blocks:[ simple_block 0 (B.Fallthrough 1); simple_block 1 (B.Jump 0) ]

let test_program_validation () =
  Alcotest.check_raises "dangling successor"
    (Invalid_argument "Program.make: dangling successor") (fun () ->
      ignore (P.make ~entry:0 ~blocks:[ simple_block 0 (B.Jump 5) ]));
  Alcotest.check_raises "bad ids"
    (Invalid_argument "Program.make: block ids must be dense in [0, n)")
    (fun () -> ignore (P.make ~entry:0 ~blocks:[ simple_block 3 (B.Jump 3) ]))

let test_layout () =
  let p = tiny_program () in
  Alcotest.(check int) "base address" Prog.Program.code_base (P.block_addr p 0);
  Alcotest.(check bool) "second block after first" true
    (P.block_addr p 1 >= P.block_addr p 0 + B.size_bytes (P.block p 0));
  Alcotest.(check int) "aligned" 0 (P.block_addr p 1 land 3);
  Alcotest.(check int) "instr count" 8 (P.instr_count p)

let test_layout_shrinks_with_thumb () =
  let p = tiny_program () in
  let p' =
    P.map_blocks
      (fun b -> B.with_body (Array.map (I.with_encoding I.Thumb16) b.B.body) b)
      p
  in
  Alcotest.(check bool) "thumb code smaller" true
    (P.code_size p' < P.code_size p)

let test_map_blocks_guards_cfg () =
  let p = tiny_program () in
  Alcotest.check_raises "term change rejected"
    (Invalid_argument "Program.map_blocks: pass must preserve CFG shape")
    (fun () ->
      ignore
        (P.map_blocks
           (fun b ->
             if b.B.id = 0 then { b with B.term = B.Jump 0 } else b)
           p))

let test_find_instr () =
  let p = tiny_program () in
  match P.find_instr p 101 with
  | Some (b, idx) ->
    Alcotest.(check int) "block" 1 b.B.id;
    Alcotest.(check int) "index" 1 idx
  | None -> Alcotest.fail "instr 101 not found"

let test_walk_deterministic () =
  let p = tiny_program () in
  let a = Prog.Walk.path_for_instrs p ~seed:5 ~instrs:100 in
  let b = Prog.Walk.path_for_instrs p ~seed:5 ~instrs:100 in
  Alcotest.(check (array int)) "same path" a b

let test_walk_visits () =
  let p = tiny_program () in
  let path = Prog.Walk.path_visits p ~seed:1 ~visits:7 in
  Alcotest.(check int) "exact visit count" 7 (Array.length path);
  Alcotest.(check int) "starts at entry" 0 path.(0);
  (* deterministic alternation of the loop *)
  Alcotest.(check (array int)) "alternates" [| 0; 1; 0; 1; 0; 1; 0 |] path

let test_walk_respects_bias () =
  let blocks =
    [
      B.make ~id:0 ~func:0 ~body:[| mk 1 ~dst:(r 0) Op.Alu |]
        ~term:(B.Cond_branch { taken = 0; not_taken = 1; taken_bias = 0.9 });
      simple_block 1 (B.Jump 0);
    ]
  in
  let p = P.make ~entry:0 ~blocks in
  let path = Prog.Walk.path_visits p ~seed:11 ~visits:2000 in
  let self = Array.to_list path |> List.filter (( = ) 0) |> List.length in
  Alcotest.(check bool) "block 0 dominates (bias 0.9)" true
    (self > 1500)

let test_call_return () =
  let blocks =
    [
      B.make ~id:0 ~func:0 ~body:[| mk 1 ~dst:(r 0) Op.Alu |]
        ~term:(B.Call { callee = 2; return_to = 1 });
      simple_block 1 (B.Jump 0);
      B.make ~id:2 ~func:1 ~body:[| mk 2 ~dst:(r 1) Op.Alu |] ~term:B.Return;
    ]
  in
  let p = P.make ~entry:0 ~blocks in
  let path = Prog.Walk.path_visits p ~seed:3 ~visits:6 in
  Alcotest.(check (array int)) "call/return sequence" [| 0; 2; 1; 0; 2; 1 |] path

let expand p seed n =
  Prog.Trace.expand p ~seed (Prog.Walk.path_for_instrs p ~seed ~instrs:n)

let test_trace_next_pc_chain () =
  let p = tiny_program () in
  let t = expand p 5 200 in
  Array.iteri
    (fun i (e : Prog.Trace.event) ->
      if i + 1 < Array.length t then
        Alcotest.(check int)
          (Printf.sprintf "next_pc of event %d" i)
          t.(i + 1).pc e.next_pc;
      Alcotest.(check int) "seq" i e.seq)
    t

let test_trace_fetch_breaks () =
  let p = tiny_program () in
  let t = expand p 5 200 in
  Array.iter
    (fun (e : Prog.Trace.event) ->
      let sequential = e.next_pc = e.pc + e.size in
      if not sequential then
        Alcotest.(check bool) "non-sequential implies break" true e.fetch_break)
    t

let test_trace_work_count () =
  let p = tiny_program () in
  let t = expand p 5 200 in
  (* every event here is work: ALU bodies + synthetic terminators *)
  Alcotest.(check int) "work equals events" (Array.length t)
    (Prog.Trace.work_count t)

let test_mem_addresses_deterministic_and_bounded () =
  let mem = { I.region = 2; stride = 16; working_set = 256; randomness = 0.3 } in
  let blocks =
    [
      B.make ~id:0 ~func:0
        ~body:[| I.make ~uid:1 ~opcode:Op.Load ~dst:(r 0) ~mem () |]
        ~term:(B.Jump 0);
    ]
  in
  let p = P.make ~entry:0 ~blocks in
  let t1 = expand p 9 100 and t2 = expand p 9 100 in
  Array.iteri
    (fun i (e : Prog.Trace.event) ->
      Alcotest.(check int) "deterministic addr" t2.(i).mem_addr e.mem_addr;
      if e.mem_addr >= 0 then begin
        Alcotest.(check bool) "aligned to stride" true (e.mem_addr mod 16 = 0);
        let base = 0x4000_0000 + (2 * 0x0100_0000) in
        Alcotest.(check bool) "within working set" true
          (e.mem_addr >= base && e.mem_addr < base + 256)
      end)
    t1

let test_cond_branch_taken_matches_path () =
  let blocks =
    [
      B.make ~id:0 ~func:0 ~body:[| mk 1 ~dst:(r 0) Op.Alu |]
        ~term:(B.Cond_branch { taken = 2; not_taken = 1; taken_bias = 0.5 });
      simple_block 1 (B.Jump 0);
      simple_block 2 (B.Jump 0);
    ]
  in
  let p = P.make ~entry:0 ~blocks in
  let path = Prog.Walk.path_visits p ~seed:13 ~visits:50 in
  let t = Prog.Trace.expand p ~seed:13 path in
  Array.iteri
    (fun i (e : Prog.Trace.event) ->
      if e.is_cond_branch && i + 1 < Array.length t then begin
        let next_block = t.(i + 1).block_id in
        Alcotest.(check bool) "taken iff jumped to taken target" e.taken
          (next_block = 2)
      end)
    t

(* property: expansion length is stable and bodies carry body_index *)
let prop_body_index =
  QCheck.Test.make ~name:"body_index matches static position" ~count:50
    QCheck.(int_range 0 1000)
    (fun seed ->
      let p = tiny_program () in
      let t = expand p seed 100 in
      Array.for_all
        (fun (e : Prog.Trace.event) ->
          if e.body_index >= 0 then
            let b = P.block p e.block_id in
            e.body_index < Array.length b.B.body
            && (b.B.body.(e.body_index)).I.uid = e.instr.I.uid
          else Isa.Opcode.is_control e.instr.I.opcode)
        t)

(* property: the pull cursor and the materializing expander are the
   same stream.  Exercises the batch-refill protocol (peek must not
   advance, next must deliver every event exactly once, exhaustion is
   stable) against arbitrary fuzzer-generated programs, where block
   shapes — empty bodies, fallthrough-only blocks, call/return — hit
   every refill edge case. *)
let prop_stream_equals_expand =
  QCheck.Test.make ~name:"Stream.of_program replays expand event-for-event"
    ~count:60
    QCheck.(pair Workload.Fuzz.arbitrary small_nat)
    (fun (genome, seed) ->
      let p = Workload.Fuzz.build genome in
      let path = Prog.Walk.path_for_instrs p ~seed ~instrs:500 in
      let reference = Prog.Trace.expand p ~seed path in
      let c = Prog.Trace.Stream.of_program p ~seed path in
      Array.iteri
        (fun i want ->
          (* peek twice: must not advance or change the answer *)
          (match (Prog.Trace.Stream.peek c, Prog.Trace.Stream.peek c) with
          | Some a, Some b when a == b -> ()
          | _ -> QCheck.Test.fail_reportf "peek unstable at event %d" i);
          match Prog.Trace.Stream.next c with
          | Some got when got = want -> ()
          | Some got ->
            QCheck.Test.fail_reportf
              "event %d diverges: uid %d pc 0x%x <> uid %d pc 0x%x" i
              got.instr.uid got.pc want.instr.uid want.pc
          | None -> QCheck.Test.fail_reportf "stream short at event %d" i)
        reference;
      Prog.Trace.Stream.next c = None
      && Prog.Trace.Stream.peek c = None
      && Array.length reference = Prog.Trace.length_of_path p path)

let () =
  Alcotest.run "prog"
    [
      ( "program",
        [
          Alcotest.test_case "validation" `Quick test_program_validation;
          Alcotest.test_case "layout" `Quick test_layout;
          Alcotest.test_case "thumb shrinks layout" `Quick test_layout_shrinks_with_thumb;
          Alcotest.test_case "map_blocks guards CFG" `Quick test_map_blocks_guards_cfg;
          Alcotest.test_case "find_instr" `Quick test_find_instr;
        ] );
      ( "walk",
        [
          Alcotest.test_case "deterministic" `Quick test_walk_deterministic;
          Alcotest.test_case "visit count" `Quick test_walk_visits;
          Alcotest.test_case "bias respected" `Quick test_walk_respects_bias;
          Alcotest.test_case "call/return" `Quick test_call_return;
        ] );
      ( "trace",
        [
          Alcotest.test_case "next_pc chain" `Quick test_trace_next_pc_chain;
          Alcotest.test_case "fetch breaks" `Quick test_trace_fetch_breaks;
          Alcotest.test_case "work count" `Quick test_trace_work_count;
          Alcotest.test_case "mem addresses" `Quick
            test_mem_addresses_deterministic_and_bounded;
          Alcotest.test_case "cond branch outcomes" `Quick
            test_cond_branch_taken_matches_path;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_body_index; prop_stream_equals_expand ] );
    ]
